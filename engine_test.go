package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func engineTestTensor(seed uint64) *Irregular {
	g := NewRNG(seed)
	return LowRankTensor(g, []int{60, 80, 50, 70}, 24, 4, 0.02)
}

func engineTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Rank = 4
	cfg.MaxIters = 8
	cfg.Threads = 2
	return cfg
}

// TestEngineDecomposeMatchesFreeFunctions: all four algorithms run through
// Engine.Decompose via the registry, bit-identical to the deprecated free
// functions (which also satisfies the < 1e-9 fitness-drift requirement).
func TestEngineDecomposeMatchesFreeFunctions(t *testing.T) {
	ten := engineTestTensor(1)
	cfg := engineTestConfig()

	eng := NewEngine(WithEngineThreads(3), WithBaseConfig(cfg))
	defer eng.Close()
	ctx := context.Background()

	free := map[MethodID]func(*Irregular, Config) (*Result, error){
		MethodDPar2: DPar2, MethodRDALS: RDALS, MethodALS: ALS, MethodSPARTan: SPARTan,
	}
	for id, fn := range free {
		want, err := fn(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Decompose(ctx, ten, WithMethod(id))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got.Fitness != want.Fitness {
			t.Fatalf("%s: engine fitness %v != free function %v (drift %g)",
				id, got.Fitness, want.Fitness, math.Abs(got.Fitness-want.Fitness))
		}
		if !got.H.EqualApprox(want.H, 0) || !got.V.EqualApprox(want.V, 0) {
			t.Fatalf("%s: engine factors differ from free function", id)
		}
	}
}

// TestEngineSubmitConcurrentBitIdentical: >= 8 concurrent jobs (mixed
// methods and seeds) on one shared pool produce exactly the results of
// serial runs with the same options.
func TestEngineSubmitConcurrentBitIdentical(t *testing.T) {
	cfg := engineTestConfig()
	eng := NewEngine(WithEngineThreads(4), WithBaseConfig(cfg), WithJobConcurrency(6))
	defer eng.Close()
	ctx := context.Background()

	methods := []MethodID{MethodDPar2, MethodALS, MethodRDALS, MethodSPARTan}
	const jobs = 12
	type caseSpec struct {
		ten    *Irregular
		method MethodID
		seed   uint64
	}
	cases := make([]caseSpec, jobs)
	baselines := make([]*Result, jobs)
	for i := range cases {
		cases[i] = caseSpec{
			ten:    engineTestTensor(uint64(i % 3)), // some jobs share a tensor
			method: methods[i%len(methods)],
			seed:   uint64(1 + i),
		}
		serialCfg := cfg
		serialCfg.Seed = cases[i].seed
		serialCfg.Threads = 1
		var err error
		switch cases[i].method {
		case MethodDPar2:
			baselines[i], err = DPar2(cases[i].ten, serialCfg)
		case MethodALS:
			baselines[i], err = ALS(cases[i].ten, serialCfg)
		case MethodRDALS:
			baselines[i], err = RDALS(cases[i].ten, serialCfg)
		case MethodSPARTan:
			baselines[i], err = SPARTan(cases[i].ten, serialCfg)
		}
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
	}

	pending := make([]<-chan JobResult, jobs)
	for i, c := range cases {
		pending[i] = eng.Submit(ctx, Job{
			Tensor: c.ten,
			Tag:    fmt.Sprint(i),
			Options: []Option{
				WithMethod(c.method), WithSeed(c.seed),
			},
		})
	}
	for i, ch := range pending {
		jr := <-ch
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Tag != fmt.Sprint(i) {
			t.Fatalf("job %d: tag %q echoed wrong", i, jr.Tag)
		}
		if jr.Result.Fitness != baselines[i].Fitness {
			t.Fatalf("job %d (%s): concurrent fitness %v != serial %v",
				i, cases[i].method, jr.Result.Fitness, baselines[i].Fitness)
		}
		if !jr.Result.H.EqualApprox(baselines[i].H, 0) || !jr.Result.V.EqualApprox(baselines[i].V, 0) {
			t.Fatalf("job %d (%s): concurrent factors differ from serial run", i, cases[i].method)
		}
	}
}

// TestEngineSubmitCancelledWhileQueued: a job whose context dies before a
// worker picks it up delivers ctx.Err() instead of running.
func TestEngineSubmitCancelledWhileQueued(t *testing.T) {
	cfg := engineTestConfig()
	cfg.MaxIters = 200
	cfg.Tol = 0
	// One worker, so the second job has to wait in the queue.
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg), WithJobConcurrency(1))
	defer eng.Close()

	big := engineTestTensor(5)
	first := eng.Submit(context.Background(), Job{Tensor: big, Tag: "long"})

	ctx, cancel := context.WithCancel(context.Background())
	queued := eng.Submit(ctx, Job{Tensor: engineTestTensor(6), Tag: "queued"})
	cancel()

	jr := <-queued
	if !errors.Is(jr.Err, context.Canceled) {
		t.Fatalf("queued job err = %v, want context.Canceled", jr.Err)
	}
	if jr := <-first; jr.Err != nil {
		t.Fatalf("long job: %v", jr.Err)
	}
}

// TestEngineSubmitCancelledMidRun: cancelling a running job's context stops
// the decomposition between iterations and delivers ctx.Err().
func TestEngineSubmitCancelledMidRun(t *testing.T) {
	cfg := engineTestConfig()
	cfg.MaxIters = 10000
	cfg.Tol = 0
	eng := NewEngine(WithEngineThreads(2), WithBaseConfig(cfg))
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once bool
	ch := eng.Submit(ctx, Job{
		Tensor: engineTestTensor(7),
		Tag:    "cancel-me",
		Options: []Option{WithProgress(func(iter int, _ float64) bool {
			if !once {
				once = true
				close(started)
			}
			return true
		})},
	})
	<-started
	cancel()
	select {
	case jr := <-ch:
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", jr.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not return within 10s")
	}
}

// TestEngineCloseSemantics: accepted jobs finish, later calls fail with
// ErrEngineClosed, and Close is idempotent.
func TestEngineCloseSemantics(t *testing.T) {
	cfg := engineTestConfig()
	eng := NewEngine(WithBaseConfig(cfg))
	ctx := context.Background()
	ten := engineTestTensor(8)

	accepted := eng.Submit(ctx, Job{Tensor: ten, Tag: "accepted"})
	eng.Close()
	eng.Close() // idempotent

	if jr := <-accepted; jr.Err != nil {
		t.Fatalf("job accepted before Close must finish, got %v", jr.Err)
	}
	if jr := <-eng.Submit(ctx, Job{Tensor: ten}); !errors.Is(jr.Err, ErrEngineClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrEngineClosed", jr.Err)
	}
	if _, err := eng.Decompose(ctx, ten); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Decompose after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Compress(ctx, ten); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Compress after Close: err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineOptionValidation: invalid options surface as errors before any
// work, with the offending value named.
func TestEngineOptionValidation(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(9)

	if _, err := eng.Decompose(ctx, ten, WithMethod("definitely-not-registered")); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithRank(0)); err == nil {
		t.Fatal("WithRank(0) must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithMaxIters(-1)); err == nil {
		t.Fatal("WithMaxIters(-1) must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithTolerance(-0.1)); err == nil {
		t.Fatal("WithTolerance(-0.1) must error")
	}
	if _, err := eng.Decompose(ctx, nil); err == nil {
		t.Fatal("nil tensor must error")
	}
	// Aliases resolve through the registry like the CLI flag always did.
	if _, err := eng.Decompose(ctx, ten, WithMethod("parafac2-als"), WithRank(4)); err != nil {
		t.Fatalf("alias method: %v", err)
	}
}

// TestEngineWithConfigCarriesKnobs: WithConfig ports an existing Config
// (minus its Pool/Threads, which the Engine owns).
func TestEngineWithConfigCarriesKnobs(t *testing.T) {
	ten := engineTestTensor(10)
	cfg := engineTestConfig()
	cfg.Seed = 77
	cfg.Threads = 99 // must be ignored by the engine

	want, err := DPar2(ten, engineConfigSerial(cfg))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithEngineThreads(2))
	defer eng.Close()
	got, err := eng.Decompose(context.Background(), ten, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness != want.Fitness {
		t.Fatalf("WithConfig fitness %v != direct %v", got.Fitness, want.Fitness)
	}
}

func engineConfigSerial(cfg Config) Config {
	cfg.Threads = 1
	cfg.Pool = nil
	return cfg
}

// TestEngineNewStream: streaming runs on the engine pool end to end.
func TestEngineNewStream(t *testing.T) {
	g := NewRNG(11)
	full := LowRankTensor(g, []int{50, 60, 45, 55, 65, 40}, 18, 3, 0.02)
	first, err := NewIrregular(full.Slices[:3])
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(WithEngineThreads(2))
	defer eng.Close()
	ctx := context.Background()
	stream, err := eng.NewStream(ctx, first, WithRank(3), WithMaxIters(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.AbsorbCtx(ctx, full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	if fit := eng.Fitness(full, stream.Result()); fit < 0.9 {
		t.Fatalf("streamed fitness %v", fit)
	}
}

// TestEngineCloseReleasesWorkers: an engine lifecycle (including cancelled
// work) leaves no goroutines behind.
func TestEngineCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		eng := NewEngine(WithEngineThreads(4), WithJobConcurrency(3))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		<-eng.Submit(ctx, Job{Tensor: engineTestTensor(12)})
		if _, err := eng.Decompose(context.Background(), engineTestTensor(13),
			WithRank(3), WithMaxIters(2)); err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d >> baseline %d after engine Close (leak)",
		runtime.NumGoroutine(), before)
}

// TestEngineDPar2OnlyEndpoints: Compress/DecomposeCompressed/NewStream
// accept MethodDPar2 in any registered spelling and reject other methods
// loudly instead of silently running DPar2.
func TestEngineDPar2OnlyEndpoints(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(14)

	comp, err := eng.Compress(ctx, ten, WithMethod("DPar2"), WithRank(4)) // case variant
	if err != nil {
		t.Fatalf("Compress with case-variant method name: %v", err)
	}
	if _, err := eng.DecomposeCompressed(ctx, comp, WithMethod("DPAR2"), WithRank(4)); err != nil {
		t.Fatalf("DecomposeCompressed with case-variant method name: %v", err)
	}
	if _, err := eng.DecomposeCompressed(ctx, comp, WithMethod(MethodALS)); err == nil {
		t.Fatal("DecomposeCompressed must reject non-DPar2 methods")
	}
	if _, err := eng.NewStream(ctx, ten, WithMethod(MethodSPARTan)); err == nil {
		t.Fatal("NewStream must reject non-DPar2 methods")
	}
	if _, err := eng.Compress(ctx, ten, WithMethod(MethodRDALS)); err == nil {
		t.Fatal("Compress must reject non-DPar2 methods")
	}
}

// TestEngineSubmitFullQueueDoesNotBlockOtherCalls is the regression test for
// the Submit/Close lock interaction: a Submit blocked on a full queue used to
// hold mu.RLock across the send, so once Close was waiting on the write lock
// (RWMutex writer priority) every other Engine call stalled behind it. Now a
// blocked Submit holds no lock, Close proceeds, and concurrent calls observe
// ErrEngineClosed promptly instead of deadlocking.
func TestEngineSubmitFullQueueDoesNotBlockOtherCalls(t *testing.T) {
	ten := engineTestTensor(7)
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(engineTestConfig()),
		WithQueueDepth(1), WithJobConcurrency(1))

	// Job A occupies the single worker until released.
	running := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hold := WithProgress(func(int, float64) bool {
		once.Do(func() { close(running) })
		<-release
		return true
	})
	chA := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "A", Options: []Option{hold}})
	<-running

	// Job B fills the queue's only slot; job C blocks in the queue send.
	chB := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "B"})
	chC := make(chan (<-chan JobResult), 1)
	go func() { chC <- eng.Submit(context.Background(), Job{Tensor: ten, Tag: "C"}) }()
	time.Sleep(50 * time.Millisecond) // let C reach the blocking send

	closed := make(chan struct{})
	go func() { eng.Close(); close(closed) }()

	// While C is still blocked and Close is waiting, other Engine calls must
	// resolve promptly (ErrEngineClosed once Close has flipped the flag).
	decided := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, err := eng.Decompose(context.Background(), ten)
			if errors.Is(err, ErrEngineClosed) {
				decided <- nil
				return
			}
			if time.Now().After(deadline) {
				decided <- fmt.Errorf("Decompose never observed the closing engine (last err: %v)", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case err := <-decided:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Decompose deadlocked behind a Submit blocked on a full queue")
	}

	// Unblock everything: accepted jobs must still deliver results and
	// Close must return.
	close(release)
	for _, c := range []struct {
		tag string
		ch  <-chan JobResult
	}{{"A", chA}, {"B", chB}, {"C", <-chC}} {
		jr := <-c.ch
		// A and B were accepted before Close and must succeed; C raced
		// Close and may legitimately see either outcome.
		if c.tag != "C" && jr.Err != nil {
			t.Fatalf("job %s: %v", c.tag, jr.Err)
		}
		if jr.Err != nil && !errors.Is(jr.Err, ErrEngineClosed) {
			t.Fatalf("job %s: unexpected error %v", c.tag, jr.Err)
		}
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after jobs drained")
	}
}

// ----- Admission control: tenants, priorities, quotas, metrics --------------

// gateJob returns an Option whose job blocks the worker it runs on until
// release is closed, plus a channel closed once the job has started.
func gateJob() (opt Option, running chan struct{}, release chan struct{}) {
	running = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	opt = WithProgress(func(int, float64) bool {
		once.Do(func() { close(running) })
		<-release
		return true
	})
	return opt, running, release
}

// startRecorder records the tenant of every JobStarted in pop order.
type startRecorder struct {
	EngineStats // counter aggregation, plus the Metrics method set
	mu          sync.Mutex
	starts      []string
}

func (r *startRecorder) JobStarted(tenant string, priority, depth int, wait time.Duration) {
	r.mu.Lock()
	r.starts = append(r.starts, tenant)
	r.mu.Unlock()
	r.EngineStats.JobStarted(tenant, priority, depth, wait)
}

func (r *startRecorder) startOrder() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.starts...)
}

// TestEnginePriorityUnderSaturation is the acceptance scenario: with the
// queue saturated by a low-priority backlog, a later high-priority submit
// runs (and completes) before any of the pre-queued backlog.
func TestEnginePriorityUnderSaturation(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 3
	rec := &startRecorder{}
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg),
		WithJobConcurrency(1), WithEngineMetrics(rec))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(20)

	hold, running, release := gateJob()
	gate := eng.Submit(ctx, Job{Tensor: ten, Tag: "gate", Tenant: "gate", Options: []Option{hold}})
	<-running

	const backlog = 4
	lo := make([]<-chan JobResult, backlog)
	for i := range lo {
		lo[i] = eng.Submit(ctx, Job{Tensor: ten, Tag: fmt.Sprintf("lo-%d", i),
			Tenant: "batch", Priority: 0, Options: []Option{WithSeed(uint64(i))}})
	}
	hi := eng.Submit(ctx, Job{Tensor: ten, Tag: "hi", Tenant: "urgent", Priority: 10})

	close(release)
	jr := <-hi
	if jr.Err != nil {
		t.Fatalf("high-priority job: %v", jr.Err)
	}
	for i, ch := range lo {
		if jr := <-ch; jr.Err != nil {
			t.Fatalf("backlog job %d: %v", i, jr.Err)
		}
	}
	// Pop order: gate first (it was running), then the high-priority job,
	// then the FIFO backlog.
	order := rec.startOrder()
	want := []string{"gate", "urgent", "batch", "batch", "batch", "batch"}
	if len(order) != len(want) {
		t.Fatalf("start order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("start order %v, want %v", order, want)
		}
	}
	<-gate
}

// TestEngineTenantQuotaReject: an over-quota tenant gets an immediate typed
// rejection carrying the tenant, without consuming a shared queue slot.
func TestEngineTenantQuotaReject(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 2
	stats := &EngineStats{}
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg),
		WithJobConcurrency(1), WithTenantQuota(1, 1), WithEngineMetrics(stats))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(21)

	hold, running, release := gateJob()
	gate := eng.Submit(ctx, Job{Tensor: ten, Tag: "gate", Tenant: "gate", Options: []Option{hold}})
	<-running

	queued := eng.Submit(ctx, Job{Tensor: ten, Tag: "q", Tenant: "noisy"})
	over := <-eng.Submit(ctx, Job{Tensor: ten, Tag: "over", Tenant: "noisy"})
	if !errors.Is(over.Err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit err = %v, want ErrQuotaExceeded", over.Err)
	}
	var qe *QuotaError
	if !errors.As(over.Err, &qe) || qe.Tenant != "noisy" {
		t.Fatalf("quota error %v must carry the tenant", over.Err)
	}
	// The rejection consumed no queue slot: another tenant still fits.
	other := eng.Submit(ctx, Job{Tensor: ten, Tag: "other", Tenant: "quiet"})

	close(release)
	for tag, ch := range map[string]<-chan JobResult{"gate": gate, "q": queued, "other": other} {
		if jr := <-ch; jr.Err != nil {
			t.Fatalf("job %s: %v", tag, jr.Err)
		}
	}
	if ts := stats.Tenant("noisy"); ts.Rejected != 1 || ts.Admitted != 1 {
		t.Fatalf("noisy stats = %+v, want 1 admitted + 1 rejected", ts)
	}
}

// TestEngineQuotaReleasedOnCancelWhileQueued: cancelling a queued job frees
// its tenant's quota so the tenant can submit again; the cancelled job
// delivers ctx.Err() and never runs.
func TestEngineQuotaReleasedOnCancelWhileQueued(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 2
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg),
		WithJobConcurrency(1), WithTenantQuota(1, 1))
	defer eng.Close()
	ten := engineTestTensor(22)

	hold, running, release := gateJob()
	gate := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "gate", Tenant: "gate", Options: []Option{hold}})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	queued := eng.Submit(ctx, Job{Tensor: ten, Tag: "q", Tenant: "noisy"})
	cancel()
	if jr := <-queued; !errors.Is(jr.Err, context.Canceled) {
		t.Fatalf("cancelled-while-queued err = %v, want context.Canceled", jr.Err)
	}
	// The quota slot is released (the scheduler removes the ticket
	// asynchronously from the context's AfterFunc; poll briefly).
	var retry <-chan JobResult
	deadline := time.Now().Add(5 * time.Second)
	for {
		jrCh := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "retry", Tenant: "noisy"})
		select {
		case jr := <-jrCh:
			if !errors.Is(jr.Err, ErrQuotaExceeded) {
				t.Fatalf("retry submit err = %v", jr.Err)
			}
			if time.Now().After(deadline) {
				t.Fatal("quota never released after cancel-while-queued")
			}
			time.Sleep(time.Millisecond)
			continue
		case <-time.After(20 * time.Millisecond):
			// No immediate rejection: the job was admitted.
			retry = jrCh
		}
		break
	}
	close(release)
	if jr := <-gate; jr.Err != nil {
		t.Fatalf("gate: %v", jr.Err)
	}
	if jr := <-retry; jr.Err != nil {
		t.Fatalf("retry after quota release: %v", jr.Err)
	}
}

// TestEnginePriorityDeterminism: priorities and tenants reorder WHEN jobs
// run, never what they compute — every result is bit-identical to a serial
// run with the same tensor and options, whatever the queue contention.
func TestEnginePriorityDeterminism(t *testing.T) {
	cfg := engineTestConfig()
	eng := NewEngine(WithEngineThreads(3), WithBaseConfig(cfg),
		WithJobConcurrency(2), WithQueueDepth(4))
	defer eng.Close()
	ctx := context.Background()

	const jobs = 10
	tensors := make([]*Irregular, jobs)
	baselines := make([]*Result, jobs)
	for i := range tensors {
		tensors[i] = engineTestTensor(uint64(30 + i%4))
		serial := cfg
		serial.Seed = uint64(i)
		serial.Threads = 1
		var err error
		baselines[i], err = DPar2(tensors[i], serial)
		if err != nil {
			t.Fatal(err)
		}
	}
	pending := make([]<-chan JobResult, jobs)
	for i := range pending {
		pending[i] = eng.Submit(ctx, Job{
			Tensor:   tensors[i],
			Tag:      fmt.Sprint(i),
			Tenant:   fmt.Sprintf("t%d", i%3),
			Priority: (i * 7) % 5, // scrambled priorities reorder the queue
			Options:  []Option{WithSeed(uint64(i))},
		})
	}
	for i, ch := range pending {
		jr := <-ch
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Result.Fitness != baselines[i].Fitness {
			t.Fatalf("job %d: fitness %v != serial %v", i, jr.Result.Fitness, baselines[i].Fitness)
		}
		if !jr.Result.H.EqualApprox(baselines[i].H, 0) || !jr.Result.V.EqualApprox(baselines[i].V, 0) {
			t.Fatalf("job %d: factors differ from serial run", i)
		}
	}
}

// TestEngineMetricsHook: the hook's per-tenant accounting is consistent once
// traffic drains — every admit either started or was cancelled, every start
// finished, and latencies are observed.
func TestEngineMetricsHook(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 2
	stats := &EngineStats{}
	eng := NewEngine(WithEngineThreads(2), WithBaseConfig(cfg),
		WithJobConcurrency(2), WithEngineMetrics(stats))
	ctx := context.Background()

	const jobs = 8
	pending := make([]<-chan JobResult, jobs)
	for i := range pending {
		pending[i] = eng.Submit(ctx, Job{
			Tensor:  engineTestTensor(uint64(40 + i)),
			Tenant:  fmt.Sprintf("tenant-%d", i%2),
			Options: []Option{WithSeed(uint64(i))},
		})
	}
	for _, ch := range pending {
		if jr := <-ch; jr.Err != nil {
			t.Fatal(jr.Err)
		}
	}
	eng.Close()

	var admitted, completed int64
	for _, ts := range stats.Snapshot() {
		admitted += ts.Admitted
		completed += ts.Completed
		if ts.Admitted != ts.Started+ts.Cancelled {
			t.Fatalf("tenant %s: admitted %d != started %d + cancelled %d",
				ts.Tenant, ts.Admitted, ts.Started, ts.Cancelled)
		}
		if ts.Started != ts.Completed+ts.Failed {
			t.Fatalf("tenant %s: started %d != completed %d + failed %d",
				ts.Tenant, ts.Started, ts.Completed, ts.Failed)
		}
		if ts.Completed > 0 && ts.MeanRunTime() <= 0 {
			t.Fatalf("tenant %s: completed %d jobs with zero run time", ts.Tenant, ts.Completed)
		}
	}
	if admitted != jobs || completed != jobs {
		t.Fatalf("admitted %d completed %d, want %d each", admitted, completed, jobs)
	}
	if stats.MaxDepth() < 1 {
		t.Fatal("metrics never observed a queue depth")
	}
}

// TestEngineSubmitVsCloseRace: concurrent Submits racing Close (with mixed
// tenants, priorities, and cancels) each deliver exactly one result from the
// allowed set, accepted jobs complete, and Close returns. Run with -race.
func TestEngineSubmitVsCloseRace(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 2
	for round := 0; round < 3; round++ {
		eng := NewEngine(WithEngineThreads(2), WithBaseConfig(cfg),
			WithJobConcurrency(2), WithQueueDepth(4), WithTenantQuota(8, 8))
		ten := engineTestTensor(uint64(50 + round))

		const submitters = 6
		results := make(chan JobResult, submitters*4)
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					ctx, cancel := context.WithCancel(context.Background())
					ch := eng.Submit(ctx, Job{
						Tensor:   ten,
						Tag:      fmt.Sprintf("%d-%d", s, i),
						Tenant:   fmt.Sprintf("t%d", s%3),
						Priority: i % 3,
						Options:  []Option{WithSeed(uint64(i))},
					})
					if i%2 == 0 {
						cancel()
					} else {
						defer cancel()
					}
					results <- <-ch
				}
			}()
		}
		time.Sleep(time.Duration(round) * 2 * time.Millisecond)
		eng.Close()
		wg.Wait()
		close(results)
		for jr := range results {
			switch {
			case jr.Err == nil:
			case errors.Is(jr.Err, ErrEngineClosed):
			case errors.Is(jr.Err, context.Canceled):
			case errors.Is(jr.Err, ErrQuotaExceeded):
			default:
				t.Fatalf("job %s: unexpected error %v", jr.Tag, jr.Err)
			}
		}
	}
}

// TestEngineDrainedAfterCloseComplete: jobs accepted before Close — still
// queued behind a gate — all run to completion during the Close drain.
func TestEngineDrainedAfterCloseComplete(t *testing.T) {
	cfg := engineTestConfig()
	cfg.Rank = 3
	cfg.MaxIters = 2
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg), WithJobConcurrency(1))
	ten := engineTestTensor(60)

	hold, running, release := gateJob()
	gate := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "gate", Options: []Option{hold}})
	<-running

	const backlog = 5
	pending := make([]<-chan JobResult, backlog)
	for i := range pending {
		pending[i] = eng.Submit(context.Background(), Job{
			Tensor: ten, Tag: fmt.Sprint(i),
			Tenant: fmt.Sprintf("t%d", i%2), Priority: i % 3,
		})
	}
	closed := make(chan struct{})
	go func() { eng.Close(); close(closed) }()
	time.Sleep(10 * time.Millisecond) // let Close begin while the backlog is queued
	close(release)

	if jr := <-gate; jr.Err != nil {
		t.Fatalf("gate: %v", jr.Err)
	}
	for i, ch := range pending {
		if jr := <-ch; jr.Err != nil {
			t.Fatalf("drained job %d must complete, got %v", i, jr.Err)
		}
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the drain")
	}
}

// TestEngineFitnessAfterClose is the regression test for post-Close
// evaluation: Fitness after Close must not dispatch onto the closed pool —
// it falls back to the serial path and returns the identical value.
func TestEngineFitnessAfterClose(t *testing.T) {
	ten := engineTestTensor(61)
	cfg := engineTestConfig()
	eng := NewEngine(WithEngineThreads(2), WithBaseConfig(cfg))
	res, err := eng.Decompose(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Fitness(ten, res)
	eng.Close()
	done := make(chan float64, 1)
	go func() { done <- eng.Fitness(ten, res) }()
	select {
	case after := <-done:
		if after != before {
			t.Fatalf("post-Close Fitness %v != pre-Close %v", after, before)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fitness hung on a closed engine")
	}
}

// TestEngineOptionValidationPanics: engine options reject non-positive (or
// nil) values loudly instead of silently yielding defaults — the one
// validation rule for NewEngine options.
func TestEngineOptionValidationPanics(t *testing.T) {
	mustPanic := func(name string, opt EngineOption) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		opt(&engineSettings{})
	}
	mustPanic("WithQueueDepth(0)", WithQueueDepth(0))
	mustPanic("WithQueueDepth(-1)", WithQueueDepth(-1))
	mustPanic("WithJobConcurrency(0)", WithJobConcurrency(0))
	mustPanic("WithJobConcurrency(-3)", WithJobConcurrency(-3))
	mustPanic("WithTenantQuota(0, 1)", WithTenantQuota(0, 1))
	mustPanic("WithTenantQuota(1, 0)", WithTenantQuota(1, 0))
	mustPanic("WithTenantQuota(-1, -1)", WithTenantQuota(-1, -1))
	mustPanic("WithTenantQuotaOverrides(nil)", WithTenantQuotaOverrides(nil))
	mustPanic("WithTenantQuotaOverrides(bad)", WithTenantQuotaOverrides(
		map[string]TenantQuota{"t": {MaxQueued: 0, MaxRunning: 1}}))
	mustPanic("WithEngineMetrics(nil)", WithEngineMetrics(nil))

	// Positive values configure without panicking.
	s := engineSettings{}
	WithQueueDepth(7)(&s)
	WithJobConcurrency(2)(&s)
	WithTenantQuota(3, 1)(&s)
	WithTenantQuotaOverrides(map[string]TenantQuota{"vip": {MaxQueued: 9, MaxRunning: 4}})(&s)
	WithEngineMetrics(&EngineStats{})(&s)
	if s.queueDepth != 7 || s.jobWorkers != 2 || s.quota.MaxQueued != 3 ||
		s.overrides["vip"].MaxRunning != 4 || s.metrics == nil {
		t.Fatalf("options did not apply: %+v", s)
	}
}
