package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func engineTestTensor(seed uint64) *Irregular {
	g := NewRNG(seed)
	return LowRankTensor(g, []int{60, 80, 50, 70}, 24, 4, 0.02)
}

func engineTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Rank = 4
	cfg.MaxIters = 8
	cfg.Threads = 2
	return cfg
}

// TestEngineDecomposeMatchesFreeFunctions: all four algorithms run through
// Engine.Decompose via the registry, bit-identical to the deprecated free
// functions (which also satisfies the < 1e-9 fitness-drift requirement).
func TestEngineDecomposeMatchesFreeFunctions(t *testing.T) {
	ten := engineTestTensor(1)
	cfg := engineTestConfig()

	eng := NewEngine(WithEngineThreads(3), WithBaseConfig(cfg))
	defer eng.Close()
	ctx := context.Background()

	free := map[MethodID]func(*Irregular, Config) (*Result, error){
		MethodDPar2: DPar2, MethodRDALS: RDALS, MethodALS: ALS, MethodSPARTan: SPARTan,
	}
	for id, fn := range free {
		want, err := fn(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Decompose(ctx, ten, WithMethod(id))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got.Fitness != want.Fitness {
			t.Fatalf("%s: engine fitness %v != free function %v (drift %g)",
				id, got.Fitness, want.Fitness, math.Abs(got.Fitness-want.Fitness))
		}
		if !got.H.EqualApprox(want.H, 0) || !got.V.EqualApprox(want.V, 0) {
			t.Fatalf("%s: engine factors differ from free function", id)
		}
	}
}

// TestEngineSubmitConcurrentBitIdentical: >= 8 concurrent jobs (mixed
// methods and seeds) on one shared pool produce exactly the results of
// serial runs with the same options.
func TestEngineSubmitConcurrentBitIdentical(t *testing.T) {
	cfg := engineTestConfig()
	eng := NewEngine(WithEngineThreads(4), WithBaseConfig(cfg), WithJobConcurrency(6))
	defer eng.Close()
	ctx := context.Background()

	methods := []MethodID{MethodDPar2, MethodALS, MethodRDALS, MethodSPARTan}
	const jobs = 12
	type caseSpec struct {
		ten    *Irregular
		method MethodID
		seed   uint64
	}
	cases := make([]caseSpec, jobs)
	baselines := make([]*Result, jobs)
	for i := range cases {
		cases[i] = caseSpec{
			ten:    engineTestTensor(uint64(i % 3)), // some jobs share a tensor
			method: methods[i%len(methods)],
			seed:   uint64(1 + i),
		}
		serialCfg := cfg
		serialCfg.Seed = cases[i].seed
		serialCfg.Threads = 1
		var err error
		switch cases[i].method {
		case MethodDPar2:
			baselines[i], err = DPar2(cases[i].ten, serialCfg)
		case MethodALS:
			baselines[i], err = ALS(cases[i].ten, serialCfg)
		case MethodRDALS:
			baselines[i], err = RDALS(cases[i].ten, serialCfg)
		case MethodSPARTan:
			baselines[i], err = SPARTan(cases[i].ten, serialCfg)
		}
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
	}

	pending := make([]<-chan JobResult, jobs)
	for i, c := range cases {
		pending[i] = eng.Submit(ctx, Job{
			Tensor: c.ten,
			Tag:    fmt.Sprint(i),
			Options: []Option{
				WithMethod(c.method), WithSeed(c.seed),
			},
		})
	}
	for i, ch := range pending {
		jr := <-ch
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Tag != fmt.Sprint(i) {
			t.Fatalf("job %d: tag %q echoed wrong", i, jr.Tag)
		}
		if jr.Result.Fitness != baselines[i].Fitness {
			t.Fatalf("job %d (%s): concurrent fitness %v != serial %v",
				i, cases[i].method, jr.Result.Fitness, baselines[i].Fitness)
		}
		if !jr.Result.H.EqualApprox(baselines[i].H, 0) || !jr.Result.V.EqualApprox(baselines[i].V, 0) {
			t.Fatalf("job %d (%s): concurrent factors differ from serial run", i, cases[i].method)
		}
	}
}

// TestEngineSubmitCancelledWhileQueued: a job whose context dies before a
// worker picks it up delivers ctx.Err() instead of running.
func TestEngineSubmitCancelledWhileQueued(t *testing.T) {
	cfg := engineTestConfig()
	cfg.MaxIters = 200
	cfg.Tol = 0
	// One worker, so the second job has to wait in the queue.
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(cfg), WithJobConcurrency(1))
	defer eng.Close()

	big := engineTestTensor(5)
	first := eng.Submit(context.Background(), Job{Tensor: big, Tag: "long"})

	ctx, cancel := context.WithCancel(context.Background())
	queued := eng.Submit(ctx, Job{Tensor: engineTestTensor(6), Tag: "queued"})
	cancel()

	jr := <-queued
	if !errors.Is(jr.Err, context.Canceled) {
		t.Fatalf("queued job err = %v, want context.Canceled", jr.Err)
	}
	if jr := <-first; jr.Err != nil {
		t.Fatalf("long job: %v", jr.Err)
	}
}

// TestEngineSubmitCancelledMidRun: cancelling a running job's context stops
// the decomposition between iterations and delivers ctx.Err().
func TestEngineSubmitCancelledMidRun(t *testing.T) {
	cfg := engineTestConfig()
	cfg.MaxIters = 10000
	cfg.Tol = 0
	eng := NewEngine(WithEngineThreads(2), WithBaseConfig(cfg))
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once bool
	ch := eng.Submit(ctx, Job{
		Tensor: engineTestTensor(7),
		Tag:    "cancel-me",
		Options: []Option{WithProgress(func(iter int, _ float64) bool {
			if !once {
				once = true
				close(started)
			}
			return true
		})},
	})
	<-started
	cancel()
	select {
	case jr := <-ch:
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", jr.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not return within 10s")
	}
}

// TestEngineCloseSemantics: accepted jobs finish, later calls fail with
// ErrEngineClosed, and Close is idempotent.
func TestEngineCloseSemantics(t *testing.T) {
	cfg := engineTestConfig()
	eng := NewEngine(WithBaseConfig(cfg))
	ctx := context.Background()
	ten := engineTestTensor(8)

	accepted := eng.Submit(ctx, Job{Tensor: ten, Tag: "accepted"})
	eng.Close()
	eng.Close() // idempotent

	if jr := <-accepted; jr.Err != nil {
		t.Fatalf("job accepted before Close must finish, got %v", jr.Err)
	}
	if jr := <-eng.Submit(ctx, Job{Tensor: ten}); !errors.Is(jr.Err, ErrEngineClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrEngineClosed", jr.Err)
	}
	if _, err := eng.Decompose(ctx, ten); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Decompose after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Compress(ctx, ten); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Compress after Close: err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineOptionValidation: invalid options surface as errors before any
// work, with the offending value named.
func TestEngineOptionValidation(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(9)

	if _, err := eng.Decompose(ctx, ten, WithMethod("definitely-not-registered")); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithRank(0)); err == nil {
		t.Fatal("WithRank(0) must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithMaxIters(-1)); err == nil {
		t.Fatal("WithMaxIters(-1) must error")
	}
	if _, err := eng.Decompose(ctx, ten, WithTolerance(-0.1)); err == nil {
		t.Fatal("WithTolerance(-0.1) must error")
	}
	if _, err := eng.Decompose(ctx, nil); err == nil {
		t.Fatal("nil tensor must error")
	}
	// Aliases resolve through the registry like the CLI flag always did.
	if _, err := eng.Decompose(ctx, ten, WithMethod("parafac2-als"), WithRank(4)); err != nil {
		t.Fatalf("alias method: %v", err)
	}
}

// TestEngineWithConfigCarriesKnobs: WithConfig ports an existing Config
// (minus its Pool/Threads, which the Engine owns).
func TestEngineWithConfigCarriesKnobs(t *testing.T) {
	ten := engineTestTensor(10)
	cfg := engineTestConfig()
	cfg.Seed = 77
	cfg.Threads = 99 // must be ignored by the engine

	want, err := DPar2(ten, engineConfigSerial(cfg))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithEngineThreads(2))
	defer eng.Close()
	got, err := eng.Decompose(context.Background(), ten, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness != want.Fitness {
		t.Fatalf("WithConfig fitness %v != direct %v", got.Fitness, want.Fitness)
	}
}

func engineConfigSerial(cfg Config) Config {
	cfg.Threads = 1
	cfg.Pool = nil
	return cfg
}

// TestEngineNewStream: streaming runs on the engine pool end to end.
func TestEngineNewStream(t *testing.T) {
	g := NewRNG(11)
	full := LowRankTensor(g, []int{50, 60, 45, 55, 65, 40}, 18, 3, 0.02)
	first, err := NewIrregular(full.Slices[:3])
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(WithEngineThreads(2))
	defer eng.Close()
	ctx := context.Background()
	stream, err := eng.NewStream(ctx, first, WithRank(3), WithMaxIters(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.AbsorbCtx(ctx, full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	if fit := eng.Fitness(full, stream.Result()); fit < 0.9 {
		t.Fatalf("streamed fitness %v", fit)
	}
}

// TestEngineCloseReleasesWorkers: an engine lifecycle (including cancelled
// work) leaves no goroutines behind.
func TestEngineCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		eng := NewEngine(WithEngineThreads(4), WithJobConcurrency(3))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		<-eng.Submit(ctx, Job{Tensor: engineTestTensor(12)})
		if _, err := eng.Decompose(context.Background(), engineTestTensor(13),
			WithRank(3), WithMaxIters(2)); err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d >> baseline %d after engine Close (leak)",
		runtime.NumGoroutine(), before)
}

// TestEngineDPar2OnlyEndpoints: Compress/DecomposeCompressed/NewStream
// accept MethodDPar2 in any registered spelling and reject other methods
// loudly instead of silently running DPar2.
func TestEngineDPar2OnlyEndpoints(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(14)

	comp, err := eng.Compress(ctx, ten, WithMethod("DPar2"), WithRank(4)) // case variant
	if err != nil {
		t.Fatalf("Compress with case-variant method name: %v", err)
	}
	if _, err := eng.DecomposeCompressed(ctx, comp, WithMethod("DPAR2"), WithRank(4)); err != nil {
		t.Fatalf("DecomposeCompressed with case-variant method name: %v", err)
	}
	if _, err := eng.DecomposeCompressed(ctx, comp, WithMethod(MethodALS)); err == nil {
		t.Fatal("DecomposeCompressed must reject non-DPar2 methods")
	}
	if _, err := eng.NewStream(ctx, ten, WithMethod(MethodSPARTan)); err == nil {
		t.Fatal("NewStream must reject non-DPar2 methods")
	}
	if _, err := eng.Compress(ctx, ten, WithMethod(MethodRDALS)); err == nil {
		t.Fatal("Compress must reject non-DPar2 methods")
	}
}

// TestEngineSubmitFullQueueDoesNotBlockOtherCalls is the regression test for
// the Submit/Close lock interaction: a Submit blocked on a full queue used to
// hold mu.RLock across the send, so once Close was waiting on the write lock
// (RWMutex writer priority) every other Engine call stalled behind it. Now a
// blocked Submit holds no lock, Close proceeds, and concurrent calls observe
// ErrEngineClosed promptly instead of deadlocking.
func TestEngineSubmitFullQueueDoesNotBlockOtherCalls(t *testing.T) {
	ten := engineTestTensor(7)
	eng := NewEngine(WithEngineThreads(1), WithBaseConfig(engineTestConfig()),
		WithQueueDepth(1), WithJobConcurrency(1))

	// Job A occupies the single worker until released.
	running := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hold := WithProgress(func(int, float64) bool {
		once.Do(func() { close(running) })
		<-release
		return true
	})
	chA := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "A", Options: []Option{hold}})
	<-running

	// Job B fills the queue's only slot; job C blocks in the queue send.
	chB := eng.Submit(context.Background(), Job{Tensor: ten, Tag: "B"})
	chC := make(chan (<-chan JobResult), 1)
	go func() { chC <- eng.Submit(context.Background(), Job{Tensor: ten, Tag: "C"}) }()
	time.Sleep(50 * time.Millisecond) // let C reach the blocking send

	closed := make(chan struct{})
	go func() { eng.Close(); close(closed) }()

	// While C is still blocked and Close is waiting, other Engine calls must
	// resolve promptly (ErrEngineClosed once Close has flipped the flag).
	decided := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, err := eng.Decompose(context.Background(), ten)
			if errors.Is(err, ErrEngineClosed) {
				decided <- nil
				return
			}
			if time.Now().After(deadline) {
				decided <- fmt.Errorf("Decompose never observed the closing engine (last err: %v)", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case err := <-decided:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Decompose deadlocked behind a Submit blocked on a full queue")
	}

	// Unblock everything: accepted jobs must still deliver results and
	// Close must return.
	close(release)
	for _, c := range []struct {
		tag string
		ch  <-chan JobResult
	}{{"A", chA}, {"B", chB}, {"C", <-chC}} {
		jr := <-c.ch
		// A and B were accepted before Close and must succeed; C raced
		// Close and may legitimately see either outcome.
		if c.tag != "C" && jr.Err != nil {
			t.Fatalf("job %s: %v", c.tag, jr.Err)
		}
		if jr.Err != nil && !errors.Is(jr.Err, ErrEngineClosed) {
			t.Fatalf("job %s: unexpected error %v", c.tag, jr.Err)
		}
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after jobs drained")
	}
}
