package repro

import (
	"fmt"

	"repro/internal/parafac2"
)

// Spec is the canonical, serializable description of one decomposition
// request: the algorithm plus the nine deterministic knobs that fully
// determine the computed bits for a given tensor — the same nine the
// content-addressed result cache keys on (docs/DURABILITY.md). Functional
// options compile into a Spec (Engine.ResolveSpec exposes the resolved
// form), WithSpec turns a Spec back into an option, and the HTTP front end
// (internal/service, docs/SERVICE.md) uses it verbatim as the wire schema —
// a Spec is what lets a job description cross a process boundary.
//
// A Spec deliberately excludes everything runtime-bound or non-serializable:
// the pool/thread binding (always the executing Engine's), Progress
// callbacks, and convergence-trace capture stay per-call options layered on
// top (the Engine keeps them in a local-only overlay). Two runs of the same
// tensor under the same Spec are bit-identical on any machine, at any pool
// width, through any transport.
//
// The zero Spec is not runnable (a zero Rank is invalid); start from
// DefaultSpec or resolve options with Engine.ResolveSpec.
type Spec struct {
	// Method names the registered algorithm (canonical names from Methods;
	// aliases accepted by WithMethod are canonicalized by ResolveSpec).
	Method MethodID `json:"method"`
	// Rank is the target rank R.
	Rank int `json:"rank"`
	// MaxIters bounds the ALS iterations.
	MaxIters int `json:"max_iters"`
	// Tol is the relative convergence tolerance (0 runs MaxIters
	// unconditionally).
	Tol float64 `json:"tol"`
	// Seed drives factor initialization and randomized sketches.
	Seed uint64 `json:"seed"`
	// Oversample is the randomized-SVD oversampling parameter (DPar2 only).
	Oversample int `json:"oversample"`
	// PowerIters is the randomized-SVD power-iteration count (DPar2 only).
	PowerIters int `json:"power_iters"`
	// ShardRows is the stage-1 sharding threshold (DPar2 only): 0 means
	// DefaultShardRows, negative disables sharding (see WithShardRows).
	ShardRows int `json:"shard_rows"`
	// Ridge adds λ·I to the Gram matrices of the normal-equation solves.
	Ridge float64 `json:"ridge"`
	// NonnegativeS constrains the S_k weights to be nonnegative.
	NonnegativeS bool `json:"nonneg_s"`
}

// DefaultSpec is the Spec an optionless Engine.Decompose on a default-built
// Engine resolves to: MethodDPar2 under DefaultConfig's deterministic knobs.
func DefaultSpec() Spec {
	return specFromConfig(MethodDPar2, DefaultConfig())
}

// specFromConfig projects a Config's deterministic knobs into a Spec. The
// runtime fields (Pool, Threads, Progress, TrackConvergence) do not travel —
// they are exactly the non-serializable overlay a Spec excludes.
func specFromConfig(m MethodID, cfg Config) Spec {
	return Spec{
		Method:       m,
		Rank:         cfg.Rank,
		MaxIters:     cfg.MaxIters,
		Tol:          cfg.Tol,
		Seed:         cfg.Seed,
		Oversample:   cfg.Oversample,
		PowerIters:   cfg.PowerIters,
		ShardRows:    cfg.ShardRows,
		Ridge:        cfg.Ridge,
		NonnegativeS: cfg.NonnegativeS,
	}
}

// Validate checks every knob the way the corresponding per-call option
// would, plus that Method names a registered algorithm. A Spec accepted by
// Validate is accepted by WithSpec.
func (s Spec) Validate() error {
	if _, err := parafac2.MustLookup(string(s.Method)); err != nil {
		return err
	}
	if s.Rank <= 0 {
		return fmt.Errorf("repro: Spec.Rank %d: rank must be positive", s.Rank)
	}
	if s.MaxIters <= 0 {
		return fmt.Errorf("repro: Spec.MaxIters %d: must be positive", s.MaxIters)
	}
	if s.Tol < 0 {
		return fmt.Errorf("repro: Spec.Tol %g: must be >= 0", s.Tol)
	}
	if s.Oversample < 0 {
		return fmt.Errorf("repro: Spec.Oversample %d: must be >= 0", s.Oversample)
	}
	if s.PowerIters < 0 {
		return fmt.Errorf("repro: Spec.PowerIters %d: must be >= 0", s.PowerIters)
	}
	if s.Ridge < 0 {
		return fmt.Errorf("repro: Spec.Ridge %g: must be >= 0", s.Ridge)
	}
	return nil
}

// shardRowsThreshold resolves the ShardRows convention (0 = default,
// negative = off) exactly like Config.ShardRowsThreshold — the value the
// result-cache key uses, so a default and an explicit DefaultShardRows hit
// the same entry.
func (s Spec) shardRowsThreshold() int {
	return Config{ShardRows: s.ShardRows}.ShardRowsThreshold()
}

// config materializes the Config a method executes: the Spec's deterministic
// knobs plus the local-only overlay. Pool/Threads stay zero — the Engine
// pins them to its shared pool afterwards.
func (s Spec) config(run runOverlay) Config {
	return Config{
		Rank:             s.Rank,
		MaxIters:         s.MaxIters,
		Tol:              s.Tol,
		Seed:             s.Seed,
		Oversample:       s.Oversample,
		PowerIters:       s.PowerIters,
		ShardRows:        s.ShardRows,
		Ridge:            s.Ridge,
		NonnegativeS:     s.NonnegativeS,
		TrackConvergence: run.trackConvergence,
		Progress:         run.progress,
	}
}

// WithSpec replaces every deterministic knob at once with a canonical Spec —
// the serializable analogue of WithConfig, and the option the HTTP front end
// executes resolved requests through. The local-only overlay (Progress,
// convergence trace) is untouched; combine freely with those options. The
// Spec is validated eagerly: an invalid field surfaces as an error from the
// call WithSpec was passed to, like any per-call option.
func WithSpec(s Spec) Option {
	return func(j *jobSpec) error {
		if err := s.Validate(); err != nil {
			return err
		}
		j.spec = s
		return nil
	}
}

// ResolveSpec compiles per-call options over the Engine's base configuration
// into the canonical Spec the same options would execute under — the form
// that serializes, keys the result cache, and travels over the wire. The
// method name is canonicalized (aliases like "rdals" resolve to "rd-als"),
// so equal workloads resolve to equal Specs. ResolveSpec is pure: it neither
// runs anything nor touches the pool, and works on a closed Engine.
func (e *Engine) ResolveSpec(opts ...Option) (Spec, error) {
	js := e.newJobSpec()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&js); err != nil {
			return Spec{}, err
		}
	}
	m, err := parafac2.MustLookup(string(js.spec.Method))
	if err != nil {
		return Spec{}, err
	}
	js.spec.Method = MethodID(m.Name())
	if err := js.spec.Validate(); err != nil {
		return Spec{}, err
	}
	return js.spec, nil
}
