package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/dataio"
)

// TestResolveSpecDefaults: an optionless resolve yields the documented
// default spec, canonical method name included.
func TestResolveSpecDefaults(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	spec, err := eng.ResolveSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec != DefaultSpec() {
		t.Fatalf("resolved %+v, want DefaultSpec %+v", spec, DefaultSpec())
	}
	if spec.Method != MethodDPar2 || spec.Rank != 10 || spec.MaxIters != 32 {
		t.Fatalf("unexpected defaults: %+v", spec)
	}
}

// TestResolveSpecCanonicalizesAliases: the registry aliases the CLI accepts
// resolve to the canonical method name, so equal workloads have equal Specs.
func TestResolveSpecCanonicalizesAliases(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	a, err := eng.ResolveSpec(WithMethod("rdals"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.ResolveSpec(WithMethod(MethodRDALS))
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Method != MethodRDALS {
		t.Fatalf("alias did not canonicalize: %+v vs %+v", a, b)
	}
}

// TestResolveSpecFoldsOptions: granular options land in the resolved Spec.
func TestResolveSpecFoldsOptions(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	spec, err := eng.ResolveSpec(
		WithRank(7), WithMaxIters(11), WithTolerance(1e-4), WithSeed(99),
		WithOversample(4), WithPowerIters(2), WithShardRows(1234),
		WithRidge(1e-8), WithNonnegativeS(),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Method: MethodDPar2, Rank: 7, MaxIters: 11, Tol: 1e-4, Seed: 99,
		Oversample: 4, PowerIters: 2, ShardRows: 1234, Ridge: 1e-8, NonnegativeS: true}
	if spec != want {
		t.Fatalf("resolved %+v, want %+v", spec, want)
	}
}

// TestResolveSpecErrors: invalid options and unknown methods surface as
// errors, like the calls they would have been passed to.
func TestResolveSpecErrors(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	if _, err := eng.ResolveSpec(WithRank(-1)); err == nil {
		t.Fatal("expected error for negative rank")
	}
	if _, err := eng.ResolveSpec(WithMethod("no-such-method")); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

// TestSpecValidate covers the per-field checks WithSpec relies on.
func TestSpecValidate(t *testing.T) {
	good := DefaultSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Method = "bogus" },
		func(s *Spec) { s.Rank = 0 },
		func(s *Spec) { s.MaxIters = 0 },
		func(s *Spec) { s.Tol = -1 },
		func(s *Spec) { s.Oversample = -1 },
		func(s *Spec) { s.PowerIters = -1 },
		func(s *Spec) { s.Ridge = -1 },
	}
	for i, mutate := range cases {
		s := DefaultSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, s)
		}
	}
}

// TestWithSpecBitIdenticalToOptions: executing a resolved Spec (the path
// every transport request takes) is bit-identical to executing the granular
// option list it was resolved from.
func TestWithSpecBitIdenticalToOptions(t *testing.T) {
	eng := NewEngine(WithEngineThreads(2))
	defer eng.Close()
	g := NewRNG(3)
	ten := LowRankTensor(g, []int{60, 80, 70, 50}, 40, 6, 0.02)
	opts := []Option{WithRank(6), WithSeed(42), WithMaxIters(12), WithTolerance(0)}

	direct, err := eng.Decompose(context.Background(), ten, opts...)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := eng.ResolveSpec(opts...)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := eng.Decompose(context.Background(), ten, WithSpec(spec))
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := dataio.WriteResult(&a, direct); err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteResult(&b, viaSpec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WithSpec(resolved) result differs from the option-list result")
	}
	if direct.Fitness != viaSpec.Fitness || direct.Iters != viaSpec.Iters {
		t.Fatalf("metadata differs: fitness %v vs %v, iters %d vs %d",
			direct.Fitness, viaSpec.Fitness, direct.Iters, viaSpec.Iters)
	}
}

// TestWithSpecRejectsInvalid: WithSpec validates eagerly, before any work.
func TestWithSpecRejectsInvalid(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	g := NewRNG(1)
	ten := LowRankTensor(g, []int{20, 30}, 15, 4, 0.01)
	bad := DefaultSpec()
	bad.Rank = -3
	if _, err := eng.Decompose(context.Background(), ten, WithSpec(bad)); err == nil {
		t.Fatal("expected invalid-spec error")
	}
}

// TestSpecJSONRoundTrip: the wire form is stable and lossless — every knob
// survives marshal → unmarshal, including meaningful zeros.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{Method: MethodSPARTan, Rank: 5, MaxIters: 9, Tol: 0, Seed: 0,
		Oversample: 0, PowerIters: 0, ShardRows: -1, Ridge: 0.5, NonnegativeS: true}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("round trip changed the spec: %+v -> %s -> %+v", spec, raw, back)
	}
	// The wire field names are part of the documented schema
	// (docs/SERVICE.md); renaming one is a breaking change.
	for _, field := range []string{`"method"`, `"rank"`, `"max_iters"`, `"tol"`,
		`"seed"`, `"oversample"`, `"power_iters"`, `"shard_rows"`, `"ridge"`, `"nonneg_s"`} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("wire form missing field %s: %s", field, raw)
		}
	}
}

// TestWithConfigSplitsIntoSpecAndOverlay: WithConfig still carries a whole
// Config over, with its deterministic knobs visible in the resolved Spec.
func TestWithConfigSplitsIntoSpecAndOverlay(t *testing.T) {
	eng := NewEngine(WithEngineThreads(1))
	defer eng.Close()
	cfg := DefaultConfig()
	cfg.Rank = 4
	cfg.Seed = 77
	cfg.TrackConvergence = true // overlay, must not affect the Spec
	spec, err := eng.ResolveSpec(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rank != 4 || spec.Seed != 77 {
		t.Fatalf("WithConfig knobs missing from spec: %+v", spec)
	}
}
