package repro

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/parafac2"
	"repro/internal/tensor"
)

// countingMethod wraps the registered DPar2 method and counts invocations —
// the counter-asserted proof that a cache hit serves a repeated Decompose
// without running the method.
type countingMethod struct {
	inner parafac2.Method
	calls atomic.Int64
}

func (c *countingMethod) Name() string { return "counting-dpar2" }

func (c *countingMethod) Decompose(ctx context.Context, t *tensor.Irregular, cfg parafac2.Config) (*parafac2.Result, error) {
	c.calls.Add(1)
	return c.inner.Decompose(ctx, t, cfg)
}

var (
	countingOnce sync.Once
	counting     *countingMethod
)

// countingDPar2 registers (once) and returns the counting wrapper.
func countingDPar2(t *testing.T) *countingMethod {
	t.Helper()
	countingOnce.Do(func() {
		inner, err := parafac2.MustLookup(string(MethodDPar2))
		if err != nil {
			panic(err)
		}
		counting = &countingMethod{inner: inner}
		parafac2.Register(counting)
	})
	return counting
}

func resultsEqualBits(t *testing.T, a, b *Result) {
	t.Helper()
	if !a.H.EqualApprox(b.H, 0) || !a.V.EqualApprox(b.V, 0) {
		t.Fatal("H/V differ")
	}
	if a.K() != b.K() {
		t.Fatalf("K %d vs %d", a.K(), b.K())
	}
	for k := 0; k < a.K(); k++ {
		if !a.Qk(k).EqualApprox(b.Qk(k), 0) {
			t.Fatalf("Q_%d differs", k)
		}
		for i := range a.S[k] {
			if a.S[k][i] != b.S[k][i] {
				t.Fatalf("S_%d differs", k)
			}
		}
	}
	if a.Fitness != b.Fitness || a.FitnessKind != b.FitnessKind || a.Iters != b.Iters {
		t.Fatalf("run metadata differs: fitness %v/%v kind %v/%v iters %d/%d",
			a.Fitness, b.Fitness, a.FitnessKind, b.FitnessKind, a.Iters, b.Iters)
	}
}

// TestEngineResultCacheHit is the tentpole acceptance test: a repeated
// Decompose is served from the cache without invoking the method, with
// hit/miss counters surfaced through CacheCounters, EngineStats, and the
// per-tenant Submit path.
func TestEngineResultCacheHit(t *testing.T) {
	cm := countingDPar2(t)
	stats := &EngineStats{}
	dir := t.TempDir()
	eng := NewEngine(
		WithBaseConfig(engineTestConfig()),
		WithStateDir(dir),
		WithResultCache(1<<22),
		WithEngineMetrics(stats),
	)
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(11)
	opt := WithMethod(MethodID(cm.Name()))

	before := cm.calls.Load()
	first, err := eng.Decompose(ctx, ten, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.calls.Load() - before; got != 1 {
		t.Fatalf("first Decompose invoked the method %d times", got)
	}

	second, err := eng.Decompose(ctx, ten, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.calls.Load() - before; got != 1 {
		t.Fatalf("cache hit still invoked the method (%d total calls)", got)
	}
	resultsEqualBits(t, first, second)

	hits, misses := eng.CacheCounters()
	if hits != 1 || misses != 1 {
		t.Fatalf("CacheCounters = (%d, %d), want (1, 1)", hits, misses)
	}
	def := stats.Tenant("")
	if def.CacheHits != 1 || def.CacheMisses != 1 {
		t.Fatalf("EngineStats default tenant cache counters = (%d, %d), want (1, 1)",
			def.CacheHits, def.CacheMisses)
	}

	// The Submit path consults the same cache and attributes the hit to the
	// job's tenant.
	jr := <-eng.Submit(ctx, Job{Tensor: ten, Options: []Option{opt}, Tenant: "acme"})
	if jr.Err != nil {
		t.Fatal(jr.Err)
	}
	if got := cm.calls.Load() - before; got != 1 {
		t.Fatalf("submitted job missed the cache (%d total calls)", got)
	}
	resultsEqualBits(t, first, jr.Result)
	if acme := stats.Tenant("acme"); acme.CacheHits != 1 {
		t.Fatalf("tenant acme cache hits = %d, want 1", acme.CacheHits)
	}

	// A different knob is a different key: changing the rank must miss.
	if _, err := eng.Decompose(ctx, ten, opt, WithRank(3)); err != nil {
		t.Fatal(err)
	}
	if got := cm.calls.Load() - before; got != 2 {
		t.Fatalf("rank change should have missed the cache (%d total calls)", got)
	}
}

// TestEngineCacheBypassesSideEffectRuns: convergence traces and Progress
// callbacks must actually run, so those calls never consult or populate the
// cache.
func TestEngineCacheBypassesSideEffectRuns(t *testing.T) {
	cm := countingDPar2(t)
	eng := NewEngine(
		WithBaseConfig(engineTestConfig()),
		WithStateDir(t.TempDir()),
		WithResultCache(1<<22),
	)
	defer eng.Close()
	ctx := context.Background()
	ten := engineTestTensor(12)
	opt := WithMethod(MethodID(cm.Name()))

	before := cm.calls.Load()
	for i := 0; i < 2; i++ {
		if _, err := eng.Decompose(ctx, ten, opt, WithConvergenceTrace()); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	progress := WithProgress(func(int, float64) bool { calls++; return true })
	if _, err := eng.Decompose(ctx, ten, opt, progress); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress callback never ran")
	}
	if got := cm.calls.Load() - before; got != 3 {
		t.Fatalf("side-effect runs were cached (%d calls, want 3)", got)
	}
	if hits, misses := eng.CacheCounters(); hits != 0 || misses != 0 {
		t.Fatalf("bypassed runs touched the cache: (%d, %d)", hits, misses)
	}
}

// TestEngineCachePersistsAcrossEngines: the cache is on disk — a new Engine
// over the same state directory serves the previous engine's results.
func TestEngineCachePersistsAcrossEngines(t *testing.T) {
	cm := countingDPar2(t)
	dir := t.TempDir()
	ten := engineTestTensor(13)
	opt := WithMethod(MethodID(cm.Name()))
	build := func() *Engine {
		return NewEngine(WithBaseConfig(engineTestConfig()), WithStateDir(dir), WithResultCache(1<<22))
	}

	eng1 := build()
	first, err := eng1.Decompose(context.Background(), ten, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng1.Close()

	before := cm.calls.Load()
	eng2 := build()
	defer eng2.Close()
	second, err := eng2.Decompose(context.Background(), ten, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cm.calls.Load() != before {
		t.Fatal("second engine re-ran a cached decomposition")
	}
	resultsEqualBits(t, first, second)
	if hits, _ := eng2.CacheCounters(); hits != 1 {
		t.Fatalf("second engine hits = %d, want 1", hits)
	}
}

// TestEngineSaveResumeStream: the engine-level checkpoint path — relative
// paths under the state dir, atomic write, restore rebinding to the pool,
// and bit-identical continuation.
func TestEngineSaveResumeStream(t *testing.T) {
	dir := t.TempDir()
	eng := NewEngine(WithBaseConfig(engineTestConfig()), WithStateDir(dir))
	defer eng.Close()
	ctx := context.Background()

	g := NewRNG(21)
	full := LowRankTensor(g, []int{50, 60, 45, 55, 65, 40}, 18, 3, 0.02)
	initial := tensor.MustIrregular(full.Slices[:3])
	st, err := eng.NewStream(ctx, initial, WithRank(3), WithMaxIters(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Absorb(full.Slices[3:4]); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveStream("streams/run.dpc2", st); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "streams", "run.dpc2")); err != nil {
		t.Fatalf("relative checkpoint path not under state dir: %v", err)
	}

	back, err := eng.ResumeStream(ctx, "streams/run.dpc2")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Absorb(full.Slices[4:]); err != nil {
		t.Fatal(err)
	}
	if err := back.Absorb(full.Slices[4:]); err != nil {
		t.Fatal(err)
	}
	if st.K() != back.K() {
		t.Fatalf("K %d vs %d", st.K(), back.K())
	}
	resultsEqualBits(t, st.Result(), back.Result())
}

// TestEngineSaveStreamNeedsDirForRelative: SaveStream must also work with no
// state dir when given an explicit path, and reject nil streams.
func TestEngineSaveStreamValidation(t *testing.T) {
	eng := NewEngine(WithBaseConfig(engineTestConfig()))
	defer eng.Close()
	if err := eng.SaveStream(filepath.Join(t.TempDir(), "x.dpc2"), nil); err == nil {
		t.Fatal("expected error for nil stream")
	}

	g := NewRNG(22)
	full := LowRankTensor(g, []int{40, 50, 45}, 14, 3, 0.02)
	st, err := eng.NewStream(context.Background(), full, WithRank(3), WithMaxIters(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "explicit.dpc2")
	if err := eng.SaveStream(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ResumeStream(context.Background(), path); err != nil {
		t.Fatal(err)
	}

	eng.Close()
	if err := eng.SaveStream(path, st); err != ErrEngineClosed {
		t.Fatalf("SaveStream on closed engine: %v", err)
	}
	if _, err := eng.ResumeStream(context.Background(), path); err != ErrEngineClosed {
		t.Fatalf("ResumeStream on closed engine: %v", err)
	}
}

// TestEngineDurableOptionValidation: the eager-validation contract extends to
// the durable-state options.
func TestEngineDurableOptionValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("WithStateDir empty", func() { NewEngine(WithStateDir("")) })
	expectPanic("WithResultCache zero", func() { NewEngine(WithResultCache(0)) })
	expectPanic("WithResultCache negative", func() { NewEngine(WithResultCache(-1)) })
	expectPanic("cache without state dir", func() { NewEngine(WithResultCache(1 << 20)) })
}

// TestNewEngineSweepsStaleTemps: a SaveStream killed mid-write leaves a hidden
// ".<name>.tmp-*" orphan in the state dir; the next engine built on that dir
// must sweep it at init, while visible checkpoints survive untouched.
func TestNewEngineSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, ".run.dpc2.tmp-12345")
	keep := filepath.Join(dir, "run.dpc2")
	for _, p := range []string{orphan, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	eng := NewEngine(WithBaseConfig(engineTestConfig()), WithStateDir(dir))
	defer eng.Close()

	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("stale temp %s survived NewEngine (stat err: %v)", orphan, err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("visible checkpoint swept: %v", err)
	}
}
