package parafac2

import (
	"testing"

	"repro/internal/lapack"
	"repro/internal/rng"
)

// TestNoSteadyStatePoolChurn pins the workspace plumbing end to end: the ALS
// iteration phase factors every per-slice R×R problem through FactorBatch's
// owned slab, and stage 1 threads per-bucket Jacobi workspaces through rsvd,
// so the only lapack pool draw left in a full DPar2 run is the single
// stage-2 SVD. lapack.PoolDraws counts every workspacePool fallback; a
// regression that reintroduces per-slice pool churn shows up here as a
// K-proportional delta, not as a benchmark wobble.
func TestNoSteadyStatePoolChurn(t *testing.T) {
	g := rng.New(91)
	ten := synthPARAFAC2(g, irregRows(g, 8, 30, 70), 14, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 6
	cfg.Tol = 0

	before := lapack.PoolDraws()
	comp := Compress(ten, cfg)
	if d := lapack.PoolDraws() - before; d > 1 {
		t.Fatalf("Compress drew %d workspaces from the lapack pool, want at most 1 (the stage-2 SVD)", d)
	}

	before = lapack.PoolDraws()
	if _, err := DPar2FromCompressed(comp, cfg); err != nil {
		t.Fatal(err)
	}
	if d := lapack.PoolDraws() - before; d != 0 {
		t.Fatalf("ALS iterations drew %d workspaces from the lapack pool, want 0", d)
	}
}

// TestShardedCompressPoolChurn covers the sharded stage-1 path: shard
// sketches are SVD-free and every merge SVD reuses the single merge
// workspace, so the budget is the same one stage-2 draw.
func TestShardedCompressPoolChurn(t *testing.T) {
	g := rng.New(92)
	ten := synthPARAFAC2(g, []int{900, 40, 60, 50}, 20, 3, 0.05)
	cfg := smallConfig(3)
	cfg.ShardRows = 128 // tall slice fans out into shard units

	before := lapack.PoolDraws()
	Compress(ten, cfg)
	if d := lapack.PoolDraws() - before; d > 1 {
		t.Fatalf("sharded Compress drew %d pool workspaces, want at most 1", d)
	}
}
