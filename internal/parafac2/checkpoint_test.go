package parafac2

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/rng"
	"repro/internal/state"
	"repro/internal/tensor"
)

func checkpointBytes(t *testing.T, s *StreamingDPar2) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamsEqualBits asserts two streams are in bit-identical state: compressed
// representation, factors, absorb count, and RNG stream.
func streamsEqualBits(t *testing.T, a, b *StreamingDPar2) {
	t.Helper()
	if a.K() != b.K() {
		t.Fatalf("K: %d vs %d", a.K(), b.K())
	}
	if a.g.State() != b.g.State() {
		t.Fatal("RNG state diverged")
	}
	compressedEqualBits(t, a.Compressed(), b.Compressed())
	ra, rb := a.Result(), b.Result()
	if (ra == nil) != (rb == nil) {
		t.Fatal("one stream lost its result")
	}
	if ra == nil {
		return
	}
	if !ra.H.EqualApprox(rb.H, 0) || !ra.V.EqualApprox(rb.V, 0) {
		t.Fatal("H/V not bit-identical")
	}
	if ra.K() != rb.K() {
		t.Fatalf("result K: %d vs %d", ra.K(), rb.K())
	}
	for k := 0; k < ra.K(); k++ {
		if !ra.Qk(k).EqualApprox(rb.Qk(k), 0) {
			t.Fatalf("Q_%d not bit-identical", k)
		}
		for i := range ra.S[k] {
			if ra.S[k][i] != rb.S[k][i] {
				t.Fatalf("S_%d not bit-identical", k)
			}
		}
	}
}

// TestCheckpointRestoreAbsorbBitIdentical is the tentpole contract:
// checkpoint → restore → Absorb produces exactly the bytes an uninterrupted
// stream produces — compressed state, factors, RNG, everything.
func TestCheckpointRestoreAbsorbBitIdentical(t *testing.T) {
	g := rng.New(91)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55, 38, 42, 47, 51}, 16, 3, 0.02)
	cfg := smallConfig(3)

	ref, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:3]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Absorb(full.Slices[3:5]); err != nil {
		t.Fatal(err)
	}

	// Snapshot mid-stream, then keep both the original and the restored copy
	// absorbing the same batches.
	snap := checkpointBytes(t, ref)
	back, err := RestoreStream(bytes.NewReader(snap), cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamsEqualBits(t, ref, back)

	if err := ref.Absorb(full.Slices[5:7]); err != nil {
		t.Fatal(err)
	}
	if err := back.Absorb(full.Slices[5:7]); err != nil {
		t.Fatal(err)
	}
	streamsEqualBits(t, ref, back)

	// And again, to show the restored stream keeps pace indefinitely.
	if err := ref.Absorb(full.Slices[7:]); err != nil {
		t.Fatal(err)
	}
	if err := back.Absorb(full.Slices[7:]); err != nil {
		t.Fatal(err)
	}
	streamsEqualBits(t, ref, back)

	if !back.Result().Factored() {
		t.Fatal("restored stream result lost its factored form")
	}
}

// TestCheckpointRestoreKeepsRetryContract: the PR-4 retry guarantee (cancel →
// retry is bit-identical to uninterrupted) survives a checkpoint/restore in
// the middle — restore, cancel an absorb, retry it, and the stream still
// matches the uninterrupted reference bit for bit.
func TestCheckpointRestoreKeepsRetryContract(t *testing.T) {
	g := rng.New(92)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55, 38, 42}, 16, 3, 0.02)
	cfg := smallConfig(3)
	cfg.Threads = 1 // deterministic ctx.Err() call sequence

	ref, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:2]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkpointBytes(t, ref)
	batch1, batch2 := full.Slices[2:4], full.Slices[4:6]
	if err := ref.Absorb(batch1); err != nil {
		t.Fatal(err)
	}
	if err := ref.Absorb(batch2); err != nil {
		t.Fatal(err)
	}

	back, err := RestoreStream(bytes.NewReader(snap), cfg)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &errAfterCtx{failAfter: 3} // cancels at the post-sketch checkpoint
	if err := back.AbsorbCtx(flaky, batch1); err == nil {
		t.Fatal("expected cancellation error")
	}
	if back.K() != 2 {
		t.Fatal("cancelled absorb mutated the restored stream")
	}
	if err := back.Absorb(batch1); err != nil {
		t.Fatal(err)
	}
	if err := back.Absorb(batch2); err != nil {
		t.Fatal(err)
	}
	streamsEqualBits(t, ref, back)
}

// TestRestoreStreamConfigSplit: deterministic knobs come from the checkpoint
// (the caller cannot accidentally resume at a different rank or seed), while
// runtime bindings come from the caller.
func TestRestoreStreamConfigSplit(t *testing.T) {
	g := rng.New(93)
	full := synthPARAFAC2(g, []int{40, 50, 45}, 16, 3, 0.02)
	cfg := smallConfig(3)
	s, err := NewStreamingDPar2(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RefreshIters = 5
	snap := checkpointBytes(t, s)

	caller := DefaultConfig() // different rank/seed/etc from smallConfig
	caller.Threads = 2
	back, err := RestoreStream(bytes.NewReader(snap), caller)
	if err != nil {
		t.Fatal(err)
	}
	if back.cfg.Rank != cfg.Rank || back.cfg.Seed != cfg.Seed ||
		back.cfg.MaxIters != cfg.MaxIters || back.cfg.Oversample != cfg.Oversample {
		t.Fatalf("restored config lost checkpointed knobs: %+v", back.cfg)
	}
	if back.cfg.Threads != 2 {
		t.Fatal("restored config ignored caller's runtime Threads")
	}
	if back.RefreshIters != 5 {
		t.Fatalf("RefreshIters %d, want 5", back.RefreshIters)
	}
	if back.K() != 3 {
		t.Fatalf("absorbed %d, want 3", back.K())
	}
	res := back.Result()
	if res.Fitness != s.Result().Fitness || res.FitnessKind != s.Result().FitnessKind ||
		res.Iters != s.Result().Iters || res.PreprocessedBytes != s.Result().PreprocessedBytes {
		t.Fatal("result metadata not preserved")
	}
}

// TestRestoreStreamRejectsCorrupt: every single-byte flip and every
// truncation of a valid checkpoint is rejected with ErrCheckpoint — the
// trailer is mandatory, so even a cut at the payload/trailer boundary fails.
func TestRestoreStreamRejectsCorrupt(t *testing.T) {
	g := rng.New(94)
	full := synthPARAFAC2(g, []int{40, 50, 45}, 14, 3, 0.02)
	s, err := NewStreamingDPar2(full, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	valid := checkpointBytes(t, s)

	if _, err := RestoreStream(bytes.NewReader(valid), smallConfig(3)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := RestoreStream(bytes.NewReader(valid[:cut]), smallConfig(3)); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("truncation at %d: want ErrCheckpoint, got %v", cut, err)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		if _, err := RestoreStream(bytes.NewReader(mut), smallConfig(3)); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

// TestCheckpointAtomicFileRoundtrip: the documented pairing with
// state.WriteFileAtomic works end to end.
func TestCheckpointAtomicFileRoundtrip(t *testing.T) {
	g := rng.New(95)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55}, 14, 3, 0.02)
	cfg := smallConfig(3)
	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:3]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/stream.dpc2"
	if err := state.WriteFileAtomic(path, s.Checkpoint); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := RestoreStream(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	if err := back.Absorb(full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	streamsEqualBits(t, s, back)
}
