package parafac2

import (
	"context"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestAppendMatchesFullCompressOnExactData(t *testing.T) {
	// On exact low-rank data both the incremental and the full compression
	// are lossless, so slice approximations must match the originals.
	g := rng.New(1)
	full := synthPARAFAC2(g, []int{40, 60, 50, 70, 55}, 20, 3, 0)
	cfg := smallConfig(3)

	initial := tensor.MustIrregular(full.Slices[:3])
	comp := Compress(initial, cfg)
	if err := comp.Append(rng.New(99), full.Slices[3:], cfg); err != nil {
		t.Fatal(err)
	}
	if len(comp.A) != 5 || len(comp.F) != 5 {
		t.Fatalf("compressed holds %d/%d slices, want 5", len(comp.A), len(comp.F))
	}
	for k := range full.Slices {
		rel := comp.SliceApprox(k).FrobDist(full.Slices[k]) / full.Slices[k].FrobNorm()
		if rel > 1e-6 {
			t.Fatalf("slice %d approx error %v after append", k, rel)
		}
	}
	if !comp.D.IsOrthonormalCols(1e-8) {
		t.Fatal("D lost orthonormality after append")
	}
}

func TestAppendValidation(t *testing.T) {
	g := rng.New(2)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	cfg := smallConfig(2)
	comp := Compress(ten, cfg)

	if err := comp.Append(g, nil, cfg); err != nil {
		t.Fatalf("empty append should be a no-op: %v", err)
	}
	bad := []*mat.Dense{mat.New(20, 11)} // wrong column count
	if err := comp.Append(g, bad, cfg); err == nil {
		t.Fatal("expected column-mismatch error")
	}
	tiny := []*mat.Dense{mat.New(1, 10)} // fewer rows than rank
	if err := comp.Append(g, tiny, cfg); err == nil {
		t.Fatal("expected rank/rows error")
	}
}

func TestAppendRejectsNarrowCompressed(t *testing.T) {
	// A hand-built Compressed with J < rank (which no validated
	// decomposition produces) must be rejected before any work starts —
	// the rsvd padding path would otherwise silently mis-shape F blocks.
	g := rng.New(21)
	comp := &Compressed{J: 3, Rank: 5}
	bad := []*mat.Dense{mat.New(10, 3)}
	if err := comp.Append(g, bad, smallConfig(5)); err == nil {
		t.Fatal("expected J < rank error")
	}
}

func TestAbsorbEmptyBatchLeavesResultUntouched(t *testing.T) {
	// An empty batch must not burn RefreshIters warm-start iterations:
	// AbsorbCtx early-returns and Result stays the exact same object.
	g := rng.New(22)
	initial := synthPARAFAC2(g, []int{50, 60, 45}, 18, 3, 0.02)
	st, err := NewStreamingDPar2(initial, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	before := st.Result()
	fitBefore := before.Fitness
	if err := st.Absorb(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Absorb([]*mat.Dense{}); err != nil {
		t.Fatal(err)
	}
	if st.Result() != before {
		t.Fatal("empty Absorb replaced Result (ran a refresh)")
	}
	if st.Result().Fitness != fitBefore {
		t.Fatal("empty Absorb changed the factors")
	}
	if st.K() != initial.K() {
		t.Fatalf("empty Absorb changed K to %d", st.K())
	}
}

func TestStreamingDPar2TracksBatches(t *testing.T) {
	g := rng.New(3)
	full := synthPARAFAC2(g, []int{50, 60, 45, 70, 55, 65, 40, 75}, 18, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 40

	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatalf("K=%d want 4", s.K())
	}
	if err := s.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(full.Slices[6:]); err != nil {
		t.Fatal(err)
	}
	if s.K() != 8 {
		t.Fatalf("K=%d want 8", s.K())
	}
	// The streamed factorization should fit the *entire* tensor well.
	fit := Fitness(full, s.Result())
	if fit < 0.95 {
		t.Fatalf("streaming fitness %v over all 8 slices", fit)
	}
	if len(s.Result().Q) != 8 {
		t.Fatalf("result covers %d slices", len(s.Result().Q))
	}
}

func TestStreamingComparableToBatch(t *testing.T) {
	g := rng.New(4)
	full := synthPARAFAC2(g, []int{60, 50, 70, 55, 65, 45}, 16, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 60

	batch, err := DPar2(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:3]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	streamFit := Fitness(full, s.Result())
	if streamFit < batch.Fitness-0.03 {
		t.Fatalf("streaming fitness %v far below batch %v", streamFit, batch.Fitness)
	}
}

// TestAbsorbWarmStartBoundsIterations: each Absorb refresh warm-starts from
// the previous factors and runs at most RefreshIters iterations (instead of
// the full MaxIters a cold start uses), without giving up fitness on data
// the previous factors already explain.
func TestAbsorbWarmStartBoundsIterations(t *testing.T) {
	g := rng.New(31)
	full := synthPARAFAC2(g, []int{50, 60, 45, 55, 65, 40, 70, 52}, 16, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 40

	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got < 1 {
		t.Fatalf("bootstrap ran %d iterations", got)
	}

	if err := s.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got > DefaultRefreshIters {
		t.Fatalf("warm absorb ran %d iterations, bound is %d", got, DefaultRefreshIters)
	}

	s.RefreshIters = 2
	if err := s.Absorb(full.Slices[6:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got > 2 {
		t.Fatalf("warm absorb ran %d iterations, bound is 2", got)
	}
	if len(s.Result().Q) != 8 {
		t.Fatalf("result covers %d slices, want 8", len(s.Result().Q))
	}
	if fit := Fitness(full, s.Result()); fit < 0.95 {
		t.Fatalf("warm-started streaming fitness %v over all slices", fit)
	}
}

// TestWarmStartIncompatibleFallsBack: a warmStart whose shapes do not match
// the compressed tensor is ignored (cold init), not an error or a panic.
func TestWarmStartIncompatibleFallsBack(t *testing.T) {
	g := rng.New(32)
	ten := synthPARAFAC2(g, []int{40, 50, 45}, 12, 3, 0.02)
	cfg := smallConfig(3)
	comp := Compress(ten, cfg)

	bad := &warmStart{h: mat.New(5, 5), v: mat.New(7, 5)} // wrong shapes
	res, err := dpar2Iterate(context.Background(), comp, cfg, bad)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.EqualApprox(cold.H, 0) {
		t.Fatal("incompatible warm start must fall back to the cold initialization")
	}
}

// TestCompressedFitnessEstimatePopulated: DPar2FromCompressed now reports a
// compressed-space fitness. On exact low-rank data compression is lossless,
// so the estimate must agree closely with the true fitness; it must also be
// populated (the old behavior silently left 0).
func TestCompressedFitnessEstimatePopulated(t *testing.T) {
	g := rng.New(33)
	ten := synthPARAFAC2(g, []int{50, 60, 45, 55}, 15, 3, 0)
	cfg := smallConfig(3)
	cfg.MaxIters = 60

	comp := Compress(ten, cfg)
	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness == 0 {
		t.Fatal("Result.Fitness left unpopulated by DPar2FromCompressed")
	}
	truth := Fitness(ten, res)
	if diff := math.Abs(res.Fitness - truth); diff > 1e-6 {
		t.Fatalf("compressed-space fitness %v vs true fitness %v (diff %v) on lossless data",
			res.Fitness, truth, diff)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("fitness estimate %v on exact data", res.Fitness)
	}
}
