package parafac2

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestAppendMatchesFullCompressOnExactData(t *testing.T) {
	// On exact low-rank data both the incremental and the full compression
	// are lossless, so slice approximations must match the originals.
	g := rng.New(1)
	full := synthPARAFAC2(g, []int{40, 60, 50, 70, 55}, 20, 3, 0)
	cfg := smallConfig(3)

	initial := tensor.MustIrregular(full.Slices[:3])
	comp := Compress(initial, cfg)
	if err := comp.Append(rng.New(99), full.Slices[3:], cfg); err != nil {
		t.Fatal(err)
	}
	if len(comp.A) != 5 || len(comp.F) != 5 {
		t.Fatalf("compressed holds %d/%d slices, want 5", len(comp.A), len(comp.F))
	}
	for k := range full.Slices {
		rel := comp.SliceApprox(k).FrobDist(full.Slices[k]) / full.Slices[k].FrobNorm()
		if rel > 1e-6 {
			t.Fatalf("slice %d approx error %v after append", k, rel)
		}
	}
	if !comp.D.IsOrthonormalCols(1e-8) {
		t.Fatal("D lost orthonormality after append")
	}
}

func TestAppendValidation(t *testing.T) {
	g := rng.New(2)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	cfg := smallConfig(2)
	comp := Compress(ten, cfg)

	if err := comp.Append(g, nil, cfg); err != nil {
		t.Fatalf("empty append should be a no-op: %v", err)
	}
	bad := []*mat.Dense{mat.New(20, 11)} // wrong column count
	if err := comp.Append(g, bad, cfg); err == nil {
		t.Fatal("expected column-mismatch error")
	}
	tiny := []*mat.Dense{mat.New(1, 10)} // fewer rows than rank
	if err := comp.Append(g, tiny, cfg); err == nil {
		t.Fatal("expected rank/rows error")
	}
}

func TestAppendRejectsNarrowCompressed(t *testing.T) {
	// A hand-built Compressed with J < rank (which no validated
	// decomposition produces) must be rejected before any work starts —
	// the rsvd padding path would otherwise silently mis-shape F blocks.
	g := rng.New(21)
	comp := &Compressed{J: 3, Rank: 5}
	bad := []*mat.Dense{mat.New(10, 3)}
	if err := comp.Append(g, bad, smallConfig(5)); err == nil {
		t.Fatal("expected J < rank error")
	}
}

func TestAbsorbEmptyBatchLeavesResultUntouched(t *testing.T) {
	// An empty batch must not burn RefreshIters warm-start iterations:
	// AbsorbCtx early-returns and Result stays the exact same object.
	g := rng.New(22)
	initial := synthPARAFAC2(g, []int{50, 60, 45}, 18, 3, 0.02)
	st, err := NewStreamingDPar2(initial, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	before := st.Result()
	fitBefore := before.Fitness
	if err := st.Absorb(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Absorb([]*mat.Dense{}); err != nil {
		t.Fatal(err)
	}
	if st.Result() != before {
		t.Fatal("empty Absorb replaced Result (ran a refresh)")
	}
	if st.Result().Fitness != fitBefore {
		t.Fatal("empty Absorb changed the factors")
	}
	if st.K() != initial.K() {
		t.Fatalf("empty Absorb changed K to %d", st.K())
	}
}

func TestStreamingDPar2TracksBatches(t *testing.T) {
	g := rng.New(3)
	full := synthPARAFAC2(g, []int{50, 60, 45, 70, 55, 65, 40, 75}, 18, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 40

	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatalf("K=%d want 4", s.K())
	}
	if err := s.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(full.Slices[6:]); err != nil {
		t.Fatal(err)
	}
	if s.K() != 8 {
		t.Fatalf("K=%d want 8", s.K())
	}
	// The streamed factorization should fit the *entire* tensor well.
	fit := Fitness(full, s.Result())
	if fit < 0.95 {
		t.Fatalf("streaming fitness %v over all 8 slices", fit)
	}
	if s.Result().K() != 8 {
		t.Fatalf("result covers %d slices", s.Result().K())
	}
}

func TestStreamingComparableToBatch(t *testing.T) {
	g := rng.New(4)
	full := synthPARAFAC2(g, []int{60, 50, 70, 55, 65, 45}, 16, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 60

	batch, err := DPar2(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:3]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(full.Slices[3:]); err != nil {
		t.Fatal(err)
	}
	streamFit := Fitness(full, s.Result())
	if streamFit < batch.Fitness-0.03 {
		t.Fatalf("streaming fitness %v far below batch %v", streamFit, batch.Fitness)
	}
}

// TestAbsorbWarmStartBoundsIterations: each Absorb refresh warm-starts from
// the previous factors and runs at most RefreshIters iterations (instead of
// the full MaxIters a cold start uses), without giving up fitness on data
// the previous factors already explain.
func TestAbsorbWarmStartBoundsIterations(t *testing.T) {
	g := rng.New(31)
	full := synthPARAFAC2(g, []int{50, 60, 45, 55, 65, 40, 70, 52}, 16, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 40

	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got < 1 {
		t.Fatalf("bootstrap ran %d iterations", got)
	}

	if err := s.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got > DefaultRefreshIters {
		t.Fatalf("warm absorb ran %d iterations, bound is %d", got, DefaultRefreshIters)
	}

	s.RefreshIters = 2
	if err := s.Absorb(full.Slices[6:]); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Iters; got > 2 {
		t.Fatalf("warm absorb ran %d iterations, bound is 2", got)
	}
	if s.Result().K() != 8 {
		t.Fatalf("result covers %d slices, want 8", s.Result().K())
	}
	if fit := Fitness(full, s.Result()); fit < 0.95 {
		t.Fatalf("warm-started streaming fitness %v over all slices", fit)
	}
}

// TestWarmStartIncompatibleFallsBack: a warmStart whose shapes do not match
// the compressed tensor is ignored (cold init), not an error or a panic.
func TestWarmStartIncompatibleFallsBack(t *testing.T) {
	g := rng.New(32)
	ten := synthPARAFAC2(g, []int{40, 50, 45}, 12, 3, 0.02)
	cfg := smallConfig(3)
	comp := Compress(ten, cfg)

	bad := &warmStart{h: mat.New(5, 5), v: mat.New(7, 5)} // wrong shapes
	res, err := dpar2Iterate(context.Background(), comp, cfg, bad)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.EqualApprox(cold.H, 0) {
		t.Fatal("incompatible warm start must fall back to the cold initialization")
	}
}

// TestCompressedFitnessEstimatePopulated: DPar2FromCompressed now reports a
// compressed-space fitness. On exact low-rank data compression is lossless,
// so the estimate must agree closely with the true fitness; it must also be
// populated (the old behavior silently left 0).
func TestCompressedFitnessEstimatePopulated(t *testing.T) {
	g := rng.New(33)
	ten := synthPARAFAC2(g, []int{50, 60, 45, 55}, 15, 3, 0)
	cfg := smallConfig(3)
	cfg.MaxIters = 60

	comp := Compress(ten, cfg)
	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness == 0 {
		t.Fatal("Result.Fitness left unpopulated by DPar2FromCompressed")
	}
	truth := Fitness(ten, res)
	if diff := math.Abs(res.Fitness - truth); diff > 1e-6 {
		t.Fatalf("compressed-space fitness %v vs true fitness %v (diff %v) on lossless data",
			res.Fitness, truth, diff)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("fitness estimate %v on exact data", res.Fitness)
	}
}

// errAfterCtx is a context whose Err starts failing after a fixed number of
// checks — a deterministic way to cancel AppendCtx at a chosen internal
// checkpoint (with a serial config the Err call sequence is fixed).
type errAfterCtx struct {
	calls     int32
	failAfter int32
}

func (c *errAfterCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *errAfterCtx) Done() <-chan struct{}       { return nil }
func (c *errAfterCtx) Value(any) any               { return nil }
func (c *errAfterCtx) Err() error {
	if atomic.AddInt32(&c.calls, 1) > c.failAfter {
		return context.Canceled
	}
	return nil
}

// compressedEqualBits asserts two compressed representations are
// bit-identical (the retry contract is bit-level, not approximate).
func compressedEqualBits(t *testing.T, a, b *Compressed) {
	t.Helper()
	if len(a.A) != len(b.A) || len(a.F) != len(b.F) || len(a.E) != len(b.E) {
		t.Fatalf("shape mismatch: %d/%d A, %d/%d F, %d/%d E",
			len(a.A), len(b.A), len(a.F), len(b.F), len(a.E), len(b.E))
	}
	if !a.D.EqualApprox(b.D, 0) {
		t.Fatal("D not bit-identical")
	}
	for i := range a.E {
		if a.E[i] != b.E[i] {
			t.Fatalf("E[%d] not bit-identical", i)
		}
	}
	for k := range a.A {
		if !a.A[k].EqualApprox(b.A[k], 0) {
			t.Fatalf("A_%d not bit-identical", k)
		}
		if !a.F[k].EqualApprox(b.F[k], 0) {
			t.Fatalf("F_%d not bit-identical", k)
		}
	}
}

// TestAppendRetryBitReproducible: a cancelled AppendCtx must leave the
// caller's generator untouched, so cancel → retry reproduces an
// uninterrupted stream bit for bit. Before the fix, Append consumed n
// stage-1 Splits (plus the stage-2 draws) from the parent generator before
// the cancellation checkpoints, so a retried batch sketched with different
// randomness.
func TestAppendRetryBitReproducible(t *testing.T) {
	g := rng.New(71)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55, 38, 42}, 16, 3, 0.02)
	cfg := smallConfig(3)
	cfg.Threads = 1 // deterministic ctx.Err() call sequence
	initial := tensor.MustIrregular(full.Slices[:2])
	batch1, batch2 := full.Slices[2:4], full.Slices[4:6]

	// Uninterrupted reference run.
	ref := Compress(initial, cfg)
	gRef := rng.New(7)
	if err := ref.Append(gRef, batch1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := ref.Append(gRef, batch2, cfg); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancellation fires at the post-sketch checkpoint
	// (Err call 1 = entry, calls 2-3 = the two stage-1 units, call 4 =
	// after the sketches), i.e. after all of stage 1 already drew
	// randomness from the child generator.
	got := Compress(initial, cfg)
	gGot := rng.New(7)
	flaky := &errAfterCtx{failAfter: 3}
	err := got.AppendCtx(flaky, gGot, batch1, cfg)
	if err == nil {
		t.Fatal("expected cancellation error from mid-append cancel")
	}
	if len(got.A) != 2 || len(got.F) != 2 {
		t.Fatal("cancelled append mutated the compressed representation")
	}
	// Retry the same batch, then continue the stream.
	if err := got.Append(gGot, batch1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := got.Append(gGot, batch2, cfg); err != nil {
		t.Fatal(err)
	}

	compressedEqualBits(t, ref, got)
}

// TestAppendAllocsBoundedInK: the old-F basis rotation runs in place through
// recycled arena scratch, so per-batch allocations must not grow with the
// number of slices already absorbed (it used to allocate K fresh matrices
// plus the ScaleColumns/HConcat copies every batch).
func TestAppendAllocsBoundedInK(t *testing.T) {
	cfg := smallConfig(3)
	cfg.Threads = 0 // serial: allocation counts are exact

	measure := func(k int) float64 {
		g := rng.New(uint64(80 + k))
		rows := make([]int, k)
		for i := range rows {
			rows[i] = 25 + 5*(i%4)
		}
		base := Compress(synthPARAFAC2(g, rows, 12, 3, 0.02), cfg)
		batch := synthPARAFAC2(g, []int{30, 35}, 12, 3, 0.02).Slices

		const runs = 8
		comps := make([]*Compressed, runs+1) // AllocsPerRun calls f runs+1 times
		for i := range comps {
			comps[i] = base.Clone()
		}
		idx := 0
		return testing.AllocsPerRun(runs, func() {
			c := comps[idx]
			idx++
			if err := c.Append(rng.New(9), batch, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}

	a8 := measure(8)
	a64 := measure(64)
	// Identical batch work; the only K-dependent allocations left are the
	// amortized growth of the A/F pointer slices. Allow modest slack for
	// arena/sync.Pool jitter.
	if a64 > a8*1.3+16 {
		t.Fatalf("Append allocations grew with K: %d slices -> %.0f allocs, %d slices -> %.0f allocs",
			8, a8, 64, a64)
	}
}

// TestStreamCloneIsIndependent: a cloned stream replays the same absorb with
// identical results, and absorbing into the clone leaves the original
// untouched (the A_k bases are shared, everything mutable is copied).
func TestStreamCloneIsIndependent(t *testing.T) {
	g := rng.New(73)
	full := synthPARAFAC2(g, []int{40, 48, 36, 52, 44, 41}, 14, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 30

	st, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fork := st.Clone()

	// Same batch into both: bit-identical outcomes (same RNG state).
	if err := st.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := fork.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	compressedEqualBits(t, st.Compressed(), fork.Compressed())
	if !st.Result().H.EqualApprox(fork.Result().H, 0) || !st.Result().V.EqualApprox(fork.Result().V, 0) {
		t.Fatal("clone refresh diverged from original")
	}
	for k := 0; k < st.Result().K(); k++ {
		if !st.Result().Qk(k).EqualApprox(fork.Result().Qk(k), 0) {
			t.Fatalf("clone Qk(%d) diverged", k)
		}
	}

	// A further absorb into the fork must not touch the original.
	before := st.Compressed().D.Clone()
	if err := fork.Absorb(full.Slices[4:6]); err != nil {
		t.Fatal(err)
	}
	if st.K() != 6 || fork.K() != 8 {
		t.Fatalf("K: original %d (want 6), fork %d (want 8)", st.K(), fork.K())
	}
	if !st.Compressed().D.EqualApprox(before, 0) {
		t.Fatal("absorbing into the fork mutated the original stream")
	}
}
