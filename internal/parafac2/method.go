package parafac2

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tensor"
)

// Method is one registered PARAFAC2 decomposition algorithm. All four
// algorithms of the paper's evaluation (DPar2 and the RD-ALS / PARAFAC2-ALS /
// SPARTan baselines) are implementations of this interface, registered under
// a canonical name; the repro.Engine dispatches through the registry instead
// of four parallel entry points.
//
// Decompose must honor ctx: implementations check it between ALS iterations
// and between parallel phases, and return ctx.Err() (unwrapped) when it is
// done. They must be safe for concurrent use — per-call state only, shared
// pools via Config.Pool.
type Method interface {
	// Name returns the canonical registry name (lowercase, e.g. "dpar2").
	Name() string
	// Decompose runs the algorithm on t under cfg, stopping early with
	// ctx.Err() when ctx is cancelled or its deadline passes.
	Decompose(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error)
}

// methodFunc adapts a context-aware decomposition function to Method.
type methodFunc struct {
	name string
	run  func(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error)
}

func (m methodFunc) Name() string { return m.name }

func (m methodFunc) Decompose(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error) {
	return m.run(ctx, t, cfg)
}

var (
	registryMu    sync.RWMutex
	registry      = map[string]Method{} // canonical name and aliases → Method
	registryOrder []string              // canonical names, registration order
)

// Register adds a Method under its canonical Name plus any aliases
// (e.g. "parafac2-als" for "als"). Names are case-insensitive. Register
// panics on a duplicate name: registration happens in package init, so a
// collision is a programming error, not a runtime condition.
func Register(m Method, aliases ...string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	canon := canonicalName(m.Name())
	if canon == "" {
		panic("parafac2: Register with empty method name")
	}
	for _, name := range append([]string{canon}, aliases...) {
		name = canonicalName(name)
		if _, dup := registry[name]; dup {
			panic(fmt.Sprintf("parafac2: method %q registered twice", name))
		}
		registry[name] = m
	}
	registryOrder = append(registryOrder, canon)
}

// Lookup resolves a method by canonical name or alias (case-insensitive).
func Lookup(name string) (Method, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[canonicalName(name)]
	return m, ok
}

// MustLookup resolves a method or returns a descriptive error naming the
// registered alternatives — the error every unknown-method path surfaces.
func MustLookup(name string) (Method, error) {
	if m, ok := Lookup(name); ok {
		return m, nil
	}
	known := MethodNames()
	registryMu.RLock()
	aliases := make([]string, 0, len(registry))
	//repro:allow(determinism) collection order does not matter: aliases is sorted immediately below
	for alias := range registry {
		aliases = append(aliases, alias)
	}
	registryMu.RUnlock()
	sort.Strings(aliases)
	return nil, fmt.Errorf("parafac2: unknown method %q (canonical: %s; all accepted: %s)",
		name, strings.Join(known, ", "), strings.Join(aliases, ", "))
}

// MethodNames returns the canonical registered names in registration order —
// the paper's legend order (DPar2, RD-ALS, PARAFAC2-ALS, SPARTan).
func MethodNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

func canonicalName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

func init() {
	// Registration order is the paper's legend order; Lookup accepts the
	// spellings the CLI and the paper use.
	Register(methodFunc{"dpar2", DPar2Ctx})
	Register(methodFunc{"rd-als", RDALSCtx}, "rdals")
	Register(methodFunc{"als", ALSCtx}, "parafac2-als")
	Register(methodFunc{"spartan", SPARTanCtx})
}
