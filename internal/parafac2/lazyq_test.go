package parafac2

import (
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestLazyQMatchesEagerAcrossPoolWidths: the lazy accessors must reproduce
// the old eager materialization bit for bit — Qk is exactly (A_k Z_k) P_kᵀ,
// Uk and ReconstructSlice build on it — and stay bit-identical across pool
// widths (the repository-wide determinism contract).
func TestLazyQMatchesEagerAcrossPoolWidths(t *testing.T) {
	g := rng.New(51)
	ten := synthPARAFAC2(g, []int{40, 55, 30, 62}, 14, 3, 0.02)
	cfg := smallConfig(3)
	cfg.MaxIters = 15
	comp := Compress(ten, cfg)

	var ref *Result
	for _, th := range []int{1, 4} {
		c := cfg
		c.Threads = th
		res, err := DPar2FromCompressed(comp, c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Factored() {
			t.Fatal("DPar2 result is not factored")
		}
		a, z, p, ok := res.FactoredQ()
		if !ok || len(a) != ten.K() {
			t.Fatalf("FactoredQ ok=%v len=%d", ok, len(a))
		}
		for k := 0; k < res.K(); k++ {
			eager := a[k].Mul(z[k]).MulT(p[k]) // the PR-3 eager loop, verbatim
			if !res.Qk(k).EqualApprox(eager, 0) {
				t.Fatalf("lazy Qk(%d) not bit-identical to eager materialization", k)
			}
			if !res.Uk(k).EqualApprox(eager.Mul(res.H), 0) {
				t.Fatalf("lazy Uk(%d) not bit-identical to eager Q_k H", k)
			}
			// ReconstructSlice folds through the small factors
			// (different op order), so it matches to round-off.
			wantRec := eager.Mul(res.H.ScaleColumns(res.S[k])).MulT(res.V)
			if !res.ReconstructSlice(k).EqualApprox(wantRec, 1e-9) {
				t.Fatalf("lazy ReconstructSlice(%d) diverges from eager reconstruction", k)
			}
			// UkRows folds through the small factors first (different op
			// order), so it matches to round-off rather than bitwise.
			lo, hi := res.SliceRows(k)/3, res.SliceRows(k)
			win := res.UkRows(k, lo, hi)
			if !win.EqualApprox(res.Uk(k).RowBlock(lo, hi), 1e-10) {
				t.Fatalf("UkRows(%d) window diverges from Uk rows", k)
			}
		}
		if ref == nil {
			ref = res
		} else {
			for k := 0; k < res.K(); k++ {
				if !res.Qk(k).EqualApprox(ref.Qk(k), 0) {
					t.Fatalf("Qk(%d) differs across pool widths", k)
				}
			}
		}
	}

	// Materialize caches the same bits and flips the result to dense.
	res := ref.Materialize()
	if res.Factored() {
		t.Fatal("Materialize left the result factored")
	}
	a, z, p, _ := res.FactoredQ()
	for k := 0; k < res.K(); k++ {
		if !res.Qk(k).EqualApprox(a[k].Mul(z[k]).MulT(p[k]), 0) {
			t.Fatalf("materialized Qk(%d) not bit-identical", k)
		}
	}
}

// TestFitnessAgreesLazyVsMaterialized: the factored fitness path (no dense
// Q_k anywhere) and the dense path must agree to round-off, and the
// kind-tagging must say which space each fitness was measured in.
func TestFitnessAgreesLazyVsMaterialized(t *testing.T) {
	g := rng.New(52)
	ten := synthPARAFAC2(g, []int{50, 35, 44}, 12, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 20
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitnessKind != FitnessTrue {
		t.Fatalf("DPar2 FitnessKind = %v, want true", res.FitnessKind)
	}
	lazy := Fitness(ten, res)
	dense := Fitness(ten, res.Materialize())
	if d := lazy - dense; d > 1e-12 || d < -1e-12 {
		t.Fatalf("factored fitness %v vs dense fitness %v", lazy, dense)
	}

	comp := Compress(ten, cfg)
	cres, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.FitnessKind != FitnessCompressed {
		t.Fatalf("DPar2FromCompressed FitnessKind = %v, want compressed", cres.FitnessKind)
	}
}

// TestAbsorbPerformsNoPerOldSliceWork: the K-independence regression test.
// Every O(I_k) materialization from the factored form funnels through the
// qMaterializeHook observation point; a streaming absorb must trigger none of
// them — at K=8 and K=64 alike — because the whole path (append, rotation,
// compressed-space refresh) runs on factored state.
func TestAbsorbPerformsNoPerOldSliceWork(t *testing.T) {
	for _, k := range []int{8, 64} {
		g := rng.New(uint64(60 + k))
		rows := make([]int, k+2)
		for i := range rows {
			rows[i] = 25 + 7*(i%5)
		}
		full := synthPARAFAC2(g, rows, 12, 3, 0.02)
		cfg := smallConfig(3)
		cfg.MaxIters = 20

		st, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:k]), cfg)
		if err != nil {
			t.Fatal(err)
		}

		var count int64
		qMaterializeHook = func(int, int) { atomic.AddInt64(&count, 1) }
		err = st.Absorb(full.Slices[k:])
		qMaterializeHook = nil
		if err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt64(&count); got != 0 {
			t.Fatalf("K=%d: absorb materialized %d slices from the factored form, want 0", k, got)
		}

		// Sanity: the hook does observe real materializations.
		qMaterializeHook = func(int, int) { atomic.AddInt64(&count, 1) }
		st.Result().Materialize()
		qMaterializeHook = nil
		if got := atomic.LoadInt64(&count); got != int64(st.K()) {
			t.Fatalf("K=%d: Materialize observed %d materializations, want %d", k, got, st.K())
		}
	}
}
