package parafac2

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func ctxTestTensor(t *testing.T) *tensor.Irregular {
	t.Helper()
	g := rng.New(11)
	return synthPARAFAC2(g, []int{40, 55, 35, 60}, 14, 3, 0.02)
}

// TestRegistryResolvesAllMethods: the four algorithms are registered under
// their canonical names and the aliases the CLI accepts.
func TestRegistryResolvesAllMethods(t *testing.T) {
	want := []string{"dpar2", "rd-als", "als", "spartan"}
	got := MethodNames()
	if len(got) != len(want) {
		t.Fatalf("MethodNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MethodNames() = %v, want %v (legend order)", got, want)
		}
	}
	for alias, canon := range map[string]string{
		"DPar2": "dpar2", "rdals": "rd-als", "RD-ALS": "rd-als",
		"parafac2-als": "als", "ALS": "als", "SPARTan": "spartan",
	} {
		m, ok := Lookup(alias)
		if !ok || m.Name() != canon {
			t.Fatalf("Lookup(%q) → %v, want method %q", alias, m, canon)
		}
	}
	if _, err := MustLookup("nope"); err == nil {
		t.Fatal("MustLookup of unknown method must error")
	}
}

// TestRegistryMatchesFreeFunctions: dispatching through the registry is
// bit-identical to the (deprecated) free functions.
func TestRegistryMatchesFreeFunctions(t *testing.T) {
	ten := ctxTestTensor(t)
	cfg := smallConfig(3)
	cfg.MaxIters = 5
	free := map[string]func(*tensor.Irregular, Config) (*Result, error){
		"dpar2": DPar2, "rd-als": RDALS, "als": ALS, "spartan": SPARTan,
	}
	for name, fn := range free {
		want, err := fn(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := Lookup(name)
		got, err := m.Decompose(context.Background(), ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fitness != want.Fitness {
			t.Fatalf("%s: registry fitness %v != free function %v", name, got.Fitness, want.Fitness)
		}
		if !got.H.EqualApprox(want.H, 0) || !got.V.EqualApprox(want.V, 0) {
			t.Fatalf("%s: registry factors differ from free function", name)
		}
	}
}

// TestCancelledContextBeforeStart: an already-done context stops every
// method before any work, returning the unwrapped ctx.Err().
func TestCancelledContextBeforeStart(t *testing.T) {
	ten := ctxTestTensor(t)
	cfg := smallConfig(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range MethodNames() {
		m, _ := Lookup(name)
		res, err := m.Decompose(ctx, ten, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Fatalf("%s: returned a result alongside the error", name)
		}
	}
	if _, err := CompressCtx(ctx, ten, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressCtx: err = %v, want context.Canceled", err)
	}
}

// TestCancelMidIterationReturnsPromptly: cancelling from a Progress callback
// (i.e. mid-run, between iterations) stops every method within one iteration
// and surfaces ctx.Err() — not a partial Result.
func TestCancelMidIterationReturnsPromptly(t *testing.T) {
	ten := ctxTestTensor(t)
	for _, name := range MethodNames() {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := smallConfig(3)
		cfg.MaxIters = 200
		cfg.Tol = 0 // never converge: only the context can stop it early
		lastIter := 0
		cfg.Progress = func(iter int, _ float64) bool {
			lastIter = iter
			if iter == 2 {
				cancel()
			}
			return true
		}
		m, _ := Lookup(name)
		res, err := m.Decompose(ctx, ten, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Fatalf("%s: returned a result after cancellation", name)
		}
		if lastIter > 3 {
			t.Fatalf("%s: ran %d iterations after cancel at 2 (not prompt)", name, lastIter)
		}
	}
}

// TestDeadlineExceeded: a deadline in the past surfaces as DeadlineExceeded.
func TestDeadlineExceeded(t *testing.T) {
	ten := ctxTestTensor(t)
	cfg := smallConfig(3)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := DPar2Ctx(ctx, ten, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelledAbsorbLeavesStreamUsable: a cancelled AbsorbCtx reports the
// context error without corrupting the stream (the slice count is unchanged
// and a later absorb succeeds).
func TestCancelledAbsorbLeavesStreamUsable(t *testing.T) {
	g := rng.New(21)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55, 42, 48}, 14, 3, 0.02)
	cfg := smallConfig(3)
	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AbsorbCtx(ctx, full.Slices[4:]); !errors.Is(err, context.Canceled) {
		t.Fatalf("AbsorbCtx err = %v, want context.Canceled", err)
	}
	if s.K() != 4 {
		t.Fatalf("cancelled absorb changed K to %d", s.K())
	}
	if err := s.Absorb(full.Slices[4:]); err != nil {
		t.Fatal(err)
	}
	if s.K() != 6 {
		t.Fatalf("K = %d after successful absorb, want 6", s.K())
	}
}

// TestCancellationDoesNotLeakGoroutines: cancelled decompositions on
// transient pools must release their workers (run under -race in CI).
func TestCancellationDoesNotLeakGoroutines(t *testing.T) {
	ten := ctxTestTensor(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := smallConfig(3)
		cfg.Threads = 4 // transient pool per call: 3 worker goroutines
		cfg.MaxIters = 100
		cfg.Tol = 0
		cfg.Progress = func(iter int, _ float64) bool {
			if iter == 1 {
				cancel()
			}
			return true
		}
		if _, err := DPar2Ctx(ctx, ten, cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}
	// Workers exit asynchronously after Close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d >> baseline %d after cancelled runs (leaked workers)",
		runtime.NumGoroutine(), before)
}

// TestCancelledRefreshRecoverable: when cancellation hits after the batch
// was folded in (during the factor refresh), AbsorbCtx reports a wrapped
// error, K counts the batch, and Refresh recovers the factors without
// re-absorbing.
func TestCancelledRefreshRecoverable(t *testing.T) {
	g := rng.New(22)
	full := synthPARAFAC2(g, []int{40, 50, 45, 55, 42, 48}, 14, 3, 0.02)
	cfg := smallConfig(3)
	s, err := NewStreamingDPar2(tensor.MustIrregular(full.Slices[:4]), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel from inside the refresh: the append phase has completed by the
	// time Progress first fires.
	ctx, cancel := context.WithCancel(context.Background())
	s.cfg.Progress = func(iter int, _ float64) bool {
		cancel()
		return true
	}
	err = s.AbsorbCtx(ctx, full.Slices[4:])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AbsorbCtx err = %v, want wrapped context.Canceled", err)
	}
	if errors.Is(err, context.DeadlineExceeded) || err == context.Canceled {
		t.Fatal("refresh-phase error must be wrapped with absorbed-batch context")
	}
	if s.K() != 6 {
		t.Fatalf("K = %d, want 6 (batch IS absorbed once append succeeded)", s.K())
	}

	// Recover without re-absorbing.
	s.cfg.Progress = nil
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Result().K() != 6 {
		t.Fatalf("recovered result covers %d slices, want 6", s.Result().K())
	}
	if fit := Fitness(full, s.Result()); fit < 0.95 {
		t.Fatalf("recovered fitness %v", fit)
	}
}
