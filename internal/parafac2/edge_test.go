package parafac2

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Edge-case and failure-injection tests for the decomposers.

func TestSingleSliceTensor(t *testing.T) {
	// K=1 degenerates PARAFAC2 to a matrix factorization; everything must
	// still work.
	g := rng.New(1)
	ten := synthPARAFAC2(g, []int{40}, 12, 3, 0)
	for _, m := range []struct {
		name string
		run  func(*tensor.Irregular, Config) (*Result, error)
	}{{"DPar2", DPar2}, {"ALS", ALS}, {"RDALS", RDALS}, {"SPARTan", SPARTan}} {
		res, err := m.run(ten, smallConfig(3))
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if res.Fitness < 0.99 {
			t.Fatalf("%s: fitness %v on single exact slice", m.name, res.Fitness)
		}
	}
}

func TestRankOne(t *testing.T) {
	g := rng.New(2)
	ten := synthPARAFAC2(g, []int{30, 40, 35}, 10, 1, 0)
	res, err := DPar2(ten, smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("rank-1 fitness %v", res.Fitness)
	}
	if res.V.Cols != 1 || res.H.Rows != 1 {
		t.Fatal("rank-1 factor shapes wrong")
	}
}

func TestRankEqualsJ(t *testing.T) {
	// R = J: compression cannot shrink the column space, but the method
	// must remain correct.
	g := rng.New(3)
	j := 6
	ten := synthPARAFAC2(g, []int{30, 40, 25}, j, 4, 0.05)
	cfg := smallConfig(j)
	cfg.MaxIters = 60
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.95 {
		t.Fatalf("R=J fitness %v", res.Fitness)
	}
}

func TestSliceExactlyRankRows(t *testing.T) {
	// The smallest legal slices: I_k = R.
	g := rng.New(4)
	r := 3
	ten := synthPARAFAC2(g, []int{r, r + 1, 20}, 8, r, 0)
	res, err := DPar2(ten, smallConfig(r))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.K(); k++ {
		if !res.Qk(k).IsOrthonormalCols(1e-7) {
			t.Fatalf("Q_%d lost orthonormality with minimal rows", k)
		}
	}
}

func TestConstantSlices(t *testing.T) {
	// Rank-deficient input: all-equal entries (rank 1 with identical
	// singular vectors). Methods must not NaN out.
	slices := []*mat.Dense{
		mat.NewFromFunc(20, 8, func(i, j int) float64 { return 2.5 }),
		mat.NewFromFunc(30, 8, func(i, j int) float64 { return 2.5 }),
	}
	ten := tensor.MustIrregular(slices)
	cfg := smallConfig(2)
	cfg.MaxIters = 10
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Fitness) {
		t.Fatal("fitness is NaN on constant data")
	}
	if res.Fitness < 0.99 {
		t.Fatalf("constant tensor should be perfectly fit, got %v", res.Fitness)
	}
}

func TestZeroSlicePresent(t *testing.T) {
	// One all-zero slice among normal ones: degenerate SVDs inside the
	// pipeline must be handled.
	g := rng.New(5)
	ten := synthPARAFAC2(g, []int{25, 30}, 10, 2, 0)
	zero := mat.New(15, 10)
	slices := append(append([]*mat.Dense{}, ten.Slices...), zero)
	mixed := tensor.MustIrregular(slices)
	cfg := smallConfig(2)
	cfg.MaxIters = 15
	res, err := DPar2(mixed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Fitness) || math.IsInf(res.Fitness, 0) {
		t.Fatalf("non-finite fitness %v with a zero slice", res.Fitness)
	}
}

func TestHugeValueScale(t *testing.T) {
	// Numerical robustness: entries around 1e8 must not break the Jacobi
	// SVD or the Gram-based convergence check.
	g := rng.New(6)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	for _, s := range ten.Slices {
		s.ScaleInPlace(1e8)
	}
	res, err := DPar2(ten, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("large-scale data fitness %v", res.Fitness)
	}
}

func TestTinyValueScale(t *testing.T) {
	g := rng.New(7)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	for _, s := range ten.Slices {
		s.ScaleInPlace(1e-8)
	}
	res, err := DPar2(ten, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("small-scale data fitness %v", res.Fitness)
	}
}

func TestManyTinySlices(t *testing.T) {
	// Large K with small I_k: the K R³ iteration term dominates; exercises
	// the per-slice bookkeeping paths.
	g := rng.New(8)
	rows := make([]int, 120)
	for i := range rows {
		rows[i] = 5 + g.Intn(10)
	}
	ten := synthPARAFAC2(g, rows, 12, 3, 0.01)
	cfg := smallConfig(3)
	cfg.MaxIters = 25
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.9 {
		t.Fatalf("many-slice fitness %v", res.Fitness)
	}
	if res.K() != 120 || len(res.S) != 120 {
		t.Fatal("per-slice outputs incomplete")
	}
}

func TestThreadsExceedSlices(t *testing.T) {
	g := rng.New(9)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	cfg := smallConfig(2)
	cfg.Threads = 64
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.99 {
		t.Fatalf("fitness %v with threads >> K", res.Fitness)
	}
}

func TestZeroThreadsClampsToOne(t *testing.T) {
	g := rng.New(10)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0)
	cfg := smallConfig(2)
	cfg.Threads = 0
	if _, err := DPar2(ten, cfg); err != nil {
		t.Fatalf("Threads=0 should clamp, got %v", err)
	}
	cfg.Threads = -5
	if _, err := ALS(ten, cfg); err != nil {
		t.Fatalf("negative Threads should clamp, got %v", err)
	}
}

func TestMaxIters1(t *testing.T) {
	g := rng.New(11)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0.1)
	cfg := smallConfig(2)
	cfg.MaxIters = 1
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 1 {
		t.Fatalf("ran %d iterations, want 1", res.Iters)
	}
}

func TestNonnegativeSConstraint(t *testing.T) {
	g := rng.New(30)
	ten := synthPARAFAC2(g, irregRows(g, 6, 30, 70), 15, 3, 0.1)
	cfg := smallConfig(3)
	cfg.NonnegativeS = true
	for _, m := range []struct {
		name string
		run  func(*tensor.Irregular, Config) (*Result, error)
	}{{"DPar2", DPar2}, {"ALS", ALS}} {
		res, err := m.run(ten, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		for k, s := range res.S {
			for _, v := range s {
				if v < 0 {
					t.Fatalf("%s: negative weight in S_%d: %v", m.name, k, v)
				}
			}
		}
		if res.Fitness < 0.8 {
			t.Fatalf("%s: constrained fitness collapsed to %v", m.name, res.Fitness)
		}
	}
}

func TestRidgeStabilizes(t *testing.T) {
	g := rng.New(31)
	ten := synthPARAFAC2(g, irregRows(g, 5, 30, 60), 12, 3, 0.05)
	cfg := smallConfig(3)
	cfg.Ridge = 1e-8
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := smallConfig(3)
	base, err := DPar2(ten, plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < base.Fitness-0.01 {
		t.Fatalf("tiny ridge cost too much fitness: %v vs %v", res.Fitness, base.Fitness)
	}
}

func TestProgressCallback(t *testing.T) {
	g := rng.New(32)
	ten := synthPARAFAC2(g, []int{30, 40}, 10, 2, 0.1)
	cfg := smallConfig(2)
	cfg.MaxIters = 20
	cfg.Tol = 0 // disable tol stopping; the callback drives termination
	var calls []int
	cfg.Progress = func(iter int, measure float64) bool {
		calls = append(calls, iter)
		if measure < 0 {
			t.Errorf("negative convergence measure %v", measure)
		}
		return iter < 5 // stop after 5 iterations
	}
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 5 {
		t.Fatalf("ran %d iterations, want 5 (callback-stopped)", res.Iters)
	}
	for i, c := range calls {
		if c != i+1 {
			t.Fatalf("callback iteration sequence wrong: %v", calls)
		}
	}
	// ALS path honors the callback too.
	calls = nil
	if _, err := ALS(ten, cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 {
		t.Fatalf("ALS made %d callback calls, want 5", len(calls))
	}
}
