// Package parafac2 implements PARAFAC2 decomposition of irregular dense
// tensors: the paper's contribution DPar2 (Algorithm 3) and the three
// baselines it is evaluated against — PARAFAC2-ALS (Algorithm 2, Kiers et
// al. 1999), RD-ALS (Cheng & Haardt 2019), and a SPARTan-style slice-parallel
// variant (Perros et al. 2017, adapted to dense data).
//
// The PARAFAC2 model approximates each slice X_k ∈ R^{I_k×J} as
//
//	X_k ≈ U_k S_k Vᵀ,   U_k = Q_k H,   Q_kᵀQ_k = I,
//
// with S_k diagonal and H, V shared across slices. All methods minimize
// Σ_k ‖X_k − Q_k H S_k Vᵀ‖_F² by alternating least squares.
//
// # Lazy factored Q
//
// DPar2 results keep Q in factored form, Q_k = A_k Z_k P_kᵀ, where A_k is the
// compressed basis and Z_k, P_k are R×R: the dense I_k×R slices are
// materialized lazily by the accessors (Result.Qk, Uk, UkRows,
// ReconstructSlice), never by the iteration itself. That makes a streaming
// Absorb touch only the new slices — no O(Σ_k I_k·R) pass over the history —
// and is what keeps absorb latency independent of the slices already seen.
// Callers that want the old eager dense slices call Result.Materialize once;
// until then each accessor call recomputes its slice (cheap relative to any
// use of the I_k×R output). Accessors are safe for concurrent use on an
// otherwise-unmodified Result; Materialize is not safe to run concurrently
// with them.
//
// # Fitness kinds
//
// Result.Fitness carries one of two quantities, told apart by
// Result.FitnessKind: FitnessTrue is 1 − Σ‖X_k−X̂_k‖²/Σ‖X_k‖² against the
// input tensor (DPar2, ALS, RD-ALS, SPARTan — anything that had the tensor in
// hand), while FitnessCompressed is the compressed-space estimate 1 − e/‖X̃‖²
// that DPar2FromCompressed and streaming refreshes report (exact against the
// compressed approximation X̃, off from the true fitness only by the one-time
// compression error). Use Fitness/FitnessWith to re-evaluate a result against
// a tensor when the true value is needed.
package parafac2

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config holds the knobs shared by every decomposition method in this
// package. The zero value is not usable; start from DefaultConfig.
type Config struct {
	// Rank is the target rank R.
	Rank int
	// MaxIters bounds the ALS iterations (the paper uses 32).
	MaxIters int
	// Tol stops iteration when the relative change of the convergence
	// measure between iterations falls below it.
	Tol float64
	// Threads is the worker-pool width for parallel phases and the single
	// source of truth for parallelism: when Pool is nil, every entry point
	// builds a transient compute.Pool of this width for the duration of
	// the call. Threads <= 0 means serial.
	Threads int
	// Pool, when non-nil, is the long-lived compute runtime all parallel
	// phases run on; it overrides Threads. Set it to share one pool (and
	// its worker goroutines) across many decompositions — concurrent
	// decompositions may safely share a single Pool.
	Pool *compute.Pool
	// Seed drives factor initialization and randomized sketches.
	Seed uint64
	// Oversample and PowerIters configure randomized SVD (DPar2 only).
	Oversample int
	PowerIters int
	// ShardRows is the stage-1 sharding threshold (DPar2 only): a slice
	// with more than ShardRows rows is sketched in row shards of at most
	// ShardRows rows — each shard an independent work unit on the pool —
	// and the shard bases are merged by a second small randomized SVD.
	// (Thresholds below the sketch width Rank+Oversample are floored to
	// it: a shard shorter than the sketch could not compress anything.)
	// The A_k contract is unchanged (column orthonormal, I_k×R), peak
	// stage-1 scratch drops from O(I_k·(Rank+Oversample)) to
	// O(ShardRows·(Rank+Oversample)) per in-flight shard, and one tall
	// slice parallelizes across the whole pool instead of pinning one
	// worker. 0 means DefaultShardRows; negative disables sharding.
	ShardRows int
	// TrackConvergence records the convergence measure after every
	// iteration in Result.ConvergenceTrace.
	TrackConvergence bool

	// NonnegativeS constrains the S_k weights to be nonnegative by
	// projection after each W update — the most common of the practical
	// constraints COPA (Afshar et al., CIKM 2018) adds to PARAFAC2, useful
	// when weights are interpreted as intensities.
	NonnegativeS bool
	// Ridge adds λ·I to the Gram matrices of the normal-equation solves.
	// A small ridge (e.g. 1e-8·‖G‖) stabilizes near-collinear factors at
	// negligible fitness cost.
	Ridge float64

	// Progress, when non-nil, is invoked after every ALS iteration with
	// the 1-based iteration number and the current convergence measure.
	// Returning false stops the iteration early (e.g. user cancellation,
	// wall-clock budgets). Called from the decomposition goroutine.
	Progress func(iter int, measure float64) bool
}

// DefaultShardRows is the stage-1 sharding threshold applied when
// Config.ShardRows is 0: slices taller than 64k rows are sketched in row
// shards. At the default sketch width (rank 10 + oversample 8) a shard's
// scratch is ~64k·18 floats ≈ 9 MB — comfortably inside the workspace
// arena's recyclable bucket range (compute.MaxRecycleFloats).
const DefaultShardRows = 1 << 16

// DefaultConfig mirrors the paper's experimental settings: rank 10, at most
// 32 iterations, 6 threads.
func DefaultConfig() Config {
	return Config{
		Rank:       10,
		MaxIters:   32,
		Tol:        1e-6,
		Threads:    6,
		Seed:       1,
		Oversample: 8,
		PowerIters: 1,
	}
}

func (c Config) validate(t *tensor.Irregular) error {
	if c.Rank <= 0 {
		return fmt.Errorf("parafac2: rank must be positive, got %d", c.Rank)
	}
	if c.Rank > t.J {
		return fmt.Errorf("parafac2: rank %d exceeds column count %d", c.Rank, t.J)
	}
	for k, s := range t.Slices {
		if c.Rank > s.Rows {
			return fmt.Errorf("parafac2: rank %d exceeds rows %d of slice %d", c.Rank, s.Rows, k)
		}
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("parafac2: MaxIters must be positive, got %d", c.MaxIters)
	}
	return nil
}

// ShardRowsThreshold resolves Config.ShardRows to the effective stage-1
// sharding threshold, in the form rsvd.NumShards takes: 0 means
// DefaultShardRows, negative disables sharding (expressed as 0, which
// NumShards treats as "never shard"). Exported as the single source of the
// resolution rule — reporting layers must use it rather than re-deriving
// the 0/negative convention.
func (c Config) ShardRowsThreshold() int {
	switch {
	case c.ShardRows == 0:
		return DefaultShardRows
	case c.ShardRows < 0:
		return 0
	}
	return c.ShardRows
}

// runtimePool resolves the compute pool for one decomposition call: the
// caller-provided Config.Pool, or a transient pool of width Threads (clamped
// by the single compute.WidthFromThreads rule: Threads <= 0 means serial).
// done must be called when the decomposition returns (it closes the pool only
// if this call owns it).
func (c Config) runtimePool() (pool *compute.Pool, done func()) {
	if c.Pool != nil {
		return c.Pool, func() {}
	}
	p := compute.NewPoolFromThreads(c.Threads)
	return p, p.Close
}

// FitnessKind says what quantity Result.Fitness holds (see the package doc).
type FitnessKind uint8

const (
	// FitnessUnset means no fitness was computed (e.g. a result
	// deserialized from disk, or an iteration that never converged enough
	// to measure).
	FitnessUnset FitnessKind = iota
	// FitnessTrue is 1 − Σ‖X_k−X̂_k‖²/Σ‖X_k‖² against the input tensor.
	FitnessTrue
	// FitnessCompressed is the compressed-space estimate 1 − e/‖X̃‖²
	// reported when only the compressed representation was available
	// (DPar2FromCompressed, streaming refreshes).
	FitnessCompressed
)

// String names the kind for logs and reports.
func (k FitnessKind) String() string {
	switch k {
	case FitnessTrue:
		return "true"
	case FitnessCompressed:
		return "compressed"
	}
	return "unset"
}

// Result is the output of a PARAFAC2 decomposition.
type Result struct {
	// H is the R×R common matrix; V is the J×R factor shared by all slices.
	H, V *mat.Dense
	// S holds the diagonal of each S_k (row k of W in the paper).
	S [][]float64

	// q caches the dense column-orthonormal Q_k (I_k × R). For DPar2 it
	// stays nil until Materialize: Q lives in factored form in fq and the
	// accessors materialize slices on demand.
	q []*mat.Dense
	// fq is the factored form Q_k = A_k Z_k P_kᵀ (DPar2 results only).
	fq *factoredQ

	// Iters is the number of ALS iterations executed.
	Iters int
	// Fitness is the model fit; FitnessKind says against what (the true
	// input tensor, or the compressed approximation — see the package doc).
	Fitness     float64
	FitnessKind FitnessKind

	// Timing breakdown.
	PreprocessTime time.Duration
	IterTime       time.Duration // total time in the ALS loop
	TotalTime      time.Duration

	// PreprocessedBytes is the footprint of preprocessed data the method
	// iterates on (input size for methods without preprocessing).
	PreprocessedBytes int64

	// ConvergenceTrace holds the per-iteration convergence measure when
	// Config.TrackConvergence is set.
	ConvergenceTrace []float64
}

// factoredQ holds Q in the factored form DPar2 produces: per-slice references
// to the compressed basis A_k (I_k×R, shared with the Compressed — immutable
// once built) plus the small R×R Z_k and P_k from the final Q-update SVDs.
type factoredQ struct {
	a, z, p []*mat.Dense
}

// qMaterializeHook, when non-nil, observes every O(I_k)-cost materialization
// from the factored form (slice index and row count). Tests install it to
// prove the streaming absorb path performs no per-old-slice work. Install
// only while no accessors run concurrently.
var qMaterializeHook func(k, rows int)

func observeMaterialize(k, rows int) {
	if h := qMaterializeHook; h != nil {
		h(k, rows)
	}
}

// qk materializes Q_k = (A_k Z_k) P_kᵀ — the same operation order (and arena
// scratch for the A_k Z_k intermediate) the eager loop used, so materialized
// slices are bit-identical to the old behavior.
func (f *factoredQ) qk(k int) *mat.Dense {
	observeMaterialize(k, f.a[k].Rows)
	arena := compute.Shared()
	az := arena.GetUninit(f.a[k].Rows, f.z[k].Cols)
	f.a[k].MulInto(az, f.z[k], nil)
	out := az.MulT(f.p[k])
	arena.Put(az)
	return out
}

// mulInto writes rows [lo, hi) of Q_k·B into out ∈ R^{(hi−lo)×cols} by
// folding B through the small factors first: A_k[lo:hi] · (Z_k (P_kᵀ B)).
// Cost O((hi−lo)·R·cols + R²·cols) — the cheap path for fitness and
// row-window accessors.
func (f *factoredQ) mulInto(out *mat.Dense, k, lo, hi int, b *mat.Dense, arena *compute.Arena) {
	observeMaterialize(k, hi-lo)
	r := f.z[k].Rows
	t1 := arena.GetUninit(r, b.Cols)
	f.p[k].TMulInto(t1, b, nil)
	t2 := arena.GetUninit(r, b.Cols)
	f.z[k].MulInto(t2, t1, nil)
	f.a[k].RowView(lo, hi).MulInto(out, t2, nil)
	arena.Put(t1, t2)
}

// K returns the number of slices the result covers.
func (r *Result) K() int {
	if r.q != nil {
		return len(r.q)
	}
	if r.fq != nil {
		return len(r.fq.a)
	}
	return 0
}

// SliceRows returns I_k, the row count of slice k.
func (r *Result) SliceRows(k int) int {
	if r.q != nil {
		return r.q[k].Rows
	}
	return r.fq.a[k].Rows
}

// Qk returns the column-orthonormal Q_k (I_k × R). Dense results (the
// baselines, or after Materialize) return the stored matrix, which the caller
// must not modify; factored results materialize a fresh matrix per call —
// call Materialize first when many repeated accesses are coming.
func (r *Result) Qk(k int) *mat.Dense {
	if r.q != nil {
		return r.q[k]
	}
	return r.fq.qk(k)
}

// Materialize eagerly caches the dense Q_k for every slice — the pre-lazy
// behavior, for callers that will access the slices repeatedly. It is
// idempotent and returns r for chaining. Not safe to run concurrently with
// the accessors.
func (r *Result) Materialize() *Result {
	if r.q != nil || r.fq == nil {
		return r
	}
	q := make([]*mat.Dense, len(r.fq.a))
	compute.Default().ParallelFor(len(q), func(k int) {
		q[k] = r.fq.qk(k)
	})
	r.q = q
	return r
}

// Factored reports whether Q is still held in factored form (no dense cache).
func (r *Result) Factored() bool { return r.q == nil && r.fq != nil }

// FactoredQ exposes the factored form (A_k, Z_k, P_k with Q_k = A_k Z_k P_kᵀ)
// when the result holds one — serialization uses it to persist the compact
// representation. The returned slices are the result's own state: callers
// must not modify them.
func (r *Result) FactoredQ() (a, z, p []*mat.Dense, ok bool) {
	if r.fq == nil {
		return nil, nil, nil, false
	}
	return r.fq.a, r.fq.z, r.fq.p, true
}

// SetFactoredQ installs a factored Q (deserialization and the DPar2 iteration
// use it). The three slices must have equal length, with z[k], p[k] ∈ R^{R×R}
// and a[k] ∈ R^{I_k×R}; the Result takes ownership.
func (r *Result) SetFactoredQ(a, z, p []*mat.Dense) {
	if len(a) != len(z) || len(a) != len(p) {
		panic("parafac2: SetFactoredQ with mismatched slice counts")
	}
	r.fq = &factoredQ{a: a, z: z, p: p}
	r.q = nil
}

// SetQ installs dense Q_k slices (the eager methods and deserialization use
// it); the Result takes ownership.
func (r *Result) SetQ(q []*mat.Dense) {
	r.q = q
	r.fq = nil
}

// Uk materializes U_k = Q_k H for slice k.
func (r *Result) Uk(k int) *mat.Dense { return r.Qk(k).Mul(r.H) }

// UkRows materializes only rows [lo, hi) of U_k = Q_k H. On a factored
// result this costs O((hi−lo)·R² + R³) instead of the O(I_k·R²) of a full Uk
// — the path for window queries (e.g. aligning stocks on a trailing window).
func (r *Result) UkRows(k, lo, hi int) *mat.Dense {
	if r.Factored() {
		arena := compute.Shared()
		out := mat.New(hi-lo, r.H.Cols)
		r.fq.mulInto(out, k, lo, hi, r.H, arena)
		return out
	}
	return r.q[k].RowView(lo, hi).Mul(r.H)
}

// ReconstructSlice returns X̂_k = Q_k H S_k Vᵀ. Factored results fold H S_k
// through the small factors (no dense Q_k is materialized), which matches
// the eager reconstruction to round-off rather than bitwise.
func (r *Result) ReconstructSlice(k int) *mat.Dense {
	hs := r.H.ScaleColumns(r.S[k])
	if r.Factored() {
		arena := compute.Shared()
		rows := r.SliceRows(k)
		qh := arena.GetUninit(rows, hs.Cols)
		r.fq.mulInto(qh, k, 0, rows, hs, arena)
		out := qh.MulT(r.V)
		arena.Put(qh)
		return out
	}
	return r.q[k].Mul(hs).MulT(r.V)
}

// Fitness computes 1 − Σ_k‖X_k − X̂_k‖_F² / Σ_k‖X_k‖_F² of a factorization
// against the tensor it was computed from. Fitness close to 1 means the
// model approximates the data well (Section IV-A of the paper).
func Fitness(t *tensor.Irregular, r *Result) float64 {
	return fitnessWith(t, r, compute.Default())
}

// FitnessWith is Fitness on a caller-provided pool (the Engine's shared pool
// instead of the process-wide default). A nil pool evaluates serially.
func FitnessWith(t *tensor.Irregular, r *Result, pool *compute.Pool) float64 {
	return fitnessWith(t, r, pool)
}

// fitnessWith evaluates the fitness with slice reconstructions parallelized
// over pool and materialized in arena scratch (see reconstructionError2).
// Per-slice errors are reduced in slice order, so the result is
// deterministic for any pool width. Factored results reconstruct through the
// small factors (factoredError2) without ever materializing a dense Q_k.
func fitnessWith(t *tensor.Irregular, r *Result, pool *compute.Pool) float64 {
	var errSum float64
	if r.Factored() {
		errSum = factoredError2(t, r.fq, r.H, r.V, r.S, pool)
	} else {
		errSum = reconstructionError2(t, r.q, r.H, r.V, r.S, pool)
	}
	n := t.Norm2()
	if n == 0 {
		return 1
	}
	return 1 - errSum/n
}

// factoredError2 is reconstructionError2 for factored results: per slice,
// Q_k (H S_k) is folded right-to-left (A_k · (Z_k (P_kᵀ (H S_k)))), so the
// only I_k-sized intermediates are the Q_k H S_k product and the
// reconstruction itself — both arena scratch. Reduced in slice order.
func factoredError2(t *tensor.Irregular, fq *factoredQ, h, v *mat.Dense, s [][]float64, pool *compute.Pool) float64 {
	arena := compute.Shared()
	errs := make([]float64, t.K())
	pool.ParallelFor(t.K(), func(kk int) {
		xk := t.Slices[kk]
		hs := arena.GetUninit(h.Rows, h.Cols)
		h.ScaleColumnsInto(hs, s[kk])
		qh := arena.GetUninit(xk.Rows, hs.Cols)
		fq.mulInto(qh, kk, 0, xk.Rows, hs, arena)
		rec := arena.GetUninit(xk.Rows, xk.Cols)
		qh.MulTInto(rec, v, nil)
		d := xk.FrobDist(rec)
		errs[kk] = d * d
		arena.Put(hs, qh, rec)
	})
	var sum float64
	for _, e := range errs {
		sum += e
	}
	return sum
}

// initCommon draws the shared-factor initialization used by all methods:
// H = I + small noise (well conditioned), V random orthonormal-ish Gaussian,
// S_k = 1 vectors. Matching initializations keep method comparisons fair.
func initCommon(g *rng.RNG, j, k, r int) (h, v *mat.Dense, s [][]float64) {
	h = mat.Identity(r)
	noise := mat.Gaussian(g, r, r).Scale(0.1)
	h.AddInPlace(noise)
	v = mat.Gaussian(g, j, r)
	// One backing slab for all K diagonals keeps the allocation count
	// independent of K (the streaming refresh allocates this per Absorb).
	s = make([][]float64, k)
	flat := make([]float64, k*r)
	for i := range flat {
		flat[i] = 1
	}
	for kk := range s {
		s[kk] = flat[kk*r : (kk+1)*r : (kk+1)*r]
	}
	return h, v, s
}

// newRRBlocks allocates k R×R matrices on one backing slab (three allocations
// total, independent of k) — the per-slice Z_k/P_k/T_k working state of the
// DPar2 iteration, where a per-matrix allocation would make the streaming
// absorb cost grow with the slices already seen.
func newRRBlocks(k, r int) []*mat.Dense {
	hdrs := make([]mat.Dense, k)
	ptrs := make([]*mat.Dense, k)
	slab := make([]float64, k*r*r)
	for i := 0; i < k; i++ {
		hdrs[i] = mat.Dense{Rows: r, Cols: r, Data: slab[i*r*r : (i+1)*r*r : (i+1)*r*r]}
		ptrs[i] = &hdrs[i]
	}
	return ptrs
}

// wMatrix packs the S_k diagonals into the K×R matrix W of Algorithm 2.
func wMatrix(s [][]float64) *mat.Dense {
	k := len(s)
	r := len(s[0])
	w := mat.New(k, r)
	for kk := 0; kk < k; kk++ {
		copy(w.Row(kk), s[kk])
	}
	return w
}

// unpackW writes the rows of W back into the S_k diagonal vectors.
func unpackW(w *mat.Dense, s [][]float64) {
	for kk := range s {
		copy(s[kk], w.Row(kk))
	}
}

// solveUpdate performs the right-division B·G⁺ of an ALS normal equation,
// applying the configured ridge to the Gram matrix first.
func solveUpdate(b, gram *mat.Dense, cfg Config) *mat.Dense {
	if cfg.Ridge > 0 {
		gram = gram.Clone()
		for i := 0; i < gram.Rows; i++ {
			gram.Set(i, i, gram.At(i, i)+cfg.Ridge)
		}
	}
	return lapack.SolveGram(b, gram)
}

// projectW applies the configured constraints to the freshly updated W.
func projectW(w *mat.Dense, cfg Config) {
	if !cfg.NonnegativeS {
		return
	}
	for i, v := range w.Data {
		if v < 0 {
			w.Data[i] = 0
		}
	}
}

func relChange(prev, cur float64) float64 {
	if prev == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(prev-cur) / math.Abs(prev)
}
