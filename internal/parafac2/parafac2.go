// Package parafac2 implements PARAFAC2 decomposition of irregular dense
// tensors: the paper's contribution DPar2 (Algorithm 3) and the three
// baselines it is evaluated against — PARAFAC2-ALS (Algorithm 2, Kiers et
// al. 1999), RD-ALS (Cheng & Haardt 2019), and a SPARTan-style slice-parallel
// variant (Perros et al. 2017, adapted to dense data).
//
// The PARAFAC2 model approximates each slice X_k ∈ R^{I_k×J} as
//
//	X_k ≈ U_k S_k Vᵀ,   U_k = Q_k H,   Q_kᵀQ_k = I,
//
// with S_k diagonal and H, V shared across slices. All methods minimize
// Σ_k ‖X_k − Q_k H S_k Vᵀ‖_F² by alternating least squares.
package parafac2

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config holds the knobs shared by every decomposition method in this
// package. The zero value is not usable; start from DefaultConfig.
type Config struct {
	// Rank is the target rank R.
	Rank int
	// MaxIters bounds the ALS iterations (the paper uses 32).
	MaxIters int
	// Tol stops iteration when the relative change of the convergence
	// measure between iterations falls below it.
	Tol float64
	// Threads is the worker-pool width for parallel phases and the single
	// source of truth for parallelism: when Pool is nil, every entry point
	// builds a transient compute.Pool of this width for the duration of
	// the call. Threads <= 0 means serial.
	Threads int
	// Pool, when non-nil, is the long-lived compute runtime all parallel
	// phases run on; it overrides Threads. Set it to share one pool (and
	// its worker goroutines) across many decompositions — concurrent
	// decompositions may safely share a single Pool.
	Pool *compute.Pool
	// Seed drives factor initialization and randomized sketches.
	Seed uint64
	// Oversample and PowerIters configure randomized SVD (DPar2 only).
	Oversample int
	PowerIters int
	// ShardRows is the stage-1 sharding threshold (DPar2 only): a slice
	// with more than ShardRows rows is sketched in row shards of at most
	// ShardRows rows — each shard an independent work unit on the pool —
	// and the shard bases are merged by a second small randomized SVD.
	// (Thresholds below the sketch width Rank+Oversample are floored to
	// it: a shard shorter than the sketch could not compress anything.)
	// The A_k contract is unchanged (column orthonormal, I_k×R), peak
	// stage-1 scratch drops from O(I_k·(Rank+Oversample)) to
	// O(ShardRows·(Rank+Oversample)) per in-flight shard, and one tall
	// slice parallelizes across the whole pool instead of pinning one
	// worker. 0 means DefaultShardRows; negative disables sharding.
	ShardRows int
	// TrackConvergence records the convergence measure after every
	// iteration in Result.ConvergenceTrace.
	TrackConvergence bool

	// NonnegativeS constrains the S_k weights to be nonnegative by
	// projection after each W update — the most common of the practical
	// constraints COPA (Afshar et al., CIKM 2018) adds to PARAFAC2, useful
	// when weights are interpreted as intensities.
	NonnegativeS bool
	// Ridge adds λ·I to the Gram matrices of the normal-equation solves.
	// A small ridge (e.g. 1e-8·‖G‖) stabilizes near-collinear factors at
	// negligible fitness cost.
	Ridge float64

	// Progress, when non-nil, is invoked after every ALS iteration with
	// the 1-based iteration number and the current convergence measure.
	// Returning false stops the iteration early (e.g. user cancellation,
	// wall-clock budgets). Called from the decomposition goroutine.
	Progress func(iter int, measure float64) bool
}

// DefaultShardRows is the stage-1 sharding threshold applied when
// Config.ShardRows is 0: slices taller than 64k rows are sketched in row
// shards. At the default sketch width (rank 10 + oversample 8) a shard's
// scratch is ~64k·18 floats ≈ 9 MB — comfortably inside the workspace
// arena's recyclable bucket range (compute.MaxRecycleFloats).
const DefaultShardRows = 1 << 16

// DefaultConfig mirrors the paper's experimental settings: rank 10, at most
// 32 iterations, 6 threads.
func DefaultConfig() Config {
	return Config{
		Rank:       10,
		MaxIters:   32,
		Tol:        1e-6,
		Threads:    6,
		Seed:       1,
		Oversample: 8,
		PowerIters: 1,
	}
}

func (c Config) validate(t *tensor.Irregular) error {
	if c.Rank <= 0 {
		return fmt.Errorf("parafac2: rank must be positive, got %d", c.Rank)
	}
	if c.Rank > t.J {
		return fmt.Errorf("parafac2: rank %d exceeds column count %d", c.Rank, t.J)
	}
	for k, s := range t.Slices {
		if c.Rank > s.Rows {
			return fmt.Errorf("parafac2: rank %d exceeds rows %d of slice %d", c.Rank, s.Rows, k)
		}
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("parafac2: MaxIters must be positive, got %d", c.MaxIters)
	}
	return nil
}

// ShardRowsThreshold resolves Config.ShardRows to the effective stage-1
// sharding threshold, in the form rsvd.NumShards takes: 0 means
// DefaultShardRows, negative disables sharding (expressed as 0, which
// NumShards treats as "never shard"). Exported as the single source of the
// resolution rule — reporting layers must use it rather than re-deriving
// the 0/negative convention.
func (c Config) ShardRowsThreshold() int {
	switch {
	case c.ShardRows == 0:
		return DefaultShardRows
	case c.ShardRows < 0:
		return 0
	}
	return c.ShardRows
}

// runtimePool resolves the compute pool for one decomposition call: the
// caller-provided Config.Pool, or a transient pool of width Threads (clamped
// by the single compute.WidthFromThreads rule: Threads <= 0 means serial).
// done must be called when the decomposition returns (it closes the pool only
// if this call owns it).
func (c Config) runtimePool() (pool *compute.Pool, done func()) {
	if c.Pool != nil {
		return c.Pool, func() {}
	}
	p := compute.NewPoolFromThreads(c.Threads)
	return p, p.Close
}

// Result is the output of a PARAFAC2 decomposition.
type Result struct {
	// H is the R×R common matrix; V is the J×R factor shared by all slices.
	H, V *mat.Dense
	// S holds the diagonal of each S_k (row k of W in the paper).
	S [][]float64
	// Q holds the column-orthonormal Q_k (I_k × R). For DPar2 these are
	// materialized lazily from the factored form A_k Z_k P_kᵀ.
	Q []*mat.Dense

	// Iters is the number of ALS iterations executed.
	Iters int
	// Fitness is 1 − Σ‖X_k−X̂_k‖²/Σ‖X_k‖² against the *input* tensor.
	Fitness float64

	// Timing breakdown.
	PreprocessTime time.Duration
	IterTime       time.Duration // total time in the ALS loop
	TotalTime      time.Duration

	// PreprocessedBytes is the footprint of preprocessed data the method
	// iterates on (input size for methods without preprocessing).
	PreprocessedBytes int64

	// ConvergenceTrace holds the per-iteration convergence measure when
	// Config.TrackConvergence is set.
	ConvergenceTrace []float64
}

// Uk materializes U_k = Q_k H for slice k.
func (r *Result) Uk(k int) *mat.Dense { return r.Q[k].Mul(r.H) }

// ReconstructSlice returns X̂_k = Q_k H S_k Vᵀ.
func (r *Result) ReconstructSlice(k int) *mat.Dense {
	return r.Q[k].Mul(r.H.ScaleColumns(r.S[k])).MulT(r.V)
}

// Fitness computes 1 − Σ_k‖X_k − X̂_k‖_F² / Σ_k‖X_k‖_F² of a factorization
// against the tensor it was computed from. Fitness close to 1 means the
// model approximates the data well (Section IV-A of the paper).
func Fitness(t *tensor.Irregular, r *Result) float64 {
	return fitnessWith(t, r, compute.Default())
}

// FitnessWith is Fitness on a caller-provided pool (the Engine's shared pool
// instead of the process-wide default). A nil pool evaluates serially.
func FitnessWith(t *tensor.Irregular, r *Result, pool *compute.Pool) float64 {
	return fitnessWith(t, r, pool)
}

// fitnessWith evaluates the fitness with slice reconstructions parallelized
// over pool and materialized in arena scratch (see reconstructionError2).
// Per-slice errors are reduced in slice order, so the result is
// deterministic for any pool width.
func fitnessWith(t *tensor.Irregular, r *Result, pool *compute.Pool) float64 {
	errSum := reconstructionError2(t, r.Q, r.H, r.V, r.S, pool)
	n := t.Norm2()
	if n == 0 {
		return 1
	}
	return 1 - errSum/n
}

// initCommon draws the shared-factor initialization used by all methods:
// H = I + small noise (well conditioned), V random orthonormal-ish Gaussian,
// S_k = 1 vectors. Matching initializations keep method comparisons fair.
func initCommon(g *rng.RNG, j, k, r int) (h, v *mat.Dense, s [][]float64) {
	h = mat.Identity(r)
	noise := mat.Gaussian(g, r, r).Scale(0.1)
	h.AddInPlace(noise)
	v = mat.Gaussian(g, j, r)
	s = make([][]float64, k)
	for kk := range s {
		s[kk] = make([]float64, r)
		for rr := range s[kk] {
			s[kk][rr] = 1
		}
	}
	return h, v, s
}

// wMatrix packs the S_k diagonals into the K×R matrix W of Algorithm 2.
func wMatrix(s [][]float64) *mat.Dense {
	k := len(s)
	r := len(s[0])
	w := mat.New(k, r)
	for kk := 0; kk < k; kk++ {
		copy(w.Row(kk), s[kk])
	}
	return w
}

// unpackW writes the rows of W back into the S_k diagonal vectors.
func unpackW(w *mat.Dense, s [][]float64) {
	for kk := range s {
		copy(s[kk], w.Row(kk))
	}
}

// solveUpdate performs the right-division B·G⁺ of an ALS normal equation,
// applying the configured ridge to the Gram matrix first.
func solveUpdate(b, gram *mat.Dense, cfg Config) *mat.Dense {
	if cfg.Ridge > 0 {
		gram = gram.Clone()
		for i := 0; i < gram.Rows; i++ {
			gram.Set(i, i, gram.At(i, i)+cfg.Ridge)
		}
	}
	return lapack.SolveGram(b, gram)
}

// projectW applies the configured constraints to the freshly updated W.
func projectW(w *mat.Dense, cfg Config) {
	if !cfg.NonnegativeS {
		return
	}
	for i, v := range w.Data {
		if v < 0 {
			w.Data[i] = 0
		}
	}
}

func relChange(prev, cur float64) float64 {
	if prev == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(prev-cur) / math.Abs(prev)
}
