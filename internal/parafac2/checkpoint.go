package parafac2

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/state"
)

// Stream checkpoint format (versioned, little-endian, sha256-trailed):
//
//	"DPC2" | version=1 |
//	config: R, MaxIters, Tol, Seed, Oversample, PowerIters, ShardRows,
//	        Ridge, NonnegativeS |
//	stream: absorbed, RefreshIters, RNG state (4 words + Box-Muller spare) |
//	compressed: J, K, I_1..I_K | A_1..A_K | D | E | F_1..F_K |
//	result: present?, kRes, Iters, Fitness, FitnessKind, PreprocessedBytes |
//	        H | V | S_1..S_kRes | Z_1..Z_kRes | P_1..P_kRes |
//	sha256 trailer (mandatory — see internal/state)
//
// Floats are IEEE-754 bit patterns (Float64bits), so Tol/Ridge/fitness and
// every factor value round-trip bit-exactly; the RNG state round-trips via
// rng.State. The result's A_k bases are NOT stored twice: they are the
// first kRes blocks of the compressed A (dpar2Iterate installs exactly that
// prefix), so RestoreStream rewires the factored Q onto the restored
// compressed bases. Timings and the convergence trace are run artifacts, not
// state, and are not checkpointed.
//
// What is deliberately absent: Threads, Pool, Progress, and TrackConvergence.
// Those are runtime bindings of the process, not stream state — RestoreStream
// takes them from the caller's Config, and they do not affect the computed
// bits (kernels are deterministic at any pool width).

const (
	checkpointMagic   = "DPC2"
	checkpointVersion = 1

	// ckptMaxDim bounds every dimension in a checkpoint header; combined
	// with incremental float reads it keeps adversarial headers from
	// reserving absurd buffers.
	ckptMaxDim = 1 << 32
)

// ErrCheckpoint reports a checkpoint payload that could not be decoded —
// truncated, corrupt, or structurally inconsistent. errors.Is(err,
// ErrCheckpoint) identifies all RestoreStream decode failures.
var ErrCheckpoint = errors.New("parafac2: corrupt or invalid checkpoint")

func ckptErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCheckpoint, fmt.Sprintf(format, args...))
}

// Checkpoint serializes the complete stream state — configuration, RNG,
// compressed representation, factors, and absorb count — such that a stream
// restored with RestoreStream continues bit-identically: restore-then-Absorb
// produces the same bytes as an uninterrupted stream absorbing the same
// batches. The payload ends with a sha256 trailer; pair with
// state.WriteFileAtomic for a crash-safe on-disk checkpoint.
func (s *StreamingDPar2) Checkpoint(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := state.NewSumWriter(bw)
	cw := &ckptWriter{w: sw}

	cw.bytes([]byte(checkpointMagic))
	cw.u64(checkpointVersion)

	// Config (deterministic knobs only — see the format comment).
	cfg := s.cfg
	cw.u64(uint64(cfg.Rank))
	cw.u64(uint64(cfg.MaxIters))
	cw.f64(cfg.Tol)
	cw.u64(cfg.Seed)
	cw.u64(uint64(cfg.Oversample))
	cw.u64(uint64(cfg.PowerIters))
	cw.i64(int64(cfg.ShardRows))
	cw.f64(cfg.Ridge)
	cw.bool(cfg.NonnegativeS)

	// Stream position and RNG.
	cw.u64(uint64(s.absorbed))
	cw.i64(int64(s.RefreshIters))
	st := s.g.State()
	for _, word := range st.S {
		cw.u64(word)
	}
	cw.bool(st.HaveSpare)
	cw.f64(st.Spare)

	// Compressed representation.
	c := s.comp
	cw.u64(uint64(c.J))
	cw.u64(uint64(len(c.A)))
	for _, a := range c.A {
		cw.u64(uint64(a.Rows))
	}
	for _, a := range c.A {
		cw.floats(a.Data)
	}
	cw.floats(c.D.Data)
	cw.floats(c.E)
	for _, f := range c.F {
		cw.floats(f.Data)
	}

	// Result.
	res := s.result
	if res == nil {
		cw.bool(false)
	} else {
		a, z, p, ok := res.FactoredQ()
		if !ok || !res.Factored() {
			return fmt.Errorf("parafac2: checkpoint requires a factored stream result")
		}
		kRes := len(a)
		if kRes > len(c.A) {
			return fmt.Errorf("parafac2: stream result covers %d slices but compressed holds %d", kRes, len(c.A))
		}
		cw.bool(true)
		cw.u64(uint64(kRes))
		cw.u64(uint64(res.Iters))
		cw.f64(res.Fitness)
		cw.u64(uint64(res.FitnessKind))
		cw.i64(res.PreprocessedBytes)
		cw.floats(res.H.Data)
		cw.floats(res.V.Data)
		for i := 0; i < kRes; i++ {
			cw.floats(res.S[i])
		}
		for i := 0; i < kRes; i++ {
			cw.floats(z[i].Data)
		}
		for i := 0; i < kRes; i++ {
			cw.floats(p[i].Data)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	if err := sw.WriteTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// RestoreStream reconstructs a stream from a Checkpoint payload. Every
// deterministic knob (rank, iteration budget, tolerances, seeds, sketch
// parameters) comes from the checkpoint; only the runtime bindings —
// Threads, Pool, Progress, TrackConvergence — are taken from cfg. The
// restored stream's next Absorb is bit-identical to the same Absorb on the
// stream that wrote the checkpoint. The checksum trailer is mandatory here
// (unlike dataio's legacy files): any decode failure reports ErrCheckpoint.
func RestoreStream(r io.Reader, cfg Config) (*StreamingDPar2, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	sr := state.NewSumReader(br)
	cr := &ckptReader{r: sr}

	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(sr, magic); err != nil {
		return nil, ckptErrf("short read on magic: %v", err)
	}
	if string(magic) != checkpointMagic {
		return nil, ckptErrf("bad magic %q", magic)
	}
	if v := cr.u64(); cr.err == nil && v != checkpointVersion {
		return nil, ckptErrf("unsupported version %d", v)
	}

	stored := Config{
		Rank:         int(cr.u64()),
		MaxIters:     int(cr.u64()),
		Tol:          cr.f64(),
		Seed:         cr.u64(),
		Oversample:   int(cr.u64()),
		PowerIters:   int(cr.u64()),
		ShardRows:    int(cr.i64()),
		Ridge:        cr.f64(),
		NonnegativeS: cr.bool(),
	}
	// Runtime bindings from the caller.
	stored.Threads = cfg.Threads
	stored.Pool = cfg.Pool
	stored.Progress = cfg.Progress
	stored.TrackConvergence = cfg.TrackConvergence

	absorbed := int(cr.u64())
	refreshIters := int(cr.i64())
	var rngState rng.State
	for i := range rngState.S {
		rngState.S[i] = cr.u64()
	}
	rngState.HaveSpare = cr.bool()
	rngState.Spare = cr.f64()
	if cr.err != nil {
		return nil, cr.err
	}
	if stored.Rank <= 0 || uint64(stored.Rank) > ckptMaxDim || stored.MaxIters <= 0 {
		return nil, ckptErrf("config (rank=%d, maxIters=%d)", stored.Rank, stored.MaxIters)
	}
	rank := stored.Rank

	// Compressed representation.
	j := int(cr.u64())
	k := int(cr.u64())
	if cr.err != nil {
		return nil, cr.err
	}
	if j < rank || uint64(j) > ckptMaxDim || k <= 0 || uint64(k) > ckptMaxDim {
		return nil, ckptErrf("compressed shape (J=%d, K=%d)", j, k)
	}
	if absorbed != k {
		return nil, ckptErrf("absorb count %d does not match %d compressed slices", absorbed, k)
	}
	rows := make([]int, 0, min(k, 1<<16))
	for i := 0; i < k; i++ {
		ik := int(cr.u64())
		if cr.err != nil {
			return nil, cr.err
		}
		if ik < rank || uint64(ik) > ckptMaxDim {
			return nil, ckptErrf("slice height %d", ik)
		}
		rows = append(rows, ik)
	}
	comp := &Compressed{J: j, Rank: rank}
	comp.A = make([]*mat.Dense, k)
	for i := range comp.A {
		comp.A[i] = cr.matrix(rows[i], rank)
	}
	comp.D = cr.matrix(j, rank)
	comp.E = cr.floats(rank)
	comp.F = make([]*mat.Dense, k)
	for i := range comp.F {
		comp.F[i] = cr.matrix(rank, rank)
	}

	// Result.
	var res *Result
	if hasRes := cr.bool(); cr.err == nil && hasRes {
		kRes := int(cr.u64())
		if cr.err != nil {
			return nil, cr.err
		}
		if kRes <= 0 || kRes > k {
			return nil, ckptErrf("result covers %d of %d slices", kRes, k)
		}
		res = &Result{
			Iters:             int(cr.u64()),
			Fitness:           cr.f64(),
			FitnessKind:       FitnessKind(cr.u64()),
			PreprocessedBytes: cr.i64(),
		}
		res.H = cr.matrix(rank, rank)
		res.V = cr.matrix(j, rank)
		res.S = make([][]float64, kRes)
		for i := range res.S {
			res.S[i] = cr.floats(rank)
		}
		z := make([]*mat.Dense, kRes)
		for i := range z {
			z[i] = cr.matrix(rank, rank)
		}
		p := make([]*mat.Dense, kRes)
		for i := range p {
			p[i] = cr.matrix(rank, rank)
		}
		if cr.err != nil {
			return nil, cr.err
		}
		// The factored Q's bases are the first kRes compressed bases — the
		// same sharing dpar2Iterate sets up, re-established on the restored
		// comp.A so the stream and its result keep one copy of each A_k.
		res.SetFactoredQ(append([]*mat.Dense(nil), comp.A[:kRes]...), z, p)
	}
	if cr.err != nil {
		return nil, cr.err
	}
	if err := sr.VerifyTrailer(); err != nil {
		return nil, ckptErrf("checksum: %v", err)
	}

	g, err := rng.FromState(rngState)
	if err != nil {
		return nil, ckptErrf("rng: %v", err)
	}
	return &StreamingDPar2{
		cfg:          stored,
		g:            g,
		comp:         comp,
		result:       res,
		absorbed:     absorbed,
		RefreshIters: refreshIters,
	}, nil
}

// --- encoding helpers (sticky-error, little-endian) -------------------------

type ckptWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (c *ckptWriter) bytes(b []byte) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.Write(b)
}

func (c *ckptWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[:], v)
	c.bytes(c.buf[:])
}

func (c *ckptWriter) i64(v int64)   { c.u64(uint64(v)) }
func (c *ckptWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

func (c *ckptWriter) bool(v bool) {
	if v {
		c.u64(1)
	} else {
		c.u64(0)
	}
}

const ckptFloatChunk = 1 << 16

func (c *ckptWriter) floats(vs []float64) {
	if c.err != nil {
		return
	}
	buf := make([]byte, 8*min(len(vs), ckptFloatChunk))
	for off := 0; off < len(vs) && c.err == nil; off += ckptFloatChunk {
		end := min(off+ckptFloatChunk, len(vs))
		n := end - off
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vs[off+i]))
		}
		c.bytes(buf[:n*8])
	}
}

type ckptReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (c *ckptReader) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		c.err = ckptErrf("short read: %v", err)
		return 0
	}
	return binary.LittleEndian.Uint64(c.buf[:])
}

func (c *ckptReader) i64() int64   { return int64(c.u64()) }
func (c *ckptReader) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *ckptReader) bool() bool {
	switch c.u64() {
	case 0:
		return false
	case 1:
		return true
	default:
		if c.err == nil {
			c.err = ckptErrf("bad boolean")
		}
		return false
	}
}

// floats reads n float64s, allocating incrementally (append doubling) so a
// corrupt header claiming a huge count against a truncated stream fails after
// at most ~2× the bytes actually present.
func (c *ckptReader) floats(n int) []float64 {
	if c.err != nil {
		return nil
	}
	out := make([]float64, 0, min(n, ckptFloatChunk))
	buf := make([]byte, 8*min(n, ckptFloatChunk))
	for len(out) < n {
		cnt := min(n-len(out), ckptFloatChunk)
		if _, err := io.ReadFull(c.r, buf[:cnt*8]); err != nil {
			c.err = ckptErrf("short read: %v", err)
			return nil
		}
		for i := 0; i < cnt; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out
}

// matrix reads a rows×cols float payload. Dimensions must already be
// validated by the caller; the product guard here is a belt-and-braces check
// against overflow.
func (c *ckptReader) matrix(rows, cols int) *mat.Dense {
	if c.err != nil {
		return nil
	}
	if rows <= 0 || cols <= 0 || rows > (1<<40)/cols {
		c.err = ckptErrf("matrix shape %dx%d", rows, cols)
		return nil
	}
	data := c.floats(rows * cols)
	if c.err != nil {
		return nil
	}
	return mat.NewFromData(rows, cols, data)
}
