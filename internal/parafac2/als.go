package parafac2

import (
	"context"
	"time"

	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// ALS runs classical PARAFAC2-ALS (Algorithm 2 of the paper; Kiers, ten
// Berge & Bro 1999). Every iteration touches every element of the input
// tensor: the Q_k update computes an SVD of X_k V S_k Hᵀ, and the projected
// tensor Y with slices Q_kᵀ X_k feeds one CP-ALS sweep for H, V, W.
//
// This is the reference baseline: slow on large dense tensors precisely
// because of those per-iteration passes over {X_k}, which is the cost DPar2
// removes.
func ALS(t *tensor.Irregular, cfg Config) (*Result, error) {
	return ALSCtx(context.Background(), t, cfg)
}

// ALSCtx is ALS with cancellation: the context is checked before every ALS
// iteration and between the parallel phases inside one (Q update, projection,
// CP sweep, convergence pass); the unwrapped ctx.Err() is returned promptly.
func ALSCtx(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error) {
	if err := cfg.validate(t); err != nil {
		return nil, err
	}
	pool, done := cfg.runtimePool()
	defer done()
	start := time.Now()
	g := rng.New(cfg.Seed)
	r := cfg.Rank
	k := t.K()

	h, v, s := initCommon(g, t.J, k, r)
	q := make([]*mat.Dense, k)

	res := &Result{
		S:                 s,
		PreprocessedBytes: t.SizeBytes(), // no preprocessing: iterates on the input
	}

	iterStart := time.Now()
	prev := -1.0
	for it := 0; it < cfg.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iters = it + 1
		updateQALS(ctx, t, h, v, s, q, pool)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Build the projected tensor Y_k = Q_kᵀ X_k (R × J).
		ySlices := make([]*mat.Dense, k)
		pool.ParallelFor(k, func(kk int) {
			ySlices[kk] = q[kk].TMul(t.Slices[kk])
		})
		y := tensor.MustDense3(ySlices)

		// One CP-ALS sweep on Y updates H (mode 1), V (mode 2), W (mode 3).
		h, v = cpSweep(y, h, v, s, cfg)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Convergence: full reconstruction error (this is what makes the
		// baseline's per-iteration cost high — Section IV-B).
		cur := reconstructionError2(t, q, h, v, s, pool)
		if cfg.TrackConvergence {
			res.ConvergenceTrace = append(res.ConvergenceTrace, cur)
		}
		if cfg.Progress != nil && !cfg.Progress(res.Iters, cur) {
			prev = cur
			break
		}
		if prev >= 0 && relChange(prev, cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}
	res.IterTime = time.Since(iterStart)

	res.H, res.V = h, v
	res.SetQ(q)
	res.TotalTime = time.Since(start)
	res.Fitness = fitnessWith(t, res, pool)
	res.FitnessKind = FitnessTrue
	return res, nil
}

// updateQALS refreshes every Q_k: Q_k ← Z'_k P'_kᵀ where
// Z'_k Σ' P'_kᵀ = SVD(X_k V S_k Hᵀ) truncated at rank R (lines 4-5, Alg. 2).
// This is the polar-factor solution of the orthogonal Procrustes problem.
// A cancelled ctx skips the remaining slices (callers re-check ctx after the
// phase and discard the partial update).
func updateQALS(ctx context.Context, t *tensor.Irregular, h, v *mat.Dense, s [][]float64, q []*mat.Dense, pool *compute.Pool) {
	r := h.Rows
	arena := compute.Shared()
	// VS_kHᵀ is J×R; precompute V once per k with the diagonal folded in.
	pool.RunPartitioned(scheduler.Partition(t.Rows(), pool.Workers()), func(k int) {
		if ctx.Err() != nil {
			return
		}
		vs := arena.GetUninit(v.Rows, v.Cols)
		v.ScaleColumnsInto(vs, s[k])
		vsh := arena.GetUninit(v.Rows, h.Rows)
		vs.MulTInto(vsh, h, nil) // J × R
		m := arena.GetUninit(t.Slices[k].Rows, vsh.Cols)
		t.Slices[k].MulInto(m, vsh, nil) // I_k × R
		d := lapack.Truncated(m, r)
		q[k] = d.U.MulT(d.V) // Z'_k P'_kᵀ, I_k × R, column orthonormal
		arena.Put(vs, vsh, m)
	})
}

// cpSweep runs the single CP-ALS iteration of lines 11-16, Algorithm 2 on
// the projected tensor. It returns the new H and V and writes the new S_k
// diagonals in place.
func cpSweep(y *tensor.Dense3, h, v *mat.Dense, s [][]float64, cfg Config) (hOut, vOut *mat.Dense) {
	w := wMatrix(s)

	// H ← Y(1)(W ⊙ V)(WᵀW ∗ VᵀV)⁺
	g1 := y.MTTKRP(1, w, v)
	h = solveUpdate(g1, w.Gram().HadamardInPlace(v.Gram()), cfg)

	// V ← Y(2)(W ⊙ H)(WᵀW ∗ HᵀH)⁺
	g2 := y.MTTKRP(2, w, h)
	v = solveUpdate(g2, w.Gram().HadamardInPlace(h.Gram()), cfg)

	// W ← Y(3)(V ⊙ H)(VᵀV ∗ HᵀH)⁺
	g3 := y.MTTKRP(3, v, h)
	w = solveUpdate(g3, v.Gram().HadamardInPlace(h.Gram()), cfg)
	projectW(w, cfg)
	unpackW(w, s)

	return h, v
}

// reconstructionError2 computes Σ_k ‖X_k − Q_k H S_k Vᵀ‖_F², touching every
// input element — parallel over slices, reduced in slice order.
func reconstructionError2(t *tensor.Irregular, q []*mat.Dense, h, v *mat.Dense, s [][]float64, pool *compute.Pool) float64 {
	arena := compute.Shared()
	errs := make([]float64, t.K())
	pool.ParallelFor(t.K(), func(kk int) {
		xk := t.Slices[kk]
		hs := arena.GetUninit(h.Rows, h.Cols)
		h.ScaleColumnsInto(hs, s[kk])
		qh := arena.GetUninit(q[kk].Rows, hs.Cols)
		q[kk].MulInto(qh, hs, nil)
		rec := arena.GetUninit(xk.Rows, xk.Cols)
		qh.MulTInto(rec, v, nil)
		d := xk.FrobDist(rec)
		errs[kk] = d * d
		arena.Put(hs, qh, rec)
	})
	var sum float64
	for _, e := range errs {
		sum += e
	}
	return sum
}
