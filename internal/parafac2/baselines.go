package parafac2

import (
	"context"
	"time"

	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// RDALS implements the RD-ALS baseline (Cheng & Haardt, "Efficient
// computation of the PARAFAC2 decomposition", ACSCC 2019) as the paper
// describes it: a one-time deterministic dimensionality reduction followed
// by PARAFAC2-ALS on the reduced slices.
//
// Preprocessing computes a truncated SVD of the horizontal concatenation
// ‖_k X_kᵀ ∈ R^{J×ΣI_k} — a single expensive deterministic factorization
// (this is exactly why Fig. 9(a) shows RD-ALS preprocessing up to 10×
// slower than DPar2's per-slice randomized sketches). The left factor
// U_c ∈ R^{J×R} then reduces every slice to X̃_k = X_k U_c ∈ R^{I_k×R},
// ALS runs on {X̃_k}, and the final V is lifted back as U_c Ṽ.
//
// Per the paper (Section IV-B), RD-ALS checks convergence with the *full*
// reconstruction error against the original tensor each iteration, which
// keeps its per-iteration cost proportional to the input size.
func RDALS(t *tensor.Irregular, cfg Config) (*Result, error) {
	return RDALSCtx(context.Background(), t, cfg)
}

// RDALSCtx is RDALS with cancellation: the context is checked before the
// deterministic preprocessing, before every ALS iteration, and between the
// parallel phases inside one; the unwrapped ctx.Err() is returned promptly.
func RDALSCtx(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error) {
	if err := cfg.validate(t); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool, done := cfg.runtimePool()
	defer done()
	start := time.Now()
	r := cfg.Rank
	k := t.K()

	// --- Preprocessing: deterministic truncated SVD of ‖_k X_kᵀ --------
	concat := make([]*mat.Dense, k)
	for kk, s := range t.Slices {
		concat[kk] = s.T()
	}
	wide := mat.HConcat(concat...) // J × ΣI_k
	svd := lapack.TruncatedWith(wide, r, pool)
	uc := svd.U // J × R, column orthonormal

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reduced := make([]*mat.Dense, k)
	pool.RunPartitioned(scheduler.Partition(t.Rows(), pool.Workers()), func(kk int) {
		reduced[kk] = t.Slices[kk].Mul(uc) // I_k × R
	})
	rt := tensor.MustIrregular(reduced)
	preprocess := time.Since(start)

	// --- ALS on the reduced tensor -------------------------------------
	g := rng.New(cfg.Seed)
	h, vTilde, s := initCommon(g, r, k, r)
	q := make([]*mat.Dense, k)

	res := &Result{S: s}
	// Preprocessed data: the reduced slices plus the basis U_c.
	res.PreprocessedBytes = rt.SizeBytes() + int64(uc.Rows*uc.Cols)*8
	res.PreprocessTime = preprocess

	iterStart := time.Now()
	prev := -1.0
	for it := 0; it < cfg.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iters = it + 1
		updateQALS(ctx, rt, h, vTilde, s, q, pool)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		ySlices := make([]*mat.Dense, k)
		pool.ParallelFor(k, func(kk int) {
			ySlices[kk] = q[kk].TMul(rt.Slices[kk])
		})
		y := tensor.MustDense3(ySlices)
		h, vTilde = cpSweep(y, h, vTilde, s, cfg)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Convergence on the FULL reconstruction error (the defining
		// inefficiency of RD-ALS's iteration phase).
		vFull := uc.Mul(vTilde)
		cur := reconstructionError2(t, q, h, vFull, s, pool)
		if cfg.TrackConvergence {
			res.ConvergenceTrace = append(res.ConvergenceTrace, cur)
		}
		if cfg.Progress != nil && !cfg.Progress(res.Iters, cur) {
			prev = cur
			break
		}
		if prev >= 0 && relChange(prev, cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}
	res.IterTime = time.Since(iterStart)

	res.H, res.V = h, uc.Mul(vTilde)
	res.SetQ(q)
	res.TotalTime = time.Since(start)
	res.Fitness = fitnessWith(t, res, pool)
	res.FitnessKind = FitnessTrue
	return res, nil
}

// SPARTan implements a SPARTan-style baseline (Perros et al., KDD 2017)
// adapted to dense tensors. SPARTan's contribution is a parallel,
// slice-blocked computation of the MTTKRPs inside PARAFAC2-ALS that never
// materializes the projected tensor Y or the Khatri-Rao products; its
// asymptotic per-iteration cost on dense data is the same as PARAFAC2-ALS
// (it exploits *sparsity* for its headline wins, which dense data lacks —
// the very observation motivating DPar2).
func SPARTan(t *tensor.Irregular, cfg Config) (*Result, error) {
	return SPARTanCtx(context.Background(), t, cfg)
}

// SPARTanCtx is SPARTan with cancellation: the context is checked before
// every ALS iteration and between the parallel phases inside one; the
// unwrapped ctx.Err() is returned promptly.
func SPARTanCtx(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error) {
	if err := cfg.validate(t); err != nil {
		return nil, err
	}
	pool, done := cfg.runtimePool()
	defer done()
	start := time.Now()
	g := rng.New(cfg.Seed)
	r := cfg.Rank
	k := t.K()

	h, v, s := initCommon(g, t.J, k, r)
	q := make([]*mat.Dense, k)

	res := &Result{S: s, PreprocessedBytes: t.SizeBytes()}

	iterStart := time.Now()
	prev := -1.0
	for it := 0; it < cfg.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iters = it + 1
		updateQALS(ctx, t, h, v, s, q, pool)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Slice-parallel fused MTTKRP accumulation: each worker owns a
		// block of slices and accumulates partial G⁽¹⁾/G⁽²⁾/G⁽³⁾ without
		// ever materializing Y. The Y_k = Q_kᵀ X_k projection is fused in.
		w := wMatrix(s)

		g1, g2, g3, ySlices := spartanMTTKRP(t, q, w, v, h, pool)

		h = solveUpdate(g1, w.Gram().HadamardInPlace(v.Gram()), cfg)
		// Recompute mode-2/3 with the updated H for ALS correctness; the
		// fused pass returned Y so these are cheap (R×J slices).
		y := tensor.MustDense3(ySlices)
		g2 = y.MTTKRP(2, w, h)
		v = solveUpdate(g2, w.Gram().HadamardInPlace(h.Gram()), cfg)
		g3 = y.MTTKRP(3, v, h)
		w = solveUpdate(g3, v.Gram().HadamardInPlace(h.Gram()), cfg)
		projectW(w, cfg)
		unpackW(w, s)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		cur := reconstructionError2(t, q, h, v, s, pool)
		if cfg.TrackConvergence {
			res.ConvergenceTrace = append(res.ConvergenceTrace, cur)
		}
		if cfg.Progress != nil && !cfg.Progress(res.Iters, cur) {
			prev = cur
			break
		}
		if prev >= 0 && relChange(prev, cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}
	res.IterTime = time.Since(iterStart)

	res.H, res.V = h, v
	res.SetQ(q)
	res.TotalTime = time.Since(start)
	res.Fitness = fitnessWith(t, res, pool)
	res.FitnessKind = FitnessTrue
	return res, nil
}

// spartanMTTKRP computes the mode-1 MTTKRP G⁽¹⁾ = Y(1)(W ⊙ V) with the
// projection Y_k = Q_kᵀ X_k fused in, in parallel over slices, and returns
// the projected slices for the subsequent mode-2/3 updates. Each slice's
// R×R contribution is reduced in slice order, so the result is independent
// of the pool width.
func spartanMTTKRP(t *tensor.Irregular, q []*mat.Dense, w, v, h *mat.Dense, pool *compute.Pool) (g1, g2, g3 *mat.Dense, ySlices []*mat.Dense) {
	k := t.K()
	r := h.Cols
	ySlices = make([]*mat.Dense, k)
	contribs := make([]*mat.Dense, k)
	pool.ParallelFor(k, func(kk int) {
		// Fused: Y_k = Q_kᵀ X_k, then contribution W(k,:) ⊙ (Y_k V).
		yk := q[kk].TMul(t.Slices[kk]) // R × J
		ySlices[kk] = yk
		yv := yk.Mul(v) // R × R
		wrow := w.Row(kk)
		for i := 0; i < r; i++ {
			yrow := yv.Row(i)
			for rr := 0; rr < r; rr++ {
				yrow[rr] *= wrow[rr]
			}
		}
		contribs[kk] = yv
	})
	g1 = mat.New(r, r)
	for _, c := range contribs {
		g1.AddInPlace(c)
	}
	return g1, nil, nil, ySlices
}
