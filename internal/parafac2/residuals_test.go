package parafac2

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSliceResidualsExactData(t *testing.T) {
	g := rng.New(40)
	ten := synthPARAFAC2(g, []int{30, 40, 35}, 12, 3, 0)
	res, err := DPar2(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// ALS converges slowly through swamps; near-exact (not bitwise) fit is
	// the realistic expectation at a bounded iteration budget.
	for k, r := range SliceResiduals(ten, res) {
		if r > 0.08 {
			t.Fatalf("slice %d residual %v on exact data", k, r)
		}
	}
	for k, f := range SliceFitness(ten, res) {
		if f < 0.99 {
			t.Fatalf("slice %d fitness %v on exact data", k, f)
		}
	}
}

func TestDetectAnomaliesFindsInjectedFault(t *testing.T) {
	// 11 slices follow the shared PARAFAC2 structure; one is replaced by
	// pure noise. Residual analysis must single it out.
	g := rng.New(41)
	rows := irregRows(g, 12, 30, 60)
	ten := synthPARAFAC2(g, rows, 15, 3, 0.02)
	faulty := 7
	ten.Slices[faulty] = mat.Gaussian(g, rows[faulty], 15).Scale(
		ten.Slices[faulty].FrobNorm() / math.Sqrt(float64(rows[faulty]*15)))

	cfg := smallConfig(3)
	cfg.MaxIters = 40
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	anomalies := DetectAnomalies(ten, res, 3.5)
	if len(anomalies) == 0 {
		t.Fatal("injected fault not detected")
	}
	if anomalies[0].Slice != faulty {
		t.Fatalf("top anomaly is slice %d, want %d (all: %+v)", anomalies[0].Slice, faulty, anomalies)
	}
}

func TestDetectAnomaliesCleanData(t *testing.T) {
	g := rng.New(42)
	ten := synthPARAFAC2(g, irregRows(g, 10, 30, 60), 12, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 40
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Homogeneous noise: nothing should stand out at a high threshold.
	if anomalies := DetectAnomalies(ten, res, 10); len(anomalies) != 0 {
		t.Fatalf("false positives on clean data: %+v", anomalies)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median of empty")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestSliceResidualsZeroSlice(t *testing.T) {
	g := rng.New(43)
	ten := synthPARAFAC2(g, []int{20, 25}, 8, 2, 0)
	slices := append(append([]*mat.Dense{}, ten.Slices...), mat.New(10, 8))
	mixed := tensor.MustIrregular(slices)
	cfg := smallConfig(2)
	cfg.MaxIters = 10
	res, err := DPar2(mixed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := SliceResiduals(mixed, res)
	if rs[2] != 0 {
		t.Fatalf("zero slice residual should be defined as 0, got %v", rs[2])
	}
}

func TestSortComponentsPreservesModel(t *testing.T) {
	g := rng.New(50)
	ten := synthPARAFAC2(g, []int{30, 40, 35}, 12, 4, 0.05)
	cfg := smallConfig(4)
	cfg.MaxIters = 20
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]*mat.Dense, ten.K())
	for k := range before {
		before[k] = res.ReconstructSlice(k)
	}
	res.SortComponents()
	for k := range before {
		if !res.ReconstructSlice(k).EqualApprox(before[k], 1e-10) {
			t.Fatalf("SortComponents changed the model on slice %d", k)
		}
	}
	// Energies now descending.
	rank := res.H.Cols
	energy := make([]float64, rank)
	for _, s := range res.S {
		for c, v := range s {
			energy[c] += v * v
		}
	}
	for c := 1; c < rank; c++ {
		if energy[c] > energy[c-1]+1e-12 {
			t.Fatalf("component energies not descending: %v", energy)
		}
	}
}
