package parafac2

import (
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Residual analysis: PARAFAC2's classical applications include fault
// detection (Wise et al. 2001, cited by the paper) and phenotype discovery,
// where the per-slice reconstruction error of a fitted model flags slices
// that do not follow the shared structure.

// SliceResiduals returns the relative reconstruction error of every slice:
// ‖X_k − X̂_k‖_F / ‖X_k‖_F. Slices that the shared factors cannot explain
// (faults, outliers, regime changes) show elevated residuals.
func SliceResiduals(t *tensor.Irregular, r *Result) []float64 {
	out := make([]float64, t.K())
	for k, xk := range t.Slices {
		n := xk.FrobNorm()
		if n == 0 {
			out[k] = 0
			continue
		}
		out[k] = xk.FrobDist(r.ReconstructSlice(k)) / n
	}
	return out
}

// SliceFitness returns 1 − residual² per slice, the per-slice analogue of
// the global fitness measure.
func SliceFitness(t *tensor.Irregular, r *Result) []float64 {
	res := SliceResiduals(t, r)
	for i, v := range res {
		res[i] = 1 - v*v
	}
	return res
}

// Anomaly flags one slice identified by residual analysis.
type Anomaly struct {
	Slice    int
	Residual float64
	// Score is the robust z-score of the residual: distance from the
	// median in units of 1.4826·MAD. Scores above ~3.5 are conventionally
	// anomalous.
	Score float64
}

// DetectAnomalies ranks slices by how far their residual deviates from the
// cohort, using the median/MAD robust z-score, and returns those whose
// score exceeds threshold (descending by score).
func DetectAnomalies(t *tensor.Irregular, r *Result, threshold float64) []Anomaly {
	res := SliceResiduals(t, r)
	med := median(res)
	dev := make([]float64, len(res))
	for i, v := range res {
		dev[i] = math.Abs(v - med)
	}
	mad := median(dev)
	scale := 1.4826 * mad
	if scale == 0 {
		scale = 1e-12
	}
	var out []Anomaly
	for k, v := range res {
		score := (v - med) / scale
		if score > threshold {
			out = append(out, Anomaly{Slice: k, Residual: v, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// SortComponents reorders the R components of a result in place by
// descending energy (the norm of the corresponding W column, i.e. how much
// weight the component carries across slices). PARAFAC2 factors come out of
// ALS in arbitrary component order; a canonical order makes results easier
// to read and compare across runs.
func (r *Result) SortComponents() {
	rank := r.H.Cols
	energy := make([]float64, rank)
	for _, s := range r.S {
		for c, v := range s {
			energy[c] += v * v
		}
	}
	order := make([]int, rank)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return energy[order[a]] > energy[order[b]] })

	permCols := func(m *mat.Dense) *mat.Dense {
		out := mat.New(m.Rows, m.Cols)
		for newC, oldC := range order {
			out.SetCol(newC, m.Col(oldC))
		}
		return out
	}
	// The component index r appears in the columns of H and V and the
	// entries of S_k (the model is Σ_r Q_k H(:,r) S_k(r) V(:,r)ᵀ); the
	// columns of Q_k pair with H's *rows* and must not be permuted.
	r.H = permCols(r.H)
	r.V = permCols(r.V)
	for k := range r.S {
		ns := make([]float64, rank)
		for newC, oldC := range order {
			ns[newC] = r.S[k][oldC]
		}
		r.S[k] = ns
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
