package parafac2

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// Append extends a compressed tensor with newly arrived slices without
// recompressing the old ones — the streaming setting the paper names as
// future work (and SPADE addresses for sparse data).
//
// Derivation: the existing compression is M ≈ D E Fᵀ with M = ‖_k C_k B_k.
// When slices X_{K+1..K+n} arrive, each is sketched once (stage 1) giving
// new blocks N = ‖_new (C_k B_k) ∈ R^{J×nR}. The updated concatenation is
//
//	M' = [M ‖ N] ≈ [D E ‖ N] · blkdiag(Fᵀ, I)
//
// so a randomized SVD of the small matrix G = [D·E ‖ N] ∈ R^{J×(R+nR)},
// G ≈ D' E' Wᵀ, yields the updated basis D', E' and — splitting W into its
// first R rows W₁ and the rest W₂ — the updated right blocks
//
//	F'⁽ᵏ⁾ = F⁽ᵏ⁾ W₁   for old slices k ≤ K
//	F'⁽ᵏ⁾ = W₂⁽ᵏ⁾     for new slices.
//
// The cost is O(Σ_new I_k J R + J (n+1) R²): independent of the K slices
// already absorbed.
func (c *Compressed) Append(g *rng.RNG, newSlices []*mat.Dense, cfg Config) error {
	if len(newSlices) == 0 {
		return nil
	}
	r := c.Rank
	for i, s := range newSlices {
		if s.Cols != c.J {
			return fmt.Errorf("parafac2: appended slice %d has %d columns, want %d", i, s.Cols, c.J)
		}
		if s.Rows < r {
			return fmt.Errorf("parafac2: appended slice %d has %d rows < rank %d", i, s.Rows, r)
		}
	}
	opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}
	pool, done := cfg.runtimePool()
	defer done()

	// Stage 1 on the new slices only, load-balanced as in Compress.
	n := len(newSlices)
	gens := make([]*rng.RNG, n)
	for i := range gens {
		gens[i] = g.Split()
	}
	rows := make([]int, n)
	for i, s := range newSlices {
		rows[i] = s.Rows
	}
	newA := make([]*mat.Dense, n)
	newCB := make([]*mat.Dense, n)
	pool.RunPartitioned(scheduler.Partition(rows, pool.Workers()), func(i int) {
		d := rsvd.Decompose(gens[i], newSlices[i], r, opts)
		newA[i] = d.U
		newCB[i] = d.V.ScaleColumns(d.S)
	})

	// Incremental stage 2: G = [D·E ‖ N], J × (R + nR). One big
	// factorization, so its kernels run on the pool (as in Compress).
	parts := make([]*mat.Dense, 0, n+1)
	parts = append(parts, c.D.ScaleColumns(c.E))
	parts = append(parts, newCB...)
	gmat := mat.HConcat(parts...)
	opts.Runner = pool
	d2 := rsvd.Decompose(g, gmat, r, opts)

	w1 := d2.V.RowBlock(0, r) // R × R: how the old basis rotates
	// Rewrite old F blocks in the new basis.
	for k, f := range c.F {
		c.F[k] = f.Mul(w1)
	}
	// New F blocks come straight from W₂.
	for i := 0; i < n; i++ {
		c.F = append(c.F, d2.V.RowBlock(r+i*r, r+(i+1)*r))
	}
	c.A = append(c.A, newA...)
	c.D = d2.U
	c.E = d2.S
	return nil
}

// StreamingDPar2 maintains a PARAFAC2 decomposition over a growing irregular
// tensor: slices arrive in batches, each batch is absorbed with Append, and
// the factors are refreshed by re-running the (cheap) iteration phase on the
// compressed representation.
type StreamingDPar2 struct {
	cfg    Config
	g      *rng.RNG
	comp   *Compressed
	result *Result
	// absorbed counts the slices seen so far.
	absorbed int
}

// NewStreamingDPar2 initializes the stream with a first batch.
func NewStreamingDPar2(initial *tensor.Irregular, cfg Config) (*StreamingDPar2, error) {
	if err := cfg.validate(initial); err != nil {
		return nil, err
	}
	s := &StreamingDPar2{
		cfg:      cfg,
		g:        rng.New(cfg.Seed + 0x5eed),
		comp:     Compress(initial, cfg),
		absorbed: initial.K(),
	}
	res, err := DPar2FromCompressed(s.comp, cfg)
	if err != nil {
		return nil, err
	}
	s.result = res
	return s, nil
}

// Absorb folds a batch of new slices into the stream and refreshes the
// factors. Only the new slices are touched at full resolution.
func (s *StreamingDPar2) Absorb(newSlices []*mat.Dense) error {
	if err := s.comp.Append(s.g, newSlices, s.cfg); err != nil {
		return err
	}
	s.absorbed += len(newSlices)
	res, err := DPar2FromCompressed(s.comp, s.cfg)
	if err != nil {
		return err
	}
	s.result = res
	return nil
}

// Result returns the current factorization (covering every absorbed slice).
func (s *StreamingDPar2) Result() *Result { return s.result }

// K returns the number of slices absorbed so far.
func (s *StreamingDPar2) K() int { return s.absorbed }

// Compressed exposes the maintained compressed representation.
func (s *StreamingDPar2) Compressed() *Compressed { return s.comp }
