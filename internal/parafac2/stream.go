package parafac2

import (
	"context"
	"fmt"

	"repro/internal/compute"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/tensor"
)

// Append extends a compressed tensor with newly arrived slices without
// recompressing the old ones — the streaming setting the paper names as
// future work (and SPADE addresses for sparse data).
//
// Derivation: the existing compression is M ≈ D E Fᵀ with M = ‖_k C_k B_k.
// When slices X_{K+1..K+n} arrive, each is sketched once (stage 1) giving
// new blocks N = ‖_new (C_k B_k) ∈ R^{J×nR}. The updated concatenation is
//
//	M' = [M ‖ N] ≈ [D E ‖ N] · blkdiag(Fᵀ, I)
//
// so a randomized SVD of the small matrix G = [D·E ‖ N] ∈ R^{J×(R+nR)},
// G ≈ D' E' Wᵀ, yields the updated basis D', E' and — splitting W into its
// first R rows W₁ and the rest W₂ — the updated right blocks
//
//	F'⁽ᵏ⁾ = F⁽ᵏ⁾ W₁   for old slices k ≤ K
//	F'⁽ᵏ⁾ = W₂⁽ᵏ⁾     for new slices.
//
// The cost is O(Σ_new I_k J R + J (n+1) R²): independent of the K slices
// already absorbed.
func (c *Compressed) Append(g *rng.RNG, newSlices []*mat.Dense, cfg Config) error {
	return c.AppendCtx(context.Background(), g, newSlices, cfg)
}

// AppendCtx is Append with cancellation: the context is checked between the
// per-slice sketches and before the incremental stage-2 factorization. On
// cancellation the compressed representation AND the caller's generator are
// left unmodified and the unwrapped ctx.Err() is returned, so retrying the
// same batch reproduces an uninterrupted run bit for bit.
//
// All of Append's randomness (the per-slice stage-1 generators and the
// stage-2 sketch) is drawn from a single child generator derived from a
// clone of g; g itself advances — by exactly the one Split an uninterrupted
// run observes — only once the batch is past every cancellation point.
// Before this, a cancelled append had already consumed n stage-1 Splits
// (plus any stage-2 draws) from g, so a retried batch sketched with
// different randomness and a retried stream diverged from an uninterrupted
// one.
func (c *Compressed) AppendCtx(ctx context.Context, g *rng.RNG, newSlices []*mat.Dense, cfg Config) error {
	if len(newSlices) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	r := c.Rank
	if c.J < r {
		// A compressed tensor narrower than its rank cannot have been
		// produced by a validated decomposition; appending to it would
		// mis-shape every F block downstream.
		return fmt.Errorf("parafac2: compressed tensor has %d columns < rank %d", c.J, r)
	}
	for i, s := range newSlices {
		if s.Cols != c.J {
			return fmt.Errorf("parafac2: appended slice %d has %d columns, want %d", i, s.Cols, c.J)
		}
		if s.Rows < r {
			return fmt.Errorf("parafac2: appended slice %d has %d rows < rank %d", i, s.Rows, r)
		}
	}
	opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}
	pool, done := cfg.runtimePool()
	defer done()
	arena := compute.Shared()

	// Speculative RNG: parent is what g becomes on commit, child feeds
	// every draw below. Until the commit near the end of this function, g
	// is never touched.
	parent := g.Clone()
	child := parent.Split()

	// Stage 1 on the new slices only, load-balanced (over shards of tall
	// slices, whole slices otherwise) as in Compress.
	n := len(newSlices)
	gens := make([]*rng.RNG, n)
	for i := range gens {
		gens[i] = child.Split()
	}
	newA, newCB := stage1Sketches(ctx, newSlices, gens, cfg, pool)
	if err := ctx.Err(); err != nil {
		return err
	}

	// Incremental stage 2: G = [D·E ‖ N], J × (R + nR), assembled in arena
	// scratch (the per-part ScaleColumns/HConcat copies used to be fresh
	// heap allocations every batch). One big factorization, so its kernels
	// run on the pool (as in Compress).
	gmat := arena.GetUninit(c.J, (n+1)*r)
	for i := 0; i < c.J; i++ {
		row := gmat.Row(i)
		drow := c.D.Row(i)
		for j := 0; j < r; j++ {
			row[j] = drow[j] * c.E[j]
		}
		for b, cb := range newCB {
			copy(row[r+b*r:r+(b+1)*r], cb.Row(i))
		}
	}
	opts.Runner = pool
	d2 := rsvd.Decompose(child, gmat, r, opts)
	arena.Put(gmat)

	// Past every cancellation point: commit the parent advance, then
	// mutate the compressed representation.
	*g = *parent

	w1 := d2.V.RowBlock(0, r) // R × R: how the old basis rotates
	// Rewrite old F blocks in the new basis, in place through one recycled
	// scratch block — the rotation is O(K·R²) flops but O(1) allocations
	// (it used to allocate K fresh matrices per batch).
	tmp := arena.GetUninit(r, r)
	for _, f := range c.F {
		f.MulInto(tmp, w1, nil)
		f.CopyFrom(tmp)
	}
	arena.Put(tmp)
	// New F blocks come straight from W₂.
	for i := 0; i < n; i++ {
		c.F = append(c.F, d2.V.RowBlock(r+i*r, r+(i+1)*r))
	}
	c.A = append(c.A, newA...)
	c.D = d2.U
	c.E = d2.S
	return nil
}

// DefaultRefreshIters bounds the warm-started factor refresh per Absorb: the
// previous factors are already (near-)converged for all but the newest
// slices, so a handful of iterations recovers convergence instead of the
// full MaxIters a cold start needs.
const DefaultRefreshIters = 8

// StreamingDPar2 maintains a PARAFAC2 decomposition over a growing irregular
// tensor: slices arrive in batches, each batch is absorbed with Append, and
// the factors are refreshed by warm-starting the (cheap) iteration phase on
// the compressed representation from the previous factors.
type StreamingDPar2 struct {
	cfg    Config
	g      *rng.RNG
	comp   *Compressed
	result *Result
	// absorbed counts the slices seen so far.
	absorbed int

	// RefreshIters bounds the ALS iterations of each warm-started Absorb
	// refresh (the bootstrap always runs the full cfg.MaxIters). It
	// defaults to min(DefaultRefreshIters, cfg.MaxIters); set it between
	// batches to trade absorb latency against fitness recovery. Values
	// above cfg.MaxIters are clamped to cfg.MaxIters; values <= 0 reset
	// to the default.
	RefreshIters int
}

// NewStreamingDPar2 initializes the stream with a first batch.
func NewStreamingDPar2(initial *tensor.Irregular, cfg Config) (*StreamingDPar2, error) {
	return NewStreamingDPar2Ctx(context.Background(), initial, cfg)
}

// NewStreamingDPar2Ctx is NewStreamingDPar2 with cancellation.
func NewStreamingDPar2Ctx(ctx context.Context, initial *tensor.Irregular, cfg Config) (*StreamingDPar2, error) {
	if err := cfg.validate(initial); err != nil {
		return nil, err
	}
	comp, err := CompressCtx(ctx, initial, cfg)
	if err != nil {
		return nil, err
	}
	s := &StreamingDPar2{
		cfg:          cfg,
		g:            rng.New(cfg.Seed + 0x5eed),
		comp:         comp,
		absorbed:     initial.K(),
		RefreshIters: DefaultRefreshIters,
	}
	res, err := dpar2Iterate(ctx, s.comp, cfg, nil)
	if err != nil {
		return nil, err
	}
	s.result = res
	return s, nil
}

// Absorb folds a batch of new slices into the stream and refreshes the
// factors. Only the new slices are touched at full resolution.
func (s *StreamingDPar2) Absorb(newSlices []*mat.Dense) error {
	return s.AbsorbCtx(context.Background(), newSlices)
}

// AbsorbCtx is Absorb with cancellation. The refresh warm-starts from the
// previous H, V, and S (which are basis-independent, so they survive the
// rotation Append applies to the compressed representation); new slices get
// the cold-start S_k initialization. The refresh runs at most RefreshIters
// iterations instead of the full cfg.MaxIters a cold start would need.
//
// Error semantics: an error from the append phase (wrapping nothing, e.g. a
// plain ctx.Err()) means the batch was NOT absorbed — the stream, including
// its RNG state, is unchanged, and retrying the same batch produces a stream
// bit-identical to one that was never interrupted (see AppendCtx). An error
// from the refresh phase is wrapped with "batch absorbed" context: the
// slices ARE part of the stream (K reflects them) but Result is stale; call
// Refresh to re-derive the factors. Re-absorbing the batch in that state
// would duplicate it.
//
// Cost: stage-1 sketches of the new slices, the R-sized stage-2 update, the
// O(K·R²) in-place F rotation, and RefreshIters compressed-space ALS
// iterations. No per-old-slice O(I_k) work happens anywhere on this path —
// the factors stay in lazy factored form (see Result) — so absorb latency
// and allocations are independent of the slices already absorbed.
func (s *StreamingDPar2) AbsorbCtx(ctx context.Context, newSlices []*mat.Dense) error {
	if len(newSlices) == 0 {
		// Append would no-op, but the refresh below would still burn
		// RefreshIters warm-start iterations; an empty batch must leave
		// Result untouched.
		return nil
	}
	if err := s.comp.AppendCtx(ctx, s.g, newSlices, s.cfg); err != nil {
		return err
	}
	s.absorbed += len(newSlices)
	if err := s.Refresh(ctx); err != nil {
		return fmt.Errorf("parafac2: batch absorbed but factor refresh incomplete (Result is stale; call Refresh, do not re-absorb): %w", err)
	}
	return nil
}

// Refresh re-derives the factors from the current compressed representation,
// warm-started from the previous result when one exists. Use it to recover
// after a cancelled AbsorbCtx refresh, or to run extra polish iterations
// between batches.
func (s *StreamingDPar2) Refresh(ctx context.Context) error {
	cfg := s.cfg
	var warm *warmStart
	if prev := s.result; prev != nil {
		warm = &warmStart{h: prev.H, v: prev.V, s: prev.S}
		cfg.MaxIters = s.refreshIters()
	}
	res, err := dpar2Iterate(ctx, s.comp, cfg, warm)
	if err != nil {
		return err
	}
	s.result = res
	return nil
}

// refreshIters resolves the per-Absorb iteration bound.
func (s *StreamingDPar2) refreshIters() int {
	n := s.RefreshIters
	if n <= 0 {
		n = DefaultRefreshIters
	}
	if n > s.cfg.MaxIters {
		n = s.cfg.MaxIters
	}
	return n
}

// Clone forks the stream: the copy absorbs and refreshes independently of
// the original. The compressed A_k bases are shared (immutable once built);
// everything Append mutates in place (the F blocks, D, E, the RNG state, and
// the result pointer) is copied, so the fork costs O(K·R² + J·R) — cheap
// enough to branch a stream per what-if batch, and what lets BenchmarkAbsorb
// replay the same absorb at a fixed K.
func (s *StreamingDPar2) Clone() *StreamingDPar2 {
	var res *Result
	if s.result != nil {
		cp := *s.result
		res = &cp
	}
	return &StreamingDPar2{
		cfg:          s.cfg,
		g:            s.g.Clone(),
		comp:         s.comp.Clone(),
		result:       res,
		absorbed:     s.absorbed,
		RefreshIters: s.RefreshIters,
	}
}

// Result returns the current factorization (covering every absorbed slice).
func (s *StreamingDPar2) Result() *Result { return s.result }

// K returns the number of slices absorbed so far.
func (s *StreamingDPar2) K() int { return s.absorbed }

// Compressed exposes the maintained compressed representation.
func (s *StreamingDPar2) Compressed() *Compressed { return s.comp }
