package parafac2

import (
	"context"
	"time"

	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// Compressed holds the two-stage compression of an irregular tensor
// (Section III-B): X_k ≈ A_k F⁽ᵏ⁾ E Dᵀ where
//
//	stage 1:  X_k ≈ A_k B_k C_kᵀ                (randomized SVD per slice)
//	stage 2:  M = ‖_k (C_k B_k) ≈ D E Fᵀ        (randomized SVD of J×KR)
//
// A_k keeps its column-orthogonality, which is what lets the Q_k update run
// on R×R matrices (Section III-D).
type Compressed struct {
	A []*mat.Dense // A_k: I_k × R, column orthonormal
	D *mat.Dense   // J × R, column orthonormal
	E []float64    // diagonal of E (R singular values of M)
	F []*mat.Dense // F⁽ᵏ⁾: R × R vertical blocks of F ∈ R^{KR×R}

	J    int
	Rank int
}

// SizeBytes reports the footprint of the preprocessed data
// (Theorem 2: O(Σ I_k R + K R² + J R)).
func (c *Compressed) SizeBytes() int64 {
	var n int64
	for _, a := range c.A {
		n += int64(a.Rows * a.Cols)
	}
	n += int64(c.D.Rows * c.D.Cols)
	n += int64(len(c.E))
	for _, f := range c.F {
		n += int64(f.Rows * f.Cols)
	}
	return n * 8
}

// Clone returns an independent copy: Append on the original no longer
// affects the clone and vice versa. The A_k bases are shared, not copied —
// they are immutable once built (Append only appends new ones; the in-place
// basis rotation touches F blocks only) — so a clone costs O(K·R² + J·R).
func (c *Compressed) Clone() *Compressed {
	f := make([]*mat.Dense, len(c.F))
	for i, b := range c.F {
		f[i] = b.Clone()
	}
	return &Compressed{
		A:    append([]*mat.Dense(nil), c.A...),
		D:    c.D.Clone(),
		E:    append([]float64(nil), c.E...),
		F:    f,
		J:    c.J,
		Rank: c.Rank,
	}
}

// SliceApprox materializes X̃_k = A_k F⁽ᵏ⁾ E Dᵀ (Equation 6) — used by tests
// and the convergence identity, not by the iteration hot path.
func (c *Compressed) SliceApprox(k int) *mat.Dense {
	return c.A[k].Mul(c.F[k].ScaleColumns(c.E)).MulT(c.D)
}

// Compress runs the two-stage compression (lines 2-6 of Algorithm 3).
// Stage 1 is parallelized with the greedy slice partition of Algorithm 4,
// because the randomized-SVD cost of slice k is proportional to I_k.
func Compress(t *tensor.Irregular, cfg Config) *Compressed {
	c, _ := CompressCtx(context.Background(), t, cfg)
	return c
}

// CompressCtx is Compress with cancellation: the context is checked before
// each compression phase and between per-slice sketches, and the unwrapped
// ctx.Err() is returned as soon as it is observed.
func CompressCtx(ctx context.Context, t *tensor.Irregular, cfg Config) (*Compressed, error) {
	pool, done := cfg.runtimePool()
	defer done()
	return compressWith(ctx, t, cfg, pool)
}

func compressWith(ctx context.Context, t *tensor.Irregular, cfg Config, pool *compute.Pool) (*Compressed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := rng.New(cfg.Seed)
	r := cfg.Rank
	k := t.K()
	opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}

	// Pre-split deterministic child generators so the result does not
	// depend on goroutine scheduling.
	gens := make([]*rng.RNG, k)
	for kk := 0; kk < k; kk++ {
		gens[kk] = g.Split()
	}

	// Stage 1: per-slice randomized SVD, load-balanced by row count, with
	// slices above the ShardRows threshold split into row shards (each
	// shard its own work unit). A cancelled context skips the remaining
	// sketches; the partial arrays are discarded below.
	a, cb := stage1Sketches(ctx, t.Slices, gens, cfg, pool)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: randomized SVD of M = ‖_k (C_k B_k) ∈ R^{J×KR}. One big
	// factorization — hand the pool to its kernels instead.
	m := mat.HConcat(cb...)
	opts.Runner = pool
	d2 := rsvd.Decompose(g, m, r, opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	f := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		f[kk] = d2.V.RowBlock(kk*r, (kk+1)*r)
	}
	return &Compressed{A: a, D: d2.U, E: d2.S, F: f, J: t.J, Rank: r}, nil
}

// stage1Sketches runs the per-slice stage-1 randomized SVDs (A_k, C_k B_k)
// for Compress and Append. Slices taller than cfg.ShardRows are routed
// through the row-sharded path: each shard is an independent work unit, so
// scheduler.Partition balances over shards rather than whole slices — one
// tall slice spreads across the whole pool instead of pinning a worker — and
// per-shard scratch stays O(ShardRows·(Rank+Oversample)), inside the arena's
// recyclable bucket range. gens must hold one pre-split generator per slice;
// sharded slices derive their per-shard and merge children from their slice
// generator (rsvd.ShardGens), keeping results bit-reproducible for any pool
// width or partition.
//
// On context cancellation the remaining units and merges are skipped; the
// caller must check ctx.Err() and discard the partial arrays.
func stage1Sketches(ctx context.Context, slices []*mat.Dense, gens []*rng.RNG, cfg Config, pool *compute.Pool) (a, cb []*mat.Dense) {
	r := cfg.Rank
	opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}
	sketch := opts.SketchWidth(r)
	threshold := cfg.ShardRowsThreshold()

	// Work units: a whole slice (shard == -1) or one row shard of a tall
	// slice. Sizes are row counts — what the sketch cost is proportional to.
	type unit struct{ k, shard int }
	var units []unit
	var sizes []int
	nShards := make([]int, len(slices))
	bounds := make([][]int, len(slices))
	shardGens := make([][]*rng.RNG, len(slices))
	mergeGens := make([]*rng.RNG, len(slices))
	sketches := make([][]rsvd.ShardSketch, len(slices))
	for k, s := range slices {
		m := rsvd.NumShards(s.Rows, s.Cols, threshold, sketch)
		nShards[k] = m
		if m <= 1 {
			units = append(units, unit{k, -1})
			sizes = append(sizes, s.Rows)
			continue
		}
		bounds[k] = rsvd.ShardBounds(s.Rows, m)
		shardGens[k], mergeGens[k] = rsvd.ShardGens(gens[k], m)
		sketches[k] = make([]rsvd.ShardSketch, m)
		for i := 0; i < m; i++ {
			units = append(units, unit{k, i})
			sizes = append(sizes, bounds[k][i+1]-bounds[k][i])
		}
	}

	a = make([]*mat.Dense, len(slices))
	cb = make([]*mat.Dense, len(slices)) // C_k B_k, J × R
	// One Jacobi workspace per partition bucket: buckets run on exactly one
	// worker each, so the workspace is never shared concurrently and the
	// small SVD inside every whole-slice Decompose draws nothing from the
	// lapack pool.
	part := scheduler.Partition(sizes, pool.Workers())
	bucketOf := make([]int, len(units))
	for bi, bucket := range part {
		for _, u := range bucket {
			bucketOf[u] = bi
		}
	}
	wss := make([]lapack.Workspace, len(part))
	pool.RunPartitioned(part, func(u int) {
		if ctx.Err() != nil {
			return
		}
		un := units[u]
		s := slices[un.k]
		if un.shard < 0 {
			// The slice is the unit of parallelism; kernels inside the
			// decomposition run serially (opts.Runner is nil).
			uopts := opts
			uopts.Workspace = &wss[bucketOf[u]]
			d := rsvd.Decompose(gens[un.k], s, r, uopts)
			a[un.k] = d.U
			cb[un.k] = d.V.ScaleColumns(d.S)
			return
		}
		lo, hi := bounds[un.k][un.shard], bounds[un.k][un.shard+1]
		sketches[un.k][un.shard] = rsvd.SketchShard(shardGens[un.k][un.shard], s.RowView(lo, hi), r, opts)
	})

	// Merge the shard bases slice by slice. Each merge is one small SVD of
	// the stacked (m·(R+s))×J blocks plus the O(I_k·(R+s)·R) materialization
	// of A_k, whose kernels run on the pool. The merge loop is serial, so a
	// single reused workspace covers every merge SVD.
	mopts := opts
	mopts.Runner = pool
	mopts.Workspace = new(lapack.Workspace)
	for k, m := range nShards {
		if m <= 1 || ctx.Err() != nil {
			continue
		}
		d := rsvd.MergeShards(mergeGens[k], sketches[k], r, mopts)
		a[k] = d.U
		cb[k] = d.V.ScaleColumns(d.S)
	}
	return a, cb
}

// DPar2 runs the full method of the paper (Algorithm 3): two-stage
// compression, then ALS iterations that touch only the compressed factors.
//
// Per iteration (Lemmas 1-3) the cost is O(JR² + KR³) — independent of the
// slice heights I_k — versus O(Σ_k I_k J R) for PARAFAC2-ALS.
func DPar2(t *tensor.Irregular, cfg Config) (*Result, error) {
	return DPar2Ctx(context.Background(), t, cfg)
}

// DPar2Ctx is DPar2 with cancellation: the context is checked between
// compression phases, before every ALS iteration, and between the parallel
// phases inside one iteration. On cancellation the unwrapped ctx.Err() is
// returned promptly and any transient pool is released.
func DPar2Ctx(ctx context.Context, t *tensor.Irregular, cfg Config) (*Result, error) {
	if err := cfg.validate(t); err != nil {
		return nil, err
	}
	pool, done := cfg.runtimePool()
	defer done()
	cfg.Pool = pool // one pool for both phases and the fitness pass

	start := time.Now()
	comp, err := compressWith(ctx, t, cfg, pool)
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(start)

	res, err := dpar2Iterate(ctx, comp, cfg, nil)
	if err != nil {
		return nil, err
	}
	res.PreprocessTime = preprocess
	res.TotalTime = time.Since(start)
	res.Fitness = fitnessWith(t, res, pool)
	res.FitnessKind = FitnessTrue
	return res, nil
}

// DPar2FromCompressed runs the iteration phase of Algorithm 3 on an already
// compressed tensor. Exposed separately so callers can amortize compression
// across runs (e.g. rank sweeps over the same data) and so benchmarks can
// time the phases independently.
//
// Result.Fitness is a compressed-space estimate (FitnessKind ==
// FitnessCompressed): 1 − e/‖X̃‖², where e is the final convergence measure
// and X̃ the compressed approximation the iteration sees (the input tensor
// itself is not available here). Because A_k, D, Z_k, and P_k all have
// orthonormal columns this is the exact fitness of the factorization against
// X̃; it differs from the fitness against the original tensor only by the
// (one-time) compression error. Use Fitness for the latter when the tensor
// is at hand.
//
// All per-slice working state is allocated once up front and every kernel in
// the loop writes into preallocated or arena scratch, so the steady-state
// iteration performs (nearly) zero heap allocations.
func DPar2FromCompressed(comp *Compressed, cfg Config) (*Result, error) {
	return DPar2FromCompressedCtx(context.Background(), comp, cfg)
}

// DPar2FromCompressedCtx is DPar2FromCompressed with cancellation (see
// DPar2Ctx for the check points).
func DPar2FromCompressedCtx(ctx context.Context, comp *Compressed, cfg Config) (*Result, error) {
	return dpar2Iterate(ctx, comp, cfg, nil)
}

// warmStart seeds the iteration phase with factors from a previous run over
// (a prefix of) the same data — the streaming refresh path. H, V, and S live
// in basis-independent spaces (H is the R×R common matrix, V is J×R, S_k are
// the diagonal weights), so they survive the basis rotation Append applies
// to the compressed representation. S rows beyond len(s) (newly absorbed
// slices) keep the cold-start all-ones initialization.
type warmStart struct {
	h *mat.Dense
	v *mat.Dense
	s [][]float64
}

// compatible reports whether the warm factors match the compressed shape.
func (w *warmStart) compatible(comp *Compressed) bool {
	r := comp.Rank
	return w != nil && w.h != nil && w.v != nil &&
		w.h.Rows == r && w.h.Cols == r &&
		w.v.Rows == comp.J && w.v.Cols == r
}

// dpar2Iterate is the iteration phase of Algorithm 3, optionally warm-started.
func dpar2Iterate(ctx context.Context, comp *Compressed, cfg Config, warm *warmStart) (*Result, error) {
	iterStart := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool, done := cfg.runtimePool()
	defer done()
	arena := compute.Shared()
	g := rng.New(cfg.Seed + 0x9e37)
	r := cfg.Rank
	k := len(comp.A)

	h, v, s := initCommon(g, comp.J, k, r)
	if warm.compatible(comp) {
		h = warm.h.Clone()
		v = warm.v.Clone()
		for kk := range s {
			if kk < len(warm.s) && len(warm.s[kk]) == r {
				copy(s[kk], warm.s[kk])
			}
		}
	}

	// Per-slice R×R working state (Z_k, P_k, and T_k = P_k Z_kᵀ F⁽ᵏ⁾, the
	// factor of Y_k), allocated once on slab backings (allocation count
	// independent of K — the streaming absorb path runs this per batch) and
	// overwritten in place each iteration. Z_k and P_k become the result's
	// factored Q. Row kk of svals receives the singular values of slice
	// kk's Q-update SVD (needed only as scratch).
	z := newRRBlocks(k, r)
	p := newRRBlocks(k, r)
	tf := newRRBlocks(k, r)
	svals := mat.New(k, r)
	svalRows := make([][]float64, k)
	for kk := range svalRows {
		svalRows[kk] = svals.Row(kk)
	}
	// The K per-slice Q-update SVDs run as one fused batch; its slab and
	// masks live in bws for the whole iteration loop (and, through the
	// absorb refresh, for the life of a streaming batch) so the batched
	// kernel never touches the package workspace pool.
	svdIn := newRRBlocks(k, r)
	var bws lapack.BatchWorkspace

	dtv := mat.New(r, r)                   // DᵀV
	ga, gb := mat.New(r, r), mat.New(r, r) // Gram scratch
	g1, g2, g3 := mat.New(r, r), mat.New(comp.J, r), mat.New(k, r)

	res := &Result{S: s, PreprocessedBytes: comp.SizeBytes()}

	prev := -1.0
	for it := 0; it < cfg.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iters = it + 1

		// DᵀV is shared by the Q_k update and Lemma 1.
		comp.D.TMulInto(dtv, v, pool)

		// --- Update Q_k in factored form (Section III-D) -------------
		// SVD of F⁽ᵏ⁾ E DᵀV S_k Hᵀ (R×R) gives Z_k Σ_k P_kᵀ;
		// Q_k = A_k Z_k P_kᵀ is never materialized. Three phases: build
		// every SVD input, factor them all in one fused Jacobi batch
		// (parallel across slices only, so results match K sequential
		// FactorInto calls bit for bit), then form the T_k caches.
		pool.ParallelFor(k, func(kk int) {
			t1 := arena.GetUninit(r, r)
			t2 := arena.GetUninit(r, r)
			comp.F[kk].ScaleColumnsInto(t1, comp.E) // F⁽ᵏ⁾E
			t1.MulInto(t2, dtv, nil)                // · DᵀV
			t2.ScaleColumnsInto(t2, s[kk])          // · S_k
			t2.MulTInto(svdIn[kk], h, nil)          // · Hᵀ
			arena.Put(t1, t2)
		})
		lapack.FactorBatch(svdIn, z, svalRows, p, pool, &bws)
		pool.ParallelFor(k, func(kk int) {
			// Y_k = P_k Z_kᵀ F⁽ᵏ⁾ E Dᵀ; cache T_k = P_k Z_kᵀ F⁽ᵏ⁾.
			t2 := arena.GetUninit(r, r)
			p[kk].MulTInto(t2, z[kk], nil)
			t2.MulInto(tf[kk], comp.F[kk], nil)
			arena.Put(t2)
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// --- One CP-ALS sweep via Lemmas 1-3 --------------------------
		w := wMatrix(s)

		// Lemma 1: G⁽¹⁾(:,r) = (Σ_k W(k,r) T_k) E DᵀV(:,r).
		lemma1Into(g1, tf, w, comp.E, dtv, pool, arena)
		w.GramInto(ga)
		v.GramInto(gb)
		h = solveUpdate(g1, ga.HadamardInPlace(gb), cfg)

		// Lemma 2: G⁽²⁾(:,r) = D E Σ_k W(k,r) T_kᵀ H(:,r).
		lemma2Into(g2, tf, w, comp.D, comp.E, h, pool, arena)
		w.GramInto(ga)
		h.GramInto(gb)
		v = solveUpdate(g2, ga.HadamardInPlace(gb), cfg)

		// Lemma 3: G⁽³⁾(k,r) = H(:,r)ᵀ T_k E DᵀV(:,r), recomputed with
		// the fresh V.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		comp.D.TMulInto(dtv, v, pool)
		lemma3Into(g3, tf, comp.E, dtv, h, pool, arena)
		v.GramInto(ga)
		h.GramInto(gb)
		w = solveUpdate(g3, ga.HadamardInPlace(gb), cfg)
		projectW(w, cfg)
		unpackW(w, s)

		// --- Compressed convergence check (Section III-E) -------------
		// e = Σ_k ‖P_k Z_kᵀ F⁽ᵏ⁾ E Dᵀ − H S_k Vᵀ‖_F², computed on R×R
		// Gram matrices only.
		cur := compressedError2(tf, comp.E, dtv, v, h, s, arena)
		if cfg.TrackConvergence {
			res.ConvergenceTrace = append(res.ConvergenceTrace, cur)
		}
		if cfg.Progress != nil && !cfg.Progress(res.Iters, cur) {
			prev = cur
			break
		}
		if prev >= 0 && relChange(prev, cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Q stays in factored form: Q_k = A_k Z_k P_kᵀ, with the A_k shared
	// with the compressed representation (immutable once built — Append
	// only appends to the A slice). The Result's accessors materialize
	// dense slices on demand (line 25's U_k = Q_k H included), so nothing
	// here pays the K-wide O(Σ_k I_k·R) pass the old eager loop did — the
	// property that keeps streaming absorbs independent of the history.
	res.H, res.V = h, v
	res.SetFactoredQ(append([]*mat.Dense(nil), comp.A...), z, p)
	// Compressed-space fitness: prev is the final convergence measure
	// Σ_k ‖Q_kᵀX̃_k − H S_k Vᵀ‖², which equals the full compressed error
	// Σ_k ‖X̃_k − Q_k H S_k Vᵀ‖² because Z_k and P_k are square orthogonal
	// (so Q_kᵀ loses nothing of X̃_k). ‖X̃‖² = Σ_k ‖F⁽ᵏ⁾E‖² by the
	// orthonormality of A_k and D. Callers with the original tensor at hand
	// (DPar2) overwrite this with the true fitness.
	if prev >= 0 {
		if n := comp.Norm2(); n > 0 {
			res.Fitness = 1 - prev/n
		} else {
			res.Fitness = 1
		}
		res.FitnessKind = FitnessCompressed
	}
	res.IterTime = time.Since(iterStart)
	return res, nil
}

// Norm2 returns ‖X̃‖_F² = Σ_k ‖F⁽ᵏ⁾E‖_F² of the compressed approximation
// (exact because A_k and D have orthonormal columns).
func (c *Compressed) Norm2() float64 {
	var total float64
	for _, f := range c.F {
		for i := 0; i < f.Rows; i++ {
			row := f.Row(i)
			for j, v := range row {
				fe := v * c.E[j]
				total += fe * fe
			}
		}
	}
	return total
}

// lemma1Into computes G⁽¹⁾ = Y(1)(W ⊙ V) ∈ R^{R×R} without reconstructing
// Y(1): column r is (Σ_k W(k,r) T_k) · (E DᵀV(:,r)). Cost O(KR³ + R³).
func lemma1Into(out *mat.Dense, tf []*mat.Dense, w *mat.Dense, e []float64, dtv *mat.Dense, pool *compute.Pool, arena *compute.Arena) {
	r := dtv.Cols
	pool.ParallelFor(r, func(col int) {
		// acc = Σ_k W(k,col) T_k
		acc := arena.Get(r, r)
		for k, t := range tf {
			acc.AddScaledInPlace(w.At(k, col), t)
		}
		// rhs = E DᵀV(:,col)
		rhs := arena.GetUninit(1, r)
		for i := 0; i < r; i++ {
			rhs.Data[i] = e[i] * dtv.At(i, col)
		}
		tmp := arena.GetUninit(1, r)
		acc.MulVecInto(tmp.Data, rhs.Data)
		out.SetCol(col, tmp.Data)
		arena.Put(acc, rhs, tmp)
	})
}

// lemma2Into computes G⁽²⁾ = Y(2)(W ⊙ H) ∈ R^{J×R}: column r is
// D E (Σ_k W(k,r) T_kᵀ H(:,r)). Note F⁽ᵏ⁾ᵀ Z_k P_kᵀ = T_kᵀ. Cost O(JR² + KR³).
func lemma2Into(out *mat.Dense, tf []*mat.Dense, w, d *mat.Dense, e []float64, h *mat.Dense, pool *compute.Pool, arena *compute.Arena) {
	r := h.Cols
	pool.ParallelFor(r, func(col int) {
		hcol := arena.GetUninit(1, r)
		for i := 0; i < r; i++ {
			hcol.Data[i] = h.At(i, col)
		}
		acc := arena.Get(1, r)
		tv := arena.GetUninit(1, r)
		for k, t := range tf {
			wk := w.At(k, col)
			if wk == 0 {
				continue
			}
			// acc += wk * T_kᵀ hcol
			t.TMulVecInto(tv.Data, hcol.Data)
			for i, tvv := range tv.Data {
				acc.Data[i] += wk * tvv
			}
		}
		for i := range acc.Data {
			acc.Data[i] *= e[i]
		}
		dcol := arena.GetUninit(1, d.Rows)
		d.MulVecInto(dcol.Data, acc.Data)
		out.SetCol(col, dcol.Data)
		arena.Put(hcol, acc, tv, dcol)
	})
}

// lemma3Into computes G⁽³⁾ = Y(3)(V ⊙ H) ∈ R^{K×R}: entry (k,r) is
// vec(T_k)ᵀ (E DᵀV(:,r) ⊗ H(:,r)) = H(:,r)ᵀ T_k (E DᵀV(:,r)). Cost O(KR³).
func lemma3Into(out *mat.Dense, tf []*mat.Dense, e []float64, dtv, h *mat.Dense, pool *compute.Pool, arena *compute.Arena) {
	r := h.Cols
	// edtv(:,r) = E DᵀV(:,r)
	edtv := arena.GetUninit(r, r)
	dtv.ScaleRowsInto(edtv, e)
	pool.ParallelFor(len(tf), func(kk int) {
		// M = T_k · edtv (R×R); out(k,r) = H(:,r)ᵀ M(:,r).
		m := arena.GetUninit(r, r)
		tf[kk].MulInto(m, edtv, nil)
		row := out.Row(kk)
		for col := 0; col < r; col++ {
			var sum float64
			for i := 0; i < r; i++ {
				sum += h.At(i, col) * m.At(i, col)
			}
			row[col] = sum
		}
		arena.Put(m)
	})
	arena.Put(edtv)
}

// compressedError2 evaluates Σ_k ‖T_k E Dᵀ − H S_k Vᵀ‖_F² using only R×R
// Gram matrices: with G_k = T_k E and B_k = H S_k,
//
//	‖G_k Dᵀ‖² = ‖G_k‖²                 (DᵀD = I)
//	‖B_k Vᵀ‖² = ⟨B_k (VᵀV), B_k⟩
//	⟨G_k Dᵀ, B_k Vᵀ⟩ = ⟨G_k (DᵀV)ᵀ… = ⟨G_k, B_k (VᵀD)⟩
//
// which lowers the paper's O(JKR²) check to O(JR² + KR³).
func compressedError2(tf []*mat.Dense, e []float64, dtv, v, h *mat.Dense, s [][]float64, arena *compute.Arena) float64 {
	r := v.Cols
	vtv := arena.GetUninit(r, r)
	v.GramInto(vtv) // VᵀV, R×R
	vtd := arena.GetUninit(r, r)
	dtv.TInto(vtd) // VᵀD, R×R
	gk := arena.GetUninit(r, r)
	bk := arena.GetUninit(r, r)
	bv := arena.GetUninit(r, r)
	bvd := arena.GetUninit(r, r)
	var total float64
	for k, t := range tf {
		t.ScaleColumnsInto(gk, e)    // T_k E
		h.ScaleColumnsInto(bk, s[k]) // H S_k
		normG := gk.FrobNorm2()
		bk.MulInto(bv, vtv, nil)
		bk.MulInto(bvd, vtd, nil)
		var normB, cross float64
		for i := range gk.Data {
			normB += bv.Data[i] * bk.Data[i]
			cross += gk.Data[i] * bvd.Data[i]
		}
		total += normG + normB - 2*cross
	}
	arena.Put(vtv, vtd, gk, bk, bv, bvd)
	if total < 0 {
		total = 0 // guard tiny negative round-off
	}
	return total
}

// CompressedErrorDirect2 materializes the R×J matrices and computes the same
// quantity directly — the paper's O(JKR²) formulation. Kept for tests (it
// must agree with compressedError2) and for the convergence ablation.
func CompressedErrorDirect2(comp *Compressed, tf []*mat.Dense, v, h *mat.Dense, s [][]float64) float64 {
	var total float64
	for k, t := range tf {
		lhs := t.ScaleColumns(comp.E).MulT(comp.D) // R×J
		rhs := h.ScaleColumns(s[k]).MulT(v)        // R×J
		d := lhs.FrobDist(rhs)
		total += d * d
	}
	return total
}
