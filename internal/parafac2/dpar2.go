package parafac2

import (
	"time"

	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/scheduler"
	"repro/internal/tensor"
)

// Compressed holds the two-stage compression of an irregular tensor
// (Section III-B): X_k ≈ A_k F⁽ᵏ⁾ E Dᵀ where
//
//	stage 1:  X_k ≈ A_k B_k C_kᵀ                (randomized SVD per slice)
//	stage 2:  M = ‖_k (C_k B_k) ≈ D E Fᵀ        (randomized SVD of J×KR)
//
// A_k keeps its column-orthogonality, which is what lets the Q_k update run
// on R×R matrices (Section III-D).
type Compressed struct {
	A []*mat.Dense // A_k: I_k × R, column orthonormal
	D *mat.Dense   // J × R, column orthonormal
	E []float64    // diagonal of E (R singular values of M)
	F []*mat.Dense // F⁽ᵏ⁾: R × R vertical blocks of F ∈ R^{KR×R}

	J    int
	Rank int
}

// SizeBytes reports the footprint of the preprocessed data
// (Theorem 2: O(Σ I_k R + K R² + J R)).
func (c *Compressed) SizeBytes() int64 {
	var n int64
	for _, a := range c.A {
		n += int64(a.Rows * a.Cols)
	}
	n += int64(c.D.Rows * c.D.Cols)
	n += int64(len(c.E))
	for _, f := range c.F {
		n += int64(f.Rows * f.Cols)
	}
	return n * 8
}

// SliceApprox materializes X̃_k = A_k F⁽ᵏ⁾ E Dᵀ (Equation 6) — used by tests
// and the convergence identity, not by the iteration hot path.
func (c *Compressed) SliceApprox(k int) *mat.Dense {
	return c.A[k].Mul(c.F[k].ScaleColumns(c.E)).MulT(c.D)
}

// Compress runs the two-stage compression (lines 2-6 of Algorithm 3).
// Stage 1 is parallelized with the greedy slice partition of Algorithm 4,
// because the randomized-SVD cost of slice k is proportional to I_k.
func Compress(t *tensor.Irregular, cfg Config) *Compressed {
	g := rng.New(cfg.Seed)
	r := cfg.Rank
	k := t.K()
	opts := rsvd.Options{Oversample: cfg.Oversample, PowerIters: cfg.PowerIters}

	// Pre-split deterministic child generators so the result does not
	// depend on goroutine scheduling.
	gens := make([]*rng.RNG, k)
	for kk := 0; kk < k; kk++ {
		gens[kk] = g.Split()
	}

	// Stage 1: per-slice randomized SVD, load-balanced by row count.
	a := make([]*mat.Dense, k)
	cb := make([]*mat.Dense, k) // C_k B_k, J × R
	buckets := scheduler.Partition(t.Rows(), cfg.threads())
	scheduler.RunPartitioned(buckets, func(kk int) {
		d := rsvd.Decompose(gens[kk], t.Slices[kk], r, opts)
		a[kk] = d.U
		cb[kk] = d.V.ScaleColumns(d.S) // C_k B_k
	})

	// Stage 2: randomized SVD of M = ‖_k (C_k B_k) ∈ R^{J×KR}.
	m := mat.HConcat(cb...)
	d2 := rsvd.Decompose(g, m, r, opts)

	f := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		f[kk] = d2.V.RowBlock(kk*r, (kk+1)*r)
	}
	return &Compressed{A: a, D: d2.U, E: d2.S, F: f, J: t.J, Rank: r}
}

// DPar2 runs the full method of the paper (Algorithm 3): two-stage
// compression, then ALS iterations that touch only the compressed factors.
//
// Per iteration (Lemmas 1-3) the cost is O(JR² + KR³) — independent of the
// slice heights I_k — versus O(Σ_k I_k J R) for PARAFAC2-ALS.
func DPar2(t *tensor.Irregular, cfg Config) (*Result, error) {
	if err := cfg.validate(t); err != nil {
		return nil, err
	}
	start := time.Now()
	comp := Compress(t, cfg)
	preprocess := time.Since(start)

	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		return nil, err
	}
	res.PreprocessTime = preprocess
	res.TotalTime = time.Since(start)
	res.Fitness = Fitness(t, res)
	return res, nil
}

// DPar2FromCompressed runs the iteration phase of Algorithm 3 on an already
// compressed tensor. Exposed separately so callers can amortize compression
// across runs (e.g. rank sweeps over the same data) and so benchmarks can
// time the phases independently.
func DPar2FromCompressed(comp *Compressed, cfg Config) (*Result, error) {
	iterStart := time.Now()
	g := rng.New(cfg.Seed + 0x9e37)
	r := cfg.Rank
	k := len(comp.A)
	threads := cfg.threads()

	h, v, s := initCommon(g, comp.J, k, r)

	// Per-slice R×R working state.
	z := make([]*mat.Dense, k)  // Z_k
	p := make([]*mat.Dense, k)  // P_k
	tf := make([]*mat.Dense, k) // T_k = P_k Z_kᵀ F⁽ᵏ⁾ (the factor of Y_k)

	res := &Result{S: s, PreprocessedBytes: comp.SizeBytes()}

	prev := -1.0
	for it := 0; it < cfg.MaxIters; it++ {
		res.Iters = it + 1

		// D ᵀV is shared by the Q_k update and Lemma 1.
		dtv := comp.D.TMul(v) // R × R

		// --- Update Q_k in factored form (Section III-D) -------------
		// SVD of F⁽ᵏ⁾ E DᵀV S_k Hᵀ (R×R) gives Z_k Σ_k P_kᵀ;
		// Q_k = A_k Z_k P_kᵀ is never materialized.
		scheduler.ParallelFor(k, threads, func(kk int) {
			m := comp.F[kk].ScaleColumns(comp.E). // F⁽ᵏ⁾E
								Mul(dtv).            // · DᵀV
								ScaleColumns(s[kk]). // · S_k
								MulT(h)              // · Hᵀ
			d := lapack.Factor(m)
			z[kk] = d.U
			p[kk] = d.V
			// Y_k = P_k Z_kᵀ F⁽ᵏ⁾ E Dᵀ; cache T_k = P_k Z_kᵀ F⁽ᵏ⁾.
			tf[kk] = p[kk].MulT(z[kk]).Mul(comp.F[kk])
		})

		// --- One CP-ALS sweep via Lemmas 1-3 --------------------------
		w := wMatrix(s)

		// Lemma 1: G⁽¹⁾(:,r) = (Σ_k W(k,r) T_k) E DᵀV(:,r).
		g1 := lemma1(tf, w, comp.E, dtv, threads)
		h = solveUpdate(g1, w.TMul(w).Hadamard(v.TMul(v)), cfg)

		// Lemma 2: G⁽²⁾(:,r) = D E Σ_k W(k,r) T_kᵀ H(:,r).
		g2 := lemma2(tf, w, comp.D, comp.E, h, threads)
		v = solveUpdate(g2, w.TMul(w).Hadamard(h.TMul(h)), cfg)

		// Lemma 3: G⁽³⁾(k,r) = H(:,r)ᵀ T_k E DᵀV(:,r), recomputed with
		// the fresh V.
		dtv = comp.D.TMul(v)
		g3 := lemma3(tf, comp.E, dtv, h, threads)
		w = solveUpdate(g3, v.TMul(v).Hadamard(h.TMul(h)), cfg)
		projectW(w, cfg)
		unpackW(w, s)

		// --- Compressed convergence check (Section III-E) -------------
		// e = Σ_k ‖P_k Z_kᵀ F⁽ᵏ⁾ E Dᵀ − H S_k Vᵀ‖_F², computed on R×R
		// Gram matrices only.
		cur := compressedError2(tf, comp.E, dtv, v, h, s)
		if cfg.TrackConvergence {
			res.ConvergenceTrace = append(res.ConvergenceTrace, cur)
		}
		if cfg.Progress != nil && !cfg.Progress(res.Iters, cur) {
			prev = cur
			break
		}
		if prev >= 0 && relChange(prev, cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}

	// Materialize Q_k = A_k Z_k P_kᵀ (line 25 materializes U_k = Q_k H).
	q := make([]*mat.Dense, k)
	scheduler.ParallelFor(k, threads, func(kk int) {
		q[kk] = comp.A[kk].Mul(z[kk]).MulT(p[kk])
	})

	res.H, res.V, res.Q = h, v, q
	res.IterTime = time.Since(iterStart)
	return res, nil
}

// lemma1 computes G⁽¹⁾ = Y(1)(W ⊙ V) ∈ R^{R×R} without reconstructing Y(1):
// column r is (Σ_k W(k,r) T_k) · (E DᵀV(:,r)). Cost O(KR³ + R³).
func lemma1(tf []*mat.Dense, w *mat.Dense, e []float64, dtv *mat.Dense, threads int) *mat.Dense {
	r := dtv.Cols
	out := mat.New(r, r)
	scheduler.ParallelFor(r, threads, func(col int) {
		// acc = Σ_k W(k,col) T_k
		acc := mat.New(r, r)
		for k, t := range tf {
			acc.AddScaledInPlace(w.At(k, col), t)
		}
		// rhs = E DᵀV(:,col)
		rhs := make([]float64, r)
		for i := 0; i < r; i++ {
			rhs[i] = e[i] * dtv.At(i, col)
		}
		out.SetCol(col, acc.MulVec(rhs))
	})
	return out
}

// lemma2 computes G⁽²⁾ = Y(2)(W ⊙ H) ∈ R^{J×R}: column r is
// D E (Σ_k W(k,r) T_kᵀ H(:,r)). Note F⁽ᵏ⁾ᵀ Z_k P_kᵀ = T_kᵀ. Cost O(JR² + KR³).
func lemma2(tf []*mat.Dense, w *mat.Dense, d *mat.Dense, e []float64, h *mat.Dense, threads int) *mat.Dense {
	r := h.Cols
	out := mat.New(d.Rows, r)
	scheduler.ParallelFor(r, threads, func(col int) {
		hcol := h.Col(col)
		acc := make([]float64, r)
		for k, t := range tf {
			wk := w.At(k, col)
			if wk == 0 {
				continue
			}
			// acc += wk * T_kᵀ hcol
			tv := t.TMulVec(hcol)
			for i := range acc {
				acc[i] += wk * tv[i]
			}
		}
		for i := range acc {
			acc[i] *= e[i]
		}
		out.SetCol(col, d.MulVec(acc))
	})
	return out
}

// lemma3 computes G⁽³⁾ = Y(3)(V ⊙ H) ∈ R^{K×R}: entry (k,r) is
// vec(T_k)ᵀ (E DᵀV(:,r) ⊗ H(:,r)) = H(:,r)ᵀ T_k (E DᵀV(:,r)). Cost O(KR³).
func lemma3(tf []*mat.Dense, e []float64, dtv, h *mat.Dense, threads int) *mat.Dense {
	r := h.Cols
	k := len(tf)
	// edtv(:,r) = E DᵀV(:,r)
	edtv := dtv.ScaleRows(e)
	out := mat.New(k, r)
	scheduler.ParallelFor(k, threads, func(kk int) {
		// M = T_k · edtv (R×R); out(k,r) = H(:,r)ᵀ M(:,r).
		m := tf[kk].Mul(edtv)
		row := out.Row(kk)
		for col := 0; col < r; col++ {
			var sum float64
			for i := 0; i < r; i++ {
				sum += h.At(i, col) * m.At(i, col)
			}
			row[col] = sum
		}
	})
	return out
}

// compressedError2 evaluates Σ_k ‖T_k E Dᵀ − H S_k Vᵀ‖_F² using only R×R
// Gram matrices: with G_k = T_k E and B_k = H S_k,
//
//	‖G_k Dᵀ‖² = ‖G_k‖²                 (DᵀD = I)
//	‖B_k Vᵀ‖² = ⟨B_k (VᵀV), B_k⟩
//	⟨G_k Dᵀ, B_k Vᵀ⟩ = ⟨G_k (DᵀV)ᵀ… = ⟨G_k, B_k (VᵀD)⟩
//
// which lowers the paper's O(JKR²) check to O(JR² + KR³).
func compressedError2(tf []*mat.Dense, e []float64, dtv, v, h *mat.Dense, s [][]float64) float64 {
	vtv := v.TMul(v) // R×R
	vtd := dtv.T()   // VᵀD, R×R
	var total float64
	for k, t := range tf {
		gk := t.ScaleColumns(e)    // T_k E
		bk := h.ScaleColumns(s[k]) // H S_k
		normG := gk.FrobNorm2()
		bv := bk.Mul(vtv)
		var normB, cross float64
		bvd := bk.Mul(vtd)
		for i := range gk.Data {
			normB += bv.Data[i] * bk.Data[i]
			cross += gk.Data[i] * bvd.Data[i]
		}
		total += normG + normB - 2*cross
	}
	if total < 0 {
		total = 0 // guard tiny negative round-off
	}
	return total
}

// CompressedErrorDirect2 materializes the R×J matrices and computes the same
// quantity directly — the paper's O(JKR²) formulation. Kept for tests (it
// must agree with compressedError2) and for the convergence ablation.
func CompressedErrorDirect2(comp *Compressed, tf []*mat.Dense, v, h *mat.Dense, s [][]float64) float64 {
	var total float64
	for k, t := range tf {
		lhs := t.ScaleColumns(comp.E).MulT(comp.D) // R×J
		rhs := h.ScaleColumns(s[k]).MulT(v)        // R×J
		d := lhs.FrobDist(rhs)
		total += d * d
	}
	return total
}
