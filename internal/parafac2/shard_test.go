package parafac2

import (
	"math"
	"testing"

	"repro/internal/compute"
	"repro/internal/datagen"
	"repro/internal/rng"
	"repro/internal/rsvd"
	"repro/internal/tensor"
)

// shardTestConfig is the shared setup of the equivalence tests. On exactly
// low-rank (noise-free) tensors every sketch — flat or sharded, any shard
// count — captures the slices exactly, so the compressed tensor X̃ equals X
// in every run and the ALS trajectory is identical up to round-off; fitness
// then agrees to ~1e-14 between shard counts at ANY iteration budget.
func shardTestConfig(rank int) Config {
	cfg := DefaultConfig()
	cfg.Rank = rank
	cfg.MaxIters = 60
	cfg.Tol = 1e-14
	cfg.Threads = 3
	return cfg
}

func TestShardNoShardFitnessEquivalence(t *testing.T) {
	g := rng.New(51)
	// Tallest slice 1600 rows; ShardRows settings force 1, 2, and 7 shards
	// of it (rsvd.NumShards(1600, 800, 13) = 2, NumShards(1600, 230, 13) = 7).
	ten := datagen.LowRank(g, []int{700, 900, 1600}, 40, 5, 0)
	base := shardTestConfig(5)

	var fit0 float64
	for i, shardRows := range []int{-1, 800, 230} {
		cfg := base
		cfg.ShardRows = shardRows
		res, err := DPar2(ten, cfg)
		if err != nil {
			t.Fatalf("ShardRows %d: %v", shardRows, err)
		}
		if i == 0 {
			fit0 = res.Fitness
			continue
		}
		if d := math.Abs(res.Fitness - fit0); d > 1e-9 {
			t.Errorf("ShardRows %d: fitness %g differs from unsharded %g by %g (> 1e-9)",
				shardRows, res.Fitness, fit0, d)
		}
	}
}

func TestShardedCompressKeepsAkOrthonormal(t *testing.T) {
	g := rng.New(52)
	ten := datagen.LowRank(g, []int{1600, 700, 350}, 40, 5, 0.01)
	cfg := shardTestConfig(5)
	cfg.ShardRows = 230 // 7 shards for the tall slice, 3 or fewer for the rest
	comp := Compress(ten, cfg)
	for k, a := range comp.A {
		if a.Rows != ten.Slices[k].Rows || a.Cols != 5 {
			t.Fatalf("A_%d is %dx%d, want %dx5", k, a.Rows, a.Cols, ten.Slices[k].Rows)
		}
		if !a.IsOrthonormalCols(1e-8) {
			t.Fatalf("A_%d lost column orthonormality under sharding", k)
		}
	}
	// The factored Q_k = A_k Z_k P_kᵀ inherit the property end to end.
	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.K(); k++ {
		if !res.Qk(k).IsOrthonormalCols(1e-7) {
			t.Fatalf("Q_%d not orthonormal", k)
		}
	}
}

func TestShardEightTimesThreshold(t *testing.T) {
	// The acceptance scenario: an irregular tensor whose tallest slice is
	// 8x the ShardRows threshold.
	g := rng.New(53)
	ten := datagen.LowRank(g, []int{2400, 300, 500}, 32, 4, 0)
	base := shardTestConfig(4)

	un := base
	un.ShardRows = -1
	resU, err := DPar2(ten, un)
	if err != nil {
		t.Fatal(err)
	}
	sh := base
	sh.ShardRows = 300 // tallest slice = 8 shards
	resS, err := DPar2(ten, sh)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(resS.Fitness - resU.Fitness); d > 1e-9 {
		t.Errorf("8x-threshold slice: fitness %g vs %g differ by %g", resS.Fitness, resU.Fitness, d)
	}
	// The sharded compression is as tight as the flat one on exact data.
	comp := Compress(ten, sh)
	for k := range ten.Slices {
		approx := comp.SliceApprox(k)
		if rel := approx.FrobDist(ten.Slices[k]) / ten.Slices[k].FrobNorm(); rel > 1e-8 {
			t.Errorf("slice %d: sharded compression rel err %g", k, rel)
		}
	}
}

func TestShardedCompressBitReproducible(t *testing.T) {
	g := rng.New(54)
	ten := datagen.LowRank(g, []int{1100, 450}, 30, 4, 0.05)
	mk := func(threads int) *Compressed {
		cfg := shardTestConfig(4)
		cfg.Threads = threads
		cfg.ShardRows = 200
		return Compress(ten, cfg)
	}
	c1, c2, c4 := mk(1), mk(1), mk(4)
	for k := range c1.A {
		for i, v := range c1.A[k].Data {
			if c2.A[k].Data[i] != v {
				t.Fatalf("A_%d not reproducible across identical runs", k)
			}
			if c4.A[k].Data[i] != v {
				t.Fatalf("A_%d depends on pool width", k)
			}
		}
	}
}

func TestShardedAppendMatchesContract(t *testing.T) {
	// Append with a tall new slice routes through the sharded path and
	// keeps the compressed invariants.
	g := rng.New(55)
	full := datagen.LowRank(g, []int{300, 400, 1200}, 30, 4, 0)
	cfg := shardTestConfig(4)
	cfg.ShardRows = 200

	head := tensor.MustIrregular(full.Slices[:2])
	comp := Compress(head, cfg)
	ag := rng.New(99)
	if err := comp.Append(ag, full.Slices[2:], cfg); err != nil {
		t.Fatal(err)
	}
	if got := len(comp.A); got != 3 {
		t.Fatalf("appended compressed has %d slices, want 3", got)
	}
	if !comp.A[2].IsOrthonormalCols(1e-8) {
		t.Fatal("appended tall A_k lost orthonormality under sharding")
	}
	for k := range full.Slices {
		approx := comp.SliceApprox(k)
		if rel := approx.FrobDist(full.Slices[k]) / full.Slices[k].FrobNorm(); rel > 1e-7 {
			t.Errorf("slice %d after sharded append: rel err %g", k, rel)
		}
	}
}

func TestNarrowTallSliceDoesNotPanic(t *testing.T) {
	// Regression: J below the sketch width (rank 10 + oversample 8 > J=12)
	// with a slice over the ShardRows threshold used to panic inside the
	// shard sketch's power-iteration QR; it must route through the flat
	// degenerate path and match the unsharded run bit for bit.
	g := rng.New(56)
	ten := datagen.LowRank(g, []int{3000, 200, 150}, 12, 10, 0.01)
	base := shardTestConfig(10)
	base.MaxIters = 10

	sh := base
	sh.ShardRows = 1000
	resS, err := DPar2(ten, sh)
	if err != nil {
		t.Fatal(err)
	}
	un := base
	un.ShardRows = -1
	resU, err := DPar2(ten, un)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Fitness != resU.Fitness {
		t.Fatalf("narrow-slice run diverged: %g vs %g", resS.Fitness, resU.Fitness)
	}
}

func TestStage1ScratchWithinArenaRange(t *testing.T) {
	// The point of sharding for memory: per-shard stage-1 scratch
	// (ShardRows x sketch-width buffers) must stay inside the arena's
	// recyclable bucket range, where the unsharded path's I_k-sized buffers
	// for very tall slices fall out of it.
	opts := rsvd.Options{Oversample: DefaultConfig().Oversample}
	sketch := opts.SketchWidth(DefaultConfig().Rank)
	if floats := DefaultShardRows * sketch; floats > compute.MaxRecycleFloats() {
		t.Fatalf("default shard scratch %d floats exceeds the largest arena bucket %d",
			floats, compute.MaxRecycleFloats())
	}
	// Generous headroom: even rank 256 with oversample 32 stays recyclable.
	if floats := DefaultShardRows * (256 + 32); floats > compute.MaxRecycleFloats() {
		t.Fatalf("high-rank shard scratch %d floats exceeds the largest arena bucket %d",
			floats, compute.MaxRecycleFloats())
	}
}
