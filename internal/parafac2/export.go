package parafac2

import (
	"repro/internal/compute"
	"repro/internal/mat"
)

// Exported aliases of the iteration-kernel internals, used by the ablation
// benchmarks (bench_test.go) to time the Lemma 1-3 reorderings and the
// convergence-check variants in isolation. Production callers use DPar2.
//
// The threads parameter follows Config.Threads semantics (<= 1 means
// serial); each call builds a transient pool of that width.

// lemmaPool builds the transient pool for one lemma helper call.
func lemmaPool(threads int) *compute.Pool {
	if threads < 1 {
		threads = 1
	}
	return compute.NewPool(threads)
}

// LemmaG1 computes G⁽¹⁾ = Y(1)(W ⊙ V) from the factored slices (Lemma 1).
func LemmaG1(tf []*mat.Dense, w *mat.Dense, e []float64, dtv *mat.Dense, threads int) *mat.Dense {
	pool := lemmaPool(threads)
	defer pool.Close()
	out := mat.New(dtv.Cols, dtv.Cols)
	lemma1Into(out, tf, w, e, dtv, pool, compute.Shared())
	return out
}

// LemmaG2 computes G⁽²⁾ = Y(2)(W ⊙ H) from the factored slices (Lemma 2).
func LemmaG2(tf []*mat.Dense, w, d *mat.Dense, e []float64, h *mat.Dense, threads int) *mat.Dense {
	pool := lemmaPool(threads)
	defer pool.Close()
	out := mat.New(d.Rows, h.Cols)
	lemma2Into(out, tf, w, d, e, h, pool, compute.Shared())
	return out
}

// LemmaG3 computes G⁽³⁾ = Y(3)(V ⊙ H) from the factored slices (Lemma 3).
func LemmaG3(tf []*mat.Dense, e []float64, dtv, h *mat.Dense, threads int) *mat.Dense {
	pool := lemmaPool(threads)
	defer pool.Close()
	out := mat.New(len(tf), h.Cols)
	lemma3Into(out, tf, e, dtv, h, pool, compute.Shared())
	return out
}

// CompressedErrorGram2 evaluates the Section III-E convergence measure with
// the O(JR² + KR³) Gram-matrix formulation DPar2 uses internally.
func CompressedErrorGram2(tf []*mat.Dense, e []float64, dtv, v, h *mat.Dense, s [][]float64) float64 {
	return compressedError2(tf, e, dtv, v, h, s, compute.Shared())
}
