package parafac2

import "repro/internal/mat"

// Exported aliases of the iteration-kernel internals, used by the ablation
// benchmarks (bench_test.go) to time the Lemma 1-3 reorderings and the
// convergence-check variants in isolation. Production callers use DPar2.

// LemmaG1 computes G⁽¹⁾ = Y(1)(W ⊙ V) from the factored slices (Lemma 1).
func LemmaG1(tf []*mat.Dense, w *mat.Dense, e []float64, dtv *mat.Dense, threads int) *mat.Dense {
	return lemma1(tf, w, e, dtv, threads)
}

// LemmaG2 computes G⁽²⁾ = Y(2)(W ⊙ H) from the factored slices (Lemma 2).
func LemmaG2(tf []*mat.Dense, w, d *mat.Dense, e []float64, h *mat.Dense, threads int) *mat.Dense {
	return lemma2(tf, w, d, e, h, threads)
}

// LemmaG3 computes G⁽³⁾ = Y(3)(V ⊙ H) from the factored slices (Lemma 3).
func LemmaG3(tf []*mat.Dense, e []float64, dtv, h *mat.Dense, threads int) *mat.Dense {
	return lemma3(tf, e, dtv, h, threads)
}

// CompressedErrorGram2 evaluates the Section III-E convergence measure with
// the O(JR² + KR³) Gram-matrix formulation DPar2 uses internally.
func CompressedErrorGram2(tf []*mat.Dense, e []float64, dtv, v, h *mat.Dense, s [][]float64) float64 {
	return compressedError2(tf, e, dtv, v, h, s)
}
