package parafac2

import (
	"sync"
	"testing"

	"repro/internal/compute"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestSharedPoolConcurrentDecompositions hammers one shared compute.Pool
// with concurrent DPar2 runs (run under -race in CI). Every run must produce
// exactly the result of an isolated run with the same config: the pool and
// the shared scratch arena may not leak state across decompositions.
func TestSharedPoolConcurrentDecompositions(t *testing.T) {
	g := rng.New(42)
	ten := synthPARAFAC2(g, irregRows(g, 8, 25, 60), 16, 4, 0.02)
	cfg := smallConfig(4)
	cfg.MaxIters = 6

	baseline, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool := compute.NewPool(4)
	defer pool.Close()
	shared := cfg
	shared.Pool = pool

	const runs = 8
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = DPar2(ten, shared)
		}(i)
	}
	wg.Wait()

	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Fitness != baseline.Fitness {
			t.Fatalf("run %d: fitness %v != baseline %v (shared pool leaked state)",
				i, results[i].Fitness, baseline.Fitness)
		}
		if !results[i].H.EqualApprox(baseline.H, 0) || !results[i].V.EqualApprox(baseline.V, 0) {
			t.Fatalf("run %d: factors differ from baseline", i)
		}
	}
}

// TestThreadsDoNotChangeResult: DPar2 partitions work so that no
// cross-worker reduction depends on the worker count — the decomposition
// must be bit-identical for any Threads setting (and for an external pool of
// any width).
func TestThreadsDoNotChangeResult(t *testing.T) {
	g := rng.New(7)
	ten := synthPARAFAC2(g, irregRows(g, 6, 30, 70), 14, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 5

	cfg.Threads = 1
	want, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []int{2, 3, 6, 8} {
		cfg.Threads = th
		got, err := DPar2(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fitness != want.Fitness {
			t.Fatalf("threads=%d fitness %v != serial %v", th, got.Fitness, want.Fitness)
		}
		if !got.H.EqualApprox(want.H, 0) || !got.V.EqualApprox(want.V, 0) {
			t.Fatalf("threads=%d factors differ from serial run", th)
		}
	}

	// The baselines carry the same guarantee: no reduction order may
	// depend on the pool width.
	for name, run := range map[string]func(*tensor.Irregular, Config) (*Result, error){
		"ALS": ALS, "RDALS": RDALS, "SPARTan": SPARTan,
	} {
		cfg.Threads = 1
		serial, err := run(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Threads = 5
		wide, err := run(ten, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Fitness != wide.Fitness {
			t.Fatalf("%s: threads=5 fitness %v != serial %v", name, wide.Fitness, serial.Fitness)
		}
	}
}

// TestConfigPoolOverridesThreads: with Pool set, Threads is irrelevant —
// including a nonsensical value.
func TestConfigPoolOverridesThreads(t *testing.T) {
	g := rng.New(8)
	ten := synthPARAFAC2(g, irregRows(g, 5, 25, 50), 12, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 4

	serial := cfg
	serial.Threads = 1
	want, err := DPar2(ten, serial)
	if err != nil {
		t.Fatal(err)
	}

	pool := compute.NewPool(3)
	defer pool.Close()
	withPool := cfg
	withPool.Threads = -99
	withPool.Pool = pool
	got, err := DPar2(ten, withPool)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness != want.Fitness {
		t.Fatalf("pooled fitness %v != serial %v", got.Fitness, want.Fitness)
	}
}
