package parafac2

import (
	"math"
	"testing"

	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// synthPARAFAC2 builds an irregular tensor with exact PARAFAC2 structure
// X_k = Q_k H S_k Vᵀ (+ optional noise), the regime where all methods should
// reach fitness ≈ 1 at the true rank.
func synthPARAFAC2(g *rng.RNG, rows []int, j, r int, noise float64) *tensor.Irregular {
	h := mat.Gaussian(g, r, r)
	v := mat.Gaussian(g, j, r)
	slices := make([]*mat.Dense, len(rows))
	for k, ik := range rows {
		q := lapack.QRFactor(mat.Gaussian(g, ik, r)).Q
		s := make([]float64, r)
		for i := range s {
			s[i] = 0.5 + g.Float64()
		}
		x := q.Mul(h.ScaleColumns(s)).MulT(v)
		if noise > 0 {
			x.AddInPlace(mat.Gaussian(g, ik, j).Scale(noise))
		}
		slices[k] = x
	}
	return tensor.MustIrregular(slices)
}

func irregRows(g *rng.RNG, k, lo, hi int) []int {
	rows := make([]int, k)
	for i := range rows {
		rows[i] = lo + g.Intn(hi-lo+1)
	}
	return rows
}

func smallConfig(r int) Config {
	cfg := DefaultConfig()
	cfg.Rank = r
	cfg.MaxIters = 150
	cfg.Threads = 2
	cfg.Tol = 1e-10
	return cfg
}

func TestALSExactRecovery(t *testing.T) {
	g := rng.New(1)
	ten := synthPARAFAC2(g, irregRows(g, 8, 20, 60), 15, 4, 0)
	res, err := ALS(ten, smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.999 {
		t.Fatalf("ALS fitness %v on exact PARAFAC2 data", res.Fitness)
	}
}

func TestDPar2ExactRecovery(t *testing.T) {
	g := rng.New(2)
	ten := synthPARAFAC2(g, irregRows(g, 8, 30, 80), 20, 4, 0)
	res, err := DPar2(ten, smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.999 {
		t.Fatalf("DPar2 fitness %v on exact PARAFAC2 data", res.Fitness)
	}
}

func TestRDALSExactRecovery(t *testing.T) {
	g := rng.New(3)
	ten := synthPARAFAC2(g, irregRows(g, 6, 20, 50), 12, 3, 0)
	cfg := smallConfig(3)
	cfg.MaxIters = 500 // ALS converges slowly through swamps on this seed
	res, err := RDALS(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.999 {
		t.Fatalf("RD-ALS fitness %v on exact PARAFAC2 data", res.Fitness)
	}
}

func TestSPARTanExactRecovery(t *testing.T) {
	g := rng.New(4)
	ten := synthPARAFAC2(g, irregRows(g, 6, 20, 50), 12, 3, 0)
	res, err := SPARTan(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.999 {
		t.Fatalf("SPARTan fitness %v on exact PARAFAC2 data", res.Fitness)
	}
}

func TestDPar2ComparableFitnessToALSOnNoisyData(t *testing.T) {
	// The paper's headline claim: comparable fitness, lower cost.
	g := rng.New(5)
	ten := synthPARAFAC2(g, irregRows(g, 10, 40, 100), 25, 5, 0.05)
	cfg := smallConfig(5)
	als, err := ALS(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Fitness < als.Fitness-0.02 {
		t.Fatalf("DPar2 fitness %v far below ALS %v", dp.Fitness, als.Fitness)
	}
}

func TestDPar2QOrthonormal(t *testing.T) {
	g := rng.New(6)
	ten := synthPARAFAC2(g, irregRows(g, 5, 25, 60), 15, 3, 0.1)
	res, err := DPar2(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.K(); k++ {
		if !res.Qk(k).IsOrthonormalCols(1e-8) {
			t.Fatalf("Q_%d not column-orthonormal", k)
		}
	}
}

func TestALSQOrthonormal(t *testing.T) {
	g := rng.New(7)
	ten := synthPARAFAC2(g, irregRows(g, 5, 25, 60), 15, 3, 0.1)
	res, err := ALS(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.K(); k++ {
		if !res.Qk(k).IsOrthonormalCols(1e-8) {
			t.Fatalf("Q_%d not column-orthonormal", k)
		}
	}
}

func TestDPar2PreprocessedSmallerThanInput(t *testing.T) {
	g := rng.New(8)
	ten := synthPARAFAC2(g, irregRows(g, 10, 100, 200), 60, 3, 0.05)
	res, err := DPar2(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PreprocessedBytes >= ten.SizeBytes() {
		t.Fatalf("compressed %d bytes >= input %d bytes", res.PreprocessedBytes, ten.SizeBytes())
	}
}

func TestCompressApproximatesSlices(t *testing.T) {
	g := rng.New(9)
	ten := synthPARAFAC2(g, irregRows(g, 6, 50, 120), 30, 4, 0)
	cfg := smallConfig(4)
	comp := Compress(ten, cfg)
	for k := range ten.Slices {
		rel := comp.SliceApprox(k).FrobDist(ten.Slices[k]) / ten.Slices[k].FrobNorm()
		if rel > 1e-6 {
			t.Fatalf("slice %d compression relative error %v on exact rank-4 data", k, rel)
		}
	}
	if !comp.D.IsOrthonormalCols(1e-8) {
		t.Fatal("D not orthonormal")
	}
	for k, a := range comp.A {
		if !a.IsOrthonormalCols(1e-8) {
			t.Fatalf("A_%d not orthonormal", k)
		}
	}
}

func TestCompressSizeMatchesTheorem2(t *testing.T) {
	g := rng.New(10)
	rows := []int{40, 60, 80}
	ten := synthPARAFAC2(g, rows, 20, 3, 0.01)
	cfg := smallConfig(3)
	comp := Compress(ten, cfg)
	r := cfg.Rank
	want := int64(0)
	for _, ik := range rows {
		want += int64(ik * r)
	}
	want += int64(20*r) + int64(r) + int64(len(rows)*r*r)
	if comp.SizeBytes() != want*8 {
		t.Fatalf("SizeBytes=%d want %d", comp.SizeBytes(), want*8)
	}
}

func TestLemmasMatchNaiveMTTKRP(t *testing.T) {
	// The heart of the paper: Lemmas 1-3 must compute exactly
	// Y(n) (· ⊙ ·) for the tensor Y with slices T_k E Dᵀ.
	g := rng.New(11)
	r, j, k := 4, 17, 6
	d := lapack.QRFactor(mat.Gaussian(g, j, r)).Q
	e := make([]float64, r)
	for i := range e {
		e[i] = 0.5 + g.Float64()
	}
	tf := make([]*mat.Dense, k)
	ySlices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		tf[kk] = mat.Gaussian(g, r, r)
		ySlices[kk] = tf[kk].ScaleColumns(e).MulT(d)
	}
	y := tensor.MustDense3(ySlices)
	w := mat.Gaussian(g, k, r)
	v := mat.Gaussian(g, j, r)
	h := mat.Gaussian(g, r, r)
	s := make([][]float64, k)
	for kk := range s {
		s[kk] = append([]float64(nil), w.Row(kk)...)
	}
	_ = s

	dtv := d.TMul(v)
	g1 := LemmaG1(tf, w, e, dtv, 2)
	want1 := y.MTTKRP(1, w, v)
	if !g1.EqualApprox(want1, 1e-9) {
		t.Fatal("Lemma 1 disagrees with naive Y(1)(W⊙V)")
	}

	g2 := LemmaG2(tf, w, d, e, h, 2)
	want2 := y.MTTKRP(2, w, h)
	if !g2.EqualApprox(want2, 1e-9) {
		t.Fatal("Lemma 2 disagrees with naive Y(2)(W⊙H)")
	}

	g3 := LemmaG3(tf, e, dtv, h, 2)
	want3 := y.MTTKRP(3, v, h)
	if !g3.EqualApprox(want3, 1e-9) {
		t.Fatal("Lemma 3 disagrees with naive Y(3)(V⊙H)")
	}
}

func TestCompressedErrorMatchesDirect(t *testing.T) {
	// The Gram-trick convergence measure must equal the paper's direct
	// O(JKR²) computation.
	g := rng.New(12)
	r, j, k := 3, 14, 5
	d := lapack.QRFactor(mat.Gaussian(g, j, r)).Q
	e := make([]float64, r)
	for i := range e {
		e[i] = 0.5 + g.Float64()
	}
	tf := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		tf[kk] = mat.Gaussian(g, r, r)
	}
	v := mat.Gaussian(g, j, r)
	h := mat.Gaussian(g, r, r)
	s := make([][]float64, k)
	for kk := range s {
		s[kk] = make([]float64, r)
		for i := range s[kk] {
			s[kk][i] = g.Norm()
		}
	}
	comp := &Compressed{D: d, E: e, F: tf, J: j, Rank: r}
	dtv := d.TMul(v)
	got := CompressedErrorGram2(tf, e, dtv, v, h, s)
	want := CompressedErrorDirect2(comp, tf, v, h, s)
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("compressed error %v != direct %v", got, want)
	}
}

func TestConvergenceIdentityAgainstSliceApprox(t *testing.T) {
	// Section III-E: ‖P_kZ_kᵀF⁽ᵏ⁾EDᵀ − HS_kVᵀ‖ = ‖A_kF⁽ᵏ⁾EDᵀ − X̂_k‖.
	// We verify the unitary-invariance step on a real decomposition:
	// the compressed error must equal Σ_k ‖X̃_k − X̂_k‖² where X̃_k is the
	// compressed approximation and X̂_k the model reconstruction.
	g := rng.New(13)
	ten := synthPARAFAC2(g, irregRows(g, 5, 30, 60), 12, 3, 0.05)
	cfg := smallConfig(3)
	cfg.MaxIters = 5
	comp := Compress(ten, cfg)
	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct float64
	for k := range ten.Slices {
		dd := comp.SliceApprox(k).FrobDist(res.ReconstructSlice(k))
		direct += dd * dd
	}
	// Recompute the compressed measure from the final factors.
	tf := make([]*mat.Dense, ten.K())
	for k := range tf {
		// T_k = Q_k-factored form: recover P_kZ_kᵀF⁽ᵏ⁾ = (A_kᵀ Q_k)ᵀ F⁽ᵏ⁾… we
		// instead use Q_k and A_k: T_k = (A_kᵀ Q_k)ᵀ F⁽ᵏ⁾ = Q_kᵀA_k F⁽ᵏ⁾.
		tf[k] = res.Qk(k).TMul(comp.A[k]).Mul(comp.F[k])
	}
	dtv := comp.D.TMul(res.V)
	got := CompressedErrorGram2(tf, comp.E, dtv, res.V, res.H, res.S)
	if math.Abs(got-direct) > 1e-6*(1+direct) {
		t.Fatalf("compressed measure %v != direct slice measure %v", got, direct)
	}
}

func TestConfigValidation(t *testing.T) {
	g := rng.New(14)
	ten := synthPARAFAC2(g, []int{20, 30}, 10, 2, 0)
	cases := []Config{
		{Rank: 0, MaxIters: 10},
		{Rank: 11, MaxIters: 10}, // > J
		{Rank: 25, MaxIters: 10}, // > min I_k
		{Rank: 2, MaxIters: 0},   // bad iters
	}
	for i, cfg := range cases {
		if _, err := DPar2(ten, cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
		if _, err := ALS(ten, cfg); err == nil {
			t.Fatalf("case %d: ALS expected validation error", i)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	g := rng.New(15)
	ten := synthPARAFAC2(g, []int{25, 35}, 10, 2, 0)
	res, err := DPar2(ten, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	u0 := res.Uk(0)
	if u0.Rows != 25 || u0.Cols != 2 {
		t.Fatalf("Uk shape %dx%d", u0.Rows, u0.Cols)
	}
	want := res.Qk(0).Mul(res.H)
	if !u0.EqualApprox(want, 1e-12) {
		t.Fatal("Uk != Q_k H")
	}
	rec := res.ReconstructSlice(1)
	if rec.Rows != 35 || rec.Cols != 10 {
		t.Fatal("ReconstructSlice shape wrong")
	}
}

func TestFitnessBounds(t *testing.T) {
	g := rng.New(16)
	ten := synthPARAFAC2(g, irregRows(g, 4, 20, 40), 10, 3, 0)
	res, err := DPar2(ten, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness > 1+1e-12 {
		t.Fatalf("fitness %v > 1", res.Fitness)
	}
}

func TestTrackConvergenceTrace(t *testing.T) {
	g := rng.New(17)
	ten := synthPARAFAC2(g, irregRows(g, 4, 20, 40), 10, 2, 0.05)
	cfg := smallConfig(2)
	cfg.TrackConvergence = true
	cfg.MaxIters = 8
	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConvergenceTrace) != res.Iters {
		t.Fatalf("trace length %d != iters %d", len(res.ConvergenceTrace), res.Iters)
	}
	// ALS convergence measure should broadly decrease.
	first, last := res.ConvergenceTrace[0], res.ConvergenceTrace[len(res.ConvergenceTrace)-1]
	if last > first*1.01 {
		t.Fatalf("convergence measure increased: %v -> %v", first, last)
	}
}

func TestDPar2Deterministic(t *testing.T) {
	g := rng.New(18)
	ten := synthPARAFAC2(g, irregRows(g, 5, 20, 50), 12, 3, 0.05)
	cfg := smallConfig(3)
	r1, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fitness != r2.Fitness || r1.Iters != r2.Iters {
		t.Fatalf("non-deterministic: fitness %v vs %v, iters %d vs %d",
			r1.Fitness, r2.Fitness, r1.Iters, r2.Iters)
	}
	if !r1.V.EqualApprox(r2.V, 0) {
		t.Fatal("V differs across identical runs")
	}
}

func TestDPar2ThreadCountInvariance(t *testing.T) {
	// Results must not depend on the number of threads (deterministic
	// child RNGs per slice + associative-safe accumulations).
	g := rng.New(19)
	ten := synthPARAFAC2(g, irregRows(g, 6, 20, 50), 12, 3, 0.05)
	cfg1 := smallConfig(3)
	cfg1.Threads = 1
	cfg4 := smallConfig(3)
	cfg4.Threads = 4
	r1, err := DPar2(ten, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := DPar2(ten, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Fitness-r4.Fitness) > 1e-9 {
		t.Fatalf("fitness depends on threads: %v vs %v", r1.Fitness, r4.Fitness)
	}
}

func TestHigherRankFitsBetter(t *testing.T) {
	g := rng.New(20)
	ten := synthPARAFAC2(g, irregRows(g, 6, 40, 80), 20, 6, 0.1)
	f2, err := DPar2(ten, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	f6, err := DPar2(ten, smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if f6.Fitness < f2.Fitness {
		t.Fatalf("rank 6 fitness %v < rank 2 fitness %v", f6.Fitness, f2.Fitness)
	}
}
