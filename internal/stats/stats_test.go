package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Pearson(x, y); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Pearson=%v want 1", c)
	}
	z := []float64{10, 8, 6, 4, 2}
	if c := Pearson(x, z); math.Abs(c+1) > 1e-12 {
		t.Fatalf("Pearson=%v want -1", c)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	x := []float64{3, 3, 3}
	y := []float64{1, 2, 3}
	if c := Pearson(x, y); c != 0 {
		t.Fatalf("Pearson with constant input=%v want 0", c)
	}
}

func TestPearsonInvariantToAffine(t *testing.T) {
	g := rng.New(1)
	x := make([]float64, 50)
	y := make([]float64, 50)
	g.NormSlice(x)
	g.NormSlice(y)
	c1 := Pearson(x, y)
	x2 := make([]float64, 50)
	for i := range x {
		x2[i] = 3*x[i] + 7
	}
	c2 := Pearson(x2, y)
	if math.Abs(c1-c2) > 1e-12 {
		t.Fatal("Pearson not affine invariant")
	}
}

func TestCorrelationMatrixProperties(t *testing.T) {
	g := rng.New(2)
	m := mat.Gaussian(g, 6, 30)
	c := CorrelationMatrix(m)
	for i := 0; i < 6; i++ {
		if math.Abs(c.At(i, i)-1) > 1e-12 {
			t.Fatal("diagonal not 1")
		}
		for j := 0; j < 6; j++ {
			if math.Abs(c.At(i, j)-c.At(j, i)) > 1e-12 {
				t.Fatal("not symmetric")
			}
			if c.At(i, j) < -1-1e-12 || c.At(i, j) > 1+1e-12 {
				t.Fatal("correlation out of [-1,1]")
			}
		}
	}
}

func TestExpSimilarity(t *testing.T) {
	g := rng.New(3)
	a := mat.Gaussian(g, 5, 3)
	if s := ExpSimilarity(a, a, 0.01); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self-similarity %v want 1", s)
	}
	b := mat.Gaussian(g, 5, 3)
	s := ExpSimilarity(a, b, 0.01)
	if s <= 0 || s >= 1 {
		t.Fatalf("similarity %v outside (0,1)", s)
	}
	// Larger gamma → smaller similarity.
	if ExpSimilarity(a, b, 0.1) >= s {
		t.Fatal("similarity not decreasing in gamma")
	}
}

func TestTopKAndKNN(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	top := TopK(scores, 3, nil)
	if top[0].Index != 1 || top[1].Index != 3 || top[2].Index != 2 {
		t.Fatalf("TopK order wrong: %v", top)
	}
	top = TopK(scores, 10, func(i int) bool { return i == 1 })
	if len(top) != 4 || top[0].Index != 3 {
		t.Fatalf("TopK exclusion wrong: %v", top)
	}

	sim := mat.NewFromData(3, 3, []float64{
		1, 0.8, 0.2,
		0.8, 1, 0.5,
		0.2, 0.5, 1,
	})
	nn := KNN(sim, 0, 2)
	if nn[0].Index != 1 || nn[1].Index != 2 {
		t.Fatalf("KNN wrong: %v", nn)
	}
}

func TestRWRScoresSumToOne(t *testing.T) {
	g := rng.New(4)
	n := 12
	adj := SimilarityGraph(n, func(i, j int) float64 { return 0.1 + g.Float64() })
	r := RWR(adj, 3, DefaultRWRConfig())
	var sum float64
	for _, v := range r {
		if v < 0 {
			t.Fatalf("negative RWR score %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("RWR scores sum to %v", sum)
	}
}

func TestRWRQueryHasHighScore(t *testing.T) {
	g := rng.New(5)
	n := 10
	adj := SimilarityGraph(n, func(i, j int) float64 { return 0.1 + g.Float64() })
	q := 4
	r := RWR(adj, q, DefaultRWRConfig())
	for i, v := range r {
		if i != q && v > r[q] {
			t.Fatalf("node %d outranks the query (%v > %v)", i, v, r[q])
		}
	}
}

func TestRWRFindsCluster(t *testing.T) {
	// Two clusters {0,1,2} and {3,4,5} with strong intra-cluster edges.
	adj := SimilarityGraph(6, func(i, j int) float64 {
		if (i < 3) == (j < 3) {
			return 1.0
		}
		return 0.01
	})
	r := RWR(adj, 0, DefaultRWRConfig())
	// Every same-cluster node must outrank every cross-cluster node.
	for _, in := range []int{1, 2} {
		for _, out := range []int{3, 4, 5} {
			if r[in] <= r[out] {
				t.Fatalf("cluster-mate %d (%v) not above outsider %d (%v)", in, r[in], out, r[out])
			}
		}
	}
}

func TestRWRRestartConcentration(t *testing.T) {
	// Higher restart probability concentrates mass on the query.
	g := rng.New(6)
	adj := SimilarityGraph(8, func(i, j int) float64 { return 0.2 + g.Float64() })
	lo := RWR(adj, 2, RWRConfig{RestartProb: 0.05, MaxIters: 200, Tol: 0})
	hi := RWR(adj, 2, RWRConfig{RestartProb: 0.5, MaxIters: 200, Tol: 0})
	if hi[2] <= lo[2] {
		t.Fatalf("restart mass not increasing: c=0.5 gives %v, c=0.05 gives %v", hi[2], lo[2])
	}
}

func TestRWRIsolatedNode(t *testing.T) {
	// A node with no edges: all mass stays at the query via restart.
	adj := mat.New(3, 3)
	r := RWR(adj, 1, DefaultRWRConfig())
	if r[1] < 0.99 {
		t.Fatalf("isolated query kept only %v mass", r[1])
	}
}

func TestSimilarityGraphSymmetricNoSelfLoops(t *testing.T) {
	g := rng.New(7)
	a := SimilarityGraph(5, func(i, j int) float64 { return g.Float64() })
	for i := 0; i < 5; i++ {
		if a.At(i, i) != 0 {
			t.Fatal("self loop present")
		}
		for j := 0; j < 5; j++ {
			if a.At(i, j) != a.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
	}
}

func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 3 + g.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		g.NormSlice(x)
		g.NormSlice(y)
		c := Pearson(x, y)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPearsonSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 3 + g.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		g.NormSlice(x)
		g.NormSlice(y)
		return math.Abs(Pearson(x, y)-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
