package stats

import (
	"math"

	"repro/internal/mat"
)

// Factor-match metrics: PARAFAC2 factors are identified only up to column
// permutation and sign, so comparing two decompositions (e.g. DPar2 vs
// exact ALS, or streamed vs batch) requires a permutation-invariant score.
// The standard tool is Tucker's congruence coefficient with a greedy column
// matching.

// Congruence returns Tucker's congruence coefficient between two vectors:
// ⟨x, y⟩ / (‖x‖‖y‖), in [-1, 1]. Unlike Pearson it does not center, which
// is the convention for comparing factor loadings.
func Congruence(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Congruence length mismatch")
	}
	nx := mat.Norm2(x)
	ny := mat.Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return mat.Dot(x, y) / (nx * ny)
}

// FactorMatchScore compares two factor matrices (same shape, columns =
// components) up to column permutation and sign: it greedily pairs each
// column of a with its best-|congruence| column of b (without replacement)
// and returns the average absolute congruence of the pairing, in [0, 1].
// 1 means the factors span identical directions component-by-component.
func FactorMatchScore(a, b *mat.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("stats: FactorMatchScore shape mismatch")
	}
	r := a.Cols
	if r == 0 {
		return 1
	}
	used := make([]bool, r)
	var total float64
	for i := 0; i < r; i++ {
		ai := a.Col(i)
		best, bestAbs := -1, -1.0
		for j := 0; j < r; j++ {
			if used[j] {
				continue
			}
			c := math.Abs(Congruence(ai, b.Col(j)))
			if c > bestAbs {
				best, bestAbs = j, c
			}
		}
		used[best] = true
		total += bestAbs
	}
	return total / float64(r)
}

// SubspaceAlignment measures how well the column spaces of two matrices
// with orthonormal-ish columns agree: the mean squared singular value of
// QaᵀQb where Qa, Qb are orthonormal bases (1 = identical subspaces,
// 0 = orthogonal). Used to compare Q_k factors whose individual columns can
// rotate freely within the subspace.
func SubspaceAlignment(a, b *mat.Dense) float64 {
	qa := gramSchmidt(a)
	qb := gramSchmidt(b)
	m := qa.TMul(qb) // r×r
	// Σ σ_i² = ‖M‖_F²; mean over r gives the average cos².
	r := float64(m.Rows)
	if r == 0 {
		return 1
	}
	return m.FrobNorm2() / r
}

// gramSchmidt returns an orthonormal basis of a's columns (two-pass MGS),
// dropping numerically dependent columns.
func gramSchmidt(a *mat.Dense) *mat.Dense {
	cols := make([][]float64, 0, a.Cols)
	for j := 0; j < a.Cols; j++ {
		v := a.Col(j)
		for pass := 0; pass < 2; pass++ {
			for _, u := range cols {
				d := mat.Dot(v, u)
				for i := range v {
					v[i] -= d * u[i]
				}
			}
		}
		n := mat.Norm2(v)
		if n < 1e-12 {
			continue
		}
		for i := range v {
			v[i] /= n
		}
		cols = append(cols, v)
	}
	out := mat.New(a.Rows, len(cols))
	for j, c := range cols {
		out.SetCol(j, c)
	}
	return out
}
