// Package stats implements the post-processing analytics of the paper's
// discovery experiments (Section IV-E): Pearson correlation between factor
// rows (Fig. 12's feature-similarity heatmaps), the exponential similarity
// between per-stock temporal factors, k-nearest neighbors, and Random Walk
// with Restart via power iteration (Table III).
package stats

import (
	"math"
	"sort"

	"repro/internal/mat"
)

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either input has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix returns the symmetric matrix of Pearson correlations
// between the rows of m — for Fig. 12, rows of the factor V (one latent
// vector per feature).
func CorrelationMatrix(m *mat.Dense) *mat.Dense {
	out := mat.New(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < m.Rows; j++ {
			c := Pearson(m.Row(i), m.Row(j))
			out.Set(i, j, c)
			out.Set(j, i, c)
		}
	}
	return out
}

// ExpSimilarity is Equation (10): sim(s_i, s_j) = exp(−γ‖U_i − U_j‖_F²).
// The matrices must have the same shape (the paper compares only stocks
// sharing the target time range).
func ExpSimilarity(ui, uj *mat.Dense, gamma float64) float64 {
	d := ui.FrobDist(uj)
	return math.Exp(-gamma * d * d)
}

// Neighbor pairs an item index with a similarity score.
type Neighbor struct {
	Index int
	Score float64
}

// TopK returns the k highest-scoring entries of scores, excluding the
// indices for which exclude returns true (e.g. the query itself), in
// descending score order.
func TopK(scores []float64, k int, exclude func(i int) bool) []Neighbor {
	idx := make([]int, 0, len(scores))
	for i := range scores {
		if exclude != nil && exclude(i) {
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = Neighbor{Index: idx[i], Score: scores[idx[i]]}
	}
	return out
}

// KNN returns the k nearest neighbors of item q under the similarity matrix
// sim (higher = closer), excluding q itself.
func KNN(sim *mat.Dense, q, k int) []Neighbor {
	return TopK(sim.Row(q), k, func(i int) bool { return i == q })
}

// RWRConfig configures Random Walk with Restart.
type RWRConfig struct {
	RestartProb float64 // c in Equation (12); the paper uses 0.15
	MaxIters    int     // the paper uses 100
	Tol         float64 // early-exit on ‖r_i − r_{i−1}‖₁
}

// DefaultRWRConfig matches Section IV-E.
func DefaultRWRConfig() RWRConfig {
	return RWRConfig{RestartProb: 0.15, MaxIters: 100, Tol: 1e-12}
}

// RWR computes Random-Walk-with-Restart scores on the similarity graph with
// adjacency adj (self-loops are ignored per Equation 11), restarting at
// query q: r ← (1−c) Ãᵀ r + c e_q via power iteration (Equation 12).
func RWR(adj *mat.Dense, q int, cfg RWRConfig) []float64 {
	n := adj.Rows
	if adj.Cols != n {
		panic("stats: RWR adjacency not square")
	}
	// Row-normalize with zeroed diagonal; remember dangling nodes (zero
	// out-degree), whose mass teleports back to the query so the scores
	// remain a probability distribution.
	norm := mat.New(n, n)
	dangling := make([]bool, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				sum += adj.At(i, j)
			}
		}
		if sum == 0 {
			dangling[i] = true
			continue
		}
		for j := 0; j < n; j++ {
			if i != j {
				norm.Set(i, j, adj.At(i, j)/sum)
			}
		}
	}
	r := make([]float64, n)
	r[q] = 1
	c := cfg.RestartProb
	for it := 0; it < cfg.MaxIters; it++ {
		var lost float64
		for i, d := range dangling {
			if d {
				lost += r[i]
			}
		}
		next := norm.TMulVec(r)
		var delta float64
		for i := range next {
			next[i] *= 1 - c
			if i == q {
				next[i] += c + (1-c)*lost
			}
			delta += math.Abs(next[i] - r[i])
		}
		r = next
		if delta < cfg.Tol {
			break
		}
	}
	return r
}

// SimilarityGraph builds the adjacency matrix of Equation (11) from a
// pairwise similarity function over n items: A(i,j) = sim(i,j) for i ≠ j,
// A(i,i) = 0.
func SimilarityGraph(n int, sim func(i, j int) float64) *mat.Dense {
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := sim(i, j)
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}
