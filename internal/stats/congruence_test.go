package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestCongruenceBasics(t *testing.T) {
	x := []float64{1, 2, 3}
	if c := Congruence(x, x); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self congruence %v", c)
	}
	y := []float64{-2, -4, -6}
	if c := Congruence(x, y); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti-parallel congruence %v", c)
	}
	if c := Congruence(x, []float64{0, 0, 0}); c != 0 {
		t.Fatalf("zero-vector congruence %v", c)
	}
	// Orthogonal vectors.
	if c := Congruence([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Fatalf("orthogonal congruence %v", c)
	}
}

func TestCongruenceNotCentered(t *testing.T) {
	// Unlike Pearson, congruence of two all-positive constant-ish vectors
	// is near 1 even though Pearson would be 0/undefined.
	x := []float64{1, 1, 1}
	y := []float64{2, 2, 2.0001}
	if c := Congruence(x, y); c < 0.999 {
		t.Fatalf("constant-direction congruence %v", c)
	}
}

func TestFactorMatchScoreIdentity(t *testing.T) {
	g := rng.New(1)
	a := mat.Gaussian(g, 20, 4)
	if s := FactorMatchScore(a, a); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self match %v", s)
	}
}

func TestFactorMatchScorePermutationAndSignInvariant(t *testing.T) {
	g := rng.New(2)
	a := mat.Gaussian(g, 15, 4)
	// b = a with columns permuted (2,0,3,1) and signs flipped.
	b := mat.New(15, 4)
	perm := []int{2, 0, 3, 1}
	signs := []float64{-1, 1, -1, 1}
	for j, p := range perm {
		col := a.Col(p)
		for i := range col {
			col[i] *= signs[j]
		}
		b.SetCol(j, col)
	}
	if s := FactorMatchScore(a, b); math.Abs(s-1) > 1e-12 {
		t.Fatalf("permuted/flipped match %v, want 1", s)
	}
}

func TestFactorMatchScoreRandomLow(t *testing.T) {
	g := rng.New(3)
	a := mat.Gaussian(g, 200, 4)
	b := mat.Gaussian(g, 200, 4)
	if s := FactorMatchScore(a, b); s > 0.5 {
		t.Fatalf("independent Gaussian factors matched at %v", s)
	}
}

func TestSubspaceAlignmentIdentity(t *testing.T) {
	g := rng.New(4)
	a := mat.Gaussian(g, 30, 3)
	if s := SubspaceAlignment(a, a); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self alignment %v", s)
	}
	// Same subspace, different basis: mix the columns.
	mix := mat.Gaussian(g, 3, 3)
	b := a.Mul(mix)
	if s := SubspaceAlignment(a, b); math.Abs(s-1) > 1e-8 {
		t.Fatalf("re-based subspace alignment %v", s)
	}
}

func TestSubspaceAlignmentOrthogonal(t *testing.T) {
	// Disjoint coordinate subspaces are orthogonal.
	a := mat.New(6, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	b := mat.New(6, 2)
	b.Set(2, 0, 1)
	b.Set(3, 1, 1)
	if s := SubspaceAlignment(a, b); s > 1e-12 {
		t.Fatalf("orthogonal subspaces aligned at %v", s)
	}
}

func TestQuickCongruenceBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 2 + g.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		g.NormSlice(x)
		g.NormSlice(y)
		c := Congruence(x, y)
		return c >= -1-1e-9 && c <= 1+1e-9 && math.Abs(c-Congruence(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFactorMatchBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		r := 1 + g.Intn(5)
		n := r + g.Intn(30)
		a := mat.Gaussian(g, n, r)
		b := mat.Gaussian(g, n, r)
		s := FactorMatchScore(a, b)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
