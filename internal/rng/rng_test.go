package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(3)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	g := New(4)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	g := New(5)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := g.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("gaussian variance %v", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	g := New(6)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := g.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(8)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children collided %d times", same)
	}
}

func TestPerm(t *testing.T) {
	g := New(9)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormSliceAndUniformSlice(t *testing.T) {
	g := New(10)
	xs := make([]float64, 1000)
	g.NormSlice(xs)
	nonzero := 0
	for _, v := range xs {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 990 {
		t.Fatal("NormSlice produced too many zeros")
	}
	g.UniformSlice(xs, 2, 3)
	for _, v := range xs {
		if v < 2 || v >= 3 {
			t.Fatalf("UniformSlice out of range: %v", v)
		}
	}
}

func TestStateRoundtrip(t *testing.T) {
	g := New(42)
	// Burn some draws, including an odd number of Norms so the Box-Muller
	// spare is live in the exported state.
	for i := 0; i < 17; i++ {
		g.Uint64()
	}
	g.Norm()

	st := g.State()
	restored, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := g.Norm(), restored.Norm(); a != b {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := g.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

func TestStateIsSnapshot(t *testing.T) {
	g := New(7)
	st := g.State()
	first := g.Uint64()
	if st != g.State() {
		// advancing g must not retroactively change the exported snapshot's
		// meaning: restoring it replays the same first draw
		restored, err := FromState(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := restored.Uint64(); got != first {
			t.Fatalf("snapshot not independent: replay %d, original %d", got, first)
		}
	} else {
		t.Fatal("State did not change after a draw")
	}
}

func TestFromStateRejectsAllZero(t *testing.T) {
	if _, err := FromState(State{}); err != ErrInvalidState {
		t.Fatalf("want ErrInvalidState, got %v", err)
	}
}
