// Package rng provides a small, fast, deterministic random number generator
// used throughout the repository. Determinism matters here: randomized SVD is
// a Monte-Carlo algorithm, and reproducible sketches make tests and benchmark
// comparisons stable across runs and machines.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. It is not safe for concurrent use; each
// worker goroutine derives its own child generator with Split.
package rng

import (
	"errors"
	"math"
)

// RNG is a deterministic pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64

	// Box-Muller produces Gaussians in pairs; cache the spare.
	haveSpare bool
	spare     float64
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still produce well-separated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator. The parent advances, so
// successive Split calls yield distinct streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Clone returns a copy of the generator: identical state, advancing
// independently of r from here on. Speculative consumers draw from a clone
// and copy it back over the original only on commit, so an aborted operation
// leaves the original stream untouched (the streaming Append retry contract).
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// State is the full serializable state of an RNG: the xoshiro256** word
// vector plus the Box-Muller spare cache. A generator restored with FromState
// produces the exact bit stream the original would have produced, which is
// what lets a stream checkpoint resume bit-identically.
type State struct {
	S         [4]uint64
	HaveSpare bool
	Spare     float64
}

// ErrInvalidState reports a State that no reachable generator can have.
var ErrInvalidState = errors.New("rng: invalid state (all-zero xoshiro words)")

// State exports the generator's complete state. The snapshot is independent
// of r: neither advancing r nor mutating the returned value affects the other.
func (r *RNG) State() State {
	return State{S: r.s, HaveSpare: r.haveSpare, Spare: r.spare}
}

// FromState reconstructs a generator from an exported State. It rejects the
// all-zero word vector, which xoshiro can never reach and would emit zeros
// forever.
func FromState(st State) (*RNG, error) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return nil, ErrInvalidState
	}
	return &RNG{s: st.S, haveSpare: st.HaveSpare, spare: st.Spare}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard Gaussian variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.haveSpare = true
	return u * m
}

// NormSlice fills dst with independent standard Gaussians.
func (r *RNG) NormSlice(dst []float64) {
	for i := range dst {
		dst[i] = r.Norm()
	}
}

// UniformSlice fills dst with independent uniforms in [lo, hi).
func (r *RNG) UniformSlice(dst []float64, lo, hi float64) {
	w := hi - lo
	for i := range dst {
		dst[i] = lo + w*r.Float64()
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
