// Package scheduler implements the work-distribution *policy* of Section
// III-F / Algorithm 4 of the DPar2 paper: a greedy number-partitioning of
// slices across threads so that the per-thread sums of row counts (which the
// stage-1 randomized-SVD cost is proportional to) are balanced despite the
// irregularity of the tensor.
//
// Execution lives elsewhere: hand the buckets produced here to
// (*compute.Pool).RunPartitioned. The generic worker-pool mechanics that
// used to live in this package moved to internal/compute.
package scheduler

import "sort"

// Partition assigns the K items with the given sizes to t buckets using the
// greedy longest-processing-time heuristic of Algorithm 4: sort sizes in
// descending order and repeatedly place the next item in the bucket with the
// smallest current sum. The result maps bucket → item indices.
func Partition(sizes []int, t int) [][]int {
	if t <= 0 {
		t = 1
	}
	if t > len(sizes) && len(sizes) > 0 {
		t = len(sizes)
	}
	buckets := make([][]int, t)
	sums := make([]int64, t)

	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sizes[idx[a]] > sizes[idx[b]] })

	for _, item := range idx {
		tmin := 0
		for i := 1; i < t; i++ {
			if sums[i] < sums[tmin] {
				tmin = i
			}
		}
		buckets[tmin] = append(buckets[tmin], item)
		sums[tmin] += int64(sizes[item])
	}
	return buckets
}

// RoundRobin is the naive baseline allocation (item i → bucket i mod t),
// used by the partitioning ablation.
func RoundRobin(n, t int) [][]int {
	if t <= 0 {
		t = 1
	}
	if t > n && n > 0 {
		t = n
	}
	buckets := make([][]int, t)
	for i := 0; i < n; i++ {
		buckets[i%t] = append(buckets[i%t], i)
	}
	return buckets
}

// MaxLoad returns the maximum bucket sum under the given assignment — the
// makespan that determines parallel completion time.
func MaxLoad(sizes []int, buckets [][]int) int64 {
	var mx int64
	for _, b := range buckets {
		var s int64
		for _, item := range b {
			s += int64(sizes[item])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Imbalance returns maxLoad / (total/t), the load-imbalance factor (1.0 is
// perfect balance).
func Imbalance(sizes []int, buckets [][]int) float64 {
	var total int64
	for _, s := range sizes {
		total += int64(s)
	}
	if total == 0 || len(buckets) == 0 {
		return 1
	}
	ideal := float64(total) / float64(len(buckets))
	return float64(MaxLoad(sizes, buckets)) / ideal
}
