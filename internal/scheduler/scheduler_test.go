package scheduler

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPartitionCoversAllItemsOnce(t *testing.T) {
	sizes := []int{5, 3, 8, 1, 9, 2, 7}
	buckets := Partition(sizes, 3)
	seen := make(map[int]int)
	for _, b := range buckets {
		for _, item := range b {
			seen[item]++
		}
	}
	if len(seen) != len(sizes) {
		t.Fatalf("covered %d of %d items", len(seen), len(sizes))
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %d assigned %d times", item, n)
		}
	}
}

func TestPartitionBalances(t *testing.T) {
	// Long-tailed sizes like the stock data of Fig. 8.
	g := rng.New(1)
	sizes := make([]int, 500)
	for i := range sizes {
		sizes[i] = 1 + g.Intn(100)*g.Intn(100)
	}
	buckets := Partition(sizes, 6)
	if imb := Imbalance(sizes, buckets); imb > 1.05 {
		t.Fatalf("greedy partition imbalance %v", imb)
	}
}

func TestPartitionBeatsRoundRobin(t *testing.T) {
	// Adversarial for round-robin: sorted descending sizes.
	sizes := make([]int, 100)
	for i := range sizes {
		sizes[i] = (100 - i) * (100 - i)
	}
	greedy := MaxLoad(sizes, Partition(sizes, 7))
	naive := MaxLoad(sizes, RoundRobin(len(sizes), 7))
	if greedy > naive {
		t.Fatalf("greedy max load %d > round-robin %d", greedy, naive)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if got := Partition(nil, 4); len(got) != 4 {
		t.Fatalf("empty sizes: %v", got)
	}
	if got := Partition([]int{3}, 0); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("t=0 should clamp to 1: %v", got)
	}
	// More buckets than items: each bucket at most one item.
	got := Partition([]int{3, 1}, 10)
	if len(got) != 2 {
		t.Fatalf("want 2 buckets, got %d", len(got))
	}
}

func TestRoundRobinCoverage(t *testing.T) {
	buckets := RoundRobin(10, 3)
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("round robin lost items: %d", total)
	}
}

func TestMaxLoadAndImbalance(t *testing.T) {
	sizes := []int{4, 4, 4, 4}
	buckets := [][]int{{0, 1}, {2, 3}}
	if MaxLoad(sizes, buckets) != 8 {
		t.Fatal("MaxLoad wrong")
	}
	if Imbalance(sizes, buckets) != 1.0 {
		t.Fatal("perfectly balanced should be 1.0")
	}
	if Imbalance(nil, nil) != 1 {
		t.Fatal("degenerate imbalance should be 1")
	}
}

func TestQuickGreedyNotMeaningfullyWorseThanRoundRobin(t *testing.T) {
	// "Greedy never beats round-robin" is NOT a theorem — LPT can be
	// marginally worse on rare inputs (e.g. seed 0x319fd3bc17c7902f:
	// makespan 3221 vs 3218), which made the strict <= version of this
	// property flake. The sound bound: LPT ≤ (4/3 − 1/(3m))·OPT and OPT ≤
	// round-robin's makespan, so greedy ≤ 4/3·round-robin always.
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 1 + g.Intn(200)
		workers := 1 + g.Intn(16)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + g.Intn(1000)
		}
		greedy := float64(MaxLoad(sizes, Partition(sizes, workers)))
		rr := float64(MaxLoad(sizes, RoundRobin(n, workers)))
		m := float64(workers)
		return greedy <= (4.0/3.0-1.0/(3.0*m))*rr+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGreedyWithinGrahamBound(t *testing.T) {
	// Graham's list-scheduling guarantee holds for any order, hence also
	// for LPT: makespan ≤ total/m + (1 − 1/m)·max item. (Comparing against
	// 4/3·lower-bound instead would be unsound: the 4/3 factor applies to
	// OPT, which can exceed both total/m and the max item.)
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 1 + g.Intn(100)
		workers := 1 + g.Intn(8)
		sizes := make([]int, n)
		total, mx := 0, 0
		for i := range sizes {
			sizes[i] = 1 + g.Intn(500)
			total += sizes[i]
			if sizes[i] > mx {
				mx = sizes[i]
			}
		}
		m := float64(workers)
		bound := float64(total)/m + (1-1/m)*float64(mx)
		return float64(MaxLoad(sizes, Partition(sizes, workers))) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
