package lapack

import (
	"fmt"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// widthRunner implements mat.Runner with a fixed width, running chunks
// sequentially — exercises FactorBatch's partitioned path deterministically.
type widthRunner struct{ width int }

func (r widthRunner) Workers() int { return r.width }

func (r widthRunner) ParallelRanges(n int, fn func(lo, hi int)) {
	w := r.width
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// batchProblems builds a heterogeneous batch: the R×R ALS shapes for
// R ∈ {1, 2, 3, 10}, a tall problem, a rank-deficient one (duplicated
// columns), and a zero matrix.
func batchProblems(g *rng.RNG) []*mat.Dense {
	as := []*mat.Dense{
		mat.Gaussian(g, 1, 1),
		mat.Gaussian(g, 2, 2),
		mat.Gaussian(g, 3, 3),
		mat.Gaussian(g, 10, 10),
		mat.Gaussian(g, 20, 6),
	}
	def := mat.Gaussian(g, 8, 4)
	def.SetCol(3, def.Col(0)) // rank-deficient: column 3 duplicates column 0
	as = append(as, def, mat.New(5, 3))
	for i := 0; i < 6; i++ { // several same-shape problems, like the K slices
		as = append(as, mat.Gaussian(g, 10, 10))
	}
	return as
}

func newBatchOutputs(as []*mat.Dense) (us []*mat.Dense, ss [][]float64, vs []*mat.Dense) {
	for _, a := range as {
		us = append(us, mat.New(a.Rows, a.Cols))
		ss = append(ss, make([]float64, a.Cols))
		vs = append(vs, mat.New(a.Cols, a.Cols))
	}
	return us, ss, vs
}

// TestFactorBatchMatchesSequentialFactorInto pins FactorBatch's equivalence
// contract: for every problem in the batch the outputs are bit-identical to
// a sequential FactorInto call — U, S and V exactly, not up to sign, because
// batch and sequential run the identical rotation sequence per problem. The
// check runs for no Runner and for several widths (including more workers
// than problems).
func TestFactorBatchMatchesSequentialFactorInto(t *testing.T) {
	g := rng.New(51)
	as := batchProblems(g)

	wantU, wantS, wantV := newBatchOutputs(as)
	var seq Workspace
	for p, a := range as {
		FactorInto(a, wantU[p], wantS[p], wantV[p], &seq)
	}

	runners := map[string]mat.Runner{
		"nil": nil, "w1": widthRunner{1}, "w2": widthRunner{2},
		"w3": widthRunner{3}, "w64": widthRunner{64},
	}
	for name, rn := range runners {
		gotU, gotS, gotV := newBatchOutputs(as)
		var ws BatchWorkspace
		FactorBatch(as, gotU, gotS, gotV, rn, &ws)
		for p := range as {
			for i, v := range wantS[p] {
				if gotS[p][i] != v {
					t.Fatalf("%s: problem %d singular value %d: batch %v != sequential %v", name, p, i, gotS[p][i], v)
				}
			}
			if !gotU[p].EqualApprox(wantU[p], 0) {
				t.Fatalf("%s: problem %d U differs from sequential FactorInto", name, p)
			}
			if !gotV[p].EqualApprox(wantV[p], 0) {
				t.Fatalf("%s: problem %d V differs from sequential FactorInto", name, p)
			}
		}
	}
}

// TestFactorBatchReconstructs sanity-checks the decomposition itself on the
// heterogeneous batch (orthonormal factors, descending spectrum, A ≈ UΣVᵀ).
func TestFactorBatchReconstructs(t *testing.T) {
	g := rng.New(52)
	as := batchProblems(g)
	us, ss, vs := newBatchOutputs(as)
	FactorBatch(as, us, ss, vs, widthRunner{4}, nil)
	for p, a := range as {
		if !us[p].IsOrthonormalCols(1e-10) {
			t.Fatalf("problem %d: U not orthonormal", p)
		}
		if !vs[p].IsOrthonormalCols(1e-10) {
			t.Fatalf("problem %d: V not orthonormal", p)
		}
		for i := 1; i < len(ss[p]); i++ {
			if ss[p][i] > ss[p][i-1] {
				t.Fatalf("problem %d: singular values not descending: %v", p, ss[p])
			}
		}
		rec := us[p].ScaleColumns(ss[p]).MulT(vs[p])
		if !rec.EqualApprox(a, 1e-9) {
			t.Fatalf("problem %d: UΣVᵀ does not reconstruct A", p)
		}
	}
}

// TestFactorBatchWorkspaceReuseAllocFree: with a warmed BatchWorkspace and
// preallocated outputs, steady-state FactorBatch calls allocate nothing —
// the guarantee dpar2Iterate's per-iteration sweep relies on.
func TestFactorBatchWorkspaceReuseAllocFree(t *testing.T) {
	g := rng.New(53)
	var as []*mat.Dense
	for i := 0; i < 8; i++ {
		as = append(as, mat.Gaussian(g, 10, 10))
	}
	us, ss, vs := newBatchOutputs(as)
	var ws BatchWorkspace
	FactorBatch(as, us, ss, vs, nil, &ws) // warm the slab
	allocs := testing.AllocsPerRun(20, func() {
		FactorBatch(as, us, ss, vs, nil, &ws)
	})
	if allocs != 0 {
		t.Fatalf("warmed FactorBatch allocates %.1f objects per call, want 0", allocs)
	}
}

// TestFactorBatchShapePanics: the batch entry point keeps FactorInto's
// shape contract.
func TestFactorBatchShapePanics(t *testing.T) {
	g := rng.New(54)
	a := mat.Gaussian(g, 3, 3)
	u, s, v := mat.New(3, 3), make([]float64, 3), mat.New(3, 3)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		FactorBatch([]*mat.Dense{a}, nil, [][]float64{s}, []*mat.Dense{v}, nil, nil)
	})
	mustPanic("wide problem", func() {
		wide := mat.Gaussian(g, 2, 3)
		FactorBatch([]*mat.Dense{wide}, []*mat.Dense{mat.New(2, 3)}, [][]float64{s}, []*mat.Dense{v}, nil, nil)
	})
	mustPanic("bad output shape", func() {
		FactorBatch([]*mat.Dense{a}, []*mat.Dense{mat.New(2, 2)}, [][]float64{s}, []*mat.Dense{v}, nil, nil)
	})
	// Empty batch is a no-op, not a panic.
	FactorBatch(nil, nil, nil, nil, nil, nil)
	_ = u
}

// TestFactorWSMatchesFactorWith: the workspace-threading variants are pure
// plumbing — same bits as the pool-backed entry points.
func TestFactorWSMatchesFactorWith(t *testing.T) {
	g := rng.New(55)
	for _, sh := range [][2]int{{6, 6}, {40, 6}, {6, 40}, {18, 10}} {
		a := mat.Gaussian(g, sh[0], sh[1])
		var ws Workspace
		got := FactorWS(a, nil, &ws)
		want := FactorWith(a, nil)
		for i, v := range want.S {
			if got.S[i] != v {
				t.Fatalf("%dx%d: FactorWS singular values differ from FactorWith", sh[0], sh[1])
			}
		}
		if !got.U.EqualApprox(want.U, 0) || !got.V.EqualApprox(want.V, 0) {
			t.Fatalf("%dx%d: FactorWS factors differ from FactorWith", sh[0], sh[1])
		}
		gt := TruncatedWS(a, 4, nil, &ws)
		wt := TruncatedWith(a, 4, nil)
		if !gt.U.EqualApprox(wt.U, 0) || !gt.V.EqualApprox(wt.V, 0) {
			t.Fatalf("%dx%d: TruncatedWS factors differ from TruncatedWith", sh[0], sh[1])
		}
	}
}

// BenchmarkFactorBatchVsSequential measures the fused batched sweep on K
// rank-sized problems against K sequential FactorInto calls — the ALS
// hot-loop shape (R = 10). The smoke-guarded absolute-budget variant is
// BenchmarkFactorBatch in the root package.
func BenchmarkFactorBatchVsSequential(b *testing.B) {
	for _, k := range []int{8, 64} {
		g := rng.New(60)
		var as []*mat.Dense
		for i := 0; i < k; i++ {
			as = append(as, mat.Gaussian(g, 10, 10))
		}
		us, ss, vs := newBatchOutputs(as)
		b.Run(fmt.Sprintf("K%d/batch", k), func(b *testing.B) {
			var ws BatchWorkspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FactorBatch(as, us, ss, vs, nil, &ws)
			}
		})
		b.Run(fmt.Sprintf("K%d/sequential", k), func(b *testing.B) {
			var ws Workspace
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := range as {
					FactorInto(as[p], us[p], ss[p], vs[p], &ws)
				}
			}
		})
	}
}
