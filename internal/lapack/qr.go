// Package lapack implements the factorizations DPar2 depends on from
// scratch: Householder thin QR, one-sided Jacobi SVD (with QR pre-reduction
// for tall matrices), truncated SVD, and the Moore-Penrose pseudoinverse.
//
// The implementations favor numerical robustness and clarity over raw speed,
// but the inner loops are laid out for the cache: QR and Jacobi both work on
// column-major scratch so every Householder/rotation pass is contiguous, and
// the small per-iteration SVDs of the ALS hot loop have allocation-free
// entry points backed by reusable workspaces.
//
// # Allocation-free entry points
//
// FactorInto factors one problem into preallocated outputs; ws may be a
// caller-held *Workspace (zero value is ready) or nil to draw from an
// internal pool (counted by PoolDraws, so tests can assert zero steady-state
// churn). FactorWS and TruncatedWS thread a Workspace through the composite
// paths for callers — like the randomized-SVD sketch loops — that factor
// repeatedly on one worker.
//
// FactorBatch factors a whole batch of small problems in fused lockstep
// Jacobi sweeps over one BatchWorkspace slab: problems are partitioned
// across the Runner in a single parallel region, every sweep is one pass
// over a partition's cache-resident share, and converged problems drop out
// via per-problem masks. Parallelism is only ever across problems, so each
// problem's outputs are bit-identical to a sequential FactorInto call for
// every Runner width. This is the ALS hot-loop entry point: K rank-sized
// SVDs per iteration cost one call, zero allocations in steady state.
//
// # Accumulation-order policy
//
// Unlike package mat (whose kernels must keep the naive per-element
// accumulation order bit-for-bit), lapack permits reassociating serial
// reductions — dot4/sumsq4 partial sums, unrolled rotation passes — because
// every factorization runs serially within one problem: results differ from
// the textbook loop only in the last ulp, and remain deterministic
// run-to-run and independent of caller thread counts. Any such reordering
// must keep that thread-count independence and be called out on the
// function it touches.
package lapack

import (
	"math"

	"repro/internal/mat"
)

// QR holds a thin QR factorization A = Q R with Q m-by-n column-orthonormal
// and R n-by-n upper triangular (for m >= n).
type QR struct {
	Q *mat.Dense
	R *mat.Dense
}

// QRFactor computes the thin QR factorization of a (m-by-n, m >= n) using
// Householder reflections. a is not modified.
//
// The factorization works on a column-major copy so the reflector
// construction and application loops stream contiguous memory. The reflector
// dots and column norms accumulate with four partial sums (see dot4): the
// operation count matches the textbook formulation but the reduction order
// differs in the last ulp. The result is deterministic — QRFactor is serial,
// so it is bit-identical run to run and across caller thread counts.
func QRFactor(a *mat.Dense) QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("lapack: QRFactor requires rows >= cols")
	}
	// Column-major working copy; column k becomes R's column in its first k
	// entries while the reflector tail is stored below (LAPACK style).
	buf := make([]float64, m*n)
	w := make([][]float64, n)
	for j := range w {
		w[j] = buf[j*m : (j+1)*m]
	}
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			w[j][i] = v
		}
	}
	betas := make([]float64, n)

	for k := 0; k < n; k++ {
		ck := w[k]
		// Build the Householder vector for column k below row k.
		normx := math.Sqrt(sumsq4(ck[k:]))
		if normx == 0 {
			betas[k] = 0
			continue
		}
		alpha := ck[k]
		s := normx
		if alpha > 0 {
			s = -normx
		}
		// v = x - s*e1, normalized so v[0] = 1.
		v0 := alpha - s
		betas[k] = -v0 / s // beta = 2 / (vᵀv) with v[0]=1 scaling works out to this
		if v0 != 0 {
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				ck[i] *= inv
			}
		}
		ck[k] = s

		// Apply the reflector to the remaining columns:
		// A := (I - beta v vᵀ) A for columns k+1..n-1.
		beta := betas[k]
		if beta == 0 {
			continue
		}
		tail := ck[k+1 : m]
		for j := k + 1; j < n; j++ {
			cj := w[j]
			dot := cj[k] + dot4(tail, cj[k+1:m])
			dot *= beta
			cj[k] -= dot
			axpy(dot, tail, cj[k+1:m])
		}
	}

	// Extract R from the upper triangles of the columns.
	r := mat.New(n, n)
	for j := 0; j < n; j++ {
		cj := w[j]
		for i := 0; i <= j; i++ {
			r.Data[i*n+j] = cj[i]
		}
	}

	// Form thin Q by applying the reflectors to the first n columns of I,
	// in reverse order, again in column-major scratch. Reflector k only
	// touches rows ≥ k, so on the identity column e_j every reflector with
	// k > j has an exactly zero dot and is a no-op: column j needs only
	// reflectors k = j..0. Iterating columns outermost and skipping that
	// zero triangle halves the formation work without changing a single
	// rounding (the skipped applications subtract exact zeros).
	qbuf := make([]float64, m*n)
	qc := make([][]float64, n)
	for j := range qc {
		qc[j] = qbuf[j*m : (j+1)*m]
		qc[j][j] = 1
	}
	for j := 0; j < n; j++ {
		cj := qc[j]
		for k := j; k >= 0; k-- {
			beta := betas[k]
			if beta == 0 {
				continue
			}
			ck := w[k]
			tail := ck[k+1 : m]
			dot := cj[k] + dot4(tail, cj[k+1:m])
			dot *= beta
			cj[k] -= dot
			axpy(dot, tail, cj[k+1:m])
		}
	}
	q := mat.New(m, n)
	for i := 0; i < m; i++ {
		row := q.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = qc[j][i]
		}
	}
	return QR{Q: q, R: r}
}

// OrthonormalBasis returns a column-orthonormal basis for the column space
// of a, handling the wide case (m < n) by truncating to the first m columns'
// span. Used by randomized SVD where a is the tall sketch Y.
func OrthonormalBasis(a *mat.Dense) *mat.Dense {
	if a.Rows >= a.Cols {
		return QRFactor(a).Q
	}
	// Wide: basis has at most a.Rows columns. QR of the leading square block
	// is not enough in general; use the transpose trick through SVD-free
	// Gram-Schmidt on rows — but for our callers this path never triggers
	// (sketches are tall). Fall back to QR of aᵀ's R factor anyway.
	qr := QRFactor(a.T())
	// aᵀ = Q R → a = Rᵀ Qᵀ; an orthonormal basis of a's columns is the
	// Q factor of Rᵀ (a.Rows-by-a.Rows).
	return QRFactor(qr.R.T()).Q
}
