// Package lapack implements the factorizations DPar2 depends on from
// scratch: Householder thin QR, one-sided Jacobi SVD (with QR pre-reduction
// for tall matrices), truncated SVD, and the Moore-Penrose pseudoinverse.
//
// The implementations favor numerical robustness and clarity over raw speed,
// but the inner loops are laid out for the cache: QR and Jacobi both work on
// column-major scratch so every Householder/rotation pass is contiguous, and
// the small per-iteration SVDs of the ALS hot loop have allocation-free
// entry points (FactorInto) backed by reusable workspaces.
package lapack

import (
	"math"

	"repro/internal/mat"
)

// QR holds a thin QR factorization A = Q R with Q m-by-n column-orthonormal
// and R n-by-n upper triangular (for m >= n).
type QR struct {
	Q *mat.Dense
	R *mat.Dense
}

// QRFactor computes the thin QR factorization of a (m-by-n, m >= n) using
// Householder reflections. a is not modified.
//
// The factorization works on a column-major copy so the reflector
// construction and application loops stream contiguous memory; the floating
// point operation order is identical to the textbook row-major formulation.
func QRFactor(a *mat.Dense) QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("lapack: QRFactor requires rows >= cols")
	}
	// Column-major working copy; column k becomes R's column in its first k
	// entries while the reflector tail is stored below (LAPACK style).
	buf := make([]float64, m*n)
	w := make([][]float64, n)
	for j := range w {
		w[j] = buf[j*m : (j+1)*m]
	}
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			w[j][i] = v
		}
	}
	betas := make([]float64, n)

	for k := 0; k < n; k++ {
		ck := w[k]
		// Build the Householder vector for column k below row k.
		var normx float64
		for i := k; i < m; i++ {
			v := ck[i]
			normx += v * v
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			betas[k] = 0
			continue
		}
		alpha := ck[k]
		s := normx
		if alpha > 0 {
			s = -normx
		}
		// v = x - s*e1, normalized so v[0] = 1.
		v0 := alpha - s
		betas[k] = -v0 / s // beta = 2 / (vᵀv) with v[0]=1 scaling works out to this
		if v0 != 0 {
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				ck[i] *= inv
			}
		}
		ck[k] = s

		// Apply the reflector to the remaining columns:
		// A := (I - beta v vᵀ) A for columns k+1..n-1.
		beta := betas[k]
		if beta == 0 {
			continue
		}
		for j := k + 1; j < n; j++ {
			cj := w[j]
			dot := cj[k]
			for i := k + 1; i < m; i++ {
				dot += ck[i] * cj[i]
			}
			dot *= beta
			cj[k] -= dot
			for i := k + 1; i < m; i++ {
				cj[i] -= dot * ck[i]
			}
		}
	}

	// Extract R from the upper triangles of the columns.
	r := mat.New(n, n)
	for j := 0; j < n; j++ {
		cj := w[j]
		for i := 0; i <= j; i++ {
			r.Data[i*n+j] = cj[i]
		}
	}

	// Form thin Q by applying the reflectors to the first n columns of I,
	// in reverse order, again in column-major scratch.
	qbuf := make([]float64, m*n)
	qc := make([][]float64, n)
	for j := range qc {
		qc[j] = qbuf[j*m : (j+1)*m]
		qc[j][j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		ck := w[k]
		for j := 0; j < n; j++ {
			cj := qc[j]
			dot := cj[k]
			for i := k + 1; i < m; i++ {
				dot += ck[i] * cj[i]
			}
			dot *= beta
			cj[k] -= dot
			for i := k + 1; i < m; i++ {
				cj[i] -= dot * ck[i]
			}
		}
	}
	q := mat.New(m, n)
	for i := 0; i < m; i++ {
		row := q.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = qc[j][i]
		}
	}
	return QR{Q: q, R: r}
}

// OrthonormalBasis returns a column-orthonormal basis for the column space
// of a, handling the wide case (m < n) by truncating to the first m columns'
// span. Used by randomized SVD where a is the tall sketch Y.
func OrthonormalBasis(a *mat.Dense) *mat.Dense {
	if a.Rows >= a.Cols {
		return QRFactor(a).Q
	}
	// Wide: basis has at most a.Rows columns. QR of the leading square block
	// is not enough in general; use the transpose trick through SVD-free
	// Gram-Schmidt on rows — but for our callers this path never triggers
	// (sketches are tall). Fall back to QR of aᵀ's R factor anyway.
	qr := QRFactor(a.T())
	// aᵀ = Q R → a = Rᵀ Qᵀ; an orthonormal basis of a's columns is the
	// Q factor of Rᵀ (a.Rows-by-a.Rows).
	return QRFactor(qr.R.T()).Q
}
