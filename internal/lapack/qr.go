// Package lapack implements the factorizations DPar2 depends on from
// scratch: Householder thin QR, one-sided Jacobi SVD (with QR pre-reduction
// for tall matrices), truncated SVD, and the Moore-Penrose pseudoinverse.
//
// The implementations favor numerical robustness and clarity over raw speed:
// every SVD DPar2 performs after stage-1 compression is on an R-by-R or
// (R+s)-by-J matrix, where Jacobi converges in a handful of sweeps.
package lapack

import (
	"math"

	"repro/internal/mat"
)

// QR holds a thin QR factorization A = Q R with Q m-by-n column-orthonormal
// and R n-by-n upper triangular (for m >= n).
type QR struct {
	Q *mat.Dense
	R *mat.Dense
}

// QRFactor computes the thin QR factorization of a (m-by-n, m >= n) using
// Householder reflections. a is not modified.
func QRFactor(a *mat.Dense) QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("lapack: QRFactor requires rows >= cols")
	}
	// Work on a copy; w becomes R in its upper triangle while the
	// reflectors are stored below the diagonal (LAPACK style).
	w := a.Clone()
	betas := make([]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below row k.
		var normx float64
		for i := k; i < m; i++ {
			v := w.At(i, k)
			normx += v * v
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.At(k, k)
		s := normx
		if alpha > 0 {
			s = -normx
		}
		// v = x - s*e1, normalized so v[0] = 1.
		v0 := alpha - s
		betas[k] = -v0 / s // beta = 2 / (vᵀv) with v[0]=1 scaling works out to this
		// Store the reflector tail scaled by 1/v0 below the diagonal.
		if v0 != 0 {
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				w.Set(i, k, w.At(i, k)*inv)
			}
		}
		w.Set(k, k, s)

		// Apply the reflector to the remaining columns:
		// A := (I - beta v vᵀ) A for columns k+1..n-1.
		beta := betas[k]
		if beta == 0 {
			continue
		}
		for j := k + 1; j < n; j++ {
			// dot = vᵀ A(:,j) with v = [1; w(k+1..m-1, k)]
			dot := w.At(k, j)
			for i := k + 1; i < m; i++ {
				dot += w.At(i, k) * w.At(i, j)
			}
			dot *= beta
			w.Set(k, j, w.At(k, j)-dot)
			for i := k + 1; i < m; i++ {
				w.Set(i, j, w.At(i, j)-dot*w.At(i, k))
			}
		}
	}

	// Extract R.
	r := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}

	// Form thin Q by applying the reflectors to the first n columns of I,
	// in reverse order.
	q := mat.New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			dot := q.At(k, j)
			for i := k + 1; i < m; i++ {
				dot += w.At(i, k) * q.At(i, j)
			}
			dot *= beta
			q.Set(k, j, q.At(k, j)-dot)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*w.At(i, k))
			}
		}
	}
	return QR{Q: q, R: r}
}

// OrthonormalBasis returns a column-orthonormal basis for the column space
// of a, handling the wide case (m < n) by truncating to the first m columns'
// span. Used by randomized SVD where a is the tall sketch Y.
func OrthonormalBasis(a *mat.Dense) *mat.Dense {
	if a.Rows >= a.Cols {
		return QRFactor(a).Q
	}
	// Wide: basis has at most a.Rows columns. QR of the leading square block
	// is not enough in general; use the transpose trick through SVD-free
	// Gram-Schmidt on rows — but for our callers this path never triggers
	// (sketches are tall). Fall back to QR of aᵀ's R factor anyway.
	qr := QRFactor(a.T())
	// aᵀ = Q R → a = Rᵀ Qᵀ; an orthonormal basis of a's columns is the
	// Q factor of Rᵀ (a.Rows-by-a.Rows).
	return QRFactor(qr.R.T()).Q
}
