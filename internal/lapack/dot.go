package lapack

// dot4 returns xᵀy accumulated with eight independent partial sums. A
// single accumulator chains one FMA per element at FMA latency; multiple
// chains hide that latency and run at port throughput (~4x+ on long
// vectors). The partial sums combine pairwise in a fixed order, so the
// result is deterministic for a given length, though it differs in the last
// ulp from the single-chain loop (allowed by the kernel contract:
// accumulation-order changes are fine inside lapack as long as they are
// thread-count independent, which a serial fixed-order reduction trivially
// is).
func dot4(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+7 < n; i += 8 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
		s4 += x[i+4] * y[i+4]
		s5 += x[i+5] * y[i+5]
		s6 += x[i+6] * y[i+6]
		s7 += x[i+7] * y[i+7]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// sumsq4 returns xᵀx with the same four-chain accumulation as dot4.
func sumsq4(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		v0, v1, v2, v3 := x[i], x[i+1], x[i+2], x[i+3]
		s0 += v0 * v0
		s1 += v1 * v1
		s2 += v2 * v2
		s3 += v3 * v3
	}
	for ; i < len(x); i++ {
		v := x[i]
		s0 += v * v
	}
	return (s0 + s1) + (s2 + s3)
}

// axpy computes y[i] -= a*x[i] over the common prefix of x and y, four
// elements per step (independent iterations; the unroll only trims loop
// overhead, the element-wise arithmetic is unchanged).
func axpy(a float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] -= a * x[i]
		y[i+1] -= a * x[i+1]
		y[i+2] -= a * x[i+2]
		y[i+3] -= a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] -= a * x[i]
	}
}
