package lapack

import (
	"math"
	"sort"

	"repro/internal/mat"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ with
// U m-by-r, S descending, V n-by-r where r = min(m, n) (or the truncation
// rank for truncated variants).
type SVD struct {
	U *mat.Dense
	S []float64
	V *mat.Dense
}

// jacobiSweepTol is the relative off-diagonal tolerance for one-sided Jacobi.
const jacobiSweepTol = 1e-12

// maxJacobiSweeps bounds iteration; Jacobi converges quadratically, so 30 is
// far more than needed for float64.
const maxJacobiSweeps = 30

// Factor computes the thin SVD of a. It does not modify a.
//
// Strategy: one-sided Jacobi orthogonalizes the columns of a working copy W,
// accumulating the rotations into V; on convergence the column norms of W are
// the singular values and the normalized columns form U. For tall matrices
// (m > n) a QR pre-reduction shrinks the Jacobi problem to n-by-n; for wide
// matrices we factor the transpose and swap U and V.
func Factor(a *mat.Dense) SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		s := Factor(a.T())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	if m > n*2 || m > n+32 {
		// Tall: A = Q R, SVD(R) = Ur S Vᵀ, so A = (Q Ur) S Vᵀ.
		qr := QRFactor(a)
		inner := jacobiSVD(qr.R)
		return SVD{U: qr.Q.Mul(inner.U), S: inner.S, V: inner.V}
	}
	return jacobiSVD(a)
}

// jacobiSVD runs one-sided Jacobi on a (m >= n required by callers).
func jacobiSVD(a *mat.Dense) SVD {
	m, n := a.Rows, a.Cols
	// Work column-major: w[j] is column j of the evolving matrix.
	w := make([][]float64, n)
	for j := 0; j < n; j++ {
		w[j] = a.Col(j)
	}
	v := mat.Identity(n)
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		vcols[j] = v.Col(j)
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := mat.Dot(w[p], w[p])
				beta := mat.Dot(w[q], w[q])
				gamma := mat.Dot(w[p], w[q])
				// Standard one-sided Jacobi convergence criterion:
				// skip the rotation when the columns are already
				// numerically orthogonal relative to their norms.
				if math.Abs(gamma) <= jacobiSweepTol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta > 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				wp, wq := w[p], w[q]
				for i := 0; i < m; i++ {
					tp := wp[i]
					wp[i] = c*tp - s*wq[i]
					wq[i] = s*tp + c*wq[i]
				}
				vp, vq := vcols[p], vcols[q]
				for i := 0; i < n; i++ {
					tp := vp[i]
					vp[i] = c*tp - s*vq[i]
					vq[i] = s*tp + c*vq[i]
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values = column norms; U = normalized columns.
	type col struct {
		sigma float64
		idx   int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		cols[j] = col{sigma: mat.Norm2(w[j]), idx: j}
	}
	sort.SliceStable(cols, func(i, j int) bool { return cols[i].sigma > cols[j].sigma })

	u := mat.New(m, n)
	vout := mat.New(n, n)
	s := make([]float64, n)
	tiny := 0.0
	if len(cols) > 0 {
		tiny = cols[0].sigma * 1e-14
	}
	var deficient []int
	for jOut, c := range cols {
		s[jOut] = c.sigma
		src := w[c.idx]
		if c.sigma > tiny && c.sigma > 0 {
			inv := 1 / c.sigma
			for i := 0; i < m; i++ {
				u.Set(i, jOut, src[i]*inv)
			}
		} else {
			deficient = append(deficient, jOut)
		}
		vc := vcols[c.idx]
		for i := 0; i < n; i++ {
			vout.Set(i, jOut, vc[i])
		}
	}
	// Complete zero columns of U to an orthonormal set so UᵀU = I holds
	// even for rank-deficient input (the thin-SVD contract our callers,
	// in particular the Qk update of PARAFAC2, rely on).
	completeOrthonormal(u, deficient)
	return SVD{U: u, S: s, V: vout}
}

// completeOrthonormal fills the listed (currently zero) columns of u with
// unit vectors orthogonal to every other column, via Gram-Schmidt against
// the canonical basis.
func completeOrthonormal(u *mat.Dense, cols []int) {
	if len(cols) == 0 {
		return
	}
	m := u.Rows
	next := 0 // next canonical basis vector to try
	for _, j := range cols {
		for ; next < m; next++ {
			// candidate e_next, orthogonalized against all columns
			v := make([]float64, m)
			v[next] = 1
			for c := 0; c < u.Cols; c++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += v[i] * u.At(i, c)
				}
				if dot != 0 {
					for i := 0; i < m; i++ {
						v[i] -= dot * u.At(i, c)
					}
				}
			}
			// Second orthogonalization pass for numerical safety.
			for c := 0; c < u.Cols; c++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += v[i] * u.At(i, c)
				}
				if dot != 0 {
					for i := 0; i < m; i++ {
						v[i] -= dot * u.At(i, c)
					}
				}
			}
			norm := mat.Norm2(v)
			if norm > 0.5 {
				inv := 1 / norm
				for i := 0; i < m; i++ {
					u.Set(i, j, v[i]*inv)
				}
				next++
				break
			}
		}
	}
}

// Truncated computes the rank-r truncated SVD of a (keeps the r largest
// singular triplets). If r >= min(m,n) it is the full thin SVD.
func Truncated(a *mat.Dense, r int) SVD {
	full := Factor(a)
	k := len(full.S)
	if r >= k {
		return full
	}
	return SVD{
		U: full.U.SubMatrix(0, 0, full.U.Rows, r),
		S: append([]float64(nil), full.S[:r]...),
		V: full.V.SubMatrix(0, 0, full.V.Rows, r),
	}
}

// Reconstruct returns U diag(S) Vᵀ.
func (d SVD) Reconstruct() *mat.Dense {
	return d.U.ScaleColumns(d.S).MulT(d.V)
}

// PInv returns the Moore-Penrose pseudoinverse of a, computed via the SVD
// with singular values below rcond·σ₁ treated as zero.
func PInv(a *mat.Dense) *mat.Dense {
	const rcond = 1e-12
	d := Factor(a)
	cutoff := 0.0
	if len(d.S) > 0 {
		cutoff = rcond * d.S[0]
	}
	inv := make([]float64, len(d.S))
	for i, s := range d.S {
		if s > cutoff {
			inv[i] = 1 / s
		}
	}
	// A⁺ = V diag(1/s) Uᵀ
	return d.V.ScaleColumns(inv).MulT(d.U)
}

// SolveSPD solves the small linear system G X = B for X where G is symmetric
// positive semi-definite (the Gram matrices of ALS updates), falling back to
// the pseudoinverse when G is singular. Used as B · (G)⁺ by callers that
// right-multiply.
func SolveSPD(g, b *mat.Dense) *mat.Dense {
	return PInv(g).Mul(b)
}
