package lapack

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ with
// U m-by-r, S descending, V n-by-r where r = min(m, n) (or the truncation
// rank for truncated variants).
type SVD struct {
	U *mat.Dense
	S []float64
	V *mat.Dense
}

// jacobiSweepTol is the relative off-diagonal tolerance for one-sided Jacobi.
const jacobiSweepTol = 1e-12

// maxJacobiSweeps bounds iteration; Jacobi converges quadratically, so 30 is
// far more than needed for float64.
const maxJacobiSweeps = 30

// Workspace holds the scratch buffers for repeated small SVDs so the ALS
// hot loop (one R×R SVD per slice per iteration) allocates nothing in steady
// state. A Workspace is not safe for concurrent use; FactorInto with a nil
// workspace draws one from an internal pool, which is the common pattern for
// parallel callers.
type Workspace struct {
	buf   []float64   // backing for the working columns and rotation columns
	wcols [][]float64 // n working columns of length m
	vcols [][]float64 // n rotation columns of length n
	perm  []int
	sigma []float64
}

var workspacePool = sync.Pool{New: func() any { return new(Workspace) }}

// poolDraws counts FactorInto calls that had to draw a pooled workspace
// because the caller passed nil. Hot loops are expected to hold their own
// workspace (or use FactorBatch); the parafac2 alloc tests assert this
// counter stays flat across steady-state iterations.
var poolDraws atomic.Uint64

// PoolDraws reports the cumulative number of pooled-workspace draws by
// FactorInto callers that passed a nil workspace. Monotonic; meant for
// before/after deltas in tests, not as a precise concurrency-safe gauge of
// anything else.
func PoolDraws() uint64 { return poolDraws.Load() }

// reserve sizes the workspace for an m×n Jacobi problem.
func (ws *Workspace) reserve(m, n int) {
	need := n * (m + n)
	if cap(ws.buf) < need {
		ws.buf = make([]float64, need)
	}
	ws.buf = ws.buf[:need]
	if cap(ws.wcols) < n {
		ws.wcols = make([][]float64, n)
		ws.vcols = make([][]float64, n)
	}
	ws.wcols = ws.wcols[:n]
	ws.vcols = ws.vcols[:n]
	for j := 0; j < n; j++ {
		ws.wcols[j] = ws.buf[j*m : (j+1)*m]
		ws.vcols[j] = ws.buf[n*m+j*n : n*m+(j+1)*n]
	}
	if cap(ws.perm) < n {
		ws.perm = make([]int, n)
		ws.sigma = make([]float64, n)
	}
	ws.perm = ws.perm[:n]
	ws.sigma = ws.sigma[:n]
}

// Factor computes the thin SVD of a. It does not modify a.
//
// Strategy: one-sided Jacobi orthogonalizes the columns of a working copy W,
// accumulating the rotations into V; on convergence the column norms of W are
// the singular values and the normalized columns form U. For tall matrices
// (m > n) a QR pre-reduction shrinks the Jacobi problem to n-by-n; for wide
// matrices we factor the transpose and swap U and V.
func Factor(a *mat.Dense) SVD { return FactorWith(a, nil) }

// FactorWith is Factor with the large multiplies of the tall path run on rn
// (nil means serial). The result is identical for any Runner width.
func FactorWith(a *mat.Dense, rn mat.Runner) SVD { return FactorWS(a, rn, nil) }

// FactorWS is FactorWith with an explicit Jacobi workspace. Callers that
// factor repeatedly (the randomized-SVD sketch loops) hold one Workspace per
// worker and avoid the package pool entirely; ws may be nil, in which case
// the Jacobi stage draws from the pool (counted by PoolDraws).
func FactorWS(a *mat.Dense, rn mat.Runner, ws *Workspace) SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		s := FactorWS(a.T(), rn, ws)
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	if m > n*2 || m > n+32 {
		// Tall: A = Q R, SVD(R) = Ur S Vᵀ, so A = (Q Ur) S Vᵀ.
		qr := QRFactor(a)
		inner := jacobiSVD(qr.R, ws)
		u := qr.Q.MulInto(mat.New(m, n), inner.U, rn)
		return SVD{U: u, S: inner.S, V: inner.V}
	}
	return jacobiSVD(a, ws)
}

// FactorInto computes the thin SVD of a (which must satisfy a.Rows >=
// a.Cols) directly into the preallocated outputs: u is a.Rows×a.Cols, s has
// length a.Cols, v is a.Cols×a.Cols. ws may be nil, in which case a pooled
// workspace is used. a is not modified. In steady state the call performs no
// allocations — this is the entry point for the per-slice R×R SVDs of the
// ALS iteration.
func FactorInto(a *mat.Dense, u *mat.Dense, s []float64, v *mat.Dense, ws *Workspace) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("lapack: FactorInto requires rows >= cols")
	}
	if u.Rows != m || u.Cols != n || len(s) != n || v.Rows != n || v.Cols != n {
		panic("lapack: FactorInto output shape mismatch")
	}
	if ws == nil {
		poolDraws.Add(1)
		pooled := workspacePool.Get().(*Workspace)
		defer workspacePool.Put(pooled)
		ws = pooled
	}
	jacobiInto(a, u, s, v, ws)
}

// jacobiSVD runs one-sided Jacobi on a (m >= n required by callers),
// allocating fresh outputs; ws may be nil (pooled).
func jacobiSVD(a *mat.Dense, ws *Workspace) SVD {
	u := mat.New(a.Rows, a.Cols)
	s := make([]float64, a.Cols)
	v := mat.New(a.Cols, a.Cols)
	FactorInto(a, u, s, v, ws)
	return SVD{U: u, S: s, V: v}
}

// jacobiInto is the one-sided Jacobi core: orthogonalize the columns of a
// working copy of a, accumulate rotations, and write U, S, V into the
// provided outputs. The load / sweep / extract stages are shared with
// FactorBatch (batch.go), so a batched problem goes through exactly the
// floating-point operations — and produces exactly the bits — of the
// equivalent sequence of FactorInto calls.
func jacobiInto(a *mat.Dense, u *mat.Dense, sOut []float64, vOut *mat.Dense, ws *Workspace) {
	m, n := a.Rows, a.Cols
	ws.reserve(m, n)
	w := ws.wcols
	v := ws.vcols
	jacobiLoad(a, w, v)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if !jacobiSweep(w, v, m, n) {
			break
		}
	}
	jacobiExtract(u, sOut, vOut, w, v, ws.perm, ws.sigma, m, n)
}

// jacobiLoad copies a's columns into the working columns w and resets the
// rotation columns v to the identity.
func jacobiLoad(a *mat.Dense, w, v [][]float64) {
	m, n := a.Rows, a.Cols
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, val := range row {
			w[j][i] = val
		}
	}
	for j := 0; j < n; j++ {
		vc := v[j]
		for i := range vc {
			vc[i] = 0
		}
		vc[j] = 1
	}
}

// jacobiSweep runs one full cyclic sweep of one-sided Jacobi rotations over
// the column pairs of w (m×n, stored as n columns), accumulating rotations
// into v. Reports whether any rotation fired; a false return means the
// columns are numerically orthogonal and the problem has converged.
func jacobiSweep(w, v [][]float64, m, n int) bool {
	rotated := false
	for p := 0; p < n-1; p++ {
		for q := p + 1; q < n; q++ {
			wp, wq := w[p], w[q]
			// Fused pass for the three column moments, four elements per
			// step with two partial chains per moment fed alternately: the
			// six chains hide FMA latency. Each moment's partials combine
			// in a fixed order, so the sweep is deterministic (serial per
			// problem).
			var a0, a1, b0, b1, g0, g1 float64
			i := 0
			for ; i+3 < m; i += 4 {
				wp0, wq0 := wp[i], wq[i]
				wp1, wq1 := wp[i+1], wq[i+1]
				a0 += wp0 * wp0
				a1 += wp1 * wp1
				b0 += wq0 * wq0
				b1 += wq1 * wq1
				g0 += wp0 * wq0
				g1 += wp1 * wq1
				wp2, wq2 := wp[i+2], wq[i+2]
				wp3, wq3 := wp[i+3], wq[i+3]
				a0 += wp2 * wp2
				a1 += wp3 * wp3
				b0 += wq2 * wq2
				b1 += wq3 * wq3
				g0 += wp2 * wq2
				g1 += wp3 * wq3
			}
			for ; i < m; i++ {
				wp0, wq0 := wp[i], wq[i]
				a0 += wp0 * wp0
				b0 += wq0 * wq0
				g0 += wp0 * wq0
			}
			alpha, beta, gamma := a0+a1, b0+b1, g0+g1
			// Standard one-sided Jacobi convergence criterion:
			// skip the rotation when the columns are already
			// numerically orthogonal relative to their norms.
			if math.Abs(gamma) <= jacobiSweepTol*math.Sqrt(alpha*beta) || gamma == 0 {
				continue
			}
			rotated = true
			zeta := (beta - alpha) / (2 * gamma)
			var t float64
			if zeta > 0 {
				t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
			} else {
				t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
			}
			c := 1 / math.Sqrt(1+t*t)
			s := c * t
			// Rotation passes, two elements per step (independent
			// iterations; element-wise arithmetic unchanged).
			i = 0
			for ; i+1 < m; i += 2 {
				tp0, tq0 := wp[i], wq[i]
				tp1, tq1 := wp[i+1], wq[i+1]
				wp[i] = c*tp0 - s*tq0
				wq[i] = s*tp0 + c*tq0
				wp[i+1] = c*tp1 - s*tq1
				wq[i+1] = s*tp1 + c*tq1
			}
			for ; i < m; i++ {
				tp := wp[i]
				wp[i] = c*tp - s*wq[i]
				wq[i] = s*tp + c*wq[i]
			}
			vp, vq := v[p], v[q]
			i = 0
			for ; i+1 < n; i += 2 {
				tp0, tq0 := vp[i], vq[i]
				tp1, tq1 := vp[i+1], vq[i+1]
				vp[i] = c*tp0 - s*tq0
				vq[i] = s*tp0 + c*tq0
				vp[i+1] = c*tp1 - s*tq1
				vq[i+1] = s*tp1 + c*tq1
			}
			for ; i < n; i++ {
				tp := vp[i]
				vp[i] = c*tp - s*vq[i]
				vq[i] = s*tp + c*vq[i]
			}
		}
	}
	return rotated
}

// jacobiExtract turns converged working columns into the thin-SVD outputs:
// singular values are the column norms sorted descending, U the normalized
// columns, V the accumulated rotations, with rank-deficient columns of U
// completed to an orthonormal set.
func jacobiExtract(u *mat.Dense, sOut []float64, vOut *mat.Dense, w, v [][]float64, perm []int, sigma []float64, m, n int) {
	// Singular values = column norms, sorted descending. Stable insertion
	// sort: n is small (rank-sized) and, unlike sort.SliceStable, it does
	// not allocate — this runs once per slice per ALS iteration.
	for j := 0; j < n; j++ {
		sigma[j] = math.Sqrt(sumsq4(w[j]))
		perm[j] = j
	}
	for i := 1; i < n; i++ {
		p := perm[i]
		j := i - 1
		for ; j >= 0 && sigma[perm[j]] < sigma[p]; j-- {
			perm[j+1] = perm[j]
		}
		perm[j+1] = p
	}

	tiny := 0.0
	if n > 0 {
		tiny = sigma[perm[0]] * 1e-14
	}
	var deficient []int
	for jOut, src := range perm {
		sv := sigma[src]
		sOut[jOut] = sv
		wc := w[src]
		if sv > tiny && sv > 0 {
			inv := 1 / sv
			for i := 0; i < m; i++ {
				u.Data[i*n+jOut] = wc[i] * inv
			}
		} else {
			for i := 0; i < m; i++ {
				u.Data[i*n+jOut] = 0
			}
			deficient = append(deficient, jOut)
		}
		vc := v[src]
		for i := 0; i < n; i++ {
			vOut.Data[i*n+jOut] = vc[i]
		}
	}
	// Complete zero columns of U to an orthonormal set so UᵀU = I holds
	// even for rank-deficient input (the thin-SVD contract our callers,
	// in particular the Qk update of PARAFAC2, rely on).
	completeOrthonormal(u, deficient)
}

// completeOrthonormal fills the listed (currently zero) columns of u with
// unit vectors orthogonal to every other column, via Gram-Schmidt against
// the canonical basis.
func completeOrthonormal(u *mat.Dense, cols []int) {
	if len(cols) == 0 {
		return
	}
	m := u.Rows
	next := 0 // next canonical basis vector to try
	for _, j := range cols {
		for ; next < m; next++ {
			// candidate e_next, orthogonalized against all columns
			v := make([]float64, m)
			v[next] = 1
			for c := 0; c < u.Cols; c++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += v[i] * u.At(i, c)
				}
				if dot != 0 {
					for i := 0; i < m; i++ {
						v[i] -= dot * u.At(i, c)
					}
				}
			}
			// Second orthogonalization pass for numerical safety.
			for c := 0; c < u.Cols; c++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += v[i] * u.At(i, c)
				}
				if dot != 0 {
					for i := 0; i < m; i++ {
						v[i] -= dot * u.At(i, c)
					}
				}
			}
			norm := mat.Norm2(v)
			if norm > 0.5 {
				inv := 1 / norm
				for i := 0; i < m; i++ {
					u.Set(i, j, v[i]*inv)
				}
				next++
				break
			}
		}
	}
}

// Truncated computes the rank-r truncated SVD of a (keeps the r largest
// singular triplets). If r >= min(m,n) it is the full thin SVD.
func Truncated(a *mat.Dense, r int) SVD { return TruncatedWith(a, r, nil) }

// TruncatedWith is Truncated with the heavy multiplies run on rn (nil means
// serial).
func TruncatedWith(a *mat.Dense, r int, rn mat.Runner) SVD {
	return TruncatedWS(a, r, rn, nil)
}

// TruncatedWS is TruncatedWith with an explicit Jacobi workspace (see
// FactorWS).
func TruncatedWS(a *mat.Dense, r int, rn mat.Runner, ws *Workspace) SVD {
	full := FactorWS(a, rn, ws)
	k := len(full.S)
	if r >= k {
		return full
	}
	return SVD{
		U: full.U.SubMatrix(0, 0, full.U.Rows, r),
		S: append([]float64(nil), full.S[:r]...),
		V: full.V.SubMatrix(0, 0, full.V.Rows, r),
	}
}

// Reconstruct returns U diag(S) Vᵀ.
func (d SVD) Reconstruct() *mat.Dense {
	return d.U.ScaleColumns(d.S).MulT(d.V)
}

// PInv returns the Moore-Penrose pseudoinverse of a, computed via the SVD
// with singular values below rcond·σ₁ treated as zero.
func PInv(a *mat.Dense) *mat.Dense {
	const rcond = 1e-12
	d := Factor(a)
	cutoff := 0.0
	if len(d.S) > 0 {
		cutoff = rcond * d.S[0]
	}
	inv := make([]float64, len(d.S))
	for i, s := range d.S {
		if s > cutoff {
			inv[i] = 1 / s
		}
	}
	// A⁺ = V diag(1/s) Uᵀ
	return d.V.ScaleColumns(inv).MulT(d.U)
}

// SolveSPD solves the small linear system G X = B for X where G is symmetric
// positive semi-definite (the Gram matrices of ALS updates), falling back to
// the pseudoinverse when G is singular. Used as B · (G)⁺ by callers that
// right-multiply.
func SolveSPD(g, b *mat.Dense) *mat.Dense {
	return PInv(g).Mul(b)
}
