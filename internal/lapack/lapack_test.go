package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestQRReconstruct(t *testing.T) {
	g := rng.New(1)
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {50, 12}, {3, 1}, {128, 16}} {
		a := mat.Gaussian(g, dims[0], dims[1])
		qr := QRFactor(a)
		if !qr.Q.IsOrthonormalCols(1e-10) {
			t.Fatalf("%v: Q not orthonormal", dims)
		}
		if !qr.Q.Mul(qr.R).EqualApprox(a, 1e-10) {
			t.Fatalf("%v: QR != A", dims)
		}
		// R upper triangular.
		for i := 1; i < qr.R.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(qr.R.At(i, j)) > 1e-12 {
					t.Fatalf("%v: R not upper triangular at (%d,%d)", dims, i, j)
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still reconstruct.
	g := rng.New(2)
	a := mat.Gaussian(g, 10, 3)
	a.SetCol(2, a.Col(1))
	qr := QRFactor(a)
	if !qr.Q.Mul(qr.R).EqualApprox(a, 1e-10) {
		t.Fatal("rank-deficient QR != A")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := mat.New(6, 3)
	qr := QRFactor(a)
	if !qr.Q.Mul(qr.R).EqualApprox(a, 1e-12) {
		t.Fatal("QR of zero matrix != 0")
	}
}

func TestQRPanicsOnWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	QRFactor(mat.New(2, 5))
}

func TestSVDReconstructSquare(t *testing.T) {
	g := rng.New(3)
	a := mat.Gaussian(g, 12, 12)
	d := Factor(a)
	checkSVD(t, a, d, 1e-9)
}

func TestSVDReconstructTall(t *testing.T) {
	g := rng.New(4)
	a := mat.Gaussian(g, 100, 8)
	d := Factor(a)
	checkSVD(t, a, d, 1e-9)
}

func TestSVDReconstructWide(t *testing.T) {
	g := rng.New(5)
	a := mat.Gaussian(g, 7, 40)
	d := Factor(a)
	checkSVD(t, a, d, 1e-9)
}

func checkSVD(t *testing.T, a *mat.Dense, d SVD, tol float64) {
	t.Helper()
	if !d.U.IsOrthonormalCols(1e-8) {
		t.Fatal("U not orthonormal")
	}
	if !d.V.IsOrthonormalCols(1e-8) {
		t.Fatal("V not orthonormal")
	}
	for i := 1; i < len(d.S); i++ {
		if d.S[i] > d.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", d.S)
		}
	}
	for _, s := range d.S {
		if s < 0 {
			t.Fatalf("negative singular value: %v", d.S)
		}
	}
	rec := d.Reconstruct()
	if rel := rec.FrobDist(a) / (a.FrobNorm() + 1e-300); rel > tol {
		t.Fatalf("reconstruction relative error %g > %g", rel, tol)
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := mat.Diag([]float64{3, 1, 2})
	d := Factor(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(d.S[i]-want[i]) > 1e-12 {
			t.Fatalf("S=%v want %v", d.S, want)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Outer product: rank 1.
	x := mat.NewFromData(4, 1, []float64{1, 2, 3, 4})
	y := mat.NewFromData(1, 3, []float64{1, 1, 1})
	a := x.Mul(y)
	d := Factor(a)
	if d.S[0] < 1 {
		t.Fatal("leading singular value too small")
	}
	for _, s := range d.S[1:] {
		if s > 1e-10 {
			t.Fatalf("rank-1 matrix has extra singular values: %v", d.S)
		}
	}
	checkSVD(t, a, d, 1e-10)
}

func TestSVDZeroMatrix(t *testing.T) {
	a := mat.New(5, 3)
	d := Factor(a)
	for _, s := range d.S {
		if s != 0 {
			t.Fatalf("zero matrix S=%v", d.S)
		}
	}
}

func TestTruncatedSVDIsBestLowRank(t *testing.T) {
	// Eckart-Young: the rank-r truncation must beat random rank-r
	// candidates in Frobenius error.
	g := rng.New(6)
	a := mat.Gaussian(g, 20, 15)
	r := 5
	d := Truncated(a, r)
	best := d.Reconstruct().FrobDist(a)
	for trial := 0; trial < 10; trial++ {
		u := mat.Gaussian(g, 20, r)
		v := mat.Gaussian(g, r, 15)
		cand := u.Mul(v)
		// Scale candidate optimally: alpha = <A, C>/<C, C>.
		num, den := 0.0, 0.0
		for i := range cand.Data {
			num += a.Data[i] * cand.Data[i]
			den += cand.Data[i] * cand.Data[i]
		}
		if den > 0 {
			cand.ScaleInPlace(num / den)
		}
		if cand.FrobDist(a) < best-1e-9 {
			t.Fatal("random rank-r candidate beat truncated SVD")
		}
	}
}

func TestTruncatedRankClamps(t *testing.T) {
	g := rng.New(7)
	a := mat.Gaussian(g, 6, 4)
	d := Truncated(a, 100)
	if len(d.S) != 4 {
		t.Fatalf("truncation beyond full rank: got %d singular values", len(d.S))
	}
	checkSVD(t, a, d, 1e-9)
}

func TestTruncatedCapturesEnergy(t *testing.T) {
	// Construct an exactly rank-3 matrix; truncation at 3 must be exact.
	g := rng.New(8)
	u := mat.Gaussian(g, 30, 3)
	v := mat.Gaussian(g, 3, 12)
	a := u.Mul(v)
	d := Truncated(a, 3)
	if rel := d.Reconstruct().FrobDist(a) / a.FrobNorm(); rel > 1e-9 {
		t.Fatalf("rank-3 truncation of rank-3 matrix lossy: %g", rel)
	}
}

func TestPInvProperties(t *testing.T) {
	g := rng.New(9)
	for _, dims := range [][2]int{{6, 6}, {10, 4}, {4, 10}} {
		a := mat.Gaussian(g, dims[0], dims[1])
		p := PInv(a)
		if p.Rows != a.Cols || p.Cols != a.Rows {
			t.Fatalf("PInv shape %dx%d", p.Rows, p.Cols)
		}
		// Penrose conditions 1 and 2.
		if !a.Mul(p).Mul(a).EqualApprox(a, 1e-8) {
			t.Fatalf("%v: A A⁺ A != A", dims)
		}
		if !p.Mul(a).Mul(p).EqualApprox(p, 1e-8) {
			t.Fatalf("%v: A⁺ A A⁺ != A⁺", dims)
		}
	}
}

func TestPInvSingular(t *testing.T) {
	// Singular matrix: pinv must not blow up.
	a := mat.NewFromData(2, 2, []float64{1, 2, 2, 4})
	p := PInv(a)
	if !a.Mul(p).Mul(a).EqualApprox(a, 1e-10) {
		t.Fatal("A A⁺ A != A for singular A")
	}
	if p.MaxAbs() > 1e6 {
		t.Fatal("pseudoinverse exploded on singular matrix")
	}
}

func TestPInvIdentity(t *testing.T) {
	p := PInv(mat.Identity(5))
	if !p.EqualApprox(mat.Identity(5), 1e-12) {
		t.Fatal("pinv(I) != I")
	}
}

func TestSolveSPD(t *testing.T) {
	g := rng.New(10)
	x := mat.Gaussian(g, 5, 5)
	gram := x.TMul(x) // SPD
	b := mat.Gaussian(g, 5, 3)
	sol := SolveSPD(gram, b)
	if !gram.Mul(sol).EqualApprox(b, 1e-7) {
		t.Fatal("SolveSPD residual too large")
	}
}

func TestOrthonormalBasisTall(t *testing.T) {
	g := rng.New(11)
	a := mat.Gaussian(g, 40, 6)
	q := OrthonormalBasis(a)
	if !q.IsOrthonormalCols(1e-10) {
		t.Fatal("basis not orthonormal")
	}
	// Column space preserved: a = q qᵀ a.
	proj := q.Mul(q.TMul(a))
	if !proj.EqualApprox(a, 1e-9) {
		t.Fatal("basis does not span columns of a")
	}
}

func TestQuickSVDReconstruct(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		r := 2 + g.Intn(20)
		c := 2 + g.Intn(20)
		a := mat.Gaussian(g, r, c)
		d := Factor(a)
		rel := d.Reconstruct().FrobDist(a) / (a.FrobNorm() + 1e-300)
		return rel < 1e-8 && d.U.IsOrthonormalCols(1e-7) && d.V.IsOrthonormalCols(1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQRReconstruct(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		c := 1 + g.Intn(12)
		r := c + g.Intn(30)
		a := mat.Gaussian(g, r, c)
		qr := QRFactor(a)
		return qr.Q.Mul(qr.R).EqualApprox(a, 1e-9) && qr.Q.IsOrthonormalCols(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSVDSingularValuesMatchGram(t *testing.T) {
	// σᵢ² are the eigenvalues of AᵀA; check trace identity:
	// Σ σᵢ² = ‖A‖_F².
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := mat.Gaussian(g, 2+g.Intn(15), 2+g.Intn(15))
		d := Factor(a)
		var sum float64
		for _, s := range d.S {
			sum += s * s
		}
		return math.Abs(sum-a.FrobNorm2()) < 1e-8*(1+a.FrobNorm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	g := rng.New(20)
	x := mat.Gaussian(g, 8, 8)
	a := x.TMul(x) // SPD with probability 1
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+0.1) // guarantee definiteness
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !l.MulT(l).EqualApprox(a, 1e-9) {
		t.Fatal("L Lᵀ != A")
	}
	// L lower triangular
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("L not lower triangular")
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mat.NewFromData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
	if _, err := Cholesky(mat.New(3, 3)); err == nil {
		t.Fatal("expected failure on zero matrix")
	}
	if _, err := Cholesky(mat.New(2, 3)); err == nil {
		t.Fatal("expected failure on non-square")
	}
}

func TestSolveCholesky(t *testing.T) {
	g := rng.New(21)
	x := mat.Gaussian(g, 6, 6)
	a := x.TMul(x).Add(mat.Identity(6))
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := mat.Gaussian(g, 6, 4)
	sol := SolveCholesky(l, b)
	if !a.Mul(sol).EqualApprox(b, 1e-8) {
		t.Fatal("Cholesky solve residual too large")
	}
}

func TestSolveGramMatchesPInv(t *testing.T) {
	g := rng.New(22)
	x := mat.Gaussian(g, 7, 5)
	gram := x.TMul(x) // SPD 5x5
	b := mat.Gaussian(g, 3, 5)
	fast := SolveGram(b, gram)
	slow := b.Mul(PInv(gram))
	if !fast.EqualApprox(slow, 1e-7) {
		t.Fatal("SolveGram disagrees with pseudoinverse on SPD input")
	}
}

func TestSolveGramSingularFallback(t *testing.T) {
	// Singular Gram: must fall back to the pseudoinverse, not error.
	gram := mat.NewFromData(2, 2, []float64{1, 1, 1, 1})
	b := mat.NewFromData(1, 2, []float64{2, 2})
	sol := SolveGram(b, gram)
	// minimum-norm solution of x G = b is [1, 1].
	if math.Abs(sol.At(0, 0)-1) > 1e-9 || math.Abs(sol.At(0, 1)-1) > 1e-9 {
		t.Fatalf("fallback solution %v", sol)
	}
}

func TestQuickCholeskySolve(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 2 + g.Intn(10)
		x := mat.Gaussian(g, n+2, n)
		a := x.TMul(x)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.5)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		b := mat.Gaussian(g, n, 3)
		return a.Mul(SolveCholesky(l, b)).EqualApprox(b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
