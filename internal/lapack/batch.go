package lapack

import "repro/internal/mat"

// BatchWorkspace owns the scratch for FactorBatch: one slab backing the
// working and rotation columns of every problem in the batch, plus the
// per-problem permutation/norm scratch and convergence masks. Reusing a
// BatchWorkspace across calls makes steady-state FactorBatch allocation-free
// apart from the Runner's own scheduling overhead (one parallel region per
// call). A BatchWorkspace is not safe for concurrent use by multiple
// FactorBatch calls.
type BatchWorkspace struct {
	buf   []float64
	wcols [][][]float64 // wcols[p][j]: working column j of problem p
	vcols [][][]float64 // vcols[p][j]: rotation column j of problem p
	perm  []int
	perms [][]int
	sig   []float64
	sigs  [][]float64
	done  []bool // problem converged; drops out of later sweeps
}

// reserve sizes the workspace for the given batch of problems.
func (ws *BatchWorkspace) reserve(as []*mat.Dense) {
	k := len(as)
	need, permNeed := 0, 0
	for _, a := range as {
		m, n := a.Rows, a.Cols
		need += n * (m + n)
		permNeed += n
	}
	if cap(ws.buf) < need {
		ws.buf = make([]float64, need)
	}
	ws.buf = ws.buf[:need]
	if cap(ws.perm) < permNeed {
		ws.perm = make([]int, permNeed)
		ws.sig = make([]float64, permNeed)
	}
	ws.perm = ws.perm[:permNeed]
	ws.sig = ws.sig[:permNeed]
	if cap(ws.wcols) < k {
		ws.wcols = make([][][]float64, k)
		ws.vcols = make([][][]float64, k)
		ws.perms = make([][]int, k)
		ws.sigs = make([][]float64, k)
		ws.done = make([]bool, k)
	}
	ws.wcols = ws.wcols[:k]
	ws.vcols = ws.vcols[:k]
	ws.perms = ws.perms[:k]
	ws.sigs = ws.sigs[:k]
	ws.done = ws.done[:k]
	off, poff := 0, 0
	for p, a := range as {
		m, n := a.Rows, a.Cols
		if cap(ws.wcols[p]) < n {
			ws.wcols[p] = make([][]float64, n)
			ws.vcols[p] = make([][]float64, n)
		}
		ws.wcols[p] = ws.wcols[p][:n]
		ws.vcols[p] = ws.vcols[p][:n]
		for j := 0; j < n; j++ {
			ws.wcols[p][j] = ws.buf[off+j*m : off+(j+1)*m]
			ws.vcols[p][j] = ws.buf[off+n*m+j*n : off+n*m+(j+1)*n]
		}
		off += n * (m + n)
		ws.perms[p] = ws.perm[poff : poff+n]
		ws.sigs[p] = ws.sig[poff : poff+n]
		poff += n
		ws.done[p] = false
	}
}

// FactorBatch computes the thin SVD of every problem in the batch directly
// into the preallocated outputs: as[p] = us[p] · diag(ss[p]) · vs[p]ᵀ with
// the same shape contract as FactorInto (as[p].Rows ≥ as[p].Cols; us[p]
// matches as[p]; ss[p] has length as[p].Cols; vs[p] is square of size
// as[p].Cols). as is not modified. ws may be nil, in which case a fresh
// workspace is allocated; hot loops should hold one BatchWorkspace and pass
// it to every call.
//
// The problems are partitioned across rn (nil means serial) in one parallel
// region. Each partition advances its problems in fused lockstep sweeps:
// every Jacobi sweep makes one pass over the partition's cache-resident
// share of the slab, and a per-problem convergence mask drops finished
// problems out of later sweeps. Parallelism is only ever across problems —
// each problem's rotations run in its FactorInto order via the shared
// load/sweep/extract core — so for every problem p the outputs are
// bit-identical to a sequential FactorInto(as[p], ...) call, for every
// Runner width including none.
//
//repro:noalloc
func FactorBatch(as, us []*mat.Dense, ss [][]float64, vs []*mat.Dense, rn mat.Runner, ws *BatchWorkspace) {
	k := len(as)
	if len(us) != k || len(ss) != k || len(vs) != k {
		panic("lapack: FactorBatch batch length mismatch")
	}
	if k == 0 {
		return
	}
	for p, a := range as {
		m, n := a.Rows, a.Cols
		if m < n {
			panic("lapack: FactorBatch requires rows >= cols")
		}
		if us[p].Rows != m || us[p].Cols != n || len(ss[p]) != n || vs[p].Rows != n || vs[p].Cols != n {
			panic("lapack: FactorBatch output shape mismatch")
		}
	}
	if ws == nil {
		ws = new(BatchWorkspace) //repro:allow(noalloc) cold nil-workspace fallback; hot loops pass a warmed ws and never reach this
	}
	ws.reserve(as)

	if rn == nil || rn.Workers() <= 1 {
		// Direct method call: the serial path stays allocation-free with a
		// warmed workspace (a closure here would heap-allocate per call).
		ws.runPartition(as, us, ss, vs, 0, k)
		return
	}
	//repro:allow(noalloc) one closure per parallel batch call, amortized over the whole fused sweep; the serial path above avoids it
	rn.ParallelRanges(k, func(lo, hi int) {
		ws.runPartition(as, us, ss, vs, lo, hi)
	})
}

// runPartition advances problems [lo, hi) from load through fused lockstep
// sweeps to extraction. Exactly one worker owns a partition, so the shared
// workspace slices are touched without synchronization.
//
//repro:noalloc
func (ws *BatchWorkspace) runPartition(as, us []*mat.Dense, ss [][]float64, vs []*mat.Dense, lo, hi int) {
	for p := lo; p < hi; p++ {
		jacobiLoad(as[p], ws.wcols[p], ws.vcols[p])
	}
	active := hi - lo
	for sweep := 0; sweep < maxJacobiSweeps && active > 0; sweep++ {
		for p := lo; p < hi; p++ {
			if ws.done[p] {
				continue
			}
			if !jacobiSweep(ws.wcols[p], ws.vcols[p], as[p].Rows, as[p].Cols) {
				ws.done[p] = true
				active--
			}
		}
	}
	for p := lo; p < hi; p++ {
		jacobiExtract(us[p], ss[p], vs[p], ws.wcols[p], ws.vcols[p], ws.perms[p], ws.sigs[p], as[p].Rows, as[p].Cols)
	}
}
