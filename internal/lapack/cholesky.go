package lapack

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input is singular
// or indefinite to working precision.
var ErrNotPositiveDefinite = errors.New("lapack: matrix not positive definite")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite A. The Gram matrices of well-conditioned ALS
// updates are SPD, making this the fast path for the normal-equation solves
// (a third of the flops of an SVD-based pseudoinverse and no iteration).
func Cholesky(a *mat.Dense) (*mat.Dense, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("lapack: Cholesky of non-square matrix")
	}
	l := mat.New(n, n)
	for j := 0; j < n; j++ {
		// diagonal
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// SolveCholesky solves A X = B given the Cholesky factor L of A, via two
// triangular solves. B is n×m; the result is n×m.
func SolveCholesky(l, b *mat.Dense) *mat.Dense {
	n := l.Rows
	m := b.Cols
	// Forward substitution: L Y = B.
	y := b.Clone()
	for i := 0; i < n; i++ {
		li := l.Row(i)
		yi := y.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			yk := y.Row(k)
			for c := 0; c < m; c++ {
				yi[c] -= lik * yk[c]
			}
		}
		inv := 1 / li[i]
		for c := 0; c < m; c++ {
			yi[c] *= inv
		}
	}
	// Back substitution: Lᵀ X = Y.
	x := y
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			if lki == 0 {
				continue
			}
			xk := x.Row(k)
			for c := 0; c < m; c++ {
				xi[c] -= lki * xk[c]
			}
		}
		inv := 1 / l.At(i, i)
		for c := 0; c < m; c++ {
			xi[c] *= inv
		}
	}
	return x
}

// SolveGram solves the right-division X = B · G⁻¹ that every ALS update
// needs (B is m×n, G is an n×n Gram matrix): it tries Cholesky first and
// falls back to the SVD pseudoinverse when G is singular, matching the †
// (Moore-Penrose) semantics of the paper's update rules.
func SolveGram(b, g *mat.Dense) *mat.Dense {
	l, err := Cholesky(g)
	if err != nil {
		return b.Mul(PInv(g))
	}
	// X Gᵀ = B with G symmetric: solve G Xᵀ = Bᵀ then transpose.
	return SolveCholesky(l, b.T()).T()
}
