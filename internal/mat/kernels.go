package mat

import "math"

// Runner schedules contiguous index ranges onto a worker pool. It is the
// only parallelism hook the kernels have: there is no package-global worker
// count. *compute.Pool implements Runner; a nil Runner (or a nil *Pool) runs
// serially on the calling goroutine.
type Runner interface {
	// Workers reports the maximum concurrency the runner provides.
	Workers() int
	// ParallelRanges splits [0, n) into at most Workers() contiguous
	// chunks and runs fn on each, returning when all chunks are done.
	ParallelRanges(n int, fn func(lo, hi int))
}

// runnerWidth returns the concurrency of rn, treating nil as serial.
func runnerWidth(rn Runner) int {
	if rn == nil {
		return 1
	}
	return rn.Workers()
}

// parRowThreshold is the minimum row count before a kernel fans out; below
// it the goroutine handoff costs more than the arithmetic.
const parRowThreshold = 64

// Mul returns m * b. Panics on inner-dimension mismatch. Serial; pass a
// Runner via MulInto to parallelize.
func (m *Dense) Mul(b *Dense) *Dense {
	return m.MulInto(New(m.Rows, b.Cols), b, nil)
}

// MulInto computes out = m * b and returns out. out must be m.Rows×b.Cols
// and must not alias m or b. rn may be nil (serial).
//
// Shapes large enough for the register-blocked micro-kernel (see tiledSizing
// in tiled.go) run blocked — two output rows per pass with the k loop
// unrolled — while degenerate shapes run the reference kernel, which streams
// rows of b in blocks of four per output row (classic i-k-j ordering with the
// k loop unrolled). Both keep every access pattern sequential and accumulate
// each output element in increasing k order, so results are bitwise identical
// to the naive kernel and independent of the dispatch decision.
func (m *Dense) MulInto(out, b *Dense, rn Runner) *Dense {
	if m.Cols != b.Rows {
		panic("mat: Mul inner dimension mismatch")
	}
	if out.Rows != m.Rows || out.Cols != b.Cols {
		panic("mat: MulInto shape mismatch")
	}
	kernel := mulRange
	if useTiledMul(m.Rows, b.Cols, m.Cols) {
		kernel = mulTiledRange
	}
	// The serial fast path calls the range kernel directly: no closure is
	// allocated, which matters for the R×R multiplies of the ALS hot loop.
	if rn == nil || m.Rows < parRowThreshold {
		kernel(out, m, b, 0, m.Rows)
		return out
	}
	rn.ParallelRanges(m.Rows, func(lo, hi int) { kernel(out, m, b, lo, hi) })
	return out
}

// mulRange computes rows [lo, hi) of out = m * b with the k loop unrolled by
// four (ordered adds — same rounding as the naive i-k-j kernel).
func mulRange(out, m, b *Dense, lo, hi int) {
	n := b.Cols
	kk := m.Cols
	for i := lo; i < hi; i++ {
		arow := m.Data[i*kk : (i+1)*kk]
		orow := out.Data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		k := 0
		for ; k+3 < kk; k += 4 {
			av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			b0 := b.Data[k*n : (k+1)*n]
			b1 := b.Data[(k+1)*n : (k+2)*n]
			b2 := b.Data[(k+2)*n : (k+3)*n]
			b3 := b.Data[(k+3)*n : (k+4)*n]
			for j, bv := range b0 {
				// Four ordered adds: same rounding as four
				// separate k iterations of the naive kernel.
				s := orow[j]
				s += av0 * bv
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				orow[j] = s
			}
		}
		for ; k < kk; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// TMul returns mᵀ * b without materializing the transpose. Serial; pass a
// Runner via TMulInto to parallelize.
func (m *Dense) TMul(b *Dense) *Dense {
	return m.TMulInto(New(m.Cols, b.Cols), b, nil)
}

// tmulChunk is the fixed row-block size of the TMul partial sums. Fixing it
// (instead of deriving it from the worker count) makes the accumulation
// order — and therefore the result, bit for bit — independent of the pool
// width, including serial execution.
const tmulChunk = 2 * parRowThreshold

// TMulInto computes out = mᵀ * b and returns out. out must be m.Cols×b.Cols
// and must not alias m or b. rn may be nil (serial).
//
// Both inputs stream row by row over the shared inner dimension. Tall
// inputs accumulate into fixed-size row-block partials that are reduced in
// block order, so the result is identical for every Runner width.
func (m *Dense) TMulInto(out, b *Dense, rn Runner) *Dense {
	if m.Rows != b.Rows {
		panic("mat: TMul dimension mismatch")
	}
	if out.Rows != m.Cols || out.Cols != b.Cols {
		panic("mat: TMulInto shape mismatch")
	}
	n := b.Cols
	kernel := tmulRange
	if useTiledTMul(m.Cols, n, m.Rows) {
		kernel = tmulTiledRange
	}
	if m.Rows <= tmulChunk {
		out.Zero()
		kernel(out, m, b, 0, m.Rows)
		return out
	}
	numChunks := (m.Rows + tmulChunk - 1) / tmulChunk
	if runnerWidth(rn) <= 1 {
		// Serial: one reused partial, reduced in the same block order as
		// the parallel path.
		out.Zero()
		p := New(m.Cols, n)
		for c := 0; c < numChunks; c++ {
			lo := c * tmulChunk
			hi := lo + tmulChunk
			if hi > m.Rows {
				hi = m.Rows
			}
			p.Zero()
			kernel(p, m, b, lo, hi)
			out.AddInPlace(p)
		}
		return out
	}
	partials := make([]*Dense, numChunks)
	rn.ParallelRanges(numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * tmulChunk
			hi := lo + tmulChunk
			if hi > m.Rows {
				hi = m.Rows
			}
			p := New(m.Cols, n)
			kernel(p, m, b, lo, hi)
			partials[c] = p
		}
	})
	out.Zero()
	for _, p := range partials {
		out.AddInPlace(p)
	}
	return out
}

// tmulRange accumulates mᵀ[:, lo:hi] * b[lo:hi, :] into out, with the k loop
// unrolled by four (ordered adds — same rounding as the naive kernel).
func tmulRange(out, m, b *Dense, lo, hi int) {
	n := b.Cols
	c := m.Cols
	k := lo
	for ; k+3 < hi; k += 4 {
		a0 := m.Data[k*c : (k+1)*c]
		a1 := m.Data[(k+1)*c : (k+2)*c]
		a2 := m.Data[(k+2)*c : (k+3)*c]
		a3 := m.Data[(k+3)*c : (k+4)*c]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for i := 0; i < c; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range b0 {
				s := orow[j]
				s += av0 * bv
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				orow[j] = s
			}
		}
	}
	for ; k < hi; k++ {
		arow := m.Data[k*c : (k+1)*c]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns m * bᵀ without materializing the transpose. Serial; pass a
// Runner via MulTInto to parallelize.
func (m *Dense) MulT(b *Dense) *Dense {
	return m.MulTInto(New(m.Rows, b.Rows), b, nil)
}

// MulTInto computes out = m * bᵀ and returns out. out must be m.Rows×b.Rows
// and must not alias m or b. rn may be nil (serial).
//
// Each output element is a row-row dot product; four b rows are processed
// per pass so each load of the m row feeds four accumulators.
func (m *Dense) MulTInto(out, b *Dense, rn Runner) *Dense {
	if m.Cols != b.Cols {
		panic("mat: MulT dimension mismatch")
	}
	if out.Rows != m.Rows || out.Cols != b.Rows {
		panic("mat: MulTInto shape mismatch")
	}
	kernel := mulTRange
	if useTiledMulT(m.Rows, b.Rows, m.Cols) {
		kernel = mulTTiledRange
	}
	if rn == nil || m.Rows < parRowThreshold {
		kernel(out, m, b, 0, m.Rows)
		return out
	}
	rn.ParallelRanges(m.Rows, func(lo, hi int) { kernel(out, m, b, lo, hi) })
	return out
}

// mulTRange computes rows [lo, hi) of out = m * bᵀ, four b rows per pass so
// each load of the m row feeds four accumulators.
func mulTRange(out, m, b *Dense, lo, hi int) {
	c := m.Cols
	br := b.Rows
	for i := lo; i < hi; i++ {
		arow := m.Data[i*c : (i+1)*c]
		orow := out.Data[i*br : (i+1)*br]
		j := 0
		for ; j+3 < br; j += 4 {
			b0 := b.Data[j*c : (j+1)*c]
			b1 := b.Data[(j+1)*c : (j+2)*c]
			b2 := b.Data[(j+2)*c : (j+3)*c]
			b3 := b.Data[(j+3)*c : (j+4)*c]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < br; j++ {
			brow := b.Data[j*c : (j+1)*c]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
}

// Gram returns mᵀm, exploiting symmetry: only the upper triangle is
// computed, then mirrored. Accumulation streams the rows of m in order —
// the same order as serial TMul(m, m) for inputs up to tmulChunk rows
// (beyond that TMul switches to block-partial reduction, so the two can
// differ at the ULP level).
func (m *Dense) Gram() *Dense {
	return m.GramInto(New(m.Cols, m.Cols))
}

// GramInto computes out = mᵀm and returns out. out must be square of size
// m.Cols and must not alias m.
func (m *Dense) GramInto(out *Dense) *Dense {
	n := m.Cols
	if out.Rows != n || out.Cols != n {
		panic("mat: GramInto shape mismatch")
	}
	out.Zero()
	if useTiledGram(m.Rows) {
		gramTiledUpper(out, m, 0, m.Rows)
	} else {
		for k := 0; k < m.Rows; k++ {
			arow := m.Data[k*n : (k+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j := i; j < n; j++ {
					orow[j] += av * arow[j]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Data[j*n+i] = out.Data[i*n+j]
		}
	}
	return out
}

// MulVec returns m * x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.Rows), x)
}

// MulVecInto computes dst = m * x and returns dst. len(dst) must be m.Rows.
func (m *Dense) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	if len(dst) != m.Rows {
		panic("mat: MulVecInto length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for k, v := range row {
			sum += v * x[k]
		}
		dst[i] = sum
	}
	return dst
}

// TMulVec returns mᵀ * x.
func (m *Dense) TMulVec(x []float64) []float64 {
	return m.TMulVecInto(make([]float64, m.Cols), x)
}

// TMulVecInto computes dst = mᵀ * x and returns dst. len(dst) must be
// m.Cols.
func (m *Dense) TMulVecInto(dst, x []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: TMulVec dimension mismatch")
	}
	if len(dst) != m.Cols {
		panic("mat: TMulVecInto length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k, v := range row {
			dst[k] += v * xi
		}
	}
	return dst
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var sum float64
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}
