// Package mat implements the dense linear-algebra substrate the rest of the
// repository is built on: a row-major matrix type with the BLAS-like kernels
// (multiply, transpose-multiply, Kronecker, Khatri-Rao, Hadamard, vec, norms)
// that PARAFAC2 decomposition needs.
//
// Everything is float64 and stdlib-only. Hot loops operate on row slices so
// the compiler can hoist bounds checks; the multiply kernels split work over
// a caller-supplied number of goroutines.
//
// # Kernel tiling and dispatch
//
// Each product (MulInto, TMulInto, MulTInto, GramInto) has a reference
// kernel and a register-blocked kernel (tiled.go). Dispatch between them is
// decided by the single sizing table tiledSizing from operand shapes alone —
// never from the Runner — so a given multiply always runs the same kernel
// whether serial or parallel.
//
// # Determinism rule
//
// Every kernel — reference or blocked, any Runner width, any ParallelRanges
// split — accumulates each output element with exactly one ordered add per
// inner index, in strictly increasing index order. Results are therefore
// bitwise identical across thread counts and across the reference/blocked
// boundary on finite inputs; tiled_test.go pins both properties. Changes to
// a kernel's accumulation order are not allowed here (contrast with
// package lapack, whose policy permits serial reorderings).
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix. Element (i, j) lives at Data[i*Cols+j].
// Methods with a value receiver never mutate the matrix unless documented.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromData wraps data (len must be r*c) without copying.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// NewFromFunc builds an r-by-c matrix with element (i,j) = f(i,j).
func NewFromFunc(r, c int, f func(i, j int) float64) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		row := m.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			row[j] = f(i, j)
		}
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// Diagonal extracts the main diagonal of m.
func (m *Dense) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.Data[i*m.Cols+i]
	}
	return d
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// SetCol overwrites column j with v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// CopyFrom overwrites m with src; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SubMatrix copies the block [r0, r0+nr) x [c0, c0+nc) into a new matrix.
func (m *Dense) SubMatrix(r0, c0, nr, nc int) *Dense {
	if r0 < 0 || c0 < 0 || r0+nr > m.Rows || c0+nc > m.Cols {
		panic("mat: SubMatrix out of range")
	}
	out := New(nr, nc)
	for i := 0; i < nr; i++ {
		copy(out.Row(i), m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+nc])
	}
	return out
}

// RowBlock returns rows [r0, r1) as a copy.
func (m *Dense) RowBlock(r0, r1 int) *Dense {
	return m.SubMatrix(r0, 0, r1-r0, m.Cols)
}

// RowView returns rows [r0, r1) as a view sharing m's backing array (no
// copy); writes through the view are writes into m. Row-major layout makes
// any contiguous row block a valid matrix — this is what lets stage-1
// sharding sketch a tall slice shard by shard without duplicating it.
func (m *Dense) RowView(r0, r1 int) *Dense {
	if r0 < 0 || r1 < r0 || r1 > m.Rows {
		panic("mat: RowView out of range")
	}
	return &Dense{Rows: r1 - r0, Cols: m.Cols, Data: m.Data[r0*m.Cols : r1*m.Cols]}
}

// SetSubMatrix writes src into m starting at (r0, c0).
func (m *Dense) SetSubMatrix(r0, c0 int, src *Dense) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic("mat: SetSubMatrix out of range")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
}

// T returns the transpose as a new matrix (blocked for cache friendliness).
func (m *Dense) T() *Dense {
	return m.TInto(New(m.Cols, m.Rows))
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	checkSameShape("Add", m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b.
func (m *Dense) Sub(b *Dense) *Dense {
	checkSameShape("Sub", m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// AddInPlace sets m += b and returns m.
func (m *Dense) AddInPlace(b *Dense) *Dense {
	checkSameShape("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// AddScaledInPlace sets m += alpha*b and returns m.
func (m *Dense) AddScaledInPlace(alpha float64, b *Dense) *Dense {
	checkSameShape("AddScaledInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += alpha * v
	}
	return m
}

// Scale returns alpha * m.
func (m *Dense) Scale(alpha float64) *Dense {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= alpha
	}
	return out
}

// ScaleInPlace sets m *= alpha and returns m.
func (m *Dense) ScaleInPlace(alpha float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// Hadamard returns the element-wise product m ∗ b.
func (m *Dense) Hadamard(b *Dense) *Dense {
	checkSameShape("Hadamard", m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// ScaleColumns returns m with column j multiplied by s[j]. This is the
// common "multiply by a diagonal matrix on the right" operation: m * diag(s).
func (m *Dense) ScaleColumns(s []float64) *Dense {
	if len(s) != m.Cols {
		panic("mat: ScaleColumns length mismatch")
	}
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, sv := range s {
			row[j] *= sv
		}
	}
	return out
}

// ScaleColumnsInto computes out = m * diag(s) and returns out. out must
// match m's shape; aliasing out with m is allowed.
func (m *Dense) ScaleColumnsInto(out *Dense, s []float64) *Dense {
	if len(s) != m.Cols {
		panic("mat: ScaleColumnsInto length mismatch")
	}
	checkSameShape("ScaleColumnsInto", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, sv := range s {
			dst[j] = src[j] * sv
		}
	}
	return out
}

// ScaleRows returns diag(s) * m.
func (m *Dense) ScaleRows(s []float64) *Dense {
	if len(s) != m.Rows {
		panic("mat: ScaleRows length mismatch")
	}
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		sv := s[i]
		for j := range row {
			row[j] *= sv
		}
	}
	return out
}

// ScaleRowsInto computes out = diag(s) * m and returns out. out must match
// m's shape; aliasing out with m is allowed.
func (m *Dense) ScaleRowsInto(out *Dense, s []float64) *Dense {
	if len(s) != m.Rows {
		panic("mat: ScaleRowsInto length mismatch")
	}
	checkSameShape("ScaleRowsInto", out, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		sv := s[i]
		for j, v := range src {
			dst[j] = v * sv
		}
	}
	return out
}

// HadamardInPlace sets m ∗= b element-wise and returns m.
func (m *Dense) HadamardInPlace(b *Dense) *Dense {
	checkSameShape("HadamardInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] *= v
	}
	return m
}

// TInto writes mᵀ into out and returns out. out must be m.Cols×m.Rows and
// must not alias m.
func (m *Dense) TInto(out *Dense) *Dense {
	if out.Rows != m.Cols || out.Cols != m.Rows {
		panic("mat: TInto shape mismatch")
	}
	const bs = 32
	for ii := 0; ii < m.Rows; ii += bs {
		iMax := min(ii+bs, m.Rows)
		for jj := 0; jj < m.Cols; jj += bs {
			jMax := min(jj+bs, m.Cols)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				for j := jj; j < jMax; j++ {
					out.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	// Two-pass scaling is unnecessary for our magnitudes; plain sum of
	// squares with a running compensation is accurate enough and fast.
	var sum float64
	for _, v := range m.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// FrobNorm2 returns the squared Frobenius norm.
func (m *Dense) FrobNorm2() float64 {
	var sum float64
	for _, v := range m.Data {
		sum += v * v
	}
	return sum
}

// FrobDist returns ‖m − b‖_F.
func (m *Dense) FrobDist(b *Dense) float64 {
	checkSameShape("FrobDist", m, b)
	var sum float64
	for i, v := range m.Data {
		d := v - b.Data[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxAbs returns max |m_ij|.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsOrthonormalCols reports whether mᵀm ≈ I within tol.
func (m *Dense) IsOrthonormalCols(tol float64) bool {
	g := m.TMul(m)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(g.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

// Vec returns the column-major vectorization of m as an (Rows*Cols)-by-1
// vector: vec(M) stacks the columns of M. This convention matches the
// identity vec(AB) = (Bᵀ ⊗ I) vec(A) used in Lemma 3 of the paper.
func (m *Dense) Vec() []float64 {
	out := make([]float64, m.Rows*m.Cols)
	idx := 0
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			out[idx] = m.Data[i*m.Cols+j]
			idx++
		}
	}
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		b.WriteString("[\n")
		for i := 0; i < m.Rows; i++ {
			b.WriteString("  ")
			for j := 0; j < m.Cols; j++ {
				fmt.Fprintf(&b, "% .4g ", m.At(i, j))
			}
			b.WriteString("\n")
		}
		b.WriteString("]")
	}
	return b.String()
}

func checkSameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
