package mat

// Register-blocked micro-kernels for the four dense products behind
// MulInto / TMulInto / MulTInto / GramInto.
//
// Shape of the kernels. The textbook 4×4 outer-product tile (sixteen
// accumulators) was benchmarked first and lost to the reference kernels on
// this target: gc keeps only a handful of floating-point chains live before
// it starts spilling tile accumulators to the stack, and the reference
// kernels already compile their fused multiply-adds to FMA instructions, so
// they sit close to the scalar FMA throughput wall. What wins instead —
// measured on the R×R ALS products and the tall I_k×(R+s) stage-1 products
// alike — is a smaller register block that cuts memory traffic without
// exceeding the register budget:
//
//   - mulTiledRange    2 output rows per pass, k unrolled ×2: the b-row
//     traffic is halved and each b load feeds two accumulator chains.
//   - tmulTiledRange   the k-quad structure of the reference kernel with two
//     output rows fused per pass (halves the b-row traffic).
//   - mulTTiledRange   2×4 dot tile: eight independent dot chains per pass,
//     so the latency of a single dot-accumulator chain is hidden.
//   - gramTiledUpper   2 input rows fused per pass over the upper triangle
//     (halves the output-triangle traffic, the dominant cost; ~2x).
//
// Determinism contract. Every kernel accumulates each output element with
// exactly one ordered add per inner index k, in strictly increasing k order —
// the same per-element sequence as the reference kernels and the naive
// triple loop. Results are therefore bitwise identical to the reference
// kernels on finite inputs (the reference kernels' zero-operand skips are
// the one nominal difference; they matter only for signed zeros and
// non-finite values), identical for every ParallelRanges split, and
// identical for every Runner width. Dispatch (the useTiled* predicates)
// depends only on operand shapes, never on the Runner, so a given multiply
// runs the same kernel — and produces the same bits — whether serial or
// parallel. The kernels_test.go property tests pin this equality.
//
// Relative to the PR-1 kernels nothing changed in accumulation order; the
// blocked kernels are a pure re-blocking of the same ordered sums.

// tiledSizing is the single sizing table for micro-kernel dispatch. The
// thresholds come from benchmarks on the two workload shapes (R×R ALS
// products, tall-skinny stage-1 products) plus awkward square fill-ins:
//
//   - Mul: the 2-row kernel wins from two rows up at every workload shape
//     (~5-10%), so it needs only the trivial minimums.
//   - TMul: fusing two output rows pays once the shared inner dimension
//     (rows of m) is long enough to amortize the wider pass (~7-22% for
//     long inner); below TMulMinInner the reference kernel is equal or
//     better.
//   - MulT: the 2×4 dot tile wins when the inner dimension is rank-sized
//     (~10-17% for inner ≤ MulTMaxInner); for long inner dots the reference
//     1×4 kernel already saturates the FMA ports and the second a-row
//     stream costs more than it saves.
//   - Gram: the fused 2-row kernel wins everywhere measured (~2x), so it
//     needs only two input rows.
type sizingTable struct {
	MulMinRows   int // mul: minimum output rows for the 2-row kernel
	MulMinInner  int // mul: minimum inner dimension for the k-pair unroll
	TMulMinInner int // tmul: minimum shared rows before row fusion pays
	MulTMaxInner int // mulT: maximum inner dimension for the 2×4 dot tile
	GramMinRows  int // gram: minimum input rows for the fused 2-row kernel
}

var tiledSizing = sizingTable{
	MulMinRows:   2,
	MulMinInner:  2,
	TMulMinInner: 16,
	MulTMaxInner: 32,
	GramMinRows:  2,
}

// useTiledMul reports whether out = m·b (outRows×outCols over inner) should
// run the register-blocked kernel.
func useTiledMul(outRows, outCols, inner int) bool {
	return outRows >= tiledSizing.MulMinRows && inner >= tiledSizing.MulMinInner && outCols > 0
}

// useTiledTMul reports whether out = mᵀ·b over inner shared rows should run
// the register-blocked kernel.
func useTiledTMul(outRows, outCols, inner int) bool {
	return outRows >= 2 && inner >= tiledSizing.TMulMinInner && outCols > 0
}

// useTiledMulT reports whether out = m·bᵀ should run the 2×4 dot tile.
func useTiledMulT(outRows, outCols, inner int) bool {
	return outRows >= 2 && inner > 0 && inner <= tiledSizing.MulTMaxInner && outCols > 0
}

// useTiledGram reports whether mᵀm should run the fused 2-row kernel.
func useTiledGram(rows int) bool {
	return rows >= tiledSizing.GramMinRows
}

// mulTiledRange computes rows [lo, hi) of out = m · b: two output rows per
// pass with the k loop unrolled by two. Per output element the adds happen
// one per k in increasing k order — bitwise identical to mulRange. The odd
// trailing row falls back to the reference kernel.
//repro:noalloc
func mulTiledRange(out, m, b *Dense, lo, hi int) {
	n := b.Cols
	kk := m.Cols
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := m.Data[i*kk : (i+1)*kk]
		a1 := m.Data[(i+1)*kk : (i+2)*kk]
		o0 := out.Data[i*n : (i+1)*n]
		o1 := out.Data[(i+1)*n : (i+2)*n]
		for j := range o0 {
			o0[j] = 0
			o1[j] = 0
		}
		k := 0
		for ; k+1 < kk; k += 2 {
			av0, av1 := a0[k], a0[k+1]
			aw0, aw1 := a1[k], a1[k+1]
			b0 := b.Data[k*n : (k+1)*n]
			b1 := b.Data[(k+1)*n : (k+2)*n]
			for j, bv := range b0 {
				bv1 := b1[j]
				s := o0[j]
				s += av0 * bv
				s += av1 * bv1
				o0[j] = s
				t := o1[j]
				t += aw0 * bv
				t += aw1 * bv1
				o1[j] = t
			}
		}
		for ; k < kk; k++ {
			av, aw := a0[k], a1[k]
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				o0[j] += av * bv
				o1[j] += aw * bv
			}
		}
	}
	if i < hi {
		mulRange(out, m, b, i, hi)
	}
}

// tmulTiledRange accumulates mᵀ[:, lo:hi] · b[lo:hi, :] into out: the k-quad
// structure of tmulRange with two output rows (columns of m) fused per pass.
// Same ordered adds per element as tmulRange; the sub-quad remainder reuses
// the reference kernel.
//repro:noalloc
func tmulTiledRange(out, m, b *Dense, lo, hi int) {
	n := b.Cols
	c := m.Cols
	k := lo
	for ; k+3 < hi; k += 4 {
		a0 := m.Data[k*c : (k+1)*c]
		a1 := m.Data[(k+1)*c : (k+2)*c]
		a2 := m.Data[(k+2)*c : (k+3)*c]
		a3 := m.Data[(k+3)*c : (k+4)*c]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		i := 0
		for ; i+2 <= c; i += 2 {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			aw0, aw1, aw2, aw3 := a0[i+1], a1[i+1], a2[i+1], a3[i+1]
			o0 := out.Data[i*n : (i+1)*n]
			o1 := out.Data[(i+1)*n : (i+2)*n]
			for j, bv := range b0 {
				bv1, bv2, bv3 := b1[j], b2[j], b3[j]
				s := o0[j]
				s += av0 * bv
				s += av1 * bv1
				s += av2 * bv2
				s += av3 * bv3
				o0[j] = s
				t := o1[j]
				t += aw0 * bv
				t += aw1 * bv1
				t += aw2 * bv2
				t += aw3 * bv3
				o1[j] = t
			}
		}
		for ; i < c; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range b0 {
				s := orow[j]
				s += av0 * bv
				s += av1 * b1[j]
				s += av2 * b2[j]
				s += av3 * b3[j]
				orow[j] = s
			}
		}
	}
	if k < hi {
		tmulRange(out, m, b, k, hi)
	}
}

// mulTTiledRange computes rows [lo, hi) of out = m · bᵀ with a 2×4 dot tile:
// two m rows against four b rows, eight independent accumulator chains.
// Each output element remains a single dot accumulated in increasing k
// order — bitwise identical to mulTRange. The odd trailing row falls back
// to the reference kernel.
//repro:noalloc
func mulTTiledRange(out, m, b *Dense, lo, hi int) {
	c := m.Cols
	br := b.Rows
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := m.Data[i*c : (i+1)*c]
		a1 := m.Data[(i+1)*c : (i+2)*c]
		o0 := out.Data[i*br : (i+1)*br]
		o1 := out.Data[(i+1)*br : (i+2)*br]
		j := 0
		for ; j+3 < br; j += 4 {
			b0 := b.Data[j*c : (j+1)*c]
			b1 := b.Data[(j+1)*c : (j+2)*c]
			b2 := b.Data[(j+2)*c : (j+3)*c]
			b3 := b.Data[(j+3)*c : (j+4)*c]
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for k, av := range a0 {
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				s00 += av * bv0
				s01 += av * bv1
				s02 += av * bv2
				s03 += av * bv3
				av = a1[k]
				s10 += av * bv0
				s11 += av * bv1
				s12 += av * bv2
				s13 += av * bv3
			}
			o0[j], o0[j+1], o0[j+2], o0[j+3] = s00, s01, s02, s03
			o1[j], o1[j+1], o1[j+2], o1[j+3] = s10, s11, s12, s13
		}
		for ; j < br; j++ {
			brow := b.Data[j*c : (j+1)*c]
			var s0, s1 float64
			for k, av := range a0 {
				s0 += av * brow[k]
				s1 += a1[k] * brow[k]
			}
			o0[j], o1[j] = s0, s1
		}
	}
	if i < hi {
		mulTRange(out, m, b, i, hi)
	}
}

// gramTiledUpper accumulates the upper triangle of mᵀm for input rows
// [lo, hi), two rows fused per pass. Per element: one ordered add per input
// row in increasing row order, exactly as the reference triangle loop, so
// GramInto keeps its documented bitwise agreement with serial TMul(m, m).
//repro:noalloc
func gramTiledUpper(out, m *Dense, lo, hi int) {
	n := m.Cols
	k := lo
	for ; k+1 < hi; k += 2 {
		a0 := m.Data[k*n : (k+1)*n]
		a1 := m.Data[(k+1)*n : (k+2)*n]
		for i := 0; i < n; i++ {
			av0, av1 := a0[i], a1[i]
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				s := orow[j]
				s += av0 * a0[j]
				s += av1 * a1[j]
				orow[j] = s
			}
		}
	}
	for ; k < hi; k++ {
		arow := m.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				orow[j] += av * arow[j]
			}
		}
	}
}
