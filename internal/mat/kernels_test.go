package mat

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// naiveMul is the reference triple loop every blocked/fused kernel is
// checked against.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// chunkedRunner implements Runner with a fixed width, running chunks
// sequentially — exercises the parallel code paths deterministically.
type chunkedRunner struct{ width int }

func (c chunkedRunner) Workers() int { return c.width }

func (c chunkedRunner) ParallelRanges(n int, fn func(lo, hi int)) {
	w := c.width
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// oddShapes covers the ragged cases that break blocked kernels: vectors,
// single elements, sizes straddling the unroll factor (4) and the
// parallel-gating thresholds (64, 128).
var oddShapes = [][2]int{
	{1, 1}, {1, 7}, {7, 1}, {2, 3}, {3, 4}, {4, 4}, {5, 5},
	{1, 65}, {65, 1}, {63, 5}, {64, 5}, {65, 5}, {127, 3}, {128, 3}, {129, 3},
	{10, 88}, {31, 17},
}

func TestKernelMulMatchesNaive(t *testing.T) {
	g := rng.New(1)
	for _, sa := range oddShapes {
		for _, inner := range []int{1, 2, 3, 4, 5, 8, 13} {
			a := Gaussian(g, sa[0], inner)
			b := Gaussian(g, inner, sa[1])
			want := naiveMul(a, b)
			if !a.Mul(b).EqualApprox(want, 1e-12) {
				t.Fatalf("Mul mismatch at %dx%dx%d", sa[0], inner, sa[1])
			}
			got := a.MulInto(New(sa[0], sa[1]), b, chunkedRunner{3})
			if !got.EqualApprox(want, 1e-12) {
				t.Fatalf("MulInto(runner) mismatch at %dx%dx%d", sa[0], inner, sa[1])
			}
		}
	}
}

func TestKernelMulTMatchesNaive(t *testing.T) {
	g := rng.New(2)
	for _, sa := range oddShapes {
		for _, inner := range []int{1, 3, 4, 7} {
			a := Gaussian(g, sa[0], inner)
			b := Gaussian(g, sa[1], inner) // b rows become output columns
			want := naiveMul(a, b.T())
			if !a.MulT(b).EqualApprox(want, 1e-12) {
				t.Fatalf("MulT mismatch at %dx%d·(%dx%d)ᵀ", sa[0], inner, sa[1], inner)
			}
			got := a.MulTInto(New(sa[0], sa[1]), b, chunkedRunner{3})
			if !got.EqualApprox(want, 1e-12) {
				t.Fatalf("MulTInto(runner) mismatch at %dx%d", sa[0], sa[1])
			}
		}
	}
}

func TestKernelTMulMatchesNaive(t *testing.T) {
	g := rng.New(3)
	for _, sa := range oddShapes {
		for _, cols := range []int{1, 3, 4, 6} {
			a := Gaussian(g, sa[0], cols)
			b := Gaussian(g, sa[0], sa[1])
			want := naiveMul(a.T(), b)
			if !a.TMul(b).EqualApprox(want, 1e-12) {
				t.Fatalf("TMul mismatch at (%dx%d)ᵀ·%dx%d", sa[0], cols, sa[0], sa[1])
			}
			// Exercise both the serial and the partial-reduction path.
			for _, w := range []int{2, 3, 7} {
				got := a.TMulInto(New(cols, sa[1]), b, chunkedRunner{w})
				if !got.EqualApprox(want, 1e-12) {
					t.Fatalf("TMulInto(width=%d) mismatch at (%dx%d)ᵀ·%dx%d", w, sa[0], cols, sa[0], sa[1])
				}
			}
		}
	}
}

func TestKernelGramMatchesNaive(t *testing.T) {
	g := rng.New(4)
	for _, sa := range oddShapes {
		a := Gaussian(g, sa[0], sa[1])
		want := naiveMul(a.T(), a)
		got := a.Gram()
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("Gram mismatch at %dx%d", sa[0], sa[1])
		}
		// Up to tmulChunk rows Gram shares TMul(self)'s accumulation
		// order exactly; beyond that TMul reduces block partials and
		// only approximate agreement is guaranteed.
		tm := a.TMul(a)
		if sa[0] <= tmulChunk {
			for i, v := range got.Data {
				if v != tm.Data[i] {
					t.Fatalf("Gram not bitwise equal to TMul(self) at %dx%d index %d", sa[0], sa[1], i)
				}
			}
		} else if !got.EqualApprox(tm, 1e-12) {
			t.Fatalf("Gram disagrees with TMul(self) at %dx%d", sa[0], sa[1])
		}
	}
}

func TestKernelVecIntoMatchesAlloc(t *testing.T) {
	g := rng.New(5)
	a := Gaussian(g, 37, 11)
	x := make([]float64, 11)
	y := make([]float64, 37)
	gg := rng.New(6)
	gg.NormSlice(x)
	gg.NormSlice(y)
	got := a.MulVecInto(make([]float64, 37), x)
	want := a.MulVec(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("MulVecInto mismatch")
		}
	}
	got2 := a.TMulVecInto(make([]float64, 11), y)
	want2 := a.TMulVec(y)
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatal("TMulVecInto mismatch")
		}
	}
}

func TestKernelScaleIntoVariants(t *testing.T) {
	g := rng.New(7)
	a := Gaussian(g, 9, 5)
	s := []float64{2, -1, 0.5, 3, -0.25}
	want := a.ScaleColumns(s)
	if !a.ScaleColumnsInto(New(9, 5), s).EqualApprox(want, 0) {
		t.Fatal("ScaleColumnsInto mismatch")
	}
	aliased := a.Clone()
	if !aliased.ScaleColumnsInto(aliased, s).EqualApprox(want, 0) {
		t.Fatal("aliased ScaleColumnsInto mismatch")
	}
	r := []float64{1, -2, 0, 4, 0.5, 7, -3, 2, 9}
	wantR := a.ScaleRows(r)
	if !a.ScaleRowsInto(New(9, 5), r).EqualApprox(wantR, 0) {
		t.Fatal("ScaleRowsInto mismatch")
	}
	b := Gaussian(g, 9, 5)
	wantH := a.Hadamard(b)
	if !a.Clone().HadamardInPlace(b).EqualApprox(wantH, 0) {
		t.Fatal("HadamardInPlace mismatch")
	}
	if !a.TInto(New(5, 9)).EqualApprox(a.T(), 0) {
		t.Fatal("TInto mismatch")
	}
}

func TestQuickKernelsAgree(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		m := 1 + g.Intn(140)
		k := 1 + g.Intn(20)
		n := 1 + g.Intn(20)
		a := Gaussian(g, m, k)
		b := Gaussian(g, k, n)
		if !a.Mul(b).EqualApprox(naiveMul(a, b), 1e-10) {
			return false
		}
		c := Gaussian(g, m, n)
		if !a.TMul(c).EqualApprox(naiveMul(a.T(), c), 1e-10) {
			return false
		}
		d := Gaussian(g, n, k)
		if !a.MulT(d).EqualApprox(naiveMul(a, d.T()), 1e-10) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
