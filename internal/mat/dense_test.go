package mat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAt(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2)=%v want 7.5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("zero value not zero")
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromData(2, 3, make([]float64, 5))
}

func TestNewFromFunc(t *testing.T) {
	m := NewFromFunc(2, 3, func(i, j int) float64 { return float64(10*i + j) })
	if m.At(1, 2) != 12 || m.At(0, 1) != 1 {
		t.Fatalf("NewFromFunc wrong values: %v", m)
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d]=%v", i, j, id.At(i, j))
			}
		}
	}
	d := Diag([]float64{1, 2, 3})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(2, 2) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d)
	}
	got := d.Diagonal()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Diagonal wrong: %v", got)
	}
}

func TestTranspose(t *testing.T) {
	g := rng.New(1)
	m := Gaussian(g, 37, 53)
	tt := m.T().T()
	if !m.EqualApprox(tt, 0) {
		t.Fatal("double transpose is not identity")
	}
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	g := rng.New(2)
	a := Gaussian(g, 5, 7)
	b := Gaussian(g, 5, 7)
	sum := a.Add(b)
	diff := sum.Sub(b)
	if !diff.EqualApprox(a, 1e-14) {
		t.Fatal("(a+b)-b != a")
	}
	s := a.Scale(2.0).Sub(a).Sub(a)
	if s.MaxAbs() > 1e-14 {
		t.Fatal("2a - a - a != 0")
	}
	c := a.Clone()
	c.AddScaledInPlace(-1, a)
	if c.MaxAbs() != 0 {
		t.Fatal("AddScaledInPlace(-1, a) on clone not zero")
	}
}

func TestHadamard(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 2, []float64{5, 6, 7, 8})
	h := a.Hadamard(b)
	want := NewFromData(2, 2, []float64{5, 12, 21, 32})
	if !h.EqualApprox(want, 0) {
		t.Fatalf("Hadamard wrong: %v", h)
	}
}

func TestScaleColumnsMatchesDiagMul(t *testing.T) {
	g := rng.New(3)
	a := Gaussian(g, 6, 4)
	s := []float64{2, -1, 0.5, 3}
	got := a.ScaleColumns(s)
	want := a.Mul(Diag(s))
	if !got.EqualApprox(want, 1e-13) {
		t.Fatal("ScaleColumns != A*diag(s)")
	}
}

func TestScaleRowsMatchesDiagMul(t *testing.T) {
	g := rng.New(4)
	a := Gaussian(g, 4, 6)
	s := []float64{2, -1, 0.5, 3}
	got := a.ScaleRows(s)
	want := Diag(s).Mul(a)
	if !got.EqualApprox(want, 1e-13) {
		t.Fatal("ScaleRows != diag(s)*A")
	}
}

func TestMulIdentity(t *testing.T) {
	g := rng.New(5)
	a := Gaussian(g, 9, 6)
	if !a.Mul(Identity(6)).EqualApprox(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	if !Identity(9).Mul(a).EqualApprox(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulAssociativity(t *testing.T) {
	g := rng.New(6)
	a := Gaussian(g, 4, 5)
	b := Gaussian(g, 5, 6)
	c := Gaussian(g, 6, 3)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	if !left.EqualApprox(right, 1e-11) {
		t.Fatal("matrix multiply not associative within tolerance")
	}
}

func TestTMulMatchesExplicitTranspose(t *testing.T) {
	g := rng.New(7)
	a := Gaussian(g, 8, 5)
	b := Gaussian(g, 8, 6)
	got := a.TMul(b)
	want := a.T().Mul(b)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("TMul != T().Mul")
	}
}

func TestTMulParallelPath(t *testing.T) {
	g := rng.New(8)
	// Rows >= 128 triggers the parallel accumulation path.
	a := Gaussian(g, 300, 10)
	b := Gaussian(g, 300, 7)
	got := a.TMul(b)
	want := a.T().Mul(b)
	if !got.EqualApprox(want, 1e-11) {
		t.Fatal("parallel TMul mismatch")
	}
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	g := rng.New(9)
	a := Gaussian(g, 6, 5)
	b := Gaussian(g, 7, 5)
	got := a.MulT(b)
	want := a.Mul(b.T())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MulT != Mul(T())")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	g := rng.New(10)
	a := Gaussian(g, 5, 4)
	x := make([]float64, 4)
	g.NormSlice(x)
	got := a.MulVec(x)
	want := a.Mul(NewFromData(4, 1, x))
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-13) {
			t.Fatal("MulVec mismatch")
		}
	}
	y := make([]float64, 5)
	g.NormSlice(y)
	gotT := a.TMulVec(y)
	wantT := a.T().MulVec(y)
	for i := range gotT {
		if !almostEq(gotT[i], wantT[i], 1e-13) {
			t.Fatal("TMulVec mismatch")
		}
	}
}

func TestSubMatrixAndSetSubMatrix(t *testing.T) {
	m := NewFromFunc(5, 5, func(i, j int) float64 { return float64(i*5 + j) })
	s := m.SubMatrix(1, 2, 2, 3)
	if s.Rows != 2 || s.Cols != 3 || s.At(0, 0) != 7 || s.At(1, 2) != 14 {
		t.Fatalf("SubMatrix wrong: %v", s)
	}
	z := New(5, 5)
	z.SetSubMatrix(1, 2, s)
	if z.At(1, 2) != 7 || z.At(2, 4) != 14 || z.At(0, 0) != 0 {
		t.Fatalf("SetSubMatrix wrong: %v", z)
	}
	rb := m.RowBlock(2, 4)
	if rb.Rows != 2 || rb.At(0, 0) != 10 || rb.At(1, 4) != 19 {
		t.Fatalf("RowBlock wrong: %v", rb)
	}
}

func TestColSetCol(t *testing.T) {
	m := New(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	c := m.Col(1)
	if c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Fatalf("Col/SetCol wrong: %v", c)
	}
	if m.At(0, 0) != 0 {
		t.Fatal("SetCol touched other column")
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewFromData(2, 2, []float64{3, 0, 4, 0})
	if !almostEq(m.FrobNorm(), 5, 1e-14) {
		t.Fatalf("FrobNorm=%v want 5", m.FrobNorm())
	}
	if !almostEq(m.FrobNorm2(), 25, 1e-12) {
		t.Fatalf("FrobNorm2=%v want 25", m.FrobNorm2())
	}
	if !almostEq(m.FrobDist(m), 0, 0) {
		t.Fatal("FrobDist(self) != 0")
	}
}

func TestVecIsColumnMajor(t *testing.T) {
	m := NewFromData(2, 3, []float64{
		1, 2, 3,
		4, 5, 6,
	})
	v := m.Vec()
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vec=%v want %v", v, want)
		}
	}
}

func TestVecABIdentity(t *testing.T) {
	// vec(AB) = (Bᵀ ⊗ I) vec(A) — the identity Lemma 3 depends on.
	g := rng.New(11)
	a := Gaussian(g, 3, 4)
	b := Gaussian(g, 4, 5)
	lhs := a.Mul(b).Vec()
	kron := Kronecker(b.T(), Identity(3))
	rhs := kron.MulVec(a.Vec())
	for i := range lhs {
		if !almostEq(lhs[i], rhs[i], 1e-12) {
			t.Fatal("vec(AB) != (Bᵀ⊗I)vec(A)")
		}
	}
}

func TestHConcatVConcat(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 1, []float64{5, 6})
	h := HConcat(a, b)
	if h.Rows != 2 || h.Cols != 3 || h.At(0, 2) != 5 || h.At(1, 2) != 6 || h.At(1, 1) != 4 {
		t.Fatalf("HConcat wrong: %v", h)
	}
	c := NewFromData(1, 2, []float64{7, 8})
	v := VConcat(a, c)
	if v.Rows != 3 || v.Cols != 2 || v.At(2, 0) != 7 || v.At(2, 1) != 8 {
		t.Fatalf("VConcat wrong: %v", v)
	}
}

func TestKroneckerSmall(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 2, []float64{0, 5, 6, 7})
	k := Kronecker(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("Kronecker shape %dx%d", k.Rows, k.Cols)
	}
	want := NewFromData(4, 4, []float64{
		0, 5, 0, 10,
		6, 7, 12, 14,
		0, 15, 0, 20,
		18, 21, 24, 28,
	})
	if !k.EqualApprox(want, 0) {
		t.Fatalf("Kronecker values wrong:\n%v", k)
	}
}

func TestKroneckerMixedProduct(t *testing.T) {
	// (A ⊗ B)(C ⊗ D) = AC ⊗ BD — used in the proof of Lemma 1.
	g := rng.New(12)
	a := Gaussian(g, 2, 3)
	b := Gaussian(g, 3, 2)
	c := Gaussian(g, 3, 2)
	d := Gaussian(g, 2, 4)
	lhs := Kronecker(a, b).Mul(Kronecker(c, d))
	rhs := Kronecker(a.Mul(c), b.Mul(d))
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("mixed-product property violated")
	}
}

func TestKhatriRaoColumns(t *testing.T) {
	g := rng.New(13)
	a := Gaussian(g, 4, 3)
	b := Gaussian(g, 5, 3)
	kr := KhatriRao(a, b)
	if kr.Rows != 20 || kr.Cols != 3 {
		t.Fatalf("KhatriRao shape %dx%d", kr.Rows, kr.Cols)
	}
	for r := 0; r < 3; r++ {
		want := KronVec(a.Col(r), b.Col(r))
		got := kr.Col(r)
		for i := range want {
			if !almostEq(got[i], want[i], 1e-14) {
				t.Fatalf("KhatriRao column %d mismatch", r)
			}
		}
	}
}

func TestKhatriRaoGramIdentity(t *testing.T) {
	// (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ∗ BᵀB — the Hadamard/Gram identity ALS uses.
	g := rng.New(14)
	a := Gaussian(g, 6, 4)
	b := Gaussian(g, 5, 4)
	kr := KhatriRao(a, b)
	lhs := kr.TMul(kr)
	rhs := a.TMul(a).Hadamard(b.TMul(b))
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("Khatri-Rao Gram identity violated")
	}
}

func TestIsOrthonormalCols(t *testing.T) {
	if !Identity(5).IsOrthonormalCols(1e-14) {
		t.Fatal("identity not orthonormal?")
	}
	g := rng.New(15)
	if Gaussian(g, 5, 5).IsOrthonormalCols(1e-6) {
		t.Fatal("random Gaussian unlikely to be orthonormal")
	}
}

func TestDotAndNorm2(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

// Property-based tests via testing/quick.

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		r := 1 + g.Intn(20)
		c := 1 + g.Intn(20)
		m := Gaussian(g, r, c)
		return m.T().T().EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDistributes(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		r := 1 + g.Intn(10)
		k := 1 + g.Intn(10)
		c := 1 + g.Intn(10)
		a := Gaussian(g, r, k)
		b := Gaussian(g, k, c)
		cc := Gaussian(g, k, c)
		lhs := a.Mul(b.Add(cc))
		rhs := a.Mul(b).Add(a.Mul(cc))
		return lhs.EqualApprox(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrobNormScales(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		m := Gaussian(g, 1+g.Intn(15), 1+g.Intn(15))
		alpha := 2*g.Float64() - 1
		return almostEq(m.Scale(alpha).FrobNorm(), math.Abs(alpha)*m.FrobNorm(), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKroneckerTranspose(t *testing.T) {
	// (A ⊗ B)ᵀ = Aᵀ ⊗ Bᵀ
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := Gaussian(g, 1+g.Intn(6), 1+g.Intn(6))
		b := Gaussian(g, 1+g.Intn(6), 1+g.Intn(6))
		return Kronecker(a, b).T().EqualApprox(Kronecker(a.T(), b.T()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
