package mat

import "repro/internal/rng"

// Kronecker returns A ⊗ B, the (Ra*Rb)-by-(Ca*Cb) Kronecker product.
func Kronecker(a, b *Dense) *Dense {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		arow := a.Row(ia)
		for ib := 0; ib < b.Rows; ib++ {
			brow := b.Row(ib)
			orow := out.Row(ia*b.Rows + ib)
			for ja, av := range arow {
				if av == 0 {
					continue
				}
				off := ja * b.Cols
				for jb, bv := range brow {
					orow[off+jb] = av * bv
				}
			}
		}
	}
	return out
}

// KhatriRao returns A ⊙ B, the column-wise Khatri-Rao product. A and B must
// have the same number of columns; the result is (Ra*Rb)-by-C with column r
// equal to A(:,r) ⊗ B(:,r).
func KhatriRao(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("mat: KhatriRao column mismatch")
	}
	c := a.Cols
	out := New(a.Rows*b.Rows, c)
	for ia := 0; ia < a.Rows; ia++ {
		arow := a.Row(ia)
		for ib := 0; ib < b.Rows; ib++ {
			brow := b.Row(ib)
			orow := out.Row(ia*b.Rows + ib)
			for r := 0; r < c; r++ {
				orow[r] = arow[r] * brow[r]
			}
		}
	}
	return out
}

// KronVec returns (x ⊗ y) for vectors.
func KronVec(x, y []float64) []float64 {
	out := make([]float64, len(x)*len(y))
	for i, xv := range x {
		off := i * len(y)
		for j, yv := range y {
			out[off+j] = xv * yv
		}
	}
	return out
}

// HConcat horizontally concatenates the given matrices (same row count).
func HConcat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("mat: HConcat of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("mat: HConcat row mismatch")
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+m.Cols], m.Row(i))
		}
		off += m.Cols
	}
	return out
}

// VConcat vertically concatenates the given matrices (same column count).
func VConcat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("mat: VConcat of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("mat: VConcat column mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off*cols:(off+m.Rows)*cols], m.Data)
		off += m.Rows
	}
	return out
}

// Gaussian returns an r-by-c matrix of independent standard normals drawn
// from g.
func Gaussian(g *rng.RNG, r, c int) *Dense {
	m := New(r, c)
	g.NormSlice(m.Data)
	return m
}

// Uniform returns an r-by-c matrix of uniforms in [lo, hi).
func Uniform(g *rng.RNG, r, c int, lo, hi float64) *Dense {
	m := New(r, c)
	g.UniformSlice(m.Data, lo, hi)
	return m
}
