package mat

import (
	"math"
	"runtime"
	"sync"
)

// maxProcs bounds the goroutine fan-out of the multiply kernels.
// Exposed as a variable so benchmarks can pin it.
var maxProcs = runtime.GOMAXPROCS(0)

// SetParallelism overrides the number of goroutines the multiply kernels may
// use. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	if n <= 0 {
		maxProcs = runtime.GOMAXPROCS(0)
		return
	}
	maxProcs = n
}

// Parallelism reports the current kernel fan-out.
func Parallelism() int { return maxProcs }

// parallelRows runs f over row ranges [lo, hi) split across workers.
func parallelRows(rows int, f func(lo, hi int)) {
	workers := maxProcs
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 64 {
		f(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mul returns m * b. Panics on inner-dimension mismatch.
//
// The kernel is the classic i-k-j ordering: for each row of m it streams rows
// of b, accumulating into the output row. This keeps all three access
// patterns sequential and is within a small factor of blocked BLAS for the
// sizes PARAFAC2 works with.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("mat: Mul inner dimension mismatch")
	}
	out := New(m.Rows, b.Cols)
	n := b.Cols
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*n : (i+1)*n]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// TMul returns mᵀ * b without materializing the transpose.
func (m *Dense) TMul(b *Dense) *Dense {
	if m.Rows != b.Rows {
		panic("mat: TMul dimension mismatch")
	}
	out := New(m.Cols, b.Cols)
	n := b.Cols
	// Accumulate per-worker partial results over row blocks of the shared
	// inner dimension, then reduce. This keeps both inputs streaming.
	workers := maxProcs
	if workers > m.Rows {
		workers = m.Rows
	}
	if workers <= 1 || m.Rows < 128 {
		for k := 0; k < m.Rows; k++ {
			arow := m.Data[k*m.Cols : (k+1)*m.Cols]
			brow := b.Data[k*n : (k+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	partials := make([]*Dense, workers)
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := New(m.Cols, n)
			for k := lo; k < hi; k++ {
				arow := m.Data[k*m.Cols : (k+1)*m.Cols]
				brow := b.Data[k*n : (k+1)*n]
				for i, av := range arow {
					if av == 0 {
						continue
					}
					prow := p.Data[i*n : (i+1)*n]
					for j, bv := range brow {
						prow[j] += av * bv
					}
				}
			}
			partials[w] = p
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			out.AddInPlace(p)
		}
	}
	return out
}

// MulT returns m * bᵀ without materializing the transpose.
func (m *Dense) MulT(b *Dense) *Dense {
	if m.Cols != b.Cols {
		panic("mat: MulT dimension mismatch")
	}
	out := New(m.Rows, b.Rows)
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Data[i*m.Cols : (i+1)*m.Cols]
			orow := out.Data[i*b.Rows : (i+1)*b.Rows]
			for j := 0; j < b.Rows; j++ {
				brow := b.Data[j*b.Cols : (j+1)*b.Cols]
				var sum float64
				for k, av := range arow {
					sum += av * brow[k]
				}
				orow[j] = sum
			}
		}
	})
	return out
}

// MulVec returns m * x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for k, v := range row {
			sum += v * x[k]
		}
		out[i] = sum
	}
	return out
}

// TMulVec returns mᵀ * x.
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: TMulVec dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k, v := range row {
			out[k] += v * xi
		}
	}
	return out
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var sum float64
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}
