package mat

import (
	"testing"

	"repro/internal/rng"
)

// tiledTriples covers the ragged cases that break register-blocked kernels:
// odd row counts (2-row tile remainder), odd/even inner dimensions (k-pair
// unroll remainder), column counts straddling the MulT 4-dot tile, sizes on
// both sides of every dispatch threshold (TMulMinInner 16, MulTMaxInner 32),
// degenerate 1×n / n×1 operands, and the workload sizes themselves: R×R ALS
// products for R in {1, 2, 3, 10} and the tall-skinny stage-1 shape.
var tiledTriples = [][3]int{
	{1, 1, 1}, {1, 2, 1}, {2, 1, 2}, {2, 2, 2}, {3, 3, 3},
	{1, 10, 10}, {10, 10, 1}, {10, 1, 10},
	{2, 3, 5}, {3, 2, 4}, {5, 5, 5}, {4, 4, 4},
	{7, 15, 9}, {8, 16, 8}, {9, 17, 7},
	{5, 31, 6}, {6, 32, 5}, {7, 33, 4},
	{10, 10, 10}, {63, 18, 19}, {64, 18, 18},
	{101, 18, 18}, {600, 88, 18}, {33, 600, 18},
}

// bitwiseEqual reports exact equality of the backing data.
func bitwiseEqual(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// gramUpperReference is the reference upper-triangle accumulation GramInto
// uses below the tiled threshold (zero-skip included), extracted for direct
// comparison against gramTiledUpper.
func gramUpperReference(out, m *Dense, lo, hi int) {
	n := m.Cols
	for k := lo; k < hi; k++ {
		arow := m.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				orow[j] += av * arow[j]
			}
		}
	}
}

// TestTiledKernelsBitwiseMatchReference pins the determinism contract of
// tiled.go: every register-blocked kernel accumulates each output element
// with one ordered add per inner index, in the same order as the reference
// kernel, so on finite inputs the results are bitwise identical — not merely
// approximately equal. Each kernel is also run with the row range split at
// an odd boundary to show the blocking is range-local (a ParallelRanges
// split cannot change a single bit).
func TestTiledKernelsBitwiseMatchReference(t *testing.T) {
	g := rng.New(31)
	for _, tr := range tiledTriples {
		m, k, n := tr[0], tr[1], tr[2]
		a := Gaussian(g, m, k)
		b := Gaussian(g, k, n)

		// out = a·b
		ref := New(m, n)
		mulRange(ref, a, b, 0, m)
		got := New(m, n)
		mulTiledRange(got, a, b, 0, m)
		if !bitwiseEqual(ref, got) {
			t.Fatalf("mulTiledRange differs from mulRange at %dx%dx%d", m, k, n)
		}
		if m > 1 {
			split := New(m, n)
			mulTiledRange(split, a, b, 0, 1)
			mulTiledRange(split, a, b, 1, m)
			if !bitwiseEqual(ref, split) {
				t.Fatalf("mulTiledRange split-range differs at %dx%dx%d", m, k, n)
			}
		}

		// out += aᵀ·c over shared rows of a and c.
		c := Gaussian(g, m, n)
		ref = New(k, n)
		tmulRange(ref, a, c, 0, m)
		got = New(k, n)
		tmulTiledRange(got, a, c, 0, m)
		if !bitwiseEqual(ref, got) {
			t.Fatalf("tmulTiledRange differs from tmulRange at (%dx%d)ᵀ·%dx%d", m, k, m, n)
		}
		if m > 1 {
			split := New(k, n)
			tmulTiledRange(split, a, c, 0, 1)
			tmulTiledRange(split, a, c, 1, m)
			if !bitwiseEqual(ref, split) {
				t.Fatalf("tmulTiledRange split-range differs at (%dx%d)ᵀ", m, k)
			}
		}

		// out = a·dᵀ
		d := Gaussian(g, n, k)
		ref = New(m, n)
		mulTRange(ref, a, d, 0, m)
		got = New(m, n)
		mulTTiledRange(got, a, d, 0, m)
		if !bitwiseEqual(ref, got) {
			t.Fatalf("mulTTiledRange differs from mulTRange at %dx%d·(%dx%d)ᵀ", m, k, n, k)
		}

		// upper triangle of aᵀa
		ref = New(k, k)
		gramUpperReference(ref, a, 0, m)
		got = New(k, k)
		gramTiledUpper(got, a, 0, m)
		if !bitwiseEqual(ref, got) {
			t.Fatalf("gramTiledUpper differs from reference triangle at %dx%d", m, k)
		}
	}
}

// TestTiledDispatchIsRunnerIndependent pins the other half of the contract:
// dispatch depends only on operand shapes, so the public entry points return
// the same bits for every Runner width — serial, nil, or any chunking.
func TestTiledDispatchIsRunnerIndependent(t *testing.T) {
	g := rng.New(32)
	widths := []int{1, 2, 3, 7}
	for _, tr := range tiledTriples {
		m, k, n := tr[0], tr[1], tr[2]
		a := Gaussian(g, m, k)
		b := Gaussian(g, k, n)
		c := Gaussian(g, m, n)
		d := Gaussian(g, n, k)

		mulWant := a.MulInto(New(m, n), b, nil)
		mulTWant := a.MulTInto(New(m, n), d, nil)
		for _, w := range widths {
			if !bitwiseEqual(mulWant, a.MulInto(New(m, n), b, chunkedRunner{w})) {
				t.Fatalf("MulInto width=%d changes bits at %dx%dx%d", w, m, k, n)
			}
			if !bitwiseEqual(mulTWant, a.MulTInto(New(m, n), d, chunkedRunner{w})) {
				t.Fatalf("MulTInto width=%d changes bits at %dx%dx%d", w, m, k, n)
			}
		}
		// TMulInto reduces block partials beyond one chunk, so its bitwise
		// guarantee is per-width serial-vs-tiled, checked via width 1 only.
		tmulWant := a.TMulInto(New(k, n), c, nil)
		if !bitwiseEqual(tmulWant, a.TMulInto(New(k, n), c, chunkedRunner{1})) {
			t.Fatalf("TMulInto width=1 changes bits at (%dx%d)ᵀ·%dx%d", m, k, m, n)
		}
	}
}
