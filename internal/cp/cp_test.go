package cp

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func exactCPTensor(g *rng.RNG, i, j, k, r int) (*tensor.Dense3, Factors) {
	f := RandomFactors(g, i, j, k, r)
	return tensor.CPReconstruct(f.A, f.B, f.C), f
}

func TestDecomposeExactRankRecovers(t *testing.T) {
	g := rng.New(1)
	y, _ := exactCPTensor(g, 12, 10, 8, 3)
	// ALS passes through low-progress "swamps" on the way to the exact
	// solution, so disable early stopping and give it room.
	res := Decompose(rng.New(2), y, 3, 2000, 0)
	if res.Fitness < 0.9999 {
		t.Fatalf("fitness %v on exact rank-3 tensor", res.Fitness)
	}
}

func TestDecomposeMonotoneError(t *testing.T) {
	// ALS is a block-coordinate descent: the error must not increase.
	g := rng.New(3)
	y, _ := exactCPTensor(g, 10, 9, 7, 4)
	// add noise so it does not converge instantly
	for _, s := range y.Slices {
		s.AddInPlace(mat.Gaussian(g, s.Rows, s.Cols).Scale(0.05))
	}
	f := RandomFactors(rng.New(4), y.I, y.J, y.K, 4)
	prev := ReconstructError2(y, f)
	for it := 0; it < 20; it++ {
		UpdateIteration(y, &f)
		cur := ReconstructError2(y, f)
		if cur > prev*(1+1e-9) {
			t.Fatalf("iteration %d increased error: %v -> %v", it, prev, cur)
		}
		prev = cur
	}
}

func TestDecomposeStopsOnTolerance(t *testing.T) {
	g := rng.New(5)
	y, _ := exactCPTensor(g, 8, 8, 8, 2)
	res := Decompose(rng.New(6), y, 2, 500, 1e-8)
	if res.Iters >= 500 {
		t.Fatalf("did not converge early: %d iters", res.Iters)
	}
}

func TestDecomposeHigherRankFitsBetter(t *testing.T) {
	g := rng.New(7)
	y, _ := exactCPTensor(g, 12, 12, 6, 5)
	for _, s := range y.Slices {
		s.AddInPlace(mat.Gaussian(g, s.Rows, s.Cols).Scale(0.1))
	}
	r2 := Decompose(rng.New(8), y, 2, 60, 1e-10).Fitness
	r5 := Decompose(rng.New(8), y, 5, 60, 1e-10).Fitness
	if r5 < r2 {
		t.Fatalf("rank 5 fitness %v < rank 2 fitness %v", r5, r2)
	}
}

func TestReconstructError2Zero(t *testing.T) {
	g := rng.New(9)
	y, f := exactCPTensor(g, 6, 5, 4, 2)
	if e := ReconstructError2(y, f); e > 1e-18*y.Norm2()+1e-12 {
		t.Fatalf("error on exact factors: %v", e)
	}
}

func TestRandomFactorsShapes(t *testing.T) {
	g := rng.New(10)
	f := RandomFactors(g, 3, 4, 5, 2)
	if f.A.Rows != 3 || f.B.Rows != 4 || f.C.Rows != 5 || f.A.Cols != 2 {
		t.Fatal("RandomFactors shapes wrong")
	}
}

func TestNormalizePreservesModel(t *testing.T) {
	g := rng.New(11)
	f := RandomFactors(g, 6, 5, 4, 3)
	before := tensor.CPReconstruct(f.A, f.B, f.C)
	lambda := f.Normalize()
	// Reconstruct [[λ; A,B,C]] by folding λ into C.
	cScaled := f.C.ScaleColumns(lambda)
	after := tensor.CPReconstruct(f.A, f.B, cScaled)
	for k := range before.Slices {
		if !after.Slices[k].EqualApprox(before.Slices[k], 1e-10) {
			t.Fatal("normalization changed the model")
		}
	}
	// Unit columns.
	for c := 0; c < 3; c++ {
		for _, m := range []*mat.Dense{f.A, f.B, f.C} {
			var n float64
			for i := 0; i < m.Rows; i++ {
				n += m.At(i, c) * m.At(i, c)
			}
			if d := n - 1; d > 1e-10 || d < -1e-10 {
				t.Fatalf("column %d norm² %v != 1", c, n)
			}
		}
	}
}

func TestNormalizeZeroColumn(t *testing.T) {
	g := rng.New(12)
	f := RandomFactors(g, 4, 4, 4, 2)
	for i := 0; i < f.A.Rows; i++ {
		f.A.Set(i, 1, 0)
	}
	lambda := f.Normalize()
	if lambda[1] != 0 {
		t.Fatalf("zero component lambda %v", lambda[1])
	}
	if lambda[0] <= 0 {
		t.Fatalf("live component lambda %v", lambda[0])
	}
}
