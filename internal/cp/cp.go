// Package cp implements CP (CANDECOMP/PARAFAC) decomposition by alternating
// least squares for regular 3-order tensors. PARAFAC2-ALS (Algorithm 2 of
// the DPar2 paper) runs exactly one CP-ALS iteration per outer iteration on
// the projected tensor Y with frontal slices Q_kᵀ X_k; this package provides
// that single-iteration update as well as a standalone full decomposition.
package cp

import (
	"math"

	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Factors holds the CP factor matrices of a 3-order tensor: the model is
// X ≈ [[A, B, C]] with frontal slices A · diag(C(k,:)) · Bᵀ.
type Factors struct {
	A *mat.Dense // I × R
	B *mat.Dense // J × R
	C *mat.Dense // K × R
}

// RandomFactors initializes CP factors with standard Gaussians.
func RandomFactors(g *rng.RNG, i, j, k, r int) Factors {
	return Factors{
		A: mat.Gaussian(g, i, r),
		B: mat.Gaussian(g, j, r),
		C: mat.Gaussian(g, k, r),
	}
}

// UpdateIteration performs one full ALS sweep (update A, then B, then C) on
// the factors in place, using the standard normal-equation updates:
//
//	A ← Y(1)(C ⊙ B)(CᵀC ∗ BᵀB)⁺
//	B ← Y(2)(C ⊙ A)(CᵀC ∗ AᵀA)⁺
//	C ← Y(3)(B ⊙ A)(BᵀB ∗ AᵀA)⁺
//
// This mirrors lines 11-13 of Algorithm 2 in the paper (there A=H, B=V, C=W).
func UpdateIteration(y *tensor.Dense3, f *Factors) {
	// Update A.
	g1 := y.MTTKRP(1, f.C, f.B)
	gram := f.C.TMul(f.C).Hadamard(f.B.TMul(f.B))
	f.A = lapack.SolveGram(g1, gram)

	// Update B.
	g2 := y.MTTKRP(2, f.C, f.A)
	gram = f.C.TMul(f.C).Hadamard(f.A.TMul(f.A))
	f.B = lapack.SolveGram(g2, gram)

	// Update C.
	g3 := y.MTTKRP(3, f.B, f.A)
	gram = f.B.TMul(f.B).Hadamard(f.A.TMul(f.A))
	f.C = lapack.SolveGram(g3, gram)
}

// Normalize rescales the factors to the standard CP form [[λ; A, B, C]]:
// every factor column gets unit Euclidean norm and the absorbed scales are
// returned as the weight vector λ (descending ordering is NOT applied; the
// component order is preserved so callers can track components across
// iterations). Zero columns get λ=0 and are left untouched.
func (f *Factors) Normalize() []float64 {
	r := f.A.Cols
	lambda := make([]float64, r)
	for c := 0; c < r; c++ {
		na := normCol(f.A, c)
		nb := normCol(f.B, c)
		nc := normCol(f.C, c)
		lambda[c] = na * nb * nc
		scaleCol(f.A, c, na)
		scaleCol(f.B, c, nb)
		scaleCol(f.C, c, nc)
	}
	return lambda
}

func normCol(m *mat.Dense, c int) float64 {
	var sum float64
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, c)
		sum += v * v
	}
	return sqrt(sum)
}

func scaleCol(m *mat.Dense, c int, norm float64) {
	if norm == 0 {
		return
	}
	inv := 1 / norm
	for i := 0; i < m.Rows; i++ {
		m.Set(i, c, m.At(i, c)*inv)
	}
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Result reports a full CP-ALS run.
type Result struct {
	Factors Factors
	Iters   int
	Fitness float64
}

// Decompose runs CP-ALS to convergence: it stops when the relative change in
// reconstruction error drops below tol or after maxIters sweeps.
func Decompose(g *rng.RNG, y *tensor.Dense3, rank, maxIters int, tol float64) Result {
	f := RandomFactors(g, y.I, y.J, y.K, rank)
	norm2 := y.Norm2()
	prevErr := -1.0
	iters := 0
	for it := 0; it < maxIters; it++ {
		UpdateIteration(y, &f)
		iters = it + 1
		err2 := ReconstructError2(y, f)
		if prevErr >= 0 && abs(prevErr-err2) <= tol*norm2 {
			prevErr = err2
			break
		}
		prevErr = err2
	}
	fit := 1.0
	if norm2 > 0 {
		fit = 1 - prevErr/norm2
	}
	return Result{Factors: f, Iters: iters, Fitness: fit}
}

// ReconstructError2 returns ‖Y − [[A, B, C]]‖_F².
func ReconstructError2(y *tensor.Dense3, f Factors) float64 {
	var sum float64
	for k, yk := range y.Slices {
		rec := f.A.ScaleColumns(f.C.Row(k)).MulT(f.B)
		d := yk.FrobDist(rec)
		sum += d * d
	}
	return sum
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
