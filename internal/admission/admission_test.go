package admission

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newQ(t *testing.T, cfg Config) *Queue[int] {
	t.Helper()
	if cfg.Capacity == 0 {
		cfg.Capacity = 64
	}
	return New[int](cfg)
}

func mustAdmit(t *testing.T, q *Queue[int], tenant string, prio, payload int) *Ticket[int] {
	t.Helper()
	tk, err := q.Admit(context.Background(), tenant, prio, payload, nil)
	if err != nil {
		t.Fatalf("Admit(%s, prio %d): %v", tenant, prio, err)
	}
	return tk
}

// TestFIFOWithinClass: same-priority tickets pop in admission order.
func TestFIFOWithinClass(t *testing.T) {
	q := newQ(t, Config{})
	for i := 0; i < 10; i++ {
		mustAdmit(t, q, "a", 0, i)
	}
	for i := 0; i < 10; i++ {
		tk, ok := q.Pop()
		if !ok || tk.Payload != i {
			t.Fatalf("pop %d: got payload %v ok=%v, want %d", i, tk.Payload, ok, i)
		}
		tk.Finish(nil)
	}
}

// TestPriorityOrder: higher Priority pops first, FIFO inside each class.
func TestPriorityOrder(t *testing.T) {
	q := newQ(t, Config{})
	// payload encodes expected order: admitted interleaved across classes.
	mustAdmit(t, q, "a", 0, 3) // low class, first in
	mustAdmit(t, q, "b", 5, 0) // high class, first in
	mustAdmit(t, q, "a", 0, 4)
	mustAdmit(t, q, "b", 5, 1)
	mustAdmit(t, q, "c", 2, 2)
	for want := 0; want < 5; want++ {
		tk, _ := q.Pop()
		if tk.Payload != want {
			t.Fatalf("pop %d: got payload %d", want, tk.Payload)
		}
		tk.Finish(nil)
	}
}

// TestPriorityOrderProperty: for random priorities the pop sequence equals a
// stable sort by (priority desc, admission order) — the scheduler's whole
// ordering contract in one property.
func TestPriorityOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		q := New[int](Config{Capacity: n})
		type rec struct{ prio, idx int }
		recs := make([]rec, n)
		for i := range recs {
			recs[i] = rec{prio: rng.Intn(5) - 2, idx: i}
			mustAdmit(t, q, fmt.Sprintf("t%d", rng.Intn(3)), recs[i].prio, i)
		}
		want := make([]rec, n)
		copy(want, recs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].prio > want[j].prio })
		for i := 0; i < n; i++ {
			tk, _ := q.Pop()
			if tk.Payload != want[i].idx {
				t.Fatalf("trial %d pop %d: got %d want %d (prios %v)",
					trial, i, tk.Payload, want[i].idx, recs)
			}
			tk.Finish(nil)
		}
	}
}

// TestQuotaMaxQueuedReject: the over-quota admit is immediate, typed, and
// carries the tenant; other tenants are unaffected.
func TestQuotaMaxQueuedReject(t *testing.T) {
	q := newQ(t, Config{DefaultQuota: Quota{MaxQueued: 2}})
	mustAdmit(t, q, "noisy", 0, 0)
	mustAdmit(t, q, "noisy", 0, 1)
	_, err := q.Admit(context.Background(), "noisy", 0, 2, nil)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota admit: err = %v, want ErrQuotaExceeded", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "noisy" || qe.Limit != 2 {
		t.Fatalf("quota error %v must carry tenant and limit", err)
	}
	// The shared queue was not consumed: another tenant still fits.
	mustAdmit(t, q, "quiet", 0, 3)
	if d := q.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

// TestQuotaOverrides: the per-tenant override replaces the default quota.
func TestQuotaOverrides(t *testing.T) {
	q := newQ(t, Config{
		DefaultQuota: Quota{MaxQueued: 1},
		Overrides:    map[string]Quota{"vip": {MaxQueued: 3}},
	})
	mustAdmit(t, q, "vip", 0, 0)
	mustAdmit(t, q, "vip", 0, 1)
	mustAdmit(t, q, "vip", 0, 2)
	if _, err := q.Admit(context.Background(), "vip", 0, 3, nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("vip 4th admit: %v, want quota error", err)
	}
	mustAdmit(t, q, "std", 0, 4)
	if _, err := q.Admit(context.Background(), "std", 0, 5, nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("std 2nd admit: %v, want quota error", err)
	}
}

// TestQuotaReleasedOnFinish: a popped ticket holds its tenant's MaxRunning
// slot until Finish, and Finish wakes the Pop waiting on it.
func TestQuotaReleasedOnFinish(t *testing.T) {
	q := newQ(t, Config{DefaultQuota: Quota{MaxQueued: 8, MaxRunning: 1}})
	mustAdmit(t, q, "a", 0, 0)
	mustAdmit(t, q, "a", 0, 1)
	first, _ := q.Pop()

	second := make(chan *Ticket[int], 1)
	go func() {
		tk, _ := q.Pop()
		second <- tk
	}()
	select {
	case tk := <-second:
		t.Fatalf("second ticket %d popped while tenant at MaxRunning", tk.Payload)
	case <-time.After(50 * time.Millisecond):
	}
	first.Finish(nil)
	select {
	case tk := <-second:
		if tk.Payload != 1 {
			t.Fatalf("second pop: payload %d", tk.Payload)
		}
		tk.Finish(nil)
	case <-time.After(5 * time.Second):
		t.Fatal("Finish did not wake the blocked Pop")
	}
}

// TestQuotaReleasedOnCancelWhileQueued: cancelling a queued ticket's context
// invokes onCancel exactly once, releases the queued quota, and lets the
// tenant admit again.
func TestQuotaReleasedOnCancelWhileQueued(t *testing.T) {
	q := newQ(t, Config{DefaultQuota: Quota{MaxQueued: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	if _, err := q.Admit(ctx, "a", 0, 0, func(err error) { got <- err }); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Admit(context.Background(), "a", 0, 1, nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second admit while first queued: %v", err)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("onCancel err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onCancel never invoked")
	}
	// Quota is released: the tenant fits again, and the cancelled ticket is
	// gone from the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Admit(context.Background(), "a", 0, 2, nil); err == nil {
			break
		} else if !errors.Is(err, ErrQuotaExceeded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after cancel-while-queued")
		}
		time.Sleep(time.Millisecond)
	}
	tk, _ := q.Pop()
	if tk.Payload != 2 {
		t.Fatalf("pop after cancel: payload %d, want 2 (cancelled ticket must not run)", tk.Payload)
	}
	tk.Finish(nil)
}

// TestBackpressureBlocksAndUnblocks: a full queue blocks in-quota admits;
// a Pop frees the slot.
func TestBackpressureBlocksAndUnblocks(t *testing.T) {
	q := New[int](Config{Capacity: 1})
	mustAdmit(t, q, "a", 0, 0)

	admitted := make(chan error, 1)
	go func() {
		_, err := q.Admit(context.Background(), "b", 0, 1, nil)
		admitted <- err
	}()
	select {
	case err := <-admitted:
		t.Fatalf("admit into a full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	tk, _ := q.Pop()
	if err := <-admitted; err != nil {
		t.Fatalf("backpressured admit after Pop: %v", err)
	}
	tk.Finish(nil)
}

// TestBackpressureCancelled: a context dying during the capacity wait
// returns ctx.Err (and counts as a rejection, not an admission).
func TestBackpressureCancelled(t *testing.T) {
	var stats Stats
	q := New[int](Config{Capacity: 1, Metrics: &stats})
	mustAdmit(t, q, "a", 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	admitted := make(chan error, 1)
	go func() {
		_, err := q.Admit(ctx, "b", 0, 1, nil)
		admitted <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-admitted:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled backpressure wait never returned")
	}
	if b := stats.Tenant("b"); b.Rejected != 1 || b.Admitted != 0 {
		t.Fatalf("tenant b stats = %+v, want 1 rejection", b)
	}
}

// TestCloseSemantics: Close fails blocked and future admits with ErrClosed,
// drains the backlog through Pop, then reports done.
func TestCloseSemantics(t *testing.T) {
	q := New[int](Config{Capacity: 1})
	mustAdmit(t, q, "a", 0, 0)
	blocked := make(chan error, 1)
	go func() {
		_, err := q.Admit(context.Background(), "b", 0, 1, nil)
		blocked <- err
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked admit after Close: %v, want ErrClosed", err)
	}
	if _, err := q.Admit(context.Background(), "c", 0, 2, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after Close: %v, want ErrClosed", err)
	}
	tk, ok := q.Pop()
	if !ok || tk.Payload != 0 {
		t.Fatalf("drain pop: payload %v ok=%v", tk.Payload, ok)
	}
	tk.Finish(nil)
	if tk, ok := q.Pop(); ok {
		t.Fatalf("Pop after drain returned ticket %d", tk.Payload)
	}
}

// TestMaxRunningIsWorkConserving: a capped tenant's high-priority backlog
// does not idle the workers — lower-priority tickets of other tenants run —
// and the capped ticket still beats them the moment its quota frees.
func TestMaxRunningIsWorkConserving(t *testing.T) {
	q := newQ(t, Config{Overrides: map[string]Quota{"capped": {MaxRunning: 1}}})
	mustAdmit(t, q, "capped", 9, 0)
	running, _ := q.Pop() // capped tenant now at MaxRunning
	if running.Payload != 0 {
		t.Fatalf("first pop: payload %d", running.Payload)
	}
	mustAdmit(t, q, "capped", 9, 1) // high priority but ineligible
	mustAdmit(t, q, "other", 1, 2)
	mustAdmit(t, q, "other", 0, 3)

	tk, _ := q.Pop()
	if tk.Payload != 2 {
		t.Fatalf("work conservation: popped %d, want 2 (best eligible)", tk.Payload)
	}
	running.Finish(nil) // frees the capped tenant
	tk2, _ := q.Pop()
	if tk2.Payload != 1 {
		t.Fatalf("after quota release: popped %d, want the capped tenant's high-priority 1", tk2.Payload)
	}
	tk.Finish(nil)
	tk2.Finish(nil)
}

// TestMetricsCounters: the hook observes admit/reject/start/finish/cancel
// with consistent counts and depths.
func TestMetricsCounters(t *testing.T) {
	var stats Stats
	q := New[int](Config{Capacity: 8, DefaultQuota: Quota{MaxQueued: 2}, Metrics: &stats})
	mustAdmit(t, q, "a", 1, 0)
	mustAdmit(t, q, "a", 0, 1)
	if _, err := q.Admit(context.Background(), "a", 0, 2, nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	if _, err := q.Admit(ctx, "b", 0, 3, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	tk, _ := q.Pop()
	tk.Finish(nil)
	tk, _ = q.Pop()
	tk.Finish(errors.New("boom"))

	a := stats.Tenant("a")
	if a.Admitted != 2 || a.Rejected != 1 || a.Started != 2 || a.Completed != 1 || a.Failed != 1 {
		t.Fatalf("tenant a stats = %+v", a)
	}
	b := stats.Tenant("b")
	if b.Admitted != 1 || b.Cancelled != 1 || b.Started != 0 {
		t.Fatalf("tenant b stats = %+v", b)
	}
	if d := stats.MaxDepth(); d < 2 || d > 3 {
		t.Fatalf("max depth = %d, want 2..3", d)
	}
	if s := stats.String(); s == "" {
		t.Fatal("Stats.String empty")
	}
}

// TestPopCancelExactlyOnce hammers the pop-vs-cancel race: for every ticket
// exactly one of {worker runs it, onCancel fires} happens.
func TestPopCancelExactlyOnce(t *testing.T) {
	const n = 400
	q := New[int](Config{Capacity: n})
	var ran, cancelled atomic.Int64
	seen := make([]atomic.Int32, n)

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				tk, ok := q.Pop()
				if !ok {
					return
				}
				if seen[tk.Payload].Add(1) != 1 {
					t.Errorf("ticket %d delivered twice", tk.Payload)
				}
				ran.Add(1)
				tk.Finish(nil)
			}
		}()
	}

	var producers sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		producers.Add(1)
		go func() {
			defer producers.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err := q.Admit(ctx, fmt.Sprintf("t%d", i%5), i%3, i, func(error) {
				if seen[i].Add(1) != 1 {
					t.Errorf("ticket %d delivered twice", i)
				}
				cancelled.Add(1)
			})
			if err != nil {
				t.Errorf("admit %d: %v", i, err)
				return
			}
			if i%2 == 0 {
				cancel() // race the workers
			}
		}()
	}
	producers.Wait()
	// Let in-flight cancels land, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load()+cancelled.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d+%d of %d", ran.Load(), cancelled.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	q.Close()
	workers.Wait()
	if got := ran.Load() + cancelled.Load(); got != n {
		t.Fatalf("ran %d + cancelled %d != %d", ran.Load(), cancelled.Load(), n)
	}
}

// TestConcurrentStress: many tenants, priorities, quotas, cancels, and
// workers at once — the accounting invariants hold and nothing deadlocks.
// Run with -race.
func TestConcurrentStress(t *testing.T) {
	var stats Stats
	q := New[int](Config{
		Capacity:     16,
		DefaultQuota: Quota{MaxQueued: 6, MaxRunning: 2},
		Metrics:      &stats,
	})
	const producers, perProducer = 8, 40
	var done atomic.Int64

	var workers sync.WaitGroup
	for w := 0; w < 3; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				tk, ok := q.Pop()
				if !ok {
					return
				}
				time.Sleep(time.Duration(tk.Payload%3) * 100 * time.Microsecond)
				tk.Finish(nil)
				done.Add(1)
			}
		}()
	}

	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		prod.Add(1)
		go func() {
			defer prod.Done()
			tenant := fmt.Sprintf("t%d", p%4)
			for i := 0; i < perProducer; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				_, err := q.Admit(ctx, tenant, i%4, p*perProducer+i, func(error) { done.Add(1) })
				switch {
				case err == nil:
					if i%7 == 0 {
						cancel()
					}
				case errors.Is(err, ErrQuotaExceeded):
					done.Add(1) // rejected counts as resolved
					time.Sleep(200 * time.Microsecond)
				default:
					t.Errorf("admit: %v", err)
				}
				defer cancel()
			}
		}()
	}
	prod.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for done.Load() < producers*perProducer {
		if time.Now().After(deadline) {
			t.Fatalf("resolved %d of %d", done.Load(), producers*perProducer)
		}
		time.Sleep(time.Millisecond)
	}
	q.Close()
	workers.Wait()
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth %d after drain", d)
	}
	for _, ts := range stats.Snapshot() {
		if ts.Admitted != ts.Started+ts.Cancelled {
			t.Fatalf("tenant %s: admitted %d != started %d + cancelled %d",
				ts.Tenant, ts.Admitted, ts.Started, ts.Cancelled)
		}
		if ts.Started != ts.Completed+ts.Failed {
			t.Fatalf("tenant %s: started %d != completed %d + failed %d",
				ts.Tenant, ts.Started, ts.Completed, ts.Failed)
		}
	}
}

// TestDepthAndTenantLoad: the introspection accessors track the lifecycle.
func TestDepthAndTenantLoad(t *testing.T) {
	q := newQ(t, Config{})
	mustAdmit(t, q, "a", 0, 0)
	mustAdmit(t, q, "a", 0, 1)
	if queued, running := q.TenantLoad("a"); queued != 2 || running != 0 {
		t.Fatalf("load = %d/%d", queued, running)
	}
	tk, _ := q.Pop()
	if queued, running := q.TenantLoad("a"); queued != 1 || running != 1 {
		t.Fatalf("load after pop = %d/%d", queued, running)
	}
	tk.Finish(nil)
	if queued, running := q.TenantLoad("a"); queued != 1 || running != 0 {
		t.Fatalf("load after finish = %d/%d", queued, running)
	}
	if d := q.Depth(); d != 1 {
		t.Fatalf("depth = %d", d)
	}
}

// TestNewValidation: a non-positive capacity is a programmer error.
func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with Capacity 0 must panic")
		}
	}()
	New[int](Config{Capacity: 0})
}
