// Package admission is the Engine's admission-controlled job scheduler: a
// bounded, mutex+cond-guarded priority queue with per-tenant quotas and a
// metrics hook. It replaces the plain FIFO channel the Submit path used
// before — a FIFO with no quotas lets one tenant starve everyone else, which
// is exactly the failure mode of the multi-tenant, continuously-absorbing
// workload DPar2 is meant to serve.
//
// # Scheduling order
//
// Pop always returns the eligible ticket with the highest Priority, breaking
// ties by admission order (FIFO within a priority class, by a monotone
// per-queue sequence number). Priorities and quotas reorder and gate WHEN
// work runs, never what it computes: the queue never touches the payloads it
// carries, so results stay bit-identical for a fixed payload regardless of
// ordering.
//
// # Admission
//
// Admit gates a ticket twice. A tenant already holding MaxQueued queued
// tickets is rejected immediately with a *QuotaError (matched by
// errors.Is(err, ErrQuotaExceeded)) — an over-quota tenant never consumes a
// shared queue slot and never blocks. An in-quota admit into a full queue
// blocks (backpressure) until a slot frees, the context is done, or the
// queue closes.
//
// A tenant's MaxRunning quota is enforced at Pop time: a ticket whose tenant
// is at its running cap is skipped in favor of the best eligible ticket of
// any other tenant (the scheduler stays work-conserving — a capped tenant's
// high-priority backlog cannot idle the workers), and becomes eligible again
// the moment one of the tenant's running tickets Finishes.
//
// Quota is released on Finish (running) and on cancel-while-queued (queued):
// a context cancelled while its ticket is still queued removes the ticket,
// frees the tenant's queued slot, and invokes the onCancel callback exactly
// once — the ticket state machine under the queue lock makes pop and cancel
// mutually exclusive.
package admission

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Admit after Close. Callers translate it into
// their own closed-service error (the Engine maps it to ErrEngineClosed).
var ErrClosed = errors.New("admission: queue is closed")

// ErrQuotaExceeded is the sentinel every quota rejection matches via
// errors.Is. The concrete error is a *QuotaError carrying the tenant.
var ErrQuotaExceeded = errors.New("admission: tenant quota exceeded")

// QuotaError reports an immediate quota rejection: which tenant was over
// which limit. errors.Is(err, ErrQuotaExceeded) matches it.
type QuotaError struct {
	Tenant string // the rejected tenant
	Queued int    // tickets the tenant already had queued
	Limit  int    // the MaxQueued limit that was hit
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("admission: tenant %q over quota (%d of %d queued)",
		e.Tenant, e.Queued, e.Limit)
}

// Is matches the ErrQuotaExceeded sentinel.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// Quota bounds one tenant's share of the queue. A zero (or negative) field
// means unbounded on that axis — the zero value is "no quota". Layers that
// expose quotas to users should validate for positive values and reserve the
// zero value for "no quota configured" (the Engine's options panic on
// non-positive input).
type Quota struct {
	MaxQueued  int // max tickets waiting in the queue at once
	MaxRunning int // max tickets popped-but-not-Finished at once
}

// Config configures New.
type Config struct {
	// Capacity bounds the total queued tickets across all tenants; Admit
	// blocks (backpressure) when the queue is full. Must be positive.
	Capacity int
	// DefaultQuota applies to every tenant without an override. The zero
	// value means no per-tenant bounds.
	DefaultQuota Quota
	// Overrides replaces DefaultQuota for specific tenants.
	Overrides map[string]Quota
	// Metrics observes the scheduler; nil means no observation.
	Metrics Metrics
}

// ticketState is the lifecycle of a Ticket; transitions happen only under
// Queue.mu, which is what makes pop/cancel exactly-once. A ticket enters the
// heap as statePending — it holds its Capacity and quota slots but is not
// poppable — and becomes stateQueued only after the metrics hook has
// observed JobAdmitted, so a live observer can never see a ticket start (or
// cancel) before it was admitted.
type ticketState uint8

const (
	statePending ticketState = iota
	stateQueued
	stateRunning
	stateCancelled
	stateDone
)

// Ticket is one admitted unit of work. A ticket is returned by Admit, handed
// to a worker by Pop, and retired by exactly one Finish call (or by the
// queue itself on cancel-while-queued).
type Ticket[T any] struct {
	// Payload is the caller's opaque work item, carried untouched.
	Payload T

	tenant   string
	priority int
	seq      uint64
	index    int // position in the heap; -1 once off it
	enqueued time.Time
	started  time.Time
	state    ticketState
	q        *Queue[T]
	ctx      context.Context
	onCancel func(error)
	stop     func() bool // deregisters the cancel watcher; nil if none
}

// Tenant returns the tenant the ticket was admitted under.
func (t *Ticket[T]) Tenant() string { return t.tenant }

// Priority returns the ticket's priority class.
func (t *Ticket[T]) Priority() int { return t.priority }

// Queue is the scheduler. Create with New; all methods are safe for
// concurrent use.
type Queue[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond

	cfg     Config
	metrics Metrics

	heap    ticketHeap[T]
	seq     uint64
	tenants map[string]*tenantCount
	closed  bool
}

// tenantCount tracks one tenant's live load. Entries are dropped as soon as
// both counts hit zero, so the map stays proportional to active tenants.
type tenantCount struct{ queued, running int }

// New builds a queue. Capacity must be positive (the queue is the
// backpressure bound; an unbounded queue would defeat admission control).
func New[T any](cfg Config) *Queue[T] {
	if cfg.Capacity <= 0 {
		panic(fmt.Sprintf("admission: New with non-positive Capacity %d", cfg.Capacity))
	}
	q := &Queue[T]{
		cfg:     cfg,
		metrics: cfg.Metrics,
		tenants: make(map[string]*tenantCount),
	}
	if q.metrics == nil {
		q.metrics = NopMetrics{}
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// quotaFor resolves the quota that applies to tenant.
func (q *Queue[T]) quotaFor(tenant string) Quota {
	if o, ok := q.cfg.Overrides[tenant]; ok {
		return o
	}
	return q.cfg.DefaultQuota
}

// counts returns (creating if needed) the live-load record for tenant.
// Callers must hold q.mu.
func (q *Queue[T]) counts(tenant string) *tenantCount {
	c := q.tenants[tenant]
	if c == nil {
		c = &tenantCount{}
		q.tenants[tenant] = c
	}
	return c
}

// reap drops the tenant record once idle. Callers must hold q.mu.
func (q *Queue[T]) reap(tenant string, c *tenantCount) {
	if c.queued == 0 && c.running == 0 {
		delete(q.tenants, tenant)
	}
}

// Admit enqueues a ticket after per-tenant checks. It returns immediately
// with a *QuotaError (errors.Is ErrQuotaExceeded) when the tenant is at its
// MaxQueued quota, with ErrClosed when the queue is (or becomes) closed, and
// with ctx.Err() when the context dies first; otherwise it blocks only while
// the queue is at Capacity (backpressure for in-quota work).
//
// onCancel, if non-nil, is invoked exactly once with ctx.Err() if ctx is
// cancelled while the ticket is still queued: the ticket is removed and the
// tenant's queued quota released without a worker ever seeing it. Once Pop
// returns the ticket, onCancel will never be called — cancellation from then
// on is the worker's job (it holds the context in the payload).
func (q *Queue[T]) Admit(ctx context.Context, tenant string, priority int, payload T, onCancel func(error)) (*Ticket[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	var stopWait func() bool
	// fail is the shared unwind of every rejected admit: drop the lock,
	// release the backpressure watcher, and count the rejection.
	fail := func(err error) (*Ticket[T], error) {
		q.mu.Unlock()
		if stopWait != nil {
			stopWait()
		}
		q.metrics.JobRejected(tenant, err)
		return nil, err
	}
	for {
		if q.closed {
			return fail(ErrClosed)
		}
		quota := q.quotaFor(tenant)
		queued := 0
		if c := q.tenants[tenant]; c != nil {
			queued = c.queued
		}
		if quota.MaxQueued > 0 && queued >= quota.MaxQueued {
			return fail(&QuotaError{Tenant: tenant, Queued: queued, Limit: quota.MaxQueued})
		}
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if len(q.heap) < q.cfg.Capacity {
			break
		}
		// Full queue: backpressure. cond.Wait cannot observe ctx, so the
		// first wait arranges for a cancelled context to Broadcast us awake
		// (taking the lock in the callback so the wakeup cannot land between
		// the ctx.Err() check above and the Wait below).
		if stopWait == nil && ctx.Done() != nil {
			stopWait = context.AfterFunc(ctx, func() {
				q.mu.Lock()
				q.cond.Broadcast()
				q.mu.Unlock()
			})
		}
		q.cond.Wait()
	}
	tk := &Ticket[T]{
		Payload:  payload,
		tenant:   tenant,
		priority: priority,
		seq:      q.seq,
		enqueued: time.Now(),
		state:    statePending,
		q:        q,
		ctx:      ctx,
		onCancel: onCancel,
	}
	q.seq++
	heap.Push(&q.heap, tk)
	q.counts(tenant).queued++
	depth := len(q.heap)
	q.mu.Unlock()
	if stopWait != nil {
		stopWait()
	}
	// Emit JobAdmitted while the ticket is still pending (holding its slots
	// but invisible to Pop and to the cancel watcher), then flip it queued:
	// per-ticket event order is Admitted before Started/Cancelled even for a
	// hook snapshotting mid-traffic, and the callback still runs outside the
	// queue lock.
	q.metrics.JobAdmitted(tenant, priority, depth)
	q.mu.Lock()
	tk.state = stateQueued
	if onCancel != nil && ctx.Done() != nil {
		// Watch for cancel-while-queued. Registering under q.mu is safe: an
		// already-done ctx runs the callback in its own goroutine, never
		// synchronously. The callback re-checks the ticket state under q.mu,
		// so a worker popping first wins and the callback is a no-op.
		tk.stop = context.AfterFunc(ctx, func() { q.cancelQueued(tk) })
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	return tk, nil
}

// cancelQueued is the cancel-while-queued path: remove the ticket if (and
// only if) it is still queued, release the tenant's queued quota, and invoke
// onCancel. Racing a concurrent Pop is resolved by the state check under mu.
func (q *Queue[T]) cancelQueued(tk *Ticket[T]) {
	q.mu.Lock()
	if tk.state != stateQueued {
		q.mu.Unlock()
		return
	}
	heap.Remove(&q.heap, tk.index)
	tk.state = stateCancelled
	c := q.tenants[tk.tenant]
	c.queued--
	q.reap(tk.tenant, c)
	wait := time.Since(tk.enqueued)
	q.cond.Broadcast() // a Capacity slot freed
	q.mu.Unlock()
	q.metrics.JobCancelled(tk.tenant, tk.priority, wait)
	tk.onCancel(tk.ctx.Err())
}

// Pop blocks until a ticket is eligible to run (its tenant under MaxRunning)
// and returns it, or returns ok=false once the queue is closed and fully
// drained — the worker-loop exit condition. The popped ticket counts against
// its tenant's running quota until Finish.
func (q *Queue[T]) Pop() (tk *Ticket[T], ok bool) {
	q.mu.Lock()
	for {
		if tk := q.popEligible(); tk != nil {
			tk.state = stateRunning
			tk.started = time.Now()
			c := q.tenants[tk.tenant]
			c.queued--
			c.running++
			depth := len(q.heap)
			wait := tk.started.Sub(tk.enqueued)
			stop := tk.stop
			tk.stop = nil
			q.cond.Broadcast() // a Capacity slot freed
			q.mu.Unlock()
			if stop != nil {
				stop() // the cancel watcher's job is done; release it
			}
			q.metrics.JobStarted(tk.tenant, tk.priority, depth, wait)
			return tk, true
		}
		if q.closed && len(q.heap) == 0 {
			q.mu.Unlock()
			return nil, false
		}
		// Empty, or no ticket is poppable: wait for an Admit or a Finish.
		// No lost-wakeup deadlock: a non-empty heap holds either a pending
		// ticket (its admitter is between the two Admit critical sections
		// and will Broadcast when it flips it queued) or a ticket whose
		// tenant has running > 0 (a Finish, and its Broadcast, is pending).
		q.cond.Wait()
	}
}

// popEligible removes and returns the best eligible ticket, or nil. Callers
// must hold q.mu.
func (q *Queue[T]) popEligible() *Ticket[T] {
	if len(q.heap) == 0 {
		return nil
	}
	// Fast path: the strict head of the priority order is eligible.
	if q.eligible(q.heap[0]) {
		return heap.Pop(&q.heap).(*Ticket[T])
	}
	// Some tenant is at MaxRunning: take the best eligible ticket under the
	// same (priority, seq) order. Linear scan — the heap is bounded by
	// Capacity and this path only runs while a running quota is saturated.
	best := -1
	for i, t := range q.heap {
		if !q.eligible(t) {
			continue
		}
		if best < 0 || beats(t, q.heap[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return heap.Remove(&q.heap, best).(*Ticket[T])
}

// eligible reports whether the ticket may be popped: fully admitted (not
// pending the JobAdmitted callback) and its tenant under its running cap.
// Callers must hold q.mu.
func (q *Queue[T]) eligible(tk *Ticket[T]) bool {
	if tk.state != stateQueued {
		return false
	}
	quota := q.quotaFor(tk.tenant)
	if quota.MaxRunning <= 0 {
		return true
	}
	c := q.tenants[tk.tenant]
	return c == nil || c.running < quota.MaxRunning
}

// Finish retires a popped ticket: the tenant's running quota is released
// (waking Pops blocked on it) and the run latency reported to the metrics
// hook. Exactly one Finish per popped ticket; err is the job's outcome,
// echoed to the hook (nil = success).
func (t *Ticket[T]) Finish(err error) {
	q := t.q
	q.mu.Lock()
	if t.state != stateRunning {
		q.mu.Unlock()
		panic("admission: Finish on a ticket that is not running")
	}
	t.state = stateDone
	c := q.tenants[t.tenant]
	c.running--
	q.reap(t.tenant, c)
	run := time.Since(t.started)
	q.cond.Broadcast() // a MaxRunning slot freed
	q.mu.Unlock()
	q.metrics.JobFinished(t.tenant, t.priority, run, err)
}

// Close stops admission: every Admit from now on — including ones blocked on
// backpressure — fails with ErrClosed, while already-admitted tickets keep
// draining through Pop (Pop reports ok=false only once the queue is empty).
// Close is idempotent and returns without waiting for the drain.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth reports the current number of queued tickets.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// TenantLoad reports one tenant's live load (queued and running tickets).
func (q *Queue[T]) TenantLoad(tenant string) (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if c := q.tenants[tenant]; c != nil {
		return c.queued, c.running
	}
	return 0, 0
}

// ----- the priority heap ----------------------------------------------------

// beats reports whether a runs before b: higher priority first, then FIFO by
// sequence number within a class.
func beats[T any](a, b *Ticket[T]) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// ticketHeap implements container/heap ordered by beats.
type ticketHeap[T any] []*Ticket[T]

func (h ticketHeap[T]) Len() int           { return len(h) }
func (h ticketHeap[T]) Less(i, j int) bool { return beats(h[i], h[j]) }
func (h ticketHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *ticketHeap[T]) Push(x any) {
	t := x.(*Ticket[T])
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *ticketHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
