package admission

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// TestStatsJSONRoundTrip: marshalling a live Stats and unmarshalling into a
// StatsSnapshot is lossless, with tenants in deterministic sorted order.
func TestStatsJSONRoundTrip(t *testing.T) {
	s := &Stats{}
	// Populate through the Metrics interface, out of tenant-name order, so
	// the test also pins the sorted output ordering.
	s.JobAdmitted("zeta", 5, 3)
	s.JobStarted("zeta", 5, 2, 40*time.Millisecond)
	s.JobFinished("zeta", 5, 100*time.Millisecond, nil)
	s.JobAdmitted("alpha", 0, 7)
	s.JobRejected("alpha", errors.New("quota"))
	s.JobCancelled("alpha", 0, 5*time.Millisecond)
	s.JobFinished("mid", 1, 9*time.Millisecond, errors.New("boom"))
	s.CacheHit("alpha")
	s.CacheMiss("alpha")

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}

	want := s.SnapshotAll()
	if snap.MaxDepth != want.MaxDepth {
		t.Fatalf("max_depth %d, want %d", snap.MaxDepth, want.MaxDepth)
	}
	if len(snap.Tenants) != len(want.Tenants) {
		t.Fatalf("tenant count %d, want %d", len(snap.Tenants), len(want.Tenants))
	}
	for i := range want.Tenants {
		if snap.Tenants[i] != want.Tenants[i] {
			t.Fatalf("tenant %d: %+v, want %+v", i, snap.Tenants[i], want.Tenants[i])
		}
	}
	// Deterministic ordering: sorted by tenant name.
	for i := 1; i < len(snap.Tenants); i++ {
		if snap.Tenants[i-1].Tenant >= snap.Tenants[i].Tenant {
			t.Fatalf("tenants not sorted: %q before %q",
				snap.Tenants[i-1].Tenant, snap.Tenants[i].Tenant)
		}
	}
}

// TestStatsJSONDeterministic: repeated marshals of the same state are
// byte-identical (map iteration order must not leak into the output).
func TestStatsJSONDeterministic(t *testing.T) {
	s := &Stats{}
	for _, tenant := range []string{"b", "a", "c", "", "d"} {
		s.JobAdmitted(tenant, 0, 1)
	}
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("marshal %d differs:\n%s\n%s", i, first, again)
		}
	}
}

// TestStatsJSONFieldNames pins the wire contract /v1/stats documents.
func TestStatsJSONFieldNames(t *testing.T) {
	s := &Stats{}
	s.JobAdmitted("t", 0, 1)
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"tenants"`, `"max_depth"`, `"tenant"`,
		`"admitted"`, `"rejected"`, `"started"`, `"completed"`, `"failed"`,
		`"cancelled"`, `"queue_wait_ns"`, `"run_time_ns"`, `"cache_hits"`,
		`"cache_misses"`} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Errorf("wire form missing field %s: %s", field, raw)
		}
	}
}
