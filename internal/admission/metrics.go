package admission

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics observes the scheduler. Implementations must be safe for
// concurrent use; every callback is invoked outside the queue lock, so a
// hook may call back into the queue (Depth, TenantLoad) freely. Callbacks
// for different tickets may interleave in any order — the hook sees a
// faithful event stream per ticket, not a globally serialized one.
//
// The event vocabulary, per ticket lifecycle:
//
//   - JobAdmitted   — the ticket entered the queue; queueDepth is the depth
//     just after. The ticket becomes poppable (and cancellable) only once
//     this callback returns, so even a mid-traffic observer sees Admitted
//     before the same ticket's Started or Cancelled.
//   - JobRejected   — the admit failed (quota, closed queue, or the context
//     dying during backpressure); err says which.
//   - JobStarted    — a worker popped the ticket; queueWait is time spent
//     queued, queueDepth the depth just after the pop.
//   - JobFinished   — the worker retired the ticket via Finish; runTime is
//     pop-to-Finish, err the job's outcome (nil = success).
//   - JobCancelled  — the ticket's context died while it was still queued;
//     it will never start.
type Metrics interface {
	JobAdmitted(tenant string, priority, queueDepth int)
	JobRejected(tenant string, err error)
	JobStarted(tenant string, priority, queueDepth int, queueWait time.Duration)
	JobFinished(tenant string, priority int, runTime time.Duration, err error)
	JobCancelled(tenant string, priority int, queueWait time.Duration)
}

// CacheMetrics is the optional extension of Metrics for observing the
// Engine's content-addressed result cache. A Metrics implementation that
// also implements CacheMetrics receives a callback per cache lookup — hits
// serve a repeated decomposition without running the method; misses ran it
// (and populated the cache on success). The queue itself never calls these;
// the Engine drives them around Decompose/runJob.
type CacheMetrics interface {
	CacheHit(tenant string)
	CacheMiss(tenant string)
}

// NopMetrics is the no-op hook the queue uses when none is configured.
type NopMetrics struct{}

func (NopMetrics) JobAdmitted(string, int, int)                  {}
func (NopMetrics) JobRejected(string, error)                     {}
func (NopMetrics) JobStarted(string, int, int, time.Duration)    {}
func (NopMetrics) JobFinished(string, int, time.Duration, error) {}
func (NopMetrics) JobCancelled(string, int, time.Duration)       {}

// Stats is a ready-made Metrics implementation: per-tenant counters and
// latency totals, enough to print a served-traffic table. The zero value is
// ready to use; Snapshot reads a consistent copy at any time, including
// while traffic is still flowing.
type Stats struct {
	mu       sync.Mutex
	tenants  map[string]*TenantStats
	maxDepth int
}

// TenantStats is one tenant's aggregate view of the traffic it was served.
//
// The JSON tags are a stable wire contract consumed by the HTTP service's
// /v1/stats endpoint (docs/SERVICE.md): renaming one is a breaking change.
// Durations marshal as integer nanoseconds (encoding/json's time.Duration
// default), hence the _ns suffixes.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Admitted  int64  `json:"admitted"`  // tickets that entered the queue
	Rejected  int64  `json:"rejected"`  // admits refused (quota, closed, ctx during backpressure)
	Started   int64  `json:"started"`   // tickets handed to a worker
	Completed int64  `json:"completed"` // finished with a nil error
	Failed    int64  `json:"failed"`    // finished with a non-nil error
	Cancelled int64  `json:"cancelled"` // cancelled while still queued

	QueueWait time.Duration `json:"queue_wait_ns"` // total time started+cancelled tickets sat queued
	RunTime   time.Duration `json:"run_time_ns"`   // total pop-to-Finish time of finished tickets

	CacheHits   int64 `json:"cache_hits"`   // result-cache hits (method never invoked)
	CacheMisses int64 `json:"cache_misses"` // result-cache misses (method ran)
}

// StatsSnapshot is the marshallable form of a Stats: every tenant's
// aggregates in deterministic (sorted by tenant name) order plus the
// queue's high-water depth. Stats.MarshalJSON emits exactly this shape, so
// a StatsSnapshot round-trips a marshalled Stats losslessly.
type StatsSnapshot struct {
	Tenants  []TenantStats `json:"tenants"`
	MaxDepth int           `json:"max_depth"`
}

// MeanQueueWait is the average time a started or cancelled ticket spent
// queued (0 when none have left the queue yet).
func (t TenantStats) MeanQueueWait() time.Duration {
	n := t.Started + t.Cancelled
	if n == 0 {
		return 0
	}
	return t.QueueWait / time.Duration(n)
}

// MeanRunTime is the average pop-to-Finish latency (0 when nothing finished).
func (t TenantStats) MeanRunTime() time.Duration {
	n := t.Completed + t.Failed
	if n == 0 {
		return 0
	}
	return t.RunTime / time.Duration(n)
}

// tenant returns (creating if needed) the record for name. Callers hold s.mu.
func (s *Stats) tenant(name string) *TenantStats {
	if s.tenants == nil {
		s.tenants = make(map[string]*TenantStats)
	}
	t := s.tenants[name]
	if t == nil {
		t = &TenantStats{Tenant: name}
		s.tenants[name] = t
	}
	return t
}

func (s *Stats) JobAdmitted(tenant string, priority, queueDepth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).Admitted++
	if queueDepth > s.maxDepth {
		s.maxDepth = queueDepth
	}
}

func (s *Stats) JobRejected(tenant string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).Rejected++
}

func (s *Stats) JobStarted(tenant string, priority, queueDepth int, queueWait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	t.Started++
	t.QueueWait += queueWait
}

func (s *Stats) JobFinished(tenant string, priority int, runTime time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	if err == nil {
		t.Completed++
	} else {
		t.Failed++
	}
	t.RunTime += runTime
}

func (s *Stats) JobCancelled(tenant string, priority int, queueWait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	t.Cancelled++
	t.QueueWait += queueWait
}

// CacheHit implements CacheMetrics.
func (s *Stats) CacheHit(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).CacheHits++
}

// CacheMiss implements CacheMetrics.
func (s *Stats) CacheMiss(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).CacheMisses++
}

// MaxDepth reports the deepest the queue has been at any admit.
func (s *Stats) MaxDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxDepth
}

// Tenant returns a copy of one tenant's stats (zero value if unseen).
func (s *Stats) Tenant(name string) TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return *t
	}
	return TenantStats{Tenant: name}
}

// Snapshot returns a copy of every tenant's stats, sorted by tenant name.
func (s *Stats) Snapshot() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// SnapshotAll returns the marshallable view of the whole Stats: the sorted
// per-tenant snapshot plus the queue's high-water depth.
func (s *Stats) SnapshotAll() StatsSnapshot {
	return StatsSnapshot{Tenants: s.Snapshot(), MaxDepth: s.MaxDepth()}
}

// MarshalJSON emits the StatsSnapshot form with deterministic tenant
// ordering — the /v1/stats wire shape. (Stats itself has unexported mutable
// state, so the default marshaller would emit nothing useful.)
func (s *Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.SnapshotAll())
}

// String renders the served-traffic table — one row per tenant plus the
// queue's high-water depth. Meant for CLIs and examples; structured
// consumers should use Snapshot.
func (s *Stats) String() string {
	snap := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %7s %7s %7s %11s %11s\n",
		"tenant", "admitted", "rejected", "completed", "failed", "cancel", "c-hit", "c-miss", "mean-wait", "mean-run")
	for _, t := range snap {
		name := t.Tenant
		if name == "" {
			name = "(default)"
		}
		fmt.Fprintf(&b, "%-12s %9d %9d %9d %9d %7d %7d %7d %11v %11v\n",
			name, t.Admitted, t.Rejected, t.Completed, t.Failed, t.Cancelled,
			t.CacheHits, t.CacheMisses,
			t.MeanQueueWait().Round(time.Microsecond),
			t.MeanRunTime().Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "max queue depth: %d\n", s.MaxDepth())
	return b.String()
}
