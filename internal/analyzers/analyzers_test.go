package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest on the
// standard library only: each testdata/src/<pkg> directory is parsed and
// type-checked (std imports resolved from GOROOT source, local stand-in
// packages like "compute" from sibling fixture directories), the analyzer
// under test runs, findings pass through the same //repro:allow Filter the
// driver uses, and the result is matched against `// want` expectations:
//
//	code() // want `regexp` `another regexp`
//	// want-next `regexp`     <- expectation for the NEXT line (used when the
//	//                           finding lands on a comment-only line)
//
// Every finding must be wanted and every want must be found.

var fixtureTests = []struct {
	analyzer *Analyzer
	dir      string
}{
	{AnalyzerDeterminism, "determinismtest"},
	{AnalyzerArenaPair, "arenapairtest"},
	{AnalyzerCtxLoop, "ctxlooptest"},
	{AnalyzerNoAlloc, "noalloctest"},
	{AnalyzerLockHold, "lockholdtest"},
	{AnalyzerGoroLeak, "goroleaktest"},
	{AnalyzerLockOrder, "lockordertest"},
	{AnalyzerErrDisc, "errdisctest"},
}

func TestFixtures(t *testing.T) {
	for _, tt := range fixtureTests {
		t.Run(tt.analyzer.Name, func(t *testing.T) {
			runFixture(t, tt.analyzer, tt.dir)
		})
	}
}

func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, pkg, info := loadFixturePkg(t, fset, dir)

	// The fixture package gets the same interprocedural treatment as a real
	// run: its own summaries are computed (stand-in packages like "compute"
	// stay external, i.e. trusted), so interprocedural fixture cases exercise
	// the summary plumbing end to end.
	lp := &LoadedPackage{Path: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}
	table := ComputeSummaries([]*LoadedPackage{lp}, nil)

	var diags []Diagnostic
	a.Run(&Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		Info:      info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
		Summaries: table,
	})
	diags, _ = Filter(fset, files, diags, map[string]bool{a.Name: true})

	wants := collectWants(t, fset, files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d: want match for %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var (
	wantRe     = regexp.MustCompile("^//\\s*want((?:\\s+`[^`]*`)+)\\s*$")
	wantNextRe = regexp.MustCompile("^//\\s*want-next((?:\\s+`[^`]*`)+)\\s*$")
	wantArgRe  = regexp.MustCompile("`([^`]*)`")
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := fset.Position(c.Pos()).Line
				text := c.Text
				var body string
				if m := wantNextRe.FindStringSubmatch(text); m != nil {
					line, body = line+1, m[1]
				} else if m := wantRe.FindStringSubmatch(text); m != nil {
					body = m[1]
				} else {
					continue
				}
				for _, arg := range wantArgRe.FindAllStringSubmatch(body, -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fset.Position(c.Pos()).Filename, line, arg[1], err)
					}
					out = append(out, want{file: fset.Position(c.Pos()).Filename, line: line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// fixtureImporter resolves std packages from GOROOT source and fixture
// stand-in packages (bare import paths like "compute") from testdata/src.
type fixtureImporter struct {
	t     *testing.T
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	if strings.Contains(path, "/") || !fixtureDirExists(path) {
		return fi.std.Import(path)
	}
	files, pkg, _ := loadFixtureRaw(fi.t, fi.fset, path, fi)
	_ = files
	fi.cache[path] = pkg
	return pkg, nil
}

func fixtureDir(dir string) string { return filepath.Join("testdata", "src", dir) }

func fixtureDirExists(dir string) bool {
	st, err := os.Stat(fixtureDir(dir))
	return err == nil && st.IsDir()
}

func loadFixturePkg(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fi := &fixtureImporter{
		t:     t,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*types.Package{},
	}
	return loadFixtureRaw(t, fset, dir, fi)
}

func loadFixtureRaw(t *testing.T, fset *token.FileSet, dir string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	glob := filepath.Join(fixtureDir(dir), "*.go")
	names, err := filepath.Glob(glob)
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files match %s: %v", glob, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	info := NewInfo()
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v\n%s", dir, err, strings.Join(typeErrs, "\n"))
	}
	return files, pkg, info
}

// TestByName pins the registry surface the driver depends on.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := ByName("goroleak, lockorder")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset failed: %v (%d)", err, len(two))
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	want := []string{"determinism", "arenapair", "ctxloop", "noalloc", "lockhold", "goroleak", "lockorder", "errdisc"}
	if got := Names(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestIsPkgPath pins the fixture/real-path matching contract.
func TestIsPkgPath(t *testing.T) {
	cases := []struct {
		path, pkg string
		want      bool
	}{
		{"compute", "compute", true},
		{"repro/internal/compute", "compute", true},
		{"example.com/x/compute", "compute", true},
		{"repro/internal/computed", "compute", false},
		{"rng", "compute", false},
	}
	for _, c := range cases {
		if got := isPkgPath(c.path, c.pkg); got != c.want {
			t.Errorf("isPkgPath(%q, %q) = %v, want %v", c.path, c.pkg, got, c.want)
		}
	}
}
