// Package lockholdtest is the fixture suite for the lockhold analyzer.
package lockholdtest

import (
	"sync"

	"compute"
)

type task struct{ id int }

// engine reproduces the pre-admission-control Submit shape: a queue channel
// guarded by a mutex.
type engine struct {
	mu    sync.Mutex
	queue chan task
	n     int
}

// submitHoldingLock is the historical deadlock: holding e.mu while sending to
// a possibly-full queue stalls every other Submit and the drain worker.
func (e *engine) submitHoldingLock(t task) {
	e.mu.Lock()
	e.n++
	e.queue <- t // want `channel send while holding e\.mu`
	e.mu.Unlock()
}

// submitUnlockFirst is the fixed shape: leave the critical section, then send.
func (e *engine) submitUnlockFirst(t task) {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	e.queue <- t
}

// submitDeferUnlock: a deferred Unlock keeps the lock to function exit, so
// the send still happens under the lock.
func (e *engine) submitDeferUnlock(t task) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	e.queue <- t // want `channel send while holding e\.mu`
}

// receiveHoldingLock: a receive blocks the same way a send does.
func (e *engine) receiveHoldingLock() task {
	e.mu.Lock()
	defer e.mu.Unlock()
	return <-e.queue // want `channel receive while holding e\.mu`
}

// selectNoDefaultHoldingLock: a select without default parks under the lock.
func (e *engine) selectNoDefaultHoldingLock(stop chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `select with no default clause while holding e\.mu`
	case t := <-e.queue:
		e.n += t.id
	case <-stop:
	}
}

// selectWithDefaultOK: a default clause makes the select non-blocking.
func (e *engine) selectWithDefaultOK() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case t := <-e.queue:
		e.n += t.id
	default:
	}
}

// dispatchHoldingLock: a blocking pool dispatch parks until workers finish —
// workers that may need the same lock.
func (e *engine) dispatchHoldingLock(p *compute.Pool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p.ParallelFor(e.n, func(i int) {}) // want `blocking compute\.Pool dispatch while holding e\.mu`
}

// waitHoldingLock: WaitGroup.Wait under a lock pins it for the full drain.
func (e *engine) waitHoldingLock(wg *sync.WaitGroup) {
	e.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding e\.mu`
	e.mu.Unlock()
}

// waitAfterUnlock is the fixed Close shape.
func (e *engine) waitAfterUnlock(wg *sync.WaitGroup) {
	e.mu.Lock()
	e.n = 0
	e.mu.Unlock()
	wg.Wait()
}

// queueLike reproduces the admission queue: a cond bound to its own mutex.
type queueLike struct {
	mu    sync.Mutex
	cond  *sync.Cond
	other sync.Mutex
	items []task
}

func newQueueLike() *queueLike {
	q := &queueLike{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// popOwnLock: cond.Wait under the lock the cond was built over is THE
// correct pattern (Wait atomically unlocks q.mu while parked).
func (q *queueLike) popOwnLock() task {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	t := q.items[0]
	q.items = q.items[1:]
	return t
}

// popForeignLock: waiting while holding a DIFFERENT lock sleeps with that
// lock pinned — Wait only releases the cond's own lock.
func (q *queueLike) popForeignLock() {
	q.other.Lock()
	q.cond.Wait() // want `sync\.Cond\.Wait bound to a DIFFERENT lock`
	q.other.Unlock()
}

// rlockAcrossSend: read locks count too.
type rwGuard struct {
	mu sync.RWMutex
	ch chan int
}

func (g *rwGuard) rlockAcrossSend(v int) {
	g.mu.RLock()
	g.ch <- v // want `channel send while holding g\.mu`
	g.mu.RUnlock()
}

func (g *rwGuard) runlockFirst(v int) {
	g.mu.RLock()
	g.mu.RUnlock()
	g.ch <- v
}

// suppressedSend: a justified send under lock carries a directive.
func (e *engine) suppressedSend(t task) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue <- t //repro:allow(lockhold) queue is buffered to capacity n and n is bounded under this same lock, so the send never blocks
}
