// Interprocedural lockhold cases: blocking hidden behind a helper is resolved
// through the callee's MayBlock summary.
package lockholdtest

import "sync"

type flusher struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	pending int
}

// waitBehindHelper hides the blocking Wait one call down.
func (f *flusher) waitBehindHelper() {
	f.wg.Wait()
}

// flushHoldingLock blocks transitively while f.mu is held.
func (f *flusher) flushHoldingLock() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pending = 0
	f.waitBehindHelper() // want `call to waitBehindHelper, which may block`
}

// flushUnlockFirst releases the lock before the blocking callee — clean.
func (f *flusher) flushUnlockFirst() {
	f.mu.Lock()
	f.pending = 0
	f.mu.Unlock()
	f.waitBehindHelper()
}

// tally is a plain non-blocking helper: calling it under the lock is fine.
func (f *flusher) tally() {
	f.pending++
}

func (f *flusher) addUnderLock() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tally()
}
