// Package noalloctest is the fixture suite for the noalloc analyzer.
package noalloctest

var sink []float64

func consume(func()) {}

// axpyKernel is the shape the annotation exists for: pure index arithmetic
// over preallocated slices.
//
//repro:noalloc
func axpyKernel(dst, x []float64, a float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// makeInKernel allocates a scratch slice per call.
//
//repro:noalloc
func makeInKernel(n int) {
	buf := make([]float64, n) // want `make inside //repro:noalloc function makeInKernel`
	sink = buf
}

// newInKernel heap-allocates a struct per call.
//
//repro:noalloc
func newInKernel() *struct{ x float64 } {
	return new(struct{ x float64 }) // want `new inside //repro:noalloc function newInKernel`
}

// appendInKernel grows a slice per call.
//
//repro:noalloc
func appendInKernel(xs []float64, v float64) []float64 {
	return append(xs, v) // want `append inside //repro:noalloc function appendInKernel`
}

// sliceLitInKernel builds a slice literal per call.
//
//repro:noalloc
func sliceLitInKernel(a, b float64) float64 {
	xs := []float64{a, b} // want `slice/map composite literal`
	return xs[0] + xs[1]
}

// escapingStructInKernel takes the address of a composite literal.
//
//repro:noalloc
func escapingStructInKernel() *struct{ x float64 } {
	return &struct{ x float64 }{x: 1} // want `&composite-literal`
}

// capturingClosureInKernel allocates a closure environment.
//
//repro:noalloc
func capturingClosureInKernel(n int) {
	consume(func() { // want `capturing closure`
		n++
	})
}

// nonCapturingClosureAllowed: a closure over nothing costs nothing.
//
//repro:noalloc
func nonCapturingClosureAllowed() {
	consume(func() {})
}

// goInKernel launches a goroutine per call.
//
//repro:noalloc
func goInKernel() {
	go consume(nil) // want `go statement`
}

// structValueAllowed: a plain (non-escaping) struct value literal is fine.
//
//repro:noalloc
func structValueAllowed(a float64) float64 {
	p := struct{ x, y float64 }{x: a, y: a}
	return p.x + p.y
}

// unannotated functions may allocate freely.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

// coldPathSuppressed mirrors the FactorBatch shape: one documented cold-path
// allocation inside an otherwise allocation-free function.
//
//repro:noalloc
func coldPathSuppressed(ws []float64, n int) []float64 {
	if ws == nil {
		ws = make([]float64, n) //repro:allow(noalloc) cold fallback when the caller passes no workspace
	}
	return ws[:n]
}
