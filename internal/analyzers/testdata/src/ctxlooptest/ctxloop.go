// Package ctxlooptest is the fixture suite for the ctxloop analyzer.
package ctxlooptest

import (
	"context"

	"compute"
)

func heavyStep(ctx context.Context, i int) error { return ctx.Err() }
func cheapStep(i int) int                        { return i * 2 }

// sweepIgnoresCtx: the ALS-sweep shape — a loop dispatching pool work with no
// per-iteration cancellation check.
func sweepIgnoresCtx(ctx context.Context, p *compute.Pool, iters int) {
	for it := 0; it < iters; it++ { // want `never observes ctx`
		p.ParallelFor(64, func(i int) {
			cheapStep(i)
		})
	}
}

// sweepChecksCtx: checking ctx.Err() each iteration is the required shape.
func sweepChecksCtx(ctx context.Context, p *compute.Pool, iters int) error {
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.ParallelFor(64, func(i int) {
			cheapStep(i)
		})
	}
	return nil
}

// sweepPassesCtx: passing ctx to a context-taking callee also observes it.
func sweepPassesCtx(ctx context.Context, iters int) error {
	for it := 0; it < iters; it++ {
		if err := heavyStep(ctx, it); err != nil {
			return err
		}
	}
	return nil
}

// heavyCalleeNoCtx: calling a ctx-taking function without consulting ctx in
// the loop is still heavy work with no cancellation.
func heavyCalleeNoCtx(ctx context.Context, iters int) {
	bg := context.Background()
	for it := 0; it < iters; it++ { // want `never observes ctx`
		_ = heavyStep(bg, it)
	}
}

// cheapLoopExempt: scalar-only loops need no per-iteration ctx check.
func cheapLoopExempt(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += cheapStep(i)
	}
	_ = ctx.Err()
	return total
}

// rangeSweep: range loops are held to the same rule.
func rangeSweep(ctx context.Context, p *compute.Pool, batches [][]float64) {
	for range batches { // want `never observes ctx`
		p.Do(func() {})
	}
}

// DecomposeCtx uses its context: the exported ...Ctx contract is satisfied.
func DecomposeCtx(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// AbsorbCtx drops its context on the floor.
func AbsorbCtx(ctx context.Context, n int) int { // want `AbsorbCtx takes a context\.Context but never uses it`
	return cheapStep(n)
}

// unexported ...Ctx helpers are not held to the exported-contract rule.
func absorbCtx(ctx context.Context, n int) int {
	return cheapStep(n)
}

// suppressedSweep: a justified unobserved loop carries a directive.
func suppressedSweep(ctx context.Context, p *compute.Pool, iters int) {
	//repro:allow(ctxloop) bounded to two warmup iterations before the cancellable main loop
	for it := 0; it < 2; it++ {
		p.ParallelFor(8, func(i int) { cheapStep(i) })
	}
	_ = ctx.Err()
}
