// Interprocedural ctxloop cases: context observation and loop heaviness
// resolved through the summary table.
package ctxlooptest

import (
	"context"

	"compute"
)

// stepObserving checks its context; handing ctx to it IS observation.
func stepObserving(ctx context.Context, p *compute.Pool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.Do(func() {})
	return nil
}

// stepIgnoring takes a context and provably ignores it.
func stepIgnoring(_ctx context.Context, p *compute.Pool) {
	p.Do(func() {})
}

// sweepDelegated: ctx observed one call deep — no finding.
func sweepDelegated(ctx context.Context, p *compute.Pool, iters int) error {
	for i := 0; i < iters; i++ {
		if err := stepObserving(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// sweepIgnoredDownstream: every iteration hands ctx to a callee whose summary
// says it never observes a context — cancellation cannot take effect.
func sweepIgnoredDownstream(ctx context.Context, p *compute.Pool, iters int) {
	for i := 0; i < iters; i++ { // want `never observes ctx`
		stepIgnoring(ctx, p)
	}
}

// PumpCtx advertises cancellation but delivers ctx only to an ignoring
// callee: a hollow ...Ctx promise one call deep.
func PumpCtx(ctx context.Context, p *compute.Pool) { // want `passes its context only to callees that never observe a context`
	stepIgnoring(ctx, p)
}

// blockingHelper may block via the pool dispatch; its summary makes loops
// that call it heavy even though the loop body itself looks cheap.
func blockingHelper(p *compute.Pool) {
	p.Do(func() {})
}

func sweepHeavyViaHelper(ctx context.Context, p *compute.Pool, iters int) {
	for i := 0; i < iters; i++ { // want `never observes ctx`
		blockingHelper(p)
	}
}
