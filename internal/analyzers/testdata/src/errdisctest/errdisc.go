// Package errdisctest is the fixture suite for the errdisc analyzer.
package errdisctest

import (
	"context"
	"errors"
	"fmt"
)

// QuotaError stands in for the engine's typed errors.
type QuotaError struct {
	User string
}

func (e *QuotaError) Error() string { return "quota exceeded for " + e.User }

var errBase = errors.New("base failure")

// swallowV flattens the error to text: errors.Is can no longer match it.
func swallowV(err error) error {
	return fmt.Errorf("running job: %v", err) // want `flattens an error value with %v`
}

// swallowS: %s is the same flattening with different clothes.
func swallowS(err error) error {
	return fmt.Errorf("running job: %s", err) // want `flattens an error value with %s`
}

// swallowTyped: a typed error loses its type behind %v.
func swallowTyped(qe *QuotaError) error {
	return fmt.Errorf("admission: %v", qe) // want `flattens an error value with %v`
}

// wrapOK: %w keeps the chain intact.
func wrapOK(err error) error {
	return fmt.Errorf("running job: %w", err)
}

// wrapMixed: non-error verbs alongside a %w are fine.
func wrapMixed(err error, attempt int) error {
	return fmt.Errorf("attempt %d: %w", attempt, err)
}

// notAnError: strings and ints formatted with %s/%v are not findings.
func notAnError(name string, n int) error {
	return fmt.Errorf("bad input %q (%d items): %s", name, n, name)
}

// ctxWrapped: even %w is wrong for ctx.Err() — the documented contract is the
// raw context error.
func ctxWrapped(ctx context.Context) error {
	return fmt.Errorf("sweep cancelled: %w", ctx.Err()) // want `ctx\.Err\(\) routed through fmt\.Errorf`
}

// ctxDirect: the contract — return ctx.Err() unwrapped.
func ctxDirect(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// constFormat: constant-propagated formats are still checked.
const prefix = "state: %v"

func swallowConstFormat(err error) error {
	return fmt.Errorf(prefix, err) // want `flattens an error value with %v`
}

// suppressed: a deliberate flatten carries an //repro:allow with the reason.
func suppressedFlatten(err error) error {
	return fmt.Errorf("user-facing summary: %v", err) //repro:allow(errdisc) message crosses the API boundary as opaque text; the typed error is logged separately
}

// stale: a directive with no matching finding is itself reported.
func staleAllow(err error) error {
	// want-next `unused //repro:allow`
	//repro:allow(errdisc) wrapped with %w below
	return fmt.Errorf("ok: %w", err)
}
