// Package goroleaktest is the fixture suite for the goroleak analyzer.
package goroleaktest

import (
	"context"
	"sync"
)

var sink int

func work() { sink++ }

// leakedLoop: no WaitGroup, no channel, no ctx — nothing can ever join it.
func leakedLoop() {
	go func() { // want `goroutine has no join evidence`
		for i := 0; i < 1000000; i++ {
			sink += i
		}
	}()
}

// wgDeferred: the canonical joined worker — Done deferred, covers every path.
func wgDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// wgStraightLine: Done on the only path out; fine without a defer.
func wgStraightLine(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done()
	}()
}

// wgEarlyReturn: the early return skips Done, stranding the matching Wait.
func wgEarlyReturn(wg *sync.WaitGroup, skip bool) {
	wg.Add(1)
	go func() { // want `WaitGroup.Done but not on all paths`
		if skip {
			return
		}
		work()
		wg.Done()
	}()
}

// chanJoined: sending the result ties the goroutine's lifetime to a receiver.
func chanJoined(out chan int) {
	go func() {
		out <- 1
	}()
}

// rangeJoined: draining a channel is communication — the sender's close ends it.
func rangeJoined(in chan int) {
	go func() {
		for v := range in {
			sink += v
		}
	}()
}

// ctxBounded: the select on ctx.Done gives cancellation a way in.
func ctxBounded(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
				work()
			}
		}
	}()
}

// spinForever has no join surface at all; spawning it leaks (interprocedural:
// the evidence is the callee's summary, not the go statement's own body).
func spinForever() {
	for {
		sink++
	}
}

func spawnNamedLeak() {
	go spinForever() // want `goroutine running spinForever has no join evidence`
}

// drainQueue communicates on a channel, so spawning it is joined.
func drainQueue(in chan int) {
	for v := range in {
		sink += v
	}
}

func spawnNamedJoined(in chan int) {
	go drainQueue(in)
}

// markDone signals the WaitGroup one call deep; the summary carries the fact
// back to the goroutine body that calls it.
func markDone(wg *sync.WaitGroup) { wg.Done() }

func wgViaHelper(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		markDone(wg)
	}()
}

// suppressed: an intentional fire-and-forget carries an //repro:allow.
func suppressedLeak() {
	//repro:allow(goroleak) detached warmup touch; bounded by the first loop pass and never re-spawned
	go func() {
		work()
	}()
}

// stale: a directive with no matching finding is itself reported.
func staleAllow(out chan int) {
	// want-next `unused //repro:allow`
	//repro:allow(goroleak) nothing leaks here, the send joins it
	go func() {
		out <- 1
	}()
}
