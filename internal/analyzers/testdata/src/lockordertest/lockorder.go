// Package lockordertest is the fixture suite for the lockorder analyzer.
// Lock identity here follows summary.go's lockID: package-level locks are
// "lockordertest.muX", struct-field locks are "lockordertest.<type>.mu".
package lockordertest

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex

	counter int
)

// lockAB and lockBA acquire the same two package-level locks in opposite
// orders: the classic two-function deadlock no single function can see.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock-order cycle lockordertest\.muA → lockordertest\.muB → lockordertest\.muA`
	counter++
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	counter++
	muA.Unlock()
	muB.Unlock()
}

// consistentOrder1/2 take muC before muD everywhere: acyclic, no finding.
func consistentOrder1() {
	muC.Lock()
	muD.Lock()
	counter++
	muD.Unlock()
	muC.Unlock()
}

func consistentOrder2() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
	counter++
}

// engine/sched reproduce a cross-type cycle hidden behind helpers: each side
// holds its own lock and calls into the other, whose summary says it acquires
// the opposite lock. Neither function alone touches two locks.
type engine struct {
	mu sync.Mutex
	n  int
}

type sched struct {
	mu sync.Mutex
	n  int
}

func (s *sched) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (e *engine) bump() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

func (e *engine) pushToSched(s *sched) {
	e.mu.Lock()
	s.bump() // want `lock-order cycle lockordertest\.engine\.mu → lockordertest\.sched\.mu → lockordertest\.engine\.mu`
	e.mu.Unlock()
}

func (s *sched) pullFromEngine(e *engine) {
	s.mu.Lock()
	e.bump()
	s.mu.Unlock()
}

// suppressed: a documented deviation carries an //repro:allow at the cycle's
// canonical witness edge.
func pinnedOrderForward() {
	muE.Lock()
	muF.Lock() //repro:allow(lockorder) muF here is a short trylock-equivalent critical section audited in the admission design note
	counter++
	muF.Unlock()
	muE.Unlock()
}

func pinnedOrderBackward() {
	muF.Lock()
	muE.Lock()
	counter++
	muE.Unlock()
	muF.Unlock()
}

// stale: a directive with no matching finding is itself reported — muC→muD is
// consistent everywhere, so there is no cycle to suppress.
func staleAllow() {
	muC.Lock()
	// want-next `unused //repro:allow`
	//repro:allow(lockorder) C and D cycle through the drain path
	muD.Lock()
	counter++
	muD.Unlock()
	muC.Unlock()
}
