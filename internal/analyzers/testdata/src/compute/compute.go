// Package compute is a miniature stand-in for repro/internal/compute used by
// the analyzer fixture tests: the analyzers match Arena/Pool methods by
// package-path suffix and type name (see isPkgPath), so this shim exercises
// the same matching logic the real package does without importing the full
// dependency graph into fixtures.
package compute

// Dense stands in for mat.Dense.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// Arena mirrors the real arena's Get/GetUninit/Put surface.
type Arena struct{}

func (a *Arena) Get(r, c int) *Dense       { return &Dense{Rows: r, Cols: c} }
func (a *Arena) GetUninit(r, c int) *Dense { return &Dense{Rows: r, Cols: c} }
func (a *Arena) Put(ms ...*Dense)          {}

// Pool mirrors the real pool's blocking dispatch surface.
type Pool struct{}

func (p *Pool) Do(tasks ...func())                          {}
func (p *Pool) ParallelFor(n int, body func(i int))         {}
func (p *Pool) ParallelRanges(n int, body func(lo, hi int)) {}
func (p *Pool) RunPartitioned(parts int, body func(part int)) {
}
