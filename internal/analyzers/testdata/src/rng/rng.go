// Package rng is a miniature stand-in for repro/internal/rng used by the
// determinism analyzer fixtures.
package rng

// RNG mirrors the deterministic generator's draw surface.
type RNG struct{ s uint64 }

func (r *RNG) Uint64() uint64           { r.s++; return r.s }
func (r *RNG) Float64() float64         { return float64(r.Uint64()) }
func (r *RNG) Intn(n int) int           { return int(r.Uint64()) % n }
func (r *RNG) Norm() float64            { return r.Float64() }
func (r *RNG) NormSlice(dst []float64)  {}
func (r *RNG) UniformSlice(d []float64) {}
func (r *RNG) Perm(n int) []int         { return make([]int, n) }
func (r *RNG) Split() *RNG              { return &RNG{s: r.Uint64()} }
