// Package determinismtest is the fixture suite for the determinism analyzer.
package determinismtest

import (
	"math/rand"
	"time"

	"rng"
)

var sink float64

// randUse: any qualified math/rand reference is a finding.
func randUse() float64 {
	return rand.Float64() // want `use of rand\.Float64`
}

func randLocal() {
	r := rand.New(rand.NewSource(1)) // want `use of rand\.New` `use of rand\.NewSource`
	sink = r.Float64()               // want `use of rand\.Float64`
}

// timeRecorded: plain recording of wall-clock metadata is allowed.
func timeRecorded() time.Time {
	start := time.Now()
	elapsed := time.Since(start)
	_ = elapsed
	return start
}

type result struct {
	Iter time.Duration
}

func timeIntoField(start time.Time) result {
	return result{Iter: time.Since(start)}
}

// timeFeedsComputation: a clock value reaching arithmetic, a comparison, a
// conversion, or a call argument is a finding.
func timeFeedsComputation(budget time.Duration, start time.Time) bool {
	if time.Since(start) > budget { // want `time\.Since feeds computation`
		return true
	}
	seed := time.Now().UnixNano() // want `time\.Now feeds computation`
	_ = seed
	return false
}

// mapRangeAccumulate: order-sensitive float accumulation over a map.
func mapRangeAccumulate(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights { // want `range over map`
		total += w
	}
	return total
}

// mapRangeAppend: order-sensitive append over a map.
func mapRangeAppend(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

// mapRangeRNG: consuming RNG draws in map order desynchronizes the stream.
func mapRangeRNG(m map[int]int, r *rng.RNG) {
	for k := range m { // want `range over map`
		_ = k
		sink = r.Float64()
	}
}

// mapRangeBenign: pure per-entry work does not depend on iteration order.
func mapRangeBenign(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// sliceRangeAccumulate: ranging a slice is ordered; accumulation is fine.
func sliceRangeAccumulate(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// suppressed: the //repro:allow directive absorbs the finding.
func suppressed(m map[string]struct{}) []string {
	var names []string
	//repro:allow(determinism) names is sorted by the caller before use
	for k := range m {
		names = append(names, k)
	}
	return names
}

// unusedAllow: a directive matching no finding is itself a finding.
func unusedAllow(xs []float64) float64 {
	total := 0.0
	// want-next `unused //repro:allow`
	//repro:allow(determinism) nothing to suppress on a slice range
	for _, x := range xs {
		total += x
	}
	return total
}

// reasonless: a directive without a reason is rejected, and does not
// suppress the finding on the next line.
func reasonless(m map[string]float64) float64 {
	total := 0.0
	// want-next `requires a reason`
	//repro:allow(determinism)
	for _, w := range m { // want `range over map`
		total += w
	}
	return total
}
