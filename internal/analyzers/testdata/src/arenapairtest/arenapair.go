// Package arenapairtest is the fixture suite for the arenapair analyzer.
package arenapairtest

import (
	"compute"
)

func fill(m *compute.Dense) {}
func sum(m *compute.Dense) float64 {
	t := 0.0
	for _, v := range m.Data {
		t += v
	}
	return t
}

// balanced: the straight-line Get/Put pair is clean.
func balanced(a *compute.Arena) float64 {
	buf := a.Get(4, 4)
	fill(buf)
	s := sum(buf)
	a.Put(buf)
	return s
}

// leakOnEarlyReturn: the error path returns without releasing buf.
func leakOnEarlyReturn(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n) // want `buf is not returned to the arena on every path`
	fill(buf)
	if n > 100 {
		return 0 // leaks here
	}
	s := sum(buf)
	a.Put(buf)
	return s
}

// deferCoversAllPaths: a deferred Put releases on every exit, early returns
// and panics included.
func deferCoversAllPaths(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n)
	defer a.Put(buf)
	if n > 100 {
		return 0
	}
	if n < 0 {
		panic("negative")
	}
	return sum(buf)
}

// deferClosureCovers: the Put may sit inside a deferred closure.
func deferClosureCovers(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n)
	defer func() {
		a.Put(buf)
	}()
	if n > 100 {
		return 0
	}
	return sum(buf)
}

// doublePut: the buffer goes back twice; the second Put aliases the backing
// array to two future Gets.
func doublePut(a *compute.Arena) {
	buf := a.Get(8, 8)
	fill(buf)
	a.Put(buf)
	a.Put(buf) // want `already returned to the arena`
}

// putBothBranches: releasing on each branch of an if is balanced.
func putBothBranches(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n)
	if n > 100 {
		a.Put(buf)
		return 0
	}
	s := sum(buf)
	a.Put(buf)
	return s
}

// leakOneBranch: only one branch releases.
func leakOneBranch(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n) // want `buf is not returned to the arena on every path`
	s := 0.0
	if n > 100 {
		s = sum(buf)
		a.Put(buf)
	}
	return s
}

// variadicPut: one Put releasing several buffers is balanced.
func variadicPut(a *compute.Arena, n int) float64 {
	t1 := a.Get(n, n)
	t2 := a.GetUninit(n, n)
	fill(t1)
	fill(t2)
	s := sum(t1) + sum(t2)
	a.Put(t1, t2)
	return s
}

// reassignLeaks: re-Getting into the same variable drops the first buffer.
func reassignLeaks(a *compute.Arena, n int) {
	buf := a.Get(n, n)
	fill(buf)
	buf = a.Get(n+1, n+1) // want `reassigned from a new Get`
	fill(buf)
	a.Put(buf)
}

// ownershipReturned: returning the buffer transfers ownership to the caller.
func ownershipReturned(a *compute.Arena, n int) *compute.Dense {
	buf := a.GetUninit(n, n)
	fill(buf)
	return buf
}

// ownershipStored: storing into a struct field transfers ownership.
type holder struct{ m *compute.Dense }

func ownershipStored(a *compute.Arena, h *holder) {
	buf := a.Get(2, 2)
	h.m = buf
}

// closureTakesOver: a closure capturing the buffer owns its release.
func closureTakesOver(a *compute.Arena, n int) func() {
	buf := a.Get(n, n)
	return func() {
		a.Put(buf)
	}
}

// loopBalanced: Get and Put inside the same loop iteration is balanced.
func loopBalanced(a *compute.Arena, ns []int) float64 {
	total := 0.0
	for _, n := range ns {
		buf := a.Get(n, n)
		fill(buf)
		total += sum(buf)
		a.Put(buf)
	}
	return total
}

// suppressedLeak: an intentional leak carries a //repro:allow with a reason.
func suppressedLeak(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n) //repro:allow(arenapair) buffer intentionally retained for the process lifetime as a warmup pin
	fill(buf)
	return sum(buf)
}
