// Interprocedural arenapair cases: ownership transfer resolved through the
// summary table — a callee that Puts its parameter releases the buffer, a
// callee that stores it escapes it.
package arenapairtest

import "compute"

// release hands its buffer back to the arena on behalf of callers.
func release(a *compute.Arena, m *compute.Dense) { a.Put(m) }

// releaseBoth shows the transfer surviving another call level.
func releaseBoth(a *compute.Arena, x, y *compute.Dense) {
	release(a, x)
	release(a, y)
}

// putViaHelper: the Get is balanced by the helper's Put — no finding.
func putViaHelper(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n)
	fill(buf)
	s := sum(buf)
	release(a, buf)
	return s
}

// putViaHelperTwoDeep: the transfer propagates through releaseBoth → release.
func putViaHelperTwoDeep(a *compute.Arena, n int) {
	x := a.Get(n, n)
	y := a.GetUninit(n, n)
	releaseBoth(a, x, y)
}

// doublePutViaHelper: a direct Put followed by a Put-ting helper re-releases.
func doublePutViaHelper(a *compute.Arena, n int) {
	buf := a.Get(n, n)
	a.Put(buf)
	release(a, buf) // want `already returned to the arena on every path reaching this call`
}

// deferHelperCovers: a deferred Put-ting helper covers every exit.
func deferHelperCovers(a *compute.Arena, n int, early bool) float64 {
	buf := a.Get(n, n)
	defer release(a, buf)
	if early {
		return 0
	}
	fill(buf)
	return sum(buf)
}

// keeper retains its argument beyond the call.
var retained *compute.Dense

func keep(m *compute.Dense) { retained = m }

// escapeViaHelper: passing the buffer to a storing helper transfers ownership
// out of this function — no leak finding (the helper's owner must Put it).
func escapeViaHelper(a *compute.Arena, n int) {
	buf := a.Get(n, n)
	fill(buf)
	keep(buf)
}

// helperStillLeaks: an ordinary non-Put-ting, non-storing callee is plain use;
// the Get still leaks.
func helperStillLeaks(a *compute.Arena, n int) float64 {
	buf := a.Get(n, n) // want `not returned to the arena on every path`
	fill(buf)
	return sum(buf)
}
