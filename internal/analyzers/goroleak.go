package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroLeak requires every `go` statement to show join evidence: the
// spawned goroutine must either signal a sync.WaitGroup (Done on all paths
// out of its body — an early return that skips Done strands the matching
// Wait), communicate on a channel (a send, receive, select, close, or ranging
// over a channel ties its lifetime to a peer), or observe a context (a
// ctx-bounded loop exits on cancellation). A goroutine with none of these has
// no way to be waited for, drained, or cancelled — under fleet-era load each
// such spawn is a permanent memory and scheduler leak.
//
// Evidence is resolved interprocedurally: `go e.jobWorker()` is joined when
// jobWorker's summary says it calls WaitGroup.Done, and a helper called from
// the goroutine body contributes its summarized channel/ctx/Done facts.
// Goroutines spawned through function values (go fn() where fn is a
// variable) make no static claim and are skipped; nested `go` statements
// inside a goroutine body are separate spawns and do not count as evidence
// for their parent.
var AnalyzerGoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine must be joinable: WaitGroup.Done on all paths, channel communication, or context bounding",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g)
			}
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkSpawnedLit(pass, g, lit)
		return
	}
	callee := calleeFunc(pass.Info, g.Call)
	if callee == nil {
		return // spawn through a function value: no static claim
	}
	cs := pass.Summaries.lookup(callee)
	if cs == nil {
		return // external or un-analyzed callee: trusted
	}
	if cs.CallsWGDone || cs.ChanOps || cs.ObservesCtx {
		return
	}
	pass.Reportf("goroleak", g.Pos(),
		"goroutine running %s has no join evidence: its summary shows no WaitGroup.Done, no channel communication, and no context observation — nothing can wait for, drain, or cancel it (pair it with a WaitGroup, tie it to a channel, or bound it with ctx)",
		callee.Name())
}

// litJoinEvidence is what a spawned function literal's body shows.
type litJoinEvidence struct {
	chanOps      bool
	ctxBounded   bool
	wgDone       bool
	deferredDone bool
}

func checkSpawnedLit(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	ev := scanLitEvidence(pass, lit)
	switch {
	case ev.chanOps || ev.ctxBounded:
		return
	case ev.wgDone:
		if ev.deferredDone {
			return
		}
		cfg := buildCFG(lit.Body)
		if cfg.hasGoto {
			return
		}
		hit := func(n *cfgNode) bool {
			found := false
			for _, part := range n.nodeParts() {
				inspectSkippingFuncLits(part, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok && callSignalsDone(pass, call) {
						found = true
					}
					return !found
				})
			}
			return found
		}
		if !allExitsReach(cfg, hit) {
			pass.Reportf("goroleak", g.Pos(),
				"goroutine calls WaitGroup.Done but not on all paths out of its body: an early return or panic strands the matching Wait forever (defer the Done as the first statement)")
		}
	default:
		pass.Reportf("goroleak", g.Pos(),
			"goroutine has no join evidence: no WaitGroup.Done, no channel communication, and no context observation on any path — nothing can wait for, drain, or cancel it (pair it with a WaitGroup, tie it to a channel, or bound it with ctx)")
	}
}

// scanLitEvidence walks the literal's body — nested literals included, since
// they run on the spawned goroutine, but nested `go` spawns excluded, since
// those are separate goroutines with their own join obligations.
func scanLitEvidence(pass *Pass, lit *ast.FuncLit) litJoinEvidence {
	info := pass.Info
	var ev litJoinEvidence

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			return false // a nested spawn is its own goroutine, not our join
		case *ast.SendStmt:
			ev.chanOps = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				ev.chanOps = true
			}
		case *ast.SelectStmt:
			for _, cl := range e.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					ev.chanOps = true
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ev.chanOps = true
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && isContextType(v.Type()) {
				ev.ctxBounded = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					ev.chanOps = true
					return true
				}
			}
			if callSignalsDone(pass, e) {
				ev.wgDone = true
			}
			if cs := pass.Summaries.summaryForCall(info, e); cs != nil {
				if cs.ChanOps {
					ev.chanOps = true
				}
				if cs.ObservesCtx {
					ev.ctxBounded = true
				}
			}
		case *ast.DeferStmt:
			if callSignalsDone(pass, e.Call) {
				ev.wgDone = true
				ev.deferredDone = true
			}
			if dl, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(dl.Body, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok && callSignalsDone(pass, call) {
						ev.wgDone = true
						ev.deferredDone = true
					}
					return true
				})
			}
		}
		return true
	})
	return ev
}

// callSignalsDone reports a direct sync.WaitGroup.Done call, or a call to a
// module function whose summary transitively calls Done.
func callSignalsDone(pass *Pass, call *ast.CallExpr) bool {
	if isSyncMethod(pass.Info, call, "WaitGroup", "Done") {
		return true
	}
	cs := pass.Summaries.summaryForCall(pass.Info, call)
	return cs != nil && cs.CallsWGDone
}
