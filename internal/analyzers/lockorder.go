package analyzers

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerLockOrder assembles the module-wide lock-acquisition-order graph
// from the interprocedural summaries — an edge A→B means somewhere in the
// analyzed tree lock B is acquired (directly, or by entering a callee that
// acquires it) while A is held — and reports every cycle. Two goroutines
// walking a cycle from different entry points can each hold one lock while
// waiting for the other's: a deadlock that no test reproduces reliably and
// no intraprocedural shape check can see, because each function's local
// order is innocent.
//
// Lock identity is the canonical ID of summary.go's lockID: instances of the
// same struct field are conflated ("repro.Engine.mu"), which is exactly the
// granularity the deadlock argument needs. A cycle is reported once, at its
// canonical witness edge (the lexicographically smallest), by the package
// that owns that edge's file — so a cross-package cycle still yields exactly
// one finding per lint run.
var AnalyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock-acquisition-order graph must be acyclic (a cycle is a potential deadlock)",
	Run:  runLockOrder,
}

// lockPair keys the global edge graph by (from, to) lock ID.
type lockPair struct{ from, to string }

func runLockOrder(pass *Pass) {
	table := pass.Summaries
	if table == nil {
		return // the order graph only exists interprocedurally
	}

	// Collect the global edge set. Per (from,to) pair keep the smallest
	// (file,line) witness so reporting is deterministic regardless of how the
	// summaries were produced (fresh or cached).
	witness := map[lockPair]LockEdge{}
	adj := map[string][]string{}
	adjSeen := map[lockPair]bool{}
	for _, s := range table.Funcs {
		for _, e := range s.OrderEdges {
			p := lockPair{e.From, e.To}
			if w, ok := witness[p]; !ok || e.File < w.File || (e.File == w.File && e.Line < w.Line) {
				witness[p] = e
			}
			if !adjSeen[p] {
				adjSeen[p] = true
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
	}
	if len(adj) == 0 {
		return
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		sort.Strings(adj[n])
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	for _, scc := range lockSCCs(nodes, adj) {
		if len(scc) < 2 {
			continue // self-edges are never emitted, so a singleton is acyclic
		}
		reportLockCycle(pass, scc, adj, witness)
	}
}

// lockSCCs is Tarjan over the lock-ID graph, deterministic via sorted inputs.
func lockSCCs(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(u string)
	strongconnect = func(u string) {
		index[u] = next
		lowlink[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, v := range adj[u] {
			if _, visited := index[v]; !visited {
				strongconnect(v)
				if lowlink[v] < lowlink[u] {
					lowlink[u] = lowlink[v]
				}
			} else if onStack[v] && index[v] < lowlink[u] {
				lowlink[u] = index[v]
			}
		}
		if lowlink[u] == index[u] {
			var comp []string
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == u {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strongconnect(n)
		}
	}
	return out
}

// reportLockCycle reconstructs one concrete cycle through the SCC's smallest
// lock ID and reports it at the cycle's first witness edge — but only when
// this pass's package owns that edge's file, so the finding lands exactly
// once per lint run.
func reportLockCycle(pass *Pass, scc []string, adj map[string][]string, witness map[lockPair]LockEdge) {
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	start := scc[0] // sorted: the smallest lock ID anchors the cycle
	cycle := cycleThrough(start, inSCC, adj)
	if cycle == nil {
		return
	}

	firstEdge, ok := witness[lockPair{cycle[0], cycle[1]}]
	if !ok {
		return
	}
	pos, owned := posForFileLine(pass, firstEdge.File, firstEdge.Line)
	if !owned {
		return // another target package owns the canonical edge and reports it
	}

	var hops []string
	for i := 0; i+1 < len(cycle); i++ {
		e := witness[lockPair{cycle[i], cycle[i+1]}]
		hops = append(hops, fmt.Sprintf("%s acquired at %s:%d while %s held", e.To, filepath.Base(e.File), e.Line, e.From))
	}
	pass.Reportf("lockorder", pos,
		"lock-order cycle %s: %s — two goroutines entering from different points can each hold one lock while waiting for the other (impose a single global acquisition order)",
		strings.Join(cycle, " → "), strings.Join(hops, "; "))
}

// cycleThrough finds a concrete cycle start → ... → start inside the SCC via
// BFS (shortest, deterministic with sorted adjacency); nil if none closes.
func cycleThrough(start string, inSCC map[string]bool, adj map[string][]string) []string {
	parent := map[string]string{}
	queue := []string{}
	for _, v := range adj[start] {
		if !inSCC[v] {
			continue
		}
		if v == start {
			continue // self-edges never emitted
		}
		if _, seen := parent[v]; !seen {
			parent[v] = start
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if v == start {
				// Close the cycle: collect start→…→u from the parent chain.
				rev := []string{u}
				for p := u; parent[p] != start; p = parent[p] {
					rev = append(rev, parent[p])
				}
				out := []string{start}
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return append(out, start)
			}
			if !inSCC[v] {
				continue
			}
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// posForFileLine resolves a summary edge's file:line back to a token.Pos when
// the file belongs to this pass's package (cached summaries carry file and
// line, not positions — token.File.LineStart reconstructs one).
func posForFileLine(pass *Pass, file string, line int) (token.Pos, bool) {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || tf.Name() != file {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return f.Pos(), true
		}
		return tf.LineStart(line), true
	}
	return token.NoPos, false
}
