package analyzers

import (
	"go/ast"
	"go/token"
)

// A minimal intraprocedural control-flow graph over the AST, shared by the
// arenapair and lockhold dataflow analyses. Each atomic statement becomes one
// node; structured statements (if/for/range/switch/select) are lowered to
// edges. Function literals are NOT descended into — each FuncLit body is
// analyzed as its own function by the callers.
//
// The builder is conservative where precision is not needed:
//
//   - goto is unsupported: functions containing goto are skipped entirely by
//     CFG-based analyzers (none exist in this repository; skipping avoids
//     false positives from approximated jumps).
//   - panic(...) is an exit node (defers still run, which the arenapair
//     analysis models via its defer set).
//   - labeled break/continue resolve to their labeled loop or switch.

// cfgNode is one statement (or synthetic entry/exit) in the graph.
type cfgNode struct {
	stmt   ast.Stmt // nil for the synthetic entry and exit
	succs  []*cfgNode
	index  int
	exit   bool // function exit: return, panic, or fallthrough off the end
	isComm bool // a select communication clause (blocking is the select's, not the op's)
}

// nodeParts returns the AST fragments evaluated AT this node itself —
// excluding nested statements, which have their own nodes. Structured
// statements contribute only their condition/tag expression.
func (n *cfgNode) nodeParts() []ast.Node {
	switch s := n.stmt.(type) {
	case nil:
		return nil
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond == nil {
			return nil
		}
		return []ast.Node{s.Cond}
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		if s.Tag == nil {
			return nil
		}
		return []ast.Node{s.Tag}
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.SelectStmt:
		return nil
	case *ast.ReturnStmt:
		out := make([]ast.Node, 0, len(s.Results))
		for _, r := range s.Results {
			out = append(out, r)
		}
		return out
	default:
		return []ast.Node{s}
	}
}

// cfg is the graph for one function body.
type cfg struct {
	entry *cfgNode
	nodes []*cfgNode
	// defers collects every defer statement in the body, in syntactic order.
	defers []*ast.DeferStmt
	// hasGoto reports an unsupported construct; analyses should skip.
	hasGoto bool
}

// loopFrame tracks break/continue targets while building.
type loopFrame struct {
	label       string
	breakTarget *joinPoint
	contTarget  *joinPoint
	isLoop      bool // switch/select frames accept break but not continue
}

// joinPoint is a forward-reference target: nodes that should flow to a point
// whose node is created later.
type joinPoint struct {
	preds []*cfgNode
}

func (j *joinPoint) addPred(n *cfgNode) {
	if n != nil {
		j.preds = append(j.preds, n)
	}
}

func (j *joinPoint) resolve(target *cfgNode) {
	for _, p := range j.preds {
		p.succs = append(p.succs, target)
	}
}

// cfgBuilder builds the graph.
type cfgBuilder struct {
	g      *cfg
	frames []*loopFrame
}

// buildCFG constructs the CFG for a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.entry = b.newNode(nil)
	exits := b.stmtList(body.List, []*cfgNode{b.g.entry})
	// Whatever falls off the end of the body is a function exit.
	end := b.newNode(nil)
	end.exit = true
	for _, n := range exits {
		n.succs = append(n.succs, end)
	}
	return b.g
}

func (b *cfgBuilder) newNode(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s, index: len(b.g.nodes)}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// link points every node in from at to.
func link(from []*cfgNode, to *cfgNode) {
	for _, f := range from {
		f.succs = append(f.succs, to)
	}
}

// stmtList threads a statement list: preds are the incoming nodes; the return
// value is the set of nodes that fall through past the last statement.
func (b *cfgBuilder) stmtList(list []ast.Stmt, preds []*cfgNode) []*cfgNode {
	cur := preds
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt lowers one statement; returns its fallthrough successors.
func (b *cfgBuilder) stmt(s ast.Stmt, preds []*cfgNode) []*cfgNode {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(st.List, preds)

	case *ast.LabeledStmt:
		return b.labeled(st, preds)

	case *ast.IfStmt:
		if st.Init != nil {
			preds = b.stmt(st.Init, preds)
		}
		cond := b.newNode(s) // condition evaluation carries the stmt for expr scanning
		link(preds, cond)
		thenOut := b.stmtList(st.Body.List, []*cfgNode{cond})
		if st.Else != nil {
			elseOut := b.stmt(st.Else, []*cfgNode{cond})
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond)

	case *ast.ForStmt:
		return b.forStmt(st, "", preds)

	case *ast.RangeStmt:
		return b.rangeStmt(st, "", preds)

	case *ast.SwitchStmt:
		return b.switchLike(s, st.Init, st.Tag != nil, stmtBodies(st.Body), "", preds)

	case *ast.TypeSwitchStmt:
		return b.switchLike(s, st.Init, true, stmtBodies(st.Body), "", preds)

	case *ast.SelectStmt:
		return b.selectStmt(st, "", preds)

	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.exit = true
		link(preds, n)
		return nil

	case *ast.BranchStmt:
		return b.branch(st, preds)

	case *ast.DeferStmt:
		n := b.newNode(s)
		link(preds, n)
		b.g.defers = append(b.g.defers, st)
		return []*cfgNode{n}

	case *ast.ExprStmt:
		n := b.newNode(s)
		link(preds, n)
		if isPanicCall(st.X) {
			n.exit = true
			return nil
		}
		return []*cfgNode{n}

	default:
		// Atomic statements: assignments, declarations, sends, inc/dec, go, empty.
		n := b.newNode(s)
		link(preds, n)
		return []*cfgNode{n}
	}
}

func (b *cfgBuilder) labeled(st *ast.LabeledStmt, preds []*cfgNode) []*cfgNode {
	label := st.Label.Name
	switch inner := st.Stmt.(type) {
	case *ast.ForStmt:
		return b.forStmt(inner, label, preds)
	case *ast.RangeStmt:
		return b.rangeStmt(inner, label, preds)
	case *ast.SwitchStmt:
		return b.switchLike(inner, inner.Init, inner.Tag != nil, stmtBodies(inner.Body), label, preds)
	case *ast.TypeSwitchStmt:
		return b.switchLike(inner, inner.Init, true, stmtBodies(inner.Body), label, preds)
	case *ast.SelectStmt:
		return b.selectStmt(inner, label, preds)
	default:
		// A label on a plain statement is a goto target: unsupported.
		b.g.hasGoto = true
		return b.stmt(st.Stmt, preds)
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt, preds []*cfgNode) []*cfgNode {
	n := b.newNode(st)
	link(preds, n)
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				f.breakTarget.addPred(n)
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isLoop && (label == "" || f.label == label) {
				f.contTarget.addPred(n)
				return nil
			}
		}
	case token.FALLTHROUGH:
		// Approximated: treat as fallthrough to the end of the clause. The
		// next case body is analyzed from the switch head anyway, which is a
		// sound over-approximation for the union-style dataflows here.
		return []*cfgNode{n}
	case token.GOTO:
		b.g.hasGoto = true
		return nil
	}
	// Unresolvable label: give up precisely, mark unsupported.
	b.g.hasGoto = true
	return nil
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string, preds []*cfgNode) []*cfgNode {
	if st.Init != nil {
		preds = b.stmt(st.Init, preds)
	}
	head := b.newNode(st) // condition node
	link(preds, head)
	frame := &loopFrame{label: label, breakTarget: &joinPoint{}, contTarget: &joinPoint{}, isLoop: true}
	b.frames = append(b.frames, frame)
	bodyOut := b.stmtList(st.Body.List, []*cfgNode{head})
	b.frames = b.frames[:len(b.frames)-1]

	// continue and body fallthrough run Post, then return to the head.
	var backPreds []*cfgNode
	backPreds = append(backPreds, bodyOut...)
	contNode := b.newNode(st.Post) // nil stmt ok
	frame.contTarget.resolve(contNode)
	link(backPreds, contNode)
	contNode.succs = append(contNode.succs, head)

	exitJoin := b.newNode(nil)
	frame.breakTarget.resolve(exitJoin)
	if st.Cond != nil {
		head.succs = append(head.succs, exitJoin) // condition false
	}
	// for {} with no cond and no break never exits; exitJoin simply has no preds.
	return []*cfgNode{exitJoin}
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string, preds []*cfgNode) []*cfgNode {
	head := b.newNode(st)
	link(preds, head)
	frame := &loopFrame{label: label, breakTarget: &joinPoint{}, contTarget: &joinPoint{}, isLoop: true}
	b.frames = append(b.frames, frame)
	bodyOut := b.stmtList(st.Body.List, []*cfgNode{head})
	b.frames = b.frames[:len(b.frames)-1]
	link(bodyOut, head)
	contNode := b.newNode(nil)
	frame.contTarget.resolve(contNode)
	contNode.succs = append(contNode.succs, head)

	exitJoin := b.newNode(nil)
	frame.breakTarget.resolve(exitJoin)
	head.succs = append(head.succs, exitJoin) // range exhausted
	return []*cfgNode{exitJoin}
}

// switchLike lowers switch and type-switch: every clause body starts at the
// head; a tag-less switch with no default can fall through the head.
func (b *cfgBuilder) switchLike(s ast.Stmt, init ast.Stmt, _ bool, bodies [][]ast.Stmt, label string, preds []*cfgNode) []*cfgNode {
	if init != nil {
		preds = b.stmt(init, preds)
	}
	head := b.newNode(s)
	link(preds, head)
	frame := &loopFrame{label: label, breakTarget: &joinPoint{}}
	b.frames = append(b.frames, frame)
	var outs []*cfgNode
	for _, body := range bodies {
		outs = append(outs, b.stmtList(body, []*cfgNode{head})...)
	}
	b.frames = b.frames[:len(b.frames)-1]
	exitJoin := b.newNode(nil)
	frame.breakTarget.resolve(exitJoin)
	link(outs, exitJoin)
	// No-default (or no-match) path: head flows straight to the join.
	head.succs = append(head.succs, exitJoin)
	return []*cfgNode{exitJoin}
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string, preds []*cfgNode) []*cfgNode {
	head := b.newNode(st)
	link(preds, head)
	frame := &loopFrame{label: label, breakTarget: &joinPoint{}}
	b.frames = append(b.frames, frame)
	var outs []*cfgNode
	for _, cl := range st.Body.List {
		comm := cl.(*ast.CommClause)
		start := []*cfgNode{head}
		if comm.Comm != nil {
			start = b.stmt(comm.Comm, start)
			for _, n := range start {
				n.isComm = true
			}
		}
		outs = append(outs, b.stmtList(comm.Body, start)...)
	}
	b.frames = b.frames[:len(b.frames)-1]
	exitJoin := b.newNode(nil)
	frame.breakTarget.resolve(exitJoin)
	link(outs, exitJoin)
	return []*cfgNode{exitJoin}
}

func stmtBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// allExitsReach reports whether every path from entry to a reachable function
// exit passes through at least one node satisfying hit. Vacuously true when no
// exit is reachable (a for{} worker loop never falls off the end). Used by
// goroleak to require WaitGroup.Done on all paths out of a goroutine body.
func allExitsReach(g *cfg, hit func(*cfgNode) bool) bool {
	// Forward reachability of the "no hit seen yet" state.
	avoiding := make([]bool, len(g.nodes))
	avoiding[g.entry.index] = true
	work := []*cfgNode{g.entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if hit(n) {
			continue // every path through n is covered from here on
		}
		if n.exit {
			return false // fell off an exit without passing a hit
		}
		for _, s := range n.succs {
			if !avoiding[s.index] {
				avoiding[s.index] = true
				work = append(work, s)
			}
		}
	}
	return true
}

// forEachFunc invokes fn for every function body in the file set of a pass:
// declarations and, when deep is true, each function literal as an
// independent unit (the literal's body is then excluded from its parent's
// walk by the caller using skipFuncLits).
func forEachFunc(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, nil, d.Body)
				}
			case *ast.FuncLit:
				fn(nil, d, d.Body)
			}
			return true
		})
	}
}

// inspectSkippingFuncLits walks the statement tree of body but does not
// descend into nested function literals — used by analyses that treat each
// FuncLit as a separate function.
func inspectSkippingFuncLits(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return fn(n)
	})
}
