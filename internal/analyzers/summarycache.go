package analyzers

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// SummaryStore persists per-package function summaries between reprolint
// runs so CI lint stays fast as the module grows: a package whose
// dependency-chained fingerprint (own sources + build-cache export paths of
// everything it imports + store keys of its in-module dependencies) is
// unchanged reuses its summaries instead of recomputing the SCC fixpoint.
//
// The store is a single JSON file. A missing, unreadable, or
// version-mismatched file is an empty store, never an error — the cache can
// only make lint faster, not wrong: a stale entry is impossible because the
// key covers every input the summary computation reads.
type SummaryStore struct {
	path  string
	dirty bool
	data  summaryStoreFile
}

type summaryStoreFile struct {
	Version int                          `json:"version"`
	Entries map[string]summaryStoreEntry `json:"entries"`
}

type summaryStoreEntry struct {
	Key   string                  `json:"key"`
	Funcs map[string]*FuncSummary `json:"funcs"`
}

const summaryStoreVersion = 1

// OpenSummaryStore loads the store at path (which need not exist yet).
// An empty path returns a nil store, which every method tolerates — the
// computation simply runs uncached.
func OpenSummaryStore(path string) *SummaryStore {
	if path == "" {
		return nil
	}
	s := &SummaryStore{path: path, data: summaryStoreFile{Version: summaryStoreVersion, Entries: map[string]summaryStoreEntry{}}}
	raw, err := os.ReadFile(path)
	if err != nil {
		return s
	}
	var f summaryStoreFile
	if json.Unmarshal(raw, &f) != nil || f.Version != summaryStoreVersion || f.Entries == nil {
		return s
	}
	s.data = f
	return s
}

// get returns the cached summaries for pkgPath when the stored key matches.
func (s *SummaryStore) get(pkgPath, key string) map[string]*FuncSummary {
	if s == nil {
		return nil
	}
	e, ok := s.data.Entries[pkgPath]
	if !ok || e.Key != key || e.Funcs == nil {
		return nil
	}
	return e.Funcs
}

// put records freshly computed summaries for pkgPath under key.
func (s *SummaryStore) put(pkgPath, key string, funcs map[string]*FuncSummary) {
	if s == nil {
		return
	}
	s.data.Entries[pkgPath] = summaryStoreEntry{Key: key, Funcs: funcs}
	s.dirty = true
}

// Save writes the store back to disk when anything changed. Best-effort by
// contract: a write failure degrades the next run to a cold cache.
func (s *SummaryStore) Save() error {
	if s == nil || !s.dirty {
		return nil
	}
	raw, err := json.Marshal(s.data)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(s.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(s.path, raw, 0o644)
}

// hashString is the store's key digest.
func hashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
