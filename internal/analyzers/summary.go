package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The interprocedural summary layer. Every declared function of every
// analyzed package gets a FuncSummary — a conservative abstract of the
// effects a call to it can have — computed bottom-up over the call graph:
// packages in import order (Go's acyclic imports mean cross-package calls
// only ever point at already-summarized packages), and intra-package
// strongly connected components to a fixpoint (all facts are monotone, so
// mutual recursion converges).
//
// The analyzers consume summaries instead of assuming the worst about
// callees: arenapair resolves ownership transferred to a Put-ting helper,
// ctxloop resolves a context observed one call deep (and, conversely,
// catches ctx handed to a callee that provably ignores it), lockhold flags a
// lock held across a call that transitively blocks, goroleak accepts a
// goroutine joined inside its named entry point, and lockorder assembles its
// global acquisition-order graph from the per-function Acquires/OrderEdges.

// FuncSummary is the abstract effect of calling one function. The zero value
// is the "no visible effects" summary; all fields are may-facts (an effect
// on SOME path sets them).
type FuncSummary struct {
	// PutsParams lists parameter indices the function returns to a
	// compute.Arena (directly or via a callee) on some path: passing an
	// owned buffer there transfers ownership out of the caller.
	PutsParams []int `json:"puts,omitempty"`
	// EscapesParams lists parameter indices the function stores, returns,
	// sends, or otherwise lets outlive the call.
	EscapesParams []int `json:"escapes,omitempty"`
	// ObservesCtx reports that the function's context parameter actually
	// reaches a ctx method or a context-observing callee.
	ObservesCtx bool `json:"ctx,omitempty"`
	// MayBlock reports a possible blocking operation: channel send/receive,
	// default-less select, blocking compute.Pool dispatch, WaitGroup.Wait,
	// Cond.Wait, or a call to a callee that may block.
	MayBlock bool `json:"blocks,omitempty"`
	// CallsWGDone / ChanOps / SpawnsGo feed the goroleak join analysis.
	CallsWGDone bool `json:"wgdone,omitempty"`
	ChanOps     bool `json:"chan,omitempty"`
	SpawnsGo    bool `json:"go,omitempty"`
	// Acquires lists the canonical lock IDs the function may acquire
	// anywhere inside (transitively through callees), regardless of whether
	// it releases them before returning.
	Acquires []string `json:"acquires,omitempty"`
	// OrderEdges records lock-acquisition ordering: To was acquired (or a
	// callee acquiring To was called) at File:Line while From was held.
	OrderEdges []LockEdge `json:"edges,omitempty"`
}

// LockEdge is one acquisition-order observation for the lockorder analyzer.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// SummaryTable holds every computed summary, keyed by funcID, plus the set
// of module package paths (so analyzers can distinguish "module function
// with no summary" — treat pessimistically — from "external function" —
// trust it).
type SummaryTable struct {
	Funcs   map[string]*FuncSummary
	targets map[string]bool
}

// NewSummaryTable returns an empty table over the given target paths.
func NewSummaryTable(targetPaths []string) *SummaryTable {
	t := &SummaryTable{Funcs: map[string]*FuncSummary{}, targets: map[string]bool{}}
	for _, p := range targetPaths {
		t.targets[p] = true
	}
	return t
}

// lookup returns the summary for f, or nil. Nil-receiver safe so analyzers
// degrade to their intraprocedural behavior without a table.
func (t *SummaryTable) lookup(f *types.Func) *FuncSummary {
	if t == nil || f == nil {
		return nil
	}
	return t.Funcs[funcID(f)]
}

// isTarget reports whether pkgPath is one of the analyzed module packages.
func (t *SummaryTable) isTarget(pkgPath string) bool {
	return t != nil && t.targets[pkgPath]
}

// summaryForCall resolves the summary of a call's static callee, or nil.
func (t *SummaryTable) summaryForCall(info *types.Info, call *ast.CallExpr) *FuncSummary {
	return t.lookup(calleeFunc(info, call))
}

// ComputeSummaries builds the module-wide summary table for pkgs. When store
// is non-nil, per-package summaries whose dependency-chained fingerprint is
// unchanged are reused from it and fresh results are recorded into it (the
// caller persists the store).
func ComputeSummaries(pkgs []*LoadedPackage, store *SummaryStore) *SummaryTable {
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	table := NewSummaryTable(paths)

	chainKey := map[string]string{}
	for _, lp := range topoOrder(pkgs) {
		// The cache key chains the package fingerprint with its target deps'
		// keys: any body change anywhere below invalidates this entry even
		// if export data (API surface) happened to stay put.
		h := fmt.Sprintf("v1|%s", lp.Fingerprint)
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if k, ok := chainKey[d]; ok {
				h += "|" + d + "=" + k
			}
		}
		key := hashString(h)
		chainKey[lp.Path] = key

		if cached := store.get(lp.Path, key); cached != nil {
			for id, s := range cached {
				table.Funcs[id] = s
			}
			continue
		}
		fresh := computePackageSummaries(lp, table)
		store.put(lp.Path, key, fresh)
	}
	return table
}

// topoOrder sorts target packages callees-first by their import relation
// (lexicographic tie-break for determinism).
func topoOrder(pkgs []*LoadedPackage) []*LoadedPackage {
	byPath := map[string]*LoadedPackage{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var out []*LoadedPackage
	var visit func(p *LoadedPackage)
	visit = func(p *LoadedPackage) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if dp, ok := byPath[d]; ok {
				visit(dp)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	sorted := append([]*LoadedPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// computePackageSummaries runs the intra-package SCC fixpoint, writing every
// summary into table and returning the package's own slice of it.
func computePackageSummaries(lp *LoadedPackage, table *SummaryTable) map[string]*FuncSummary {
	g := buildCallGraph(lp)
	own := map[string]*FuncSummary{}
	for _, comp := range g.sccs() {
		for changed, rounds := true, 0; changed && rounds < 64; rounds++ {
			changed = false
			for _, n := range comp {
				s := computeFuncSummary(lp, n.decl, table)
				if !summariesEqual(table.Funcs[n.id], s) {
					table.Funcs[n.id] = s
					own[n.id] = s
					changed = true
				}
			}
		}
		for _, n := range comp {
			if _, ok := own[n.id]; !ok {
				own[n.id] = table.Funcs[n.id]
			}
		}
	}
	return own
}

func summariesEqual(a, b *FuncSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.ObservesCtx != b.ObservesCtx || a.MayBlock != b.MayBlock ||
		a.CallsWGDone != b.CallsWGDone || a.ChanOps != b.ChanOps || a.SpawnsGo != b.SpawnsGo {
		return false
	}
	return intsEqual(a.PutsParams, b.PutsParams) && intsEqual(a.EscapesParams, b.EscapesParams) &&
		stringsEqual(a.Acquires, b.Acquires) && edgesEqual(a.OrderEdges, b.OrderEdges)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgesEqual(a, b []LockEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- per-function summary computation --------------------------------------

// computeFuncSummary derives the summary of one declared function against
// the (possibly still converging) table.
func computeFuncSummary(lp *LoadedPackage, decl *ast.FuncDecl, table *SummaryTable) *FuncSummary {
	info := lp.Info
	s := &FuncSummary{}

	paramIdx := map[*types.Var]int{}
	var ctxVars []*types.Var
	if decl.Type.Params != nil {
		i := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					paramIdx[v] = i
					if isContextType(v.Type()) && name.Name != "_" {
						ctxVars = append(ctxVars, v)
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++ // unnamed parameter still occupies a position
			}
		}
	}

	puts := map[int]bool{}
	escapes := map[int]bool{}
	acquires := map[string]bool{}

	// Function literals that are the immediate operand of a go statement run
	// on another goroutine: their effects belong to the spawned goroutine
	// (goroleak inspects them directly), not to a call of this function.
	spawnedLits := map[*ast.FuncLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				spawnedLits[lit] = true
			}
		}
		return true
	})

	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if spawnedLits[e] {
				// Still record captured-param escapes: the goroutine may
				// outlive the call frame.
				for v, i := range paramIdx {
					if funcLitUsesVar(info, e, v) {
						escapes[i] = true
					}
				}
				return false
			}
			// Non-spawned literals run (if at all) on behalf of this call;
			// their effects aggregate, and captured params escape.
			for v, i := range paramIdx {
				if funcLitUsesVar(info, e, v) {
					escapes[i] = true
				}
			}
			return true
		case *ast.GoStmt:
			s.SpawnsGo = true
			return true
		case *ast.SendStmt:
			s.ChanOps = true
			s.MayBlock = true
			if v := identVar(info, e.Value); v != nil {
				if i, ok := paramIdx[v]; ok {
					escapes[i] = true
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				s.ChanOps = true
				s.MayBlock = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.ChanOps = true
					s.MayBlock = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range e.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						s.ChanOps = true
					}
				}
			}
			if !hasDefault {
				s.MayBlock = true
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if v := identVar(info, r); v != nil {
					if i, ok := paramIdx[v]; ok {
						escapes[i] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				if v := identVar(info, rhs); v != nil {
					if i, ok := paramIdx[v]; ok {
						escapes[i] = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if v := identVar(info, el); v != nil {
					if i, ok := paramIdx[v]; ok {
						escapes[i] = true
					}
				}
			}
		case *ast.CallExpr:
			summarizeCall(lp, s, e, goCalls[e], paramIdx, puts, escapes, acquires, table)
		}
		return true
	})

	// Context observation: any ctx parameter that reaches a ctx method or an
	// observing callee.
	for _, cv := range ctxVars {
		if ctxObservedIn(info, table, decl.Body, cv) {
			s.ObservesCtx = true
			break
		}
	}

	s.PutsParams = sortedInts(puts)
	s.EscapesParams = sortedInts(escapes)
	s.Acquires = sortedStrings(acquires)
	s.OrderEdges = lockOrderEdges(lp, decl, table)
	return s
}

// summarizeCall folds one call expression into the summary under
// construction. isGo marks the immediate call of a go statement, whose
// blocking/joining effects belong to the spawned goroutine instead.
func summarizeCall(lp *LoadedPackage, s *FuncSummary, call *ast.CallExpr, isGo bool,
	paramIdx map[*types.Var]int, puts, escapes map[int]bool, acquires map[string]bool, table *SummaryTable) {
	info := lp.Info

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "close":
				s.ChanOps = true
			case "append":
				for _, a := range call.Args[1:] {
					if v := identVar(info, a); v != nil {
						if i, ok := paramIdx[v]; ok {
							escapes[i] = true
						}
					}
				}
			}
			return
		}
	}

	switch {
	case isArenaCall(info, call, "Put"):
		for _, a := range call.Args {
			if v := identVar(info, a); v != nil {
				if i, ok := paramIdx[v]; ok {
					puts[i] = true
				}
			}
		}
		return
	case isMutexCall(info, call, "Lock", "RLock"):
		if recv := mutexRecvExpr(call); recv != nil {
			acquires[lockID(info, lp.Path, recv)] = true
		}
		return
	case isMethodOn(info, call, "compute", "Pool", "Do", "ParallelFor", "ParallelRanges", "RunPartitioned"):
		if !isGo {
			s.MayBlock = true
		}
		return
	case isSyncMethod(info, call, "WaitGroup", "Wait"), isSyncMethod(info, call, "Cond", "Wait"):
		if !isGo {
			s.MayBlock = true
		}
		return
	case isSyncMethod(info, call, "WaitGroup", "Done"):
		s.CallsWGDone = true
		return
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	if isGo {
		// The callee runs on a fresh goroutine: nothing it does blocks,
		// joins, or orders locks on behalf of a call of THIS function, but
		// any of our parameters handed to it outlive the call frame.
		for _, a := range call.Args {
			if v := identVar(info, a); v != nil {
				if i, ok := paramIdx[v]; ok {
					escapes[i] = true
				}
			}
		}
		return
	}
	cs := table.lookup(callee)
	if cs == nil {
		return
	}
	s.MayBlock = s.MayBlock || cs.MayBlock
	s.ChanOps = s.ChanOps || cs.ChanOps
	s.CallsWGDone = s.CallsWGDone || cs.CallsWGDone
	for _, l := range cs.Acquires {
		acquires[l] = true
	}
	sig, _ := callee.Type().(*types.Signature)
	for ai, a := range call.Args {
		v := identVar(info, a)
		if v == nil {
			continue
		}
		i, isParam := paramIdx[v]
		if !isParam {
			continue
		}
		pi := calleeParamIndex(sig, ai)
		if pi < 0 {
			continue
		}
		if intsContain(cs.PutsParams, pi) {
			puts[i] = true
		}
		if intsContain(cs.EscapesParams, pi) {
			escapes[i] = true
		}
	}
}

// calleeParamIndex maps an argument position to the callee's parameter
// index, folding variadic tails onto the variadic parameter.
func calleeParamIndex(sig *types.Signature, argIdx int) int {
	if sig == nil {
		return -1
	}
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if sig.Variadic() && argIdx >= n-1 {
		return n - 1
	}
	if argIdx >= n {
		return -1
	}
	return argIdx
}

// ctxObservedIn reports whether a use of ctxVar inside body counts as
// observing the context: a method call on it (ctx.Err, ctx.Done, ...), any
// use other than a bare call argument (conservative), passing it to an
// external callee (trusted to honor it), or passing it to a module callee
// whose summary observes its own context. Only "handed exclusively to module
// callees that provably ignore it" fails.
func ctxObservedIn(info *types.Info, table *SummaryTable, body ast.Node, ctxVar *types.Var) bool {
	ignoredArg := map[*ast.Ident]bool{}
	observed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if observed {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == ctxVar {
				observed = true // ctx.Err(), ctx.Done(), ctx.Value(), ...
				return false
			}
		}
		for _, a := range call.Args {
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok || info.Uses[id] != ctxVar {
				continue
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				observed = true // call through a function value: trust it
				continue
			}
			if cs := table.lookup(callee); cs != nil {
				if cs.ObservesCtx {
					observed = true
				} else {
					ignoredArg[id] = true
				}
			} else if callee.Pkg() != nil && table.isTarget(callee.Pkg().Path()) {
				ignoredArg[id] = true // module function, provably (so far) ignores
			} else {
				observed = true // external callee: trust it
			}
		}
		return true
	})
	if observed {
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if observed {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == ctxVar && !ignoredArg[id] {
			observed = true
		}
		return true
	})
	return observed
}

// lockOrderEdges runs a may-hold dataflow over the function's CFG (and each
// non-spawned literal's, with an empty entry set) emitting From→To edges
// whenever a lock is acquired — or a lock-acquiring callee is entered —
// while another is held.
func lockOrderEdges(lp *LoadedPackage, decl *ast.FuncDecl, table *SummaryTable) []LockEdge {
	var edges []LockEdge
	seen := map[LockEdge]bool{}
	emit := func(from, to string, at token.Pos) {
		if from == to {
			return // re-acquisition of the same abstract lock is lockhold's business
		}
		p := lp.Fset.Position(at)
		e := LockEdge{From: from, To: to, File: p.Filename, Line: p.Line}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	// The declaration body, then every function literal inside it as its own
	// unit (empty entry held set — consistent with lockhold): a spawned
	// goroutine's internal acquisition order is exactly the kind of edge a
	// cross-goroutine deadlock is made of.
	lockEdgesForBody(lp, decl.Body, table, emit)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lockEdgesForBody(lp, lit.Body, table, emit)
		}
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		if edges[i].File != edges[j].File {
			return edges[i].File < edges[j].File
		}
		return edges[i].Line < edges[j].Line
	})
	return edges
}

// lockEdgesForBody is the per-body dataflow behind lockOrderEdges.
func lockEdgesForBody(lp *LoadedPackage, body *ast.BlockStmt, table *SummaryTable, emit func(from, to string, at token.Pos)) {
	info := lp.Info
	locks := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMutexCall(info, call, "Lock", "RLock") {
			locks = true
		}
		return !locks
	})
	if !locks {
		return
	}
	g := buildCFG(body)
	if g.hasGoto {
		return
	}

	// held maps receiver-expression spelling → canonical lock ID, so the
	// From side of every edge uses exactly the same identity the To side
	// gets from lockID (cycles would otherwise never close).
	type lockHeld map[string]string
	clone := func(h lockHeld) lockHeld {
		c := make(lockHeld, len(h))
		for k, v := range h {
			c[k] = v
		}
		return c
	}
	heldFroms := func(h lockHeld) []string {
		ids := map[string]bool{}
		for _, v := range h {
			ids[v] = true
		}
		return sortedStrings(ids)
	}

	in := make([]lockHeld, len(g.nodes))
	transfer := func(n *cfgNode, held lockHeld, record bool) lockHeld {
		if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
			return held
		}
		for _, part := range n.nodeParts() {
			inspectSkippingFuncLits(part, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isMutexCall(info, call, "Lock", "RLock"):
					recv := mutexRecvExpr(call)
					if recv == nil {
						return true
					}
					id := lockID(info, lp.Path, recv)
					if record {
						for _, from := range heldFroms(held) {
							emit(from, id, call.Pos())
						}
					}
					held[exprKey(recv)] = id
				case isMutexCall(info, call, "Unlock", "RUnlock"):
					if recv := mutexRecvExpr(call); recv != nil {
						delete(held, exprKey(recv))
					}
				default:
					if record && len(held) > 0 {
						if cs := table.summaryForCall(info, call); cs != nil && len(cs.Acquires) > 0 {
							for _, from := range heldFroms(held) {
								for _, to := range cs.Acquires {
									emit(from, to, call.Pos())
								}
							}
						}
					}
				}
				return true
			})
		}
		return held
	}

	merge := func(dst, src lockHeld) (lockHeld, bool) {
		if dst == nil {
			return clone(src), true
		}
		changed := false
		for k, v := range src {
			if _, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			}
		}
		return dst, changed
	}

	work := []*cfgNode{g.entry}
	in[g.entry.index] = lockHeld{}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(n, clone(in[n.index]), false)
		for _, su := range n.succs {
			m, changed := merge(in[su.index], out)
			in[su.index] = m
			if changed {
				work = append(work, su)
			}
		}
	}
	for _, n := range g.nodes {
		if in[n.index] == nil {
			continue
		}
		transfer(n, clone(in[n.index]), true)
	}
}

// lockID canonicalizes the receiver expression of a Lock call into a global,
// serialization-stable identity:
//
//	e.mu.Lock()   where e is *repro.Engine  →  "repro.Engine.mu"
//	globalMu.Lock()  (package-level var)    →  "repro/internal/x.globalMu"
//	mu.Lock()        (function-local var)   →  "repro/internal/x.local.mu"
//
// Instances of the same field are deliberately conflated — standard for
// static lock-order analysis, and exactly the granularity the deadlock
// argument needs (two instances of the same class locked in both orders IS a
// lock-order bug under this abstraction).
func lockID(info *types.Info, pkgPath string, recv ast.Expr) string {
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		// Qualified package-level var (otherpkg.Mu): same identity that
		// package's own bare-ident uses get, or cross-package cycles never
		// close.
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
		if t := info.TypeOf(x.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		return pkgPath + "." + exprKey(x)
	case *ast.Ident:
		obj := exprObject(info, x)
		if obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name() // package-level lock
			}
			return obj.Pkg().Path() + ".local." + obj.Name()
		}
		return pkgPath + ".local." + x.Name
	case *ast.StarExpr:
		return lockID(info, pkgPath, x.X)
	}
	return pkgPath + "." + exprKey(recv)
}

func sortedInts(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func sortedStrings(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func intsContain(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// funcLitUsesVar reports whether lit's body references v.
func funcLitUsesVar(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	return funcLitUses(info, lit, v)
}
