package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches the suppression directive grammar:
//
//	//repro:allow(<analyzer>) <reason>
//
// The reason is everything after the closing paren; the directive is invalid
// (and reported) when the reason is empty.
var allowRe = regexp.MustCompile(`^//repro:allow\(([a-zA-Z0-9_-]+)\)\s*(.*)$`)

// allowDirective is one parsed //repro:allow occurrence.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int // line the directive suppresses (its own line, or the one below for standalone comments)
	analyzer string
	reason   string
	used     bool
	bad      bool // malformed: empty reason or unknown analyzer
}

// collectAllows parses every //repro:allow directive in files. Malformed
// directives (missing reason, unknown analyzer name) are reported immediately
// via report and excluded from matching.
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowDirective {
	known := make(map[string]bool)
	for _, n := range Names() {
		known[n] = true
	}
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &allowDirective{
					pos:      c.Pos(),
					file:     pos.Filename,
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				}
				// A standalone comment suppresses the line below it; a
				// trailing comment suppresses its own line. Distinguish by
				// whether anything but whitespace precedes the comment.
				if commentIsTrailing(fset, f, c) {
					d.line = pos.Line
				} else {
					d.line = pos.Line + 1
				}
				switch {
				case !known[d.analyzer]:
					d.bad = true
					report(Diagnostic{Pos: c.Pos(), Analyzer: "reprolint",
						Message: "//repro:allow names unknown analyzer " + strconv(d.analyzer)})
				case d.reason == "":
					d.bad = true
					report(Diagnostic{Pos: c.Pos(), Analyzer: "reprolint",
						Message: "//repro:allow(" + d.analyzer + ") requires a reason: //repro:allow(" + d.analyzer + ") <why this is safe>"})
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func strconv(s string) string { return `"` + s + `"` }

// commentIsTrailing reports whether c sits on the same line as code (so it
// suppresses its own line rather than the next).
func commentIsTrailing(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		if n.Pos() == token.NoPos {
			return true
		}
		// Any node that starts on the comment's line before the comment
		// makes it a trailing comment.
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && p.Offset < cpos.Offset {
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup, *ast.File:
			default:
				trailing = true
			}
		}
		return true
	})
	return trailing
}

// Filter applies //repro:allow directives to diagnostics: suppressed findings
// are dropped, malformed directives were already reported by collectAllows,
// and directives that matched nothing become "unused suppression" findings.
// ran names the analyzers that actually ran (nil means the full suite);
// directives for analyzers that did not run are left alone rather than
// reported unused. The returned slice is position-sorted; the count is the
// number of directives that suppressed at least one finding (the driver's
// machine-readable gate line reports it so suppressions stay visible).
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran map[string]bool) ([]Diagnostic, int) {
	var out []Diagnostic
	allows := collectAllows(fset, files, func(d Diagnostic) { out = append(out, d) })
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.bad || a.analyzer != d.Analyzer || a.file != p.Filename || a.line != p.Line {
				continue
			}
			a.used = true
			suppressed = true
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	used := 0
	for _, a := range allows {
		if a.used {
			used++
		}
		if ran != nil && !ran[a.analyzer] {
			continue
		}
		if !a.bad && !a.used {
			out = append(out, Diagnostic{Pos: a.pos, Analyzer: "reprolint",
				Message: "unused //repro:allow(" + a.analyzer + ") — no " + a.analyzer + " finding on this line; delete the directive"})
		}
	}
	SortDiagnostics(fset, out)
	return out, used
}
