package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// AnalyzerErrDisc enforces the module's error-discipline contract (the
// documented taxonomy: ErrEngineClosed, *QuotaError, *CorruptError,
// ErrCheckpoint, ErrChecksum, and raw context errors). Two rules:
//
//  1. fmt.Errorf must not swallow an error value: formatting an error-typed
//     argument with %v, %s, or any verb other than %w flattens it to text, so
//     errors.Is/errors.As downstream can no longer match the typed error the
//     API documents. Wrap with %w.
//  2. ctx.Err() must be returned unwrapped. The engine's cancellation
//     contract documents raw context.Canceled / DeadlineExceeded; a ctx.Err()
//     routed through fmt.Errorf — even with %w — adds a layer callers were
//     told they would not see. Return ctx.Err() directly and let the caller
//     add context.
//
// Both checks are call-site local; the taxonomy itself is documented in
// docs/INVARIANTS.md.
var AnalyzerErrDisc = &Analyzer{
	Name: "errdisc",
	Doc:  "fmt.Errorf must wrap error values with %w, and ctx.Err() must be returned unwrapped",
	Run:  runErrDisc,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrDisc(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isErrorfCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			checkErrorf(pass, call)
			return true
		})
	}
}

func isErrorfCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "Errorf" && f.Pkg() != nil && f.Pkg().Path() == "fmt"
}

func checkErrorf(pass *Pass, call *ast.CallExpr) {
	// Rule 2 first: a ctx.Err() argument is a finding regardless of verb.
	for _, a := range call.Args[1:] {
		if isCtxErrCall(pass.Info, a) {
			pass.Reportf("errdisc", a.Pos(),
				"ctx.Err() routed through fmt.Errorf: the cancellation contract documents raw context errors — return ctx.Err() unwrapped and let the caller add context")
		}
	}

	format, ok := constStringArg(pass.Info, call.Args[0])
	if !ok {
		return // dynamic format: nothing to check statically
	}
	verbs := errorfVerbs(format)
	args := call.Args[1:]
	if verbs == nil || len(verbs) != len(args) {
		// Unparseable or mismatched (vet territory): fall back to the blunt
		// check — an error-typed argument with no %w anywhere is a swallow.
		if !strings.Contains(format, "%w") {
			for _, a := range args {
				if isErrorValue(pass.Info, a) {
					reportSwallow(pass, a, "")
					return
				}
			}
		}
		return
	}
	for i, a := range args {
		if verbs[i] != "w" && isErrorValue(pass.Info, a) {
			reportSwallow(pass, a, verbs[i])
		}
	}
}

func reportSwallow(pass *Pass, arg ast.Expr, verb string) {
	with := ""
	if verb != "" {
		with = " with %" + verb
	}
	pass.Reportf("errdisc", arg.Pos(),
		"fmt.Errorf flattens an error value%s: errors.Is/errors.As can no longer match the typed error — wrap it with %%w", with)
}

// isErrorValue reports whether e's static type implements error (excluding
// ctx.Err() calls, which rule 2 reports separately and more specifically).
func isErrorValue(info *types.Info, e ast.Expr) bool {
	if isCtxErrCall(info, e) {
		return false
	}
	t := info.TypeOf(e)
	return t != nil && types.Implements(t, errorIface)
}

// isCtxErrCall reports whether e is a call of context.Context.Err.
func isCtxErrCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := calleeFunc(info, call)
	if f == nil || f.Name() != "Err" {
		return false
	}
	named := recvNamed(f)
	return named != nil && isContextType(named)
}

// constStringArg extracts a constant string value (literal or named const).
func constStringArg(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// errorfVerbs parses a Printf-style format into one verb letter per consumed
// argument ("*" for a dynamic width/precision). Returns nil for explicit
// argument indexes ("%[1]d"), which this parser does not model.
func errorfVerbs(format string) []string {
	var verbs []string
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, "*")
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, "*")
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) && format[i] == '[' {
			return nil
		}
		if i < len(format) {
			verbs = append(verbs, string(format[i]))
			i++
		}
	}
	return verbs
}
