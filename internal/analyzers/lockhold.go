package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerLockHold forbids holding a sync.Mutex / sync.RWMutex across a
// blocking operation. With a lock held (including via the idiomatic
// lock-then-defer-unlock pattern, which keeps the lock to function exit), the
// following are flagged:
//
//   - a channel send or receive (the pre-admission-control Engine.Submit
//     deadlock shape: holding e.mu while sending to a full queue channel
//     stalls every other Submit AND the worker that would drain it);
//   - a select with no default clause (its chosen communication blocks);
//   - a blocking compute.Pool dispatch (Do, ParallelFor, ParallelRanges,
//     RunPartitioned) — these park until workers finish, and workers may need
//     the same lock;
//   - sync.WaitGroup.Wait;
//   - sync.Cond.Wait on a condition variable that is not bound (via
//     sync.NewCond) to one of the locks currently held: Wait atomically
//     unlocks ITS OWN lock, so waiting under a different held lock sleeps
//     with that lock pinned;
//   - a call to a module function whose interprocedural summary says it may
//     block (a channel wait, pool dispatch, or WaitGroup.Wait hidden behind
//     any depth of helpers).
//
// The analysis is a may-hold dataflow over the CFG: a lock held on any path
// into a blocking node is reported. Unlock/RUnlock clears the lock on that
// path; a deferred Unlock deliberately does not (the lock really is held for
// the remainder of the function body).
var AnalyzerLockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no mutex held across channel operations, blocking pool dispatches, WaitGroup.Wait, or foreign cond.Wait",
	Run:  runLockHold,
}

// condBindings maps the field/variable object of a *sync.Cond to the object
// of the lock it was constructed over with sync.NewCond(&lock).
type condBindings map[types.Object]types.Object

func runLockHold(pass *Pass) {
	binds := collectCondBindings(pass)
	forEachFunc(pass.Files, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		analyzeLockFunc(pass, body, binds)
	})
}

// collectCondBindings pre-scans the package for sync.NewCond(&X) assignments,
// binding the cond's destination object to X's object.
func collectCondBindings(pass *Pass) condBindings {
	binds := condBindings{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range a.Rhs {
				if i >= len(a.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Name() != "NewCond" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
					continue
				}
				if len(call.Args) != 1 {
					continue
				}
				ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				lockObj := exprObject(pass.Info, ue.X)
				condObj := exprObject(pass.Info, a.Lhs[i])
				if lockObj != nil && condObj != nil {
					binds[condObj] = lockObj
				}
			}
			return true
		})
	}
	return binds
}

// heldSet is the may-hold state: canonical receiver string -> lock object
// (object may be nil when the receiver is not a simple ident/selector chain).
type heldSet map[string]types.Object

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func analyzeLockFunc(pass *Pass, body *ast.BlockStmt, binds condBindings) {
	// Pre-scan: skip functions with no Lock call at all.
	locks := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMutexCall(pass.Info, call, "Lock", "RLock") {
			locks = true
		}
		return !locks
	})
	if !locks {
		return
	}

	g := buildCFG(body)
	if g.hasGoto {
		return
	}

	in := make([]heldSet, len(g.nodes))
	reported := map[ast.Node]bool{}

	transfer := func(n *cfgNode, held heldSet, record bool) heldSet {
		// A defer's call runs at function exit, not here: it neither blocks
		// now nor (crucially) releases a lock now — `defer mu.Unlock()`
		// keeps mu held for the remainder of the body.
		if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
			return held
		}
		// 1. Blocking-op checks against the incoming held set.
		if len(held) > 0 && record {
			checkBlocking(pass, n, held, binds, reported)
		}
		// 2. Lock/Unlock effects.
		for _, part := range n.nodeParts() {
			inspectSkippingFuncLits(part, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv := mutexRecvExpr(call)
				if recv == nil {
					return true
				}
				key := exprKey(recv)
				switch {
				case isMutexCall(pass.Info, call, "Lock", "RLock"):
					held[key] = exprObject(pass.Info, recv)
				case isMutexCall(pass.Info, call, "Unlock", "RUnlock"):
					delete(held, key)
				}
				return true
			})
		}
		return held
	}

	merge := func(dst, src heldSet) (heldSet, bool) {
		if dst == nil {
			return src.clone(), true
		}
		changed := false
		for k, v := range src {
			if _, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			}
		}
		return dst, changed
	}

	work := []*cfgNode{g.entry}
	in[g.entry.index] = heldSet{}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(n, in[n.index].clone(), false)
		for _, s := range n.succs {
			m, changed := merge(in[s.index], out)
			in[s.index] = m
			if changed {
				work = append(work, s)
			}
		}
	}

	// Reporting pass over stable states.
	for _, n := range g.nodes {
		if in[n.index] == nil {
			continue
		}
		transfer(n, in[n.index].clone(), true)
	}
}

// checkBlocking reports blocking operations at node n given the held set.
func checkBlocking(pass *Pass, n *cfgNode, held heldSet, binds condBindings, reported map[ast.Node]bool) {
	report := func(at ast.Node, what string) {
		if reported[at] {
			return
		}
		reported[at] = true
		pass.Reportf("lockhold", at.Pos(),
			"%s while holding %s: blocking with a mutex held stalls every contender (release the lock first, or restructure so the blocking op happens outside the critical section)",
			what, heldNames(held))
	}

	// Select heads: the select itself blocks unless it has a default clause.
	if sel, ok := n.stmt.(*ast.SelectStmt); ok {
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			report(sel, "select with no default clause")
		}
		return
	}
	// Communication clauses were accounted for at the select head.
	if n.isComm {
		return
	}

	// Channel send statement.
	if snd, ok := n.stmt.(*ast.SendStmt); ok {
		report(snd, "channel send")
	}

	for _, part := range n.nodeParts() {
		inspectSkippingFuncLits(part, func(x ast.Node) bool {
			switch e := x.(type) {
			case *ast.UnaryExpr:
				if e.Op.String() == "<-" {
					report(e, "channel receive")
				}
			case *ast.CallExpr:
				if isMethodOn(pass.Info, e, "compute", "Pool", "Do", "ParallelFor", "ParallelRanges", "RunPartitioned") {
					report(e, "blocking compute.Pool dispatch")
				}
				if isSyncMethod(pass.Info, e, "WaitGroup", "Wait") {
					report(e, "sync.WaitGroup.Wait")
				}
				if isSyncMethod(pass.Info, e, "Cond", "Wait") {
					checkCondWait(pass, e, held, binds, report)
				}
				if cs := pass.Summaries.summaryForCall(pass.Info, e); cs != nil && cs.MayBlock {
					if f := calleeFunc(pass.Info, e); f != nil {
						report(e, fmt.Sprintf("call to %s, which may block (transitively, per its interprocedural summary)", f.Name()))
					}
				}
			}
			return true
		})
	}
}

// checkCondWait allows cond.Wait only when the cond is bound (via
// sync.NewCond) to one of the currently held locks.
func checkCondWait(pass *Pass, call *ast.CallExpr, held heldSet, binds condBindings, report func(ast.Node, string)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		report(call, "sync.Cond.Wait on an unresolvable condition variable")
		return
	}
	condObj := exprObject(pass.Info, sel.X)
	lockObj := binds[condObj]
	if lockObj == nil {
		report(call, "sync.Cond.Wait on a condition variable with no visible sync.NewCond binding")
		return
	}
	for _, obj := range held {
		if obj != nil && obj == lockObj {
			return // Waiting on the lock we hold: the one correct pattern.
		}
	}
	report(call, "sync.Cond.Wait bound to a DIFFERENT lock than the one(s) held")
}

// isMutexCall reports a method call with one of names on sync.Mutex/RWMutex.
func isMutexCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	return isSyncMethodAny(info, call, []string{"Mutex", "RWMutex"}, names)
}

func isSyncMethod(info *types.Info, call *ast.CallExpr, typeName string, names ...string) bool {
	return isSyncMethodAny(info, call, []string{typeName}, names)
}

func isSyncMethodAny(info *types.Info, call *ast.CallExpr, typeNames, names []string) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	named := recvNamed(f)
	if named == nil {
		return false
	}
	tp := named.Obj().Pkg()
	if tp == nil || tp.Path() != "sync" {
		return false
	}
	typeOK := false
	for _, t := range typeNames {
		if named.Obj().Name() == t {
			typeOK = true
		}
	}
	if !typeOK {
		return false
	}
	for _, m := range names {
		if f.Name() == m {
			return true
		}
	}
	return false
}

// mutexRecvExpr extracts the receiver expression of a method call
// (x.mu.Lock() -> x.mu), or nil for non-selector calls.
func mutexRecvExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// exprKey renders an ident/selector chain canonically ("q.mu"); other shapes
// get a position-independent fallback so they at least self-match.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	default:
		return "<expr>"
	}
}

// exprObject resolves the final object an ident/selector chain denotes: the
// selected field for q.cond / q.mu, the variable for a plain ident.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.StarExpr:
		return exprObject(info, x.X)
	}
	return nil
}

// heldNames renders the held set deterministically for messages.
func heldNames(held heldSet) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	// Insertion-order independence: simple sort.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out
}
