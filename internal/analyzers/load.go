package analyzers

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked target package ready for analysis.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Imports lists the package's direct imports (all of them, targets and
	// dependencies alike); ComputeSummaries uses it to order packages
	// bottom-up so callee summaries exist before their callers need them.
	Imports []string
	// Fingerprint is a content hash of the package's own sources plus the
	// build-cache export paths of everything it imports. Export paths are
	// content-addressed by the go build cache, so any change in a dependency
	// — its own body included, transitively — moves its export path and with
	// it this fingerprint. The summary store keys on it.
	Fingerprint string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// LoadPatterns resolves package patterns with the go tool and type-checks the
// matched (non-dependency) packages from source. Dependencies — standard
// library included — are consumed as compiled export data from the build
// cache via `go list -export`, which works fully offline. Test files are not
// loaded: the invariants reprolint enforces live in shipped code.
func LoadPatterns(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s (%s): %w", strings.Join(patterns, " "), strings.TrimSpace(stderr.String()), err)
	}

	exportFiles := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		ef, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is the package built?)", path)
		}
		return os.Open(ef)
	}

	var out []*LoadedPackage
	for _, t := range targets {
		lp, err := typeCheckListed(fset, t, lookup, exportFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

func typeCheckListed(fset *token.FileSet, t *listedPackage, lookup func(string) (io.ReadCloser, error), exportFiles map[string]string) (*LoadedPackage, error) {
	h := sha256.New()
	fmt.Fprintf(h, "pkg %s\n", t.ImportPath)
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", name, err)
		}
		fmt.Fprintf(h, "file %s %x\n", name, sha256.Sum256(src))
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	imports := append([]string(nil), t.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		fmt.Fprintf(h, "import %s=%s\n", imp, exportFiles[imp])
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect-and-continue; first error surfaces below
	}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &LoadedPackage{
		Path:        t.ImportPath,
		Fset:        fset,
		Files:       files,
		Pkg:         pkg,
		Info:        info,
		Imports:     imports,
		Fingerprint: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
