// Package analyzers is reprolint: a suite of static analyzers that enforce
// the repository's determinism, arena, context, allocation, and lock
// discipline invariants at compile-review time instead of at runtime.
//
// The suite is deliberately built on the standard library only (go/parser,
// go/types, and a small CFG over the AST) so the module stays
// dependency-free; the driver in cmd/reprolint resolves package patterns and
// type information through `go list -export`, which works offline from the
// build cache.
//
// # Analyzers
//
//   - determinism: kernel/decomposition packages must not draw from
//     math/rand, must not let time.Now/time.Since feed computation, and must
//     not range over maps when the iteration order can reach numeric
//     accumulation, slice appends, or RNG draws (map order is randomized per
//     run, which breaks bit-reproducibility).
//   - arenapair: every compute.Arena Get/GetUninit must reach a matching Put
//     on all paths out of the function (early returns and panics included;
//     a deferred Put covers everything), and no buffer is Put twice.
//   - ctxloop: loops that dispatch heavy work inside context-taking
//     functions must observe ctx at least once per iteration, and exported
//     ...Ctx functions must not drop their context.
//   - noalloc: functions annotated //repro:noalloc must contain no
//     intraprocedural allocation site (make, new, append, escaping composite
//     literals, capturing closures, go statements).
//   - lockhold: no sync.Mutex/RWMutex held across a channel operation, a
//     blocking compute.Pool dispatch, a WaitGroup.Wait, a cond.Wait whose
//     condition variable is not bound to the held lock, or a call to a
//     module function whose summary says it may block.
//   - goroleak: every go statement must show join evidence — WaitGroup.Done
//     on all paths out of the goroutine body, channel communication, or
//     context bounding — resolved through callee summaries.
//   - lockorder: the module-wide lock-acquisition-order graph assembled from
//     the summaries must be acyclic; a cycle is a potential deadlock.
//   - errdisc: fmt.Errorf must wrap error values with %w (never flatten them
//     with %v/%s), and ctx.Err() must be returned unwrapped.
//
// # Interprocedural summaries
//
// The suite is interprocedural: before the analyzers run, a per-function
// summary table (summary.go) is computed bottom-up over the module call
// graph (callgraph.go) — packages in import order, intra-package mutual
// recursion to a fixpoint. arenapair resolves ownership transferred to a
// Put-ting helper, ctxloop resolves a context observed one call deep,
// lockhold sees blocking hidden behind helpers, and goroleak/lockorder are
// built on the summaries outright. Without a table (Pass.Summaries nil)
// every analyzer degrades to its intraprocedural behavior.
//
// # Suppression
//
// A finding is suppressed by a directive on the offending line, or on a
// comment line immediately above it:
//
//	//repro:allow(analyzer) reason text
//
// The reason is mandatory; a reason-less directive is itself a finding, as
// is a directive that matches no finding (so stale suppressions cannot
// linger). See docs/INVARIANTS.md for the full catalogue.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Report func(Diagnostic)

	// Summaries is the module-wide interprocedural summary table (see
	// summary.go). May be nil, in which case every analyzer degrades to its
	// intraprocedural behavior with conservative assumptions about callees.
	Summaries *SummaryTable
}

// Reportf records a finding for the running analyzer.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo gates the analyzer to a package-path subset; nil means every
	// package. The driver consults it — fixture tests run Run directly.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerArenaPair,
		AnalyzerCtxLoop,
		AnalyzerNoAlloc,
		AnalyzerLockHold,
		AnalyzerGoroLeak,
		AnalyzerLockOrder,
		AnalyzerErrDisc,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	idx := make(map[string]*Analyzer)
	for _, a := range All() {
		idx[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a := idx[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists every analyzer name in suite order.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return ns
}

// kernelPackages are the bit-reproducibility-critical packages the
// determinism analyzer gates on: the matrix/LAPACK kernels, the randomized
// sketch, the decomposition loops, and the deterministic RNG itself.
var kernelPackages = map[string]bool{
	"repro/internal/mat":      true,
	"repro/internal/lapack":   true,
	"repro/internal/rsvd":     true,
	"repro/internal/parafac2": true,
	"repro/internal/rng":      true,
}

// isPkgPath reports whether path names pkg — either the repository package
// (exact path or "repro/internal/<pkg>") or a fixture stand-in whose import
// path is just the bare name. Keeping the match path-based (not object
// identity) lets the analysistest fixtures provide miniature stand-in
// packages for compute, rng, etc.
func isPkgPath(path, pkg string) bool {
	return path == pkg || path == "repro/internal/"+pkg || strings.HasSuffix(path, "/"+pkg)
}

// SortDiagnostics orders findings by position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// ---- shared type-query helpers ---------------------------------------------

// calleeFunc resolves the called function or method object of a call, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the named type of a method's receiver (pointers
// dereferenced), or nil for non-methods.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether call is a method call named methodName on the
// named type typeName declared in a package matching pkg (see isPkgPath).
func isMethodOn(info *types.Info, call *ast.CallExpr, pkg, typeName string, methodName ...string) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	named := recvNamed(f)
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	tp := named.Obj().Pkg()
	if tp == nil || !isPkgPath(tp.Path(), pkg) {
		return false
	}
	for _, m := range methodName {
		if f.Name() == m {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether sig takes a context.Context anywhere.
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
