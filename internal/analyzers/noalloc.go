package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerNoAlloc verifies functions annotated with a
//
//	//repro:noalloc
//
// directive (on the line directly above the func declaration, or anywhere in
// its doc comment) contain no intraprocedural allocation site. The annotated
// set is the register-tiled matmul kernels and the batched-SVD hot loop whose
// per-iteration allocation budgets the benchsmoke gate enforces at runtime;
// this analyzer enforces the same contract at review time, before a
// regression ever reaches a benchmark run.
//
// Flagged sites: make, new, append, composite literals for slice/map types,
// &CompositeLit, string concatenation producing a new string, fmt-style
// variadic interface boxing via ...any conversion is NOT modeled (too
// imprecise); capturing closures (a FuncLit referencing outer variables
// allocates its environment); and go statements (goroutine stacks).
// Non-capturing FuncLits and calls through variadic parameters of concrete
// element type (e.g. arena.Put(a, b)) are allowed: the compiler stack-
// allocates the argument slice when it does not escape.
var AnalyzerNoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //repro:noalloc must contain no allocation site",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocDirective(fd) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
}

// hasNoAllocDirective reports a //repro:noalloc line in the doc comment.
func hasNoAllocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//repro:noalloc" {
			return true
		}
	}
	return false
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	report := func(pos ast.Node, what string) {
		pass.Reportf("noalloc", pos.Pos(),
			"%s inside //repro:noalloc function %s: this function is on the allocation-free hot path; preallocate in the caller or workspace",
			what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == types.Universe.Lookup(id.Name) {
				switch id.Name {
				case "make":
					report(e, "make")
				case "new":
					report(e, "new")
				case "append":
					report(e, "append")
				}
			}
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(e)
			if t == nil {
				report(e, "composite literal")
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(e, "slice/map composite literal")
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e, "&composite-literal (heap-escaping struct)")
					return false // don't double-report the literal itself
				}
			}
		case *ast.BinaryExpr:
			if e.Op.String() == "+" {
				if t := pass.Info.TypeOf(e); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e, "string concatenation")
					}
				}
			}
		case *ast.FuncLit:
			if capturesOuter(pass.Info, e) {
				report(e, "capturing closure (allocates its environment)")
			}
			return false // the literal's body is not part of this function's budget
		case *ast.GoStmt:
			report(e, "go statement (allocates a goroutine)")
		}
		return true
	})
}

// capturesOuter reports whether lit references any variable declared outside
// the literal itself (a capture forces a heap-allocated environment).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}
