package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectedBugsThroughRealLoading proves each new analyzer non-vacuous end
// to end: a throwaway module with planted bugs goes through the real pipeline
// — `go list -export` resolving stdlib dependencies as compiled export data,
// source type-checking, cross-package summary computation — and every planted
// bug must surface. The fixture harness cannot substitute for this: it
// type-checks stand-in packages from source and never exercises export-data
// loading or cross-package summary propagation.
func TestInjectedBugsThroughRealLoading(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write("go.mod", "module injected.example/bugs\n\ngo 1.24\n")
	// inner: the callee side of every interprocedural bug. Spin has no join
	// surface; BA acquires the package locks in back-to-front order.
	write("inner/inner.go", `package inner

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex

	n int
)

// Spin has no WaitGroup, channel, or context surface.
func Spin() {
	for {
		n++
	}
}

// BA acquires B then A.
func BA() {
	MuB.Lock()
	MuA.Lock()
	n++
	MuA.Unlock()
	MuB.Unlock()
}
`)
	// Root package: each planted bug is only visible through inner's summary
	// (or its types) across the package boundary.
	write("bugs.go", `package bugs

import (
	"fmt"

	"injected.example/bugs/inner"
)

// LeakSpin spawns a goroutine whose leak only shows in inner.Spin's summary.
func LeakSpin() {
	go inner.Spin()
}

// AB acquires A then B; inner.BA does the reverse — the cycle spans packages.
func AB() {
	inner.MuA.Lock()
	inner.MuB.Lock()
	inner.MuB.Unlock()
	inner.MuA.Unlock()
}

// Wrap flattens the error it is handed.
func Wrap(err error) error {
	return fmt.Errorf("boom: %v", err)
}
`)

	pkgs, err := LoadPatterns(dir, "./...")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	table := ComputeSummaries(pkgs, nil)

	ran := make(map[string]bool)
	for _, n := range Names() {
		ran[n] = true
	}
	var diags []Diagnostic
	for _, lp := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range All() {
			a.Run(&Pass{
				Fset:      lp.Fset,
				Files:     lp.Files,
				Pkg:       lp.Pkg,
				Info:      lp.Info,
				Report:    func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
				Summaries: table,
			})
		}
		pkgDiags, _ = Filter(lp.Fset, lp.Files, pkgDiags, ran)
		diags = append(diags, pkgDiags...)
	}

	found := func(analyzer, substr string) bool {
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				return true
			}
		}
		return false
	}
	for _, want := range []struct{ analyzer, substr string }{
		{"goroleak", "goroutine running Spin has no join evidence"},
		{"lockorder", "lock-order cycle"},
		{"errdisc", "flattens an error value with %v"},
	} {
		if !found(want.analyzer, want.substr) {
			for _, d := range diags {
				t.Logf("got %s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
			t.Fatalf("planted %s bug not reported (want message containing %q)", want.analyzer, want.substr)
		}
	}
}
