package analyzers

import (
	"go/ast"
	"go/types"
)

// AnalyzerDeterminism guards the bit-reproducibility contract of the kernel
// and decomposition packages (internal/mat, lapack, rsvd, parafac2, rng):
//
//   - No math/rand (or math/rand/v2): every random draw must come from the
//     deterministic, explicitly-seeded internal/rng generator. The global
//     math/rand functions share hidden process state; even a locally
//     constructed rand.Rand encodes a different stream contract than the
//     Split/Clone reproducibility discipline the repository depends on.
//   - time.Now / time.Since may record wall-clock metadata (plain assignment
//     to a variable or field, e.g. Result.IterTime) but must not feed
//     computation: a timestamp used in arithmetic, a comparison, a
//     conversion, a method call (UnixNano, Seconds, ...), or as a call
//     argument makes iteration counts or numeric values depend on the clock.
//   - No range over a map when the loop body (per-iteration order) can
//     change the result: accumulating into a floating-point variable
//     declared outside the loop, appending to a slice declared outside the
//     loop, or drawing from an rng.RNG. Map iteration order is randomized
//     per run, so any of these makes results run-dependent.
var AnalyzerDeterminism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid math/rand, clock-fed computation, and order-sensitive map ranges in kernel packages",
	AppliesTo: func(pkgPath string) bool { return kernelPackages[pkgPath] },
	Run:       runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				checkRandUse(pass, e)
			case *ast.CallExpr:
				checkTimeCall(pass, f, e)
			case *ast.RangeStmt:
				checkMapRange(pass, e)
			}
			return true
		})
	}
}

// checkRandUse flags any qualified reference into math/rand or math/rand/v2.
func checkRandUse(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf("determinism", sel.Pos(),
			"use of %s.%s: kernel packages must draw randomness from the deterministic internal/rng generator, never math/rand",
			obj.Pkg().Name(), obj.Name())
	}
}

// checkTimeCall flags time.Now / time.Since results that feed computation.
func checkTimeCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
		return
	}
	if f.Name() != "Now" && f.Name() != "Since" {
		return
	}
	if timeCallIsBenign(file, call) {
		return
	}
	pass.Reportf("determinism", call.Pos(),
		"time.%s feeds computation here: wall-clock values may only be recorded (plain assignment to a timing variable or field), never used in arithmetic, comparisons, conversions, or as call arguments",
		f.Name())
}

// timeCallIsBenign reports whether the call's value is merely recorded: its
// direct parent is a single-value assignment/definition or a variable
// declaration. Everything else — an argument position, a binary expression,
// a method call on the result, a condition — counts as feeding computation.
func timeCallIsBenign(file *ast.File, call *ast.CallExpr) bool {
	parent := parentNode(file, call)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		return len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call
	case *ast.ValueSpec:
		return len(p.Values) == 1 && ast.Unparen(p.Values[0]) == call
	case *ast.CallExpr:
		// time.Since(x) has the inner x, not a time call, so the only call
		// parent of interest is "the result passed somewhere" — computation.
		return false
	case *ast.KeyValueExpr:
		// Recording into a struct literal field (e.g. Result{IterTime: ...}).
		return ast.Unparen(p.Value) == call
	}
	return false
}

// parentNode finds the immediate parent of target in file (nil at top level).
func parentNode(file *ast.File, target ast.Node) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if n == target && len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return parent == nil
	})
	return parent
}

// checkMapRange flags order-sensitive map iteration.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	body := rng.Body
	var reason string
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.AssignStmt:
			if reasonFromAssign(pass, e, body) != "" {
				reason = reasonFromAssign(pass, e, body)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
				if v := localVarOf(pass.Info, e.Args[0]); v != nil && declaredOutside(v, body) {
					reason = "appends to slice " + v.Name() + " declared outside the loop"
				}
			}
			if isMethodOn(pass.Info, e, "rng", "RNG",
				"Uint64", "Float64", "Intn", "Norm", "NormSlice", "UniformSlice", "Perm", "Split") {
				reason = "draws from an rng.RNG generator"
			}
		}
		return true
	})
	if reason != "" {
		pass.Reportf("determinism", rng.Pos(),
			"range over map in iteration-order-sensitive position: loop body %s, and map iteration order is randomized per run", reason)
	}
}

// reasonFromAssign reports a float accumulation into a variable declared
// outside the loop body ("x += ...", "x = x + ..."), or "".
func reasonFromAssign(pass *Pass, a *ast.AssignStmt, body *ast.BlockStmt) string {
	if len(a.Lhs) != 1 {
		return ""
	}
	v := localVarOf(pass.Info, a.Lhs[0])
	if v == nil || !isFloatish(v.Type()) || !declaredOutside(v, body) {
		return ""
	}
	switch a.Tok.String() {
	case "+=", "-=", "*=", "/=":
		return "accumulates into floating-point variable " + v.Name()
	case "=":
		// x = x <op> ... — self-referencing update.
		if exprMentionsVar(pass.Info, a.Rhs[0], v) {
			return "accumulates into floating-point variable " + v.Name()
		}
	}
	return ""
}

func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// localVarOf resolves an expression to the *types.Var it names (plain
// identifier or selector base handled as the selected field's object).
func localVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		if v == nil {
			v, _ = info.Defs[x].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		return localVarOf(info, x.X)
	}
	return nil
}

// declaredOutside reports whether v's declaration lies outside the node span.
func declaredOutside(v *types.Var, node ast.Node) bool {
	return v.Pos() < node.Pos() || v.Pos() > node.End()
}

func exprMentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
