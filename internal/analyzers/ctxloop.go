package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCtxLoop enforces the cancellation discipline of the decomposition
// call graph. Two rules:
//
//  1. Inside a function that takes a context.Context, any for/range loop whose
//     body dispatches heavy work — a blocking compute.Pool dispatch (Do,
//     ParallelFor, ParallelRanges, RunPartitioned) or a call to another
//     context-taking function — must observe the context at least once per
//     iteration (ctx.Err(), ctx.Done(), or passing ctx to a callee). An ALS
//     sweep that ignores its context between iterations turns Stop/timeout
//     into a no-op for seconds at a time.
//  2. An exported function or method whose name ends in "Ctx" and takes a
//     context must actually use it somewhere in its body. A ...Ctx entry point
//     that drops ctx on the floor advertises cancellation it does not deliver.
//
// Loops whose bodies do only cheap scalar work are exempt: per-iteration
// ctx checks there would cost more than they protect.
var AnalyzerCtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "heavy loops in context-taking functions must observe ctx per iteration; exported ...Ctx functions must use ctx",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	forEachFunc(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		sig := funcSignature(pass.Info, decl, lit)
		if sig == nil {
			return
		}
		ctxVar := ctxParamVar(pass.Info, decl, lit, sig)
		if ctxVar == nil {
			return
		}

		// Rule 2: exported ...Ctx functions must use ctx — and "use" means
		// observe: with summaries available, handing ctx exclusively to module
		// callees that provably ignore it is the same broken promise one call
		// deeper.
		if decl != nil && decl.Name.IsExported() && strings.HasSuffix(decl.Name.Name, "Ctx") {
			if !bodyMentionsVar(pass.Info, body, ctxVar) {
				pass.Reportf("ctxloop", decl.Name.Pos(),
					"exported %s takes a context.Context but never uses it: a ...Ctx entry point must deliver the cancellation it advertises (check ctx.Err() or pass ctx down)",
					decl.Name.Name)
				// A dropped ctx cannot appear in any loop either; rule 1
				// would only duplicate the finding.
				return
			}
			if !ctxObservedIn(pass.Info, pass.Summaries, body, ctxVar) {
				pass.Reportf("ctxloop", decl.Name.Pos(),
					"exported %s passes its context only to callees that never observe a context: the cancellation it advertises is not delivered anywhere downstream",
					decl.Name.Name)
				return
			}
		}

		// Rule 1: heavy loops must observe ctx per iteration.
		checkLoops(pass, body, ctxVar, nil)
	})
}

// checkLoops walks the statement tree (skipping FuncLits, which get their own
// forEachFunc visit) and flags heavy loops that never mention ctx.
// enclosing tracks loop nesting only to avoid double-reporting: when an outer
// loop is already flagged, its inner loops are not re-flagged.
func checkLoops(pass *Pass, n ast.Node, ctxVar *types.Var, _ []ast.Stmt) {
	inspectSkippingFuncLits(n, func(x ast.Node) bool {
		var body *ast.BlockStmt
		switch l := x.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if !loopIsHeavy(pass.Info, pass.Summaries, body) {
			return true
		}
		if ctxObservedIn(pass.Info, pass.Summaries, body, ctxVar) {
			return true
		}
		pass.Reportf("ctxloop", x.Pos(),
			"loop dispatches heavy work but never observes ctx: check ctx.Err() (or pass ctx to a callee that honors it) each iteration so cancellation takes effect between sweeps")
		return false // inner loops of a flagged loop share the fix
	})
	_ = ctxVar
}

// loopIsHeavy reports whether the loop body dispatches heavy work: a blocking
// compute.Pool dispatch, a call to a context-taking function (which by
// definition is cancellable, i.e. long enough to matter), or — with summaries
// available — any call whose callee transitively may block (channel waits,
// pool dispatch, WaitGroup.Wait hidden behind a helper). FuncLit bodies are
// included here — a closure defined in the loop body and handed to the pool
// IS the per-iteration work.
func loopIsHeavy(info *types.Info, summaries *SummaryTable, body *ast.BlockStmt) bool {
	heavy := false
	ast.Inspect(body, func(n ast.Node) bool {
		if heavy {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMethodOn(info, call, "compute", "Pool", "Do", "ParallelFor", "ParallelRanges", "RunPartitioned") {
			heavy = true
			return false
		}
		if f := calleeFunc(info, call); f != nil {
			if sig, ok := f.Type().(*types.Signature); ok && hasCtxParam(sig) {
				heavy = true
				return false
			}
		}
		if cs := summaries.summaryForCall(info, call); cs != nil && cs.MayBlock {
			heavy = true
			return false
		}
		return true
	})
	return heavy
}

// funcSignature resolves the signature of a FuncDecl or FuncLit.
func funcSignature(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) *types.Signature {
	if decl != nil {
		f, _ := info.Defs[decl.Name].(*types.Func)
		if f == nil {
			return nil
		}
		sig, _ := f.Type().(*types.Signature)
		return sig
	}
	if lit != nil {
		sig, _ := info.TypeOf(lit).(*types.Signature)
		return sig
	}
	return nil
}

// ctxParamVar returns the *types.Var of the (first) context.Context parameter
// as declared in the function's parameter list, or nil. Blank ("_") contexts
// return nil — the function explicitly discards cancellation.
func ctxParamVar(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit, sig *types.Signature) *types.Var {
	var ftype *ast.FuncType
	if decl != nil {
		ftype = decl.Type
	} else if lit != nil {
		ftype = lit.Type
	}
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	_ = sig
	return nil
}

// bodyMentionsVar reports whether body references v anywhere, including
// inside nested FuncLits — a closure that captures ctx and checks it (e.g.
// the per-range worker) counts as observing the context.
func bodyMentionsVar(info *types.Info, body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
