package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerArenaPair checks, intraprocedurally on the CFG, that every scratch
// matrix obtained from compute.Arena.Get / GetUninit reaches a matching
// Arena.Put on every path out of the function — early returns and panics
// included (a deferred Put covers all exits) — and that no buffer is Put
// twice. Leaked arena buffers silently fall back to garbage-collected
// allocation, eroding the allocation-free hot-loop contract the benchmarks
// budget; double Puts alias the same backing array to two future Gets.
//
// Ownership transfers end tracking without a finding: returning the buffer,
// storing it into a field, slice, map, or another variable, sending it on a
// channel, or capturing it in a closure all hand responsibility elsewhere.
// Passing the buffer as an ordinary call argument is treated as use, not
// transfer — unless the interprocedural summary of the callee says otherwise:
// a callee that Puts its parameter releases the buffer (and reaching it with
// an already-released buffer is a double Put), and a callee that stores its
// parameter escapes it. Functions containing goto are skipped.
var AnalyzerArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "every compute.Arena Get must reach exactly one Put on all paths out of the function",
	Run:  runArenaPair,
}

// absState is the per-variable ownership lattice.
type absState uint8

const (
	absUnknown  absState = iota // untracked / not yet obtained
	absOwned                    // holds a live arena buffer
	absReleased                 // definitely returned to the arena
	absMaybe                    // owned on some paths only (merge of Owned and not)
	absEscaped                  // ownership transferred elsewhere; stop tracking
)

func mergeAbs(a, b absState) absState {
	if a == b {
		return a
	}
	if a == absEscaped || b == absEscaped {
		return absEscaped
	}
	if a == absOwned || b == absOwned || a == absMaybe || b == absMaybe {
		return absMaybe
	}
	// Released vs Unknown: no live buffer either way.
	return absReleased
}

func runArenaPair(pass *Pass) {
	forEachFunc(pass.Files, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		analyzeArenaFunc(pass, body)
	})
}

// arenaVar is one tracked Get result.
type arenaVar struct {
	v      *types.Var
	getPos ast.Node
}

func analyzeArenaFunc(pass *Pass, body *ast.BlockStmt) {
	// Fast pre-scan: nothing to do without a Get in this function body
	// (FuncLit bodies are separate units).
	hasGet := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isArenaCall(pass.Info, call, "Get", "GetUninit") {
			hasGet = true
		}
		return !hasGet
	})
	if !hasGet {
		return
	}

	g := buildCFG(body)
	if g.hasGoto {
		return
	}

	// Collect tracked variables: plain identifiers assigned directly from a
	// Get call in this body.
	tracked := map[*types.Var]*arenaVar{}
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Rhs) != 1 || len(a.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok || !isArenaCall(pass.Info, call, "Get", "GetUninit") {
			return true
		}
		id, ok := ast.Unparen(a.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		v := varObj(pass.Info, id)
		if v != nil {
			tracked[v] = &arenaVar{v: v, getPos: call}
		}
		return true
	})
	if len(tracked) == 0 {
		// Gets whose results are used directly (returned, passed, stored)
		// transfer ownership immediately; nothing to track.
		return
	}

	// Deferred Puts cover every exit; resolve them up front.
	deferPut := map[*types.Var]bool{}
	for _, d := range g.defers {
		collectPutArgs(pass.Info, d.Call, tracked, func(v *types.Var) { deferPut[v] = true })
		// defer release(arena, x) — a helper whose summary Puts its parameter
		// counts the same as a direct deferred Put.
		forSummaryPutArgs(pass, d.Call, tracked, func(v *types.Var) { deferPut[v] = true })
		// defer func() { arena.Put(x) }() — closure-wrapped deferred Put.
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					collectPutArgs(pass.Info, call, tracked, func(v *types.Var) { deferPut[v] = true })
					forSummaryPutArgs(pass, call, tracked, func(v *types.Var) { deferPut[v] = true })
				}
				return true
			})
		}
	}

	// Forward dataflow to fixpoint.
	type stateMap map[*types.Var]absState
	in := make([]stateMap, len(g.nodes))
	clone := func(m stateMap) stateMap {
		c := make(stateMap, len(m))
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	var doublePuts []Diagnostic
	leakExit := map[*types.Var]ast.Node{} // first exit node that leaks the var
	reassigned := map[*types.Var]bool{}

	transfer := func(n *cfgNode, st stateMap, record bool) stateMap {
		// Deferred Puts execute at function exit, not at the defer statement;
		// they are modeled by the deferPut set (a Get covered by a deferred
		// Put starts out Released), so the defer node itself has no effect —
		// processing its Put here would misread that Released state as a
		// double Put.
		if _, isDefer := n.stmt.(*ast.DeferStmt); isDefer {
			return st
		}
		for _, part := range n.nodeParts() {
			inspectSkippingFuncLits(part, func(x ast.Node) bool {
				switch e := x.(type) {
				case *ast.CallExpr:
					if isArenaCall(pass.Info, e, "Put") {
						collectPutArgs(pass.Info, e, tracked, func(v *types.Var) {
							if st[v] == absReleased && record && !reassigned[v] {
								doublePuts = append(doublePuts, Diagnostic{
									Pos:      e.Pos(),
									Analyzer: "arenapair",
									Message:  fmt.Sprintf("arena buffer %s is already returned to the arena on every path reaching this Put (double Put aliases its backing array)", v.Name()),
								})
							}
							if st[v] != absEscaped {
								st[v] = absReleased
							}
						})
					} else {
						// Interprocedural ownership transfer: a callee whose
						// summary Puts the parameter releases the buffer here;
						// one that stores it escapes it.
						forSummaryPutArgs(pass, e, tracked, func(v *types.Var) {
							if st[v] == absReleased && record && !reassigned[v] {
								doublePuts = append(doublePuts, Diagnostic{
									Pos:      e.Pos(),
									Analyzer: "arenapair",
									Message:  fmt.Sprintf("arena buffer %s is already returned to the arena on every path reaching this call, and the callee Puts it again (double Put aliases its backing array)", v.Name()),
								})
							}
							if st[v] != absEscaped {
								st[v] = absReleased
							}
						})
						forSummaryEscapeArgs(pass, e, tracked, func(v *types.Var) {
							if st[v] == absOwned || st[v] == absMaybe {
								st[v] = absEscaped
							}
						})
					}
				case *ast.FuncLit:
					// Capture by a closure transfers ownership out of this
					// analysis' scope.
					for v := range tracked {
						if funcLitUses(pass.Info, e, v) && st[v] == absOwned || funcLitUses(pass.Info, e, v) && st[v] == absMaybe {
							st[v] = absEscaped
						}
					}
					return false
				}
				return true
			})
		}
		// Escapes and Get-assignments at statement granularity.
		switch s := n.stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isArenaCall(pass.Info, call, "Get", "GetUninit") {
					if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
						if v := varObj(pass.Info, id); v != nil && tracked[v] != nil {
							if st[v] == absOwned && record {
								reassigned[v] = true
								doublePuts = append(doublePuts, Diagnostic{
									Pos:      call.Pos(),
									Analyzer: "arenapair",
									Message:  fmt.Sprintf("arena buffer %s reassigned from a new Get while the previous buffer was never Put (the old buffer leaks)", v.Name()),
								})
							}
							if deferPut[v] {
								st[v] = absReleased
							} else {
								st[v] = absOwned
							}
							return st
						}
					}
				}
			}
			// x stored somewhere, aliased, or overwritten: escapes / ends.
			for i, rhs := range s.Rhs {
				if v := identVar(pass.Info, rhs); v != nil && tracked[v] != nil {
					// Aliasing (y := x) or storing (s.f = x, m[k] = x).
					_ = i
					if st[v] == absOwned || st[v] == absMaybe {
						st[v] = absEscaped
					}
				}
			}
			for _, lhs := range s.Lhs {
				if v := identVar(pass.Info, lhs); v != nil && tracked[v] != nil {
					// Overwritten by a non-Get value: stop tracking.
					if st[v] == absOwned || st[v] == absMaybe {
						st[v] = absEscaped
					}
				}
			}
		case *ast.ReturnStmt:
			// Only returning the buffer ITSELF transfers ownership; a buffer
			// passed as an argument inside the return expression (return
			// sum(buf)) is ordinary use.
			for _, r := range s.Results {
				escapeIfDirect(pass.Info, r, tracked, st)
			}
		case *ast.SendStmt:
			escapeIfDirect(pass.Info, s.Value, tracked, st)
		case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
			// Ordinary calls are use, not transfer — except append/composite
			// literals inside them, handled below.
		}
		for _, part := range n.nodeParts() {
			inspectSkippingFuncLits(part, func(x ast.Node) bool {
				switch e := x.(type) {
				case *ast.CompositeLit:
					for _, el := range e.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							el = kv.Value
						}
						escapeIfDirect(pass.Info, el, tracked, st)
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
						for _, a := range e.Args[1:] {
							escapeIfDirect(pass.Info, a, tracked, st)
						}
					}
				}
				return true
			})
		}
		return st
	}

	merge := func(dst, src stateMap) (stateMap, bool) {
		if dst == nil {
			return clone(src), true
		}
		changed := false
		for v := range tracked {
			m := mergeAbs(dst[v], src[v])
			if m != dst[v] {
				dst[v] = m
				changed = true
			}
		}
		return dst, changed
	}

	// Worklist iteration.
	work := []*cfgNode{g.entry}
	in[g.entry.index] = stateMap{}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(n, clone(in[n.index]), false)
		for _, s := range n.succs {
			m, changed := merge(in[s.index], out)
			in[s.index] = m
			if changed {
				work = append(work, s)
			}
		}
	}

	// Reporting pass: re-run transfers with recording on, now that incoming
	// states are stable, and check exits.
	for _, n := range g.nodes {
		if in[n.index] == nil {
			continue // unreachable
		}
		out := transfer(n, clone(in[n.index]), true)
		if n.exit {
			for v, av := range tracked {
				if deferPut[v] {
					continue
				}
				if out[v] == absOwned || out[v] == absMaybe {
					if _, seen := leakExit[v]; !seen {
						leakExit[v] = exitNodeFor(n, av)
					}
				}
			}
		}
	}

	for v, av := range tracked {
		if site, ok := leakExit[v]; ok {
			pass.Reportf("arenapair", av.getPos.Pos(),
				"arena buffer %s is not returned to the arena on every path out of the function (leaks at line %d); Put it on all paths or defer the Put",
				v.Name(), pass.Fset.Position(site.Pos()).Line)
		}
	}
	for _, d := range doublePuts {
		pass.Report(d)
	}
}

func exitNodeFor(n *cfgNode, av *arenaVar) ast.Node {
	if n.stmt != nil {
		return n.stmt
	}
	return av.getPos
}

// isArenaCall reports a method call on compute.Arena with one of names.
func isArenaCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	return isMethodOn(info, call, "compute", "Arena", names...)
}

// forSummaryPutArgs invokes fn for each tracked variable passed at a
// parameter position the call's resolved callee summary lists in PutsParams.
func forSummaryPutArgs(pass *Pass, call *ast.CallExpr, tracked map[*types.Var]*arenaVar, fn func(*types.Var)) {
	forSummaryArgs(pass, call, tracked, func(cs *FuncSummary) []int { return cs.PutsParams }, fn)
}

// forSummaryEscapeArgs is forSummaryPutArgs for EscapesParams.
func forSummaryEscapeArgs(pass *Pass, call *ast.CallExpr, tracked map[*types.Var]*arenaVar, fn func(*types.Var)) {
	forSummaryArgs(pass, call, tracked, func(cs *FuncSummary) []int { return cs.EscapesParams }, fn)
}

func forSummaryArgs(pass *Pass, call *ast.CallExpr, tracked map[*types.Var]*arenaVar, pick func(*FuncSummary) []int, fn func(*types.Var)) {
	cs := pass.Summaries.summaryForCall(pass.Info, call)
	if cs == nil {
		return
	}
	idxs := pick(cs)
	if len(idxs) == 0 {
		return
	}
	sig, _ := calleeFunc(pass.Info, call).Type().(*types.Signature)
	for ai, a := range call.Args {
		v := identVar(pass.Info, a)
		if v == nil || tracked[v] == nil {
			continue
		}
		if pi := calleeParamIndex(sig, ai); pi >= 0 && intsContain(idxs, pi) {
			fn(v)
		}
	}
}

// collectPutArgs invokes fn for each tracked variable passed to an Arena.Put.
func collectPutArgs(info *types.Info, call *ast.CallExpr, tracked map[*types.Var]*arenaVar, fn func(*types.Var)) {
	if !isArenaCall(info, call, "Put") {
		return
	}
	for _, a := range call.Args {
		if v := identVar(info, a); v != nil && tracked[v] != nil {
			fn(v)
		}
	}
}

// identVar resolves a plain identifier expression to its variable object.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return varObj(info, id)
}

func varObj(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func funcLitUses(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	used := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			used = true
		}
		return !used
	})
	return used
}

// escapeIfDirect escapes a tracked var that IS e (not merely mentioned in it).
func escapeIfDirect(info *types.Info, e ast.Expr, tracked map[*types.Var]*arenaVar, st map[*types.Var]absState) {
	if v := identVar(info, e); v != nil && tracked[v] != nil {
		if st[v] == absOwned || st[v] == absMaybe {
			st[v] = absEscaped
		}
	}
}
