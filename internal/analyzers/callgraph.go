package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
)

// The module-wide call graph underlying the interprocedural summary layer.
// Nodes are declared functions and methods of the analyzed packages; edges
// are static calls (identifier or selector calls that go/types resolves to a
// *types.Func). Calls through function values, interface methods with no
// visible concrete callee, and external packages have no out-edge here — the
// summary layer treats them with explicit conservative defaults instead.
//
// Because Go forbids import cycles, every call cycle (mutual recursion) is
// confined to a single package: cross-package calls follow the import DAG
// strictly downward. ComputeSummaries exploits this — packages are processed
// bottom-up in import order and only intra-package strongly connected
// components need a fixpoint.

// funcID is the canonical, package-qualified identity of a function across
// packages: types.Func.FullName(), e.g. "repro/internal/compute.NewPool" or
// "(*repro/internal/compute.Pool).Do". Identical for the source-checked
// object and the export-data object an importing package sees, which is what
// makes cross-package summary lookup work.
func funcID(f *types.Func) string { return f.FullName() }

// cgNode is one declared function in the graph.
type cgNode struct {
	id   string
	fn   *types.Func
	decl *ast.FuncDecl
	// callees lists the funcIDs of statically resolved calls anywhere in the
	// body, nested function literals included (a closure's calls happen on
	// behalf of its creator unless spawned via go, which the summary layer
	// separates when it aggregates effects).
	callees []string
}

// callGraph is the per-package slice of the module graph.
type callGraph struct {
	nodes map[string]*cgNode
	order []string // deterministic iteration order (position-sorted)
}

// buildCallGraph collects the declared functions of one loaded package and
// their static call edges.
func buildCallGraph(lp *LoadedPackage) *callGraph {
	g := &callGraph{nodes: map[string]*cgNode{}}
	for _, f := range lp.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := lp.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &cgNode{id: funcID(obj), fn: obj, decl: fd}
			seen := map[string]bool{}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(lp.Info, call); callee != nil {
					id := funcID(callee)
					if !seen[id] {
						seen[id] = true
						n.callees = append(n.callees, id)
					}
				}
				return true
			})
			sort.Strings(n.callees)
			g.nodes[n.id] = n
			g.order = append(g.order, n.id)
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		return g.nodes[g.order[i]].decl.Pos() < g.nodes[g.order[j]].decl.Pos()
	})
	return g
}

// sccs returns the graph's strongly connected components in reverse
// topological order (callees before callers), so a single pass over the
// result with a fixpoint inside each component reaches the global fixpoint.
// Tarjan's algorithm emits components in exactly that order.
func (g *callGraph) sccs() [][]*cgNode {
	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]*cgNode
	next := 0

	var strongconnect func(id string)
	strongconnect = func(id string) {
		index[id] = next
		lowlink[id] = next
		next++
		stack = append(stack, id)
		onStack[id] = true

		for _, c := range g.nodes[id].callees {
			if _, external := g.nodes[c]; !external {
				continue // cross-package or unresolved: not part of this SCC pass
			}
			if _, visited := index[c]; !visited {
				strongconnect(c)
				if lowlink[c] < lowlink[id] {
					lowlink[id] = lowlink[c]
				}
			} else if onStack[c] && index[c] < lowlink[id] {
				lowlink[id] = index[c]
			}
		}

		if lowlink[id] == index[id] {
			var comp []*cgNode
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, g.nodes[top])
				if top == id {
					break
				}
			}
			out = append(out, comp)
		}
	}

	for _, id := range g.order {
		if _, visited := index[id]; !visited {
			strongconnect(id)
		}
	}
	return out
}
