package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func randomIrregular(g *rng.RNG, k, j, maxI int) *Irregular {
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		slices[kk] = mat.Gaussian(g, 1+g.Intn(maxI), j)
	}
	return MustIrregular(slices)
}

func randomDense3(g *rng.RNG, i, j, k int) *Dense3 {
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		slices[kk] = mat.Gaussian(g, i, j)
	}
	return MustDense3(slices)
}

func TestNewIrregularValidation(t *testing.T) {
	if _, err := NewIrregular(nil); err == nil {
		t.Fatal("expected error for empty slice list")
	}
	bad := []*mat.Dense{mat.New(3, 4), mat.New(2, 5)}
	if _, err := NewIrregular(bad); err == nil {
		t.Fatal("expected error for mismatched columns")
	}
	zero := []*mat.Dense{mat.New(0, 4)}
	if _, err := NewIrregular(zero); err == nil {
		t.Fatal("expected error for zero-row slice")
	}
	ok := []*mat.Dense{mat.New(3, 4), mat.New(7, 4)}
	ten, err := NewIrregular(ok)
	if err != nil {
		t.Fatal(err)
	}
	if ten.K() != 2 || ten.J != 4 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
}

func TestIrregularStats(t *testing.T) {
	g := rng.New(1)
	slices := []*mat.Dense{mat.Gaussian(g, 3, 4), mat.Gaussian(g, 8, 4), mat.Gaussian(g, 5, 4)}
	ten := MustIrregular(slices)
	rows := ten.Rows()
	if rows[0] != 3 || rows[1] != 8 || rows[2] != 5 {
		t.Fatalf("Rows=%v", rows)
	}
	if ten.MaxRows() != 8 {
		t.Fatalf("MaxRows=%d", ten.MaxRows())
	}
	if ten.NumElements() != (3+8+5)*4 {
		t.Fatalf("NumElements=%d", ten.NumElements())
	}
	if ten.SizeBytes() != int64(ten.NumElements())*8 {
		t.Fatal("SizeBytes inconsistent")
	}
	var want float64
	for _, s := range slices {
		want += s.FrobNorm2()
	}
	if math.Abs(ten.Norm2()-want) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
	if math.Abs(ten.Norm()-math.Sqrt(want)) > 1e-12 {
		t.Fatal("Norm wrong")
	}
}

func TestDense3Validation(t *testing.T) {
	if _, err := NewDense3(nil); err == nil {
		t.Fatal("expected error for empty")
	}
	bad := []*mat.Dense{mat.New(2, 3), mat.New(3, 3)}
	if _, err := NewDense3(bad); err == nil {
		t.Fatal("expected error for ragged slices")
	}
}

func TestDense3AtSet(t *testing.T) {
	y := MustDense3([]*mat.Dense{mat.New(2, 3), mat.New(2, 3)})
	y.Set(1, 2, 1, 9)
	if y.At(1, 2, 1) != 9 || y.At(1, 2, 0) != 0 {
		t.Fatal("At/Set wrong")
	}
}

func TestMatricizeShapes(t *testing.T) {
	g := rng.New(2)
	y := randomDense3(g, 3, 4, 5)
	m1 := y.Matricize(1)
	m2 := y.Matricize(2)
	m3 := y.Matricize(3)
	if m1.Rows != 3 || m1.Cols != 20 {
		t.Fatalf("mode-1 shape %dx%d", m1.Rows, m1.Cols)
	}
	if m2.Rows != 4 || m2.Cols != 15 {
		t.Fatalf("mode-2 shape %dx%d", m2.Rows, m2.Cols)
	}
	if m3.Rows != 5 || m3.Cols != 12 {
		t.Fatalf("mode-3 shape %dx%d", m3.Rows, m3.Cols)
	}
	// Element checks: x(i,j,k) appears at the documented positions.
	if m1.At(1, 2*4+3) != y.At(1, 3, 2) {
		t.Fatal("mode-1 ordering wrong")
	}
	if m2.At(3, 4*3+2) != y.At(2, 3, 4) {
		t.Fatal("mode-2 ordering wrong")
	}
	// mode 3: row k is column-major vec: index j*I+i
	if m3.At(4, 3*3+2) != y.At(2, 3, 4) {
		t.Fatal("mode-3 ordering wrong")
	}
}

func TestMatricizeNormPreserved(t *testing.T) {
	g := rng.New(3)
	y := randomDense3(g, 4, 5, 6)
	for mode := 1; mode <= 3; mode++ {
		if math.Abs(y.Matricize(mode).FrobNorm2()-y.Norm2()) > 1e-10 {
			t.Fatalf("mode-%d unfolding changed the norm", mode)
		}
	}
}

func TestMatricizePanicsOnBadMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := rng.New(4)
	randomDense3(g, 2, 2, 2).Matricize(4)
}

func TestFoldMode1RoundTrip(t *testing.T) {
	g := rng.New(5)
	y := randomDense3(g, 3, 4, 5)
	back := FoldMode1(y.Matricize(1), 4, 5)
	for k := 0; k < 5; k++ {
		if !back.Slices[k].EqualApprox(y.Slices[k], 0) {
			t.Fatal("fold(unfold) != identity")
		}
	}
}

func TestCPReconstructMatchesUnfoldingIdentity(t *testing.T) {
	// X(1) = A (C ⊙ B)ᵀ for X = [[A,B,C]].
	g := rng.New(6)
	a := mat.Gaussian(g, 3, 2)
	b := mat.Gaussian(g, 4, 2)
	c := mat.Gaussian(g, 5, 2)
	x := CPReconstruct(a, b, c)
	lhs := x.Matricize(1)
	rhs := a.MulT(mat.KhatriRao(c, b))
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("X(1) != A(C⊙B)ᵀ")
	}
	lhs2 := x.Matricize(2)
	rhs2 := b.MulT(mat.KhatriRao(c, a))
	if !lhs2.EqualApprox(rhs2, 1e-11) {
		t.Fatal("X(2) != B(C⊙A)ᵀ")
	}
	lhs3 := x.Matricize(3)
	rhs3 := c.MulT(mat.KhatriRao(b, a))
	if !lhs3.EqualApprox(rhs3, 1e-11) {
		t.Fatal("X(3) != C(B⊙A)ᵀ")
	}
}

func TestMTTKRPMatchesExplicit(t *testing.T) {
	g := rng.New(7)
	y := randomDense3(g, 4, 5, 6)
	r := 3
	a := mat.Gaussian(g, 4, r)
	b := mat.Gaussian(g, 5, r)
	c := mat.Gaussian(g, 6, r)

	got1 := y.MTTKRP(1, c, b)
	want1 := y.Matricize(1).Mul(mat.KhatriRao(c, b))
	if !got1.EqualApprox(want1, 1e-10) {
		t.Fatal("MTTKRP mode 1 mismatch")
	}
	got2 := y.MTTKRP(2, c, a)
	want2 := y.Matricize(2).Mul(mat.KhatriRao(c, a))
	if !got2.EqualApprox(want2, 1e-10) {
		t.Fatal("MTTKRP mode 2 mismatch")
	}
	got3 := y.MTTKRP(3, b, a)
	want3 := y.Matricize(3).Mul(mat.KhatriRao(b, a))
	if !got3.EqualApprox(want3, 1e-10) {
		t.Fatal("MTTKRP mode 3 mismatch")
	}
}

func TestMTTKRPPanicsOnBadMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := rng.New(8)
	y := randomDense3(g, 2, 2, 2)
	y.MTTKRP(0, mat.New(2, 2), mat.New(2, 2))
}

func TestQuickMTTKRPAgainstExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		i, j, k, r := 2+g.Intn(5), 2+g.Intn(5), 2+g.Intn(5), 1+g.Intn(4)
		y := randomDense3(g, i, j, k)
		a := mat.Gaussian(g, i, r)
		b := mat.Gaussian(g, j, r)
		c := mat.Gaussian(g, k, r)
		ok1 := y.MTTKRP(1, c, b).EqualApprox(y.Matricize(1).Mul(mat.KhatriRao(c, b)), 1e-9)
		ok2 := y.MTTKRP(2, c, a).EqualApprox(y.Matricize(2).Mul(mat.KhatriRao(c, a)), 1e-9)
		ok3 := y.MTTKRP(3, b, a).EqualApprox(y.Matricize(3).Mul(mat.KhatriRao(b, a)), 1e-9)
		return ok1 && ok2 && ok3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIrregularNormMatchesSliceSum(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		ten := randomIrregular(g, 1+g.Intn(6), 1+g.Intn(6), 10)
		var want float64
		for _, s := range ten.Slices {
			want += s.FrobNorm2()
		}
		return math.Abs(ten.Norm2()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldMode2RoundTrip(t *testing.T) {
	g := rng.New(20)
	y := randomDense3(g, 3, 4, 5)
	back := FoldMode2(y.Matricize(2), 3, 5)
	for k := 0; k < 5; k++ {
		if !back.Slices[k].EqualApprox(y.Slices[k], 0) {
			t.Fatal("fold2(unfold2) != identity")
		}
	}
}

func TestFoldMode3RoundTrip(t *testing.T) {
	g := rng.New(21)
	y := randomDense3(g, 3, 4, 5)
	back := FoldMode3(y.Matricize(3), 3, 4)
	for k := 0; k < 5; k++ {
		if !back.Slices[k].EqualApprox(y.Slices[k], 0) {
			t.Fatal("fold3(unfold3) != identity")
		}
	}
}

func TestFoldPanicsOnShapeMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"mode1": func() { FoldMode1(mat.New(2, 7), 3, 2) },
		"mode2": func() { FoldMode2(mat.New(2, 7), 3, 2) },
		"mode3": func() { FoldMode3(mat.New(2, 7), 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
