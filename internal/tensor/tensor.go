// Package tensor provides the tensor types DPar2 operates on: the ragged
// Irregular tensor {X_k} (slices with equal column counts but varying row
// counts) and the regular 3-order Dense3 tensor with its mode-n
// matricizations, which the PARAFAC2-ALS baseline runs CP-ALS on.
//
// Conventions follow Kolda & Bader, "Tensor Decompositions and Applications"
// (SIAM Review 2009), the reference the paper cites:
//
//   - a K-slice tensor Y with frontal slices Y_k ∈ R^{I×J} has
//     Y(1) = [Y_1 ‖ Y_2 ‖ … ‖ Y_K]            (I × JK)    — but note the
//     ordering used in the DPar2 paper groups slice blocks contiguously,
//     which is what we implement (column (k-1)J+j holds Y_k(:, j));
//   - Y(2) = [Y_1ᵀ ‖ … ‖ Y_Kᵀ]                 (J × IK);
//   - Y(3) has row k equal to vec(Y_k)ᵀ         (K × IJ).
//
// These orderings are exactly the ones Lemmas 1-3 of the paper manipulate.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Irregular is a 3-order irregular tensor {X_k}_{k=1..K}: a collection of
// dense slices that share a column count J but have individual row counts
// I_k. This is the input object of PARAFAC2 decomposition.
type Irregular struct {
	Slices []*mat.Dense
	J      int
}

// NewIrregular validates that every slice has J columns and wraps them.
func NewIrregular(slices []*mat.Dense) (*Irregular, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("tensor: no slices")
	}
	j := slices[0].Cols
	for k, s := range slices {
		if s.Cols != j {
			return nil, fmt.Errorf("tensor: slice %d has %d columns, want %d", k, s.Cols, j)
		}
		if s.Rows == 0 {
			return nil, fmt.Errorf("tensor: slice %d has zero rows", k)
		}
	}
	return &Irregular{Slices: slices, J: j}, nil
}

// MustIrregular is NewIrregular that panics on error; for tests and
// generators whose inputs are valid by construction.
func MustIrregular(slices []*mat.Dense) *Irregular {
	t, err := NewIrregular(slices)
	if err != nil {
		panic(err)
	}
	return t
}

// K returns the number of slices.
func (t *Irregular) K() int { return len(t.Slices) }

// Rows returns the per-slice row counts I_k.
func (t *Irregular) Rows() []int {
	r := make([]int, len(t.Slices))
	for k, s := range t.Slices {
		r[k] = s.Rows
	}
	return r
}

// NumElements returns Σ_k I_k · J, the dense element count.
func (t *Irregular) NumElements() int {
	n := 0
	for _, s := range t.Slices {
		n += s.Rows * s.Cols
	}
	return n
}

// MaxRows returns max_k I_k.
func (t *Irregular) MaxRows() int {
	m := 0
	for _, s := range t.Slices {
		if s.Rows > m {
			m = s.Rows
		}
	}
	return m
}

// Norm2 returns Σ_k ‖X_k‖_F², the squared Frobenius norm of the tensor.
func (t *Irregular) Norm2() float64 {
	var sum float64
	for _, s := range t.Slices {
		sum += s.FrobNorm2()
	}
	return sum
}

// Norm returns the Frobenius norm of the tensor.
func (t *Irregular) Norm() float64 { return math.Sqrt(t.Norm2()) }

// SizeBytes returns the in-memory footprint of the raw values.
func (t *Irregular) SizeBytes() int64 { return int64(t.NumElements()) * 8 }

// Dense3 is a regular 3-order tensor of shape I × J × K stored as K frontal
// slices of size I × J. PARAFAC2-ALS builds one of these (with I = R) from
// the projected slices Y_k = Q_kᵀ X_k.
type Dense3 struct {
	I, J, K int
	Slices  []*mat.Dense // Slices[k] is the k-th frontal slice, I×J
}

// NewDense3 assembles a regular tensor from equal-shaped frontal slices.
func NewDense3(slices []*mat.Dense) (*Dense3, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("tensor: no slices")
	}
	i, j := slices[0].Rows, slices[0].Cols
	for k, s := range slices {
		if s.Rows != i || s.Cols != j {
			return nil, fmt.Errorf("tensor: slice %d is %dx%d, want %dx%d", k, s.Rows, s.Cols, i, j)
		}
	}
	return &Dense3{I: i, J: j, K: len(slices), Slices: slices}, nil
}

// MustDense3 panics on error.
func MustDense3(slices []*mat.Dense) *Dense3 {
	t, err := NewDense3(slices)
	if err != nil {
		panic(err)
	}
	return t
}

// At returns element (i, j, k).
func (t *Dense3) At(i, j, k int) float64 { return t.Slices[k].At(i, j) }

// Set assigns element (i, j, k).
func (t *Dense3) Set(i, j, k int, v float64) { t.Slices[k].Set(i, j, v) }

// Norm2 returns the squared Frobenius norm.
func (t *Dense3) Norm2() float64 {
	var sum float64
	for _, s := range t.Slices {
		sum += s.FrobNorm2()
	}
	return sum
}

// Norm returns the Frobenius norm.
func (t *Dense3) Norm() float64 { return math.Sqrt(t.Norm2()) }

// Matricize returns the mode-n unfolding (n ∈ {1, 2, 3}) with the slice-block
// column ordering described in the package comment.
func (t *Dense3) Matricize(mode int) *mat.Dense {
	switch mode {
	case 1:
		// I × JK: horizontal concatenation of the frontal slices.
		return mat.HConcat(t.Slices...)
	case 2:
		// J × IK: horizontal concatenation of the transposed slices.
		ts := make([]*mat.Dense, t.K)
		for k, s := range t.Slices {
			ts[k] = s.T()
		}
		return mat.HConcat(ts...)
	case 3:
		// K × IJ: row k is vec(Y_k)ᵀ (column-major vectorization).
		out := mat.New(t.K, t.I*t.J)
		for k, s := range t.Slices {
			copy(out.Row(k), s.Vec())
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: invalid mode %d", mode))
	}
}

// FoldMode1 rebuilds a Dense3 from its mode-1 unfolding.
func FoldMode1(m *mat.Dense, j, k int) *Dense3 {
	if m.Cols != j*k {
		panic("tensor: FoldMode1 shape mismatch")
	}
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		slices[kk] = m.SubMatrix(0, kk*j, m.Rows, j)
	}
	return MustDense3(slices)
}

// FoldMode2 rebuilds a Dense3 from its mode-2 unfolding (J × IK).
func FoldMode2(m *mat.Dense, i, k int) *Dense3 {
	if m.Cols != i*k {
		panic("tensor: FoldMode2 shape mismatch")
	}
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		slices[kk] = m.SubMatrix(0, kk*i, m.Rows, i).T()
	}
	return MustDense3(slices)
}

// FoldMode3 rebuilds a Dense3 from its mode-3 unfolding (K × IJ, rows are
// column-major vectorizations).
func FoldMode3(m *mat.Dense, i, j int) *Dense3 {
	if m.Cols != i*j {
		panic("tensor: FoldMode3 shape mismatch")
	}
	slices := make([]*mat.Dense, m.Rows)
	for kk := 0; kk < m.Rows; kk++ {
		s := mat.New(i, j)
		row := m.Row(kk)
		for jj := 0; jj < j; jj++ {
			for ii := 0; ii < i; ii++ {
				s.Set(ii, jj, row[jj*i+ii])
			}
		}
		slices[kk] = s
	}
	return MustDense3(slices)
}

// CPReconstruct evaluates the CP model [[A, B, C]]: the tensor with frontal
// slices A · diag(C(k, :)) · Bᵀ. A is I×R, B is J×R, C is K×R.
func CPReconstruct(a, b, c *mat.Dense) *Dense3 {
	if a.Cols != b.Cols || b.Cols != c.Cols {
		panic("tensor: CP factor rank mismatch")
	}
	slices := make([]*mat.Dense, c.Rows)
	for k := 0; k < c.Rows; k++ {
		slices[k] = a.ScaleColumns(c.Row(k)).MulT(b)
	}
	return MustDense3(slices)
}

// MTTKRP computes the matricized-tensor times Khatri-Rao product
// Y(n) · (C ⊙ B) without materializing Y(n) or the Khatri-Rao product,
// accumulating slice by slice. This is the workhorse of CP-ALS and the
// operation Lemmas 1-3 of the paper reorder.
//
// mode 1: returns I×R = Σ_k Y_k · B · diag(C(k,:))      with krA=C (K×R), krB=B (J×R)
// mode 2: returns J×R = Σ_k Y_kᵀ · A · diag(C(k,:))     with krA=C (K×R), krB=A (I×R)
// mode 3: returns K×R with row k = 1ᵀ(Y_k ∗ (A diag · Bᵀ))… computed as
//
//	row k = diag(Aᵀ Y_k B)                         with krA=B (J×R), krB=A (I×R)
func (t *Dense3) MTTKRP(mode int, krA, krB *mat.Dense) *mat.Dense {
	switch mode {
	case 1:
		c, b := krA, krB
		r := c.Cols
		out := mat.New(t.I, r)
		for k, yk := range t.Slices {
			yb := yk.Mul(b) // I×R
			crow := c.Row(k)
			for i := 0; i < t.I; i++ {
				orow := out.Row(i)
				yrow := yb.Row(i)
				for rr := 0; rr < r; rr++ {
					orow[rr] += yrow[rr] * crow[rr]
				}
			}
		}
		return out
	case 2:
		c, a := krA, krB
		r := c.Cols
		out := mat.New(t.J, r)
		for k, yk := range t.Slices {
			ya := yk.TMul(a) // J×R
			crow := c.Row(k)
			for j := 0; j < t.J; j++ {
				orow := out.Row(j)
				yrow := ya.Row(j)
				for rr := 0; rr < r; rr++ {
					orow[rr] += yrow[rr] * crow[rr]
				}
			}
		}
		return out
	case 3:
		b, a := krA, krB
		r := b.Cols
		out := mat.New(t.K, r)
		for k, yk := range t.Slices {
			// row k = diag(Aᵀ Y_k B): entry r is a_rᵀ Y_k b_r.
			ay := a.TMul(yk) // R×J
			orow := out.Row(k)
			for rr := 0; rr < r; rr++ {
				var sum float64
				ayRow := ay.Row(rr)
				for j := 0; j < t.J; j++ {
					sum += ayRow[j] * b.At(j, rr)
				}
				orow[rr] = sum
			}
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: invalid MTTKRP mode %d", mode))
	}
}
