package rsvd

import (
	"repro/internal/compute"
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
)

// Row-sharded randomized SVD (the stage-1 path for very tall slices).
//
// A Halko-style sketch composes hierarchically: split A ∈ R^{I×J} into row
// shards A_1..A_m, sketch each shard independently (A_i ≈ Q_i B_i with Q_i
// column orthonormal and B_i = Q_iᵀ A_i the (R+s)×J projection), and observe
//
//	A ≈ blkdiag(Q_1, …, Q_m) · B,   B = vstack(B_1, …, B_m),
//
// where blkdiag(Q_i) has orthonormal columns because every Q_i does. A second
// small randomized SVD of the stacked (m·(R+s))×J matrix B ≈ Ũ Σ Vᵀ then
// yields A ≈ (blkdiag(Q_i) Ũ) Σ Vᵀ — the same rank-R contract Decompose
// returns, with U column orthonormal, at peak scratch O(shardRows·(R+s)) per
// in-flight shard instead of O(I·(R+s)) for the whole matrix. For an exactly
// rank-R matrix every shard sketch captures its (≤R-dimensional) row space,
// so the hierarchical result is exact up to round-off, like the flat sketch.

// NumShards returns how many row shards an rows-by-cols matrix is split into
// under threshold shardRows: 1 when sharding is disabled (shardRows <= 0),
// the matrix is short enough, or the sketch would not compress the columns
// (sketch >= cols — the degenerate regime Decompose serves with a
// deterministic truncated SVD, which must stay the single path for it);
// otherwise ceil(rows/shardRows) clamped so every shard keeps at least
// sketch rows (a shard shorter than the sketch width would not compress
// anything either).
func NumShards(rows, cols, shardRows, sketch int) int {
	if shardRows <= 0 || rows <= shardRows || sketch >= cols {
		return 1
	}
	m := (rows + shardRows - 1) / shardRows
	if sketch > 0 {
		if mx := rows / sketch; m > mx {
			m = mx
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// ShardBounds returns m+1 row offsets splitting rows into m contiguous
// near-equal shards (sizes differ by at most one row).
func ShardBounds(rows, m int) []int {
	b := make([]int, m+1)
	base, rem := rows/m, rows%m
	off := 0
	for i := 0; i < m; i++ {
		b[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	b[m] = rows
	return b
}

// ShardGens derives the deterministic generators of a sharded decomposition
// from g: one Split child per shard (in shard order), then one more for the
// merge. Pre-splitting is what makes sharded results bit-reproducible no
// matter which worker ends up sketching which shard.
func ShardGens(g *rng.RNG, m int) (shards []*rng.RNG, merge *rng.RNG) {
	shards = make([]*rng.RNG, m)
	for i := range shards {
		shards[i] = g.Split()
	}
	return shards, g.Split()
}

// ShardSketch is the stage-1 sketch of one row shard: Q (shardRows×w, column
// orthonormal) spans the shard's sketched row space and B = Qᵀ·shard (w×J) is
// the projection, with w = min(r+Oversample, shard rows).
type ShardSketch struct {
	Q *mat.Dense
	B *mat.Dense
}

// SketchShard computes the randomized range sketch of one row shard:
// Y = (A_i A_iᵀ)^q A_i Ω, Q = orth(Y), B = Qᵀ A_i. The shard should have at
// least r+Oversample rows and columns (NumShards only plans shards where the
// sketch compresses both ways); smaller shards clamp the sketch width to
// min(rows, cols) so the QR steps stay well-posed. The large shard-sized
// scratch (Ω, Y, Z) cycles through the shared workspace arena, so
// steady-state shard traffic stays bucket-recyclable instead of allocating
// fresh I_k-sized buffers per call.
func SketchShard(g *rng.RNG, shard *mat.Dense, r int, opts Options) ShardSketch {
	opts = opts.normalize()
	if r <= 0 {
		panic("rsvd: non-positive rank")
	}
	w := r + opts.Oversample
	if w > shard.Rows {
		w = shard.Rows
	}
	if w > shard.Cols {
		w = shard.Cols
	}
	rn := opts.Runner
	ar := compute.Shared()

	omega := ar.GetUninit(shard.Cols, w)
	g.NormSlice(omega.Data)
	y := ar.GetUninit(shard.Rows, w)
	shard.MulInto(y, omega, rn)
	for q := 0; q < opts.PowerIters; q++ {
		yq := lapack.QRFactor(y).Q
		z := ar.GetUninit(shard.Cols, w)
		shard.TMulInto(z, yq, rn)
		zq := lapack.QRFactor(z).Q
		shard.MulInto(y, zq, rn)
		ar.Put(z)
	}
	q := lapack.QRFactor(y).Q
	b := q.TMulInto(mat.New(w, shard.Cols), shard, rn)
	ar.Put(omega, y)
	return ShardSketch{Q: q, B: b}
}

// MergeShards combines the sketches of vertically adjacent row shards into a
// rank-r SVD of the stacked matrix: a second small randomized SVD of
// B = vstack(B_i) gives B ≈ Ũ Σ Vᵀ, and U = blkdiag(Q_i) Ũ is materialized
// shard block by shard block (U rows [lo_i, hi_i) = Q_i · Ũ's i-th row
// block). U inherits column orthonormality from the Q_i and Ũ. The sketches
// must be in shard (row) order and share a column count.
func MergeShards(g *rng.RNG, sketches []ShardSketch, r int, opts Options) lapack.SVD {
	if len(sketches) == 0 {
		panic("rsvd: MergeShards of nothing")
	}
	opts = opts.normalize()
	bs := make([]*mat.Dense, len(sketches))
	rows := 0
	for i, s := range sketches {
		bs[i] = s.B
		rows += s.Q.Rows
	}
	stacked := mat.VConcat(bs...)
	inner := Decompose(g, stacked, r, opts)

	u := mat.New(rows, r)
	rowOff, wOff := 0, 0
	for _, s := range sketches {
		ub := inner.U.RowView(wOff, wOff+s.B.Rows) // Ũ block for this shard (no copy)
		s.Q.MulInto(u.RowView(rowOff, rowOff+s.Q.Rows), ub, opts.Runner)
		rowOff += s.Q.Rows
		wOff += s.B.Rows
	}
	return lapack.SVD{U: u, S: inner.S, V: inner.V}
}

// DecomposeSharded computes a rank-r randomized SVD of a with the same
// contract as Decompose, but splits a into row shards of at most shardRows
// rows, sketches each independently, and merges the shard bases with a
// second small randomized SVD. Peak scratch drops from O(I·(r+Oversample))
// to O(shardRows·(r+Oversample)) per in-flight shard. shardRows <= 0 or a
// matrix no taller than shardRows falls back to the flat Decompose.
//
// Results are deterministic for a fixed (g, shardRows) pair via per-shard
// Split children (ShardGens); different shard counts draw different sketches
// and so yield different — equally valid — factorizations.
func DecomposeSharded(g *rng.RNG, a *mat.Dense, r, shardRows int, opts Options) lapack.SVD {
	opts = opts.normalize()
	if r <= 0 {
		panic("rsvd: non-positive rank")
	}
	m := NumShards(a.Rows, a.Cols, shardRows, r+opts.Oversample)
	if m <= 1 {
		return Decompose(g, a, r, opts)
	}
	gens, mergeGen := ShardGens(g, m)
	bounds := ShardBounds(a.Rows, m)
	sketches := make([]ShardSketch, m)
	for i := range sketches {
		sketches[i] = SketchShard(gens[i], a.RowView(bounds[i], bounds[i+1]), r, opts)
	}
	return MergeShards(mergeGen, sketches, r, opts)
}
