// Package rsvd implements randomized singular value decomposition following
// Halko, Martinsson & Tropp (2011), which is Algorithm 1 of the DPar2 paper:
//
//  1. draw a Gaussian test matrix Ω ∈ R^{J×(R+s)}
//  2. form Y = (AAᵀ)^q A Ω
//  3. orthonormalize: Q R ← Y
//  4. project: B = Qᵀ A  (small: (R+s)×J)
//  5. truncated SVD of B at rank R: B ≈ Ũ Σ Vᵀ
//  6. return U = Q Ũ, Σ, V
//
// The cost is O(I·J·R), versus O(I·J·min(I,J)) for a full SVD. DPar2 uses
// this twice: once per slice (stage 1) and once on the J×KR concatenation of
// the slice factors (stage 2).
package rsvd

import (
	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
)

// Options controls the sketch.
type Options struct {
	// Oversample is the extra sketch width s beyond the target rank.
	// Halko et al. recommend 5-10; the default is 8.
	Oversample int
	// PowerIters is the exponent q of the (AAᵀ)^q prewhitening. q=1
	// sharpens the spectrum enough for the slowly-decaying spectra of
	// dense real-world slices; q=0 is faster but less accurate.
	PowerIters int
	// Runner, when non-nil, parallelizes the sketch multiplications
	// (e.g. a *compute.Pool). Leave nil when the caller already
	// parallelizes across independent decompositions, as DPar2's stage-1
	// slice loop does.
	Runner mat.Runner
	// Workspace, when non-nil, backs the small Jacobi SVD of the projected
	// sketch (and the degenerate exact-SVD path). Callers that decompose
	// many matrices hold one Workspace per worker so steady-state runs draw
	// nothing from the lapack pool. Must not be shared across concurrent
	// Decompose calls.
	Workspace *lapack.Workspace
}

// DefaultOptions mirrors the paper's setup (rank-R sketch with modest
// oversampling and one power iteration).
func DefaultOptions() Options {
	return Options{Oversample: 8, PowerIters: 1}
}

func (o Options) normalize() Options {
	if o.Oversample < 0 {
		o.Oversample = 0
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	}
	return o
}

// SketchWidth returns the sketch width r + Oversample after normalization —
// the per-shard scratch column count the sharded stage-1 path budgets for.
func (o Options) SketchWidth(r int) int {
	o = o.normalize()
	return r + o.Oversample
}

// Decompose computes a rank-r randomized SVD of a using the generator g for
// the sketch. The result satisfies A ≈ U diag(S) Vᵀ with U ∈ R^{I×r} column
// orthonormal, S descending, V ∈ R^{J×r} column orthonormal.
//
// When r (plus oversampling) is no smaller than min(I, J), the randomized
// path degenerates and a deterministic truncated SVD is returned instead.
// The result always has exactly r columns: when even min(I, J) < r the
// deficient SVD is zero-padded to rank r (see padRank), so callers may rely
// on r-column factors unconditionally.
func Decompose(g *rng.RNG, a *mat.Dense, r int, opts Options) lapack.SVD {
	opts = opts.normalize()
	if r <= 0 {
		panic("rsvd: non-positive rank")
	}
	minDim := a.Rows
	if a.Cols < minDim {
		minDim = a.Cols
	}
	sketch := r + opts.Oversample
	if sketch >= minDim {
		// Sketch would not compress anything; deterministic SVD is both
		// cheaper and exact here.
		return padRank(lapack.TruncatedWS(a, min(r, minDim), opts.Runner, opts.Workspace), r)
	}

	// Y = (AAᵀ)^q A Ω.
	rn := opts.Runner
	omega := mat.Gaussian(g, a.Cols, sketch)
	y := a.MulInto(mat.New(a.Rows, sketch), omega, rn) // I×sketch
	for q := 0; q < opts.PowerIters; q++ {
		// Re-orthonormalize between multiplications to stop the columns
		// of Y collapsing onto the dominant singular vector.
		y = lapack.QRFactor(y).Q
		z := a.TMulInto(mat.New(a.Cols, sketch), y, rn) // J×sketch = Aᵀ Y
		z = lapack.QRFactor(z).Q
		y = a.MulInto(mat.New(a.Rows, sketch), z, rn) // I×sketch
	}
	q := lapack.QRFactor(y).Q                       // I×sketch, orthonormal columns
	b := q.TMulInto(mat.New(sketch, a.Cols), a, rn) // sketch×J

	inner := lapack.TruncatedWS(b, r, nil, opts.Workspace)
	u := q.MulInto(mat.New(q.Rows, r), inner.U, rn)
	return lapack.SVD{U: u, S: inner.S, V: inner.V}
}

// padRank widens a rank-deficient SVD to exactly r columns by appending zero
// columns to U and V and zero singular values to S. The result carries the
// same rank-min(I, J) information in rank-r shape: reconstructions are
// unchanged (the zero tail contributes nothing) and the leading len(d.S)
// columns keep their orthonormality, but the padded columns themselves are
// zero, not orthonormal. Every caller that assumes exactly-r factors
// (Compressed's A_k and F blocks, shard merges) relies on this shape.
func padRank(d lapack.SVD, r int) lapack.SVD {
	k := len(d.S)
	if k >= r {
		return d
	}
	s := make([]float64, r)
	copy(s, d.S)
	return lapack.SVD{U: padCols(d.U, r), S: s, V: padCols(d.V, r)}
}

// padCols returns m widened to exactly c columns with a zero tail.
func padCols(m *mat.Dense, c int) *mat.Dense {
	out := mat.New(m.Rows, c)
	out.SetSubMatrix(0, 0, m)
	return out
}
