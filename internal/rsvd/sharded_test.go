package rsvd

import (
	"testing"

	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
)

func TestNumShards(t *testing.T) {
	cases := []struct {
		rows, cols, shardRows, sketch, want int
	}{
		{1000, 64, 0, 18, 1},    // sharding disabled
		{1000, 64, -1, 18, 1},   // sharding disabled
		{1000, 64, 1000, 18, 1}, // at threshold: no shard
		{1001, 64, 1000, 18, 2},
		{8000, 64, 1000, 18, 8},
		{1600, 64, 230, 18, 7},
		{100, 64, 10, 18, 5},    // clamped: each shard keeps >= sketch rows
		{30, 64, 10, 18, 1},     // clamp all the way down to one shard
		{8000, 18, 1000, 18, 1}, // sketch >= cols: degenerate, stay flat
		{8000, 12, 1000, 18, 1}, // narrower still: stay flat
	}
	for _, c := range cases {
		if got := NumShards(c.rows, c.cols, c.shardRows, c.sketch); got != c.want {
			t.Errorf("NumShards(%d, %d, %d, %d) = %d, want %d", c.rows, c.cols, c.shardRows, c.sketch, got, c.want)
		}
	}
}

func TestShardBoundsCoverContiguously(t *testing.T) {
	for _, c := range [][2]int{{100, 3}, {1600, 7}, {10, 10}, {65537, 2}} {
		rows, m := c[0], c[1]
		b := ShardBounds(rows, m)
		if len(b) != m+1 || b[0] != 0 || b[m] != rows {
			t.Fatalf("ShardBounds(%d, %d) = %v", rows, m, b)
		}
		for i := 0; i < m; i++ {
			size := b[i+1] - b[i]
			if size < rows/m || size > rows/m+1 {
				t.Fatalf("ShardBounds(%d, %d): shard %d has %d rows", rows, m, i, size)
			}
		}
	}
}

func TestDecomposeShardedMatchesContract(t *testing.T) {
	g := rng.New(31)
	a := lowRankPlusNoise(g, 1600, 60, 5, 0)
	for _, shardRows := range []int{-1, 800, 230} {
		d := DecomposeSharded(rng.New(7), a, 5, shardRows, DefaultOptions())
		if len(d.S) != 5 {
			t.Fatalf("shardRows %d: want 5 singular values, got %d", shardRows, len(d.S))
		}
		if d.U.Rows != 1600 || d.U.Cols != 5 || d.V.Rows != 60 || d.V.Cols != 5 {
			t.Fatalf("shardRows %d: bad shapes U %dx%d V %dx%d", shardRows, d.U.Rows, d.U.Cols, d.V.Rows, d.V.Cols)
		}
		if !d.U.IsOrthonormalCols(1e-8) || !d.V.IsOrthonormalCols(1e-8) {
			t.Fatalf("shardRows %d: factors not orthonormal", shardRows)
		}
		// Exactly rank-5 input: each shard sketch captures the full row
		// space, so the hierarchical result is exact up to round-off.
		if rel := d.Reconstruct().FrobDist(a) / a.FrobNorm(); rel > 1e-8 {
			t.Fatalf("shardRows %d: rel err %g", shardRows, rel)
		}
	}
}

func TestDecomposeShardedNoisyNearOptimal(t *testing.T) {
	g := rng.New(32)
	a := lowRankPlusNoise(g, 1200, 70, 6, 0.01)
	det := lapack.Truncated(a, 6)
	sh := DecomposeSharded(rng.New(9), a, 6, 300, DefaultOptions())
	errDet := det.Reconstruct().FrobDist(a)
	errSh := sh.Reconstruct().FrobDist(a)
	if errSh > errDet*1.1+1e-12 {
		t.Fatalf("sharded SVD error %g vs deterministic %g", errSh, errDet)
	}
}

func TestDecomposeShardedReproducible(t *testing.T) {
	g := rng.New(33)
	a := lowRankPlusNoise(g, 900, 50, 4, 0.05)
	mk := func() lapack.SVD { return DecomposeSharded(rng.New(5), a, 4, 200, DefaultOptions()) }
	d1, d2 := mk(), mk()
	for i := range d1.S {
		if d1.S[i] != d2.S[i] {
			t.Fatal("sharded SVD singular values not bit-reproducible")
		}
	}
	for i, v := range d1.U.Data {
		if v != d2.U.Data[i] {
			t.Fatal("sharded SVD U not bit-reproducible")
		}
	}
}

func TestDecomposeShardedFallsBackWhenShort(t *testing.T) {
	// A matrix no taller than the threshold must take the flat path and be
	// bit-identical to Decompose with the same generator.
	g := rng.New(34)
	a := lowRankPlusNoise(g, 300, 40, 4, 0.02)
	flat := Decompose(rng.New(3), a, 4, DefaultOptions())
	sh := DecomposeSharded(rng.New(3), a, 4, 300, DefaultOptions())
	for i := range flat.S {
		if flat.S[i] != sh.S[i] {
			t.Fatal("fallback path diverged from Decompose")
		}
	}
}

func TestDecomposeShardedNarrowSlicesStayFlat(t *testing.T) {
	// Regression: a tall slice whose column count is below the sketch width
	// (J < r+Oversample) must take the flat degenerate path — the shard
	// sketch's power-iteration QR would otherwise see a Cols×w matrix with
	// w > Cols and panic.
	g := rng.New(37)
	a := lowRankPlusNoise(g, 3000, 12, 4, 0.01)
	d := DecomposeSharded(rng.New(13), a, 10, 1000, DefaultOptions())
	flat := Decompose(rng.New(13), a, 10, DefaultOptions())
	if len(d.S) != 10 {
		t.Fatalf("want 10 singular values, got %d", len(d.S))
	}
	for i := range d.S {
		if d.S[i] != flat.S[i] {
			t.Fatal("narrow tall matrix diverged from the flat degenerate path")
		}
	}
	// Even called directly on a narrow shard, SketchShard must clamp the
	// sketch width instead of panicking.
	sk := SketchShard(rng.New(14), a.RowView(0, 1000), 10, DefaultOptions())
	if sk.B.Rows != 12 { // clamped to cols
		t.Fatalf("narrow shard sketch width %d, want 12", sk.B.Rows)
	}
	if !sk.Q.IsOrthonormalCols(1e-8) {
		t.Fatal("narrow shard Q not orthonormal")
	}
}

func TestSketchShardSpansRowSpace(t *testing.T) {
	g := rng.New(35)
	a := lowRankPlusNoise(g, 400, 50, 5, 0)
	sk := SketchShard(rng.New(11), a, 5, DefaultOptions())
	if !sk.Q.IsOrthonormalCols(1e-8) {
		t.Fatal("shard Q not orthonormal")
	}
	if sk.B.Rows != 13 || sk.B.Cols != 50 { // r + oversample = 13
		t.Fatalf("shard B is %dx%d", sk.B.Rows, sk.B.Cols)
	}
	// Q Qᵀ A must reproduce A for exactly low-rank input.
	proj := sk.Q.Mul(sk.B)
	if rel := proj.FrobDist(a) / a.FrobNorm(); rel > 1e-8 {
		t.Fatalf("shard sketch misses row space: rel err %g", rel)
	}
}

func TestDecomposeDegeneratePadsToRank(t *testing.T) {
	// min(I, J) < r: the deficient SVD must be zero-padded to exactly r
	// columns so callers can rely on r-column factors.
	g := rng.New(36)
	a := mat.Gaussian(g, 6, 4)
	d := Decompose(g, a, 5, DefaultOptions())
	if len(d.S) != 5 || d.U.Cols != 5 || d.V.Cols != 5 {
		t.Fatalf("padded shapes wrong: |S|=%d U %dx%d V %dx%d", len(d.S), d.U.Rows, d.U.Cols, d.V.Rows, d.V.Cols)
	}
	if d.S[4] != 0 {
		t.Fatalf("padded singular value = %g, want 0", d.S[4])
	}
	for i := 0; i < d.U.Rows; i++ {
		if d.U.At(i, 4) != 0 {
			t.Fatal("padded U column not zero")
		}
	}
	for i := 0; i < d.V.Rows; i++ {
		if d.V.At(i, 4) != 0 {
			t.Fatal("padded V column not zero")
		}
	}
	// Reconstruction is unchanged by the zero tail: still the best rank-4
	// approximation (here exact, since rank(a) <= 4).
	if rel := d.Reconstruct().FrobDist(a) / a.FrobNorm(); rel > 1e-8 {
		t.Fatalf("padded reconstruction off: rel err %g", rel)
	}
}
