package rsvd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lapack"
	"repro/internal/mat"
	"repro/internal/rng"
)

// lowRankPlusNoise builds an I×J matrix with exact rank r signal plus small
// Gaussian noise — the regime randomized SVD is designed for.
func lowRankPlusNoise(g *rng.RNG, i, j, r int, noise float64) *mat.Dense {
	u := mat.Gaussian(g, i, r)
	v := mat.Gaussian(g, r, j)
	a := u.Mul(v)
	if noise > 0 {
		n := mat.Gaussian(g, i, j).Scale(noise)
		a.AddInPlace(n)
	}
	return a
}

func TestDecomposeExactLowRank(t *testing.T) {
	g := rng.New(1)
	a := lowRankPlusNoise(g, 200, 60, 5, 0)
	d := Decompose(g, a, 5, DefaultOptions())
	if rel := d.Reconstruct().FrobDist(a) / a.FrobNorm(); rel > 1e-8 {
		t.Fatalf("exact rank-5 matrix not recovered: rel err %g", rel)
	}
	if !d.U.IsOrthonormalCols(1e-8) || !d.V.IsOrthonormalCols(1e-8) {
		t.Fatal("factors not orthonormal")
	}
	if len(d.S) != 5 {
		t.Fatalf("expected 5 singular values, got %d", len(d.S))
	}
}

func TestDecomposeNoisyLowRankNearOptimal(t *testing.T) {
	g := rng.New(2)
	a := lowRankPlusNoise(g, 150, 80, 8, 0.01)
	r := 8
	det := lapack.Truncated(a, r)
	rand := Decompose(g, a, r, DefaultOptions())
	errDet := det.Reconstruct().FrobDist(a)
	errRand := rand.Reconstruct().FrobDist(a)
	// Randomized error should be within a few percent of optimal.
	if errRand > errDet*1.1+1e-12 {
		t.Fatalf("randomized SVD error %g vs deterministic %g", errRand, errDet)
	}
}

func TestDecomposeSingularValueAccuracy(t *testing.T) {
	g := rng.New(3)
	a := lowRankPlusNoise(g, 120, 50, 6, 0)
	det := lapack.Truncated(a, 6)
	rand := Decompose(g, a, 6, DefaultOptions())
	for i := range rand.S {
		if rel := math.Abs(rand.S[i]-det.S[i]) / (det.S[i] + 1e-300); rel > 1e-6 {
			t.Fatalf("singular value %d: randomized %g vs true %g", i, rand.S[i], det.S[i])
		}
	}
}

func TestDecomposeDeterministicFallback(t *testing.T) {
	// When the sketch would exceed min(I, J), Decompose must fall back to a
	// deterministic truncated SVD and still return a valid factorization.
	g := rng.New(4)
	a := mat.Gaussian(g, 10, 8)
	d := Decompose(g, a, 6, DefaultOptions()) // 6+8 >= 8 → fallback
	if len(d.S) != 6 {
		t.Fatalf("want 6 singular values, got %d", len(d.S))
	}
	if !d.U.IsOrthonormalCols(1e-8) {
		t.Fatal("fallback U not orthonormal")
	}
}

func TestDecomposePowerIterationsImprove(t *testing.T) {
	// With a slowly decaying spectrum, q=2 should do at least as well as q=0
	// (allowing small randomness slack).
	g := rng.New(5)
	// Build a matrix with polynomial spectral decay.
	n := 100
	u := lapack.QRFactor(mat.Gaussian(g, n, n/2)).Q
	v := lapack.QRFactor(mat.Gaussian(g, n, n/2)).Q
	s := make([]float64, n/2)
	for i := range s {
		s[i] = 1 / math.Pow(float64(i+1), 0.5)
	}
	a := u.ScaleColumns(s).MulT(v)

	r := 10
	e0 := Decompose(rng.New(100), a, r, Options{Oversample: 4, PowerIters: 0}).Reconstruct().FrobDist(a)
	e2 := Decompose(rng.New(100), a, r, Options{Oversample: 4, PowerIters: 2}).Reconstruct().FrobDist(a)
	if e2 > e0*1.02 {
		t.Fatalf("power iterations hurt: q=0 err %g, q=2 err %g", e0, e2)
	}
}

func TestDecomposeReproducible(t *testing.T) {
	mk := func() []float64 {
		g := rng.New(42)
		a := lowRankPlusNoise(g, 80, 40, 5, 0.05)
		d := Decompose(g, a, 5, DefaultOptions())
		return d.S
	}
	s1 := mk()
	s2 := mk()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("randomized SVD not reproducible with fixed seed")
		}
	}
}

func TestDecomposePanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank 0")
		}
	}()
	g := rng.New(6)
	Decompose(g, mat.Gaussian(g, 5, 5), 0, DefaultOptions())
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{Oversample: -3, PowerIters: -1}.normalize()
	if o.Oversample != 0 || o.PowerIters != 0 {
		t.Fatalf("normalize failed: %+v", o)
	}
}

func TestQuickDecomposeOrthonormal(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		i := 40 + g.Intn(60)
		j := 30 + g.Intn(40)
		r := 2 + g.Intn(5)
		a := lowRankPlusNoise(g, i, j, r+2, 0.02)
		d := Decompose(g, a, r, DefaultOptions())
		return d.U.IsOrthonormalCols(1e-7) && d.V.IsOrthonormalCols(1e-7) && len(d.S) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecomposeErrorBounded(t *testing.T) {
	// Reconstruction error must never exceed the tail energy by a large
	// factor (Halko et al. give ~(1+9√(k+s)√min(I,J)) in expectation; we
	// use a loose practical bound).
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := lowRankPlusNoise(g, 60, 40, 4, 0.05)
		r := 4
		det := lapack.Truncated(a, r)
		rand := Decompose(g, a, r, DefaultOptions())
		return rand.Reconstruct().FrobDist(a) <= det.Reconstruct().FrobDist(a)*1.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
