package datagen

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Spectrogram generates a time×frequency log-power spectrogram stand-in for
// a song (FMA) or urban sound (Urban): a sum of a few harmonic stacks with
// slowly varying amplitudes plus broadband noise, evaluated on freqBins DFT
// bins. The resulting matrices are strongly compressible at low rank —
// exactly the property that gives DPar2 its largest compression ratios on
// FMA/Urban (Fig. 10: up to 201×).
func Spectrogram(g *rng.RNG, frames, freqBins, harmonics int) *mat.Dense {
	type voice struct {
		baseBin  float64
		nHarm    int
		ampPhase float64
		ampRate  float64
		width    float64
	}
	voices := make([]voice, harmonics)
	for i := range voices {
		voices[i] = voice{
			baseBin:  float64(freqBins) * (0.02 + 0.2*g.Float64()),
			nHarm:    2 + g.Intn(5),
			ampPhase: 2 * math.Pi * g.Float64(),
			ampRate:  0.5 + 3*g.Float64(),
			width:    1 + 3*g.Float64(),
		}
	}
	m := mat.New(frames, freqBins)
	noiseFloor := 1e-4
	for t := 0; t < frames; t++ {
		row := m.Row(t)
		tt := float64(t) / float64(frames)
		for _, v := range voices {
			amp := 0.5 + 0.5*math.Sin(v.ampPhase+2*math.Pi*v.ampRate*tt)
			amp *= amp
			for h := 1; h <= v.nHarm; h++ {
				center := v.baseBin * float64(h)
				if center >= float64(freqBins) {
					break
				}
				hAmp := amp / float64(h)
				lo := int(center - 4*v.width)
				hi := int(center + 4*v.width)
				if lo < 0 {
					lo = 0
				}
				if hi >= freqBins {
					hi = freqBins - 1
				}
				for b := lo; b <= hi; b++ {
					d := (float64(b) - center) / v.width
					row[b] += hAmp * math.Exp(-0.5*d*d)
				}
			}
		}
		for b := 0; b < freqBins; b++ {
			p := row[b] + noiseFloor*(1+0.5*g.Float64())
			row[b] = math.Log10(p + 1e-12)
		}
	}
	return m
}

// SpectrogramTensor builds a K-song irregular tensor of log-power
// spectrograms with frame counts drawn uniformly in [minFrames, maxFrames]
// — the (time, frequency, song) layout of FMA/Urban in Table II.
func SpectrogramTensor(g *rng.RNG, k, minFrames, maxFrames, freqBins int) *tensor.Irregular {
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		frames := minFrames + g.Intn(maxFrames-minFrames+1)
		slices[kk] = Spectrogram(g, frames, freqBins, 2+g.Intn(4))
	}
	return tensor.MustIrregular(slices)
}

// VideoFeatureTensor stands in for the Activity/Action datasets: per-video
// (frame, feature) matrices where features evolve as smooth AR(1) processes
// around per-class templates, with irregular frame counts.
func VideoFeatureTensor(g *rng.RNG, k, minFrames, maxFrames, features, classes int) *tensor.Irregular {
	templates := make([]*mat.Dense, classes)
	for c := range templates {
		templates[c] = mat.Gaussian(g, 1, features)
	}
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		frames := minFrames + g.Intn(maxFrames-minFrames+1)
		class := g.Intn(classes)
		base := templates[class]
		m := mat.New(frames, features)
		state := make([]float64, features)
		for j := range state {
			state[j] = base.At(0, j)
		}
		const phi = 0.95
		for t := 0; t < frames; t++ {
			row := m.Row(t)
			for j := 0; j < features; j++ {
				state[j] = phi*state[j] + (1-phi)*base.At(0, j) + 0.1*g.Norm()
				row[j] = state[j]
			}
		}
		slices[kk] = m
	}
	return tensor.MustIrregular(slices)
}

// TrafficTensor stands in for Traffic/PEMS-SF: per-slice (sensor/station,
// time-of-day) matrices with a strong shared daily profile (morning/evening
// peaks), per-sensor scales, and noise. The slices are regular (equal
// heights) because Traffic and PEMS-SF are regular tensors the paper feeds
// to PARAFAC2 anyway.
func TrafficTensor(g *rng.RNG, k, sensors, timestamps int) *tensor.Irregular {
	profile := make([]float64, timestamps)
	for t := range profile {
		x := float64(t) / float64(timestamps)
		// Two Gaussian rush-hour bumps at ~8:00 and ~17:30.
		profile[t] = 0.2 +
			math.Exp(-0.5*sq((x-0.33)/0.06)) +
			0.8*math.Exp(-0.5*sq((x-0.73)/0.08))
	}
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		dayScale := 0.7 + 0.6*g.Float64() // weekday/weekend variation
		m := mat.New(sensors, timestamps)
		for sIdx := 0; sIdx < sensors; sIdx++ {
			sensorScale := 0.5 + g.Float64()
			row := m.Row(sIdx)
			for t := 0; t < timestamps; t++ {
				row[t] = dayScale*sensorScale*profile[t] + 0.05*g.Norm()
			}
		}
		slices[kk] = m
	}
	return tensor.MustIrregular(slices)
}

func sq(v float64) float64 { return v * v }
