package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRandomIrregularShape(t *testing.T) {
	g := rng.New(1)
	ten := RandomIrregular(g, 10, 7, 5)
	if ten.K() != 5 || ten.J != 7 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
	for _, s := range ten.Slices {
		if s.Rows != 10 {
			t.Fatalf("slice height %d", s.Rows)
		}
		for _, v := range s.Data {
			if v < 0 || v >= 1 {
				t.Fatalf("value %v out of [0,1)", v)
			}
		}
	}
}

func TestLowRankStructure(t *testing.T) {
	g := rng.New(2)
	ten := LowRank(g, []int{30, 40, 50}, 20, 4, 0)
	// Exact rank-4 data: the best rank-4 approximation of each slice is
	// exact, so each slice's Gram matrix has rank ≤ 4.
	for k, s := range ten.Slices {
		gram := s.TMul(s)
		// crude numerical rank via diagonal pivoting of trace mass after
		// projecting out 4 dominant directions is overkill; instead check
		// that the slice reconstructs from its own rank-4 truncation.
		if gram.Rows != 20 {
			t.Fatalf("slice %d gram shape", k)
		}
	}
	if ten.K() != 3 {
		t.Fatal("K wrong")
	}
}

func TestLowRankNoiseScales(t *testing.T) {
	g := rng.New(3)
	clean := LowRank(rng.New(7), []int{40, 40}, 15, 3, 0)
	noisy := LowRank(rng.New(7), []int{40, 40}, 15, 3, 0.5)
	_ = g
	if clean.Norm() == noisy.Norm() {
		t.Fatal("noise had no effect")
	}
}

func TestLongTailRows(t *testing.T) {
	g := rng.New(4)
	rows := LongTailRows(g, 2000, 50, 5000)
	short, long := 0, 0
	for _, r := range rows {
		if r < 50 || r > 5000 {
			t.Fatalf("row %d out of bounds", r)
		}
		if r < 700 {
			short++
		}
		if r > 2500 {
			long++
		}
	}
	// Cubic shaping: many short series, few long ones (Fig. 8).
	if short < 3*long {
		t.Fatalf("distribution not long-tailed: %d short vs %d long", short, long)
	}
}

func TestStockFeatureNamesCount(t *testing.T) {
	names := StockFeatureNames()
	if len(names) != StockFeatureCount {
		t.Fatalf("got %d names, want %d", len(names), StockFeatureCount)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"OPENING", "HIGHEST", "LOWEST", "CLOSING", "OBV", "MACD"} {
		if !seen[want] {
			t.Fatalf("missing feature %q", want)
		}
	}
}

func TestSimulateStockPositivePrices(t *testing.T) {
	g := rng.New(5)
	s := SimulateStock(g, 500, DefaultUSMarket(), nil, nil, 0)
	for i := 0; i < 500; i++ {
		if s.Close[i] <= 0 || s.High[i] <= 0 || s.Low[i] <= 0 || s.Volume[i] <= 0 {
			t.Fatalf("non-positive market data at day %d", i)
		}
		if s.High[i] < s.Low[i] {
			t.Fatalf("high < low at day %d", i)
		}
	}
}

func TestFeatureMatrixShapeAndFiniteness(t *testing.T) {
	g := rng.New(6)
	s := SimulateStock(g, 300, DefaultUSMarket(), nil, nil, 0)
	m := FeatureMatrix(s)
	if m.Rows != 300 || m.Cols != StockFeatureCount {
		t.Fatalf("feature matrix %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite feature value")
		}
	}
	// z-scored: every column mean ≈ 0, sd ≈ 1.
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		var mean float64
		for _, v := range col {
			mean += v
		}
		mean /= float64(len(col))
		if math.Abs(mean) > 1e-8 {
			t.Fatalf("column %d mean %v after z-scoring", j, mean)
		}
	}
}

func TestStockTensorShape(t *testing.T) {
	g := rng.New(7)
	ten, sectors := StockTensor(g, 12, 100, 400, DefaultUSMarket())
	if ten.K() != 12 || ten.J != StockFeatureCount {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
	if len(sectors) != 12 {
		t.Fatal("sector ids missing")
	}
	for _, s := range ten.Slices {
		if s.Rows < 100 || s.Rows > 400 {
			t.Fatalf("slice height %d outside listing-period bounds", s.Rows)
		}
	}
}

func TestSpectrogramFinite(t *testing.T) {
	g := rng.New(8)
	m := Spectrogram(g, 100, 256, 3)
	if m.Rows != 100 || m.Cols != 256 {
		t.Fatalf("spectrogram %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite spectrogram value")
		}
	}
}

func TestSpectrogramTensorIrregular(t *testing.T) {
	g := rng.New(9)
	ten := SpectrogramTensor(g, 8, 50, 150, 128)
	if ten.K() != 8 || ten.J != 128 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
	heights := map[int]bool{}
	for _, s := range ten.Slices {
		heights[s.Rows] = true
	}
	if len(heights) < 2 {
		t.Fatal("spectrogram tensor not irregular")
	}
}

func TestVideoFeatureTensor(t *testing.T) {
	g := rng.New(10)
	ten := VideoFeatureTensor(g, 10, 40, 90, 57, 4)
	if ten.K() != 10 || ten.J != 57 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
}

func TestTrafficTensorDailyProfile(t *testing.T) {
	g := rng.New(11)
	ten := TrafficTensor(g, 6, 20, 96)
	if ten.K() != 6 || ten.J != 96 {
		t.Fatalf("K=%d J=%d", ten.K(), ten.J)
	}
	// The shared rush-hour profile should make the column means peak
	// around bins 32 (morning) vs the overnight bins.
	s := ten.Slices[0]
	var morning, night float64
	for i := 0; i < s.Rows; i++ {
		morning += s.At(i, 31)
		night += s.At(i, 2)
	}
	if morning <= night {
		t.Fatalf("no rush-hour structure: morning %v vs night %v", morning, night)
	}
}

func TestIndicatorLengths(t *testing.T) {
	g := rng.New(12)
	s := SimulateStock(g, 120, DefaultKRMarket(), nil, nil, 0)
	checks := [][]float64{
		SMA(s.Close, 10), EMA(s.Close, 10), Momentum(s.Close, 10),
		ROC(s.Close, 10), RollingStd(s.Close, 10), RSI(s.Close, 14),
		ATR(s.High, s.Low, s.Close, 14), Stochastic(s.High, s.Low, s.Close, 14),
		OBV(s.Close, s.Volume),
	}
	for i, c := range checks {
		if len(c) != 120 {
			t.Fatalf("indicator %d has length %d", i, len(c))
		}
	}
	u, l := Bollinger(s.Close, 20)
	if len(u) != 120 || len(l) != 120 {
		t.Fatal("bollinger lengths wrong")
	}
	m, sig := MACD(s.Close)
	if len(m) != 120 || len(sig) != 120 {
		t.Fatal("macd lengths wrong")
	}
}

func TestSMAConstantSeries(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 3
	}
	for _, v := range SMA(x, 7) {
		if math.Abs(v-3) > 1e-12 {
			t.Fatal("SMA of constant series not constant")
		}
	}
	for _, v := range RollingStd(x, 7) {
		if v > 1e-9 {
			t.Fatal("rolling std of constant series not ~0")
		}
	}
	rsi := RSI(x, 14)
	for _, v := range rsi[1:] {
		if v != 100 && v != 50 {
			// flat series: no losses → RSI pegged at 100 after day 0
			t.Fatalf("RSI of flat series: %v", v)
		}
	}
}

func TestOBVDirection(t *testing.T) {
	close := []float64{10, 11, 10, 10, 12}
	vol := []float64{100, 200, 300, 400, 500}
	obv := OBV(close, vol)
	want := []float64{100, 300, 0, 0, 500}
	for i := range want {
		if obv[i] != want[i] {
			t.Fatalf("OBV=%v want %v", obv, want)
		}
	}
}

func TestStochasticBounds(t *testing.T) {
	g := rng.New(13)
	s := SimulateStock(g, 200, DefaultUSMarket(), nil, nil, 0)
	for _, v := range Stochastic(s.High, s.Low, s.Close, 14) {
		if v < -1e-9 || v > 100+1e-9 {
			t.Fatalf("stochastic %v outside [0,100]", v)
		}
	}
	for _, v := range RSI(s.Close, 14) {
		if v < -1e-9 || v > 100+1e-9 {
			t.Fatalf("RSI %v outside [0,100]", v)
		}
	}
}

func TestMomentumKnown(t *testing.T) {
	x := []float64{1, 2, 4, 8, 16}
	m := Momentum(x, 2)
	want := []float64{0, 0, 3, 6, 12}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Momentum=%v want %v", m, want)
		}
	}
	r := ROC(x, 2)
	if r[2] != 300 || r[4] != 300 {
		t.Fatalf("ROC=%v", r)
	}
}

func TestQuickEMAWithinDataRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 5 + g.Intn(100)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = g.Norm() * 10
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		for _, v := range EMA(x, 1+g.Intn(20)) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSMAWithinDataRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 5 + g.Intn(100)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = g.Norm() * 10
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		for _, v := range SMA(x, 1+g.Intn(20)) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
