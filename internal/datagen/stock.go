package datagen

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// StockFeatureCount is the number of feature columns the stock generator
// produces: 5 basic features (open, high, low, close, volume) plus 83
// technical indicators, matching the J = 88 of the paper's US/Korea stock
// tensors (Table II).
const StockFeatureCount = 88

// StockFeatureNames returns the column labels of the stock feature matrix.
// The first four price features and the named indicators (OBV, ATR, MACD,
// STOCH) are the ones Fig. 12 and the discovery experiments analyze.
func StockFeatureNames() []string {
	names := []string{"OPENING", "HIGHEST", "LOWEST", "CLOSING", "VOLUME"}
	add := func(prefix string, windows []int) {
		for _, w := range windows {
			names = append(names, prefix+itoa(w))
		}
	}
	w12 := []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}
	add("SMA", w12)
	add("EMA", w12)
	add("MOM", w12)
	add("ROC", w12)
	add("STD", w12)
	add("RSI", []int{6, 10, 14, 20, 25, 30})
	add("ATR", []int{7, 14, 21, 28})
	add("STOCH", []int{7, 14, 21, 28})
	add("BOLLU", []int{10, 20, 30})
	add("BOLLL", []int{10, 20, 30})
	names = append(names, "OBV", "MACD", "MACDSIG")
	return names
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// StockMarket configures the market simulator.
type StockMarket struct {
	// Drift and Vol are the annualized GBM drift and volatility ranges a
	// stock's parameters are drawn from.
	DriftLo, DriftHi float64
	VolLo, VolHi     float64
	// MarketBeta couples individual stocks to a shared market factor,
	// producing the cross-stock correlation structure the discovery
	// experiments (Table III) look for. 0 disables coupling.
	MarketBeta float64
	// Sectors is the number of sector factors; stocks in the same sector
	// co-move, so k-NN/RWR find sector-mates, as in Table III.
	Sectors int
	// VolumeCoupling controls how strongly trading volume tracks price
	// moves. High coupling reproduces the US-market pattern of Fig. 12(a)
	// (OBV/ATR correlate with prices); near-zero coupling reproduces the
	// KR-market pattern of Fig. 12(b).
	VolumeCoupling float64
}

// DefaultUSMarket parameterizes a developed, lower-volatility market in
// which volume tracks price moves (OBV/ATR correlate with prices — the
// Fig. 12(a) pattern).
func DefaultUSMarket() StockMarket {
	return StockMarket{DriftLo: 0.02, DriftHi: 0.15, VolLo: 0.15, VolHi: 0.35, MarketBeta: 0.6, Sectors: 8, VolumeCoupling: 1.0}
}

// DefaultKRMarket parameterizes a higher-volatility market with
// volume decoupled from price level (the Fig. 12(b) pattern: OBV/ATR show
// little correlation with prices).
func DefaultKRMarket() StockMarket {
	return StockMarket{DriftLo: -0.05, DriftHi: 0.10, VolLo: 0.25, VolHi: 0.60, MarketBeta: 0.35, Sectors: 8, VolumeCoupling: 0.05}
}

// Stock holds one simulated stock: its OHLCV series and sector id.
type Stock struct {
	Open, High, Low, Close, Volume []float64
	Sector                         int
}

// SimulateStock generates days of OHLCV data by geometric Brownian motion
// with a shared market factor and a sector factor.
func SimulateStock(g *rng.RNG, days int, m StockMarket, market, sector []float64, sectorID int) Stock {
	drift := m.DriftLo + (m.DriftHi-m.DriftLo)*g.Float64()
	vol := m.VolLo + (m.VolHi-m.VolLo)*g.Float64()
	dt := 1.0 / 252
	s := Stock{
		Open:   make([]float64, days),
		High:   make([]float64, days),
		Low:    make([]float64, days),
		Close:  make([]float64, days),
		Volume: make([]float64, days),
		Sector: sectorID,
	}
	price := 20 + 180*g.Float64()
	baseVol := math.Exp(10 + 2*g.Norm())
	for t := 0; t < days; t++ {
		shock := g.Norm()
		ret := (drift-0.5*vol*vol)*dt + vol*math.Sqrt(dt)*shock
		if market != nil {
			ret += m.MarketBeta * market[t]
		}
		if sector != nil {
			ret += sector[t]
		}
		prev := price
		price *= math.Exp(ret)
		intraday := vol * math.Sqrt(dt) * (0.5 + g.Float64())
		s.Open[t] = prev * (1 + 0.3*intraday*g.Norm())
		hi := math.Max(s.Open[t], price) * (1 + intraday*math.Abs(g.Norm()))
		lo := math.Min(s.Open[t], price) * (1 - intraday*math.Abs(g.Norm()))
		s.High[t] = hi
		s.Low[t] = lo
		s.Close[t] = price
		// Coupled markets (Fig. 12(a) pattern): volume scales *linearly*
		// with |return|, so OBV's signed cumulative sum
		// Σ sign(Δp)·c·|ret| = c·Σ ret reproduces the log-price path and
		// OBV correlates strongly with the price features.
		// Decoupled markets (Fig. 12(b) pattern): volume is heavy-tailed
		// iid noise, so OBV is dominated by a few huge days whose signs
		// are unrelated to the price trend.
		coupled := (0.05 + 60*math.Abs(ret)) * math.Exp(0.15*g.Norm())
		noise := math.Exp(2.5 * g.Norm())
		s.Volume[t] = baseVol * (m.VolumeCoupling*coupled + (1-m.VolumeCoupling)*noise)
	}
	return s
}

// FeatureMatrix converts a stock's OHLCV series into the days×88 feature
// matrix (z-scored per column so features with different scales are
// comparable, as is standard before tensor decomposition).
func FeatureMatrix(s Stock) *mat.Dense {
	days := len(s.Close)
	cols := make([][]float64, 0, StockFeatureCount)
	cols = append(cols, s.Open, s.High, s.Low, s.Close, s.Volume)

	w12 := []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}
	for _, w := range w12 {
		cols = append(cols, SMA(s.Close, w))
	}
	for _, w := range w12 {
		cols = append(cols, EMA(s.Close, w))
	}
	for _, w := range w12 {
		cols = append(cols, Momentum(s.Close, w))
	}
	for _, w := range w12 {
		cols = append(cols, ROC(s.Close, w))
	}
	for _, w := range w12 {
		cols = append(cols, RollingStd(s.Close, w))
	}
	for _, w := range []int{6, 10, 14, 20, 25, 30} {
		cols = append(cols, RSI(s.Close, w))
	}
	for _, w := range []int{7, 14, 21, 28} {
		cols = append(cols, ATR(s.High, s.Low, s.Close, w))
	}
	for _, w := range []int{7, 14, 21, 28} {
		cols = append(cols, Stochastic(s.High, s.Low, s.Close, w))
	}
	for _, w := range []int{10, 20, 30} {
		u, _ := Bollinger(s.Close, w)
		cols = append(cols, u)
	}
	for _, w := range []int{10, 20, 30} {
		_, l := Bollinger(s.Close, w)
		cols = append(cols, l)
	}
	cols = append(cols, OBV(s.Close, s.Volume))
	macd, sig := MACD(s.Close)
	cols = append(cols, macd, sig)

	m := mat.New(days, len(cols))
	for j, c := range cols {
		zscore(c)
		m.SetCol(j, c)
	}
	return m
}

func zscore(x []float64) {
	n := float64(len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	var varsum float64
	for _, v := range x {
		d := v - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / n)
	if sd == 0 {
		sd = 1
	}
	for i := range x {
		x[i] = (x[i] - mean) / sd
	}
}

// StockTensor simulates a whole market: K stocks with listing periods drawn
// from the long-tailed distribution of Fig. 8, each converted to its
// days×88 feature matrix. Returns the tensor and the per-stock sector ids.
func StockTensor(g *rng.RNG, k, minDays, maxDays int, m StockMarket) (*tensor.Irregular, []int) {
	rows := LongTailRows(g, k, minDays, maxDays)
	// Shared market and sector factor paths over the longest horizon.
	horizon := 0
	for _, r := range rows {
		if r > horizon {
			horizon = r
		}
	}
	market := make([]float64, horizon)
	dt := 1.0 / 252
	for t := range market {
		market[t] = 0.10 * math.Sqrt(dt) * g.Norm()
	}
	sectors := make([][]float64, m.Sectors)
	for i := range sectors {
		sectors[i] = make([]float64, horizon)
		for t := range sectors[i] {
			// Sector shocks comparable to idiosyncratic volatility, so
			// sector-mates co-move strongly enough for the Table III
			// rankings to recover sector membership.
			sectors[i][t] = 0.45 * math.Sqrt(dt) * g.Norm()
		}
	}

	slices := make([]*mat.Dense, k)
	sectorIDs := make([]int, k)
	for kk := 0; kk < k; kk++ {
		sec := 0
		if m.Sectors > 0 {
			sec = g.Intn(m.Sectors)
		}
		sectorIDs[kk] = sec
		days := rows[kk]
		var sf []float64
		if m.Sectors > 0 {
			// Align histories on the calendar: every stock's series ends
			// "today", so a stock listed for `days` days experienced the
			// *last* `days` entries of the shared factor paths. This is
			// what makes trailing-window U_k comparisons (Table III)
			// meaningful across stocks with different listing periods.
			sf = sectors[sec][horizon-days:]
		}
		st := SimulateStock(g, days, m, market[horizon-days:], sf, sec)
		slices[kk] = FeatureMatrix(st)
	}
	return tensor.MustIrregular(slices), sectorIDs
}
