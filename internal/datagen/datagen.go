// Package datagen generates synthetic irregular dense tensors that stand in
// for the paper's evaluation datasets (Table II), which are either
// proprietary or too large to ship: stock markets (US Stock, Korea Stock),
// log-power spectrograms (FMA, Urban), video features (Activity, Action),
// and traffic measurements (Traffic, PEMS-SF), plus the uniform-random
// tensors of the scalability study (Tensor Toolbox's tenrand).
//
// Each generator reproduces the property of its dataset that drives DPar2's
// behaviour: the irregularity profile of the slice heights (the long tail of
// Fig. 8), the dimension regime (J≫R for spectrograms vs J≈88 for stocks),
// and enough low-rank structure that rank-10 PARAFAC2 reaches the fitness
// band the paper reports (≈0.7-0.97 depending on dataset).
package datagen

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// RandomIrregular mirrors tenrand(I, J, K): a K-slice tensor whose slices
// are I×J with uniform [0,1) entries — every slice the same height, as in
// the paper's synthetic scalability experiments.
func RandomIrregular(g *rng.RNG, i, j, k int) *tensor.Irregular {
	slices := make([]*mat.Dense, k)
	for kk := 0; kk < k; kk++ {
		slices[kk] = mat.Uniform(g, i, j, 0, 1)
	}
	return tensor.MustIrregular(slices)
}

// LowRank builds an irregular tensor with exact PARAFAC2 structure of the
// given rank plus Gaussian noise of the given relative magnitude. rows gives
// the slice heights I_k.
func LowRank(g *rng.RNG, rows []int, j, rank int, noise float64) *tensor.Irregular {
	h := mat.Gaussian(g, rank, rank)
	v := mat.Gaussian(g, j, rank)
	slices := make([]*mat.Dense, len(rows))
	for k, ik := range rows {
		q := orthonormal(g, ik, rank)
		s := make([]float64, rank)
		for i := range s {
			s[i] = 0.5 + g.Float64()
		}
		x := q.Mul(h.ScaleColumns(s)).MulT(v)
		if noise > 0 {
			scale := noise * x.FrobNorm() / math.Sqrt(float64(ik*j))
			x.AddInPlace(mat.Gaussian(g, ik, j).Scale(scale))
		}
		slices[k] = x
	}
	return tensor.MustIrregular(slices)
}

// orthonormal draws an ik×r matrix with orthonormal columns via Gram-Schmidt
// on a Gaussian (avoiding an import cycle with lapack).
func orthonormal(g *rng.RNG, ik, r int) *mat.Dense {
	q := mat.Gaussian(g, ik, r)
	for j := 0; j < r; j++ {
		col := q.Col(j)
		for jj := 0; jj < j; jj++ {
			prev := q.Col(jj)
			d := mat.Dot(col, prev)
			for i := range col {
				col[i] -= d * prev[i]
			}
		}
		// second pass for stability
		for jj := 0; jj < j; jj++ {
			prev := q.Col(jj)
			d := mat.Dot(col, prev)
			for i := range col {
				col[i] -= d * prev[i]
			}
		}
		n := mat.Norm2(col)
		if n == 0 {
			col[j%ik] = 1
			n = 1
		}
		for i := range col {
			col[i] /= n
		}
		q.SetCol(j, col)
	}
	return q
}

// LongTailRows draws K slice heights from a long-tailed distribution
// matching the shape of Fig. 8 (few very long listing periods, many short
// ones): I_k = lo + (hi-lo)·u^5 with u uniform, sorted order irrelevant.
func LongTailRows(g *rng.RNG, k, lo, hi int) []int {
	rows := make([]int, k)
	for i := range rows {
		u := g.Float64()
		rows[i] = lo + int(float64(hi-lo)*u*u*u*u*u)
		if rows[i] < lo {
			rows[i] = lo
		}
	}
	return rows
}
