package datagen

import "math"

// Technical indicators used to build the 88-feature stock matrices. All
// operate on daily series and return a series of the same length, carrying
// the first defined value backwards over the warm-up window (standard
// practice so the feature matrix stays rectangular).

// SMA is the w-day simple moving average of x.
func SMA(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	var sum float64
	for i, v := range x {
		sum += v
		if i >= w {
			sum -= x[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// EMA is the w-day exponential moving average (α = 2/(w+1)).
func EMA(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	alpha := 2.0 / float64(w+1)
	out[0] = x[0]
	for i := 1; i < len(x); i++ {
		out[i] = alpha*x[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Momentum is x[t] − x[t−w].
func Momentum(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		if i >= w {
			out[i] = x[i] - x[i-w]
		}
	}
	return out
}

// ROC is the w-day rate of change 100·(x[t]/x[t−w] − 1).
func ROC(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		if i >= w && x[i-w] != 0 {
			out[i] = 100 * (x[i]/x[i-w] - 1)
		}
	}
	return out
}

// RollingStd is the w-day rolling standard deviation.
func RollingStd(x []float64, w int) []float64 {
	out := make([]float64, len(x))
	var sum, sum2 float64
	for i, v := range x {
		sum += v
		sum2 += v * v
		n := i + 1
		if i >= w {
			sum -= x[i-w]
			sum2 -= x[i-w] * x[i-w]
			n = w
		}
		mean := sum / float64(n)
		varr := sum2/float64(n) - mean*mean
		if varr < 0 {
			varr = 0
		}
		out[i] = math.Sqrt(varr)
	}
	return out
}

// RSI is Wilder's w-day Relative Strength Index (0-100).
func RSI(close []float64, w int) []float64 {
	out := make([]float64, len(close))
	if len(close) == 0 {
		return out
	}
	var avgGain, avgLoss float64
	out[0] = 50
	for i := 1; i < len(close); i++ {
		delta := close[i] - close[i-1]
		gain, loss := 0.0, 0.0
		if delta > 0 {
			gain = delta
		} else {
			loss = -delta
		}
		if i <= w {
			avgGain = (avgGain*float64(i-1) + gain) / float64(i)
			avgLoss = (avgLoss*float64(i-1) + loss) / float64(i)
		} else {
			avgGain = (avgGain*float64(w-1) + gain) / float64(w)
			avgLoss = (avgLoss*float64(w-1) + loss) / float64(w)
		}
		if avgLoss == 0 {
			out[i] = 100
		} else {
			rs := avgGain / avgLoss
			out[i] = 100 - 100/(1+rs)
		}
	}
	return out
}

// ATR is Wilder's w-day Average True Range: a volatility indicator that
// rises in turbulent periods (Fig. 12 discussion).
func ATR(high, low, close []float64, w int) []float64 {
	n := len(close)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	tr := high[0] - low[0]
	out[0] = tr
	for i := 1; i < n; i++ {
		t1 := high[i] - low[i]
		t2 := math.Abs(high[i] - close[i-1])
		t3 := math.Abs(low[i] - close[i-1])
		tr = math.Max(t1, math.Max(t2, t3))
		out[i] = (out[i-1]*float64(w-1) + tr) / float64(w)
	}
	return out
}

// Stochastic is George Lane's %K oscillator: the position of the close
// within the w-day high-low range, in [0, 100].
func Stochastic(high, low, close []float64, w int) []float64 {
	n := len(close)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo0 := i - w + 1
		if lo0 < 0 {
			lo0 = 0
		}
		hh, ll := high[lo0], low[lo0]
		for t := lo0 + 1; t <= i; t++ {
			if high[t] > hh {
				hh = high[t]
			}
			if low[t] < ll {
				ll = low[t]
			}
		}
		if hh == ll {
			out[i] = 50
		} else {
			out[i] = 100 * (close[i] - ll) / (hh - ll)
		}
	}
	return out
}

// Bollinger returns the w-day Bollinger bands (SMA ± 2·rolling std).
func Bollinger(close []float64, w int) (upper, lower []float64) {
	sma := SMA(close, w)
	sd := RollingStd(close, w)
	upper = make([]float64, len(close))
	lower = make([]float64, len(close))
	for i := range close {
		upper[i] = sma[i] + 2*sd[i]
		lower[i] = sma[i] - 2*sd[i]
	}
	return upper, lower
}

// OBV is Granville's On-Balance Volume: cumulative volume signed by the
// direction of the close-to-close move.
func OBV(close, volume []float64) []float64 {
	out := make([]float64, len(close))
	if len(close) == 0 {
		return out
	}
	out[0] = volume[0]
	for i := 1; i < len(close); i++ {
		switch {
		case close[i] > close[i-1]:
			out[i] = out[i-1] + volume[i]
		case close[i] < close[i-1]:
			out[i] = out[i-1] - volume[i]
		default:
			out[i] = out[i-1]
		}
	}
	return out
}

// MACD returns Appel's Moving Average Convergence/Divergence (EMA12−EMA26)
// and its 9-day signal line.
func MACD(close []float64) (macd, signal []float64) {
	e12 := EMA(close, 12)
	e26 := EMA(close, 26)
	macd = make([]float64, len(close))
	for i := range macd {
		macd[i] = e12[i] - e26[i]
	}
	signal = EMA(macd, 9)
	return macd, signal
}
