package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro"
	"repro/internal/dataio"
)

// Client is a typed Go client for the service API — the same client the
// e2e tests, the loopback benchmark, and examples/service use. The zero
// value is not usable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server at base (e.g. "http://127.0.0.1:8080"). A nil
// hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx reply decoded into the wire taxonomy; errors.As
// recovers it from any Client method's error.
type APIError struct {
	Body ErrorBody
	// RetryAfter echoes the Retry-After header ("" when absent), set on
	// quota (429) and engine-closed (503) replies.
	RetryAfter string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s (%d): %s", e.Body.Code, e.Body.Status, e.Body.Message)
}

// do issues one request. A JSON in is marshalled as the body; a non-nil out
// decodes a 2xx JSON reply; a *[]byte out captures a raw binary reply.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	contentType := ""
	switch v := in.(type) {
	case nil:
	case []byte:
		body = bytes.NewReader(v)
		contentType = "application/octet-stream"
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("service client: marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
		contentType = "application/json"
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error.Code == "" {
			er.Error = ErrorBody{Code: CodeInternal, Status: resp.StatusCode,
				Message: fmt.Sprintf("%s %s: HTTP %d", method, path, resp.StatusCode)}
		}
		return &APIError{Body: er.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	switch v := out.(type) {
	case nil:
		return nil
	case *[]byte:
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("service client: read %s: %w", path, err)
		}
		*v = raw
		return nil
	default:
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return fmt.Errorf("service client: decode %s reply: %w", path, err)
		}
		return nil
	}
}

// Health checks /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Stats fetches the server's traffic and resource snapshot.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// UploadTensor serializes a tensor to DPT2 and uploads it, returning its
// content-addressed handle. Idempotent: the same tensor lands on the same ID.
func (c *Client) UploadTensor(ctx context.Context, t *repro.Irregular) (TensorInfo, error) {
	var buf bytes.Buffer
	if err := dataio.WriteTensor(&buf, t); err != nil {
		return TensorInfo{}, fmt.Errorf("service client: encode tensor: %w", err)
	}
	var out TensorInfo
	err := c.do(ctx, http.MethodPost, "/v1/tensors", buf.Bytes(), &out)
	return out, err
}

// decodeResult turns a DPF2 payload plus its wire metadata back into a
// Result. ReadResult deliberately drops run metadata from the binary form;
// the reply's meta carries it, so the round trip restores what a hit on the
// Engine's result cache would.
func decodeResult(raw []byte, meta ResultMeta) (*repro.Result, error) {
	res, err := dataio.ReadResult(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("service client: decode result: %w", err)
	}
	res.Fitness = meta.Fitness
	res.FitnessKind = parseFitnessKind(meta.FitnessKind)
	res.Iters = meta.Iters
	res.PreprocessedBytes = meta.PreprocessedBytes
	return res, nil
}

func parseFitnessKind(s string) repro.FitnessKind {
	switch s {
	case repro.FitnessTrue.String():
		return repro.FitnessTrue
	case repro.FitnessCompressed.String():
		return repro.FitnessCompressed
	default:
		return repro.FitnessUnset
	}
}

// Decompose runs one synchronous decomposition and decodes the factors. The
// raw reply (canonical Spec, metadata, DPF2 bytes) comes back alongside.
func (c *Client) Decompose(ctx context.Context, req DecomposeRequest) (*repro.Result, DecomposeResponse, error) {
	var out DecomposeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/decompose", req, &out); err != nil {
		return nil, DecomposeResponse{}, err
	}
	res, err := decodeResult(out.ResultDPF2, out.Meta)
	if err != nil {
		return nil, out, err
	}
	return res, out, nil
}

// SubmitJob enqueues an async decomposition and returns its handle.
func (c *Client) SubmitJob(ctx context.Context, req DecomposeRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// JobStatus polls one job.
func (c *Client) JobStatus(ctx context.Context, jobID string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(jobID), nil, &out)
	return out, err
}

// JobResult fetches a finished job's factors, patched with the job's run
// metadata. A still-pending job returns the result_not_ready APIError.
func (c *Client) JobResult(ctx context.Context, jobID string) (*repro.Result, error) {
	st, err := c.JobStatus(ctx, jobID)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(jobID)+"/result", nil, &raw); err != nil {
		return nil, err
	}
	meta := ResultMeta{}
	if st.Meta != nil {
		meta = *st.Meta
	}
	return decodeResult(raw, meta)
}

// CancelJob cancels (if still pending) and forgets a job.
func (c *Client) CancelJob(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(jobID), nil, nil)
}

// CreateStream opens a server-side streaming session.
func (c *Client) CreateStream(ctx context.Context, req StreamCreateRequest) (StreamInfo, error) {
	var out StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams", req, &out)
	return out, err
}

// StreamInfo polls one streaming session.
func (c *Client) StreamInfo(ctx context.Context, streamID string) (StreamInfo, error) {
	var out StreamInfo
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+url.PathEscape(streamID), nil, &out)
	return out, err
}

// Absorb feeds a session its next batch, shipped inline as DPT2 bytes.
func (c *Client) Absorb(ctx context.Context, streamID string, batch *repro.Irregular) (StreamInfo, error) {
	var buf bytes.Buffer
	if err := dataio.WriteTensor(&buf, batch); err != nil {
		return StreamInfo{}, fmt.Errorf("service client: encode batch: %w", err)
	}
	var out StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(streamID)+"/absorb", buf.Bytes(), &out)
	return out, err
}

// AbsorbTensor feeds a session a previously uploaded tensor's slices.
func (c *Client) AbsorbTensor(ctx context.Context, streamID, tensorID string) (StreamInfo, error) {
	var out StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(streamID)+"/absorb",
		AbsorbRequest{TensorID: tensorID}, &out)
	return out, err
}

// CheckpointStream forces an immediate durable checkpoint.
func (c *Client) CheckpointStream(ctx context.Context, streamID string) (StreamInfo, error) {
	var out StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams/"+url.PathEscape(streamID)+"/checkpoint", nil, &out)
	return out, err
}

// StreamResult fetches a session's current factors, patched with the
// session's current metadata.
func (c *Client) StreamResult(ctx context.Context, streamID string) (*repro.Result, error) {
	info, err := c.StreamInfo(ctx, streamID)
	if err != nil {
		return nil, err
	}
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/streams/"+url.PathEscape(streamID)+"/result", nil, &raw); err != nil {
		return nil, err
	}
	return decodeResult(raw, info.Meta)
}

// StreamResultBytes fetches the raw DPF2 bytes of a session's current
// factors — the form the bit-identity tests compare.
func (c *Client) StreamResultBytes(ctx context.Context, streamID string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+url.PathEscape(streamID)+"/result", nil, &raw)
	return raw, err
}
