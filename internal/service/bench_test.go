package service

import (
	"context"
	"testing"
	"time"

	"repro"
)

// BenchmarkServiceDecomposeRoundTrip measures the transport tax: the same
// decomposition through a loopback HTTP server versus directly on the
// Engine. The headline metrics are http-ms (full round trip: JSON request,
// admission queue, decomposition, DPF2+base64 response) and overhead-ms
// (round trip minus the in-process time — serialization + HTTP + queue
// only), which scripts/benchsmoke.sh holds under its latency budget.
func BenchmarkServiceDecomposeRoundTrip(b *testing.B) {
	ts := newTestServer(b, Config{}, repro.WithEngineThreads(2))
	ctx := context.Background()
	g := repro.NewRNG(5)
	ten := repro.LowRankTensor(g, []int{60, 70, 50, 65}, 40, 6, 0.02)
	info, err := ts.client.UploadTensor(ctx, ten)
	if err != nil {
		b.Fatal(err)
	}
	rank, seed, iters, tol := 6, uint64(9), 8, 0.0
	req := DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Rank: &rank, Seed: &seed, MaxIters: &iters, Tol: &tol},
	}
	opts := []repro.Option{
		repro.WithRank(rank), repro.WithSeed(seed), repro.WithMaxIters(iters), repro.WithTolerance(tol),
	}

	// Warm both paths once (pool arenas, HTTP connection) outside the timer.
	if _, err := ts.eng.Decompose(ctx, ten, opts...); err != nil {
		b.Fatal(err)
	}
	if _, _, err := ts.client.Decompose(ctx, req); err != nil {
		b.Fatal(err)
	}

	var direct, http time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := ts.eng.Decompose(ctx, ten, opts...); err != nil {
			b.Fatal(err)
		}
		direct += time.Since(start)

		start = time.Now()
		if _, _, err := ts.client.Decompose(ctx, req); err != nil {
			b.Fatal(err)
		}
		http += time.Since(start)
	}
	b.StopTimer()
	n := float64(b.N)
	directMS := direct.Seconds() * 1e3 / n
	httpMS := http.Seconds() * 1e3 / n
	b.ReportMetric(directMS, "direct-ms")
	b.ReportMetric(httpMS, "http-ms")
	b.ReportMetric(httpMS-directMS, "overhead-ms")
}
