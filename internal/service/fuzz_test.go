package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/dataio"
)

// fuzzServer builds one small shared server for the fuzz targets. The
// engine is single-threaded and the body cap small: the fuzz corpus probes
// the decode/validate surface, never a real decomposition.
func fuzzServer(f *testing.F) *httptest.Server {
	f.Helper()
	eng := repro.NewEngine(repro.WithEngineThreads(1))
	srv, err := New(Config{Engine: eng, MaxBodyBytes: 1 << 20})
	if err != nil {
		eng.Close()
		f.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	f.Cleanup(func() {
		hs.Close()
		eng.Close()
	})
	return hs
}

// post sends one fuzzed body and asserts the server's contract under
// arbitrary input: it answers (no hang, no crash — a handler panic surfaces
// as a 500 with an empty body through httptest, which the envelope check
// catches on picky inputs), and every non-2xx reply carries the documented
// error envelope.
func post(t *testing.T, hs *httptest.Server, path, contentType string, body []byte) {
	t.Helper()
	hc := &http.Client{Timeout: 30 * time.Second}
	resp, err := hc.Post(hs.URL+path, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("transport error on fuzzed body: %v", err)
	}
	// Read the whole reply, then close: a drained body lets the transport
	// reuse the connection — at fuzz throughput, undrained bodies exhaust
	// the ephemeral port range in TIME_WAIT within seconds.
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read reply on fuzzed body: %v", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		return
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("HTTP %d reply is not an error envelope: %v (%.120s)", resp.StatusCode, err, raw)
	}
	if er.Error.Code == "" || er.Error.Status != resp.StatusCode {
		t.Fatalf("HTTP %d carried malformed error body %+v", resp.StatusCode, er.Error)
	}
}

// FuzzTensorUpload drives arbitrary bytes through the hardened DPT2 upload
// path: every rejection must be a clean 400/413 envelope, every acceptance
// a well-formed TensorInfo.
func FuzzTensorUpload(f *testing.F) {
	hs := fuzzServer(f)
	var buf bytes.Buffer
	g := repro.NewRNG(1)
	if err := dataio.WriteTensor(&buf, repro.LowRankTensor(g, []int{8, 6}, 5, 2, 0.1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte("DPT2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		post(t, hs, "/v1/tensors", "application/octet-stream", data)
	})
}

// FuzzDecomposeRequest drives arbitrary JSON through the request decode and
// spec-resolution path of the sync, async, and stream-create endpoints. No
// tensor is ever uploaded, so no input reaches a real decomposition: the
// fuzzer exhausts the decode/validate surface alone.
func FuzzDecomposeRequest(f *testing.F) {
	hs := fuzzServer(f)
	f.Add([]byte(`{"tensor_id":"t-0000","spec":{"rank":4,"seed":7}}`))
	f.Add([]byte(`{"tensor_id":"","spec":{"full":{"method":"dpar2","rank":1,"max_iters":1}}}`))
	f.Add([]byte(`{"tensor_id":"t-0000","spec":{"rank":-1},"timeout_ms":-5}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"stream_id":"../x","tensor_id":"t-0000"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		post(t, hs, "/v1/decompose", "application/json", data)
		post(t, hs, "/v1/jobs", "application/json", data)
		post(t, hs, "/v1/streams", "application/json", data)
	})
}
