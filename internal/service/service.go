package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/dataio"
	"repro/internal/state"
)

// Defaults for Config's optional knobs.
const (
	DefaultMaxBodyBytes = int64(256 << 20) // 256 MiB: a ~32M-element DPT2 upload
	DefaultMaxTensors   = 64
)

// Config builds a Server.
type Config struct {
	// Engine serves every decomposition. Required; the caller keeps
	// ownership (Server.Close does not close it).
	Engine *repro.Engine

	// Stats, when non-nil, is served at /v1/stats. Pass the same value
	// registered on the Engine via repro.WithEngineMetrics so the snapshot
	// reflects served traffic.
	Stats *repro.EngineStats

	// StateDir roots the server's durable session state: stream checkpoints
	// (and their spec sidecars) live in its "streams" subdirectory, written
	// after create and after every absorb, and every checkpoint found there
	// is resumed when the server starts. Empty = sessions are memory-only.
	StateDir string

	// MaxBodyBytes caps every request body (default DefaultMaxBodyBytes);
	// an oversized body maps to 413. MaxTensors caps the uploaded-tensor
	// table (default DefaultMaxTensors), evicting least-recently-used.
	MaxBodyBytes int64
	MaxTensors   int
}

// Server is the HTTP front end over one repro.Engine. It implements
// http.Handler; see docs/SERVICE.md for the endpoint table and error
// taxonomy. Construct with New, serve with net/http, and Close before the
// process exits to checkpoint every durable stream.
type Server struct {
	eng      *repro.Engine
	stats    *repro.EngineStats
	stateDir string
	maxBody  int64
	mux      *http.ServeMux

	// mu guards the resource tables and seq. It is never held across a
	// blocking call: handlers look records up under mu, release it, then do
	// engine work (which may block on admission backpressure or the pool).
	mu      sync.Mutex
	tensors *tensorStore
	jobs    map[string]*jobRec
	streams map[string]*streamRec
	seq     uint64
}

// streamMeta is the sidecar persisted next to each stream checkpoint so a
// restarted server can echo the session's resolved Spec (the checkpoint
// itself carries the knobs in binary, but not in a form the service reads).
type streamMeta struct {
	Spec repro.Spec `json:"spec"`
}

// New builds a Server over cfg.Engine and, when cfg.StateDir is set, resumes
// every stream checkpointed there — each restored session is bit-identical
// to the one the previous process checkpointed, per Engine.ResumeStream. A
// checkpoint that fails to restore fails New: silently dropping a durable
// session would break the resume contract.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("service: Config.Engine is required")
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("service: MaxBodyBytes %d must be positive", cfg.MaxBodyBytes)
	}
	if cfg.MaxTensors == 0 {
		cfg.MaxTensors = DefaultMaxTensors
	}
	if cfg.MaxTensors < 0 {
		return nil, fmt.Errorf("service: MaxTensors %d must be positive", cfg.MaxTensors)
	}
	s := &Server{
		eng:      cfg.Engine,
		stats:    cfg.Stats,
		stateDir: cfg.StateDir,
		maxBody:  cfg.MaxBodyBytes,
		tensors:  newTensorStore(cfg.MaxTensors),
		jobs:     make(map[string]*jobRec),
		streams:  make(map[string]*streamRec),
	}
	if err := s.resumeStreams(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/tensors", s.handleTensorUpload)
	mux.HandleFunc("GET /v1/tensors/{id}", s.handleTensorGet)
	mux.HandleFunc("POST /v1/decompose", s.handleDecompose)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	mux.HandleFunc("POST /v1/streams/{id}/absorb", s.handleStreamAbsorb)
	mux.HandleFunc("POST /v1/streams/{id}/checkpoint", s.handleStreamCheckpoint)
	mux.HandleFunc("GET /v1/streams/{id}/result", s.handleStreamResult)
	s.mux = mux
}

// ServeHTTP caps the request body, then routes. The cap makes every decode
// path — JSON envelopes and binary tensor uploads alike — fail with 413
// instead of buffering an unbounded body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(w, r)
}

// Close checkpoints every durable stream (sessions survive a clean shutdown
// exactly like a kill: the checkpoint after each absorb already covers the
// crash case, this covers state only reachable through an explicit save).
// The Engine is the caller's; Close does not touch it.
func (s *Server) Close() error {
	s.mu.Lock()
	recs := make([]*streamRec, 0, len(s.streams))
	for _, rec := range s.streams {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	var errs []error
	for _, rec := range recs {
		rec.sem <- struct{}{}
		if rec.st != nil && rec.ckptPath != "" {
			if err := s.eng.SaveStream(rec.ckptPath, rec.st); err != nil {
				errs = append(errs, fmt.Errorf("stream %s: %w", rec.id, err))
			}
		}
		<-rec.sem
	}
	return errors.Join(errs...)
}

// ----- durable sessions ------------------------------------------------------

func (s *Server) streamDir() string { return filepath.Join(s.stateDir, "streams") }

// streamPaths returns the absolute checkpoint and sidecar paths for a
// session id ("" paths when the server has no state dir). Absolute, so the
// Engine's own stateDir rooting never re-resolves them.
func (s *Server) streamPaths(id string) (ckpt, meta string, err error) {
	if s.stateDir == "" {
		return "", "", nil
	}
	dir, err := filepath.Abs(s.streamDir())
	if err != nil {
		return "", "", fmt.Errorf("service: resolve state dir: %w", err)
	}
	return filepath.Join(dir, id+".ckpt"), filepath.Join(dir, id+".json"), nil
}

// resumeStreams restores every checkpoint under the state dir at startup.
func (s *Server) resumeStreams() error {
	if s.stateDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.streamDir(), 0o755); err != nil {
		return fmt.Errorf("service: create stream dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(s.streamDir(), "*.ckpt"))
	if err != nil {
		return fmt.Errorf("service: scan stream dir: %w", err)
	}
	for _, p := range paths {
		id := strings.TrimSuffix(filepath.Base(p), ".ckpt")
		if !validStreamID(id) {
			return fmt.Errorf("service: checkpoint %q is not a valid stream id", p)
		}
		ckpt, metaPath, err := s.streamPaths(id)
		if err != nil {
			return err
		}
		st, err := s.eng.ResumeStream(context.Background(), ckpt)
		if err != nil {
			return fmt.Errorf("service: resume stream %s: %w", id, err)
		}
		var meta streamMeta
		if raw, err := os.ReadFile(metaPath); err == nil {
			// Sidecar is best-effort display metadata; a missing or corrupt
			// one leaves the Spec zero without affecting the session itself.
			_ = json.Unmarshal(raw, &meta)
		}
		s.streams[id] = newStreamRec(id, meta.Spec, st, true, ckpt)
	}
	return nil
}

// checkpointLocked persists a session the caller holds the semaphore of.
// No-op on a memory-only server.
func (s *Server) checkpointLocked(rec *streamRec) error {
	if rec.ckptPath == "" {
		return nil
	}
	if err := s.eng.SaveStream(rec.ckptPath, rec.st); err != nil {
		return fmt.Errorf("service: checkpoint stream %s: %w", rec.id, err)
	}
	return nil
}

// ----- error taxonomy --------------------------------------------------------

// apiError is a handler-originated error with its wire body attached.
type apiError struct{ body ErrorBody }

func (e *apiError) Error() string { return e.body.Message }

func apiErrf(code string, status int, format string, args ...any) *apiError {
	return &apiError{body: ErrorBody{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}}
}

func errNotFound(kind, id string) *apiError {
	return apiErrf(CodeNotFound, http.StatusNotFound, "%s %q not found", kind, id)
}

// errBodyFor maps any error onto the wire taxonomy. Typed engine and codec
// errors take precedence; an unrecognized error is an opaque 500.
func errBodyFor(err error) ErrorBody {
	var ae *apiError
	var qe *repro.QuotaError
	var ce *dataio.CorruptError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &ae):
		return ae.body
	case errors.As(err, &qe):
		return ErrorBody{Code: CodeQuotaExhausted, Status: http.StatusTooManyRequests,
			Message: err.Error(), Tenant: qe.Tenant}
	case errors.Is(err, repro.ErrEngineClosed):
		return ErrorBody{Code: CodeEngineClosed, Status: http.StatusServiceUnavailable, Message: err.Error()}
	case errors.As(err, &mbe):
		return ErrorBody{Code: CodeBodyTooLarge, Status: http.StatusRequestEntityTooLarge, Message: err.Error()}
	case errors.As(err, &ce):
		return ErrorBody{Code: CodeCorruptInput, Status: http.StatusBadRequest, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return ErrorBody{Code: CodeDeadlineExceeded, Status: http.StatusGatewayTimeout, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// 499 is the de-facto "client closed request" status; the client is
		// usually gone, but poll views of a cancelled job also carry this.
		return ErrorBody{Code: CodeCanceled, Status: 499, Message: err.Error()}
	default:
		return ErrorBody{Code: CodeInternal, Status: http.StatusInternalServerError, Message: err.Error()}
	}
}

func writeError(w http.ResponseWriter, err error) {
	body := errBodyFor(err)
	if body.Status == http.StatusTooManyRequests || body.Status == http.StatusServiceUnavailable {
		// Quota windows clear as running jobs finish; "1" keeps a polite
		// client's retry loop tight without hammering.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, body.Status, ErrorResponse{Error: body})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeJSON strictly decodes one JSON document from the request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return apiErrf(CodeBadJSON, http.StatusBadRequest, "decode request: %v", err)
	}
	// Trailing garbage after the document is a malformed request, not data
	// to ignore.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return apiErrf(CodeBadJSON, http.StatusBadRequest, "request body has trailing data")
	}
	return nil
}

// ----- basics ----------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{}
	if s.stats != nil {
		snap := s.stats.SnapshotAll()
		resp.Engine = &snap
	}
	hits, misses := s.eng.CacheCounters()
	resp.Cache = CacheCounts{Hits: hits, Misses: misses}
	s.mu.Lock()
	resp.Tensors = s.tensors.len()
	for _, j := range s.jobs {
		switch j.status {
		case JobDone:
			resp.Jobs.Done++
		case JobFailed:
			resp.Jobs.Failed++
		default:
			resp.Jobs.Pending++
		}
	}
	resp.Streams = len(s.streams)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ----- tensors ---------------------------------------------------------------

func (s *Server) handleTensorUpload(w http.ResponseWriter, r *http.Request) {
	t, err := dataio.ReadTensor(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, mbe)
			return
		}
		writeError(w, err) // *dataio.CorruptError → 400
		return
	}
	s.mu.Lock()
	info, err := s.tensors.put(t)
	s.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTensorGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.tensors.get(id)
	s.mu.Unlock()
	if !ok {
		writeError(w, errNotFound("tensor", id))
		return
	}
	writeJSON(w, http.StatusOK, st.info)
}

// lookupTensor resolves a request's tensor id.
func (s *Server) lookupTensor(id string) (*repro.Irregular, error) {
	if id == "" {
		return nil, apiErrf(CodeBadRequest, http.StatusBadRequest, "tensor_id is required")
	}
	s.mu.Lock()
	st, ok := s.tensors.get(id)
	s.mu.Unlock()
	if !ok {
		return nil, errNotFound("tensor", id)
	}
	return st.tensor, nil
}

// ----- decomposition ---------------------------------------------------------

// resolveRequest turns a DecomposeRequest into the tensor it names and the
// canonical Spec it resolves to — the same resolution an in-process
// Engine.Decompose would perform, done eagerly so invalid parameters are a
// 400 before any queueing.
func (s *Server) resolveRequest(tensorID string, sr SpecRequest) (*repro.Irregular, repro.Spec, error) {
	t, err := s.lookupTensor(tensorID)
	if err != nil {
		return nil, repro.Spec{}, err
	}
	spec, err := s.eng.ResolveSpec(sr.Options()...)
	if err != nil {
		if errors.Is(err, repro.ErrEngineClosed) {
			return nil, repro.Spec{}, err
		}
		return nil, repro.Spec{}, apiErrf(CodeBadRequest, http.StatusBadRequest, "invalid spec: %v", err)
	}
	return t, spec, nil
}

// encodeResult serializes a result to DPF2 bytes.
func encodeResult(res *repro.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := dataio.WriteResult(&buf, res); err != nil {
		return nil, fmt.Errorf("service: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

// handleDecompose is the synchronous path: resolve, run through the Engine's
// admission-controlled queue (so tenant quotas and priorities govern HTTP
// traffic exactly like in-process Submit traffic), and reply with the
// factors. The request context bounds the whole job; TimeoutMillis tightens
// it.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	t, spec, err := s.resolveRequest(req.TensorID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	jr := <-s.eng.Submit(ctx, repro.Job{
		Tensor:   t,
		Options:  []repro.Option{repro.WithSpec(spec)},
		Tenant:   req.Tenant,
		Priority: req.Priority,
	})
	if jr.Err != nil {
		writeError(w, jr.Err)
		return
	}
	raw, err := encodeResult(jr.Result)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DecomposeResponse{Spec: spec, Meta: metaOf(jr.Result), ResultDPF2: raw})
}

// ----- async jobs ------------------------------------------------------------

func (s *Server) nextID(prefix string) string {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("%s-%d", prefix, s.seq)
	s.mu.Unlock()
	return id
}

// finishJob records a job's outcome and releases its context.
func (s *Server) finishJob(rec *jobRec, jr repro.JobResult) {
	s.mu.Lock()
	if jr.Err != nil {
		rec.status = JobFailed
		body := errBodyFor(jr.Err)
		rec.errBody = &body
	} else if raw, err := encodeResult(jr.Result); err != nil {
		rec.status = JobFailed
		body := errBodyFor(err)
		rec.errBody = &body
	} else {
		rec.status = JobDone
		meta := metaOf(jr.Result)
		rec.meta = &meta
		rec.resultDPF2 = raw
	}
	s.mu.Unlock()
	rec.cancel()
}

// handleJobSubmit is the async path: the job runs on a background context
// (it must outlive the submitting request), a handle comes back immediately,
// and poll/result endpoints serve the outcome. An immediate rejection —
// quota, closed engine — is an HTTP error with no job record, so a client's
// retry loop sees 429 exactly like the synchronous path's.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	t, spec, err := s.resolveRequest(req.TensorID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if req.TimeoutMillis > 0 {
		jobCtx, cancel = context.WithTimeout(context.Background(), time.Duration(req.TimeoutMillis)*time.Millisecond)
	} else {
		jobCtx, cancel = context.WithCancel(context.Background())
	}
	ch := s.eng.Submit(jobCtx, repro.Job{
		Tensor:   t,
		Options:  []repro.Option{repro.WithSpec(spec)},
		Tenant:   req.Tenant,
		Priority: req.Priority,
	})

	rec := &jobRec{id: s.nextID("job"), tenant: req.Tenant, spec: spec, cancel: cancel, status: JobPending}

	// Submit delivers quota and closed-engine rejections into the buffered
	// channel before returning, so this select turns them into an immediate
	// HTTP error instead of a stillborn job handle.
	select {
	case jr := <-ch:
		if jr.Err != nil {
			cancel()
			writeError(w, jr.Err)
			return
		}
		s.finishJob(rec, jr)
	default:
		go func() {
			jr := <-ch
			s.finishJob(rec, jr)
		}()
	}

	s.mu.Lock()
	s.jobs[rec.id] = rec
	view := rec.statusView()
	s.mu.Unlock()
	status := http.StatusAccepted
	if view.Status != JobPending {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

func (s *Server) lookupJob(id string) (*jobRec, error) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, errNotFound("job", id)
	}
	return rec, nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lookupJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	view := rec.statusView()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleJobResult serves a finished job's factors as raw DPF2 bytes.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lookupJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	status, raw, errBody := rec.status, rec.resultDPF2, rec.errBody
	s.mu.Unlock()
	switch status {
	case JobDone:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	case JobFailed:
		writeJSON(w, errBody.Status, ErrorResponse{Error: *errBody})
	default:
		writeError(w, apiErrf(CodeResultNotReady, http.StatusConflict, "job %s is still %s", rec.id, status))
	}
}

// handleJobDelete cancels a pending job (queued jobs release their tenant's
// quota without ever running) and forgets the record either way — the
// client-driven lifecycle that keeps the job table bounded.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.jobs[id]
	if ok {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, errNotFound("job", id))
		return
	}
	rec.cancel()
	w.WriteHeader(http.StatusNoContent)
}

// ----- streams ---------------------------------------------------------------

// isCtxErr reports whether err is ctx's own (non-nil) cancellation error —
// the cases that map to 499/504 rather than 400.
func isCtxErr(err error, ctx context.Context) bool {
	ce := ctx.Err()
	return ce != nil && errors.Is(err, ce)
}

// acquire takes a stream's semaphore, giving up if ctx dies first. The
// false return means the caller must not touch the session.
func acquire(ctx context.Context, rec *streamRec) bool {
	select {
	case rec.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func release(rec *streamRec) { <-rec.sem }

// handleStreamCreate opens a session. The record is published (with its
// semaphore held) before the initial decomposition runs, so a concurrent
// create on the same id conflicts instead of racing, and status/absorb
// requests for the new id queue behind the construction.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req StreamCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	t, spec, err := s.resolveRequest(req.TensorID, req.Spec)
	if err != nil {
		writeError(w, err)
		return
	}
	id := req.StreamID
	if id == "" {
		id = s.nextID("s")
	} else if !validStreamID(id) {
		writeError(w, apiErrf(CodeBadRequest, http.StatusBadRequest,
			"stream_id %q: need 1-64 chars of [A-Za-z0-9_-]", id))
		return
	}
	ckpt, metaPath, err := s.streamPaths(id)
	if err != nil {
		writeError(w, err)
		return
	}

	rec := newStreamRec(id, spec, nil, false, ckpt)
	rec.sem <- struct{}{} // construction in progress; absorb/status queue behind it
	s.mu.Lock()
	if _, exists := s.streams[id]; exists {
		s.mu.Unlock()
		writeError(w, apiErrf(CodeConflict, http.StatusConflict, "stream %q already exists", id))
		return
	}
	s.streams[id] = rec
	s.mu.Unlock()

	fail := func(err error) {
		s.mu.Lock()
		delete(s.streams, id)
		s.mu.Unlock()
		release(rec) // waiters see rec.st == nil and report not-found
		writeError(w, err)
	}

	st, err := s.eng.NewStream(r.Context(), t, repro.WithSpec(spec))
	if err != nil {
		if errors.Is(err, repro.ErrEngineClosed) || isCtxErr(err, r.Context()) {
			fail(err)
		} else {
			fail(apiErrf(CodeBadRequest, http.StatusBadRequest, "create stream: %v", err))
		}
		return
	}
	rec.st = st
	if metaPath != "" {
		err = state.WriteFileAtomic(metaPath, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(streamMeta{Spec: spec})
		})
		if err == nil {
			err = s.checkpointLocked(rec)
		}
		if err != nil {
			fail(err)
			return
		}
	}
	view := rec.infoView()
	release(rec)
	writeJSON(w, http.StatusCreated, view)
}

// lookupStream finds a session and acquires its semaphore. A record whose
// construction failed (or was deleted mid-wait) surfaces as not-found.
func (s *Server) lookupStream(ctx context.Context, id string) (*streamRec, error) {
	s.mu.Lock()
	rec, ok := s.streams[id]
	s.mu.Unlock()
	if !ok {
		return nil, errNotFound("stream", id)
	}
	if !acquire(ctx, rec) {
		return nil, ctx.Err()
	}
	if rec.st == nil {
		release(rec)
		return nil, errNotFound("stream", id)
	}
	return rec, nil
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lookupStream(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	view := rec.infoView()
	release(rec)
	writeJSON(w, http.StatusOK, view)
}

// absorbSlices extracts the batch an absorb request carries: a JSON
// envelope naming an uploaded tensor, or raw DPT2 bytes inline.
func (s *Server) absorbSlices(r *http.Request) ([]*repro.Matrix, error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req AbsorbRequest
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
		t, err := s.lookupTensor(req.TensorID)
		if err != nil {
			return nil, err
		}
		return t.Slices, nil
	}
	t, err := dataio.ReadTensor(r.Body)
	if err != nil {
		return nil, err // *dataio.CorruptError → 400, *http.MaxBytesError → 413
	}
	return t.Slices, nil
}

// handleStreamAbsorb feeds the session its next batch and checkpoints the
// advanced state before replying, so a 200 means the absorb is durable: a
// server killed at any point between absorbs restarts into exactly the
// state the last 200 acknowledged.
func (s *Server) handleStreamAbsorb(w http.ResponseWriter, r *http.Request) {
	slices, err := s.absorbSlices(r)
	if err != nil {
		writeError(w, err)
		return
	}
	rec, err := s.lookupStream(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer release(rec)
	if err := rec.st.AbsorbCtx(r.Context(), slices); err != nil {
		if isCtxErr(err, r.Context()) {
			writeError(w, err)
		} else {
			writeError(w, apiErrf(CodeBadRequest, http.StatusBadRequest, "absorb: %v", err))
		}
		return
	}
	rec.absorbs++
	if err := s.checkpointLocked(rec); err != nil {
		// The absorb is applied in memory but not durable; the client must
		// know the resume guarantee no longer covers it.
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec.infoView())
}

func (s *Server) handleStreamCheckpoint(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lookupStream(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer release(rec)
	if rec.ckptPath == "" {
		writeError(w, apiErrf(CodeBadRequest, http.StatusBadRequest,
			"server has no state dir; stream %s is memory-only", rec.id))
		return
	}
	if err := s.checkpointLocked(rec); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec.infoView())
}

// handleStreamResult serves the session's current factors as DPF2 bytes.
func (s *Server) handleStreamResult(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lookupStream(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	raw, err := encodeResult(rec.st.Result())
	release(rec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}
