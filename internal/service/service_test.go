package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/dataio"
)

// testServer bundles one Engine + Server + loopback listener + client.
type testServer struct {
	eng    *repro.Engine
	srv    *Server
	hs     *httptest.Server
	client *Client
}

func newTestServer(t testing.TB, cfg Config, engOpts ...repro.EngineOption) *testServer {
	t.Helper()
	eng := repro.NewEngine(engOpts...)
	cfg.Engine = eng
	srv, err := New(cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		eng.Close()
	})
	return &testServer{eng: eng, srv: srv, hs: hs, client: NewClient(hs.URL, nil)}
}

func testTensor(seed uint64) *repro.Irregular {
	g := repro.NewRNG(seed)
	return repro.LowRankTensor(g, []int{50, 60, 45, 55}, 30, 5, 0.02)
}

func resultBytes(t *testing.T, res *repro.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func intp(v int) *int         { return &v }
func u64p(v uint64) *uint64   { return &v }
func f64p(v float64) *float64 { return &v }

// TestDecomposeBitIdenticalOverHTTP is the e2e determinism contract: the
// same DPT2 bytes decomposed in-process and through the HTTP server produce
// bit-identical factored results — the transport adds nothing and loses
// nothing.
func TestDecomposeBitIdenticalOverHTTP(t *testing.T) {
	ts := newTestServer(t, Config{}, repro.WithEngineThreads(2))
	ctx := context.Background()
	ten := testTensor(11)

	direct, err := ts.eng.Decompose(ctx, ten,
		repro.WithRank(5), repro.WithSeed(9), repro.WithMaxIters(10), repro.WithTolerance(0))
	if err != nil {
		t.Fatal(err)
	}
	directRaw := resultBytes(t, direct)

	info, err := ts.client.UploadTensor(ctx, ten)
	if err != nil {
		t.Fatal(err)
	}
	res, resp, err := ts.client.Decompose(ctx, DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Rank: intp(5), Seed: u64p(9), MaxIters: intp(10), Tol: f64p(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.ResultDPF2, directRaw) {
		t.Fatal("HTTP decomposition differs from the in-process result bits")
	}
	if res.Fitness != direct.Fitness || res.Iters != direct.Iters {
		t.Fatalf("metadata differs: fitness %v vs %v, iters %d vs %d",
			res.Fitness, direct.Fitness, res.Iters, direct.Iters)
	}

	// The echoed Spec is the same canonical Spec in-process resolution gives.
	want, err := ts.eng.ResolveSpec(
		repro.WithRank(5), repro.WithSeed(9), repro.WithMaxIters(10), repro.WithTolerance(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Spec != want {
		t.Fatalf("echoed spec %+v, want %+v", resp.Spec, want)
	}

	// Replaying the echoed Spec verbatim (SpecRequest.Full) is equally
	// bit-identical — the client-side rerun contract.
	full := resp.Spec
	_, resp2, err := ts.client.Decompose(ctx, DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Full: &full},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp2.ResultDPF2, directRaw) {
		t.Fatal("replayed-Spec decomposition differs from the in-process result bits")
	}
}

// TestAsyncJobRoundTrip: submit, poll to completion, fetch the result, and
// check it matches the synchronous bits; DELETE then forgets the record.
func TestAsyncJobRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{}, repro.WithEngineThreads(2))
	ctx := context.Background()
	ten := testTensor(12)

	info, err := ts.client.UploadTensor(ctx, ten)
	if err != nil {
		t.Fatal(err)
	}
	req := DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Rank: intp(4), Seed: u64p(3), MaxIters: intp(8), Tol: f64p(0)},
	}
	_, sync, err := ts.client.Decompose(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	job, err := ts.client.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && job.Status == JobPending; i++ {
		time.Sleep(10 * time.Millisecond)
		if job, err = ts.client.JobStatus(ctx, job.JobID); err != nil {
			t.Fatal(err)
		}
	}
	if job.Status != JobDone {
		t.Fatalf("job stuck in %q", job.Status)
	}
	if job.Spec != sync.Spec {
		t.Fatalf("job spec %+v, want %+v", job.Spec, sync.Spec)
	}
	var raw []byte
	if err := ts.client.do(ctx, http.MethodGet, "/v1/jobs/"+job.JobID+"/result", nil, &raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, sync.ResultDPF2) {
		t.Fatal("async result differs from the synchronous bits")
	}
	if err := ts.client.CancelJob(ctx, job.JobID); err != nil {
		t.Fatal(err)
	}
	var ae *APIError
	if _, err := ts.client.JobStatus(ctx, job.JobID); !errors.As(err, &ae) || ae.Body.Code != CodeNotFound {
		t.Fatalf("deleted job still visible: %v", err)
	}
}

// TestQuotaExhaustion429ThenRetry is satellite (b)'s quota sequence: a
// burst over the tenant quota gets 429 with Retry-After; once the backlog
// clears, the same request succeeds.
func TestQuotaExhaustion429ThenRetry(t *testing.T) {
	ts := newTestServer(t, Config{},
		repro.WithEngineThreads(1),
		repro.WithJobConcurrency(1),
		repro.WithTenantQuota(1, 1),
	)
	ctx := context.Background()
	ten := testTensor(13)
	info, err := ts.client.UploadTensor(ctx, ten)
	if err != nil {
		t.Fatal(err)
	}
	// Tol 0 never converges early, so the iteration budget alone sets the
	// runtime: large enough that the first job is still running while the
	// burst lands (cancellation reclaims the time afterwards).
	slow := DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Rank: intp(4), MaxIters: intp(200000), Tol: f64p(0)},
		Tenant:   "burst",
	}

	// Quota (1,1): at most 1 running + 1 queued, so within the first 3
	// submits one must be rejected with 429.
	var rejected *APIError
	var handles []string
	for i := 0; i < 3 && rejected == nil; i++ {
		job, err := ts.client.SubmitJob(ctx, slow)
		if err == nil {
			handles = append(handles, job.JobID)
			continue
		}
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatal(err)
		}
		rejected = ae
	}
	if rejected == nil {
		t.Fatal("no 429 within 3 over-quota submits")
	}
	if rejected.Body.Status != http.StatusTooManyRequests || rejected.Body.Code != CodeQuotaExhausted {
		t.Fatalf("rejection was %+v, want 429 %s", rejected.Body, CodeQuotaExhausted)
	}
	if rejected.Body.Tenant != "burst" {
		t.Fatalf("rejection tenant %q, want burst", rejected.Body.Tenant)
	}
	if rejected.RetryAfter == "" {
		t.Fatal("429 missing Retry-After header")
	}

	// Drain the backlog (cancel frees the queued quota immediately; the
	// running job stops at its next inter-iteration ctx check)...
	for _, id := range handles {
		if err := ts.client.CancelJob(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// ...then the retry loop a polite client runs must succeed.
	fast := DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     SpecRequest{Rank: intp(4), MaxIters: intp(4), Tol: f64p(0)},
		Tenant:   "burst",
	}
	var lastErr error
	for i := 0; i < 200; i++ {
		if _, _, lastErr = ts.client.Decompose(ctx, fast); lastErr == nil {
			return
		}
		var ae *APIError
		if !errors.As(lastErr, &ae) || ae.Body.Status != http.StatusTooManyRequests {
			t.Fatal(lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("retry after quota drain never succeeded: %v", lastErr)
}

// TestStreamResumeBitIdentical is the session-durability contract at the
// service layer: a server abandoned without any shutdown hook (the hard-kill
// case — the after-absorb checkpoint is all that survives) restarts into a
// stream whose further absorbs are bit-identical to an uninterrupted one.
func TestStreamResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	ten := testTensor(21)
	g := repro.NewRNG(22)
	batch1 := repro.LowRankTensor(g, []int{40, 35}, 30, 5, 0.02)
	batch2 := repro.LowRankTensor(g, []int{45, 50}, 30, 5, 0.02)
	spec := SpecRequest{Rank: intp(5), Seed: u64p(7), MaxIters: intp(8), Tol: f64p(0)}

	// First server: create + one absorb, then vanish without Close.
	eng1 := repro.NewEngine(repro.WithEngineThreads(2))
	srv1, err := New(Config{Engine: eng1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1)
	c1 := NewClient(hs1.URL, nil)
	info, err := c1.UploadTensor(ctx, ten)
	if err != nil {
		t.Fatal(err)
	}
	created, err := c1.CreateStream(ctx, StreamCreateRequest{
		StreamID: "sess", TensorID: info.TensorID, Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !created.Durable || created.Resumed {
		t.Fatalf("fresh durable stream reported %+v", created)
	}
	if _, err := c1.Absorb(ctx, "sess", batch1); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	eng1.Close() // the process dies; no srv1.Close, no final checkpoint

	// Second server on the same state dir: the session is back.
	eng2 := repro.NewEngine(repro.WithEngineThreads(2))
	defer eng2.Close()
	srv2, err := New(Config{Engine: eng2, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	c2 := NewClient(hs2.URL, nil)

	resumed, err := c2.StreamInfo(ctx, "sess")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || !resumed.Durable {
		t.Fatalf("stream not marked resumed: %+v", resumed)
	}
	if resumed.K != ten.K()+batch1.K() {
		t.Fatalf("resumed K=%d, want %d", resumed.K, ten.K()+batch1.K())
	}
	if resumed.Spec.Rank != 5 || resumed.Spec.Seed != 7 {
		t.Fatalf("resumed spec lost: %+v", resumed.Spec)
	}
	if _, err := c2.Absorb(ctx, "sess", batch2); err != nil {
		t.Fatal(err)
	}
	served, err := c2.StreamResultBytes(ctx, "sess")
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same stream never interrupted, fully in-process.
	eng3 := repro.NewEngine(repro.WithEngineThreads(2))
	defer eng3.Close()
	st, err := eng3.NewStream(ctx, ten,
		repro.WithRank(5), repro.WithSeed(7), repro.WithMaxIters(8), repro.WithTolerance(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbCtx(ctx, batch1.Slices); err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbCtx(ctx, batch2.Slices); err != nil {
		t.Fatal(err)
	}
	if want := resultBytes(t, st.Result()); !bytes.Equal(served, want) {
		t.Fatal("resumed stream result differs from the uninterrupted stream bits")
	}
}

// TestErrorTaxonomy pins the wire mapping of every documented error class.
func TestErrorTaxonomy(t *testing.T) {
	ts := newTestServer(t, Config{}, repro.WithEngineThreads(1))
	ctx := context.Background()

	expect := func(t *testing.T, err error, status int, code string) *APIError {
		t.Helper()
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("error %v (%T) is not an APIError", err, err)
		}
		if ae.Body.Status != status || ae.Body.Code != code {
			t.Fatalf("got %d %s (%s), want %d %s", ae.Body.Status, ae.Body.Code, ae.Body.Message, status, code)
		}
		return ae
	}

	t.Run("not_found", func(t *testing.T) {
		_, err := ts.client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ts.client.JobStatus(ctx, "job-999")
		expect(t, err, http.StatusNotFound, CodeNotFound)
		_, err = ts.client.StreamInfo(ctx, "nope")
		expect(t, err, http.StatusNotFound, CodeNotFound)
		_, _, err = ts.client.Decompose(ctx, DecomposeRequest{TensorID: "t-missing"})
		expect(t, err, http.StatusNotFound, CodeNotFound)
	})

	t.Run("bad_json", func(t *testing.T) {
		resp, err := http.Post(ts.hs.URL+"/v1/decompose", "application/json",
			bytes.NewReader([]byte("{not json")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad JSON got HTTP %d", resp.StatusCode)
		}
	})

	t.Run("corrupt_tensor", func(t *testing.T) {
		resp, err := http.Post(ts.hs.URL+"/v1/tensors", "application/octet-stream",
			bytes.NewReader([]byte("DPX9 this is not a tensor")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("corrupt tensor got HTTP %d", resp.StatusCode)
		}
	})

	t.Run("bad_spec", func(t *testing.T) {
		info, err := ts.client.UploadTensor(ctx, testTensor(31))
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = ts.client.Decompose(ctx, DecomposeRequest{
			TensorID: info.TensorID, Spec: SpecRequest{Rank: intp(-2)},
		})
		expect(t, err, http.StatusBadRequest, CodeBadRequest)
	})

	t.Run("deadline_504", func(t *testing.T) {
		info, err := ts.client.UploadTensor(ctx, testTensor(31))
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = ts.client.Decompose(ctx, DecomposeRequest{
			TensorID:      info.TensorID,
			Spec:          SpecRequest{Rank: intp(4), MaxIters: intp(5000), Tol: f64p(0)},
			TimeoutMillis: 1,
		})
		expect(t, err, http.StatusGatewayTimeout, CodeDeadlineExceeded)
	})

	t.Run("stream_conflict", func(t *testing.T) {
		info, err := ts.client.UploadTensor(ctx, testTensor(31))
		if err != nil {
			t.Fatal(err)
		}
		req := StreamCreateRequest{StreamID: "dup", TensorID: info.TensorID,
			Spec: SpecRequest{Rank: intp(3), MaxIters: intp(2), Tol: f64p(0)}}
		if _, err := ts.client.CreateStream(ctx, req); err != nil {
			t.Fatal(err)
		}
		_, err = ts.client.CreateStream(ctx, req)
		expect(t, err, http.StatusConflict, CodeConflict)
	})

	t.Run("bad_stream_id", func(t *testing.T) {
		info, err := ts.client.UploadTensor(ctx, testTensor(31))
		if err != nil {
			t.Fatal(err)
		}
		_, err = ts.client.CreateStream(ctx, StreamCreateRequest{
			StreamID: "../escape", TensorID: info.TensorID})
		expect(t, err, http.StatusBadRequest, CodeBadRequest)
	})

	t.Run("result_not_ready", func(t *testing.T) {
		info, err := ts.client.UploadTensor(ctx, testTensor(31))
		if err != nil {
			t.Fatal(err)
		}
		job, err := ts.client.SubmitJob(ctx, DecomposeRequest{
			TensorID: info.TensorID,
			Spec:     SpecRequest{Rank: intp(4), MaxIters: intp(200000), Tol: f64p(0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if job.Status != JobPending {
			t.Fatalf("200k-iteration job already %q at submit", job.Status)
		}
		_, err = ts.client.JobResult(ctx, job.JobID)
		expect(t, err, http.StatusConflict, CodeResultNotReady)
		if err := ts.client.CancelJob(ctx, job.JobID); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEngineClosed503: every entry point on a closed engine is 503 with
// Retry-After (a rolling restart tells clients to come back, not give up).
func TestEngineClosed503(t *testing.T) {
	ts := newTestServer(t, Config{}, repro.WithEngineThreads(1))
	ctx := context.Background()
	info, err := ts.client.UploadTensor(ctx, testTensor(41))
	if err != nil {
		t.Fatal(err)
	}
	ts.eng.Close()
	_, _, err = ts.client.Decompose(ctx, DecomposeRequest{
		TensorID: info.TensorID, Spec: SpecRequest{Rank: intp(3)},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Body.Status != http.StatusServiceUnavailable || ae.Body.Code != CodeEngineClosed {
		t.Fatalf("closed engine surfaced as %v", err)
	}
	if ae.RetryAfter == "" {
		t.Fatal("503 missing Retry-After")
	}
}

// TestBodyCap413: a request body over the configured cap is 413, on the
// binary upload path and the JSON path alike.
func TestBodyCap413(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 4 << 10}, repro.WithEngineThreads(1))
	ctx := context.Background()
	_, err := ts.client.UploadTensor(ctx, testTensor(51)) // ~200KB of floats
	var ae *APIError
	if !errors.As(err, &ae) || ae.Body.Status != http.StatusRequestEntityTooLarge || ae.Body.Code != CodeBodyTooLarge {
		t.Fatalf("oversized upload surfaced as %v", err)
	}
	// Valid JSON the whole way, so the decoder keeps reading until the byte
	// cap trips (invalid bytes would 400 on syntax before reaching it).
	big := []byte(`{"tensor_id":"` + strings.Repeat("a", 8<<10) + `"}`)
	resp, err := http.Post(ts.hs.URL+"/v1/decompose", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON got HTTP %d", resp.StatusCode)
	}
}

// TestTensorStoreContentAddressedAndEvicting: same tensor → same ID; the
// table evicts LRU beyond its cap.
func TestTensorStoreContentAddressedAndEvicting(t *testing.T) {
	ts := newTestServer(t, Config{MaxTensors: 2}, repro.WithEngineThreads(1))
	ctx := context.Background()
	a, err := ts.client.UploadTensor(ctx, testTensor(61))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ts.client.UploadTensor(ctx, testTensor(61))
	if err != nil {
		t.Fatal(err)
	}
	if a.TensorID != a2.TensorID {
		t.Fatalf("same tensor got different ids: %s vs %s", a.TensorID, a2.TensorID)
	}
	if _, err := ts.client.UploadTensor(ctx, testTensor(62)); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.client.UploadTensor(ctx, testTensor(63)); err != nil {
		t.Fatal(err)
	}
	// a is the LRU victim now.
	st, err := ts.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tensors != 2 {
		t.Fatalf("tensor table has %d entries, cap 2", st.Tensors)
	}
	var raw TensorInfo
	err = ts.client.do(ctx, http.MethodGet, "/v1/tensors/"+a.TensorID, nil, &raw)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Body.Code != CodeNotFound {
		t.Fatalf("evicted tensor still served: %v", err)
	}
}

// TestStatsEndpoint: the traffic snapshot flows through with deterministic
// tenant ordering and the server's own resource counts.
func TestStatsEndpoint(t *testing.T) {
	stats := &repro.EngineStats{}
	ts := newTestServer(t, Config{Stats: stats},
		repro.WithEngineThreads(1), repro.WithEngineMetrics(stats))
	ctx := context.Background()
	info, err := ts.client.UploadTensor(ctx, testTensor(71))
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"zeta", "alpha"} {
		_, _, err := ts.client.Decompose(ctx, DecomposeRequest{
			TensorID: info.TensorID,
			Spec:     SpecRequest{Rank: intp(3), MaxIters: intp(2), Tol: f64p(0)},
			Tenant:   tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := ts.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine == nil {
		t.Fatal("stats reply missing engine snapshot")
	}
	if len(st.Engine.Tenants) != 2 || st.Engine.Tenants[0].Tenant != "alpha" || st.Engine.Tenants[1].Tenant != "zeta" {
		t.Fatalf("tenants not deterministic: %+v", st.Engine.Tenants)
	}
	if st.Tensors != 1 {
		t.Fatalf("tensor count %d, want 1", st.Tensors)
	}
	if err := ts.client.Health(ctx); err != nil {
		t.Fatal(err)
	}
}
