package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro"
	"repro/internal/dataio"
)

// This file is the server's in-memory resource tables. All three are plain
// structs guarded by the owning Server's mutex — none blocks while held, so
// handlers lock only around table reads/writes and do every engine call
// (which may block on admission backpressure or the pool) unlocked.

// ----- tensors ---------------------------------------------------------------

// storedTensor is one uploaded tensor: the parsed form plus its wire info.
type storedTensor struct {
	tensor *repro.Irregular
	info   TensorInfo
}

// tensorStore is a content-addressed tensor table with LRU eviction by
// count. Uploads are idempotent: the ID is the sha256 of the canonical DPT2
// serialization, so the same tensor re-uploaded lands on the same entry.
type tensorStore struct {
	max     int
	byID    map[string]*storedTensor
	order   []string // access order, oldest first
	evicted int64
}

func newTensorStore(max int) *tensorStore {
	return &tensorStore{max: max, byID: make(map[string]*storedTensor)}
}

// tensorID derives the content address of a parsed tensor. The canonical
// serialization (not the uploaded bytes) is hashed, so any byte stream that
// decodes to the same tensor gets the same ID.
func tensorID(t *repro.Irregular) (string, error) {
	h := sha256.New()
	if err := dataio.WriteTensor(h, t); err != nil {
		return "", fmt.Errorf("service: hash tensor: %w", err)
	}
	return "t-" + hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// put inserts (or refreshes) a tensor and returns its info, evicting the
// least-recently-used entries beyond the cap.
func (ts *tensorStore) put(t *repro.Irregular) (TensorInfo, error) {
	id, err := tensorID(t)
	if err != nil {
		return TensorInfo{}, err
	}
	if st, ok := ts.byID[id]; ok {
		ts.touch(id)
		return st.info, nil
	}
	info := TensorInfo{
		TensorID: id,
		K:        t.K(),
		J:        t.J,
		MaxRows:  t.MaxRows(),
		Elements: int64(t.NumElements()),
		Bytes:    t.SizeBytes(),
	}
	ts.byID[id] = &storedTensor{tensor: t, info: info}
	ts.order = append(ts.order, id)
	for len(ts.order) > ts.max {
		victim := ts.order[0]
		ts.order = ts.order[1:]
		delete(ts.byID, victim)
		ts.evicted++
	}
	return info, nil
}

// get looks a tensor up and marks it recently used.
func (ts *tensorStore) get(id string) (*storedTensor, bool) {
	st, ok := ts.byID[id]
	if ok {
		ts.touch(id)
	}
	return st, ok
}

func (ts *tensorStore) touch(id string) {
	for i, cur := range ts.order {
		if cur == id {
			ts.order = append(append(ts.order[:i:i], ts.order[i+1:]...), id)
			return
		}
	}
}

func (ts *tensorStore) len() int { return len(ts.byID) }

// ----- jobs ------------------------------------------------------------------

// jobRec is one async job. Status/meta/errBody/resultDPF2 are written once
// by the completion path (the submit handler on an immediate result, or the
// watcher goroutine) and read by the poll handlers, all under the Server's
// mutex. cancel releases the job's context; it is always called exactly once
// at completion, and may be called again by DELETE (contexts make that
// idempotent).
type jobRec struct {
	id     string
	tenant string
	spec   repro.Spec
	cancel func()

	status     string
	meta       *ResultMeta
	errBody    *ErrorBody
	resultDPF2 []byte
}

func (j *jobRec) statusView() JobStatus {
	return JobStatus{
		JobID:  j.id,
		Status: j.status,
		Tenant: j.tenant,
		Spec:   j.spec,
		Meta:   j.meta,
		Error:  j.errBody,
	}
}

// ----- streams ---------------------------------------------------------------

// streamRec is one server-side streaming session. The Server's mutex guards
// only the table slot; the session itself — the stream object and the
// counters beside it — is serialized by sem, a capacity-1 semaphore channel
// that absorb/checkpoint/status handlers acquire context-aware. A channel
// (not a mutex) because the holder blocks in AbsorbCtx on the shared pool:
// waiters must stay cancellable, and nothing may sleep on a lock.
type streamRec struct {
	id   string
	sem  chan struct{}
	spec repro.Spec

	st       *repro.StreamingDPar2
	absorbs  int64
	resumed  bool
	ckptPath string // absolute; "" when the server has no state dir
}

func newStreamRec(id string, spec repro.Spec, st *repro.StreamingDPar2, resumed bool, ckptPath string) *streamRec {
	return &streamRec{
		id:       id,
		sem:      make(chan struct{}, 1),
		spec:     spec,
		st:       st,
		resumed:  resumed,
		ckptPath: ckptPath,
	}
}

// infoView renders the status view. Callers hold the record's semaphore.
func (sr *streamRec) infoView() StreamInfo {
	res := sr.st.Result()
	return StreamInfo{
		StreamID: sr.id,
		Spec:     sr.spec,
		K:        sr.st.K(),
		Absorbs:  sr.absorbs,
		Resumed:  sr.resumed,
		Durable:  sr.ckptPath != "",
		Meta:     metaOf(res),
	}
}

// metaOf extracts the wire metadata of a result.
func metaOf(res *repro.Result) ResultMeta {
	return ResultMeta{
		Fitness:           res.Fitness,
		FitnessKind:       res.FitnessKind.String(),
		Iters:             res.Iters,
		PreprocessedBytes: res.PreprocessedBytes,
	}
}

// validStreamID enforces the documented name shape: 1–64 bytes of letters,
// digits, '_', '-' (it becomes a checkpoint file name, so path metacharacters
// must never pass).
func validStreamID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
