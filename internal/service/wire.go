// Package service is the HTTP/JSON front end over repro.Engine: the
// transport and session layers that turn the in-process decomposition
// library into a served system. It exposes tensor upload (the hardened
// binary DPT2 format of internal/dataio), synchronous decomposition, an
// async job queue with poll/result handles, server-side streaming sessions
// whose durability is the Engine's SaveStream/ResumeStream checkpoint
// contract, and the Engine's admission statistics — all under the typed
// error taxonomy of docs/SERVICE.md.
//
// Every request's deterministic parameters travel as a repro.Spec (the
// canonical serializable job description); results travel as binary DPF2
// payloads, so a decomposition served over HTTP is bit-identical to the
// same call made in process. See docs/SERVICE.md for the endpoint table,
// the Spec wire schema, and the stream stickiness/resume contract.
package service

import (
	"repro"
)

// SpecRequest is the wire form of a request's decomposition parameters:
// every field optional, absent fields falling back to the serving Engine's
// base configuration. Present fields compile to the corresponding repro
// functional option (and so validate exactly like an in-process call); the
// server echoes the fully resolved canonical repro.Spec back in responses,
// which a client may replay verbatim via Full for bit-identical reruns.
type SpecRequest struct {
	// Full, when non-nil, replaces the Engine's base entirely with a
	// complete canonical Spec (repro.WithSpec); the granular fields below
	// then apply on top of it.
	Full *repro.Spec `json:"full,omitempty"`

	Method       *string  `json:"method,omitempty"`
	Rank         *int     `json:"rank,omitempty"`
	MaxIters     *int     `json:"max_iters,omitempty"`
	Tol          *float64 `json:"tol,omitempty"`
	Seed         *uint64  `json:"seed,omitempty"`
	Oversample   *int     `json:"oversample,omitempty"`
	PowerIters   *int     `json:"power_iters,omitempty"`
	ShardRows    *int     `json:"shard_rows,omitempty"`
	Ridge        *float64 `json:"ridge,omitempty"`
	NonnegativeS *bool    `json:"nonneg_s,omitempty"`
}

// Options compiles the present fields into per-call options, in a fixed
// order (Full first, then the granular fields). Validation is deferred to
// the call the options are passed to, matching in-process behavior.
func (p SpecRequest) Options() []repro.Option {
	var opts []repro.Option
	if p.Full != nil {
		opts = append(opts, repro.WithSpec(*p.Full))
	}
	if p.Method != nil {
		opts = append(opts, repro.WithMethod(repro.MethodID(*p.Method)))
	}
	if p.Rank != nil {
		opts = append(opts, repro.WithRank(*p.Rank))
	}
	if p.MaxIters != nil {
		opts = append(opts, repro.WithMaxIters(*p.MaxIters))
	}
	if p.Tol != nil {
		opts = append(opts, repro.WithTolerance(*p.Tol))
	}
	if p.Seed != nil {
		opts = append(opts, repro.WithSeed(*p.Seed))
	}
	if p.Oversample != nil {
		opts = append(opts, repro.WithOversample(*p.Oversample))
	}
	if p.PowerIters != nil {
		opts = append(opts, repro.WithPowerIters(*p.PowerIters))
	}
	if p.ShardRows != nil {
		opts = append(opts, repro.WithShardRows(*p.ShardRows))
	}
	if p.Ridge != nil {
		opts = append(opts, repro.WithRidge(*p.Ridge))
	}
	if p.NonnegativeS != nil && *p.NonnegativeS {
		opts = append(opts, repro.WithNonnegativeS())
	}
	return opts
}

// TensorInfo describes one uploaded tensor. The ID is content-addressed
// (sha256 of the canonical DPT2 serialization), so re-uploading the same
// tensor — in any accepted encoding — yields the same ID.
type TensorInfo struct {
	TensorID string `json:"tensor_id"`
	K        int    `json:"k"`
	J        int    `json:"j"`
	MaxRows  int    `json:"max_rows"`
	Elements int64  `json:"elements"`
	Bytes    int64  `json:"bytes"`
}

// DecomposeRequest asks for one decomposition of a previously uploaded
// tensor — synchronously (POST /v1/decompose) or as an async job
// (POST /v1/jobs).
type DecomposeRequest struct {
	TensorID string      `json:"tensor_id"`
	Spec     SpecRequest `json:"spec"`

	// Tenant is the admission-quota bucket ("" = the default bucket) and
	// Priority the queue class, exactly as repro.Job documents them.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// TimeoutMillis bounds the whole job (queue wait + run); an exceeded
	// deadline maps to 504. 0 means no per-job deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// ResultMeta is the run metadata every completed decomposition reports.
type ResultMeta struct {
	Fitness           float64 `json:"fitness"`
	FitnessKind       string  `json:"fitness_kind"`
	Iters             int     `json:"iters"`
	PreprocessedBytes int64   `json:"preprocessed_bytes"`
}

// DecomposeResponse is the synchronous decomposition reply: the resolved
// canonical Spec, run metadata, and the factors as DPF2 bytes (base64 in
// JSON) — decode with dataio.ReadResult (or Client.Decompose, which does).
type DecomposeResponse struct {
	Spec       repro.Spec `json:"spec"`
	Meta       ResultMeta `json:"meta"`
	ResultDPF2 []byte     `json:"result_dpf2"`
}

// Job lifecycle states. Jobs are in-memory request state, not durable
// system state: a restarted server has no jobs (streams, by contrast,
// resume from their checkpoints).
const (
	JobPending = "pending" // queued or running
	JobDone    = "done"    // result available at /v1/jobs/{id}/result
	JobFailed  = "failed"  // Error says why
)

// JobStatus is the poll view of one async job.
type JobStatus struct {
	JobID  string     `json:"job_id"`
	Status string     `json:"status"`
	Tenant string     `json:"tenant,omitempty"`
	Spec   repro.Spec `json:"spec"`

	// Meta is set once Status is JobDone; Error once JobFailed.
	Meta  *ResultMeta `json:"meta,omitempty"`
	Error *ErrorBody  `json:"error,omitempty"`
}

// StreamCreateRequest opens a server-side streaming session seeded with an
// uploaded tensor's slices. StreamID may name the session (letters, digits,
// '_', '-'; 64 bytes max); when empty the server assigns one. On a server
// with a state directory the session is checkpointed after creation and
// after every absorb, and a restarted server resumes it bit-identically —
// see docs/SERVICE.md for the stickiness contract.
type StreamCreateRequest struct {
	StreamID string      `json:"stream_id,omitempty"`
	TensorID string      `json:"tensor_id"`
	Spec     SpecRequest `json:"spec"`
}

// AbsorbRequest absorbs an uploaded tensor's slices into a stream as its
// next batch. (POST /v1/streams/{id}/absorb also accepts raw DPT2 bytes as
// an application/octet-stream body instead of this JSON envelope.)
type AbsorbRequest struct {
	TensorID string `json:"tensor_id"`
}

// StreamInfo is the status view of one streaming session.
type StreamInfo struct {
	StreamID string     `json:"stream_id"`
	Spec     repro.Spec `json:"spec"`
	// K is the total number of slices absorbed so far (initial batch
	// included); Absorbs counts absorb calls on this server since start
	// or resume.
	K       int   `json:"k"`
	Absorbs int64 `json:"absorbs"`
	// Resumed reports the session was restored from a checkpoint when this
	// server started. Spec echoes the resolved Spec the session was created
	// with; it survives restarts through the checkpoint's sidecar metadata.
	Resumed bool       `json:"resumed"`
	Durable bool       `json:"durable"` // checkpointed to the state dir
	Meta    ResultMeta `json:"meta"`    // current factors' metadata
}

// StatsResponse is the /v1/stats reply: the Engine's served-traffic
// snapshot (absent when the server was built without an EngineStats hook),
// result-cache counters, and the server's own resource counts.
type StatsResponse struct {
	Engine  *repro.EngineStatsSnapshot `json:"engine,omitempty"`
	Cache   CacheCounts                `json:"cache"`
	Tensors int                        `json:"tensors"`
	Jobs    JobCounts                  `json:"jobs"`
	Streams int                        `json:"streams"`
}

// CacheCounts mirrors Engine.CacheCounters.
type CacheCounts struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// JobCounts breaks the in-memory job table down by lifecycle state.
type JobCounts struct {
	Pending int `json:"pending"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// ErrorBody is the uniform error payload: every non-2xx response carries
// {"error": ErrorBody}. Code is machine-readable (see docs/SERVICE.md for
// the taxonomy); Tenant is set on quota rejections.
type ErrorBody struct {
	Code    string `json:"code"`
	Status  int    `json:"status"`
	Message string `json:"message"`
	Tenant  string `json:"tenant,omitempty"`
}

// ErrorResponse is the envelope ErrorBody travels in.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// Error codes of the taxonomy (docs/SERVICE.md). Transport-level mappings:
// quota → 429 with Retry-After, engine closed → 503 with Retry-After,
// corrupt/invalid input → 400, oversized body → 413, missing resource →
// 404, deadline → 504.
const (
	CodeBadJSON          = "bad_json"
	CodeBadRequest       = "bad_request"
	CodeCorruptInput     = "corrupt_input"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeQuotaExhausted   = "quota_exhausted"
	CodeEngineClosed     = "engine_closed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeBodyTooLarge     = "body_too_large"
	CodeResultNotReady   = "result_not_ready"
	CodeInternal         = "internal"
)
