package compute

import "testing"

func TestArenaBucketForRange(t *testing.T) {
	var a Arena
	if b := a.bucketFor(1); b != 0 {
		t.Fatalf("bucketFor(1) = %d, want 0", b)
	}
	if b := a.bucketFor(MaxRecycleFloats()); b != arenaBuckets-1 {
		t.Fatalf("bucketFor(max) = %d, want %d", b, arenaBuckets-1)
	}
	if b := a.bucketFor(MaxRecycleFloats() + 1); b != -1 {
		t.Fatalf("bucketFor(max+1) = %d, want -1 (oversized)", b)
	}
}

func TestArenaOversizedPutIsNoOp(t *testing.T) {
	// The oversized contract, exercised through the test hook (so the test
	// does not need half-gigabyte allocations): requests above the largest
	// bucket are allocated fresh and Put drops them instead of caching.
	a := Arena{maxBitsOverride: 10} // largest "bucket": 1024 floats
	big := a.GetUninit(64, 32)      // 2048 floats: above the override
	if cap(big.Data) != 64*32 {
		t.Fatalf("oversized Get must allocate exact size, got cap %d", cap(big.Data))
	}
	big.Data[0] = 42
	a.Put(big) // documented no-op
	again := a.GetUninit(64, 32)
	if &again.Data[0] == &big.Data[0] {
		t.Fatal("oversized matrix was recycled; Put must be a no-op above the largest bucket")
	}

	// A matrix with exact bucket capacity (1024 = 2^10 floats) IS recycled.
	ok := a.GetUninit(32, 32)
	base := &ok.Data[:cap(ok.Data)][0]
	a.Put(ok)
	back := a.GetUninit(32, 32)
	if &back.Data[:cap(back.Data)][0] != base {
		t.Skip("sync.Pool did not hand the buffer back (GC ran); nothing to assert")
	}
}

func TestArenaOversizedPutKeepsShapeUsable(t *testing.T) {
	// Even when Put is a no-op the matrix stays a valid matrix — callers
	// treat Put as unconditional surrender either way.
	a := Arena{maxBitsOverride: 8}
	m := a.Get(100, 7) // 700 floats > 256: oversized under the override
	for i := range m.Data {
		m.Data[i] = 1
	}
	a.Put(m, nil) // nil tolerated alongside
	n := a.Get(100, 7)
	for _, v := range n.Data {
		if v != 0 {
			t.Fatal("Get after oversized Put returned dirty scratch")
		}
	}
}

func TestArenaDefaultShardScratchRecyclable(t *testing.T) {
	// The sharding threshold exists so stage-1 sketch scratch stays
	// recyclable: a 64k-row shard at sketch width 18 must land in a bucket.
	var a Arena
	const shard, width = 1 << 16, 18
	if b := a.bucketFor(shard * width); b < 0 {
		t.Fatalf("default shard sketch scratch (%d floats) falls outside the bucket range", shard*width)
	}
	m := a.GetUninit(shard, width)
	if cap(m.Data)&(cap(m.Data)-1) != 0 {
		t.Fatalf("shard scratch not bucket-backed: cap %d", cap(m.Data))
	}
	a.Put(m)
}
