package compute

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mat"
)

func TestPoolDoRunsAllTasks(t *testing.T) {
	for _, width := range []int{0, 1, 2, 4, 16} {
		p := NewPool(width)
		var count int64
		tasks := make([]func(), 37)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt64(&count, 1) }
		}
		p.Do(tasks...)
		if count != 37 {
			t.Fatalf("width=%d ran %d of 37 tasks", width, count)
		}
		p.Close()
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatal("nil pool width should be 1")
	}
	n := 0
	p.ParallelFor(5, func(i int) { n++ })
	if n != 5 {
		t.Fatalf("nil pool ran %d of 5", n)
	}
	p.Close() // must not panic
}

func TestParallelForExecutesAll(t *testing.T) {
	for _, width := range []int{1, 2, 4, 100} {
		p := NewPool(width)
		var count int64
		p.ParallelFor(37, func(i int) { atomic.AddInt64(&count, 1) })
		if count != 37 {
			t.Fatalf("width=%d executed %d of 37", width, count)
		}
		// n=0 must not hang or call fn.
		p.ParallelFor(0, func(i int) { t.Fatal("called for n=0") })
		p.Close()
	}
}

func TestParallelRangesCoversDisjointly(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	seen := make([]int32, 103)
	p.ParallelRanges(103, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestRunPartitionedExecutesAll(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	buckets := [][]int{{0, 3, 5}, {}, {1}, {2, 4, 6, 7}}
	var sum int64
	var count int64
	p.RunPartitioned(buckets, func(item int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&sum, int64(item))
	})
	if count != 8 || sum != 28 {
		t.Fatalf("count=%d sum=%d", count, sum)
	}
}

func TestNestedSubmissionDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count int64
	// Each outer task submits more work to the same pool; with two lanes
	// the inner submissions must degrade to inline execution, not block.
	p.ParallelFor(8, func(i int) {
		p.ParallelFor(8, func(j int) { atomic.AddInt64(&count, 1) })
	})
	if count != 64 {
		t.Fatalf("ran %d of 64 nested tasks", count)
	}
}

func TestClosedPoolRunsInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	var n int64
	p.ParallelFor(10, func(i int) { atomic.AddInt64(&n, 1) })
	if n != 10 {
		t.Fatalf("closed pool ran %d of 10", n)
	}
}

func TestPoolSharedAcrossGoroutines(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ParallelFor(100, func(i int) { atomic.AddInt64(&total, 1) })
		}()
	}
	wg.Wait()
	if total != 800 {
		t.Fatalf("concurrent submitters ran %d of 800", total)
	}
}

func TestArenaRecyclesBacking(t *testing.T) {
	var a Arena
	m := a.GetUninit(10, 10)
	m.Data[0] = 42
	base := &m.Data[:cap(m.Data)][0]
	a.Put(m)
	m2 := a.Get(10, 10)
	if &m2.Data[:cap(m2.Data)][0] != base {
		t.Skip("sync.Pool did not hand the buffer back (GC ran); nothing to assert")
	}
	if m2.Data[0] != 0 {
		t.Fatal("Get must return zeroed scratch")
	}
}

func TestArenaShapes(t *testing.T) {
	var a Arena
	for _, s := range [][2]int{{1, 1}, {3, 7}, {64, 1}, {100, 88}, {1, 4096}} {
		m := a.Get(s[0], s[1])
		if m.Rows != s[0] || m.Cols != s[1] || len(m.Data) != s[0]*s[1] {
			t.Fatalf("bad shape %dx%d: got %dx%d len %d", s[0], s[1], m.Rows, m.Cols, len(m.Data))
		}
		for _, v := range m.Data {
			if v != 0 {
				t.Fatal("Get returned non-zero scratch")
			}
		}
		a.Put(m)
	}
}

func TestArenaPutForeignMatrixIsDropped(t *testing.T) {
	var a Arena
	m := mat.New(3, 3) // cap 9: not a bucket size, must not be recycled
	a.Put(m, nil)      // nil must be tolerated too
	got := a.Get(3, 3)
	if len(got.Data) != 9 {
		t.Fatal("bad shape from arena after foreign Put")
	}
}

func TestArenaConcurrent(t *testing.T) {
	var a Arena
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := a.Get(1+g, 17)
				for j := range m.Data {
					m.Data[j] = float64(g)
				}
				a.Put(m)
			}
		}(g)
	}
	wg.Wait()
}

func TestWidthFromThreadsClampRule(t *testing.T) {
	// The single rule: threads <= 0 is serial, positive is verbatim.
	for threads, want := range map[int]int{-5: 1, 0: 1, 1: 1, 2: 2, 16: 16} {
		if got := WidthFromThreads(threads); got != want {
			t.Fatalf("WidthFromThreads(%d) = %d, want %d", threads, got, want)
		}
	}
	p := NewPoolFromThreads(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("NewPoolFromThreads(0) width %d, want serial (1)", p.Workers())
	}
}
