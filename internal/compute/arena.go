package compute

import (
	"math/bits"
	"sync"

	"repro/internal/mat"
)

// Arena bucket layout: bucket b recycles backing slices of capacity exactly
// 1<<(b+arenaMinBits) float64s. Requests above the largest bucket fall
// through to plain allocation and are not recycled.
const (
	arenaMinBits = 6  // smallest bucket: 64 floats (512 B)
	arenaMaxBits = 26 // largest bucket: 64M floats (512 MB)
	arenaBuckets = arenaMaxBits - arenaMinBits + 1
)

// MaxRecycleFloats returns the float64 capacity of the largest arena bucket.
// Requests above it are served by plain allocation and Put of such a matrix
// is a no-op, so hot-path scratch must stay at or below this bound to be
// recycled — the stage-1 sharding threshold (ShardRows · sketch width) is
// chosen to keep per-shard sketch buffers inside it, and tests assert that.
func MaxRecycleFloats() int { return 1 << arenaMaxBits }

// Arena is a size-bucketed free list of scratch matrices. Get hands out a
// matrix whose backing slice comes from the bucket of the next power-of-two
// capacity; Put returns it for reuse. The matrix headers are recycled along
// with their backing arrays, so a steady-state Get/Put cycle performs zero
// allocations.
//
// Requests larger than the biggest bucket (MaxRecycleFloats) are not
// recyclable: Get falls through to a plain exact-size allocation and Put of
// such a matrix is a documented no-op (the matrix is left to the garbage
// collector). Keep per-task scratch within the bucket range — e.g. by row
// sharding — when recycling matters.
//
// The zero value is ready to use and safe for concurrent use. Matrices
// handed to Put must no longer be referenced by the caller.
type Arena struct {
	buckets [arenaBuckets]sync.Pool

	// maxBitsOverride, when non-zero, lowers the largest usable bucket —
	// a test hook so the oversized-Put contract is exercisable without
	// half-gigabyte allocations. Zero means arenaMaxBits.
	maxBitsOverride int
}

var sharedArena Arena

// Shared returns the process-wide arena. Scratch cached here is reclaimed by
// the garbage collector under memory pressure (sync.Pool semantics), so
// holding it costs nothing between bursts of work.
func Shared() *Arena { return &sharedArena }

func (a *Arena) maxBits() int {
	if a.maxBitsOverride != 0 {
		return a.maxBitsOverride
	}
	return arenaMaxBits
}

// bucketFor returns the bucket index whose capacity holds n floats, or -1
// when n exceeds the largest bucket.
func (a *Arena) bucketFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < arenaMinBits {
		return 0
	}
	if b > a.maxBits() {
		return -1
	}
	return b - arenaMinBits
}

// Get returns a zeroed r-by-c scratch matrix.
func (a *Arena) Get(r, c int) *mat.Dense {
	m := a.GetUninit(r, c)
	m.Zero()
	return m
}

// GetUninit returns an r-by-c scratch matrix with undefined contents — for
// callers that overwrite every element (e.g. as the target of an *Into
// kernel).
func (a *Arena) GetUninit(r, c int) *mat.Dense {
	n := r * c
	b := a.bucketFor(n)
	if b < 0 {
		return mat.New(r, c)
	}
	if v := a.buckets[b].Get(); v != nil {
		m := v.(*mat.Dense)
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:n]
		return m
	}
	data := make([]float64, 1<<(b+arenaMinBits))
	return &mat.Dense{Rows: r, Cols: c, Data: data[:n]}
}

// Put returns scratch matrices to the arena. Matrices whose backing capacity
// is not an exact bucket size (i.e. not produced by Get/GetUninit) are
// dropped for the garbage collector instead; in particular, Put of a matrix
// above the largest bucket (MaxRecycleFloats) is a no-op by design — the
// arena never caches half-gigabyte one-offs.
func (a *Arena) Put(ms ...*mat.Dense) {
	for _, m := range ms {
		if m == nil {
			continue
		}
		c := cap(m.Data)
		b := a.bucketFor(c)
		if b < 0 || 1<<(b+arenaMinBits) != c {
			continue
		}
		m.Data = m.Data[:c]
		a.buckets[b].Put(m)
	}
}
