// Package compute is the shared compute runtime the rest of the repository
// runs on: a long-lived worker pool for all parallel phases and a
// size-bucketed workspace arena for scratch matrices.
//
// # Pool
//
// Pool owns a fixed set of worker goroutines created once (NewPool) and
// reused for every parallel region submitted to it — the per-call goroutine
// spawning the seed did (one wg.Add/go per chunk per matrix multiply, per ALS
// phase, per iteration) is gone. Work is expressed as either a task list
// (Do), an index range split into contiguous chunks (ParallelRanges,
// ParallelFor), or the greedy slice partition of Algorithm 4
// (RunPartitioned, with buckets from scheduler.Partition).
//
// Submission never blocks: the submitting goroutine always participates,
// running tasks itself and helping drain the queue while it waits. This
// makes nested parallelism safe — a pool worker that itself calls
// ParallelFor on the same pool makes progress instead of deadlocking. The
// pool contributes at most width-1 worker goroutines; with N goroutines
// submitting concurrently, total compute concurrency is at most
// width-1 + N (each submitter is its own extra lane).
//
// A nil *Pool is valid everywhere and means "run serially"; so does a pool of
// width 1. parafac2.Config.Threads is the single source of truth for pool
// width: decomposition entry points build a transient pool of that width when
// Config.Pool is nil, and callers that want to share one pool across many
// decompositions (servers, rank sweeps, streaming) set Config.Pool
// explicitly. There is no package-global parallelism knob.
//
// Pool additionally implements mat.Runner, so it can be handed directly to
// the blocked matrix kernels (MulInto, TMulInto, ...) of internal/mat.
//
// # Arena
//
// Arena recycles scratch matrices through size-bucketed free lists
// (sync.Pool per power-of-two capacity class). Hot loops Get a scratch
// matrix, compute into it with the *Into kernels, and Put it back; in steady
// state an ALS iteration allocates (almost) nothing. Arena is safe for
// concurrent use; the zero value is ready to use. Shared returns a
// process-wide arena for call sites without a natural owner.
package compute

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker pool. The zero value is not usable; call
// NewPool. A nil *Pool runs everything serially on the calling goroutine.
type Pool struct {
	width  int
	tasks  chan func()
	quit   chan struct{}
	closed atomic.Bool
}

// NewPool returns a pool of width n (n <= 0 means runtime.GOMAXPROCS(0) —
// the natural default for a pool sized explicitly). Widths derived from a
// thread count must go through WidthFromThreads/NewPoolFromThreads instead,
// where <= 0 means serial. A single submitter runs at most w tasks
// concurrently, counting itself. Call Close when done to release the worker
// goroutines; a pool is cheap enough to hold for the life of the process.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{width: n}
	if n > 1 {
		p.tasks = make(chan func(), 4*n)
		p.quit = make(chan struct{})
		// n-1 workers: the submitter is the n-th lane.
		for i := 0; i < n-1; i++ {
			go p.worker()
		}
	}
	return p
}

// WidthFromThreads maps a Config-style thread count to a pool width under
// the repository's single clamping rule: threads <= 0 means serial (width 1),
// any positive value is the width verbatim. This is the ONLY place the
// "Threads <= 0 is serial" convention is interpreted; NewPool's own n <= 0 =
// GOMAXPROCS default applies exclusively to pools a caller sizes explicitly,
// never to widths derived from a thread count. Every layer that turns a
// Config.Threads (or a -threads flag) into a pool must go through this
// helper or NewPoolFromThreads.
func WidthFromThreads(threads int) int {
	if threads < 1 {
		return 1
	}
	return threads
}

// NewPoolFromThreads builds a pool from a Config-style thread count under the
// WidthFromThreads rule (threads <= 0 → a serial width-1 pool, never
// GOMAXPROCS). Close it when done.
func NewPoolFromThreads(threads int) *Pool {
	return NewPool(WidthFromThreads(threads))
}

// Default returns a process-wide pool of width GOMAXPROCS, created on first
// use and never closed. It serves entry points that have no configured pool
// (e.g. the exported Fitness helper); decomposition loops should use the
// pool derived from Config instead.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

func (p *Pool) worker() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.quit:
			// Drain anything already queued so no submitted task is lost.
			for {
				select {
				case f := <-p.tasks:
					f()
				default:
					return
				}
			}
		}
	}
}

// Workers reports the pool width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.width < 1 {
		return 1
	}
	return p.width
}

// Close stops the worker goroutines. Close is idempotent. Work submitted
// after Close runs inline on the submitting goroutine, so a closed pool is
// still safe to use — just serial.
func (p *Pool) Close() {
	if p == nil || p.quit == nil {
		return
	}
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
	}
}

// Do runs every task and returns when all have completed. The submitting
// goroutine participates: it runs the first task itself and then *helps
// drain the queue* until its batch is done, so nested submission (a pool
// task calling Do on the same pool) makes progress instead of deadlocking,
// and a batch never waits on a queue nobody is reading.
func (p *Pool) Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if p == nil || p.tasks == nil || p.closed.Load() || len(tasks) == 1 {
		for _, f := range tasks {
			f()
		}
		return
	}
	remaining := int64(len(tasks))
	batchDone := make(chan struct{})
	finish := func() {
		if atomic.AddInt64(&remaining, -1) == 0 {
			close(batchDone)
		}
	}
	for _, f := range tasks[1:] {
		f := f
		wrapped := func() {
			defer finish()
			f()
		}
		select {
		case p.tasks <- wrapped:
		default:
			wrapped() // queue full: run inline rather than block
		}
	}
	func() {
		defer finish()
		tasks[0]()
	}()
	// Help until the batch completes. Draining may execute tasks from
	// other batches (harmless: they are self-contained funcs); it
	// guarantees someone is always consuming the queue.
	for {
		select {
		case <-batchDone:
			return
		case g := <-p.tasks:
			g()
		}
	}
}

// ParallelRanges splits [0, n) into at most Workers() contiguous chunks and
// runs fn on each. This is the scheduling primitive the blocked matrix
// kernels use (it implements mat.Runner).
func (p *Pool) ParallelRanges(n int, fn func(lo, hi int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	tasks := make([]func(), 0, w)
	for lo := 0; lo < n; lo += chunk {
		lo := lo
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	p.Do(tasks...)
}

// ParallelFor runs fn(i) for i in [0, n), contiguously chunked across the
// pool — the uniform allocation Section III-F of the paper uses for the
// iteration phase, where per-item cost no longer depends on I_k.
func (p *Pool) ParallelFor(n int, fn func(i int)) {
	p.ParallelRanges(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RunPartitioned executes fn(item) for every item, with each bucket's items
// processed sequentially by one task — the execution half of the Algorithm 4
// load balancing (buckets come from scheduler.Partition). fn must be safe
// for concurrent invocation across buckets.
func (p *Pool) RunPartitioned(buckets [][]int, fn func(item int)) {
	tasks := make([]func(), 0, len(buckets))
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		items := b
		tasks = append(tasks, func() {
			for _, it := range items {
				fn(it)
			}
		})
	}
	p.Do(tasks...)
}
