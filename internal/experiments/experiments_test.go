package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/parafac2"
	"repro/internal/rng"
)

func testConfig() parafac2.Config {
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 5
	cfg.MaxIters = 5
	cfg.Threads = 2
	return cfg
}

func TestLoadAllDatasets(t *testing.T) {
	ds := LoadAll(1, ScaleTest)
	if len(ds) != 8 {
		t.Fatalf("want 8 datasets, got %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if d.Tensor.K() == 0 || d.Tensor.J == 0 {
			t.Fatalf("%s: degenerate tensor", d.Name)
		}
		if d.PaperMaxI == 0 || d.PaperJ == 0 || d.PaperK == 0 {
			t.Fatalf("%s: missing paper dims", d.Name)
		}
	}
	for _, want := range []string{"FMA", "Urban", "US Stock", "KR Stock", "Activity", "Action", "Traffic", "PEMS-SF"} {
		if !names[want] {
			t.Fatalf("missing dataset %q", want)
		}
	}
}

func TestLoadByName(t *testing.T) {
	d, ok := Load(1, ScaleTest, "US Stock")
	if !ok || d.Name != "US Stock" {
		t.Fatal("Load by name failed")
	}
	if d.Sectors == nil {
		t.Fatal("stock dataset missing sectors")
	}
	if _, ok := Load(1, ScaleTest, "nope"); ok {
		t.Fatal("Load of unknown name succeeded")
	}
}

func TestFig1OnSubset(t *testing.T) {
	ds := LoadAll(2, ScaleTest)[:2]
	results, err := Fig1(context.Background(), ds, []int{4}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*1*4 {
		t.Fatalf("want 8 results, got %d", len(results))
	}
	for _, r := range results {
		if r.TotalTime <= 0 {
			t.Fatalf("%s/%s: no time recorded", r.Dataset, r.Method)
		}
		if r.Fitness < -0.5 || r.Fitness > 1.0001 {
			t.Fatalf("%s/%s: fitness %v out of range", r.Dataset, r.Method, r.Fitness)
		}
	}
	var buf bytes.Buffer
	Fig1Table(results).Fprint(&buf)
	if !strings.Contains(buf.String(), "DPar2") {
		t.Fatal("table missing method name")
	}
}

func TestFig9And10Tables(t *testing.T) {
	ds := LoadAll(3, ScaleTest)[:2]
	results, err := Fig9(context.Background(), ds, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Preprocessing only exists for DPar2 and RD-ALS.
	for _, r := range results {
		switch r.Method {
		case "DPar2", "RD-ALS":
			if r.PreprocessTime <= 0 {
				t.Fatalf("%s: no preprocess time", r.Method)
			}
			if r.PreprocessedBytes >= r.InputBytes {
				t.Fatalf("%s on %s: preprocessed %d >= input %d", r.Method, r.Dataset, r.PreprocessedBytes, r.InputBytes)
			}
		default:
			if r.PreprocessedBytes != r.InputBytes {
				t.Fatalf("%s: should iterate on raw input", r.Method)
			}
		}
	}
	var buf bytes.Buffer
	Fig9aTable(results).Fprint(&buf)
	Fig9bTable(results).Fprint(&buf)
	Fig10Table(results).Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 9(a)", "Fig. 9(b)", "Fig. 10", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig11aSizes(t *testing.T) {
	s := Fig11aSizes(10)
	if len(s) != 5 {
		t.Fatalf("want 5 sizes, got %d", len(s))
	}
	if s[0] != [3]int{100, 100, 100} || s[4] != [3]int{200, 200, 400} {
		t.Fatalf("scaled sizes wrong: %v", s)
	}
	if Fig11aSizes(0)[0] != [3]int{1000, 1000, 1000} {
		t.Fatal("unscaled sizes wrong")
	}
}

func TestFig11aSweepTiny(t *testing.T) {
	pts, err := Fig11a(context.Background(), 4, [][3]int{{20, 15, 6}, {25, 15, 8}}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	for _, p := range pts {
		if len(p.Times) != 4 {
			t.Fatalf("point missing methods: %v", p.Times)
		}
	}
	var buf bytes.Buffer
	Fig11aTable(pts).Fprint(&buf)
	if !strings.Contains(buf.String(), "20x15x6") {
		t.Fatal("table missing size row")
	}
}

func TestFig11bSweepTiny(t *testing.T) {
	pts, err := Fig11b(context.Background(), 5, 25, 20, 6, []int{3, 5}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Rank != 3 || pts[1].Rank != 5 {
		t.Fatalf("rank points wrong: %+v", pts)
	}
	var buf bytes.Buffer
	Fig11bTable(pts).Fprint(&buf)
	if !strings.Contains(buf.String(), "Fig. 11(b)") {
		t.Fatal("table title missing")
	}
}

func TestFig11cSweepTiny(t *testing.T) {
	pts, err := Fig11c(context.Background(), 6, 30, 20, 8, []int{1, 2}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if pts[0].Speedup < 0.99 || pts[0].Speedup > 1.01 {
		t.Fatalf("first point speedup should be 1.0, got %v", pts[0].Speedup)
	}
	var buf bytes.Buffer
	Fig11cTable(pts).Fprint(&buf)
	if !strings.Contains(buf.String(), "threads") {
		t.Fatal("table header missing")
	}
}

func TestFig8Table(t *testing.T) {
	ds := LoadAll(7, ScaleTest)
	var buf bytes.Buffer
	Fig8Table(ds).Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "US Stock") || !strings.Contains(out, "KR Stock") {
		t.Fatal("Fig. 8 table missing stock datasets")
	}
}

func TestTableII(t *testing.T) {
	ds := LoadAll(8, ScaleTest)
	var buf bytes.Buffer
	TableII(ds).Fprint(&buf)
	if !strings.Contains(buf.String(), "7997") {
		t.Fatal("Table II missing paper dimensions")
	}
}

func TestFig12CorrelationStructure(t *testing.T) {
	us, _ := Load(9, ScaleTest, "US Stock")
	corr, labels, err := Fig12(context.Background(), us, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if corr.Rows != 8 || len(labels) != 8 {
		t.Fatalf("corr %dx%d labels %d", corr.Rows, corr.Cols, len(labels))
	}
	// Price features must be strongly mutually correlated (they share the
	// same latent structure): check OPEN-CLOSE correlation is high.
	if corr.At(0, 3) < 0.5 {
		t.Fatalf("OPENING-CLOSING latent correlation %v; expected strong positive", corr.At(0, 3))
	}
	var buf bytes.Buffer
	Fig12Table("Fig. 12(a)", corr, labels).Fprint(&buf)
	if !strings.Contains(buf.String(), "OBV") {
		t.Fatal("Fig. 12 table missing labels")
	}
	pc := PriceIndicatorCorrelations(corr, labels)
	if len(pc) != 4 {
		t.Fatalf("expected 4 indicator summaries, got %d", len(pc))
	}
}

func TestTableIIIDiscovery(t *testing.T) {
	us, _ := Load(10, ScaleTest, "US Stock")
	// pick a target with a short listing so many stocks are comparable
	target := 0
	for i, s := range us.Tensor.Slices {
		if s.Rows < us.Tensor.Slices[target].Rows {
			target = i
		}
	}
	res, err := TableIII(context.Background(), us, testConfig(), target, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KNN) == 0 || len(res.RWR) == 0 {
		t.Fatal("empty rankings")
	}
	for _, n := range res.KNN {
		if n.Index == target {
			t.Fatal("kNN returned the query itself")
		}
	}
	var buf bytes.Buffer
	TableIIITable(res).Fprint(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatal("Table III title missing")
	}
	p := SectorPrecision(res, res.KNN)
	if p < 0 || p > 1 {
		t.Fatalf("sector precision %v out of range", p)
	}
}

func TestFig12MarketContrast(t *testing.T) {
	// The paper's Fig. 12 finding: OBV correlates positively with prices on
	// the US market but much less on the KR market. Our generators encode
	// this via volume-price coupling; the decomposition must surface it.
	// Latent correlations need enough stocks and history to stabilize, so
	// this test builds mid-size markets directly instead of ScaleTest.
	cfg := testConfig()
	cfg.Rank = 10
	cfg.MaxIters = 15
	usTen, usSec := datagen.StockTensor(rng.New(21), 50, 150, 700, datagen.DefaultUSMarket())
	krTen, krSec := datagen.StockTensor(rng.New(22), 50, 150, 700, datagen.DefaultKRMarket())
	us := Dataset{Name: "US Stock", Tensor: usTen, Sectors: usSec}
	kr := Dataset{Name: "KR Stock", Tensor: krTen, Sectors: krSec}
	usCorr, usLabels, err := Fig12(context.Background(), us, cfg)
	if err != nil {
		t.Fatal(err)
	}
	krCorr, krLabels, err := Fig12(context.Background(), kr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	usOBV := PriceIndicatorCorrelations(usCorr, usLabels)["OBV"]
	krOBV := PriceIndicatorCorrelations(krCorr, krLabels)["OBV"]
	if usOBV <= krOBV {
		t.Fatalf("expected US OBV-price correlation (%v) above KR (%v)", usOBV, krOBV)
	}
}
