package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table: a title, a header row, and data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row built from the given cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string   { return fmt.Sprintf("%.4f", v) }
func ms(v float64) string   { return fmt.Sprintf("%.1fms", v) }
func secs(v float64) string { return fmt.Sprintf("%.3fs", v) }
func mb(bytes int64) string {
	return fmt.Sprintf("%.2fMB", float64(bytes)/(1<<20))
}
