package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/parafac2"
	"repro/internal/rng"
	"repro/internal/rsvd"
)

// SizePoint is one measurement of the Fig. 11(a) tensor-size sweep.
type SizePoint struct {
	I, J, K  int
	Elements int64
	Times    map[string]time.Duration
}

// Fig11aSizes returns the sweep geometry. The paper uses
// {1000³ … 2000×2000×4000}; the default harness scales each dimension down
// by `shrink` (e.g. 10 → 100×100×100 … 200×200×400) to stay laptop-sized
// while preserving the relative growth between points.
func Fig11aSizes(shrink int) [][3]int {
	base := [][3]int{
		{1000, 1000, 1000},
		{1000, 1000, 2000},
		{2000, 1000, 2000},
		{2000, 2000, 2000},
		{2000, 2000, 4000},
	}
	if shrink <= 1 {
		return base
	}
	out := make([][3]int, len(base))
	for i, b := range base {
		out[i] = [3]int{b[0] / shrink, b[1] / shrink, b[2] / shrink}
	}
	return out
}

// Fig11a runs the tensor-size scalability sweep with all methods.
func Fig11a(ctx context.Context, seed uint64, sizes [][3]int, base parafac2.Config) ([]SizePoint, error) {
	var out []SizePoint
	for _, s := range sizes {
		g := rng.New(seed)
		ten := datagen.RandomIrregular(g, s[0], s[1], s[2])
		pt := SizePoint{
			I: s[0], J: s[1], K: s[2],
			Elements: int64(s[0]) * int64(s[1]) * int64(s[2]),
			Times:    map[string]time.Duration{},
		}
		for _, m := range Methods() {
			res, err := m.Run(ctx, ten, base)
			if err != nil {
				return nil, fmt.Errorf("fig11a %v %s: %w", s, m.Name, err)
			}
			pt.Times[m.Name] = res.TotalTime
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig11aTable renders the size sweep.
func Fig11aTable(points []SizePoint) *Table {
	t := &Table{
		Title:  "Fig. 11(a): running time vs tensor size",
		Header: []string{"IxJxK", "elements", "DPar2", "RD-ALS", "PARAFAC2-ALS", "SPARTan", "2nd-best/DPar2"},
		Notes:  []string{"paper: DPar2 is up to 15.3x faster; its slope is the lowest"},
	}
	for _, p := range points {
		dp := p.Times["DPar2"].Seconds()
		second := -1.0
		for name, d := range p.Times {
			if name == "DPar2" {
				continue
			}
			if second < 0 || d.Seconds() < second {
				second = d.Seconds()
			}
		}
		speed := "-"
		if dp > 0 {
			speed = fmt.Sprintf("%.1fx", second/dp)
		}
		t.AddRow(fmt.Sprintf("%dx%dx%d", p.I, p.J, p.K),
			fmt.Sprintf("%d", p.Elements),
			secs(dp), secs(p.Times["RD-ALS"].Seconds()),
			secs(p.Times["PARAFAC2-ALS"].Seconds()), secs(p.Times["SPARTan"].Seconds()),
			speed)
	}
	return t
}

// RankPoint is one measurement of the Fig. 11(b) rank sweep.
type RankPoint struct {
	Rank  int
	Times map[string]time.Duration
}

// Fig11b sweeps the target rank on a fixed synthetic tensor.
func Fig11b(ctx context.Context, seed uint64, i, j, k int, ranks []int, base parafac2.Config) ([]RankPoint, error) {
	g := rng.New(seed)
	ten := datagen.RandomIrregular(g, i, j, k)
	var out []RankPoint
	for _, r := range ranks {
		cfg := base
		cfg.Rank = r
		pt := RankPoint{Rank: r, Times: map[string]time.Duration{}}
		for _, m := range Methods() {
			res, err := m.Run(ctx, ten, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig11b rank %d %s: %w", r, m.Name, err)
			}
			pt.Times[m.Name] = res.TotalTime
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig11bTable renders the rank sweep.
func Fig11bTable(points []RankPoint) *Table {
	t := &Table{
		Title:  "Fig. 11(b): running time vs target rank",
		Header: []string{"rank", "DPar2", "RD-ALS", "PARAFAC2-ALS", "SPARTan", "2nd-best/DPar2"},
		Notes:  []string{"paper: up to 15.9x faster; gap narrows at high ranks (randomized SVD targets low rank)"},
	}
	for _, p := range points {
		dp := p.Times["DPar2"].Seconds()
		second := -1.0
		for name, d := range p.Times {
			if name == "DPar2" {
				continue
			}
			if second < 0 || d.Seconds() < second {
				second = d.Seconds()
			}
		}
		speed := "-"
		if dp > 0 {
			speed = fmt.Sprintf("%.1fx", second/dp)
		}
		t.AddRow(fmt.Sprintf("%d", p.Rank),
			secs(dp), secs(p.Times["RD-ALS"].Seconds()),
			secs(p.Times["PARAFAC2-ALS"].Seconds()), secs(p.Times["SPARTan"].Seconds()),
			speed)
	}
	return t
}

// ThreadPoint is one measurement of the Fig. 11(c) multi-core sweep.
type ThreadPoint struct {
	Threads int
	Time    time.Duration
	Speedup float64 // T1/TM
}

// Fig11c measures DPar2's running time for each thread count.
//
// On a single-core host the speedup cannot materialize in wall-clock time;
// the table still reports the measured times plus the scheduler's load
// imbalance, which is the controllable part of multi-core scaling.
func Fig11c(ctx context.Context, seed uint64, i, j, k int, threadCounts []int, base parafac2.Config) ([]ThreadPoint, error) {
	g := rng.New(seed)
	ten := datagen.RandomIrregular(g, i, j, k)
	var out []ThreadPoint
	var t1 time.Duration
	for _, th := range threadCounts {
		cfg := base
		cfg.Threads = th
		cfg.Pool = nil // the sweep measures pool width, so each run builds its own
		res, err := parafac2.DPar2Ctx(ctx, ten, cfg)
		if err != nil {
			return nil, err
		}
		if th == threadCounts[0] {
			t1 = res.TotalTime
		}
		sp := 0.0
		if res.TotalTime > 0 {
			sp = t1.Seconds() / res.TotalTime.Seconds()
		}
		out = append(out, ThreadPoint{Threads: th, Time: res.TotalTime, Speedup: sp})
	}
	return out, nil
}

// Fig11cTable renders the thread sweep.
func Fig11cTable(points []ThreadPoint) *Table {
	t := &Table{
		Title:  "Fig. 11(c): multi-core scalability of DPar2 (T_1 / T_M)",
		Header: []string{"threads", "time", "speedup"},
		Notes:  []string{"paper: near-linear, 5.5x at 10 threads (slope 0.56); single-core hosts show ~1.0x"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Threads), secs(p.Time.Seconds()), fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t
}

// TallSlicePoint is one measurement of the tall-slice sharding comparison.
type TallSlicePoint struct {
	ShardRows  int // the Config.ShardRows setting (negative = sharding off)
	Shards     int // shards of the tallest slice under that setting
	Preprocess time.Duration
	Total      time.Duration
	Fitness    float64
}

// TallSlice compares DPar2 with stage-1 sharding disabled against sharded
// runs on an irregular tensor dominated by one tall slice — the straggler
// regime the ShardRows knob exists for: stage-1 cost and scratch are
// proportional to the tallest slice, so sharding it spreads the sketch over
// the pool and bounds per-shard scratch. tallRows is the tallest slice's
// height; the remaining k-1 slices are an order of magnitude shorter.
func TallSlice(ctx context.Context, seed uint64, base parafac2.Config, tallRows, j, k int, shardRows []int) ([]TallSlicePoint, error) {
	g := rng.New(seed)
	rows := make([]int, k)
	rows[0] = tallRows
	for i := 1; i < k; i++ {
		rows[i] = tallRows/16 + g.Intn(tallRows/16+1)
	}
	ten := datagen.LowRank(g, rows, j, base.Rank, 0.01)

	sketch := rsvd.Options{Oversample: base.Oversample}.SketchWidth(base.Rank)
	var out []TallSlicePoint
	for _, sr := range shardRows {
		cfg := base
		cfg.ShardRows = sr
		res, err := parafac2.DPar2Ctx(ctx, ten, cfg)
		if err != nil {
			return nil, fmt.Errorf("tall-slice ShardRows %d: %w", sr, err)
		}
		out = append(out, TallSlicePoint{
			ShardRows:  sr,
			Shards:     rsvd.NumShards(tallRows, j, cfg.ShardRowsThreshold(), sketch),
			Preprocess: res.PreprocessTime,
			Total:      res.TotalTime,
			Fitness:    res.Fitness,
		})
	}
	return out, nil
}

// TallSliceTable renders the sharding comparison.
func TallSliceTable(points []TallSlicePoint) *Table {
	t := &Table{
		Title:  "Tall-slice sharding: stage-1 sketch of the tallest slice in row shards",
		Header: []string{"ShardRows", "shards", "preprocess", "total", "fitness"},
		Notes: []string{
			"sharding bounds stage-1 scratch by O(ShardRows·(R+s)) per shard and spreads one tall slice across the pool",
			"fitness is sketch-dependent but equivalent; on noise-free data the settings agree to ~1e-9 (shard equivalence tests)",
		},
	}
	for _, p := range points {
		label := fmt.Sprintf("%d", p.ShardRows)
		if p.ShardRows < 0 {
			label = "off"
		}
		t.AddRow(label, fmt.Sprintf("%d", p.Shards),
			secs(p.Preprocess.Seconds()), secs(p.Total.Seconds()),
			fmt.Sprintf("%.6f", p.Fitness))
	}
	return t
}

// Fig8Table reports the slice-height distribution of the two stock
// stand-ins: deciles of the sorted time lengths (the paper plots the sorted
// curve; deciles capture its shape).
func Fig8Table(datasets []Dataset) *Table {
	t := &Table{
		Title:  "Fig. 8: slice time-length distribution (sorted deciles)",
		Header: []string{"dataset", "p0", "p25", "p50", "p75", "p90", "p100"},
		Notes:  []string{"long tail: a few stocks listed far longer than the median (drives Alg. 4's load balancing)"},
	}
	for _, d := range datasets {
		if d.Sectors == nil {
			continue // stock datasets only
		}
		rows := d.Tensor.Rows()
		sorted := append([]int(nil), rows...)
		insertionSort(sorted)
		pick := func(q float64) int { return sorted[int(q*float64(len(sorted)-1))] }
		t.AddRow(d.Name,
			fmt.Sprintf("%d", pick(0)), fmt.Sprintf("%d", pick(0.25)),
			fmt.Sprintf("%d", pick(0.5)), fmt.Sprintf("%d", pick(0.75)),
			fmt.Sprintf("%d", pick(0.9)), fmt.Sprintf("%d", pick(1)))
	}
	return t
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
