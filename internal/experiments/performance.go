package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/parafac2"
	"repro/internal/tensor"
)

// Method pairs a display name (the paper's legend label) with a
// context-aware runner, in the order the paper's legends use.
type Method struct {
	Name string
	Run  func(context.Context, *tensor.Irregular, parafac2.Config) (*parafac2.Result, error)
}

// displayNames maps registry names to the paper's legend labels.
var displayNames = map[string]string{
	"dpar2":   "DPar2",
	"rd-als":  "RD-ALS",
	"als":     "PARAFAC2-ALS",
	"spartan": "SPARTan",
}

// Methods returns the compared decomposers, resolved from the parafac2
// method registry in registration (= legend) order.
func Methods() []Method {
	names := parafac2.MethodNames()
	out := make([]Method, 0, len(names))
	for _, name := range names {
		impl, ok := parafac2.Lookup(name)
		if !ok {
			continue
		}
		label := displayNames[name]
		if label == "" {
			label = name
		}
		out = append(out, Method{Name: label, Run: impl.Decompose})
	}
	return out
}

// MethodResult is one (dataset, method, rank) measurement.
type MethodResult struct {
	Dataset string
	Method  string
	Rank    int

	TotalTime      time.Duration
	PreprocessTime time.Duration
	IterTime       time.Duration
	TimePerIter    time.Duration
	Iters          int
	Fitness        float64

	InputBytes        int64
	PreprocessedBytes int64
}

func runOne(ctx context.Context, d Dataset, m Method, cfg parafac2.Config) (MethodResult, error) {
	res, err := m.Run(ctx, d.Tensor, cfg)
	if err != nil {
		return MethodResult{}, fmt.Errorf("%s on %s: %w", m.Name, d.Name, err)
	}
	perIter := time.Duration(0)
	if res.Iters > 0 {
		perIter = res.IterTime / time.Duration(res.Iters)
	}
	return MethodResult{
		Dataset:           d.Name,
		Method:            m.Name,
		Rank:              cfg.Rank,
		TotalTime:         res.TotalTime,
		PreprocessTime:    res.PreprocessTime,
		IterTime:          res.IterTime,
		TimePerIter:       perIter,
		Iters:             res.Iters,
		Fitness:           res.Fitness,
		InputBytes:        d.Tensor.SizeBytes(),
		PreprocessedBytes: res.PreprocessedBytes,
	}, nil
}

// Fig1 measures the running time vs fitness trade-off of all methods on all
// datasets for the given target ranks (the paper uses 10, 15, 20). The
// context cancels the sweep between (and inside) runs.
func Fig1(ctx context.Context, datasets []Dataset, ranks []int, base parafac2.Config) ([]MethodResult, error) {
	var out []MethodResult
	for _, d := range datasets {
		for _, r := range ranks {
			cfg := base
			cfg.Rank = r
			for _, m := range Methods() {
				mr, err := runOne(ctx, d, m, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, mr)
			}
		}
	}
	return out, nil
}

// Fig1Table renders Fig. 1 measurements as a table.
func Fig1Table(results []MethodResult) *Table {
	t := &Table{
		Title:  "Fig. 1: total running time vs fitness (per dataset, per rank)",
		Header: []string{"dataset", "rank", "method", "total", "fitness", "iters"},
		Notes: []string{
			"paper's claim: DPar2 gives the best trade-off, up to 6.0x faster at comparable fitness",
		},
	}
	for _, r := range results {
		t.AddRow(r.Dataset, fmt.Sprintf("%d", r.Rank), r.Method,
			secs(r.TotalTime.Seconds()), f4(r.Fitness), fmt.Sprintf("%d", r.Iters))
	}
	return t
}

// Fig9 measures preprocessing time (DPar2 vs RD-ALS, Fig. 9a) and time per
// iteration of every method (Fig. 9b) at the base rank.
func Fig9(ctx context.Context, datasets []Dataset, base parafac2.Config) ([]MethodResult, error) {
	var out []MethodResult
	for _, d := range datasets {
		for _, m := range Methods() {
			mr, err := runOne(ctx, d, m, base)
			if err != nil {
				return nil, err
			}
			out = append(out, mr)
		}
	}
	return out, nil
}

// Fig9aTable renders preprocessing times (methods without a preprocessing
// phase are shown as n/a, as in the paper).
func Fig9aTable(results []MethodResult) *Table {
	t := &Table{
		Title:  "Fig. 9(a): preprocessing time",
		Header: []string{"dataset", "DPar2", "RD-ALS", "speedup"},
		Notes:  []string{"paper: DPar2 preprocesses up to 10.0x faster than RD-ALS"},
	}
	byDS := groupByDataset(results)
	for _, ds := range datasetOrder(results) {
		g := byDS[ds]
		dp := g["DPar2"].PreprocessTime.Seconds()
		rd := g["RD-ALS"].PreprocessTime.Seconds()
		speed := "-"
		if dp > 0 {
			speed = fmt.Sprintf("%.1fx", rd/dp)
		}
		t.AddRow(ds, secs(dp), secs(rd), speed)
	}
	return t
}

// Fig9bTable renders per-iteration times of all methods.
func Fig9bTable(results []MethodResult) *Table {
	t := &Table{
		Title:  "Fig. 9(b): time per iteration",
		Header: []string{"dataset", "DPar2", "RD-ALS", "PARAFAC2-ALS", "SPARTan", "best-other/DPar2"},
		Notes:  []string{"paper: DPar2 iterates up to 10.3x faster than the second best"},
	}
	byDS := groupByDataset(results)
	for _, ds := range datasetOrder(results) {
		g := byDS[ds]
		dp := g["DPar2"].TimePerIter.Seconds() * 1000
		rd := g["RD-ALS"].TimePerIter.Seconds() * 1000
		als := g["PARAFAC2-ALS"].TimePerIter.Seconds() * 1000
		sp := g["SPARTan"].TimePerIter.Seconds() * 1000
		other := rd
		if als < other {
			other = als
		}
		if sp < other {
			other = sp
		}
		speed := "-"
		if dp > 0 {
			speed = fmt.Sprintf("%.1fx", other/dp)
		}
		t.AddRow(ds, ms(dp), ms(rd), ms(als), ms(sp), speed)
	}
	return t
}

// Fig10Table renders the preprocessed-data footprint versus input size
// (PARAFAC2-ALS and SPARTan iterate on the raw input, as in the paper).
func Fig10Table(results []MethodResult) *Table {
	t := &Table{
		Title:  "Fig. 10: size of preprocessed data",
		Header: []string{"dataset", "input", "DPar2", "RD-ALS", "input/DPar2"},
		Notes:  []string{"paper: DPar2's preprocessed data is up to 201x smaller than the input"},
	}
	byDS := groupByDataset(results)
	for _, ds := range datasetOrder(results) {
		g := byDS[ds]
		in := g["DPar2"].InputBytes
		dp := g["DPar2"].PreprocessedBytes
		rd := g["RD-ALS"].PreprocessedBytes
		ratio := "-"
		if dp > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(in)/float64(dp))
		}
		t.AddRow(ds, mb(in), mb(dp), mb(rd), ratio)
	}
	return t
}

func groupByDataset(results []MethodResult) map[string]map[string]MethodResult {
	out := map[string]map[string]MethodResult{}
	for _, r := range results {
		if out[r.Dataset] == nil {
			out[r.Dataset] = map[string]MethodResult{}
		}
		out[r.Dataset][r.Method] = r
	}
	return out
}

func datasetOrder(results []MethodResult) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			order = append(order, r.Dataset)
		}
	}
	return order
}

// TableII summarizes the generated datasets next to the paper's dimensions.
func TableII(datasets []Dataset) *Table {
	t := &Table{
		Title:  "Table II: datasets (generated stand-in vs paper)",
		Header: []string{"dataset", "max I_k", "J", "K", "paper max I_k", "paper J", "paper K", "summary"},
	}
	for _, d := range datasets {
		t.AddRow(d.Name,
			fmt.Sprintf("%d", d.Tensor.MaxRows()),
			fmt.Sprintf("%d", d.Tensor.J),
			fmt.Sprintf("%d", d.Tensor.K()),
			fmt.Sprintf("%d", d.PaperMaxI),
			fmt.Sprintf("%d", d.PaperJ),
			fmt.Sprintf("%d", d.PaperK),
			d.Summary)
	}
	return t
}
