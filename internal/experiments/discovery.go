package experiments

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/stats"
)

// fig12Features are the 8 features whose pairwise correlations Fig. 12
// visualizes: four price features and four representative indicators.
var fig12Features = []string{"OPENING", "HIGHEST", "LOWEST", "CLOSING", "ATR14", "STOCH14", "OBV", "MACD"}

// Fig12 decomposes a stock tensor and returns the Pearson-correlation
// submatrix between the latent vectors (rows of V) of the 8 selected
// features, plus the feature labels.
func Fig12(ctx context.Context, d Dataset, cfg parafac2.Config) (*mat.Dense, []string, error) {
	res, err := parafac2.DPar2Ctx(ctx, d.Tensor, cfg)
	if err != nil {
		return nil, nil, err
	}
	names := datagen.StockFeatureNames()
	index := map[string]int{}
	for i, n := range names {
		index[n] = i
	}
	sel := make([]int, len(fig12Features))
	for i, f := range fig12Features {
		j, ok := index[f]
		if !ok {
			return nil, nil, fmt.Errorf("fig12: feature %q not in stock feature set", f)
		}
		sel[i] = j
	}
	// Rows of V are per-feature latent vectors; build the selected block.
	sub := mat.New(len(sel), res.V.Cols)
	for i, j := range sel {
		copy(sub.Row(i), res.V.Row(j))
	}
	return stats.CorrelationMatrix(sub), fig12Features, nil
}

// Fig12Table renders a correlation matrix as the heatmap's numeric table.
func Fig12Table(title string, corr *mat.Dense, labels []string) *Table {
	t := &Table{
		Title:  title,
		Header: append([]string{""}, labels...),
		Notes: []string{
			"paper: on US data ATR/OBV correlate positively with prices; on KR data they are near-uncorrelated",
			"STOCH is negatively correlated and MACD weakly correlated with prices on both markets",
		},
	}
	for i, l := range labels {
		row := make([]string, 0, len(labels)+1)
		row = append(row, l)
		for j := range labels {
			row = append(row, fmt.Sprintf("%+.2f", corr.At(i, j)))
		}
		t.AddRow(row...)
	}
	return t
}

// PriceIndicatorCorrelations extracts the average correlation of each
// indicator (ATR14, OBV, STOCH14, MACD) with the four price features — the
// scalar summary of the Fig. 12 pattern used by tests and EXPERIMENTS.md.
func PriceIndicatorCorrelations(corr *mat.Dense, labels []string) map[string]float64 {
	idx := map[string]int{}
	for i, l := range labels {
		idx[l] = i
	}
	prices := []string{"OPENING", "HIGHEST", "LOWEST", "CLOSING"}
	out := map[string]float64{}
	for _, ind := range []string{"ATR14", "STOCH14", "OBV", "MACD"} {
		var sum float64
		for _, p := range prices {
			sum += corr.At(idx[ind], idx[p])
		}
		out[ind] = sum / float64(len(prices))
	}
	return out
}

// TableIIIResult holds the two similar-stock rankings of Table III.
type TableIIIResult struct {
	Target     int
	KNN        []stats.Neighbor
	RWR        []stats.Neighbor
	SectorOf   []int
	Comparable []int // stocks sharing the target's time range
}

// TableIII reproduces the similar-stock discovery: decompose the stock
// tensor, compute Equation-(10) similarities between stocks whose U_k share
// the target's shape, then rank by k-NN and by RWR over the similarity
// graph. target picks the query stock (the paper uses Microsoft).
func TableIII(ctx context.Context, d Dataset, cfg parafac2.Config, target, topK int, gamma float64) (*TableIIIResult, error) {
	res, err := parafac2.DPar2Ctx(ctx, d.Tensor, cfg)
	if err != nil {
		return nil, err
	}
	k := d.Tensor.K()
	targetRows := d.Tensor.Slices[target].Rows

	// Only stocks with the same time range are comparable (Equation 10 is
	// defined for same-shaped U matrices). The paper constructs the tensor
	// over a common window; we emulate by padding comparison to stocks with
	// at least the target's rows, truncated to the window. UkRows
	// materializes just the trailing window from the factored form —
	// O(window·R²) per stock instead of the O(I_k·R²) a full U_k costs.
	us := make([]*mat.Dense, k)
	var comparable []int
	for kk := 0; kk < k; kk++ {
		rows := d.Tensor.Slices[kk].Rows
		if rows < targetRows {
			continue
		}
		us[kk] = res.UkRows(kk, rows-targetRows, rows) // align on trailing window
		comparable = append(comparable, kk)
	}

	// Similarity graph over comparable stocks (0 elsewhere).
	sim := mat.New(k, k)
	for a := 0; a < len(comparable); a++ {
		for b := a + 1; b < len(comparable); b++ {
			i, j := comparable[a], comparable[b]
			s := stats.ExpSimilarity(us[i], us[j], gamma)
			sim.Set(i, j, s)
			sim.Set(j, i, s)
		}
	}

	knn := stats.KNN(sim, target, topK)
	scores := stats.RWR(sim, target, stats.DefaultRWRConfig())
	rwr := stats.TopK(scores, topK, func(i int) bool { return i == target })

	return &TableIIIResult{
		Target:     target,
		KNN:        knn,
		RWR:        rwr,
		SectorOf:   d.Sectors,
		Comparable: comparable,
	}, nil
}

// TableIIITable renders the two rankings side by side.
func TableIIITable(r *TableIIIResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Table III: top-%d stocks similar to stock #%d (sector %d)",
			len(r.KNN), r.Target, sectorOf(r, r.Target)),
		Header: []string{"rank", "kNN stock", "kNN sector", "kNN score", "RWR stock", "RWR sector", "RWR score"},
		Notes: []string{
			"paper: both rankings are dominated by the target's sector; RWR surfaces multi-hop neighbors kNN misses",
		},
	}
	for i := range r.KNN {
		kn := r.KNN[i]
		rw := stats.Neighbor{Index: -1}
		if i < len(r.RWR) {
			rw = r.RWR[i]
		}
		t.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("#%d", kn.Index), fmt.Sprintf("%d", sectorOf(r, kn.Index)), f3(kn.Score),
			fmt.Sprintf("#%d", rw.Index), fmt.Sprintf("%d", sectorOf(r, rw.Index)), f3(rw.Score))
	}
	return t
}

func sectorOf(r *TableIIIResult, i int) int {
	if i < 0 || r.SectorOf == nil || i >= len(r.SectorOf) {
		return -1
	}
	return r.SectorOf[i]
}

// SectorPrecision returns the fraction of a ranking that shares the
// target's sector — the quantitative version of Table III's "mostly
// Technology-sector" observation.
func SectorPrecision(r *TableIIIResult, ranking []stats.Neighbor) float64 {
	if len(ranking) == 0 {
		return 0
	}
	target := sectorOf(r, r.Target)
	hits := 0
	for _, n := range ranking {
		if sectorOf(r, n.Index) == target {
			hits++
		}
	}
	return float64(hits) / float64(len(ranking))
}
