// Package experiments regenerates every table and figure of the DPar2
// paper's evaluation (Section IV) on synthetic stand-in datasets. Each
// runner returns structured rows so callers (cmd/experiments, benchmarks,
// tests) can inspect or print them.
//
// The stand-ins are scaled-down versions of Table II sized to run on a
// laptop-class machine in seconds-to-minutes; the *shape* of the paper's
// results (who wins, roughly by how much, where the crossovers are) is the
// reproduction target, not absolute wall-clock numbers.
package experiments

import (
	"repro/internal/datagen"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is one evaluation dataset: a generated irregular tensor plus the
// Table II metadata it mirrors.
type Dataset struct {
	Name    string
	Summary string
	Tensor  *tensor.Irregular
	// PaperMaxI, PaperJ, PaperK are the real dataset's dimensions from
	// Table II, recorded for the report.
	PaperMaxI, PaperJ, PaperK int
	// Sectors is set for stock datasets (used by Table III).
	Sectors []int
}

// Scale selects how large the generated stand-ins are.
type Scale int

const (
	// ScaleTest is small enough for unit tests (sub-second per method).
	ScaleTest Scale = iota
	// ScaleBench is the default for the experiment harness.
	ScaleBench
)

// LoadAll generates the eight evaluation datasets of Table II.
func LoadAll(seed uint64, sc Scale) []Dataset {
	g := rng.New(seed)
	type dims struct{ k, loI, hiI, j int }
	var fma, urban, us, kr, activity, action, traffic, pems dims
	switch sc {
	case ScaleTest:
		fma = dims{8, 30, 70, 64}
		urban = dims{8, 20, 50, 64}
		us = dims{10, 60, 200, 88}
		kr = dims{8, 50, 150, 88}
		activity = dims{6, 30, 80, 40}
		action = dims{6, 30, 90, 40}
		traffic = dims{8, 40, 0, 32}
		pems = dims{8, 30, 0, 48}
	default: // ScaleBench
		fma = dims{60, 80, 220, 256}
		urban = dims{60, 40, 120, 256}
		us = dims{80, 100, 900, 88}
		kr = dims{60, 80, 650, 88}
		activity = dims{32, 80, 250, 120}
		action = dims{40, 90, 320, 120}
		traffic = dims{60, 160, 0, 96}
		pems = dims{44, 96, 0, 144}
	}

	usTen, usSectors := datagen.StockTensor(g.Split(), us.k, us.loI, us.hiI, datagen.DefaultUSMarket())
	krTen, krSectors := datagen.StockTensor(g.Split(), kr.k, kr.loI, kr.hiI, datagen.DefaultKRMarket())

	return []Dataset{
		{
			Name: "FMA", Summary: "music (time, frequency, song)",
			Tensor:    datagen.SpectrogramTensor(g.Split(), fma.k, fma.loI, fma.hiI, fma.j),
			PaperMaxI: 704, PaperJ: 2049, PaperK: 7997,
		},
		{
			Name: "Urban", Summary: "urban sound (time, frequency, sound)",
			Tensor:    datagen.SpectrogramTensor(g.Split(), urban.k, urban.loI, urban.hiI, urban.j),
			PaperMaxI: 174, PaperJ: 2049, PaperK: 8455,
		},
		{
			Name: "US Stock", Summary: "stock (date, feature, stock)",
			Tensor:    usTen,
			PaperMaxI: 7883, PaperJ: 88, PaperK: 4742,
			Sectors: usSectors,
		},
		{
			Name: "KR Stock", Summary: "stock (date, feature, stock)",
			Tensor:    krTen,
			PaperMaxI: 5270, PaperJ: 88, PaperK: 3664,
			Sectors: krSectors,
		},
		{
			Name: "Activity", Summary: "video feature (frame, feature, video)",
			Tensor:    datagen.VideoFeatureTensor(g.Split(), activity.k, activity.loI, activity.hiI, activity.j, 5),
			PaperMaxI: 553, PaperJ: 570, PaperK: 320,
		},
		{
			Name: "Action", Summary: "video feature (frame, feature, video)",
			Tensor:    datagen.VideoFeatureTensor(g.Split(), action.k, action.loI, action.hiI, action.j, 8),
			PaperMaxI: 936, PaperJ: 570, PaperK: 567,
		},
		{
			Name: "Traffic", Summary: "traffic (sensor, frequency, time)",
			Tensor:    datagen.TrafficTensor(g.Split(), traffic.k, traffic.loI, traffic.j),
			PaperMaxI: 2033, PaperJ: 96, PaperK: 1084,
		},
		{
			Name: "PEMS-SF", Summary: "traffic (station, timestamp, day)",
			Tensor:    datagen.TrafficTensor(g.Split(), pems.k, pems.loI, pems.j),
			PaperMaxI: 963, PaperJ: 144, PaperK: 440,
		},
	}
}

// Load returns the named dataset (case-sensitive, as printed by Table II).
func Load(seed uint64, sc Scale, name string) (Dataset, bool) {
	for _, d := range LoadAll(seed, sc) {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
