package dataio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func sampleTensor() *tensor.Irregular {
	g := rng.New(1)
	return datagen.LowRank(g, []int{20, 35, 27}, 12, 3, 0.1)
}

func TestTensorRoundTrip(t *testing.T) {
	ten := sampleTensor()
	var buf bytes.Buffer
	if err := WriteTensor(&buf, ten); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != ten.K() || back.J != ten.J {
		t.Fatalf("shape changed: K=%d J=%d", back.K(), back.J)
	}
	for k := range ten.Slices {
		if !back.Slices[k].EqualApprox(ten.Slices[k], 0) {
			t.Fatalf("slice %d not bit-identical", k)
		}
	}
}

func TestTensorFileRoundTrip(t *testing.T) {
	ten := sampleTensor()
	path := filepath.Join(t.TempDir(), "tensor.dpt2")
	if err := SaveTensor(path, ten); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Norm2() != ten.Norm2() {
		t.Fatal("norm changed across file round trip")
	}
}

func TestTensorSpecialValues(t *testing.T) {
	// NaN and ±Inf must survive bit-exactly.
	// Note: the Go constant literal -0.0 is +0.0; Copysign makes a real
	// negative zero.
	m := mat.NewFromData(2, 2, []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)})
	ten := tensor.MustIrregular([]*mat.Dense{m})
	var buf bytes.Buffer
	if err := WriteTensor(&buf, ten); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Slices[0]
	if !math.IsNaN(got.At(0, 0)) || !math.IsInf(got.At(0, 1), 1) || !math.IsInf(got.At(1, 0), -1) {
		t.Fatal("special values corrupted")
	}
	if math.Signbit(got.At(1, 1)) != true {
		t.Fatal("-0.0 lost its sign")
	}
}

func TestReadTensorRejectsGarbage(t *testing.T) {
	if _, err := ReadTensor(bytes.NewReader([]byte("not a tensor file at all"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, err := ReadTensor(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected short-read error")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	if err := WriteTensor(&buf, sampleTensor()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTensor(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestResultRoundTrip(t *testing.T) {
	ten := sampleTensor()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 10
	cfg.Threads = 2
	res, err := parafac2.DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.H.EqualApprox(res.H, 0) || !back.V.EqualApprox(res.V, 0) {
		t.Fatal("H/V not identical")
	}
	for k := 0; k < res.K(); k++ {
		if !back.Qk(k).EqualApprox(res.Qk(k), 0) {
			t.Fatalf("Q_%d not identical", k)
		}
		for i := range res.S[k] {
			if back.S[k][i] != res.S[k][i] {
				t.Fatalf("S_%d not identical", k)
			}
		}
	}
	// The restored factors must reconstruct as well as the originals.
	if got := parafac2.Fitness(ten, back); math.Abs(got-res.Fitness) > 1e-12 {
		t.Fatalf("restored fitness %v != %v", got, res.Fitness)
	}
}

// TestResultRoundTripKeepsFactoredForm: a DPar2 result is saved in factored
// form and restored in factored form — the lazy-Q contract (and the compact
// A-plus-R×R footprint) survives serialization, with the factors themselves
// bit-identical.
func TestResultRoundTripKeepsFactoredForm(t *testing.T) {
	ten := sampleTensor()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 10
	cfg.Threads = 2
	res, err := parafac2.DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Factored() {
		t.Fatal("DPar2 result is not factored")
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Factored() {
		t.Fatal("factored result came back dense")
	}
	if back.FitnessKind != parafac2.FitnessUnset {
		t.Fatalf("loaded result has FitnessKind %v, want unset", back.FitnessKind)
	}
	a0, z0, p0, _ := res.FactoredQ()
	a1, z1, p1, _ := back.FactoredQ()
	for k := range a0 {
		if !a1[k].EqualApprox(a0[k], 0) || !z1[k].EqualApprox(z0[k], 0) || !p1[k].EqualApprox(p0[k], 0) {
			t.Fatalf("factored components of slice %d not bit-identical", k)
		}
	}
}

// TestResultRoundTripDense: eager (baseline) results still use the dense
// layout and restore dense.
func TestResultRoundTripDense(t *testing.T) {
	ten := sampleTensor()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 5
	cfg.Threads = 1
	res, err := parafac2.ALS(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factored() {
		t.Fatal("ALS result unexpectedly factored")
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Factored() {
		t.Fatal("dense result came back factored")
	}
	for k := 0; k < res.K(); k++ {
		if !back.Qk(k).EqualApprox(res.Qk(k), 0) {
			t.Fatalf("Q_%d not identical", k)
		}
	}
}

// TestReadResultV1BackCompat: version-1 result files (the pre-factored dense
// layout without the qform field) must still load.
func TestReadResultV1BackCompat(t *testing.T) {
	ten := sampleTensor()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 5
	cfg.Threads = 1
	res, err := parafac2.DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Materialize()

	// Hand-craft the v1 layout: magic | 1 | K | J | R | I_1..I_K | H | V |
	// S | dense Q_1..Q_K.
	var buf bytes.Buffer
	k := res.K()
	buf.WriteString(resultMagic)
	header := []uint64{1, uint64(k), uint64(res.V.Rows), uint64(res.H.Rows)}
	for i := 0; i < k; i++ {
		header = append(header, uint64(res.SliceRows(i)))
	}
	if err := writeUints(&buf, header); err != nil {
		t.Fatal(err)
	}
	payload := [][]float64{res.H.Data, res.V.Data}
	for _, s := range res.S {
		payload = append(payload, s)
	}
	for i := 0; i < k; i++ {
		payload = append(payload, res.Qk(i).Data)
	}
	for _, p := range payload {
		if err := writeFloats(&buf, p); err != nil {
			t.Fatal(err)
		}
	}

	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Factored() {
		t.Fatal("v1 file must restore a dense result")
	}
	if !back.H.EqualApprox(res.H, 0) || !back.V.EqualApprox(res.V, 0) {
		t.Fatal("H/V not identical from v1 file")
	}
	for i := 0; i < k; i++ {
		if !back.Qk(i).EqualApprox(res.Qk(i), 0) {
			t.Fatalf("Q_%d not identical from v1 file", i)
		}
	}
}

func TestResultFileRoundTrip(t *testing.T) {
	ten := sampleTensor()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 5
	cfg.Threads = 1
	res, err := parafac2.DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "factors.dpf2")
	if err := SaveResult(path, res); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResult(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadResultRejectsTensorFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensor(&buf, sampleTensor()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResult(&buf); err == nil {
		t.Fatal("expected magic mismatch reading tensor as result")
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	m := mat.NewFromData(2, 3, []float64{1, 2.5, -3, 0, 1e-9, 7})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "1,2.5,-3") {
		t.Fatalf("first line %q", lines[0])
	}
	if strings.Count(lines[1], ",") != 2 {
		t.Fatalf("second line %q", lines[1])
	}
}
