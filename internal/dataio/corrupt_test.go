package dataio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/parafac2"
	"repro/internal/state"
)

// mustCorrupt asserts that decoding failed with a *CorruptError.
func mustCorrupt(t *testing.T, err error, ctx string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected error, got nil", ctx)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: expected *CorruptError, got %T: %v", ctx, err, err)
	}
}

func encodeSampleTensor(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTensor(&buf, sampleTensor()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeSampleResult(t *testing.T) []byte {
	t.Helper()
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 5
	res, err := parafac2.DPar2(sampleTensor(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadTensorTruncatedAtEveryOffset cuts a valid checksummed tensor file
// at every byte offset and asserts each prefix is rejected with a
// *CorruptError — a crash that somehow bypassed the atomic writer can never
// be misread as a shorter valid tensor.
// The one offset NOT tested is len-TrailerSize: a file cut exactly at the
// payload/trailer boundary is byte-for-byte a legacy pre-checksum file and is
// accepted by design (the atomic writer makes that torn state unreachable on
// our own files).
func TestReadTensorTruncatedAtEveryOffset(t *testing.T) {
	valid := encodeSampleTensor(t)
	legacyBoundary := len(valid) - state.TrailerSize
	for cut := 0; cut < len(valid); cut++ {
		if cut == legacyBoundary {
			continue
		}
		_, err := ReadTensor(bytes.NewReader(valid[:cut]))
		mustCorrupt(t, err, "truncated tensor")
	}
}

// TestReadResultTruncatedAtEveryOffset is the result-file counterpart.
func TestReadResultTruncatedAtEveryOffset(t *testing.T) {
	valid := encodeSampleResult(t)
	legacyBoundary := len(valid) - state.TrailerSize
	for cut := 0; cut < len(valid); cut++ {
		if cut == legacyBoundary {
			continue
		}
		_, err := ReadResult(bytes.NewReader(valid[:cut]))
		mustCorrupt(t, err, "truncated result")
	}
}

// TestChecksumCatchesBitFlips flips every single byte of valid payloads and
// asserts the flip is always detected. Without the trailer, flips in the
// float payload would silently corrupt factor values.
func TestChecksumCatchesBitFlips(t *testing.T) {
	tensorBytes := encodeSampleTensor(t)
	resultBytes := encodeSampleResult(t)
	for name, tc := range map[string]struct {
		valid []byte
		read  func([]byte) error
	}{
		"tensor": {tensorBytes, func(b []byte) error {
			_, err := ReadTensor(bytes.NewReader(b))
			return err
		}},
		"result": {resultBytes, func(b []byte) error {
			_, err := ReadResult(bytes.NewReader(b))
			return err
		}},
	} {
		t.Run(name, func(t *testing.T) {
			if err := tc.read(tc.valid); err != nil {
				t.Fatalf("pristine payload rejected: %v", err)
			}
			for i := 0; i < len(tc.valid); i++ {
				mut := append([]byte(nil), tc.valid...)
				mut[i] ^= 0x01
				if err := tc.read(mut); err == nil {
					t.Fatalf("bit flip at offset %d went undetected", i)
				}
			}
		})
	}
}

func TestCorruptErrorExposesChecksumCause(t *testing.T) {
	valid := encodeSampleTensor(t)
	mut := append([]byte(nil), valid...)
	mut[len(mut)-1] ^= 0xff // damage the digest itself
	_, err := ReadTensor(bytes.NewReader(mut))
	mustCorrupt(t, err, "digest flip")
	if !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("checksum failure not identifiable via state.ErrChecksum: %v", err)
	}
}

// TestAdversarialHeaderNoHugeAlloc feeds headers that claim absurd shapes
// with almost no body and asserts the reader fails fast (bounded allocation,
// typed error) rather than attempting multi-gigabyte buffers.
func TestAdversarialHeaderNoHugeAlloc(t *testing.T) {
	u64 := func(vals ...uint64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], v)
		}
		return b
	}
	cases := map[string][]byte{
		// K claims 2^31 slices; shape table is absent.
		"tensor huge K": append([]byte(tensorMagic), u64(1, 1<<31, 4)...),
		// One slice claiming 2^31 rows, no payload behind it.
		"tensor huge rows": append([]byte(tensorMagic), u64(1, 1, 4, 1<<31)...),
		// rows*cols products that would overflow or exceed maxElems.
		"tensor overflow product": append([]byte(tensorMagic), u64(1, 1, 1<<32, 1<<32)...),
		"result huge rank":        append([]byte(resultMagic), u64(2, 0, 1, 4, 1<<31, 8)...),
		"result huge K":           append([]byte(resultMagic), u64(2, 0, 1<<31, 4, 3)...),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				var err error
				if bytes.HasPrefix(payload, []byte(tensorMagic)) {
					_, err = ReadTensor(bytes.NewReader(payload))
				} else {
					_, err = ReadResult(bytes.NewReader(payload))
				}
				done <- err
			}()
			select {
			case err := <-done:
				mustCorrupt(t, err, name)
			case <-time.After(10 * time.Second):
				t.Fatal("reader hung (or thrashed allocating) on adversarial header")
			}
		})
	}
}

// FuzzReadTensor mutates valid tensor payloads: the reader must never panic,
// and every rejection must be a typed *CorruptError.
func FuzzReadTensor(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTensor(&buf, sampleTensor()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte(tensorMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ReadTensor(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("non-typed decode error %T: %v", err, err)
			}
		}
	})
}

// FuzzReadResult is the result-file counterpart of FuzzReadTensor.
func FuzzReadResult(f *testing.F) {
	cfg := parafac2.DefaultConfig()
	cfg.Rank = 3
	cfg.MaxIters = 5
	res, err := parafac2.DPar2(sampleTensor(), cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/3])
	f.Add([]byte(resultMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ReadResult(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("non-typed decode error %T: %v", err, err)
			}
		}
	})
}
