// Package dataio persists irregular tensors and PARAFAC2 factorizations.
//
// The binary format is a small custom container (magic + version + shape
// table + little-endian float64 payload) rather than encoding/gob: tensors
// are large, flat float64 arrays, and a fixed layout reads and writes at
// memory bandwidth, stays stable across Go versions, and is easy to parse
// from other languages.
//
// Layout (all integers little-endian uint64, all floats IEEE-754 binary64):
//
//	"DPT2" | version=1 | K | J | I_1..I_K | slice_1 .. slice_K     (tensor)
//	"DPF2" | version=2 | qform | K | J | R | I_1..I_K |
//	       H (R·R) | V (J·R) | S (K·R) | Q payload                 (result)
//
// The result's Q payload depends on qform: qformDense (0) stores the dense
// Q_k (I_k·R each); qformFactored (1) stores the factored form DPar2 results
// carry — Z_1..Z_K, P_1..P_K (R·R each), then A_1..A_K (I_k·R each) with
// Q_k = A_k Z_k P_kᵀ — preserving laziness (and the smaller A-plus-R×R
// footprint) across a save/load. Version-1 result files (the pre-factored
// dense layout, without the qform field) are still read.
package dataio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/tensor"
)

const (
	tensorMagic   = "DPT2"
	resultMagic   = "DPF2"
	tensorVersion = 1
	// resultVersion 2 added the qform field and the factored-Q payload;
	// ReadResult still accepts version-1 (dense-only) files.
	resultVersion = 2

	qformDense    = 0
	qformFactored = 1

	// maxDim guards against corrupt headers allocating absurd buffers.
	maxDim = 1 << 32
)

// WriteTensor serializes t to w.
func WriteTensor(w io.Writer, t *tensor.Irregular) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(tensorMagic); err != nil {
		return err
	}
	header := []uint64{tensorVersion, uint64(t.K()), uint64(t.J)}
	for _, s := range t.Slices {
		header = append(header, uint64(s.Rows))
	}
	if err := writeUints(bw, header); err != nil {
		return err
	}
	for _, s := range t.Slices {
		if err := writeFloats(bw, s.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTensor deserializes a tensor written by WriteTensor.
func ReadTensor(r io.Reader) (*tensor.Irregular, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if err := expectMagic(br, tensorMagic); err != nil {
		return nil, err
	}
	head, err := readUints(br, 3)
	if err != nil {
		return nil, err
	}
	if head[0] != tensorVersion {
		return nil, fmt.Errorf("dataio: unsupported tensor version %d", head[0])
	}
	k, j := head[1], head[2]
	if k == 0 || j == 0 || k > maxDim || j > maxDim {
		return nil, fmt.Errorf("dataio: corrupt header (K=%d, J=%d)", k, j)
	}
	rows, err := readUints(br, int(k))
	if err != nil {
		return nil, err
	}
	slices := make([]*mat.Dense, k)
	for i := range slices {
		ik := rows[i]
		if ik == 0 || ik > maxDim {
			return nil, fmt.Errorf("dataio: corrupt slice height %d", ik)
		}
		m := mat.New(int(ik), int(j))
		if err := readFloats(br, m.Data); err != nil {
			return nil, err
		}
		slices[i] = m
	}
	return tensor.NewIrregular(slices)
}

// SaveTensor writes t to the named file.
func SaveTensor(path string, t *tensor.Irregular) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTensor(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTensor reads a tensor from the named file.
func LoadTensor(path string) (*tensor.Irregular, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTensor(f)
}

// WriteResult serializes the factor matrices of a decomposition. A factored
// result (DPar2's lazy Q_k = A_k Z_k P_kᵀ) is written in factored form —
// the compact representation round-trips without ever materializing the
// dense slices; eager results are written dense.
func WriteResult(w io.Writer, res *parafac2.Result) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(resultMagic); err != nil {
		return err
	}
	k := res.K()
	r := res.H.Rows
	j := res.V.Rows
	a, z, p, factored := res.FactoredQ()
	if !res.Factored() {
		factored = false // dense cache present: write the eager form
	}
	qform := uint64(qformDense)
	if factored {
		qform = qformFactored
	}
	header := []uint64{resultVersion, qform, uint64(k), uint64(j), uint64(r)}
	for i := 0; i < k; i++ {
		header = append(header, uint64(res.SliceRows(i)))
	}
	if err := writeUints(bw, header); err != nil {
		return err
	}
	if err := writeFloats(bw, res.H.Data); err != nil {
		return err
	}
	if err := writeFloats(bw, res.V.Data); err != nil {
		return err
	}
	for _, s := range res.S {
		if err := writeFloats(bw, s); err != nil {
			return err
		}
	}
	if factored {
		for _, m := range z {
			if err := writeFloats(bw, m.Data); err != nil {
				return err
			}
		}
		for _, m := range p {
			if err := writeFloats(bw, m.Data); err != nil {
				return err
			}
		}
		for _, m := range a {
			if err := writeFloats(bw, m.Data); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	for i := 0; i < k; i++ {
		if err := writeFloats(bw, res.Qk(i).Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadResult deserializes factor matrices written by WriteResult. Only the
// factors are restored (timings and fitness are run artifacts, not state —
// FitnessKind on a loaded result is FitnessUnset). A factored payload is
// restored in factored form: the loaded result materializes Q_k lazily,
// exactly like the result it was saved from.
func ReadResult(r io.Reader) (*parafac2.Result, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if err := expectMagic(br, resultMagic); err != nil {
		return nil, err
	}
	ver, err := readUints(br, 1)
	if err != nil {
		return nil, err
	}
	qform := uint64(qformDense)
	switch ver[0] {
	case 1:
		// Pre-factored layout: no qform field, dense payload.
	case resultVersion:
		qf, err := readUints(br, 1)
		if err != nil {
			return nil, err
		}
		qform = qf[0]
		if qform != qformDense && qform != qformFactored {
			return nil, fmt.Errorf("dataio: unknown result Q form %d", qform)
		}
	default:
		return nil, fmt.Errorf("dataio: unsupported result version %d", ver[0])
	}
	head, err := readUints(br, 3)
	if err != nil {
		return nil, err
	}
	k, j, rank := head[0], head[1], head[2]
	if k == 0 || j == 0 || rank == 0 || k > maxDim || j > maxDim || rank > maxDim {
		return nil, fmt.Errorf("dataio: corrupt result header")
	}
	rows, err := readUints(br, int(k))
	if err != nil {
		return nil, err
	}
	for _, ik := range rows {
		if ik == 0 || ik > maxDim {
			return nil, fmt.Errorf("dataio: corrupt Q height %d", ik)
		}
	}
	res := &parafac2.Result{
		H: mat.New(int(rank), int(rank)),
		V: mat.New(int(j), int(rank)),
	}
	if err := readFloats(br, res.H.Data); err != nil {
		return nil, err
	}
	if err := readFloats(br, res.V.Data); err != nil {
		return nil, err
	}
	res.S = make([][]float64, k)
	for i := range res.S {
		res.S[i] = make([]float64, rank)
		if err := readFloats(br, res.S[i]); err != nil {
			return nil, err
		}
	}
	readBlocks := func(heights func(i int) int) ([]*mat.Dense, error) {
		ms := make([]*mat.Dense, k)
		for i := range ms {
			ms[i] = mat.New(heights(i), int(rank))
			if err := readFloats(br, ms[i].Data); err != nil {
				return nil, err
			}
		}
		return ms, nil
	}
	if qform == qformFactored {
		z, err := readBlocks(func(int) int { return int(rank) })
		if err != nil {
			return nil, err
		}
		p, err := readBlocks(func(int) int { return int(rank) })
		if err != nil {
			return nil, err
		}
		a, err := readBlocks(func(i int) int { return int(rows[i]) })
		if err != nil {
			return nil, err
		}
		res.SetFactoredQ(a, z, p)
		return res, nil
	}
	q, err := readBlocks(func(i int) int { return int(rows[i]) })
	if err != nil {
		return nil, err
	}
	res.SetQ(q)
	return res, nil
}

// SaveResult writes the factorization to the named file.
func SaveResult(path string, res *parafac2.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteResult(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadResult reads a factorization from the named file.
func LoadResult(path string) (*parafac2.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResult(f)
}

// WriteMatrixCSV writes m as comma-separated rows — the interchange format
// cmd/dpar2 accepts back via -input.
func WriteMatrixCSV(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for jj, v := range row {
			if jj > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.17g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- low-level helpers -----------------------------------------------------

func expectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("dataio: short read on magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("dataio: bad magic %q (want %q)", buf, magic)
	}
	return nil
}

func writeUints(w io.Writer, vals []uint64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	_, err := w.Write(buf)
	return err
}

func readUints(r io.Reader, n int) ([]uint64, error) {
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dataio: short read: %w", err)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out, nil
}

const floatChunk = 1 << 16

func writeFloats(w io.Writer, vals []float64) error {
	buf := make([]byte, 8*min(len(vals), floatChunk))
	for off := 0; off < len(vals); off += floatChunk {
		end := min(off+floatChunk, len(vals))
		n := end - off
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vals[off+i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*min(len(dst), floatChunk))
	for off := 0; off < len(dst); off += floatChunk {
		end := min(off+floatChunk, len(dst))
		n := end - off
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return fmt.Errorf("dataio: short read: %w", err)
		}
		for i := 0; i < n; i++ {
			dst[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return nil
}
