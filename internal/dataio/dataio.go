// Package dataio persists irregular tensors and PARAFAC2 factorizations.
//
// The binary format is a small custom container (magic + version + shape
// table + little-endian float64 payload) rather than encoding/gob: tensors
// are large, flat float64 arrays, and a fixed layout reads and writes at
// memory bandwidth, stays stable across Go versions, and is easy to parse
// from other languages.
//
// Layout (all integers little-endian uint64, all floats IEEE-754 binary64):
//
//	"DPT2" | version=1 | K | J | I_1..I_K | slice_1 .. slice_K     (tensor)
//	"DPF2" | version=2 | qform | K | J | R | I_1..I_K |
//	       H (R·R) | V (J·R) | S (K·R) | Q payload                 (result)
//
// The result's Q payload depends on qform: qformDense (0) stores the dense
// Q_k (I_k·R each); qformFactored (1) stores the factored form DPar2 results
// carry — Z_1..Z_K, P_1..P_K (R·R each), then A_1..A_K (I_k·R each) with
// Q_k = A_k Z_k P_kᵀ — preserving laziness (and the smaller A-plus-R×R
// footprint) across a save/load. Version-1 result files (the pre-factored
// dense layout, without the qform field) are still read.
//
// Both writers append a sha256 checksum trailer (see internal/state) after
// the payload, and both readers verify it: silent corruption surfaces as a
// *CorruptError instead of garbage factors. Files written before the trailer
// existed — payload ending exactly at EOF — are still accepted. SaveTensor
// and SaveResult replace their target atomically (write-temp, fsync, rename),
// so a crash mid-save never leaves a truncated file behind; see
// docs/DURABILITY.md for the full contract.
package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/mat"
	"repro/internal/parafac2"
	"repro/internal/state"
	"repro/internal/tensor"
)

const (
	tensorMagic   = "DPT2"
	resultMagic   = "DPF2"
	tensorVersion = 1
	// resultVersion 2 added the qform field and the factored-Q payload;
	// ReadResult still accepts version-1 (dense-only) files.
	resultVersion = 2

	qformDense    = 0
	qformFactored = 1

	// maxDim guards against corrupt headers allocating absurd buffers.
	maxDim = 1 << 32
	// maxElems bounds any single matrix's element count, keeping the
	// rows-times-cols product far from integer overflow.
	maxElems = 1 << 40
)

// CorruptError reports a payload that could not be decoded: truncated,
// bit-flipped, failing its checksum, or structurally inconsistent. All decode
// failures from ReadTensor/ReadResult (and the Load* wrappers) are
// *CorruptError; errors.Is(err, state.ErrChecksum) additionally identifies
// checksum-trailer mismatches.
type CorruptError struct {
	What string // which file kind / field was being decoded
	Err  error  // underlying cause, possibly nil
}

func (e *CorruptError) Error() string {
	if e.Err == nil {
		return "dataio: corrupt " + e.What
	}
	return "dataio: corrupt " + e.What + ": " + e.Err.Error()
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(what string, err error) error {
	return &CorruptError{What: what, Err: err}
}

func corruptf(format string, args ...any) error {
	return &CorruptError{What: fmt.Sprintf(format, args...)}
}

// WriteTensor serializes t to w, followed by a checksum trailer.
func WriteTensor(w io.Writer, t *tensor.Irregular) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := state.NewSumWriter(bw)
	if _, err := sw.Write([]byte(tensorMagic)); err != nil {
		return err
	}
	header := []uint64{tensorVersion, uint64(t.K()), uint64(t.J)}
	for _, s := range t.Slices {
		header = append(header, uint64(s.Rows))
	}
	if err := writeUints(sw, header); err != nil {
		return err
	}
	for _, s := range t.Slices {
		if err := writeFloats(sw, s.Data); err != nil {
			return err
		}
	}
	if err := sw.WriteTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTensor deserializes a tensor written by WriteTensor, verifying the
// checksum trailer when present (legacy files without one are accepted).
// Decode failures are reported as *CorruptError.
func ReadTensor(r io.Reader) (*tensor.Irregular, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	sr := state.NewSumReader(br)
	if err := expectMagic(sr, tensorMagic); err != nil {
		return nil, err
	}
	head, err := readUints(sr, 3)
	if err != nil {
		return nil, corrupt("tensor header", err)
	}
	if head[0] != tensorVersion {
		return nil, corruptf("tensor: unsupported version %d", head[0])
	}
	k, j := head[1], head[2]
	if k == 0 || j == 0 || k > maxDim || j > maxDim {
		return nil, corruptf("tensor header (K=%d, J=%d)", k, j)
	}
	rows, err := readUints(sr, int(k))
	if err != nil {
		return nil, corrupt("tensor shape table", err)
	}
	slices := make([]*mat.Dense, k)
	for i := range slices {
		ik := rows[i]
		if ik == 0 || ik > maxDim || ik > maxElems/j {
			return nil, corruptf("tensor slice height %d", ik)
		}
		data, err := readFloatsAlloc(sr, ik*j)
		if err != nil {
			return nil, corrupt("tensor slice payload", err)
		}
		slices[i] = mat.NewFromData(int(ik), int(j), data)
	}
	if err := verifyTrailer(sr, "tensor"); err != nil {
		return nil, err
	}
	t, err := tensor.NewIrregular(slices)
	if err != nil {
		return nil, corrupt("tensor", err)
	}
	return t, nil
}

// SaveTensor writes t to the named file atomically: the payload lands in a
// temp file that is fsynced and renamed over path, so a crash mid-save leaves
// the previous file (or no file) intact, never a truncated one.
func SaveTensor(path string, t *tensor.Irregular) error {
	return state.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteTensor(w, t)
	})
}

// LoadTensor reads a tensor from the named file.
func LoadTensor(path string) (*tensor.Irregular, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTensor(f)
}

// WriteResult serializes the factor matrices of a decomposition, followed by
// a checksum trailer. A factored result (DPar2's lazy Q_k = A_k Z_k P_kᵀ) is
// written in factored form — the compact representation round-trips without
// ever materializing the dense slices; eager results are written dense.
func WriteResult(w io.Writer, res *parafac2.Result) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	sw := state.NewSumWriter(bw)
	if _, err := sw.Write([]byte(resultMagic)); err != nil {
		return err
	}
	k := res.K()
	r := res.H.Rows
	j := res.V.Rows
	a, z, p, factored := res.FactoredQ()
	if !res.Factored() {
		factored = false // dense cache present: write the eager form
	}
	qform := uint64(qformDense)
	if factored {
		qform = qformFactored
	}
	header := []uint64{resultVersion, qform, uint64(k), uint64(j), uint64(r)}
	for i := 0; i < k; i++ {
		header = append(header, uint64(res.SliceRows(i)))
	}
	if err := writeUints(sw, header); err != nil {
		return err
	}
	if err := writeFloats(sw, res.H.Data); err != nil {
		return err
	}
	if err := writeFloats(sw, res.V.Data); err != nil {
		return err
	}
	for _, s := range res.S {
		if err := writeFloats(sw, s); err != nil {
			return err
		}
	}
	if factored {
		for _, m := range z {
			if err := writeFloats(sw, m.Data); err != nil {
				return err
			}
		}
		for _, m := range p {
			if err := writeFloats(sw, m.Data); err != nil {
				return err
			}
		}
		for _, m := range a {
			if err := writeFloats(sw, m.Data); err != nil {
				return err
			}
		}
	} else {
		for i := 0; i < k; i++ {
			if err := writeFloats(sw, res.Qk(i).Data); err != nil {
				return err
			}
		}
	}
	if err := sw.WriteTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadResult deserializes factor matrices written by WriteResult, verifying
// the checksum trailer when present (legacy files without one are accepted).
// Only the factors are restored (timings and fitness are run artifacts, not
// state — FitnessKind on a loaded result is FitnessUnset). A factored payload
// is restored in factored form: the loaded result materializes Q_k lazily,
// exactly like the result it was saved from. Decode failures are reported as
// *CorruptError.
func ReadResult(r io.Reader) (*parafac2.Result, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	sr := state.NewSumReader(br)
	if err := expectMagic(sr, resultMagic); err != nil {
		return nil, err
	}
	ver, err := readUints(sr, 1)
	if err != nil {
		return nil, corrupt("result header", err)
	}
	qform := uint64(qformDense)
	switch ver[0] {
	case 1:
		// Pre-factored layout: no qform field, dense payload.
	case resultVersion:
		qf, err := readUints(sr, 1)
		if err != nil {
			return nil, corrupt("result header", err)
		}
		qform = qf[0]
		if qform != qformDense && qform != qformFactored {
			return nil, corruptf("result: unknown Q form %d", qform)
		}
	default:
		return nil, corruptf("result: unsupported version %d", ver[0])
	}
	head, err := readUints(sr, 3)
	if err != nil {
		return nil, corrupt("result header", err)
	}
	k, j, rank := head[0], head[1], head[2]
	if k == 0 || j == 0 || rank == 0 || k > maxDim || j > maxDim || rank > maxDim ||
		rank > maxElems/rank || j > maxElems/rank {
		return nil, corruptf("result header (K=%d, J=%d, R=%d)", k, j, rank)
	}
	rows, err := readUints(sr, int(k))
	if err != nil {
		return nil, corrupt("result shape table", err)
	}
	for _, ik := range rows {
		if ik == 0 || ik > maxDim || ik > maxElems/rank {
			return nil, corruptf("result Q height %d", ik)
		}
	}
	res := &parafac2.Result{}
	hdata, err := readFloatsAlloc(sr, rank*rank)
	if err != nil {
		return nil, corrupt("result H payload", err)
	}
	res.H = mat.NewFromData(int(rank), int(rank), hdata)
	vdata, err := readFloatsAlloc(sr, j*rank)
	if err != nil {
		return nil, corrupt("result V payload", err)
	}
	res.V = mat.NewFromData(int(j), int(rank), vdata)
	res.S = make([][]float64, k)
	for i := range res.S {
		s, err := readFloatsAlloc(sr, rank)
		if err != nil {
			return nil, corrupt("result S payload", err)
		}
		res.S[i] = s
	}
	readBlocks := func(what string, heights func(i int) uint64) ([]*mat.Dense, error) {
		ms := make([]*mat.Dense, k)
		for i := range ms {
			h := heights(i)
			data, err := readFloatsAlloc(sr, h*rank)
			if err != nil {
				return nil, corrupt(what, err)
			}
			ms[i] = mat.NewFromData(int(h), int(rank), data)
		}
		return ms, nil
	}
	if qform == qformFactored {
		z, err := readBlocks("result Z payload", func(int) uint64 { return rank })
		if err != nil {
			return nil, err
		}
		p, err := readBlocks("result P payload", func(int) uint64 { return rank })
		if err != nil {
			return nil, err
		}
		a, err := readBlocks("result A payload", func(i int) uint64 { return rows[i] })
		if err != nil {
			return nil, err
		}
		if err := verifyTrailer(sr, "result"); err != nil {
			return nil, err
		}
		res.SetFactoredQ(a, z, p)
		return res, nil
	}
	q, err := readBlocks("result Q payload", func(i int) uint64 { return rows[i] })
	if err != nil {
		return nil, err
	}
	if err := verifyTrailer(sr, "result"); err != nil {
		return nil, err
	}
	res.SetQ(q)
	return res, nil
}

// SaveResult writes the factorization to the named file atomically (see
// SaveTensor for the crash-safety contract).
func SaveResult(path string, res *parafac2.Result) error {
	return state.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteResult(w, res)
	})
}

// LoadResult reads a factorization from the named file.
func LoadResult(path string) (*parafac2.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResult(f)
}

// WriteMatrixCSV writes m as comma-separated rows — the interchange format
// cmd/dpar2 accepts back via -input.
func WriteMatrixCSV(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for jj, v := range row {
			if jj > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.17g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- low-level helpers -----------------------------------------------------

// verifyTrailer checks the checksum trailer that follows the payload.
// A cleanly absent trailer (state.ErrNoTrailer) means a legacy pre-checksum
// file and is accepted; anything else wraps into a *CorruptError.
func verifyTrailer(sr *state.SumReader, what string) error {
	switch err := sr.VerifyTrailer(); {
	case err == nil, errors.Is(err, state.ErrNoTrailer):
		return nil
	default:
		return corrupt(what+" checksum", err)
	}
}

func expectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return corrupt("magic", err)
	}
	if string(buf) != magic {
		return corruptf("magic %q (want %q)", buf, magic)
	}
	return nil
}

func writeUints(w io.Writer, vals []uint64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	_, err := w.Write(buf)
	return err
}

// uintChunk bounds per-step allocation when reading integer tables whose
// length comes from an untrusted header.
const uintChunk = 1 << 13

// readUints reads n little-endian uint64s, allocating incrementally so a
// huge claimed n against a truncated stream fails after at most one chunk of
// over-allocation instead of reserving n words up front.
func readUints(r io.Reader, n int) ([]uint64, error) {
	out := make([]uint64, 0, min(n, uintChunk))
	buf := make([]byte, 8*min(n, uintChunk))
	for len(out) < n {
		cnt := min(n-len(out), uintChunk)
		if _, err := io.ReadFull(r, buf[:cnt*8]); err != nil {
			return nil, fmt.Errorf("short read: %w", err)
		}
		for i := 0; i < cnt; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return out, nil
}

const floatChunk = 1 << 16

func writeFloats(w io.Writer, vals []float64) error {
	buf := make([]byte, 8*min(len(vals), floatChunk))
	for off := 0; off < len(vals); off += floatChunk {
		end := min(off+floatChunk, len(vals))
		n := end - off
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vals[off+i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
	}
	return nil
}

// readFloatsAlloc reads n little-endian float64s into a freshly allocated
// slice. Like readUints it allocates as data actually arrives, so an
// adversarial header claiming billions of elements against a short stream
// costs at most ~2× the bytes genuinely present (append doubling) plus one
// chunk, not 8·n bytes up front.
func readFloatsAlloc(r io.Reader, n uint64) ([]float64, error) {
	if n > maxElems {
		return nil, fmt.Errorf("element count %d exceeds limit", n)
	}
	out := make([]float64, 0, min(int(n), floatChunk))
	buf := make([]byte, 8*min(int(n), floatChunk))
	for uint64(len(out)) < n {
		cnt := min(int(n-uint64(len(out))), floatChunk)
		if _, err := io.ReadFull(r, buf[:cnt*8]); err != nil {
			return nil, fmt.Errorf("short read: %w", err)
		}
		for i := 0; i < cnt; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out, nil
}
