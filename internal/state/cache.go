package state

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// cacheSuffix is the filename suffix for cache entries; the stem is the
// 64-hex-digit sha256 key.
const cacheSuffix = ".cache"

// Cache is a content-addressed result cache on disk. Entries are keyed by a
// caller-derived sha256 (see Key), stored one file per entry, written
// atomically with a checksum trailer, and evicted least-recently-used once
// total payload bytes exceed the configured bound.
//
// All methods are safe for concurrent use. Get and Put hold the cache mutex
// across their file I/O — entries are small (a factorization, not a tensor),
// and the simplicity buys a consistent view of the LRU list and byte total.
type Cache struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64

	total   int64
	lru     *list.List               // front = most recent; values are *cacheEntry
	entries map[string]*list.Element // key → element

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key  string
	size int64
}

// Key derives a cache key as the hex sha256 of the given parts, each framed
// with its length so distinct part sequences can never collide by
// concatenation.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		putUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// OpenCache opens (creating if needed) a cache rooted at dir, bounded to
// maxBytes of payload on disk. Existing entries are scanned and their
// modification times seed the LRU order; stale temporaries from crashed
// writers are removed. maxBytes must be positive.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("state: cache maxBytes must be positive, got %d", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: create cache dir: %w", err)
	}
	if err := RemoveStaleTemps(dir); err != nil {
		return nil, fmt.Errorf("state: clean cache dir: %w", err)
	}
	c := &Cache{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("state: scan cache dir: %w", err)
	}
	type seen struct {
		key   string
		size  int64
		mtime int64
	}
	var found []seen
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, cacheSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, cacheSuffix)
		if len(key) != 2*sha256.Size || !isHex(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, seen{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	// Oldest first so the newest entries end up at the front of the LRU.
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].key < found[j].key
	})
	for _, f := range found {
		c.entries[f.key] = c.lru.PushFront(&cacheEntry{key: f.key, size: f.size})
		c.total += f.size
	}
	c.evictLocked()
	return c, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+cacheSuffix)
}

// Get looks up key and, on a hit, streams the entry's payload (checksum
// verified) into read. It returns (true, nil) on a verified hit, (false, nil)
// on a miss, and (false, err) only when read itself fails. An entry that is
// unreadable or corrupt counts as a miss and is dropped from the cache.
func (c *Cache) Get(key string, read func(r io.Reader) error) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return false, nil
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		c.dropLocked(el)
		c.misses++
		return false, nil
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil || info.Size() < int64(TrailerSize) {
		c.dropLocked(el)
		c.misses++
		return false, nil
	}
	// Bound the callback to the payload (everything before the trailer) so it
	// may freely ReadAll or buffer without consuming trailer bytes.
	sr := NewSumReader(f)
	lr := io.LimitReader(sr, info.Size()-int64(TrailerSize))
	rerr := read(lr)
	if rerr == nil {
		// Drain any payload the callback left unread so the digest covers the
		// whole payload, then check the trailer.
		if _, derr := io.Copy(io.Discard, lr); derr != nil {
			rerr = derr
		} else {
			rerr = sr.VerifyTrailer()
		}
	}
	if rerr != nil {
		// The entry is corrupt on disk or the decoder rejected it: drop it
		// and report a miss, not an error.
		c.dropLocked(el)
		c.misses++
		return false, nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return true, nil
}

// Put stores the payload produced by write under key, atomically and with a
// checksum trailer, then evicts least-recently-used entries until the cache
// fits its byte bound again. Overwriting an existing key is allowed.
func (c *Cache) Put(key string, write func(w io.Writer) error) error {
	if len(key) != 2*sha256.Size || !isHex(key) {
		return fmt.Errorf("state: invalid cache key %q", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	path := c.path(key)
	err := WriteFileAtomic(path, func(w io.Writer) error {
		sw := NewSumWriter(w)
		if err := write(sw); err != nil {
			return err
		}
		return sw.WriteTrailer()
	})
	if err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("state: stat cache entry: %w", err)
	}
	if el, ok := c.entries[key]; ok {
		c.total -= el.Value.(*cacheEntry).size
		el.Value.(*cacheEntry).size = info.Size()
		c.total += info.Size()
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, size: info.Size()})
		c.total += info.Size()
	}
	c.evictLocked()
	return nil
}

// dropLocked removes an entry from the in-memory index and best-effort from
// disk. Caller holds c.mu.
func (c *Cache) dropLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.total -= e.size
	os.Remove(c.path(e.key))
}

// evictLocked removes least-recently-used entries until total ≤ maxBytes,
// always keeping the most recent entry even if it alone exceeds the bound.
// Caller holds c.mu.
func (c *Cache) evictLocked() {
	for c.total > c.maxBytes && c.lru.Len() > 1 {
		c.dropLocked(c.lru.Back())
	}
}

// Counters returns the cumulative hit and miss counts since the cache was
// opened.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len and Bytes report the current entry count and payload byte total —
// primarily for tests and diagnostics.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the total on-disk payload bytes currently accounted to the
// cache.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
