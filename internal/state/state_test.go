package state

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob.bin")
	payload := []byte("hello durable world")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("content mismatch: got %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected only the target file in dir, found %d entries", len(ents))
	}
}

// TestWriteFileAtomicCrashAtEveryOffset simulates a writer dying after every
// possible byte prefix of the payload and asserts the target file either
// keeps its previous complete content or (when it never existed) stays
// absent — never a truncated intermediate — and that no temp files leak.
func TestWriteFileAtomicCrashAtEveryOffset(t *testing.T) {
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz-PAYLOAD-END")
	errBoom := errors.New("simulated crash")

	for _, pre := range []struct {
		name    string
		initial []byte // nil = target does not exist beforehand
	}{
		{"fresh", nil},
		{"overwrite", []byte("previous complete content")},
	} {
		t.Run(pre.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "target.bin")
			if pre.initial != nil {
				if err := os.WriteFile(path, pre.initial, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			for n := 0; n <= len(payload); n++ {
				err := WriteFileAtomic(path, func(w io.Writer) error {
					if _, werr := w.Write(payload[:n]); werr != nil {
						return werr
					}
					return errBoom
				})
				if !errors.Is(err, errBoom) {
					t.Fatalf("offset %d: expected simulated crash error, got %v", n, err)
				}
				got, rerr := os.ReadFile(path)
				if pre.initial == nil {
					if !os.IsNotExist(rerr) {
						t.Fatalf("offset %d: target should not exist, got err=%v content=%q", n, rerr, got)
					}
				} else {
					if rerr != nil {
						t.Fatalf("offset %d: read target: %v", n, rerr)
					}
					if !bytes.Equal(got, pre.initial) {
						t.Fatalf("offset %d: target corrupted: %q", n, got)
					}
				}
				ents, derr := os.ReadDir(dir)
				if derr != nil {
					t.Fatal(derr)
				}
				for _, e := range ents {
					if strings.Contains(e.Name(), ".tmp-") {
						t.Fatalf("offset %d: leaked temp file %s", n, e.Name())
					}
				}
			}
			// A subsequent successful write still lands intact.
			if err := WriteFileAtomic(path, func(w io.Writer) error {
				_, werr := w.Write(payload)
				return werr
			}); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("final write: err=%v content=%q", err, got)
			}
		})
	}
}

func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".target.bin.tmp-12345")
	keep := filepath.Join(dir, "target.bin")
	for _, p := range []string{stale, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveStaleTemps(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("real file removed: %v", err)
	}
}

func TestSumWriterReaderRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSumWriter(&buf)
	payload := []byte("checksummed payload bytes")
	if _, err := sw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteTrailer(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(payload)+TrailerSize {
		t.Fatalf("framed length %d, want %d", buf.Len(), len(payload)+TrailerSize)
	}

	sr := NewSumReader(bytes.NewReader(buf.Bytes()))
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(sr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if err := sr.VerifyTrailer(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyTrailerLegacyStream(t *testing.T) {
	payload := []byte("legacy file, no trailer")
	sr := NewSumReader(bytes.NewReader(payload))
	if _, err := io.ReadFull(sr, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if err := sr.VerifyTrailer(); err != ErrNoTrailer {
		t.Fatalf("want ErrNoTrailer, got %v", err)
	}
}

func TestVerifyTrailerDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSumWriter(&buf)
	payload := []byte("bytes that will be tampered with")
	sw.Write(payload)
	if err := sw.WriteTrailer(); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()

	// Flipping any single byte — payload, magic, or digest — must fail
	// verification; truncating at any offset past the payload start must too.
	for i := 0; i < len(framed); i++ {
		mut := append([]byte(nil), framed...)
		mut[i] ^= 0x40
		sr := NewSumReader(bytes.NewReader(mut))
		io.Copy(io.Discard, io.LimitReader(sr, int64(len(payload))))
		if err := sr.VerifyTrailer(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: want ErrChecksum, got %v", i, err)
		}
	}
	for cut := len(payload) + 1; cut < len(framed); cut++ {
		sr := NewSumReader(bytes.NewReader(framed[:cut]))
		io.Copy(io.Discard, io.LimitReader(sr, int64(len(payload))))
		if err := sr.VerifyTrailer(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncate at %d: want ErrChecksum, got %v", cut, err)
		}
	}
}

func TestCacheKeyFraming(t *testing.T) {
	// Length framing: the same concatenated bytes split differently must give
	// different keys.
	a := Key([]byte("ab"), []byte("c"))
	b := Key([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("keys collide across part boundaries")
	}
	if a != Key([]byte("ab"), []byte("c")) {
		t.Fatal("Key is not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64", len(a))
	}
}

func putEntry(t *testing.T, c *Cache, key string, payload []byte) {
	t.Helper()
	if err := c.Put(key, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func getEntry(t *testing.T, c *Cache, key string) ([]byte, bool) {
	t.Helper()
	var out []byte
	ok, err := c.Get(key, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		out = b
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, ok
}

func TestCacheHitMissCounters(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("tensor-digest"), []byte("dpar2"), []byte("r=8"))
	if _, ok := getEntry(t, c, key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	payload := []byte("serialized result")
	putEntry(t, c, key, payload)
	got, ok := getEntry(t, c, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("hit=%v payload=%q", ok, got)
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheReopenPersists(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("persisted"))
	payload := []byte("survives reopen")
	putEntry(t, c, key, payload)

	c2, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := getEntry(t, c2, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: hit=%v payload=%q", ok, got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Entries are payload + TrailerSize bytes; size the bound for ~2 entries.
	entryBytes := int64(100 + TrailerSize)
	c, err := OpenCache(dir, 2*entryBytes)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("entry-%d", i)))
		putEntry(t, c, keys[i], bytes.Repeat([]byte{byte('a' + i)}, 100))
	}
	// The third Put pushed the cache over budget; the oldest entry goes.
	if _, ok := getEntry(t, c, keys[0]); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := getEntry(t, c, k); !ok {
			t.Fatalf("entry %s evicted unexpectedly", k)
		}
	}
	if c.Bytes() > 2*entryBytes {
		t.Fatalf("cache over budget: %d > %d", c.Bytes(), 2*entryBytes)
	}

	// Recency matters: touch keys[1], add a new entry, keys[2] is the victim.
	getEntry(t, c, keys[1])
	k3 := Key([]byte("entry-3"))
	putEntry(t, c, k3, bytes.Repeat([]byte{'d'}, 100))
	if _, ok := getEntry(t, c, keys[2]); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := getEntry(t, c, keys[1]); !ok {
		t.Fatal("recently-touched entry was evicted")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("will-rot"))
	putEntry(t, c, key, []byte("pristine bytes"))

	// Flip a payload byte on disk behind the cache's back.
	path := filepath.Join(dir, key+cacheSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := getEntry(t, c, key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not dropped from disk")
	}
	if _, ok := getEntry(t, c, key); ok {
		t.Fatal("dropped entry reappeared")
	}
}

func TestCachePutRejectsBadKey(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("not-a-sha256", func(w io.Writer) error { return nil }); err == nil {
		t.Fatal("expected error for malformed key")
	}
}

func TestOpenCacheRejectsNonPositiveBound(t *testing.T) {
	if _, err := OpenCache(t.TempDir(), 0); err == nil {
		t.Fatal("expected error for maxBytes=0")
	}
}
