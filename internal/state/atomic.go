// Package state is the durable-state layer under every on-disk artifact the
// repository produces: tensors and factorizations (internal/dataio), stream
// checkpoints (internal/parafac2), and the Engine's content-addressed result
// cache. It provides three primitives:
//
//   - WriteFileAtomic: crash-safe file replacement (write a temp file in the
//     destination directory, fsync, rename over the target, fsync the
//     directory), so a reader never observes a torn or truncated file — it
//     sees either the previous complete content or the new complete content.
//
//   - SumWriter / SumReader: sha256 content-checksum framing. A writer hashes
//     every payload byte and appends a small versioned trailer; a reader
//     re-hashes what it consumed and verifies the trailer, turning silent
//     corruption (bit rot, torn copies, adversarial edits) into a typed
//     error instead of garbage data.
//
//   - Cache: a content-addressed result cache on disk — entries keyed by a
//     caller-derived sha256, persisted atomically, LRU-bounded on total
//     payload bytes, with hit/miss counters.
//
// The package is intentionally stdlib-only and imports nothing from the rest
// of the repository, so every layer (dataio, parafac2, the Engine) can build
// on it without cycles. See docs/DURABILITY.md for the crash-safety contract
// and the on-disk formats layered on top of these primitives.
package state

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that path transitions atomically from its
// previous content (or absence) to the bytes produced by write: the payload
// goes to a temporary file in path's directory, is fsynced, and is renamed
// over path, after which the directory itself is fsynced so the rename
// survives a power loss. If write returns an error — or any I/O step fails —
// the temporary file is removed and path is left exactly as it was: a crash
// or failure at ANY byte offset of the write never leaves a truncated or
// partial file at path.
//
// The temporary file is created with O_EXCL under a name derived from path,
// so concurrent writers to the same path do not interleave; the last rename
// wins, and every observed state of path is a complete payload.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("state: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()           // no-op if already closed
			os.Remove(tmpName)    // best effort; the temp never becomes path
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("state: write %s: %w", path, err)
	}
	// fsync BEFORE rename: the rename must never make durable a name whose
	// content is still sitting in the page cache.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("state: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("state: close temp for %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("state: rename %s: %w", path, err)
	}
	// fsync the directory so the rename itself is durable. Failure here is
	// reported (the caller may retry) but the file content at path is already
	// complete and valid either way.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("state: sync dir of %s: %w", path, serr)
		}
	}
	return nil
}

// RemoveStaleTemps deletes leftover temporary files in dir that a crashed
// WriteFileAtomic could have left behind (they are hidden ".<name>.tmp-*"
// files and never become visible targets on their own). Safe to call on a
// live directory: in-flight temps that disappear only fail their writer,
// which reports the error and leaves the target intact.
func RemoveStaleTemps(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, ".*.tmp-*"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
