package state

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
)

// trailerMagic marks (and versions) the checksum trailer: "DXS" for DPar2
// checksummed state, "1" for the trailer format version. A future trailer
// layout bumps the digit; readers reject versions they do not know.
const trailerMagic = "DXS1"

// TrailerSize is the on-disk size of the checksum trailer: the 4-byte
// versioned magic followed by the 32-byte sha256 of every payload byte
// before it.
const TrailerSize = len(trailerMagic) + sha256.Size

// ErrNoTrailer is returned by VerifyTrailer when the stream ends cleanly
// with no trailer at all — a legacy file written before checksum framing.
// Callers that accept legacy files treat it as success; callers of strict
// formats (checkpoints, cache entries) treat it as corruption.
var ErrNoTrailer = errors.New("state: stream has no checksum trailer")

// ErrChecksum is the sentinel all checksum-verification failures wrap:
// errors.Is(err, ErrChecksum) is true for a mismatched digest, a mangled
// trailer, and an unknown trailer version.
var ErrChecksum = errors.New("state: content checksum mismatch")

// SumWriter hashes every byte written through it while passing the bytes to
// the underlying writer. Close the payload by calling WriteTrailer, which
// appends the versioned sha256 trailer (the trailer itself is not hashed).
type SumWriter struct {
	w io.Writer
	h hash.Hash
}

// NewSumWriter wraps w with sha256 content hashing.
func NewSumWriter(w io.Writer) *SumWriter {
	return &SumWriter{w: w, h: sha256.New()}
}

// Write implements io.Writer.
func (s *SumWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	// Hash exactly what reached the underlying writer, so a short write
	// cannot desynchronize the digest from the bytes on disk.
	s.h.Write(p[:n])
	return n, err
}

// WriteTrailer appends the checksum trailer for everything written so far to
// the underlying writer. The SumWriter must not be written to afterwards.
func (s *SumWriter) WriteTrailer() error {
	var buf [TrailerSize]byte
	copy(buf[:], trailerMagic)
	copy(buf[len(trailerMagic):], s.h.Sum(nil))
	if _, err := s.w.Write(buf[:]); err != nil {
		return err
	}
	return nil
}

// SumReader hashes every byte read through it. After consuming the payload,
// call VerifyTrailer to read the trailer from the underlying reader and check
// the digest.
type SumReader struct {
	r io.Reader
	h hash.Hash
}

// NewSumReader wraps r with sha256 content hashing. r should be the buffered
// reader the decoder would otherwise read from; the decoder reads payload
// bytes through the SumReader, and VerifyTrailer reads the trailer from r
// directly (unhashed).
func NewSumReader(r io.Reader) *SumReader {
	return &SumReader{r: r, h: sha256.New()}
}

// Read implements io.Reader.
func (s *SumReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.h.Write(p[:n])
	return n, err
}

// VerifyTrailer reads the checksum trailer that follows the payload and
// compares it against the digest of everything read so far. It returns
//
//   - nil when a well-formed trailer matches;
//   - ErrNoTrailer when the stream ends cleanly with no trailer byte at all
//     (a legacy, pre-checksum file);
//   - an error wrapping ErrChecksum when the trailer is truncated, carries an
//     unknown version, or its digest does not match the payload.
func (s *SumReader) VerifyTrailer() error {
	want := s.h.Sum(nil)
	var buf [TrailerSize]byte
	n, err := io.ReadFull(s.r, buf[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return ErrNoTrailer
	}
	if err != nil {
		return fmt.Errorf("%w: truncated trailer (%d of %d bytes)", ErrChecksum, n, TrailerSize)
	}
	if string(buf[:len(trailerMagic)]) != trailerMagic {
		return fmt.Errorf("%w: bad trailer magic %q", ErrChecksum, buf[:len(trailerMagic)])
	}
	if !bytes.Equal(buf[len(trailerMagic):], want) {
		return fmt.Errorf("%w: payload digest does not match trailer", ErrChecksum)
	}
	return nil
}
