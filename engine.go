package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/compute"
	"repro/internal/parafac2"
)

// ErrEngineClosed is returned (or delivered as JobResult.Err) by every
// Engine method called after Close.
var ErrEngineClosed = errors.New("repro: engine is closed")

// Engine is the long-lived entry point for every decomposition in this
// package: it owns one shared compute pool (workers + warm scratch arenas)
// and runs any registered algorithm against it, either synchronously
// (Decompose) or through a bounded job queue (Submit) that lets N tenants
// share the pool with near-zero steady-state allocation.
//
//	eng := repro.NewEngine() // pool width = DefaultConfig().Threads
//	defer eng.Close()
//	res, err := eng.Decompose(ctx, tensor,
//		repro.WithMethod(repro.MethodDPar2), repro.WithRank(10))
//
// Every call accepts a context, checked between ALS iterations and between
// the parallel phases inside one, so jobs are cancellable and
// deadline-bounded; on cancellation the unwrapped ctx.Err() comes back.
// Results are deterministic for a given tensor and options, regardless of
// pool width or how many jobs run concurrently.
//
// An Engine is safe for concurrent use. Close stops the job workers, waits
// for accepted jobs to finish, and releases the pool (unless it was supplied
// with WithEnginePool, in which case the caller keeps ownership).
type Engine struct {
	pool    *compute.Pool
	ownPool bool
	base    Config

	queue chan pendingJob
	wg    sync.WaitGroup

	// mu guards closed; it is held only for instantaneous checks, never
	// across a blocking queue send (a Submit blocked on a full queue while
	// holding even the read lock would, via RWMutex writer priority, stall
	// every other Engine call behind a pending Close). In-flight sends
	// register with sending instead: Close flips closed (stopping new
	// registrations), waits for sending to drain, and only then closes the
	// queue — so no send can race the close.
	mu      sync.RWMutex
	closed  bool
	sending sync.WaitGroup
}

// pendingJob is one queued Submit request.
type pendingJob struct {
	ctx context.Context
	job Job
	out chan JobResult
}

// engineSettings collects EngineOption state before the Engine is built.
type engineSettings struct {
	pool       *compute.Pool
	threads    int
	threadsSet bool
	base       Config
	queueDepth int
	jobWorkers int
}

// EngineOption configures NewEngine.
type EngineOption func(*engineSettings)

// WithEngineThreads sizes the Engine's own pool from a thread count under
// the repository's single clamping rule (n <= 0 means serial). Ignored when
// WithEnginePool is also given.
func WithEngineThreads(n int) EngineOption {
	return func(s *engineSettings) {
		s.threads = n
		s.threadsSet = true
	}
}

// WithEnginePool hands the Engine an existing pool instead of building one.
// The caller keeps ownership: Close will not close it.
func WithEnginePool(p *Pool) EngineOption {
	return func(s *engineSettings) { s.pool = p }
}

// WithBaseConfig sets the Config every call starts from before per-call
// Options apply (default DefaultConfig()). Its Pool field is ignored — the
// Engine's pool always applies — and its Threads field only sizes the
// Engine's pool when neither WithEngineThreads nor WithEnginePool is given.
func WithBaseConfig(cfg Config) EngineOption {
	return func(s *engineSettings) { s.base = cfg }
}

// WithQueueDepth bounds the Submit queue (default 32). When the queue is
// full, Submit blocks until a worker frees a slot or the job's context is
// done — backpressure instead of unbounded buffering.
func WithQueueDepth(n int) EngineOption {
	return func(s *engineSettings) {
		if n > 0 {
			s.queueDepth = n
		}
	}
}

// WithJobConcurrency sets how many submitted jobs execute at once
// (default 4). All of them share the one pool: more concurrent jobs raise
// utilization when single jobs cannot saturate it, at the cost of per-job
// latency.
func WithJobConcurrency(n int) EngineOption {
	return func(s *engineSettings) {
		if n > 0 {
			s.jobWorkers = n
		}
	}
}

// NewEngine builds an Engine. With no options it owns a pool of width
// DefaultConfig().Threads (the paper's 6), a base Config of DefaultConfig(),
// a Submit queue of depth 32, and 4 concurrent job workers.
func NewEngine(opts ...EngineOption) *Engine {
	s := engineSettings{
		base:       DefaultConfig(),
		queueDepth: 32,
		jobWorkers: 4,
	}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}

	e := &Engine{base: s.base}
	switch {
	case s.pool != nil:
		e.pool = s.pool
	case s.threadsSet:
		e.pool = compute.NewPoolFromThreads(s.threads)
		e.ownPool = true
	default:
		e.pool = compute.NewPoolFromThreads(s.base.Threads)
		e.ownPool = true
	}
	// The Engine's pool is the single parallelism knob from here on.
	e.base.Pool = nil
	e.base.Threads = 0

	e.queue = make(chan pendingJob, s.queueDepth)
	e.wg.Add(s.jobWorkers)
	for i := 0; i < s.jobWorkers; i++ {
		go e.jobWorker()
	}
	return e
}

// Pool exposes the Engine's shared pool (e.g. for repro.Fitness-style
// helpers or direct Config users during migration). The Engine retains
// ownership unless the pool came from WithEnginePool.
func (e *Engine) Pool() *Pool { return e.pool }

// Close stops accepting work, waits for already-accepted jobs to finish
// (they still produce results), and closes the Engine-owned pool. Close is
// idempotent; calls after the first wait for the same drain.
func (e *Engine) Close() {
	e.mu.Lock()
	first := !e.closed
	e.closed = true
	e.mu.Unlock()
	if first {
		// No new Submit can register once closed is set; wait out the
		// in-flight queue sends (the job workers keep draining, so a send
		// blocked on a full queue completes), then close the queue.
		e.sending.Wait()
		close(e.queue)
	}
	e.wg.Wait()
	if first && e.ownPool {
		e.pool.Close()
	}
}

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// prepare is the shared preamble of every Engine call: reject a closed
// engine, default a nil ctx, fold the base Config and per-call options into
// a jobSpec, resolve the method against the registry, and pin the spec to
// the shared pool. Callers that cannot run all methods pass dpar2Only.
func (e *Engine) prepare(ctx context.Context, opts []Option, dpar2Only bool, op string) (context.Context, parafac2.Method, jobSpec, error) {
	if e.isClosed() {
		return ctx, nil, jobSpec{}, ErrEngineClosed
	}
	return e.prepareOpen(ctx, opts, dpar2Only, op)
}

// prepareOpen is prepare without the closed check — the path jobs drained
// after Close take (they were accepted before Close and must still run).
func (e *Engine) prepareOpen(ctx context.Context, opts []Option, dpar2Only bool, op string) (context.Context, parafac2.Method, jobSpec, error) {
	spec := jobSpec{method: MethodDPar2, cfg: e.base}
	if ctx == nil {
		ctx = context.Background()
	}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&spec); err != nil {
			return ctx, nil, spec, err
		}
	}
	m, err := parafac2.MustLookup(string(spec.method))
	if err != nil {
		return ctx, nil, spec, err
	}
	if dpar2Only && m.Name() != string(MethodDPar2) {
		return ctx, nil, spec, fmt.Errorf("repro: %s supports only %s, got %s", op, MethodDPar2, m.Name())
	}
	spec.cfg.Pool = e.pool
	spec.cfg.Threads = e.pool.Workers()
	return ctx, m, spec, nil
}

// Decompose runs one decomposition synchronously on the shared pool: the
// Engine's base Config plus opts select the algorithm (default MethodDPar2)
// and its parameters. It is the single entry point every algorithm runs
// through; the old per-method free functions are deprecated wrappers.
func (e *Engine) Decompose(ctx context.Context, t *Irregular, opts ...Option) (*Result, error) {
	if e.isClosed() {
		return nil, ErrEngineClosed
	}
	return e.decompose(ctx, t, opts)
}

// decompose is Decompose without the closed check — the path drained jobs
// take after Close has begun. prepare would re-reject those, so its closed
// check is skipped by construction: a drained job was accepted before Close.
func (e *Engine) decompose(ctx context.Context, t *Irregular, opts []Option) (*Result, error) {
	if t == nil {
		return nil, errors.New("repro: Decompose with nil tensor")
	}
	ctx, m, spec, err := e.prepareOpen(ctx, opts, false, "Decompose")
	if err != nil {
		return nil, err
	}
	return m.Decompose(ctx, t, spec.cfg)
}

// Compress runs only the two-stage compression on the shared pool, for
// callers that amortize preprocessing across several DecomposeCompressed
// runs (rank sweeps, hyperparameter exploration).
func (e *Engine) Compress(ctx context.Context, t *Irregular, opts ...Option) (*Compressed, error) {
	if t == nil {
		return nil, errors.New("repro: Compress with nil tensor")
	}
	ctx, _, spec, err := e.prepare(ctx, opts, true, "Compress")
	if err != nil {
		return nil, err
	}
	return parafac2.CompressCtx(ctx, t, spec.cfg)
}

// DecomposeCompressed runs DPar2's iteration phase on a previously
// compressed tensor (only DPar2 iterates on the compressed form; any other
// WithMethod is an error). Result.Fitness is the compressed-space estimate
// (Result.FitnessKind == FitnessCompressed); see DPar2FromCompressed, and
// use Engine.Fitness for the true value when the tensor is at hand.
func (e *Engine) DecomposeCompressed(ctx context.Context, c *Compressed, opts ...Option) (*Result, error) {
	if c == nil {
		return nil, errors.New("repro: DecomposeCompressed with nil Compressed")
	}
	ctx, _, spec, err := e.prepare(ctx, opts, true, "DecomposeCompressed")
	if err != nil {
		return nil, err
	}
	return parafac2.DPar2FromCompressedCtx(ctx, c, spec.cfg)
}

// NewStream starts a streaming DPar2 decomposition on the shared pool (only
// DPar2 streams; any other WithMethod is an error): the initial batch is
// compressed and decomposed now; later Absorb calls warm-start from the
// previous factors. The stream keeps using the Engine's pool — close the
// Engine only after the stream is done (absorbs on a closed engine still
// work, just serially).
func (e *Engine) NewStream(ctx context.Context, initial *Irregular, opts ...Option) (*StreamingDPar2, error) {
	if initial == nil {
		return nil, errors.New("repro: NewStream with nil tensor")
	}
	ctx, _, spec, err := e.prepare(ctx, opts, true, "NewStream")
	if err != nil {
		return nil, err
	}
	return parafac2.NewStreamingDPar2Ctx(ctx, initial, spec.cfg)
}

// Fitness evaluates a result against a tensor on the Engine's pool (the
// package-level Fitness uses a process-wide default pool instead). The value
// is always the FitnessTrue quantity — use it to tell the true fit from the
// compressed-space estimate a streaming refresh or DecomposeCompressed left
// in Result.Fitness (Result.FitnessKind distinguishes the two). Factored
// results are evaluated without materializing any dense Q_k.
func (e *Engine) Fitness(t *Irregular, r *Result) float64 {
	return parafac2.FitnessWith(t, r, e.pool)
}

// ----- The batched job service ---------------------------------------------

// Job is one queued decomposition request: a tensor plus the per-job options
// (method, rank, seed, ...) that Decompose would take. Tag is an opaque
// caller identifier echoed in the JobResult.
type Job struct {
	Tensor  *Irregular
	Options []Option
	Tag     string
}

// JobResult is the outcome of one submitted Job. Exactly one of Result/Err
// is set (Err may be the job context's error if it was cancelled while
// queued or mid-run, or ErrEngineClosed if submitted after Close).
type JobResult struct {
	Tag    string
	Result *Result
	Err    error
}

// Submit enqueues a Job on the bounded queue and returns a 1-buffered channel
// that receives exactly one JobResult — the batched multi-tensor service
// path: N tenants submit against one Engine, the job workers drain the queue
// onto the shared pool, and the workspace arena keeps steady-state
// allocation near zero across jobs.
//
// Submit blocks only while the queue is full (backpressure); ctx applies to
// the whole job lifetime — waiting for a queue slot, waiting for a worker,
// and the decomposition itself. A ctx cancelled anywhere along that path
// delivers ctx.Err() on the returned channel.
func (e *Engine) Submit(ctx context.Context, job Job) <-chan JobResult {
	out := make(chan JobResult, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	// Register as an in-flight sender under the read lock, then release it
	// BEFORE the potentially blocking send: holding mu across the send would
	// stall every Decompose/Compress behind a pending Close (RWMutex writer
	// priority) whenever the queue is full. Close waits for registered
	// senders before closing the queue, so the send below cannot race a
	// close(queue).
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		out <- JobResult{Tag: job.Tag, Err: ErrEngineClosed}
		return out
	}
	e.sending.Add(1)
	e.mu.RUnlock()
	defer e.sending.Done()
	select {
	case e.queue <- pendingJob{ctx: ctx, job: job, out: out}:
	case <-ctx.Done():
		out <- JobResult{Tag: job.Tag, Err: ctx.Err()}
	}
	return out
}

// jobWorker drains the queue until Close closes it; accepted jobs always
// deliver a result, even when drained after Close began.
func (e *Engine) jobWorker() {
	defer e.wg.Done()
	for pj := range e.queue {
		pj.out <- e.runJob(pj)
	}
}

func (e *Engine) runJob(pj pendingJob) JobResult {
	if err := pj.ctx.Err(); err != nil {
		return JobResult{Tag: pj.job.Tag, Err: err}
	}
	res, err := e.decompose(pj.ctx, pj.job.Tensor, pj.job.Options)
	return JobResult{Tag: pj.job.Tag, Result: res, Err: err}
}
