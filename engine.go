package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/parafac2"
	"repro/internal/state"
)

// ErrEngineClosed is returned (or delivered as JobResult.Err) by every
// Engine method called after Close.
var ErrEngineClosed = errors.New("repro: engine is closed")

// ErrQuotaExceeded is the sentinel every per-tenant quota rejection matches
// via errors.Is; the concrete error delivered on the Submit result channel
// is a *QuotaError carrying the tenant. See WithTenantQuota.
var ErrQuotaExceeded = admission.ErrQuotaExceeded

// QuotaError is the typed quota rejection: which tenant was over which
// MaxQueued limit. errors.Is(err, ErrQuotaExceeded) matches it.
type QuotaError = admission.QuotaError

// TenantQuota bounds one tenant's share of the Submit queue: at most
// MaxQueued jobs waiting and MaxRunning jobs executing at once. Configure
// with WithTenantQuota / WithTenantQuotaOverrides.
type TenantQuota = admission.Quota

// EngineMetrics is the observation hook on the Engine's admission scheduler:
// queue depth on admit and pop, per-job queue-wait and run latency, and
// per-tenant admitted/rejected/completed/cancelled events. Register with
// WithEngineMetrics; EngineStats is a ready-made implementation.
// Implementations must be safe for concurrent use.
type EngineMetrics = admission.Metrics

// EngineStats is a ready-made EngineMetrics: per-tenant counters and latency
// totals with a Snapshot accessor and a printable served-traffic table
// (String). The zero value is ready to use.
type EngineStats = admission.Stats

// TenantStats is one tenant's row in an EngineStats snapshot.
type TenantStats = admission.TenantStats

// EngineStatsSnapshot is the marshallable form of an EngineStats: tenants in
// deterministic sorted order plus the queue's high-water depth, under stable
// JSON field names. EngineStats.MarshalJSON emits exactly this shape — it is
// the /v1/stats wire schema of the HTTP front end (docs/SERVICE.md).
type EngineStatsSnapshot = admission.StatsSnapshot

// Engine is the long-lived entry point for every decomposition in this
// package: it owns one shared compute pool (workers + warm scratch arenas)
// and runs any registered algorithm against it, either synchronously
// (Decompose) or through an admission-controlled job queue (Submit) that
// lets N tenants share the pool without starving each other.
//
//	eng := repro.NewEngine() // pool width = DefaultConfig().Threads
//	defer eng.Close()
//	res, err := eng.Decompose(ctx, tensor,
//		repro.WithMethod(repro.MethodDPar2), repro.WithRank(10))
//
// Every call accepts a context, checked between ALS iterations and between
// the parallel phases inside one, so jobs are cancellable and
// deadline-bounded; on cancellation the unwrapped ctx.Err() comes back.
// Results are deterministic for a given tensor and options, regardless of
// pool width, how many jobs run concurrently, or how priorities reorder the
// queue.
//
// An Engine is safe for concurrent use. Close stops the job workers, waits
// for accepted jobs to finish, and releases the pool (unless it was supplied
// with WithEnginePool, in which case the caller keeps ownership).
//
// Engine construction options validate eagerly: a zero or negative value
// where a positive one is required (queue depth, job concurrency, quota
// bounds) panics instead of silently falling back to the default — a
// caller's accidentally-computed 0 is a bug worth hearing about. Per-call
// Options, by contrast, return errors from the call they were passed to.
type Engine struct {
	pool    *compute.Pool
	ownPool bool
	base    Config

	// stateDir is the durable-state root (WithStateDir): relative
	// SaveStream/ResumeStream paths resolve under it and the result cache
	// lives in its "cache" subdirectory. Empty = no durable state.
	stateDir string
	// cache is the content-addressed result cache (WithResultCache), nil
	// when caching is off. metrics is the WithEngineMetrics hook, kept so
	// cache hits/misses can reach a CacheMetrics implementation.
	cache   *state.Cache
	metrics EngineMetrics

	// sched is the admission-controlled job queue: a bounded priority queue
	// (higher Job.Priority pops first, FIFO within a class) with per-tenant
	// quotas and the metrics hook. It replaces the plain FIFO channel of the
	// original Submit path.
	sched *admission.Queue[pendingJob]
	wg    sync.WaitGroup

	// mu guards closed for the synchronous entry points (Decompose,
	// Compress, ...). Submit no longer needs it: admission into sched is a
	// mutex-guarded state change inside the scheduler, not a channel send,
	// so the old in-flight-sender WaitGroup handshake (which existed only to
	// keep a blocked queue send from racing close(queue)) is gone — see
	// Close.
	mu     sync.RWMutex
	closed bool
}

// pendingJob is one admitted Submit request, carried as the scheduler
// ticket's payload.
type pendingJob struct {
	ctx context.Context
	job Job
	out chan JobResult
}

// engineSettings collects EngineOption state before the Engine is built.
type engineSettings struct {
	pool       *compute.Pool
	threads    int
	threadsSet bool
	base       Config
	queueDepth int
	jobWorkers int

	quota     TenantQuota
	overrides map[string]TenantQuota
	metrics   EngineMetrics

	stateDir   string
	cacheBytes int64
}

// EngineOption configures NewEngine.
type EngineOption func(*engineSettings)

// WithEngineThreads sizes the Engine's own pool from a thread count under
// the repository's single clamping rule (n <= 0 means serial). Ignored when
// WithEnginePool is also given.
func WithEngineThreads(n int) EngineOption {
	return func(s *engineSettings) {
		s.threads = n
		s.threadsSet = true
	}
}

// WithEnginePool hands the Engine an existing pool instead of building one.
// The caller keeps ownership: Close will not close it.
func WithEnginePool(p *Pool) EngineOption {
	return func(s *engineSettings) { s.pool = p }
}

// WithBaseConfig sets the Config every call starts from before per-call
// Options apply (default DefaultConfig()). Its Pool field is ignored — the
// Engine's pool always applies — and its Threads field only sizes the
// Engine's pool when neither WithEngineThreads nor WithEnginePool is given.
func WithBaseConfig(cfg Config) EngineOption {
	return func(s *engineSettings) { s.base = cfg }
}

// WithQueueDepth bounds the Submit queue (default 32). When the queue is
// full, in-quota Submits block until a worker frees a slot or the job's
// context is done — backpressure instead of unbounded buffering. n must be
// positive; a zero or negative depth panics (it would otherwise silently
// yield the default).
func WithQueueDepth(n int) EngineOption {
	return func(s *engineSettings) {
		if n <= 0 {
			panic(fmt.Sprintf("repro: WithQueueDepth(%d): depth must be positive", n))
		}
		s.queueDepth = n
	}
}

// WithJobConcurrency sets how many submitted jobs execute at once
// (default 4). All of them share the one pool: more concurrent jobs raise
// utilization when single jobs cannot saturate it, at the cost of per-job
// latency. n must be positive; a zero or negative count panics (it would
// otherwise silently yield the default).
func WithJobConcurrency(n int) EngineOption {
	return func(s *engineSettings) {
		if n <= 0 {
			panic(fmt.Sprintf("repro: WithJobConcurrency(%d): concurrency must be positive", n))
		}
		s.jobWorkers = n
	}
}

// WithTenantQuota bounds every tenant's share of the Submit queue: at most
// maxQueued jobs waiting and maxRunning jobs executing per tenant at once.
// A Submit that would exceed the tenant's queued quota fails immediately —
// the result channel delivers a *QuotaError matching ErrQuotaExceeded —
// without consuming a shared queue slot, so one noisy tenant cannot starve
// the rest; backpressure (blocking on a full queue) still applies to
// in-quota jobs. The running bound is enforced by the scheduler: a tenant at
// maxRunning has its queued jobs skipped (the workers stay busy with other
// tenants) until one of its jobs completes.
//
// Tenants are the Job.Tenant strings; the empty string is a valid tenant
// (the default bucket). Without this option no quota applies. Both bounds
// must be positive; zero or negative values panic — to leave a tenant
// unbounded, give it no quota (or an override large enough to never bind).
func WithTenantQuota(maxQueued, maxRunning int) EngineOption {
	return func(s *engineSettings) {
		if maxQueued <= 0 || maxRunning <= 0 {
			panic(fmt.Sprintf("repro: WithTenantQuota(%d, %d): quota bounds must be positive",
				maxQueued, maxRunning))
		}
		s.quota = TenantQuota{MaxQueued: maxQueued, MaxRunning: maxRunning}
	}
}

// WithTenantQuotaOverrides replaces the WithTenantQuota default for specific
// tenants (e.g. a larger share for a paying tenant, a tighter one for a
// batch pipeline). Every override's bounds must be positive; zero or
// negative values panic, as does a nil map.
func WithTenantQuotaOverrides(per map[string]TenantQuota) EngineOption {
	return func(s *engineSettings) {
		if per == nil {
			panic("repro: WithTenantQuotaOverrides(nil): override map must be non-nil")
		}
		// Copy: the scheduler reads the overrides on every admit/pop, so a
		// caller later mutating its own map must not race those reads.
		own := make(map[string]TenantQuota, len(per))
		for tenant, q := range per {
			if q.MaxQueued <= 0 || q.MaxRunning <= 0 {
				panic(fmt.Sprintf("repro: WithTenantQuotaOverrides: tenant %q quota (%d, %d): bounds must be positive",
					tenant, q.MaxQueued, q.MaxRunning))
			}
			own[tenant] = q
		}
		s.overrides = own
	}
}

// WithEngineMetrics registers the observation hook on the Submit scheduler:
// queue depth on admit/pop, per-job queue-wait and run latency, per-tenant
// admitted/rejected/completed/cancelled events. m must be non-nil (omit the
// option for no observation) and safe for concurrent use; EngineStats is a
// ready-made implementation.
func WithEngineMetrics(m EngineMetrics) EngineOption {
	return func(s *engineSettings) {
		if m == nil {
			panic("repro: WithEngineMetrics(nil): metrics hook must be non-nil")
		}
		s.metrics = m
	}
}

// WithStateDir roots the Engine's durable state at dir: relative
// SaveStream/ResumeStream paths resolve under it, and WithResultCache stores
// its entries in its "cache" subdirectory. The directory is created if
// missing. dir must be non-empty; an empty dir panics (it would silently
// mean "no durable state").
func WithStateDir(dir string) EngineOption {
	return func(s *engineSettings) {
		if dir == "" {
			panic("repro: WithStateDir(\"\"): directory must be non-empty")
		}
		s.stateDir = dir
	}
}

// WithResultCache enables the content-addressed result cache: Decompose and
// Submit consult it before running a method and populate it after a
// successful run, keyed by a sha256 of the tensor's content plus every
// deterministic knob (method, rank, seed, iteration budget, sketch
// parameters — see docs/DURABILITY.md). Entries are persisted atomically
// under the WithStateDir root — which must also be configured, or NewEngine
// panics — and evicted least-recently-used beyond maxBytes of payload.
// maxBytes must be positive; zero or negative panics.
//
// Lookups with a Progress callback or a convergence trace bypass the cache
// (their side effects must run). A cache hit restores the factors plus
// Iters/Fitness/FitnessKind/PreprocessedBytes; timings are zero, as in any
// deserialized result.
func WithResultCache(maxBytes int64) EngineOption {
	return func(s *engineSettings) {
		if maxBytes <= 0 {
			panic(fmt.Sprintf("repro: WithResultCache(%d): byte bound must be positive", maxBytes))
		}
		s.cacheBytes = maxBytes
	}
}

// NewEngine builds an Engine. With no options it owns a pool of width
// DefaultConfig().Threads (the paper's 6), a base Config of DefaultConfig(),
// a Submit queue of depth 32, 4 concurrent job workers, no tenant quotas,
// and no metrics hook.
func NewEngine(opts ...EngineOption) *Engine {
	s := engineSettings{
		base:       DefaultConfig(),
		queueDepth: 32,
		jobWorkers: 4,
	}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}

	e := &Engine{base: s.base, stateDir: s.stateDir, metrics: s.metrics}
	if s.stateDir != "" {
		if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
			panic(fmt.Sprintf("repro: WithStateDir(%q): %v", s.stateDir, err))
		}
		// A SaveStream interrupted by a crash leaves a hidden ".<name>.tmp-*"
		// orphan next to its target; sweep them so the state root does not
		// accumulate dead temps across restarts.
		if err := state.RemoveStaleTemps(s.stateDir); err != nil {
			panic(fmt.Sprintf("repro: WithStateDir(%q): sweep stale temps: %v", s.stateDir, err))
		}
	}
	if s.cacheBytes > 0 {
		if s.stateDir == "" {
			panic("repro: WithResultCache requires WithStateDir")
		}
		cache, err := state.OpenCache(filepath.Join(s.stateDir, "cache"), s.cacheBytes)
		if err != nil {
			panic(fmt.Sprintf("repro: WithResultCache: %v", err))
		}
		e.cache = cache
	}
	switch {
	case s.pool != nil:
		e.pool = s.pool
	case s.threadsSet:
		e.pool = compute.NewPoolFromThreads(s.threads)
		e.ownPool = true
	default:
		e.pool = compute.NewPoolFromThreads(s.base.Threads)
		e.ownPool = true
	}
	// The Engine's pool is the single parallelism knob from here on.
	e.base.Pool = nil
	e.base.Threads = 0

	e.sched = admission.New[pendingJob](admission.Config{
		Capacity:     s.queueDepth,
		DefaultQuota: s.quota,
		Overrides:    s.overrides,
		Metrics:      s.metrics,
	})
	e.wg.Add(s.jobWorkers)
	for i := 0; i < s.jobWorkers; i++ {
		go e.jobWorker()
	}
	return e
}

// Pool exposes the Engine's shared pool (e.g. for repro.Fitness-style
// helpers or direct Config users during migration). The Engine retains
// ownership unless the pool came from WithEnginePool; after Close an
// Engine-owned pool runs submitted work inline on the caller (serial).
func (e *Engine) Pool() *Pool { return e.pool }

// Close stops accepting work, waits for already-accepted jobs to finish
// (they still produce results), and closes the Engine-owned pool. Close is
// idempotent; calls after the first wait for the same drain.
func (e *Engine) Close() {
	e.mu.Lock()
	first := !e.closed
	e.closed = true
	e.mu.Unlock()
	if first {
		// Closing the scheduler atomically (a) fails every Submit that has
		// not yet been admitted — including ones blocked on backpressure,
		// which wake and deliver ErrEngineClosed — and (b) keeps Pop serving
		// the already-admitted backlog. No handshake with in-flight senders
		// is needed anymore: admission is a mutex-guarded state change
		// inside the scheduler, so nothing can race "the queue closing" the
		// way a blocking channel send could race close(chan).
		e.sched.Close()
	}
	// Each worker exits once Pop reports closed-and-drained, so this wait
	// observes every accepted job's completion.
	e.wg.Wait()
	if first && e.ownPool {
		e.pool.Close()
	}
}

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// newJobSpec seeds a jobSpec from the Engine's base configuration: the
// base Config's deterministic knobs become the starting Spec (method
// defaulting to DPar2) and its Progress/TrackConvergence fields the
// starting overlay. Options then mutate either half.
func (e *Engine) newJobSpec() jobSpec {
	return jobSpec{
		spec: specFromConfig(MethodDPar2, e.base),
		run:  runOverlay{trackConvergence: e.base.TrackConvergence, progress: e.base.Progress},
	}
}

// prepare is the shared preamble of every Engine call: reject a closed
// engine, default a nil ctx, compile the per-call options over the base
// into a jobSpec (canonical Spec + local overlay), resolve the method
// against the registry, and materialize the Config pinned to the shared
// pool. Callers that cannot run all methods pass dpar2Only.
func (e *Engine) prepare(ctx context.Context, opts []Option, dpar2Only bool, op string) (context.Context, parafac2.Method, jobSpec, Config, error) {
	if e.isClosed() {
		return ctx, nil, jobSpec{}, Config{}, ErrEngineClosed
	}
	return e.prepareOpen(ctx, opts, dpar2Only, op)
}

// prepareOpen is prepare without the closed check — the path jobs drained
// after Close take (they were accepted before Close and must still run).
func (e *Engine) prepareOpen(ctx context.Context, opts []Option, dpar2Only bool, op string) (context.Context, parafac2.Method, jobSpec, Config, error) {
	js := e.newJobSpec()
	if ctx == nil {
		ctx = context.Background()
	}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&js); err != nil {
			return ctx, nil, js, Config{}, err
		}
	}
	m, err := parafac2.MustLookup(string(js.spec.Method))
	if err != nil {
		return ctx, nil, js, Config{}, err
	}
	if dpar2Only && m.Name() != string(MethodDPar2) {
		return ctx, nil, js, Config{}, fmt.Errorf("repro: %s supports only %s, got %s", op, MethodDPar2, m.Name())
	}
	cfg := js.spec.config(js.run)
	cfg.Pool = e.pool
	cfg.Threads = e.pool.Workers()
	return ctx, m, js, cfg, nil
}

// Decompose runs one decomposition synchronously on the shared pool: the
// Engine's base Config plus opts select the algorithm (default MethodDPar2)
// and its parameters. It is the single entry point every algorithm runs
// through; the old per-method free functions are deprecated wrappers.
func (e *Engine) Decompose(ctx context.Context, t *Irregular, opts ...Option) (*Result, error) {
	if e.isClosed() {
		return nil, ErrEngineClosed
	}
	return e.decompose(ctx, t, opts, "")
}

// decompose is Decompose without the closed check — the path drained jobs
// take after Close has begun. prepare would re-reject those, so its closed
// check is skipped by construction: a drained job was accepted before Close.
// tenant attributes cache hit/miss events (Decompose passes the default
// bucket, runJob the job's tenant).
func (e *Engine) decompose(ctx context.Context, t *Irregular, opts []Option, tenant string) (*Result, error) {
	if t == nil {
		return nil, errors.New("repro: Decompose with nil tensor")
	}
	ctx, m, js, cfg, err := e.prepareOpen(ctx, opts, false, "Decompose")
	if err != nil {
		return nil, err
	}
	key, cacheable := e.resultCacheKey(m, t, js)
	if cacheable {
		if res, ok := e.cacheLookup(key); ok {
			e.noteCache(tenant, true)
			return res, nil
		}
		e.noteCache(tenant, false)
	}
	res, err := m.Decompose(ctx, t, cfg)
	if err == nil && cacheable {
		e.cacheStore(key, res)
	}
	return res, err
}

// Compress runs only the two-stage compression on the shared pool, for
// callers that amortize preprocessing across several DecomposeCompressed
// runs (rank sweeps, hyperparameter exploration).
func (e *Engine) Compress(ctx context.Context, t *Irregular, opts ...Option) (*Compressed, error) {
	if t == nil {
		return nil, errors.New("repro: Compress with nil tensor")
	}
	ctx, _, _, cfg, err := e.prepare(ctx, opts, true, "Compress")
	if err != nil {
		return nil, err
	}
	return parafac2.CompressCtx(ctx, t, cfg)
}

// DecomposeCompressed runs DPar2's iteration phase on a previously
// compressed tensor (only DPar2 iterates on the compressed form; any other
// WithMethod is an error). Result.Fitness is the compressed-space estimate
// (Result.FitnessKind == FitnessCompressed); see DPar2FromCompressed, and
// use Engine.Fitness for the true value when the tensor is at hand.
func (e *Engine) DecomposeCompressed(ctx context.Context, c *Compressed, opts ...Option) (*Result, error) {
	if c == nil {
		return nil, errors.New("repro: DecomposeCompressed with nil Compressed")
	}
	ctx, _, _, cfg, err := e.prepare(ctx, opts, true, "DecomposeCompressed")
	if err != nil {
		return nil, err
	}
	return parafac2.DPar2FromCompressedCtx(ctx, c, cfg)
}

// NewStream starts a streaming DPar2 decomposition on the shared pool (only
// DPar2 streams; any other WithMethod is an error): the initial batch is
// compressed and decomposed now; later Absorb calls warm-start from the
// previous factors. The stream keeps using the Engine's pool — close the
// Engine only after the stream is done (absorbs on a closed engine still
// work, just serially).
func (e *Engine) NewStream(ctx context.Context, initial *Irregular, opts ...Option) (*StreamingDPar2, error) {
	if initial == nil {
		return nil, errors.New("repro: NewStream with nil tensor")
	}
	ctx, _, _, cfg, err := e.prepare(ctx, opts, true, "NewStream")
	if err != nil {
		return nil, err
	}
	return parafac2.NewStreamingDPar2Ctx(ctx, initial, cfg)
}

// Fitness evaluates a result against a tensor on the Engine's pool (the
// package-level Fitness uses a process-wide default pool instead). The value
// is always the FitnessTrue quantity — use it to tell the true fit from the
// compressed-space estimate a streaming refresh or DecomposeCompressed left
// in Result.Fitness (Result.FitnessKind distinguishes the two). Factored
// results are evaluated without materializing any dense Q_k.
//
// Fitness stays usable after Close: like stream absorbs on a closed engine,
// post-Close evaluation runs serially. The isClosed branch below routes the
// common case to an explicit nil-pool (serial) evaluation; a Close racing
// the check is also safe, because a closed compute.Pool is documented to run
// submitted work inline on the caller — serial either way, same value.
func (e *Engine) Fitness(t *Irregular, r *Result) float64 {
	if e.isClosed() {
		return parafac2.FitnessWith(t, r, nil)
	}
	return parafac2.FitnessWith(t, r, e.pool)
}

// ----- The batched job service ---------------------------------------------

// Job is one queued decomposition request: a tensor plus the per-job options
// (method, rank, seed, ...) that Decompose would take. Tag is an opaque
// caller identifier echoed in the JobResult.
type Job struct {
	Tensor  *Irregular
	Options []Option
	Tag     string

	// Tenant names the quota bucket this job counts against (see
	// WithTenantQuota). Tenants are opaque strings; the empty string is a
	// valid tenant — the default bucket every untagged job shares.
	Tenant string

	// Priority orders queued jobs: a higher value runs earlier, ties run in
	// submission order (FIFO within a priority class). The default 0 is a
	// valid class; negative priorities run after it. Priority reorders only
	// WHEN a job runs, never what it computes — results are bit-identical
	// for a fixed tensor and options at any priority and any queue state.
	Priority int
}

// JobResult is the outcome of one submitted Job. Exactly one of Result/Err
// is set. Err is one of: the job context's error (ctx.Err(), if cancelled
// while queued or mid-run), ErrEngineClosed (submitted after Close), a
// *QuotaError matching ErrQuotaExceeded (the tenant was over its queued
// quota), or the decomposition's own error.
type JobResult struct {
	Tag    string
	Result *Result
	Err    error
}

// Submit runs a Job through the admission-controlled queue and returns a
// 1-buffered channel that receives exactly one JobResult — the multi-tenant
// service path: N tenants submit against one Engine, the job workers drain
// the queue in (Priority, FIFO) order onto the shared pool, and per-tenant
// quotas keep any one tenant from starving the rest.
//
// Admission is immediate for over-quota tenants (a *QuotaError matching
// ErrQuotaExceeded on the channel, no queue slot consumed) and blocking only
// while the queue is full (backpressure for in-quota jobs). ctx applies to
// the whole job lifetime — waiting for a queue slot, waiting for a worker,
// and the decomposition itself; a ctx cancelled anywhere along that path
// delivers ctx.Err() on the returned channel, and a job cancelled while
// still queued releases its tenant's quota without ever occupying a worker.
func (e *Engine) Submit(ctx context.Context, job Job) <-chan JobResult {
	out := make(chan JobResult, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	_, err := e.sched.Admit(ctx, job.Tenant, job.Priority, pendingJob{ctx: ctx, job: job, out: out},
		func(err error) {
			// Cancelled while queued: the scheduler already released the
			// tenant's quota and guarantees no worker will see the ticket.
			out <- JobResult{Tag: job.Tag, Err: err}
		})
	if err != nil {
		if errors.Is(err, admission.ErrClosed) {
			err = ErrEngineClosed
		}
		out <- JobResult{Tag: job.Tag, Err: err}
	}
	return out
}

// jobWorker drains the scheduler until Close drains it; accepted jobs always
// deliver a result, even when popped after Close began. The ticket is
// Finished (releasing the tenant's running quota) before the result is
// delivered, so a caller that receives a result can immediately resubmit
// without tripping its own quota.
func (e *Engine) jobWorker() {
	defer e.wg.Done()
	for {
		tk, ok := e.sched.Pop()
		if !ok {
			return
		}
		jr := e.runJob(tk.Payload)
		tk.Finish(jr.Err)
		tk.Payload.out <- jr
	}
}

func (e *Engine) runJob(pj pendingJob) JobResult {
	if err := pj.ctx.Err(); err != nil {
		return JobResult{Tag: pj.job.Tag, Err: err}
	}
	res, err := e.decompose(pj.ctx, pj.job.Tensor, pj.job.Options, pj.job.Tenant)
	return JobResult{Tag: pj.job.Tag, Result: res, Err: err}
}
