package repro

import (
	"math"
	"testing"

	"repro/internal/parafac2"
)

// TestDPar2FitnessMatchesRecordedBaseline pins the end-to-end numerics of
// the exact BenchmarkDPar2 workload against the fitness recorded in
// BENCH_1.json. Kernel re-blocking is allowed to perturb accumulation order
// only inside lapack (serial per problem, so still thread-count
// independent); the resulting fitness drift must stay within 1e-9 of the
// recorded value. Measured drift after the register-tiled kernels and the
// batched Jacobi sweep landed: ~3e-14.
func TestDPar2FitnessMatchesRecordedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark workload")
	}
	ten := benchTensor(1)
	cfg := benchConfig(10)
	cfg.Tol = 0
	res, err := parafac2.DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const recorded = 0.955924327928656 // BENCH_1.json this_pr fitness
	if d := math.Abs(res.Fitness - recorded); d > 1e-9 {
		t.Fatalf("fitness %.15f drifted %.3g from recorded baseline %.15f (budget 1e-9)",
			res.Fitness, d, recorded)
	}
}
