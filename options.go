package repro

import (
	"fmt"

	"repro/internal/parafac2"
)

// MethodID names a registered decomposition algorithm for WithMethod. The
// four algorithms of the paper ship registered; Methods lists everything the
// registry currently knows (including future registrations).
type MethodID string

const (
	// MethodDPar2 is the paper's method: two-stage randomized-SVD
	// compression + ALS iterations whose cost is independent of the slice
	// heights. The default when no WithMethod option is given.
	MethodDPar2 MethodID = "dpar2"
	// MethodRDALS is the RD-ALS baseline (Cheng & Haardt 2019).
	MethodRDALS MethodID = "rd-als"
	// MethodALS is classical PARAFAC2-ALS (Kiers et al. 1999).
	MethodALS MethodID = "als"
	// MethodSPARTan is the SPARTan-style baseline (Perros et al. 2017)
	// adapted to dense data.
	MethodSPARTan MethodID = "spartan"
)

// Methods returns the canonical names of every registered algorithm, in the
// paper's legend order.
func Methods() []string { return parafac2.MethodNames() }

// jobSpec is the resolved per-call request an Engine executes: the
// canonical serializable Spec (method + the nine deterministic knobs) plus
// the local-only runOverlay of non-serializable request state. Options
// mutate it; the Engine materializes a Config and pins it to the shared
// pool afterwards (a per-call Pool/Threads cannot override the Engine's —
// that is the point of the Engine).
type jobSpec struct {
	spec Spec
	run  runOverlay
}

// runOverlay is the per-call state that deliberately does NOT travel with a
// Spec: in-process callbacks and trace capture. Requests arriving over a
// transport (internal/service) always carry a zero overlay; in-process
// callers layer these options over any Spec.
type runOverlay struct {
	trackConvergence bool
	progress         func(iter int, measure float64) bool
}

// Option configures one decomposition request (Engine.Decompose, a submitted
// Job, Engine.Compress, Engine.NewStream). Options apply in order over the
// Engine's base Config; a later option wins. An invalid option surfaces as an
// error from the call it was passed to, before any work starts — the
// per-call half of the repository's validation rule. (EngineOptions, which
// configure NewEngine itself, panic on invalid values instead: a
// misconfigured engine is a programming error, not a request to fail.)
type Option func(*jobSpec) error

// WithMethod selects the algorithm (default MethodDPar2). The name is
// resolved against the registry at run time, so aliases the CLI accepts
// ("rdals", "parafac2-als") work too.
func WithMethod(m MethodID) Option {
	return func(j *jobSpec) error {
		if _, err := parafac2.MustLookup(string(m)); err != nil {
			return err
		}
		j.spec.Method = m
		return nil
	}
}

// WithRank sets the target rank R.
func WithRank(r int) Option {
	return func(j *jobSpec) error {
		if r <= 0 {
			return fmt.Errorf("repro: WithRank(%d): rank must be positive", r)
		}
		j.spec.Rank = r
		return nil
	}
}

// WithMaxIters bounds the ALS iterations (the paper uses 32).
func WithMaxIters(n int) Option {
	return func(j *jobSpec) error {
		if n <= 0 {
			return fmt.Errorf("repro: WithMaxIters(%d): must be positive", n)
		}
		j.spec.MaxIters = n
		return nil
	}
}

// WithTolerance sets the relative convergence tolerance (0 runs MaxIters
// iterations unconditionally).
func WithTolerance(tol float64) Option {
	return func(j *jobSpec) error {
		if tol < 0 {
			return fmt.Errorf("repro: WithTolerance(%g): must be >= 0", tol)
		}
		j.spec.Tol = tol
		return nil
	}
}

// WithSeed sets the seed driving factor initialization and randomized
// sketches. Two runs with identical options and tensor are bit-identical.
func WithSeed(seed uint64) Option {
	return func(j *jobSpec) error {
		j.spec.Seed = seed
		return nil
	}
}

// WithOversample sets the randomized-SVD oversampling parameter (DPar2 only).
func WithOversample(p int) Option {
	return func(j *jobSpec) error {
		if p < 0 {
			return fmt.Errorf("repro: WithOversample(%d): must be >= 0", p)
		}
		j.spec.Oversample = p
		return nil
	}
}

// WithShardRows sets the stage-1 sharding threshold (DPar2 only): slices
// with more than n rows are sketched in row shards of at most n rows (floored
// at the sketch width rank+oversample), run as independent work units on the
// Engine's pool, and merged by a second small randomized SVD. n = 0 means
// the DefaultShardRows threshold (64k rows); negative disables sharding. Sharding changes neither the factor contract
// nor reproducibility — a fixed (tensor, options) pair is still
// bit-identical across runs and pool widths — but bounds per-shard stage-1
// scratch by O(n·(rank+oversample)) and lets one tall slice use the whole
// pool.
func WithShardRows(n int) Option {
	return func(j *jobSpec) error {
		j.spec.ShardRows = n
		return nil
	}
}

// WithPowerIters sets the randomized-SVD power-iteration count (DPar2 only).
func WithPowerIters(q int) Option {
	return func(j *jobSpec) error {
		if q < 0 {
			return fmt.Errorf("repro: WithPowerIters(%d): must be >= 0", q)
		}
		j.spec.PowerIters = q
		return nil
	}
}

// WithRidge adds λ·I to the Gram matrices of the normal-equation solves.
func WithRidge(lambda float64) Option {
	return func(j *jobSpec) error {
		if lambda < 0 {
			return fmt.Errorf("repro: WithRidge(%g): must be >= 0", lambda)
		}
		j.spec.Ridge = lambda
		return nil
	}
}

// WithNonnegativeS constrains the S_k weights to be nonnegative.
func WithNonnegativeS() Option {
	return func(j *jobSpec) error {
		j.spec.NonnegativeS = true
		return nil
	}
}

// WithConvergenceTrace records the per-iteration convergence measure in
// Result.ConvergenceTrace.
func WithConvergenceTrace() Option {
	return func(j *jobSpec) error {
		j.run.trackConvergence = true
		return nil
	}
}

// WithProgress registers a per-iteration callback; returning false stops the
// iteration early (a graceful stop — unlike context cancellation it is not
// an error). Called from the decomposition goroutine.
func WithProgress(fn func(iter int, measure float64) bool) Option {
	return func(j *jobSpec) error {
		j.run.progress = fn
		return nil
	}
}

// WithConfig replaces the whole base Config for this call — the migration
// escape hatch for code that already builds a Config. The Config's Pool and
// Threads fields are ignored: every Engine call runs on the Engine's shared
// pool (that is the Engine's contract). Internally the Config splits into
// its serializable Spec (the deterministic knobs) and the local-only
// overlay (Progress, TrackConvergence) — see Spec. Combine with other
// options freely; order matters.
func WithConfig(cfg Config) Option {
	return func(j *jobSpec) error {
		j.spec = specFromConfig(j.spec.Method, cfg)
		j.run = runOverlay{trackConvergence: cfg.TrackConvergence, progress: cfg.Progress}
		return nil
	}
}
