#!/usr/bin/env sh
# Benchmark smoke guard: runs the perf-trajectory benchmarks
# (BenchmarkDPar2 end-to-end, BenchmarkDPar2IterationAllocs for the
# allocation budget, BenchmarkDPar2TallSlice for the sharded stage-1 path)
# and fails when allocations per ALS iteration regress above the budget on
# either iteration bench. BENCH_1.json recorded ~104 allocs/iter after the
# PR-1 arena work; the guard allows headroom to ~150 before failing.
#
# Usage: scripts/benchsmoke.sh [max-allocs-per-iter]
set -eu

budget="${1:-150}"
out="$(go test -run '^$' -bench '^(BenchmarkDPar2|BenchmarkDPar2IterationAllocs|BenchmarkDPar2TallSlice)$' -benchtime 2x -benchmem .)"
echo "$out"

echo "$out" | awk -v budget="$budget" '
/^BenchmarkDPar2(IterationAllocs|TallSlice)/ {
    iters = 0; allocs = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "als-iters")  iters  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (iters <= 0 || allocs < 0) {
        printf "benchsmoke: could not parse als-iters/allocs from %s\n", $1 > "/dev/stderr"
        exit 2
    }
    per = allocs / iters
    printf "benchsmoke: %s %.1f allocs per ALS iteration (budget %d)\n", $1, per, budget
    found++
    if (per > budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per ALS iteration\n", $1, budget > "/dev/stderr"
        bad = 1
    }
}
END {
    if (found < 2) {
        print "benchsmoke: expected both BenchmarkDPar2IterationAllocs and BenchmarkDPar2TallSlice to run" > "/dev/stderr"
        exit 2
    }
    if (bad) exit 1
}'
