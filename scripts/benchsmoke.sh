#!/usr/bin/env sh
# Benchmark smoke guard: runs the perf-trajectory benchmarks
# (BenchmarkDPar2 end-to-end, BenchmarkDPar2IterationAllocs for the
# allocation budget, BenchmarkDPar2TallSlice for the sharded stage-1 path,
# BenchmarkAbsorb for the streaming absorb path) and fails when
#   - allocations per ALS iteration regress above the per-iteration budget
#     on either iteration bench (BENCH_1.json recorded ~104 allocs/iter
#     after the PR-1 arena work; the guard allows headroom to ~150), or
#   - allocations per absorbed batch regress above the absorb budget on
#     either BenchmarkAbsorb variant (~950 measured when the lazy factored-Q
#     absorb landed; the budget allows headroom to 1500 — and because the
#     K=8 and K=64 variants absorb the identical batch, a K-dependent
#     allocation leak trips the same budget long before it ships).
#
# Usage: scripts/benchsmoke.sh [max-allocs-per-iter] [max-allocs-per-absorb]
set -eu

budget="${1:-150}"
absorb_budget="${2:-1500}"
out="$(go test -run '^$' -bench '^(BenchmarkDPar2|BenchmarkDPar2IterationAllocs|BenchmarkDPar2TallSlice|BenchmarkAbsorb)$' -benchtime 2x -benchmem .)"
echo "$out"

echo "$out" | awk -v budget="$budget" -v absorb_budget="$absorb_budget" '
/^BenchmarkDPar2(IterationAllocs|TallSlice)/ {
    iters = 0; allocs = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "als-iters")  iters  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (iters <= 0 || allocs < 0) {
        printf "benchsmoke: could not parse als-iters/allocs from %s\n", $1 > "/dev/stderr"
        exit 2
    }
    per = allocs / iters
    printf "benchsmoke: %s %.1f allocs per ALS iteration (budget %d)\n", $1, per, budget
    found++
    if (per > budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per ALS iteration\n", $1, budget > "/dev/stderr"
        bad = 1
    }
}
/^BenchmarkAbsorb\// {
    allocs = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (allocs < 0) {
        printf "benchsmoke: could not parse allocs from %s\n", $1 > "/dev/stderr"
        exit 2
    }
    printf "benchsmoke: %s %.0f allocs per absorbed batch (budget %d)\n", $1, allocs, absorb_budget
    absorbs++
    if (allocs > absorb_budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per absorbed batch\n", $1, absorb_budget > "/dev/stderr"
        bad = 1
    }
}
END {
    if (found < 2) {
        print "benchsmoke: expected both BenchmarkDPar2IterationAllocs and BenchmarkDPar2TallSlice to run" > "/dev/stderr"
        exit 2
    }
    if (absorbs < 2) {
        print "benchsmoke: expected both BenchmarkAbsorb variants (K8, K64) to run" > "/dev/stderr"
        exit 2
    }
    if (bad) exit 1
}'
