#!/usr/bin/env sh
# Benchmark smoke guard: runs the two perf-trajectory benchmarks
# (BenchmarkDPar2 end-to-end, BenchmarkDPar2IterationAllocs for the
# allocation budget) and fails when allocations per ALS iteration regress
# above the budget. BENCH_1.json recorded ~104 allocs/iter after the PR-1
# arena work; the guard allows headroom to ~150 before failing.
#
# Usage: scripts/benchsmoke.sh [max-allocs-per-iter]
set -eu

budget="${1:-150}"
out="$(go test -run '^$' -bench '^(BenchmarkDPar2|BenchmarkDPar2IterationAllocs)$' -benchtime 2x -benchmem .)"
echo "$out"

echo "$out" | awk -v budget="$budget" '
/^BenchmarkDPar2IterationAllocs/ {
    iters = 0; allocs = -1
    for (i = 1; i <= NF; i++) {
        if ($i == "als-iters")  iters  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (iters <= 0 || allocs < 0) {
        print "benchsmoke: could not parse als-iters/allocs from benchmark output" > "/dev/stderr"
        exit 2
    }
    per = allocs / iters
    printf "benchsmoke: %.1f allocs per ALS iteration (budget %d)\n", per, budget
    found = 1
    if (per > budget) {
        printf "benchsmoke: FAIL — allocations per ALS iteration regressed above %d\n", budget > "/dev/stderr"
        exit 1
    }
}
END {
    if (!found) {
        print "benchsmoke: BenchmarkDPar2IterationAllocs did not run" > "/dev/stderr"
        exit 2
    }
}'
