#!/usr/bin/env sh
# Benchmark smoke guard: runs the perf-trajectory benchmarks
# (BenchmarkDPar2 end-to-end, BenchmarkDPar2IterationAllocs for the
# allocation budget, BenchmarkDPar2TallSlice for the sharded stage-1 path,
# BenchmarkAbsorb for the streaming absorb path, BenchmarkFactorBatch for
# the fused batched small-SVD sweep, BenchmarkEngineContendedQueue for
# the admission scheduler, and BenchmarkServiceDecomposeRoundTrip for the
# HTTP front end's transport overhead) and fails when
#   - any expected benchmark is missing from the output or its metrics do
#     not parse — a renamed benchmark or an empty result line is a hard
#     failure, never a vacuous pass;
#   - allocations per ALS iteration regress above the per-iteration budget
#     on either iteration bench (BENCH_1.json recorded ~104 allocs/iter
#     after the PR-1 arena work; the guard allows headroom to ~150);
#   - allocations per absorbed batch regress above the absorb budget on
#     either BenchmarkAbsorb variant (~950 measured when the lazy factored-Q
#     absorb landed; the budget allows headroom to 1500 — and because the
#     K=8 and K=64 variants absorb the identical batch, a K-dependent
#     allocation leak trips the same budget long before it ships);
#   - BenchmarkDPar2's reported fitness drops below 0.95 (BENCH_1.json
#     recorded 0.9559; a vanishing fitness means the workload silently
#     changed);
#   - steady-state BenchmarkFactorBatch allocations exceed the batch budget
#     on either K variant (a warmed BatchWorkspace makes the batched Jacobi
#     sweep allocation-free, so any reintroduced per-problem allocation
#     shows up as at least K allocs/op);
#   - the contended-queue bench shows a high-priority mean queue wait above
#     the queue-wait budget, or a priority inversion (high-priority jobs
#     waiting longer than the low-priority backlog they are meant to
#     overtake);
#   - a result-cache hit (BenchmarkCacheHit: key hash + cached-file read +
#     checksum verify + decode, never the method) regresses above its
#     allocation or latency budget (~105 allocs / ~0.9ms measured when the
#     cache landed; budgets allow headroom to 300 allocs / 25ms);
#   - the HTTP service's transport tax regresses: the loopback round trip of
#     BenchmarkServiceDecomposeRoundTrip (JSON request + admission queue +
#     DPF2 response, minus the in-process decomposition time) must stay
#     under the service-overhead budget (~5ms measured when the service
#     landed; the budget allows headroom to 250ms).
#
# Besides the human-readable log, every budget check emits one machine-
# readable JSON line on stdout of the form
#   {"gate":"benchsmoke","check":"...","bench":"...","value":V,"budget":B,"pass":true|false}
# so CI tooling can consume the gate results without scraping prose (the
# same convention cmd/reprolint -json uses). Presence checks for the
# guarded benchmark set emit value 1 (seen) or 0 (missing) against budget 1.
#
# Usage: scripts/benchsmoke.sh [max-allocs-per-iter] [max-allocs-per-absorb] [max-hi-qwait-ms] [max-allocs-per-batch] [max-allocs-per-cache-hit] [max-cache-hit-ms] [max-service-overhead-ms]
set -eu

budget="${1:-150}"
absorb_budget="${2:-1500}"
qwait_budget="${3:-250}"
batch_budget="${4:-8}"
cachehit_budget="${5:-300}"
cachems_budget="${6:-25}"
svc_budget="${7:-250}"
out="$(go test -run '^$' -bench '^(BenchmarkDPar2|BenchmarkDPar2IterationAllocs|BenchmarkDPar2TallSlice|BenchmarkAbsorb|BenchmarkFactorBatch|BenchmarkEngineContendedQueue|BenchmarkCacheHit)$' -benchtime 2x -benchmem .)
$(go test -run '^$' -bench '^BenchmarkServiceDecomposeRoundTrip$' -benchtime 2x -benchmem ./internal/service/)"
echo "$out"

echo "$out" | awk -v budget="$budget" -v absorb_budget="$absorb_budget" -v qwait_budget="$qwait_budget" -v batch_budget="$batch_budget" -v cachehit_budget="$cachehit_budget" -v cachems_budget="$cachems_budget" -v svc_budget="$svc_budget" '
function metric(name,   i) {
    # value of a named benchmark metric on the current line, or "" if absent
    for (i = 2; i <= NF; i++) if ($i == name) return $(i - 1)
    return ""
}
function gatejson(check, bench, value, budgetv, ok) {
    # one machine-readable JSON line per budget check (see header comment)
    printf "{\"gate\":\"benchsmoke\",\"check\":\"%s\",\"bench\":\"%s\",\"value\":%.4f,\"budget\":%.4f,\"pass\":%s}\n", \
        check, bench, value, budgetv, (ok ? "true" : "false")
}
function require(val, name) {
    if (val == "") {
        printf "benchsmoke: could not parse %s from %s\n", name, $1 > "/dev/stderr"
        exit 2
    }
    return val
}
$1 ~ /^BenchmarkDPar2(-[0-9]+)?$/ {
    seen["BenchmarkDPar2"] = 1
    fit = require(metric("fitness"), "fitness")
    printf "benchsmoke: %s fitness %.4f (floor 0.95)\n", $1, fit
    gatejson("fitness-floor", "BenchmarkDPar2", fit, 0.95, fit >= 0.95)
    if (fit < 0.95) {
        printf "benchsmoke: FAIL — %s fitness %.4f below 0.95\n", $1, fit > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkDPar2(IterationAllocs|TallSlice)(-[0-9]+)?$/ {
    sub(/-[0-9]+$/, "", $1); seen[$1] = 1
    iters  = require(metric("als-iters"), "als-iters")
    allocs = require(metric("allocs/op"), "allocs/op")
    if (iters <= 0) {
        printf "benchsmoke: %s reported zero als-iters\n", $1 > "/dev/stderr"
        exit 2
    }
    per = allocs / iters
    printf "benchsmoke: %s %.1f allocs per ALS iteration (budget %d)\n", $1, per, budget
    gatejson("allocs-per-iter", $1, per, budget, per <= budget)
    if (per > budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per ALS iteration\n", $1, budget > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkAbsorb\// {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkAbsorb\//, "", name)
    seen["BenchmarkAbsorb/" name] = 1
    allocs = require(metric("allocs/op"), "allocs/op")
    printf "benchsmoke: %s %.0f allocs per absorbed batch (budget %d)\n", $1, allocs, absorb_budget
    gatejson("allocs-per-absorb", "BenchmarkAbsorb/" name, allocs, absorb_budget, allocs <= absorb_budget)
    if (allocs > absorb_budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per absorbed batch\n", $1, absorb_budget > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkFactorBatch\// {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^BenchmarkFactorBatch\//, "", name)
    seen["BenchmarkFactorBatch/" name] = 1
    allocs = require(metric("allocs/op"), "allocs/op")
    printf "benchsmoke: %s %.0f allocs per batched SVD sweep (budget %d)\n", $1, allocs, batch_budget
    gatejson("allocs-per-batch", "BenchmarkFactorBatch/" name, allocs, batch_budget, allocs <= batch_budget)
    if (allocs > batch_budget) {
        printf "benchsmoke: FAIL — %s regressed above %d allocs per batched SVD sweep\n", $1, batch_budget > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkCacheHit(-[0-9]+)?$/ {
    seen["BenchmarkCacheHit"] = 1
    allocs = require(metric("allocs/op"), "allocs/op")
    ms = require(metric("ns/op"), "ns/op") / 1e6
    printf "benchsmoke: %s %.0f allocs, %.2fms per cache hit (budgets %d allocs, %dms)\n", $1, allocs, ms, cachehit_budget, cachems_budget
    gatejson("allocs-per-cache-hit", "BenchmarkCacheHit", allocs, cachehit_budget, allocs <= cachehit_budget)
    gatejson("cache-hit-latency-ms", "BenchmarkCacheHit", ms, cachems_budget, ms <= cachems_budget)
    if (allocs > cachehit_budget) {
        printf "benchsmoke: FAIL — cache hit regressed above %d allocs\n", cachehit_budget > "/dev/stderr"
        bad = 1
    }
    if (ms > cachems_budget) {
        printf "benchsmoke: FAIL — cache hit latency %.2fms above %dms budget\n", ms, cachems_budget > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkServiceDecomposeRoundTrip(-[0-9]+)?$/ {
    seen["BenchmarkServiceDecomposeRoundTrip"] = 1
    overhead = require(metric("overhead-ms"), "overhead-ms")
    httpms   = require(metric("http-ms"), "http-ms")
    printf "benchsmoke: %s %.2fms round trip, %.2fms transport overhead (budget %dms)\n", $1, httpms, overhead, svc_budget
    gatejson("service-overhead-ms", "BenchmarkServiceDecomposeRoundTrip", overhead, svc_budget, overhead <= svc_budget)
    if (overhead > svc_budget) {
        printf "benchsmoke: FAIL — HTTP service overhead %.2fms above %dms budget\n", overhead, svc_budget > "/dev/stderr"
        bad = 1
    }
}
$1 ~ /^BenchmarkEngineContendedQueue(-[0-9]+)?$/ {
    seen["BenchmarkEngineContendedQueue"] = 1
    hi = require(metric("hi-qwait-ms"), "hi-qwait-ms")
    lo = require(metric("lo-qwait-ms"), "lo-qwait-ms")
    printf "benchsmoke: %s hi-qwait %.2fms lo-qwait %.2fms (hi budget %dms)\n", $1, hi, lo, qwait_budget
    gatejson("hi-qwait", "BenchmarkEngineContendedQueue", hi, qwait_budget, hi <= qwait_budget)
    gatejson("priority-inversion", "BenchmarkEngineContendedQueue", hi, lo, hi <= lo)
    if (hi > qwait_budget) {
        printf "benchsmoke: FAIL — high-priority queue wait %.2fms above %dms budget\n", hi, qwait_budget > "/dev/stderr"
        bad = 1
    }
    if (hi > lo) {
        printf "benchsmoke: FAIL — priority inversion: hi-qwait %.2fms > lo-qwait %.2fms\n", hi, lo > "/dev/stderr"
        bad = 1
    }
}
END {
    # Every guarded benchmark must have produced a parseable result line:
    # a rename or an empty run is a hard failure, not a silent skip.
    n = split("BenchmarkDPar2 BenchmarkDPar2IterationAllocs BenchmarkDPar2TallSlice BenchmarkAbsorb/K8 BenchmarkAbsorb/K64 BenchmarkFactorBatch/K8 BenchmarkFactorBatch/K64 BenchmarkEngineContendedQueue BenchmarkCacheHit BenchmarkServiceDecomposeRoundTrip", want, " ")
    for (i = 1; i <= n; i++) {
        present = (want[i] in seen)
        gatejson("present", want[i], present ? 1 : 0, 1, present)
        if (!present) {
            printf "benchsmoke: expected benchmark %s missing from output\n", want[i] > "/dev/stderr"
            missing = 1
        }
    }
    if (missing) exit 2
    if (bad) exit 1
}'
