#!/usr/bin/env sh
# Invariant lint gate: go vet plus the repository's own reprolint analyzer
# suite (determinism, arenapair, ctxloop, noalloc, lockhold — see
# docs/INVARIANTS.md for the catalogue and the //repro:allow suppression
# grammar). Hard-fails on any unsuppressed finding, on reason-less or stale
# suppressions, and on a reprolint build failure — a lint gate that cannot
# build must never pass vacuously.
#
# Usage: scripts/lint.sh [packages...]     (default ./...)
# Set REPROLINT_JSON=1 for one JSON object per finding (machine-readable,
# matching the benchsmoke gate convention).
set -eu

cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "lint: go vet $pkgs"
# shellcheck disable=SC2086  # pkgs is an intentional word list
go vet $pkgs

echo "lint: building cmd/reprolint"
go build -o /tmp/reprolint.$$ ./cmd/reprolint
trap 'rm -f /tmp/reprolint.$$' EXIT

flags=""
if [ "${REPROLINT_JSON:-0}" = "1" ]; then
    flags="-json"
fi

echo "lint: reprolint $pkgs"
# shellcheck disable=SC2086
/tmp/reprolint.$$ $flags $pkgs
echo "lint: clean"
