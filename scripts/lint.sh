#!/usr/bin/env sh
# Invariant lint gate: go vet plus the repository's own reprolint analyzer
# suite (determinism, arenapair, ctxloop, noalloc, lockhold, goroleak,
# lockorder, errdisc — see docs/INVARIANTS.md for the catalogue and the
# //repro:allow suppression grammar). Hard-fails on any unsuppressed finding,
# on reason-less or stale suppressions, on a reprolint build failure — a lint
# gate that cannot build must never pass vacuously — and on blowing the
# wall-clock budget.
#
# Usage: scripts/lint.sh [packages...]     (default ./...)
#
# Environment:
#   REPROLINT_JSON=1            one JSON object per finding (machine-readable)
#   REPROLINT_SUMMARIES=path    persistent interprocedural summary store
#                               (default .reprolint-summaries.json; CI caches
#                               it keyed on the tree's export-data hashes)
#   REPROLINT_BUDGET_SECONDS=N  wall-clock budget for the reprolint run
#                               (default 120)
#
# The reprolint run always ends with a machine-readable gate line matching the
# benchsmoke convention: {"gate":"reprolint","findings":N,"suppressions":M,
# "pass":...}. This script appends a second gate line for the wall-clock
# budget. Under GitHub Actions, findings also print as ::error annotations so
# they render inline on PRs.
set -eu

cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "lint: go vet $pkgs"
# shellcheck disable=SC2086  # pkgs is an intentional word list
go vet $pkgs

echo "lint: building cmd/reprolint"
go build -o /tmp/reprolint.$$ ./cmd/reprolint
trap 'rm -f /tmp/reprolint.$$' EXIT

flags="-summaries ${REPROLINT_SUMMARIES:-.reprolint-summaries.json}"
if [ "${REPROLINT_JSON:-0}" = "1" ]; then
    flags="$flags -json"
fi
if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    flags="$flags -gha"
fi

budget="${REPROLINT_BUDGET_SECONDS:-120}"
start=$(date +%s)

echo "lint: reprolint $pkgs"
status=0
# shellcheck disable=SC2086
/tmp/reprolint.$$ $flags $pkgs || status=$?

elapsed=$(( $(date +%s) - start ))
wall_pass=true
if [ "$elapsed" -gt "$budget" ]; then
    wall_pass=false
fi
echo "{\"gate\":\"reprolint\",\"check\":\"wallclock_seconds\",\"value\":$elapsed,\"budget\":$budget,\"pass\":$wall_pass}"

if [ "$status" -ne 0 ]; then
    exit "$status"
fi
if [ "$wall_pass" != "true" ]; then
    echo "lint: FAIL — reprolint took ${elapsed}s, budget ${budget}s" >&2
    exit 1
fi
echo "lint: clean"
