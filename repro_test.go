package repro

import (
	"testing"
)

// The root package is a thin re-export layer; these tests exercise the full
// public workflow a downstream user would run.

func TestPublicQuickstartFlow(t *testing.T) {
	g := NewRNG(1)
	ten := LowRankTensor(g, []int{60, 80, 100, 70}, 30, 5, 0.02)

	cfg := DefaultConfig()
	cfg.Rank = 5
	cfg.MaxIters = 30
	cfg.Threads = 2

	res, err := DPar2(ten, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.9 {
		t.Fatalf("public DPar2 fitness %v", res.Fitness)
	}
	if res.V.Rows != 30 || res.V.Cols != 5 {
		t.Fatalf("V shape %dx%d", res.V.Rows, res.V.Cols)
	}
	if got := Fitness(ten, res); got != res.Fitness {
		t.Fatalf("Fitness helper %v != result %v", got, res.Fitness)
	}
}

func TestPublicAllMethodsAgree(t *testing.T) {
	g := NewRNG(2)
	ten := LowRankTensor(g, []int{50, 70, 60}, 25, 4, 0.01)
	cfg := DefaultConfig()
	cfg.Rank = 4
	cfg.MaxIters = 60
	cfg.Threads = 2

	type runner struct {
		name string
		fn   func(*Irregular, Config) (*Result, error)
	}
	for _, r := range []runner{{"DPar2", DPar2}, {"ALS", ALS}, {"RDALS", RDALS}, {"SPARTan", SPARTan}} {
		res, err := r.fn(ten, cfg)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if res.Fitness < 0.95 {
			t.Fatalf("%s fitness %v on near-exact data", r.name, res.Fitness)
		}
	}
}

func TestPublicCompressedWorkflow(t *testing.T) {
	g := NewRNG(3)
	ten := LowRankTensor(g, []int{80, 90, 100}, 40, 5, 0.02)
	cfg := DefaultConfig()
	cfg.Rank = 5
	cfg.MaxIters = 20
	cfg.Threads = 2

	comp := Compress(ten, cfg)
	if comp.SizeBytes() >= ten.SizeBytes() {
		t.Fatal("compression did not shrink the tensor")
	}
	res, err := DPar2FromCompressed(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fit := Fitness(ten, res); fit < 0.9 {
		t.Fatalf("compressed-workflow fitness %v", fit)
	}
}

func TestPublicGenerators(t *testing.T) {
	g := NewRNG(4)
	if ten := RandomTensor(g, 10, 8, 4); ten.K() != 4 || ten.J != 8 {
		t.Fatal("RandomTensor wrong shape")
	}
	stock, sectors := NewStockTensor(g, 6, 50, 120, USMarket())
	if stock.K() != 6 || stock.J != 88 || len(sectors) != 6 {
		t.Fatal("NewStockTensor wrong shape")
	}
	if len(StockFeatureNames()) != 88 {
		t.Fatal("StockFeatureNames wrong length")
	}
	if sp := NewSpectrogramTensor(g, 4, 20, 50, 32); sp.K() != 4 || sp.J != 32 {
		t.Fatal("NewSpectrogramTensor wrong shape")
	}
	if vf := NewVideoFeatureTensor(g, 4, 20, 40, 16, 3); vf.K() != 4 || vf.J != 16 {
		t.Fatal("NewVideoFeatureTensor wrong shape")
	}
	if tr := NewTrafficTensor(g, 4, 12, 24); tr.K() != 4 || tr.J != 24 {
		t.Fatal("NewTrafficTensor wrong shape")
	}
}

func TestPublicAnalytics(t *testing.T) {
	if c := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); c < 0.999 {
		t.Fatalf("Pearson %v", c)
	}
	g := NewRNG(5)
	m := NewMatrix(4, 10)
	g.NormSlice(m.Data)
	corr := CorrelationMatrix(m)
	if corr.Rows != 4 || corr.At(2, 2) < 0.999 {
		t.Fatal("CorrelationMatrix wrong")
	}
	sim := SimilarityGraph(5, func(i, j int) float64 { return 1.0 / float64(1+i+j) })
	nn := KNN(sim, 0, 2)
	if len(nn) != 2 || nn[0].Index != 1 {
		t.Fatalf("KNN wrong: %v", nn)
	}
	scores := RWR(sim, 0, DefaultRWRConfig())
	if len(scores) != 5 {
		t.Fatal("RWR wrong length")
	}
	a := NewMatrixFromData(2, 2, []float64{1, 0, 0, 1})
	b := NewMatrixFromData(2, 2, []float64{1, 0, 0, 1})
	if s := StockSimilarity(a, b, 0.01); s != 1 {
		t.Fatalf("identical matrices similarity %v", s)
	}
}

func TestPublicNewIrregularValidates(t *testing.T) {
	_, err := NewIrregular([]*Matrix{NewMatrix(3, 4), NewMatrix(2, 5)})
	if err == nil {
		t.Fatal("expected column-mismatch error")
	}
}
