package repro

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/admission"
	"repro/internal/dataio"
	"repro/internal/parafac2"
	"repro/internal/state"
)

// This file is the Engine's durable-state surface: stream checkpointing
// (SaveStream/ResumeStream) and the content-addressed result cache consulted
// by Decompose/Submit. The primitives live in internal/state, the formats in
// internal/parafac2 (checkpoints) and internal/dataio (results); see
// docs/DURABILITY.md for the formats and the crash-safety contract.

// statePath resolves a stream path: relative paths land under the
// WithStateDir root when one is configured.
func (e *Engine) statePath(path string) string {
	if e.stateDir != "" && !filepath.IsAbs(path) {
		return filepath.Join(e.stateDir, path)
	}
	return path
}

// SaveStream checkpoints a stream to the named file atomically: the complete
// stream state (configuration, RNG, compressed representation, factors) is
// written to a temp file, fsynced, and renamed over path, so a crash
// mid-checkpoint leaves the previous checkpoint intact. A relative path
// resolves under the WithStateDir root when one is configured. The stream
// itself is untouched and keeps absorbing.
func (e *Engine) SaveStream(path string, s *StreamingDPar2) error {
	if e.isClosed() {
		return ErrEngineClosed
	}
	if s == nil {
		return errors.New("repro: SaveStream with nil stream")
	}
	dst := e.statePath(path)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return state.WriteFileAtomic(dst, s.Checkpoint)
}

// ResumeStream restores a stream from a SaveStream checkpoint and rebinds it
// to the Engine's pool: the next Absorb is bit-identical to the same Absorb
// on the stream that was checkpointed. Deterministic knobs (rank, seed,
// iteration budget, sketch parameters) come from the checkpoint; opts may
// adjust only runtime bindings the same way NewStream accepts them (an
// option that names a non-DPar2 method is an error, like NewStream).
func (e *Engine) ResumeStream(ctx context.Context, path string, opts ...Option) (*StreamingDPar2, error) {
	_, _, _, cfg, err := e.prepare(ctx, opts, true, "ResumeStream")
	if err != nil {
		return nil, err
	}
	f, err := os.Open(e.statePath(path))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parafac2.RestoreStream(f, cfg)
}

// CacheCounters reports the result cache's cumulative hits and misses since
// the Engine was built (both zero when WithResultCache is off). Per-tenant
// counts are available through a WithEngineMetrics hook implementing
// CacheMetrics (EngineStats does).
func (e *Engine) CacheCounters() (hits, misses uint64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.Counters()
}

// resultCacheKey derives the cache key for one decomposition, or reports the
// call uncacheable: caching is off, a Progress callback must run, or a
// convergence trace was requested (the trace is not serialized). The key is
// a sha256 over a format tag, the method name, the request's canonical Spec
// (every deterministic knob, with ShardRows resolved to its effective
// threshold), and a digest of the tensor's serialized content — so any
// change to input data or to a result-affecting parameter misses, while
// Threads/Pool (which never change the computed bits) do not split the
// cache. Because the key reads only the Spec, an HTTP request resolved to
// the same Spec (internal/service) hits the same entry as the equivalent
// in-process call.
func (e *Engine) resultCacheKey(m parafac2.Method, t *Irregular, js jobSpec) (string, bool) {
	if e.cache == nil || js.run.progress != nil || js.run.trackConvergence {
		return "", false
	}
	th := sha256.New()
	if err := dataio.WriteTensor(th, t); err != nil {
		return "", false
	}
	spec := js.spec
	var knobs [9 * 8]byte
	for i, v := range [...]uint64{
		uint64(spec.Rank),
		uint64(spec.MaxIters),
		math.Float64bits(spec.Tol),
		spec.Seed,
		uint64(spec.Oversample),
		uint64(spec.PowerIters),
		uint64(int64(spec.shardRowsThreshold())),
		math.Float64bits(spec.Ridge),
		boolBit(spec.NonnegativeS),
	} {
		binary.LittleEndian.PutUint64(knobs[i*8:], v)
	}
	return state.Key(
		[]byte("repro:result-cache:v1"),
		[]byte(m.Name()),
		knobs[:],
		th.Sum(nil),
	), true
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Cached-entry payload: a small run-metadata header, then the dataio result
// format. ReadResult deliberately drops run artifacts (fitness, iteration
// count), but a cache hit stands in for the run itself, so those must come
// back; the header carries them. Timings stay zero on a hit — the work they
// would measure never happened.
const cacheHdrWords = 4

// cacheLookup fetches and decodes a cached result; any corruption is handled
// inside state.Cache (entry dropped, reported as a miss).
func (e *Engine) cacheLookup(key string) (*Result, bool) {
	var res *Result
	hit, err := e.cache.Get(key, func(r io.Reader) error {
		var hdr [cacheHdrWords * 8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		dec, err := dataio.ReadResult(r)
		if err != nil {
			return err
		}
		dec.Fitness = math.Float64frombits(binary.LittleEndian.Uint64(hdr[0:]))
		dec.FitnessKind = FitnessKind(binary.LittleEndian.Uint64(hdr[8:]))
		dec.Iters = int(binary.LittleEndian.Uint64(hdr[16:]))
		dec.PreprocessedBytes = int64(binary.LittleEndian.Uint64(hdr[24:]))
		res = dec
		return nil
	})
	if err != nil || !hit {
		return nil, false
	}
	return res, true
}

// cacheStore persists a successful result. Best-effort: a full disk or
// unwritable cache directory must not fail the decomposition that produced
// the result, so the error is dropped (the next lookup simply misses).
func (e *Engine) cacheStore(key string, res *Result) {
	_ = e.cache.Put(key, func(w io.Writer) error {
		var hdr [cacheHdrWords * 8]byte
		binary.LittleEndian.PutUint64(hdr[0:], math.Float64bits(res.Fitness))
		binary.LittleEndian.PutUint64(hdr[8:], uint64(res.FitnessKind))
		binary.LittleEndian.PutUint64(hdr[16:], uint64(res.Iters))
		binary.LittleEndian.PutUint64(hdr[24:], uint64(res.PreprocessedBytes))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		return dataio.WriteResult(w, res)
	})
}

// noteCache forwards a cache event to the metrics hook when it implements
// the optional CacheMetrics extension.
func (e *Engine) noteCache(tenant string, hit bool) {
	cm, ok := e.metrics.(admission.CacheMetrics)
	if !ok {
		return
	}
	if hit {
		cm.CacheHit(tenant)
	} else {
		cm.CacheMiss(tenant)
	}
}
