// Command dpar2d serves PARAFAC2 decomposition over HTTP: the daemon form
// of the repro Engine, exposing tensor upload, synchronous and async
// decomposition, durable streaming sessions, and admission statistics via
// the internal/service API (docs/SERVICE.md).
//
// With -state, stream sessions are checkpointed after every absorb and the
// result cache persists across restarts: a daemon killed between absorbs
// and restarted on the same state directory resumes every session
// bit-identically.
//
// Examples:
//
//	dpar2d -addr :8080 -threads 6
//	dpar2d -addr 127.0.0.1:9000 -state /var/lib/dpar2d -cache-mb 256 \
//	       -quota-queued 8 -quota-running 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dpar2d:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: parse flags, build the Engine and
// Server, serve until ctx is cancelled, then drain gracefully — stop
// accepting connections, finish in-flight requests, checkpoint every
// durable stream, and close the Engine. onReady (may be nil) receives the
// bound address once the listener is up; tests use it to learn the port
// before issuing requests.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("dpar2d", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		stateDir     = fs.String("state", "", "state directory: durable stream checkpoints (and, with -cache-mb, the result cache)")
		cacheMB      = fs.Int64("cache-mb", 0, "result-cache budget in MiB (0 = caching off; requires -state)")
		threads      = fs.Int("threads", 0, "pool worker threads (0 = the library default)")
		jobs         = fs.Int("jobs", 4, "concurrent decomposition jobs")
		queueDepth   = fs.Int("queue", 32, "admission queue depth")
		quotaQueued  = fs.Int("quota-queued", 0, "per-tenant queued-job quota (0 = no quotas)")
		quotaRunning = fs.Int("quota-running", 0, "per-tenant running-job quota (used with -quota-queued)")
		maxBodyMB    = fs.Int64("max-body-mb", 0, "request body cap in MiB (0 = the service default)")
		drainTimeout = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheMB > 0 && *stateDir == "" {
		return errors.New("-cache-mb requires -state")
	}
	if (*quotaQueued > 0) != (*quotaRunning > 0) {
		return errors.New("-quota-queued and -quota-running must be set together")
	}

	engOpts := []repro.EngineOption{
		repro.WithJobConcurrency(*jobs),
		repro.WithQueueDepth(*queueDepth),
	}
	if *threads != 0 {
		engOpts = append(engOpts, repro.WithEngineThreads(*threads))
	}
	if *quotaQueued > 0 {
		engOpts = append(engOpts, repro.WithTenantQuota(*quotaQueued, *quotaRunning))
	}
	if *stateDir != "" {
		engOpts = append(engOpts, repro.WithStateDir(*stateDir))
	}
	if *cacheMB > 0 {
		engOpts = append(engOpts, repro.WithResultCache(*cacheMB<<20))
	}
	stats := &repro.EngineStats{}
	engOpts = append(engOpts, repro.WithEngineMetrics(stats))

	eng := repro.NewEngine(engOpts...)
	defer eng.Close()

	srv, err := service.New(service.Config{
		Engine:       eng,
		Stats:        stats,
		StateDir:     *stateDir,
		MaxBodyBytes: *maxBodyMB << 20,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dpar2d: listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve never returns nil; any return here is a listener failure.
		return err
	case <-ctx.Done():
	}

	// Graceful drain: Shutdown stops the listener and waits for in-flight
	// requests (bounded by -drain), then the streams are checkpointed and
	// the Engine drains its accepted jobs.
	fmt.Fprintln(stdout, "dpar2d: draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(shCtx)
	<-serveErr // Serve has returned http.ErrServerClosed
	closeErr := srv.Close()
	eng.Close()
	fmt.Fprintln(stdout, "dpar2d: stopped")
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	return closeErr
}
