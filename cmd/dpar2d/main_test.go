package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/dataio"
	"repro/internal/service"
)

// daemon wraps one real dpar2d subprocess: a built binary on a real socket,
// so kill semantics are the operating system's, not the test harness's.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	out  chan string // remaining stdout lines; closed at EOF
	wait chan error  // result of cmd.Wait, delivered once
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dpar2d")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dpar2d: %v\n%s", err, out)
	}
	return bin
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	// The first stdout line announces the bound address before Serve starts;
	// read it synchronously, then drain the rest from a goroutine joined via
	// the out channel's close.
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("daemon produced no banner: %v", err)
	}
	const banner = "dpar2d: listening on "
	if !strings.HasPrefix(line, banner) {
		t.Fatalf("unexpected banner %q", line)
	}
	d := &daemon{
		cmd:  cmd,
		addr: strings.TrimSpace(strings.TrimPrefix(line, banner)),
		out:  make(chan string, 16),
		wait: make(chan error, 1),
	}
	go func() {
		defer close(d.out)
		sc := bufio.NewScanner(br)
		for sc.Scan() {
			select {
			case d.out <- sc.Text():
			default: // a slow test must not block the daemon's stdout
			}
		}
	}()
	go func() { d.wait <- cmd.Wait() }()
	return d
}

// stop delivers sig and waits for the process to exit, returning the
// remaining stdout lines.
func (d *daemon) stop(t *testing.T, sig syscall.Signal) []string {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.wait:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after signal")
	}
	var lines []string
	for line := range d.out {
		lines = append(lines, line)
	}
	return lines
}

// TestDaemonSIGKILLBetweenAbsorbsResumesBitIdentical is the acceptance
// criterion end to end: a dpar2d process SIGKILLed between absorbs — no
// drain, no shutdown hook, only the after-absorb checkpoint on disk — is
// restarted on the same state directory and the session continues with
// results bit-identical to a never-interrupted in-process stream.
func TestDaemonSIGKILLBetweenAbsorbsResumesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real daemon binary")
	}
	bin := buildDaemon(t)
	state := t.TempDir()
	ctx := context.Background()

	gBase := repro.NewRNG(31)
	base := repro.LowRankTensor(gBase, []int{40, 35, 45}, 25, 4, 0.02)
	g := repro.NewRNG(32)
	batch1 := repro.LowRankTensor(g, []int{30, 25}, 25, 4, 0.02)
	batch2 := repro.LowRankTensor(g, []int{35, 40}, 25, 4, 0.02)
	rank, seed, iters, tol := 4, uint64(9), 8, 0.0
	spec := service.SpecRequest{Rank: &rank, Seed: &seed, MaxIters: &iters, Tol: &tol}

	d1 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-state", state, "-threads", "2")
	c1 := service.NewClient("http://"+d1.addr, nil)
	info, err := c1.UploadTensor(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateStream(ctx, service.StreamCreateRequest{
		StreamID: "sess", TensorID: info.TensorID, Spec: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Absorb(ctx, "sess", batch1); err != nil {
		t.Fatal(err)
	}
	d1.stop(t, syscall.SIGKILL) // between absorbs: hard kill, nothing flushed

	d2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-state", state, "-threads", "2")
	c2 := service.NewClient("http://"+d2.addr, nil)
	resumed, err := c2.StreamInfo(ctx, "sess")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed || !resumed.Durable {
		t.Fatalf("stream not resumed after SIGKILL: %+v", resumed)
	}
	if want := base.K() + batch1.K(); resumed.K != want {
		t.Fatalf("resumed K=%d, want %d", resumed.K, want)
	}
	if resumed.Spec.Rank != rank || resumed.Spec.Seed != seed {
		t.Fatalf("resumed spec lost: %+v", resumed.Spec)
	}
	if _, err := c2.Absorb(ctx, "sess", batch2); err != nil {
		t.Fatal(err)
	}
	served, err := c2.StreamResultBytes(ctx, "sess")
	if err != nil {
		t.Fatal(err)
	}

	// Graceful SIGTERM shutdown of the survivor: clean exit, full drain log.
	lines := d2.stop(t, syscall.SIGTERM)
	if !d2.cmd.ProcessState.Success() {
		t.Fatalf("SIGTERM exit: %v (stdout %q)", d2.cmd.ProcessState, lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "dpar2d: draining") || !strings.Contains(joined, "dpar2d: stopped") {
		t.Fatalf("drain log missing from %q", joined)
	}

	// Reference: the identical stream, never interrupted, fully in-process.
	eng := repro.NewEngine(repro.WithEngineThreads(2))
	defer eng.Close()
	st, err := eng.NewStream(ctx, base,
		repro.WithRank(rank), repro.WithSeed(seed),
		repro.WithMaxIters(iters), repro.WithTolerance(tol))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbCtx(ctx, batch1.Slices); err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbCtx(ctx, batch2.Slices); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := dataio.WriteResult(&want, st.Result()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatal("daemon stream after SIGKILL+restart differs from the uninterrupted stream bits")
	}
}

// TestRunServesAndDrains exercises the daemon body in-process (and so under
// -race): serve, answer one decomposition, then drain cleanly on ctx cancel.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-threads", "2"},
			io.Discard, io.Discard, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	client := service.NewClient("http://"+addr, nil)
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	g := repro.NewRNG(3)
	ten := repro.LowRankTensor(g, []int{20, 25}, 15, 3, 0.05)
	info, err := client.UploadTensor(ctx, ten)
	if err != nil {
		t.Fatal(err)
	}
	rank, iters := 3, 5
	res, _, err := client.Decompose(ctx, service.DecomposeRequest{
		TensorID: info.TensorID,
		Spec:     service.SpecRequest{Rank: &rank, MaxIters: &iters},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness <= 0 {
		t.Fatalf("implausible fitness %v", res.Fitness)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestRunFlagValidation pins the CLI's refusal of inconsistent flags.
func TestRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"cache_without_state": {"-cache-mb", "64"},
		"quota_queued_alone":  {"-quota-queued", "4"},
		"quota_running_alone": {"-quota-running", "2"},
		"unknown_flag":        {"-no-such-flag"},
		"bad_listen_addr":     {"-addr", "203.0.113.7:bogus"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(context.Background(), args, io.Discard, io.Discard, nil); err == nil {
				t.Fatalf("run(%v) accepted invalid flags", args)
			}
		})
	}
}
