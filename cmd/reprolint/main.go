// Command reprolint runs the repository's invariant analyzers (package
// repro/internal/analyzers) over Go packages:
//
//	reprolint [-run analyzer,analyzer] [-json] [packages...]
//
// With no package arguments it checks ./... . Findings print one per line as
//
//	file:line:col: [analyzer] message
//
// (or one JSON object per line with -json, matching the machine-readable gate
// convention of scripts/benchsmoke.sh). Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
//
// Suppress a finding with a //repro:allow(analyzer) directive carrying a
// mandatory reason; reason-less or unused directives are themselves findings.
// See docs/INVARIANTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList  = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per finding")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-run analyzer,...] [-json] [packages...]\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := analyzers.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 2
	}

	cwd, _ := os.Getwd()
	findings := 0
	for _, lp := range pkgs {
		var diags []analyzers.Diagnostic
		ran := map[string]bool{}
		for _, a := range selected {
			if a.AppliesTo != nil && !a.AppliesTo(lp.Path) {
				continue
			}
			ran[a.Name] = true
			a.Run(&analyzers.Pass{
				Fset:   lp.Fset,
				Files:  lp.Files,
				Pkg:    lp.Pkg,
				Info:   lp.Info,
				Report: func(d analyzers.Diagnostic) { diags = append(diags, d) },
			})
		}
		// Suppression directives are validated even in packages where no
		// selected analyzer ran (a stale //repro:allow is a finding anywhere),
		// but unused-ness is only judged for analyzers that ran here.
		for _, d := range analyzers.Filter(lp.Fset, lp.Files, diags, ran) {
			findings++
			pos := lp.Fset.Position(d.Pos)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			if *jsonOut {
				enc, _ := json.Marshal(map[string]any{
					"gate":     "reprolint",
					"analyzer": d.Analyzer,
					"file":     file,
					"line":     pos.Line,
					"col":      pos.Column,
					"message":  d.Message,
				})
				fmt.Println(string(enc))
			} else {
				fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
		}
	}
	if findings > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", findings)
		}
		return 1
	}
	return 0
}
