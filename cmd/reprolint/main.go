// Command reprolint runs the repository's invariant analyzers (package
// repro/internal/analyzers) over Go packages:
//
//	reprolint [-run analyzer,analyzer] [-json] [-gha] [-summaries file] [packages...]
//
// With no package arguments it checks ./... . Findings print one per line as
//
//	file:line:col: [analyzer] message
//
// (or one JSON object per line with -json). The final line is always the
// machine-readable gate summary, matching scripts/benchsmoke.sh's convention:
//
//	{"gate":"reprolint","findings":N,"suppressions":M,"pass":true|false}
//
// -gha additionally emits GitHub Actions ::error annotations so findings
// render inline on pull requests. -summaries names a JSON file persisting the
// interprocedural summary store between runs: packages whose
// dependency-chained fingerprint is unchanged skip the summary fixpoint (CI
// caches this file keyed on export-data hashes). Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
//
// Suppress a finding with a //repro:allow(analyzer) directive carrying a
// mandatory reason; reason-less or unused directives are themselves findings.
// See docs/INVARIANTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList   = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		jsonOut   = flag.Bool("json", false, "emit one JSON object per finding")
		ghaOut    = flag.Bool("gha", false, "emit GitHub Actions ::error annotations alongside findings")
		sumPath   = flag.String("summaries", "", "path of the persistent interprocedural summary store (empty: recompute every run)")
		listOnly  = flag.Bool("list", false, "list analyzers and exit")
		noSummary = flag.Bool("intraprocedural", false, "skip the summary layer (analyzers degrade to intraprocedural behavior)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-run analyzer,...] [-json] [-gha] [-summaries file] [packages...]\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := analyzers.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 2
	}

	var table *analyzers.SummaryTable
	if !*noSummary {
		store := analyzers.OpenSummaryStore(*sumPath)
		table = analyzers.ComputeSummaries(pkgs, store)
		if err := store.Save(); err != nil {
			// A cold cache next run, not a lint failure.
			fmt.Fprintln(os.Stderr, "reprolint: warning: saving summary store:", err)
		}
	}

	cwd, _ := os.Getwd()
	findings, suppressions := 0, 0
	for _, lp := range pkgs {
		var diags []analyzers.Diagnostic
		ran := map[string]bool{}
		for _, a := range selected {
			if a.AppliesTo != nil && !a.AppliesTo(lp.Path) {
				continue
			}
			ran[a.Name] = true
			a.Run(&analyzers.Pass{
				Fset:      lp.Fset,
				Files:     lp.Files,
				Pkg:       lp.Pkg,
				Info:      lp.Info,
				Report:    func(d analyzers.Diagnostic) { diags = append(diags, d) },
				Summaries: table,
			})
		}
		// Suppression directives are validated even in packages where no
		// selected analyzer ran (a stale //repro:allow is a finding anywhere),
		// but unused-ness is only judged for analyzers that ran here.
		kept, used := analyzers.Filter(lp.Fset, lp.Files, diags, ran)
		suppressions += used
		for _, d := range kept {
			findings++
			pos := lp.Fset.Position(d.Pos)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			if *jsonOut {
				enc, _ := json.Marshal(map[string]any{
					"gate":     "reprolint",
					"analyzer": d.Analyzer,
					"file":     file,
					"line":     pos.Line,
					"col":      pos.Column,
					"message":  d.Message,
				})
				fmt.Println(string(enc))
			} else {
				fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
			if *ghaOut {
				fmt.Printf("::error file=%s,line=%d,col=%d,title=reprolint %s::%s\n",
					file, pos.Line, pos.Column, d.Analyzer, ghaEscape(d.Message))
			}
		}
	}

	gate, _ := json.Marshal(map[string]any{
		"gate":         "reprolint",
		"findings":     findings,
		"suppressions": suppressions,
		"pass":         findings == 0,
	})
	fmt.Println(string(gate))

	if findings > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", findings)
		}
		return 1
	}
	return 0
}

// ghaEscape encodes the characters GitHub Actions workflow commands reserve
// in annotation messages.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
