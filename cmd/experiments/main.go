// Command experiments regenerates the tables and figures of the DPar2
// paper's evaluation section on synthetic stand-in datasets and prints them
// as plain-text tables.
//
//	experiments -all                 # everything (minutes)
//	experiments -fig 1               # trade-off curves (Fig. 1)
//	experiments -fig 9               # preprocessing + per-iteration time
//	experiments -fig 10              # preprocessed data size
//	experiments -fig 11a|11b|11c     # scalability sweeps
//	experiments -fig tall            # tall-slice stage-1 sharding comparison
//	experiments -fig 8|12            # data profile / correlation heatmaps
//	experiments -table 2|3           # dataset summary / similar stocks
//	experiments -fleet               # multi-tenant admission-control scenario
//	experiments -scale test          # tiny versions (CI-friendly)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/compute"
	"repro/internal/experiments"
	"repro/internal/parafac2"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 1, 8, 9, 10, 11a, 11b, 11c, 12, tall")
		table     = flag.String("table", "", "table to regenerate: 2, 3")
		fleet     = flag.Bool("fleet", false, "run the multi-tenant admission-control scenario")
		all       = flag.Bool("all", false, "run every experiment")
		scale     = flag.String("scale", "bench", "dataset scale: bench | test")
		seed      = flag.Uint64("seed", 1, "random seed")
		rank      = flag.Int("rank", 10, "base target rank")
		iters     = flag.Int("iters", 32, "max ALS iterations")
		threads   = flag.Int("threads", parafac2.DefaultConfig().Threads, "worker threads (<=0 = serial)")
		shardRows = flag.Int("shardrows", 0, "stage-1 sharding threshold in rows (0 = default 64k, <0 = off)")
	)
	flag.Parse()

	// Ctrl-C cancels the sweep between ALS iterations/phases instead of
	// killing it mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sc := experiments.ScaleBench
	if *scale == "test" {
		sc = experiments.ScaleTest
	}
	cfg := parafac2.DefaultConfig()
	cfg.Rank = *rank
	cfg.MaxIters = *iters
	cfg.Seed = *seed
	cfg.Threads = *threads
	cfg.ShardRows = *shardRows

	// One long-lived pool for every experiment in the run (the Fig. 11c
	// thread sweep overrides it per measurement — pool width is what it
	// measures).
	pool := compute.NewPoolFromThreads(*threads)
	defer pool.Close()
	cfg.Pool = pool

	run := func(name string) bool { return *all || *fig == name || *table == name }

	if !*all && *fig == "" && *table == "" && !*fleet {
		flag.Usage()
		os.Exit(2)
	}

	if *fleet || *all {
		runFleet(ctx, cfg, pool, sc)
	}

	var datasets []experiments.Dataset
	need := *all || *fig == "1" || *fig == "8" || *fig == "9" || *fig == "10" || *table == "2"
	if need {
		fmt.Fprintln(os.Stderr, "generating datasets...")
		datasets = experiments.LoadAll(*seed, sc)
	}

	if run("2") && *fig == "" {
		experiments.TableII(datasets).Fprint(os.Stdout)
	}
	if run("8") && *table == "" {
		experiments.Fig8Table(datasets).Fprint(os.Stdout)
	}
	if run("1") && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 1 trade-off (all methods, ranks 10/15/20)...")
		ranks := []int{10, 15, 20}
		if sc == experiments.ScaleTest {
			ranks = []int{5}
		}
		results, err := experiments.Fig1(ctx, datasets, ranks, cfg)
		fail(err)
		experiments.Fig1Table(results).Fprint(os.Stdout)
	}
	if (run("9") || run("10")) && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 9/10 measurements...")
		results, err := experiments.Fig9(ctx, datasets, cfg)
		fail(err)
		if run("9") {
			experiments.Fig9aTable(results).Fprint(os.Stdout)
			experiments.Fig9bTable(results).Fprint(os.Stdout)
		}
		if run("10") {
			experiments.Fig10Table(results).Fprint(os.Stdout)
		}
	}
	if run("11a") && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 11(a) size sweep...")
		shrink := 10
		if sc == experiments.ScaleTest {
			shrink = 40
		}
		pts, err := experiments.Fig11a(ctx, *seed, experiments.Fig11aSizes(shrink), cfg)
		fail(err)
		experiments.Fig11aTable(pts).Fprint(os.Stdout)
	}
	if run("11b") && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 11(b) rank sweep...")
		i, j, k := 200, 200, 60
		ranks := []int{10, 20, 30, 40, 50}
		if sc == experiments.ScaleTest {
			i, j, k = 60, 50, 10
			ranks = []int{5, 10}
		}
		pts, err := experiments.Fig11b(ctx, *seed, i, j, k, ranks, cfg)
		fail(err)
		experiments.Fig11bTable(pts).Fprint(os.Stdout)
	}
	if run("11c") && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 11(c) thread sweep...")
		i, j, k := 200, 200, 60
		threads := []int{1, 2, 4, 6, 8, 10}
		if sc == experiments.ScaleTest {
			i, j, k = 60, 50, 10
			threads = []int{1, 2}
		}
		pts, err := experiments.Fig11c(ctx, *seed, i, j, k, threads, cfg)
		fail(err)
		experiments.Fig11cTable(pts).Fprint(os.Stdout)
	}
	if run("tall") && *table == "" {
		fmt.Fprintln(os.Stderr, "running tall-slice sharding comparison...")
		tallRows, j, k := 32768, 64, 6
		srs := []int{-1, 8192, 4096}
		if sc == experiments.ScaleTest {
			tallRows, j, k = 4096, 32, 4
			srs = []int{-1, 1024, 512}
		}
		pts, err := experiments.TallSlice(ctx, *seed, cfg, tallRows, j, k, srs)
		fail(err)
		experiments.TallSliceTable(pts).Fprint(os.Stdout)
	}
	if run("12") && *table == "" {
		fmt.Fprintln(os.Stderr, "running Fig. 12 correlation analysis...")
		for _, name := range []string{"US Stock", "KR Stock"} {
			d, ok := experiments.Load(*seed, sc, name)
			if !ok {
				fail(fmt.Errorf("dataset %q missing", name))
			}
			corr, labels, err := experiments.Fig12(ctx, d, cfg)
			fail(err)
			experiments.Fig12Table("Fig. 12: "+name+" feature correlations", corr, labels).Fprint(os.Stdout)
		}
	}
	if run("3") && *fig == "" {
		fmt.Fprintln(os.Stderr, "running Table III similar-stock discovery...")
		d, ok := experiments.Load(*seed, sc, "US Stock")
		if !ok {
			fail(fmt.Errorf("US Stock dataset missing"))
		}
		// Query: the stock with the median listing period, so plenty of
		// stocks share (at least) its range.
		target := medianRowsIndex(d)
		res, err := experiments.TableIII(ctx, d, cfg, target, 10, 0.01)
		fail(err)
		experiments.TableIIITable(res).Fprint(os.Stdout)
		fmt.Printf("sector precision: kNN %.2f, RWR %.2f\n\n",
			experiments.SectorPrecision(res, res.KNN),
			experiments.SectorPrecision(res, res.RWR))
	}
}

// runFleet is the -fleet scenario: a served-traffic demonstration of the
// Engine's admission control. Three tenants share one Engine — an
// "interactive" tenant submitting small high-priority jobs, a "batch" tenant
// with a low-priority backlog squeezed by a per-tenant override, and a
// "noisy" tenant bursting past its queued quota (its excess is rejected with
// ErrQuotaExceeded instead of starving the queue). The metrics hook collects
// the per-tenant admitted/rejected/completed counters and latencies printed
// as the served-traffic table.
func runFleet(ctx context.Context, cfg parafac2.Config, pool *compute.Pool, sc experiments.Scale) {
	fmt.Fprintln(os.Stderr, "running multi-tenant fleet scenario...")
	stats := &repro.EngineStats{}
	eng := repro.NewEngine(
		repro.WithEnginePool(pool), // shared with the other experiments; Close leaves it open
		repro.WithBaseConfig(cfg),
		repro.WithJobConcurrency(2),
		repro.WithQueueDepth(16),
		repro.WithTenantQuota(8, 2),
		repro.WithTenantQuotaOverrides(map[string]repro.TenantQuota{
			"batch": {MaxQueued: 4, MaxRunning: 1},
			"noisy": {MaxQueued: 2, MaxRunning: 1},
		}),
		repro.WithEngineMetrics(stats),
	)
	defer eng.Close()

	interactive, batch, noisyBurst := 8, 4, 12
	size := 100
	if sc == experiments.ScaleTest {
		interactive, batch, noisyBurst = 4, 2, 6
		size = 40
	}
	var pending []<-chan repro.JobResult
	submit := func(tenant string, priority, n, rows int, iters int) {
		for i := 0; i < n; i++ {
			g := repro.NewRNG(uint64(1000 + len(pending)))
			pending = append(pending, eng.Submit(ctx, repro.Job{
				Tensor:   repro.RandomTensor(g, rows, 40, 12),
				Tag:      fmt.Sprintf("%s-%02d", tenant, i),
				Tenant:   tenant,
				Priority: priority,
				Options: []repro.Option{
					repro.WithRank(5), repro.WithMaxIters(iters),
					repro.WithSeed(uint64(i)),
				},
			}))
		}
	}
	start := time.Now()
	submit("batch", 0, batch, 3*size, 12)           // pre-queued low-priority backlog
	submit("interactive", 10, interactive, size, 6) // jumps the backlog
	submit("noisy", 0, noisyBurst, size, 6)         // bursts past its MaxQueued 2 override

	var rejected int
	for _, ch := range pending {
		jr := <-ch
		switch {
		case jr.Err == nil:
		case errors.Is(jr.Err, repro.ErrQuotaExceeded):
			rejected++
		case errors.Is(jr.Err, context.Canceled):
		default:
			fail(fmt.Errorf("fleet job %s: %w", jr.Tag, jr.Err))
		}
	}
	wall := time.Since(start).Round(time.Millisecond)

	fmt.Println("== Fleet: served traffic under admission control ==")
	fmt.Print(stats.String())
	it, bt := stats.Tenant("interactive"), stats.Tenant("batch")
	fmt.Printf("priority effect: interactive mean wait %v vs batch %v; %d noisy submits rejected; wall %v\n\n",
		it.MeanQueueWait().Round(time.Microsecond), bt.MeanQueueWait().Round(time.Microsecond),
		rejected, wall)
}

func medianRowsIndex(d experiments.Dataset) int {
	rows := d.Tensor.Rows()
	type pair struct{ rows, idx int }
	ps := make([]pair, len(rows))
	for i, r := range rows {
		ps[i] = pair{r, i}
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].rows < ps[j-1].rows; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps[len(ps)/4].idx // lower quartile: many stocks cover its range
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
